// Table VII / Figure 4 reproduction: total run time and speedup for the
// paper's four configurations (10 simulated minutes = 120 steps of the
// CONUS-12km case).
//
// Paper:
//   configuration   baseline (s)   all optimizations (s)   speedup
//   16 ranks          1211.45            581.2               2.08x
//   32 ranks           655.1             360.1               1.82x
//   64 ranks           471.7             303.03              1.56x
//   2 nodes            379.8             397.1               0.956x
//
// The work profile is measured from a functional run of the synthetic
// case and scaled to the CONUS grid; CPU ranks are priced with the
// Milan model, kernels with gpusim, the network with the alpha-beta
// model, and ranks-per-GPU with the device-memory footprint (which is
// what pins the 2-node GPU configuration at 5 ranks/GPU => 40 ranks).

#include <utility>

#include "offload_runner.hpp"

using namespace wrf;

int main() {
  bench::print_config_header("Table VII / Figure 4 — scaling study");

  // Work profile from a real (scaled) run of v1 and v0.
  model::RunConfig cfg = bench::bench_case(fsbm::Version::kV1LookupOnDemand, 2);
  prof::Profiler prof;
  const model::RunResult res1 = model::run_simulation(cfg, prof);
  perfmodel::WorkProfile w16 = bench::profile_from_run(res1, cfg);
  {
    model::RunConfig c0 = bench::bench_case(fsbm::Version::kV0Baseline, 2);
    prof::Profiler p0;
    const model::RunResult res0 = model::run_simulation(c0, p0);
    const perfmodel::WorkProfile w0 = bench::profile_from_run(res0, c0);
    w16.coal_flops_v0 = w0.coal_flops;
  }
  w16.coal_fraction_cloudy = 0.15;

  // Kernel time curve from gpusim: launch the collapse(3) kernel shape
  // at each candidate patch size using the measured per-cell work.
  const auto v3 = bench::run_conus_rank(fsbm::Version::kV3Offload3);
  const double flops_per_cell =
      v3.fsbm_stats.coal_flops / (107.0 * 75.0 * 50.0);
  const double bytes_per_cell =
      (v3.kernel->dram_read_gb + v3.kernel->dram_write_gb) * 1e9 /
      (107.0 * 75.0 * 50.0);
  gpu::Device dev(gpu::DeviceSpec::a100_40gb());
  dev.set_stack_limit(65536);
  dev.set_heap_limit(64ull << 20);
  auto kernel_ms = [&](double cells) {
    gpu::KernelDesc k;
    k.name = "coal_scaled";
    k.iterations = static_cast<std::int64_t>(cells);
    k.regs_per_thread = 90;
    k.flops_per_iter = flops_per_cell;
    k.bytes_per_iter = bytes_per_cell;
    return dev.launch(k).modeled_time_ms;
  };
  auto transfer_ms = [&](double cells) {
    // 7 bin fields + temp/pres/pred each way per step.
    const double bytes = cells * (7.0 * 33.0 * 4.0 * 2.0 + 12.0);
    return bytes / (gpu::DeviceSpec::a100_40gb().host_link_gbs * 1e6);
  };

  const auto rows = perfmodel::table7_rows(
      w16, /*nsteps=*/120, perfmodel::CpuSpec::milan(),
      perfmodel::NetworkSpec::slingshot(), gpu::DeviceSpec::a100_40gb(),
      perfmodel::DeviceFootprint{}, cfg.nkr, kernel_ms, transfer_ms);

  const double paper_base[4] = {1211.45, 655.1, 471.7, 379.8};
  const double paper_gpu[4] = {581.2, 360.1, 303.03, 397.1};
  const double paper_su[4] = {2.08, 1.82, 1.56, 0.956};

  std::printf("Figure 4 bars (modeled seconds, 120 steps):\n");
  std::printf("%-10s %7s %9s | %12s %12s %12s | %11s %11s\n", "config",
              "ranks", "rk/GPU", "baseline(s)", "lookup(s)", "GPU(s)",
              "speedup", "paper");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::printf("%-10s %7d %9d | %12.1f %12.1f %12.1f | %10.2fx %10.3fx\n",
                r.label.c_str(), r.ranks, r.ranks_per_gpu, r.baseline_sec,
                r.lookup_sec, r.gpu_sec, r.speedup, paper_su[i]);
  }
  std::printf("\npaper absolute times for reference: baseline {%.0f, %.0f, "
              "%.0f, %.0f} s, GPU {%.0f, %.0f, %.0f, %.0f} s\n",
              paper_base[0], paper_base[1], paper_base[2], paper_base[3],
              paper_gpu[0], paper_gpu[1], paper_gpu[2], paper_gpu[3]);

  std::printf("\nshape checks:\n");
  std::printf("  speedup decreases with rank count : %s (%.2f > %.2f > "
              "%.2f)\n",
              rows[0].speedup > rows[1].speedup &&
                      rows[1].speedup > rows[2].speedup
                  ? "yes"
                  : "NO",
              rows[0].speedup, rows[1].speedup, rows[2].speedup);
  std::printf("  2-node equal-resource case loses  : %s (%.3fx, paper "
              "0.956x)\n",
              rows[3].speedup < 1.1 ? "yes" : "NO", rows[3].speedup);
  std::printf("  ranks/GPU capped by memory at 2 nodes: %s (%d, paper 5)\n",
              rows[3].ranks_per_gpu <= 6 ? "yes" : "NO",
              rows[3].ranks_per_gpu);

  // ---- halo=sync vs halo=overlap: measured comms/compute overlap ----
  // Functional multi-rank runs of the scaled case; `halo wall` is the
  // summed per-rank time inside the exchange phases (pack/post + wait/
  // unpack) and `wait frac` the fraction of total rank time blocked in
  // simpi waits — the quantity overlap exists to shrink.  Results are
  // bitwise identical between the modes (asserted in tests).
  // Wall columns are min-over-reps aggregates (bench::measure_reps);
  // the modeled Table VII rows above are deterministic and stay
  // single-shot.
  const int halo_steps = 4;
  const int halo_reps = 3;
  std::printf("\nhalo exchange sweep (functional, %d steps, v1, %d reps):\n",
              halo_steps, halo_reps);
  std::printf("%8s %9s | %10s %7s %12s %10s %10s\n", "ranks", "mode",
              "wall(s)", "cv", "halo wall(s)", "wait(s)", "wait frac");
  const std::pair<int, int> grids[] = {{2, 1}, {2, 2}, {4, 2}};
  for (const auto& grid : grids) {
    for (const auto mode : {dyn::HaloMode::kSync, dyn::HaloMode::kOverlap}) {
      model::RunResult hr;
      const bench::RepAggregate wall =
          bench::measure_reps(halo_reps, [&]() {
            model::RunConfig hc = bench::bench_case(
                fsbm::Version::kV1LookupOnDemand, halo_steps, {}, mode);
            hc.npx = grid.first;
            hc.npy = grid.second;
            prof::Profiler hp;
            hr = model::run_simulation(hc, hp);
            return hr.wall_sec;
          });
      const double wait = hr.comm.total_wait_sec();
      std::printf("%8d %9s | %10.3f %7.3f %12.3f %10.3f %9.1f%%\n",
                  grid.first * grid.second, dyn::halo_mode_name(mode),
                  wall.min, wall.cv, hr.totals.halo_wall_sec, wait,
                  hr.totals.wall_sec > 0.0
                      ? 100.0 * wait / hr.totals.wall_sec
                      : 0.0);
    }
  }
  return 0;
}
