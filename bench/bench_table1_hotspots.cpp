// Table I reproduction: time contribution (%) of the top hotspots.
//
// Paper (CONUS-12km, 16 ranks):
//   routine            gprof    Nsight Systems (1 rank)
//   fast_sbm           51.39    77.07
//   rk_scalar_tend     28.07    10.15
//   rk_update_scalar    6.361    1.504
//
// We measure both views with the instrumenting profiler: the "gprof"
// view aggregates all ranks of a decomposed run of the v0 baseline; the
// "Nsight" view profiles the single rank owning the squall line (load
// imbalance makes its fast_sbm share larger, as the paper observes).

#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

using namespace wrf;

namespace {

struct Shares {
  double fast_sbm = 0, tend = 0, update = 0;
};

Shares shares_of(const prof::Profiler& p) {
  // Percentages of the solver time, inclusive, as gprof reports
  // against total program time (we exclude init/profiling overhead).
  const double t_sbm = p.inclusive_sec("fast_sbm");
  const double t_tend = p.inclusive_sec("rk_scalar_tend");
  const double t_upd = p.inclusive_sec("rk_update_scalar");
  const double t_total = p.inclusive_sec("solve_interval");
  Shares s;
  if (t_total > 0) {
    s.fast_sbm = 100.0 * t_sbm / t_total;
    s.tend = 100.0 * t_tend / t_total;
    s.update = 100.0 * t_upd / t_total;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_config_header("Table I — hotspot time contribution (%)");

  // gprof view: all ranks aggregated.
  model::RunConfig cfg = bench::bench_case(fsbm::Version::kV0Baseline, 3);
  prof::Profiler all_ranks;
  model::run_simulation(cfg, all_ranks);
  const Shares agg = shares_of(all_ranks);

  // Nsight view: one rank that owns the squall line (rank 0 holds the
  // southern band at yc=0.40-0.42).
  prof::Profiler one_rank;
  const auto patches =
      grid::decompose(cfg.domain(), cfg.npx, cfg.npy, cfg.halo);
  model::RankModel rank0(cfg, patches[0], nullptr);
  rank0.init();
  for (int s = 0; s < cfg.nsteps; ++s) rank0.step(one_rank);
  const Shares single = shares_of(one_rank);

  std::printf("%-18s %12s %12s %14s %14s\n", "routine", "gprof(paper)",
              "gprof(ours)", "nsight(paper)", "nsight(ours)");
  std::printf("%-18s %12.2f %12.2f %14.2f %14.2f\n", "fast_sbm", 51.39,
              agg.fast_sbm, 77.07, single.fast_sbm);
  std::printf("%-18s %12.2f %12.2f %14.2f %14.2f\n", "rk_scalar_tend", 28.07,
              agg.tend, 10.15, single.tend);
  std::printf("%-18s %12.2f %12.2f %14.2f %14.2f\n", "rk_update_scalar",
              6.361, agg.update, 1.504, single.update);

  std::printf("\nfull flat profile (gprof view, measured wall time):\n%s\n",
              all_ranks.format_flat_report().c_str());
  std::printf("shape check: fast_sbm dominates (%s), rk_scalar_tend second "
              "(%s)\n",
              agg.fast_sbm > agg.tend ? "yes" : "NO",
              agg.tend > agg.update ? "yes" : "NO");

  // Host-parallelism sweep (exec= knob): the same v0 physics pass, one
  // rank, dispatched serial vs. the requested execution space.  Pass
  // `exec=threads:N` to pick the thread count (default: hardware).
  exec::ExecConfig sweep = exec::exec_from_args(argc, argv);
  if (sweep.kind == exec::ExecKind::kSerial) {
    sweep.kind = exec::ExecKind::kThreads;  // default sweep target
  }
  // Wall columns are min/median/CV aggregates over reps (the tuner's
  // measurement discipline, bench::measure_reps) — speedups compare
  // minima, the least-noise estimate on a shared host.
  const int wall_reps = 3;
  auto host_pass = [&](const exec::ExecConfig& e) {
    return bench::measure_reps(wall_reps, [&]() {
      model::RunConfig c = bench::bench_case(fsbm::Version::kV0Baseline, 3);
      c.npx = c.npy = 1;
      c.exec = e;
      const auto ps = grid::decompose(c.domain(), 1, 1, c.halo);
      model::RankModel rank(c, ps[0], nullptr);
      rank.init();
      prof::Profiler p;
      double sbm_sec = 0.0;
      for (int s = 0; s < c.nsteps; ++s) {
        sbm_sec += rank.step(p).fsbm.wall_total_sec;
      }
      return sbm_sec;
    });
  };
  const bench::RepAggregate t_serial = host_pass(exec::ExecConfig{});
  const bench::RepAggregate t_exec = host_pass(sweep);
  std::printf("\nhost physics pass (fast_sbm, v0, 1 rank): exec sweep "
              "(%u hardware threads, %d reps)\n",
              std::thread::hardware_concurrency(), wall_reps);
  std::printf("  %-16s %10.3f s  (median %.3f, cv %.3f)\n", "serial",
              t_serial.min, t_serial.median, t_serial.cv);
  std::printf("  %-16s %10.3f s  (median %.3f, cv %.3f)  speedup %.2fx\n",
              sweep.describe().c_str(), t_exec.min, t_exec.median, t_exec.cv,
              t_exec.min > 0.0 ? t_serial.min / t_exec.min : 0.0);

  // Sedimentation dispatch sweep (sed= knob): the per-column oracle vs
  // the blocked multi-column solver.  The blocked path hoists the
  // per-bin terminal-velocity power law out of the column/level/substep
  // loops (one lookup per bin per block) and shares the per-level
  // density corrections across all bins, so the lookup counters fall by
  // far more than the block width; per-column CFL substeps are
  // dispatch-invariant, while the lockstep count shows how many marches
  // each block actually paid for.  Pass `sed=block:N` to add a custom
  // width to the sweep.
  struct SedRow {
    std::string mode;
    fsbm::FsbmStats f;
    bench::RepAggregate wall;
  };
  auto sed_run = [&](const fsbm::SedDispatch& sd) {
    SedRow row;
    row.mode = sd.describe();
    // Counters are deterministic per dispatch mode; only the wall column
    // is aggregated over reps (stats kept from the last rep).
    row.wall = bench::measure_reps(wall_reps, [&]() {
      model::RunConfig c =
          bench::bench_case(fsbm::Version::kV1LookupOnDemand, 3);
      c.npx = c.npy = 1;
      c.sed = sd;
      const auto ps = grid::decompose(c.domain(), 1, 1, c.halo);
      model::RankModel rank(c, ps[0], nullptr);
      rank.init();
      prof::Profiler p;
      row.f = fsbm::FsbmStats{};
      for (int s = 0; s < c.nsteps; ++s) row.f.merge(rank.step(p).fsbm);
      return p.inclusive_sec("sedimentation");
    });
    return row;
  };
  std::vector<fsbm::SedDispatch> sed_modes;
  sed_modes.push_back(fsbm::SedDispatch{});  // column oracle
  for (const int n : {4, 8, 16}) {
    fsbm::SedDispatch sd;
    sd.kind = fsbm::SedDispatch::Kind::kBlock;
    sd.block = n;
    sed_modes.push_back(sd);
  }
  const fsbm::SedDispatch custom = fsbm::sed_from_args(argc, argv);
  if (custom.kind == fsbm::SedDispatch::Kind::kBlock) {
    sed_modes.push_back(custom);
  }
  std::printf("\nsedimentation dispatch sweep (column vs block, v1, 1 rank, "
              "%d reps):\n", wall_reps);
  std::printf("  %-10s %9s %7s %13s %13s %11s %11s %9s\n", "sed=",
              "wall min", "cv", "tv_lookups", "corr_evals", "substeps",
              "lockstep", "amort");
  double lookups_column = 0.0;
  for (const auto& sd : sed_modes) {
    const SedRow row = sed_run(sd);
    const double lookups =
        static_cast<double>(row.f.sed_tv_lookups + row.f.sed_corr_evals);
    if (sd.kind == fsbm::SedDispatch::Kind::kColumn) lookups_column = lookups;
    std::printf("  %-10s %9.3f %7.3f %13llu %13llu %11llu %11llu %8.1fx\n",
                row.mode.c_str(), row.wall.min, row.wall.cv,
                static_cast<unsigned long long>(row.f.sed_tv_lookups),
                static_cast<unsigned long long>(row.f.sed_corr_evals),
                static_cast<unsigned long long>(row.f.sed_substeps),
                static_cast<unsigned long long>(row.f.sed_lockstep_substeps),
                lookups > 0.0 ? lookups_column / lookups : 0.0);
  }
  return 0;
}
