// Table I reproduction: time contribution (%) of the top hotspots.
//
// Paper (CONUS-12km, 16 ranks):
//   routine            gprof    Nsight Systems (1 rank)
//   fast_sbm           51.39    77.07
//   rk_scalar_tend     28.07    10.15
//   rk_update_scalar    6.361    1.504
//
// We measure both views with the instrumenting profiler: the "gprof"
// view aggregates all ranks of a decomposed run of the v0 baseline; the
// "Nsight" view profiles the single rank owning the squall line (load
// imbalance makes its fast_sbm share larger, as the paper observes).

#include "bench_common.hpp"

using namespace wrf;

namespace {

struct Shares {
  double fast_sbm = 0, tend = 0, update = 0;
};

Shares shares_of(const prof::Profiler& p) {
  // Percentages of the solver time, inclusive, as gprof reports
  // against total program time (we exclude init/profiling overhead).
  const double t_sbm = p.inclusive_sec("fast_sbm");
  const double t_tend = p.inclusive_sec("rk_scalar_tend");
  const double t_upd = p.inclusive_sec("rk_update_scalar");
  const double t_total = p.inclusive_sec("solve_interval");
  Shares s;
  if (t_total > 0) {
    s.fast_sbm = 100.0 * t_sbm / t_total;
    s.tend = 100.0 * t_tend / t_total;
    s.update = 100.0 * t_upd / t_total;
  }
  return s;
}

}  // namespace

int main() {
  bench::print_config_header("Table I — hotspot time contribution (%)");

  // gprof view: all ranks aggregated.
  model::RunConfig cfg = bench::bench_case(fsbm::Version::kV0Baseline, 3);
  prof::Profiler all_ranks;
  model::run_simulation(cfg, all_ranks);
  const Shares agg = shares_of(all_ranks);

  // Nsight view: one rank that owns the squall line (rank 0 holds the
  // southern band at yc=0.40-0.42).
  prof::Profiler one_rank;
  const auto patches =
      grid::decompose(cfg.domain(), cfg.npx, cfg.npy, cfg.halo);
  model::RankModel rank0(cfg, patches[0], nullptr);
  rank0.init();
  for (int s = 0; s < cfg.nsteps; ++s) rank0.step(one_rank);
  const Shares single = shares_of(one_rank);

  std::printf("%-18s %12s %12s %14s %14s\n", "routine", "gprof(paper)",
              "gprof(ours)", "nsight(paper)", "nsight(ours)");
  std::printf("%-18s %12.2f %12.2f %14.2f %14.2f\n", "fast_sbm", 51.39,
              agg.fast_sbm, 77.07, single.fast_sbm);
  std::printf("%-18s %12.2f %12.2f %14.2f %14.2f\n", "rk_scalar_tend", 28.07,
              agg.tend, 10.15, single.tend);
  std::printf("%-18s %12.2f %12.2f %14.2f %14.2f\n", "rk_update_scalar",
              6.361, agg.update, 1.504, single.update);

  std::printf("\nfull flat profile (gprof view, measured wall time):\n%s\n",
              all_ranks.format_flat_report().c_str());
  std::printf("shape check: fast_sbm dominates (%s), rk_scalar_tend second "
              "(%s)\n",
              agg.fast_sbm > agg.tend ? "yes" : "NO",
              agg.tend > agg.update ? "yes" : "NO");
  return 0;
}
