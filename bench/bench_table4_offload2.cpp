// Table IV reproduction: offloading the isolated collision loop with
// collapse(2) (v1 -> v2).
//
// Paper:                       current   cumulative
//   coal_bott_new loop          6.47x      6.47x
//   fast_sbm                    1.54x      2.67x
//   overall                     1.33x      2.09x
//
// Times for the GPU side come from the gpusim device model (occupancy +
// cache + roofline) applied to the real per-step work of a full-size
// CONUS-12km rank patch; CPU-side physics is priced with the Milan core
// model.  "Cumulative" compares against v0 for fast_sbm/overall and
// against v1 for the collision loop, as in the paper.
//
// The bench also sweeps the heterogeneous dispatch (exec=hetero) of the
// same collision pass per offloaded version: split fraction
// (device-shard cells / total), per-shard wall time, and the
// shard-granular transfer traffic vs the full-field re-maps.  The gate
// (exit code) asserts the coherence contract: device-shard h2d traffic
// scales with predicate-true cells EXACTLY (interior predicate-false
// cells never transfer), i.e. het_h2d * total_cells == base_h2d *
// device_cells, and the CONUS sounding splits nontrivially (rows above
// the 223.15 K coal gate stay on the host shard).
//
// Per-shard wall times are min/median/CV aggregates over N hetero reps
// (bench_common.hpp aggregate_samples — both shard walls come from the
// same rep, so they are collected side by side and aggregated per
// metric); the counter columns are deterministic and measured once.
//
// Usage: bench_table4_offload2 [nx ny nz nsteps] [--benchmark_format=json]
//   JSON mode runs only the hetero sweep and emits one record per
//   version; scripts/bench_json.sh distills BENCH_hetero.json from it.

#include <cstdlib>
#include <cstring>

#include "offload_runner.hpp"

using namespace wrf;
using bench::OffloadMeasurement;

namespace {

struct HeteroCell {
  fsbm::Version version;
  std::uint64_t dev_cells = 0, host_cells = 0;  // summed over steps
  double frac = 0.0;                            // device-shard fraction
  bench::RepAggregate wall_dev, wall_host;      // per-shard wall s over reps
  std::uint64_t het_h2d = 0, het_d2h = 0;    // hetero run, whole run
  std::uint64_t base_h2d = 0, base_d2h = 0;  // full-pass run, whole run
  double het_kernel_ms = 0.0, base_kernel_ms = 0.0;  // modeled, last step
  bool exact_scaling = false;  // het_h2d * total == base_h2d * dev_cells
};

HeteroCell measure_hetero(fsbm::Version v, int nx, int ny, int nz,
                          int nsteps, int reps) {
  auto run = [&](const exec::ExecConfig& e) {
    model::RunConfig cfg;
    cfg.nx = nx;
    cfg.ny = ny;
    cfg.nz = nz;
    cfg.npx = cfg.npy = 1;
    cfg.nsteps = nsteps;
    cfg.version = v;
    cfg.exec = e;
    prof::Profiler prof;
    return model::run_single(cfg, prof);
  };
  // Baseline: the whole collision pass on the device with per-launch
  // full-field maps (res=step, any host exec — serial here).
  const model::RunResult base = run(exec::ExecConfig{});
  exec::ExecConfig het;
  het.kind = exec::ExecKind::kHetero;
  // Rep loop: both shard walls come from the same run, so collect the
  // paired samples and aggregate each metric separately.  The counters
  // (shard cells, transfer bytes) are deterministic; keep the first run.
  const model::RunResult h = run(het);
  std::vector<double> dev_walls{h.totals.fsbm.shard_wall_device_sec};
  std::vector<double> host_walls{h.totals.fsbm.shard_wall_host_sec};
  for (int r = 1; r < reps; ++r) {
    const model::RunResult hr = run(het);
    dev_walls.push_back(hr.totals.fsbm.shard_wall_device_sec);
    host_walls.push_back(hr.totals.fsbm.shard_wall_host_sec);
  }

  HeteroCell c;
  c.version = v;
  c.dev_cells = h.totals.fsbm.shard_cells_device;
  c.host_cells = h.totals.fsbm.shard_cells_host;
  c.frac = h.device_shard_fraction();
  c.wall_dev = bench::aggregate_samples(std::move(dev_walls));
  c.wall_host = bench::aggregate_samples(std::move(host_walls));
  c.het_h2d = h.totals.fsbm.h2d_bytes;
  c.het_d2h = h.totals.fsbm.d2h_bytes;
  c.base_h2d = base.totals.fsbm.h2d_bytes;
  c.base_d2h = base.totals.fsbm.d2h_bytes;
  if (h.last_coal_kernel) c.het_kernel_ms = h.last_coal_kernel->modeled_time_ms;
  if (base.last_coal_kernel) {
    c.base_kernel_ms = base.last_coal_kernel->modeled_time_ms;
  }
  // The hetero upload ships the coal pass's per-cell footprint — the
  // predicate byte, temp + pres, and all seven bin slices — for
  // device-shard cells only: an exact integer identity, not a tolerance
  // check.  (The full-pass baseline re-maps whole memory buffers, halo
  // cells included, so it is strictly larger than footprint * cells.)
  const std::uint64_t cell_bytes =
      1 + 2 * sizeof(float) +
      static_cast<std::uint64_t>(fsbm::kNumSpecies) *
          static_cast<std::uint64_t>(model::RunConfig{}.nkr) * sizeof(float);
  c.exact_scaling =
      c.het_h2d == c.dev_cells * cell_bytes && c.het_d2h <= c.base_d2h;
  return c;
}

void print_hetero_json(const HeteroCell* cells, int n, int nx, int ny, int nz,
                       int nsteps) {
  std::printf("{\n  \"context\": {\"executable\": \"bench_table4_offload2\", "
              "\"grid\": \"%dx%dx%d\", \"nsteps\": %d, \"sweep\": "
              "\"hetero\"},\n",
              nx, ny, nz, nsteps);
  std::printf("  \"benchmarks\": [\n");
  for (int i = 0; i < n; ++i) {
    const HeteroCell& c = cells[i];
    std::printf(
        "    {\"name\": \"hetero/%s\", \"run_type\": \"aggregate\", "
        "\"split_fraction\": %.6f, \"device_shard_cells\": %llu, "
        "\"host_shard_cells\": %llu, \"wall_device_shard_s_min\": %.6f, "
        "\"wall_device_shard_s_median\": %.6f, "
        "\"wall_device_shard_cv\": %.3f, "
        "\"wall_host_shard_s_min\": %.6f, "
        "\"wall_host_shard_s_median\": %.6f, "
        "\"wall_host_shard_cv\": %.3f, \"reps\": %d, "
        "\"hetero_h2d_bytes\": %llu, "
        "\"hetero_d2h_bytes\": %llu, \"full_h2d_bytes\": %llu, "
        "\"full_d2h_bytes\": %llu, \"hetero_kernel_ms\": %.4f, "
        "\"full_kernel_ms\": %.4f, \"exact_shard_scaling\": %s}%s\n",
        fsbm::version_name(c.version), c.frac,
        static_cast<unsigned long long>(c.dev_cells),
        static_cast<unsigned long long>(c.host_cells), c.wall_dev.min,
        c.wall_dev.median, c.wall_dev.cv, c.wall_host.min,
        c.wall_host.median, c.wall_host.cv, c.wall_dev.reps,
        static_cast<unsigned long long>(c.het_h2d),
        static_cast<unsigned long long>(c.het_d2h),
        static_cast<unsigned long long>(c.base_h2d),
        static_cast<unsigned long long>(c.base_d2h), c.het_kernel_ms,
        c.base_kernel_ms, c.exact_scaling ? "true" : "false",
        i + 1 < n ? "," : "");
  }
  std::printf("  ]\n}\n");
}

int hetero_gate(const HeteroCell* cells, int n) {
  // The coherence contract the acceptance bar tracks: shard-granular
  // traffic scales exactly with predicate-true cells, and the split is
  // nontrivial (the sounding's cold upper rows stayed on the host).
  for (int i = 0; i < n; ++i) {
    if (!cells[i].exact_scaling) return 1;
    if (cells[i].dev_cells == 0 || cells[i].host_cells == 0) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  int npos = 0;
  int pos[4] = {0, 0, 0, 0};
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--benchmark_format=json") == 0) {
      json = true;
    } else if (npos < 4 && std::strchr(argv[a], '=') == nullptr) {
      pos[npos++] = std::atoi(argv[a]);
    }
  }
  // Default: the CONUS rank patch of the paper tables (50 levels reach
  // 20 km, so ~40% of each column sits above the coal gate).
  int nx = 107, ny = 75, nz = 50, nsteps = 1;
  if (npos == 4 && pos[0] > 0) {
    nx = pos[0];
    ny = pos[1];
    nz = pos[2];
    nsteps = pos[3];
  }

  const int reps = 3;
  HeteroCell het[2];
  auto sweep_hetero = [&]() {
    het[0] =
        measure_hetero(fsbm::Version::kV2Offload2, nx, ny, nz, nsteps, reps);
    het[1] =
        measure_hetero(fsbm::Version::kV3Offload3, nx, ny, nz, nsteps, reps);
  };

  if (json) {
    sweep_hetero();
    print_hetero_json(het, 2, nx, ny, nz, nsteps);
    return hetero_gate(het, 2);
  }

  bench::print_config_header(
      "Table IV — collapse(2) offload of coal_bott_new");

  const OffloadMeasurement v1 =
      bench::run_conus_rank(fsbm::Version::kV1LookupOnDemand);
  const OffloadMeasurement v2 =
      bench::run_conus_rank(fsbm::Version::kV2Offload2);

  // v0's modeled times: v1 scaled by the measured v0/v1 wall ratio.
  const bench::V0V1Ratio r01 = bench::measure_v0_v1_ratio();
  const double v0_fast = v1.fast_sbm_sec * r01.fast_sbm;
  const double v0_overall = v1.overall_sec * r01.overall;

  std::printf("modeled Perlmutter times per step (1 rank of 16, CONUS):\n");
  std::printf("  %-18s %10s %10s\n", "", "v1 (CPU)", "v2 (GPU)");
  std::printf("  %-18s %10.4f %10.4f  s\n", "coal loop", v1.coal_loop_sec,
              v2.coal_loop_sec);
  std::printf("  %-18s %10.4f %10.4f  s\n", "fast_sbm", v1.fast_sbm_sec,
              v2.fast_sbm_sec);
  std::printf("  %-18s %10.4f %10.4f  s\n", "overall", v1.overall_sec,
              v2.overall_sec);
  std::printf("  v2 kernel %.2f ms + H2D %.2f ms + D2H %.2f ms; occupancy "
              "%.2f%% (%s-limited)\n",
              v2.kernel_ms, v2.h2d_ms, v2.d2h_ms,
              100.0 * v2.kernel->occupancy.achieved,
              v2.kernel->occupancy.limiter);
  std::printf("  v2 transfer traffic per step: H2D %.1f MB in %llu maps, "
              "D2H %.1f MB in %llu maps (res=step re-maps every field; "
              "see bench_residency for the res=persist collapse)\n\n",
              static_cast<double>(v2.fsbm_stats.h2d_bytes) / 1e6,
              static_cast<unsigned long long>(v2.fsbm_stats.h2d_transfers),
              static_cast<double>(v2.fsbm_stats.d2h_bytes) / 1e6,
              static_cast<unsigned long long>(v2.fsbm_stats.d2h_transfers));

  const bench::PaperRow rows[] = {
      {"coal loop speedup (current)", 6.47,
       v1.coal_loop_sec / v2.coal_loop_sec},
      {"fast_sbm speedup (current)", 1.54, v1.fast_sbm_sec / v2.fast_sbm_sec},
      {"fast_sbm speedup (cumulative)", 2.67, v0_fast / v2.fast_sbm_sec},
      {"overall speedup (current)", 1.33, v1.overall_sec / v2.overall_sec},
      {"overall speedup (cumulative)", 2.09, v0_overall / v2.overall_sec},
  };
  bench::print_rows("Table IV (modeled):", rows, 5);

  std::printf("functional wall per step on this host: v1 %.2fs, v2 %.2fs\n",
              v1.wall_step_sec, v2.wall_step_sec);
  std::printf("shape check: GPU wins the loop by >3x (%s); occupancy is "
              "grid-limited single-digit (%s)\n\n",
              v1.coal_loop_sec / v2.coal_loop_sec > 3 ? "yes" : "NO",
              v2.kernel->occupancy.achieved < 0.10 ? "yes" : "NO");

  // ---- heterogeneous dispatch sweep (exec=hetero) -------------------
  sweep_hetero();
  std::printf("heterogeneous dispatch (exec=hetero, %dx%dx%d, %d step%s, "
              "%d wall reps):\n",
              nx, ny, nz, nsteps, nsteps == 1 ? "" : "s", reps);
  std::printf("  %-24s %8s %12s %12s %8s %12s %12s %10s\n", "version",
              "split", "dev med s", "host med s", "wall CV", "h2d MB",
              "full h2d", "kern ms");
  for (const HeteroCell& c : het) {
    std::printf("  %-24s %7.1f%% %12.4f %12.4f %8.3f %12.2f %12.2f %10.3f\n",
                fsbm::version_name(c.version), 100.0 * c.frac,
                c.wall_dev.median, c.wall_host.median,
                std::max(c.wall_dev.cv, c.wall_host.cv),
                static_cast<double>(c.het_h2d) / 1e6,
                static_cast<double>(c.base_h2d) / 1e6, c.het_kernel_ms);
  }
  const int gate = hetero_gate(het, 2);
  std::printf("shape check: device-shard traffic scales exactly with "
              "predicate-true cells and the split is two-sided (%s)\n",
              gate == 0 ? "yes" : "NO");
  return gate;
}
