// Table IV reproduction: offloading the isolated collision loop with
// collapse(2) (v1 -> v2).
//
// Paper:                       current   cumulative
//   coal_bott_new loop          6.47x      6.47x
//   fast_sbm                    1.54x      2.67x
//   overall                     1.33x      2.09x
//
// Times for the GPU side come from the gpusim device model (occupancy +
// cache + roofline) applied to the real per-step work of a full-size
// CONUS-12km rank patch; CPU-side physics is priced with the Milan core
// model.  "Cumulative" compares against v0 for fast_sbm/overall and
// against v1 for the collision loop, as in the paper.

#include "offload_runner.hpp"

using namespace wrf;
using bench::OffloadMeasurement;

int main() {
  bench::print_config_header(
      "Table IV — collapse(2) offload of coal_bott_new");

  const OffloadMeasurement v1 =
      bench::run_conus_rank(fsbm::Version::kV1LookupOnDemand);
  const OffloadMeasurement v2 =
      bench::run_conus_rank(fsbm::Version::kV2Offload2);

  // v0's modeled times: v1 scaled by the measured v0/v1 wall ratio.
  const bench::V0V1Ratio r01 = bench::measure_v0_v1_ratio();
  const double v0_fast = v1.fast_sbm_sec * r01.fast_sbm;
  const double v0_overall = v1.overall_sec * r01.overall;

  std::printf("modeled Perlmutter times per step (1 rank of 16, CONUS):\n");
  std::printf("  %-18s %10s %10s\n", "", "v1 (CPU)", "v2 (GPU)");
  std::printf("  %-18s %10.4f %10.4f  s\n", "coal loop", v1.coal_loop_sec,
              v2.coal_loop_sec);
  std::printf("  %-18s %10.4f %10.4f  s\n", "fast_sbm", v1.fast_sbm_sec,
              v2.fast_sbm_sec);
  std::printf("  %-18s %10.4f %10.4f  s\n", "overall", v1.overall_sec,
              v2.overall_sec);
  std::printf("  v2 kernel %.2f ms + H2D %.2f ms + D2H %.2f ms; occupancy "
              "%.2f%% (%s-limited)\n",
              v2.kernel_ms, v2.h2d_ms, v2.d2h_ms,
              100.0 * v2.kernel->occupancy.achieved,
              v2.kernel->occupancy.limiter);
  std::printf("  v2 transfer traffic per step: H2D %.1f MB in %llu maps, "
              "D2H %.1f MB in %llu maps (res=step re-maps every field; "
              "see bench_residency for the res=persist collapse)\n\n",
              static_cast<double>(v2.fsbm_stats.h2d_bytes) / 1e6,
              static_cast<unsigned long long>(v2.fsbm_stats.h2d_transfers),
              static_cast<double>(v2.fsbm_stats.d2h_bytes) / 1e6,
              static_cast<unsigned long long>(v2.fsbm_stats.d2h_transfers));

  const bench::PaperRow rows[] = {
      {"coal loop speedup (current)", 6.47,
       v1.coal_loop_sec / v2.coal_loop_sec},
      {"fast_sbm speedup (current)", 1.54, v1.fast_sbm_sec / v2.fast_sbm_sec},
      {"fast_sbm speedup (cumulative)", 2.67, v0_fast / v2.fast_sbm_sec},
      {"overall speedup (current)", 1.33, v1.overall_sec / v2.overall_sec},
      {"overall speedup (cumulative)", 2.09, v0_overall / v2.overall_sec},
  };
  bench::print_rows("Table IV (modeled):", rows, 5);

  std::printf("functional wall per step on this host: v1 %.2fs, v2 %.2fs\n",
              v1.wall_step_sec, v2.wall_step_sec);
  std::printf("shape check: GPU wins the loop by >3x (%s); occupancy is "
              "grid-limited single-digit (%s)\n",
              v1.coal_loop_sec / v2.coal_loop_sec > 3 ? "yes" : "NO",
              v2.kernel->occupancy.achieved < 0.10 ? "yes" : "NO");
  return 0;
}
