// Figure 3 reproduction: roofline placement of the collision kernel,
// collapse(2) vs collapse(3).
//
// The paper's plot shows: SP and DP rooflines; the two collapse(2)
// points low and left, the collapse(3) pair higher and closer to the
// memory roofline, with the full collapse *reducing* arithmetic
// intensity (more DRAM traffic from the pooled arrays) while greatly
// increasing achieved throughput.

#include <cmath>

#include "offload_runner.hpp"

using namespace wrf;

int main() {
  bench::print_config_header("Figure 3 — collision-kernel roofline");

  const gpu::DeviceSpec dev = gpu::DeviceSpec::a100_40gb();
  std::printf("roofline curves (GFLOP/s attainable vs arithmetic "
              "intensity):\n");
  std::printf("%12s %16s %16s\n", "AI(F/B)", "single-prec", "double-prec");
  for (double e = -3.0; e <= 3.01; e += 0.5) {
    const double ai = std::pow(10.0, e);
    std::printf("%12.4f %16.1f %16.1f\n", ai,
                gpu::roofline_gflops(dev, ai, false),
                gpu::roofline_gflops(dev, ai, true));
  }
  std::printf("ridge points: SP %.2f F/B, DP %.2f F/B\n\n",
              dev.peak_sp_gflops / dev.dram_bw_gbs,
              dev.peak_dp_gflops / dev.dram_bw_gbs);

  const auto v2 = bench::run_conus_rank(fsbm::Version::kV2Offload2);
  const auto v3 = bench::run_conus_rank(fsbm::Version::kV3Offload3);
  const gpu::KernelStats& k2 = *v2.kernel;
  const gpu::KernelStats& k3 = *v3.kernel;

  std::printf("measured kernel points (modeled by gpusim):\n");
  std::printf("%-28s %10s %12s %14s\n", "kernel", "AI(F/B)", "GFLOP/s",
              "bound");
  std::printf("%-28s %10.4f %12.2f %14s\n", "coal_bott_new collapse(2)",
              k2.arithmetic_intensity, k2.gflops_achieved, k2.bound);
  std::printf("%-28s %10.4f %12.2f %14s\n", "coal_bott_new collapse(3)",
              k3.arithmetic_intensity, k3.gflops_achieved, k3.bound);

  const double frac2 =
      k2.gflops_achieved /
      gpu::roofline_gflops(dev, k2.arithmetic_intensity, false);
  const double frac3 =
      k3.gflops_achieved /
      gpu::roofline_gflops(dev, k3.arithmetic_intensity, false);
  std::printf("\nfraction of SP roofline reached: c2 %.3f, c3 %.3f\n", frac2,
              frac3);
  std::printf("\nshape checks (paper's reading of the plot):\n");
  std::printf("  both points far below peak (low AI)  : %s\n",
              (k2.arithmetic_intensity < 10 && k3.arithmetic_intensity < 10)
                  ? "yes"
                  : "NO");
  std::printf("  full collapse closer to the roofline : %s\n",
              frac3 > frac2 ? "yes" : "NO");
  std::printf("  full collapse lowers AI (more traffic): %s\n",
              k3.arithmetic_intensity < k2.arithmetic_intensity ? "yes"
                                                                : "NO");
  return 0;
}
