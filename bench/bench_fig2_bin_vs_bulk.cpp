// Figure 2 context: bin vs bulk microphysics on the same parcel.
//
// The paper's Figure 2 is a schematic; we realize it as a box-model
// experiment: a rising saturated parcel, integrated with (a) the FSBM
// bin scheme (explicit 33-bin spectrum) and (b) the Kessler bulk scheme
// (qc/qr moments).  The bench prints the time series of cloud vs rain
// partition and the rain-onset times, showing the structural difference
// the figure illustrates: the bin scheme broadens its spectrum
// continuously, while the bulk scheme switches categories through an
// autoconversion threshold.

#include <cmath>

#include "bench_common.hpp"
#include "bulk/kessler.hpp"
#include "util/constants.hpp"
#include "fsbm/coal_bott.hpp"
#include "fsbm/nucleation.hpp"
#include "fsbm/onecond.hpp"

using namespace wrf;

int main() {
  bench::print_config_header("Figure 2 — bin vs bulk rain formation");

  const fsbm::BinGrid bins(33);
  const fsbm::KernelTables tables(bins);
  const double pres = 85000.0;
  const double dt = 5.0;
  const int nsteps = 240;  // 20 minutes
  const double cooling = -0.004;  // K/s adiabatic cooling (steady updraft)

  // --- bin scheme parcel ---
  float buf[(4 + fsbm::kIceMax) * fsbm::kMaxNkr] = {};
  const int nkr = bins.nkr();
  fsbm::CoalWorkspace w;
  w.fl1 = buf;
  w.g2 = buf + nkr;
  w.g3 = buf + nkr * (1 + fsbm::kIceMax);
  w.g4 = buf + nkr * (2 + fsbm::kIceMax);
  w.g5 = buf + nkr * (3 + fsbm::kIceMax);
  double t_bin = 288.0;
  double qv_bin = 0.995 * wrf::constants::qsat_liquid(t_bin, pres);

  // --- bulk scheme parcel ---
  bulk::KesslerCell cell;
  double t_blk = t_bin, qv_blk = qv_bin;

  // Rain threshold: drops > ~80 um radius <-> bin >= 16.
  const int rain_bin = 16;
  double bin_rain_onset = -1, blk_rain_onset = -1;

  std::printf("%8s | %12s %12s | %12s %12s\n", "t(s)", "bin qc", "bin qr",
              "bulk qc", "bulk qr");
  for (int s = 0; s <= nsteps; ++s) {
    const double t_now = s * dt;
    if (s % 24 == 0) {
      double qc = 0, qr = 0;
      for (int k = 0; k < 33; ++k) {
        (k < rain_bin ? qc : qr) += w.fl1[k];
      }
      std::printf("%8.0f | %12.3e %12.3e | %12.3e %12.3e\n", t_now, qc, qr,
                  cell.qc, cell.qr);
      if (bin_rain_onset < 0 && qr > 1e-5) bin_rain_onset = t_now;
      if (blk_rain_onset < 0 && cell.qr > 1e-5) blk_rain_onset = t_now;
    }
    // Adiabatic cooling drives supersaturation in both parcels.
    t_bin += cooling * dt;
    t_blk += cooling * dt;
    // Bin: nucleation + condensation + collision (the full FSBM chain).
    fsbm::NuclConfig ncfg;
    ncfg.dt = dt;
    fsbm::jernucl01_ks(bins, t_bin, qv_bin, pres, w, ncfg);
    fsbm::CondConfig ccfg;
    ccfg.dt = dt;
    fsbm::onecond1(bins, t_bin, qv_bin, pres, w, ccfg);
    const fsbm::KernelSource ks(tables, pres);
    fsbm::CoalConfig kcfg;
    kcfg.dt = dt;
    fsbm::collect_pair(bins, fsbm::CollisionPair::kLL, ks, w.fl1, w.fl1,
                       w.fl1, kcfg);
    // Bulk: Kessler.
    bulk::kessler_cell(t_blk, qv_blk, pres, cell, dt);
  }

  std::printf("\nrain onset (first qr > 1e-5 kg/kg): bin %.0f s, bulk %.0f "
              "s\n",
              bin_rain_onset, blk_rain_onset);
  std::printf("\nstructural contrast (Figure 2): the bin scheme's %d "
              "explicit bins evolve\na continuous spectrum (collision "
              "kernel, no thresholds); the bulk scheme\ncarries 2 moments "
              "and converts qc->qr only above the autoconversion\n"
              "threshold of %.1e kg/kg.\n",
              bins.nkr(), bulk::KesslerParams{}.autoconv_threshold);
  std::printf("cost contrast per cell-step: bin O(20*nkr^2) kernel "
              "evaluations vs bulk O(1)\n");
  return 0;
}
