// Ablation: launch-geometry design choices of the offloaded kernel.
//
// Sweeps (a) threads per block (nvfortran's default 128 vs alternatives)
// and (b) registers per thread (the occupancy limiter the paper tuned:
// "manually limiting the register count resulted in significant speedup
// ... although further reduction beyond 64 appears to have no effect"),
// and (c) collapse depth, using the gpusim occupancy/timing model on the
// CONUS-rank-patch collision workload.

#include "bench_common.hpp"

using namespace wrf;

int main() {
  bench::print_config_header("ablation — offload launch geometry");

  const gpu::DeviceSpec spec = gpu::DeviceSpec::a100_40gb();
  const std::int64_t cells = 107LL * 75 * 50;  // one CONUS rank patch
  const double flops_per_cell = 2500.0;
  const double bytes_per_cell = 1800.0;

  auto model = [&](std::int64_t iters, int tpb, int regs) {
    gpu::Device dev(spec);
    dev.set_stack_limit(65536);
    dev.set_heap_limit(64ull << 20);
    gpu::KernelDesc k;
    k.name = "coal_ablation";
    k.iterations = iters;
    k.threads_per_block = tpb;
    k.regs_per_thread = regs;
    k.flops_per_iter = flops_per_cell * (cells / iters);
    k.bytes_per_iter = bytes_per_cell * (cells / iters);
    return dev.launch(k);
  };

  std::printf("(a) threads per block, collapse(3), 90 regs:\n");
  std::printf("%8s %14s %14s %10s\n", "tpb", "occupancy(%)", "time(ms)",
              "limiter");
  for (int tpb : {32, 64, 128, 256, 512}) {
    const auto ks = model(cells, tpb, 90);
    std::printf("%8d %14.2f %14.3f %10s\n", tpb,
                100.0 * ks.occupancy.achieved, ks.modeled_time_ms,
                ks.occupancy.limiter);
  }

  std::printf("\n(b) registers per thread, collapse(3), tpb=128 (the "
              "paper's register-limiting experiment):\n");
  std::printf("%8s %14s %14s %10s\n", "regs", "occupancy(%)", "time(ms)",
              "limiter");
  double t64 = 0.0, t32 = 0.0;
  for (int regs : {255, 192, 128, 90, 64, 48, 32}) {
    const auto ks = model(cells, 128, regs);
    if (regs == 64) t64 = ks.modeled_time_ms;
    if (regs == 32) t32 = ks.modeled_time_ms;
    std::printf("%8d %14.2f %14.3f %10s\n", regs,
                100.0 * ks.occupancy.achieved, ks.modeled_time_ms,
                ks.occupancy.limiter);
  }
  std::printf("  -> reduction beyond 64 registers has %s effect "
              "(paper: \"no effect\"; time ratio 64->32 regs: %.2f)\n",
              t32 > 0.95 * t64 ? "little" : "a large", t64 / t32);

  std::printf("\n(c) collapse depth (iterations exposed to the device), "
              "90 regs, tpb=128:\n");
  std::printf("%12s %12s %14s %14s\n", "collapse", "iters", "occupancy(%)",
              "time(ms)");
  const std::int64_t iters_by_collapse[] = {75, 75 * 50, cells};
  for (int c = 0; c < 3; ++c) {
    const auto ks = model(iters_by_collapse[c], 128, 90);
    std::printf("%12d %12lld %14.2f %14.3f\n", c + 1,
                static_cast<long long>(iters_by_collapse[c]),
                100.0 * ks.occupancy.achieved, ks.modeled_time_ms);
  }
  std::printf("\nshape check: collapse(1) starves the device, collapse(3) "
              "saturates the register-limited occupancy ceiling — the "
              "paper's Listing 6 -> Listing 8 progression.\n");
  return 0;
}
