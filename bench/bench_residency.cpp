// Residency sweep: per-step host<->device traffic of the offloaded FSBM
// versions under res=step (per-launch `target data` re-maps, the paper's
// as-ported behavior) vs res=persist (device-resident fields with dirty
// tracking), on one CONUS-12km rank patch in the device-resident
// stepping configuration (exec=device: every host nest modeled as a
// device kernel, so between collision launches only halo strips and
// host-side diagnostics cross the link).
//
// Shape target: steady-state h2d+d2h bytes/step under persist shrink by
// >= 5x vs step (single-rank CONUS has no neighbors, so persist's steady
// state is ~zero — the first step pays the one-time enter-data upload).
//
// Wall-clock is reported as a min/median/CV aggregate over N reps
// (bench_common.hpp) — on a loaded CI host only the counter columns are
// stable; the CV column says how much to trust the wall ones.
//
// Usage: bench_residency [nx ny nz nsteps] [--benchmark_format=json]
//   default grid: the 107x75x50 per-rank CONUS patch of Tables IV-VI.
//   JSON mode emits one google-benchmark-style record per
//   (version, res) cell; scripts/bench_json.sh distills the trajectory
//   point BENCH_residency.json from it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace wrf;

namespace {

struct Cell {
  fsbm::Version version;
  mem::ResidencyMode res;
  double h2d_first = 0, d2h_first = 0;    // bytes, first step
  double h2d_steady = 0, d2h_steady = 0;  // bytes per steady-state step
  double xfer_ms_steady = 0;              // modeled link ms per step
  double kernel_ms_step = 0;              // modeled kernel ms per step
  std::uint64_t resident_bytes = 0;
  bench::RepAggregate wall;               // whole-run wall seconds over reps
};

Cell measure(fsbm::Version v, mem::ResidencyMode res, int nx, int ny, int nz,
             int nsteps, int reps) {
  model::RunConfig cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.nz = nz;
  cfg.npx = cfg.npy = 1;
  cfg.nsteps = nsteps;
  cfg.version = v;
  cfg.res = res;
  cfg.exec.kind = exec::ExecKind::kDevice;  // device-resident stepping
  cfg.validate();

  const auto patches = grid::decompose(cfg.domain(), 1, 1, cfg.halo);
  model::RankModel rank(cfg, patches[0], nullptr);
  rank.init();
  prof::Profiler prof;
  std::vector<gpu::TransferStats> cum;
  cum.reserve(static_cast<std::size_t>(nsteps) + 1);
  cum.push_back(rank.device()->transfers());
  for (int s = 0; s < nsteps; ++s) {
    rank.step(prof);
    cum.push_back(rank.device()->transfers());
  }

  Cell c;
  c.version = v;
  c.res = res;
  c.h2d_first = static_cast<double>(cum[1].h2d_bytes - cum[0].h2d_bytes);
  c.d2h_first = static_cast<double>(cum[1].d2h_bytes - cum[0].d2h_bytes);
  const int steady = nsteps - 1;
  if (steady > 0) {
    const auto& a = cum[1];
    const auto& z = cum[static_cast<std::size_t>(nsteps)];
    c.h2d_steady = static_cast<double>(z.h2d_bytes - a.h2d_bytes) / steady;
    c.d2h_steady = static_cast<double>(z.d2h_bytes - a.d2h_bytes) / steady;
    c.xfer_ms_steady = (z.modeled_time_ms - a.modeled_time_ms) / steady;
  }
  c.kernel_ms_step = rank.device()->total_kernel_ms() / nsteps;
  c.resident_bytes = rank.scheme().resident_bytes();

  // Wall pass: whole-run wall over `reps` repetitions, fresh rank each.
  c.wall = bench::measure_reps(reps, [&]() {
    prof::Profiler p;
    return model::run_single(cfg, p).wall_sec;
  });
  return c;
}

double mb(double bytes) { return bytes / 1e6; }

void print_json(const std::vector<Cell>& cells, int nx, int ny, int nz,
                int nsteps) {
  std::printf("{\n  \"context\": {\"executable\": \"bench_residency\", "
              "\"grid\": \"%dx%dx%d\", \"nsteps\": %d, \"exec\": \"device\"},\n",
              nx, ny, nz, nsteps);
  std::printf("  \"benchmarks\": [\n");
  for (std::size_t n = 0; n < cells.size(); ++n) {
    const Cell& c = cells[n];
    std::printf(
        "    {\"name\": \"residency/%s/res=%s\", \"run_type\": \"aggregate\", "
        "\"h2d_bytes_first_step\": %.0f, \"d2h_bytes_first_step\": %.0f, "
        "\"h2d_bytes_per_step\": %.0f, \"d2h_bytes_per_step\": %.0f, "
        "\"transfer_ms_per_step\": %.6f, \"kernel_ms_per_step\": %.4f, "
        "\"resident_mb\": %.2f, \"wall_s_min\": %.4f, "
        "\"wall_s_median\": %.4f, \"wall_cv\": %.3f, \"reps\": %d}%s\n",
        fsbm::version_name(c.version), mem::residency_name(c.res),
        c.h2d_first, c.d2h_first, c.h2d_steady, c.d2h_steady,
        c.xfer_ms_steady, c.kernel_ms_step,
        mb(static_cast<double>(c.resident_bytes)),
        c.wall.min, c.wall.median, c.wall.cv, c.wall.reps,
        n + 1 < cells.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  int nx = 107, ny = 75, nz = 50, nsteps = 3;
  bool json = false;
  int npos = 0;
  int pos[4] = {0, 0, 0, 0};
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--benchmark_format=json") == 0) {
      json = true;
    } else if (npos < 4 && std::strchr(argv[a], '=') == nullptr) {
      pos[npos++] = std::atoi(argv[a]);
    }
  }
  if (npos == 4 && pos[0] > 0) {
    nx = pos[0];
    ny = pos[1];
    nz = pos[2];
    nsteps = pos[3];
  } else if (npos != 0) {
    std::fprintf(stderr,
                 "bench_residency: want all four of nx ny nz nsteps "
                 "(got %d positional args)\n", npos);
    return 2;
  }
  if (nsteps < 2) nsteps = 2;  // steady state needs a second step
  const int reps = 3;

  std::vector<Cell> cells;
  for (const fsbm::Version v :
       {fsbm::Version::kV2Offload2, fsbm::Version::kV3Offload3}) {
    for (const mem::ResidencyMode res :
         {mem::ResidencyMode::kStep, mem::ResidencyMode::kPersist}) {
      cells.push_back(measure(v, res, nx, ny, nz, nsteps, reps));
    }
  }

  // Shape check on v3 — the acceptance bar for the residency subsystem;
  // enforced through the exit code in BOTH output modes so the CI smoke
  // (which runs via scripts/bench_json.sh) actually asserts it.
  auto find_cell = [&](fsbm::Version v, mem::ResidencyMode res) -> const Cell& {
    for (const Cell& c : cells) {
      if (c.version == v && c.res == res) return c;
    }
    std::fprintf(stderr, "bench_residency: missing sweep cell\n");
    std::exit(2);
  };
  const Cell& step3 =
      find_cell(fsbm::Version::kV3Offload3, mem::ResidencyMode::kStep);
  const Cell& pers3 =
      find_cell(fsbm::Version::kV3Offload3, mem::ResidencyMode::kPersist);
  const double step_bytes = step3.h2d_steady + step3.d2h_steady;
  const double pers_bytes = pers3.h2d_steady + pers3.d2h_steady;
  const double reduction = step_bytes / (pers_bytes > 0 ? pers_bytes : 1.0);
  const int exit_code = reduction >= 5.0 ? 0 : 1;

  if (json) {
    print_json(cells, nx, ny, nz, nsteps);
    return exit_code;
  }

  bench::print_config_header("Residency sweep — res=step vs res=persist");
  std::printf("CONUS rank patch %dx%dx%d, %d steps, exec=device "
              "(device-resident stepping), %d wall reps\n\n",
              nx, ny, nz, nsteps, reps);
  std::printf("  %-24s %-8s %12s %12s %12s %10s %10s %8s\n", "version",
              "res", "h2d MB/st", "d2h MB/st", "first h2d", "xfer ms/st",
              "wall med s", "wall CV");
  for (const Cell& c : cells) {
    std::printf("  %-24s %-8s %12.3f %12.3f %12.1f %10.4f %10.3f %8.3f\n",
                fsbm::version_name(c.version), mem::residency_name(c.res),
                mb(c.h2d_steady), mb(c.d2h_steady), mb(c.h2d_first),
                c.xfer_ms_steady, c.wall.median, c.wall.cv);
  }
  std::printf("\n");

  std::printf("v3 steady-state traffic: step %.1f MB/step, persist %.3f "
              "MB/step -> %.0fx reduction (resident %.0f MB pinned)\n",
              mb(step_bytes), mb(pers_bytes), reduction,
              mb(static_cast<double>(pers3.resident_bytes)));
  std::printf("shape check: persist cuts steady-state h2d+d2h by >=5x "
              "(%s)\n", exit_code == 0 ? "yes" : "NO");
  return exit_code;
}
