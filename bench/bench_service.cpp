// Forecast-service sweep: one fixed mixed-class job stream dispatched
// over pools of 1, 2 and 4 lanes (svc::Scheduler), reporting service
// metrics — makespan, throughput, p50/p95 queue wait, per-class mean
// wait, pool parallelism/occupancy, batching — at each pool width.
//
// Shape targets, enforced through the exit code in BOTH output modes:
//   (a) the pool actually multiplexes: pool_parallelism >= 0.5 x lanes
//       at every width (lane busy windows overlap in wall time even on
//       a single timesliced hardware thread);
//   (b) wider pools start jobs sooner: p50 queue wait at the widest
//       pool strictly below the 1-lane p50;
//   (c) fair-share holds under saturation: per-class mean wait ordered
//       interactive <= ensemble <= batch on the saturated 1-lane pool
//       (weights 8/3/1);
//   (d) ensemble members batch: at least one multi-job dispatch at
//       every width with batch_max > 1;
//   (e) nothing fails or is rejected mid-run, and throughput at the
//       widest pool stays within 0.8x of the 1-lane pool even with zero
//       spare hardware threads (wall throughput only *gains* when
//       min(lanes, hw_threads) > 1 — reported, not gated, since CI
//       hosts vary).
//
// Usage: bench_service [jobs_per_class] [reps=N] [--benchmark_format=json]
//   default 8 jobs per class (24 jobs per pool width) and 3 whole-stream
//   repetitions per width — every wall metric is a min/median/CV
//   aggregate over the reps and the committed numbers are medians; the
//   CI smoke passes 3 jobs per class.  JSON mode emits one record per
//   pool width; scripts/bench_json.sh distills BENCH_service.json.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "svc/scheduler.hpp"

using namespace wrf;

namespace {

struct Sweep {
  int lanes = 0;
  int jobs = 0;
  svc::ServiceStats stats;
  double wait_p50 = 0.0, wait_p95 = 0.0;
  double class_wait_mean[svc::kNumClasses] = {0, 0, 0};
  double jobs_per_sec = 0.0;
};

/// One pool width measured over N whole-stream repetitions: every wall
/// metric is an aggregate_samples() min/median/CV over the reps (the
/// committed numbers are medians, with the makespan CV as the stability
/// gauge); counters come from the last rep, with the cleanliness gates
/// checked in every rep.
struct SweepAgg {
  int lanes = 0;
  int jobs = 0;
  bench::RepAggregate makespan;
  bench::RepAggregate jobs_per_sec;
  bench::RepAggregate wait_p50;
  bench::RepAggregate wait_p95;
  bench::RepAggregate class_wait_mean[svc::kNumClasses];
  bench::RepAggregate pool_parallelism;
  svc::ServiceStats stats;        ///< last rep (counters)
  bool clean_all_reps = true;     ///< every rep completed everything
  bool batched_all_reps = true;   ///< every rep saw a multi-job dispatch
};

model::RunConfig scenario(int nx, int ny, int nz, int nsteps,
                          fsbm::Version v, mem::ResidencyMode res,
                          std::uint64_t seed) {
  model::RunConfig cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.nz = nz;
  cfg.nsteps = nsteps;
  cfg.npx = cfg.npy = 1;
  cfg.version = v;
  cfg.res = res;
  cfg.seed = seed;
  return cfg;
}

/// The fixed stream: jobs_per_class of each class, submitted paused so
/// the dispatch order is a pure function of the queue, then released.
Sweep run_pool(int lanes, int jobs_per_class) {
  svc::SchedulerConfig sc;
  sc.lanes = lanes;
  sc.batch_max = 4;
  sc.start_paused = true;
  svc::Scheduler sched(sc);

  for (int n = 0; n < jobs_per_class; ++n) {
    // On-demand nowcasts: offloaded v3, persistent residency, deadline.
    svc::Job job;
    job.cls = svc::JobClass::kInteractive;
    job.deadline_sec = 600.0;
    job.config = scenario(24, 16, 10, 2, fsbm::Version::kV3Offload3,
                          mem::ResidencyMode::kPersist, 100 + n);
    sched.submit(job);
  }
  for (int n = 0; n < jobs_per_class; ++n) {
    // Perturbed ensemble members: same shape, different seeds.
    svc::Job job;
    job.cls = svc::JobClass::kEnsemble;
    job.config = scenario(20, 14, 8, 2, fsbm::Version::kV2Offload2,
                          mem::ResidencyMode::kStep, 200 + n);
    sched.submit(job);
  }
  for (int n = 0; n < jobs_per_class; ++n) {
    // Background reanalysis: host-only, no deadline.
    svc::Job job;
    job.cls = svc::JobClass::kBatch;
    job.config = scenario(16, 12, 8, 3, fsbm::Version::kV1LookupOnDemand,
                          mem::ResidencyMode::kStep, 300 + n);
    sched.submit(job);
  }

  sched.drain();
  Sweep s;
  s.lanes = lanes;
  s.jobs = 3 * jobs_per_class;
  s.stats = sched.stats();
  sched.shutdown();

  std::vector<double> waits;
  double wait_sum[svc::kNumClasses] = {0, 0, 0};
  int wait_n[svc::kNumClasses] = {0, 0, 0};
  for (const svc::JobResult& r : sched.take_results()) {
    if (r.outcome != svc::JobOutcome::kCompleted) continue;
    waits.push_back(r.wait_sec());
    wait_sum[static_cast<int>(r.cls)] += r.wait_sec();
    ++wait_n[static_cast<int>(r.cls)];
  }
  std::sort(waits.begin(), waits.end());
  if (!waits.empty()) {
    s.wait_p50 = waits[waits.size() / 2];
    s.wait_p95 = waits[static_cast<std::size_t>(
        0.95 * static_cast<double>(waits.size() - 1))];
  }
  for (int c = 0; c < svc::kNumClasses; ++c) {
    s.class_wait_mean[c] =
        wait_n[c] > 0 ? wait_sum[c] / wait_n[c] : 0.0;
  }
  const double span = s.stats.makespan_sec();
  s.jobs_per_sec =
      span > 0.0 ? static_cast<double>(s.stats.completed()) / span : 0.0;
  return s;
}

SweepAgg run_pool_reps(int lanes, int jobs_per_class, int reps) {
  SweepAgg agg;
  agg.lanes = lanes;
  agg.jobs = 3 * jobs_per_class;
  std::vector<double> makespan, jps, p50, p95, par;
  std::vector<double> cls_mean[svc::kNumClasses];
  for (int r = 0; r < reps; ++r) {
    const Sweep s = run_pool(lanes, jobs_per_class);
    makespan.push_back(s.stats.makespan_sec());
    jps.push_back(s.jobs_per_sec);
    p50.push_back(s.wait_p50);
    p95.push_back(s.wait_p95);
    par.push_back(s.stats.pool_parallelism());
    for (int c = 0; c < svc::kNumClasses; ++c) {
      cls_mean[c].push_back(s.class_wait_mean[c]);
    }
    agg.clean_all_reps = agg.clean_all_reps && s.stats.failed() == 0 &&
                         s.stats.rejected() == 0 &&
                         s.stats.completed() ==
                             static_cast<std::uint64_t>(s.jobs);
    agg.batched_all_reps = agg.batched_all_reps && s.stats.batches > 0;
    agg.stats = s.stats;
  }
  agg.makespan = bench::aggregate_samples(makespan);
  agg.jobs_per_sec = bench::aggregate_samples(jps);
  agg.wait_p50 = bench::aggregate_samples(p50);
  agg.wait_p95 = bench::aggregate_samples(p95);
  agg.pool_parallelism = bench::aggregate_samples(par);
  for (int c = 0; c < svc::kNumClasses; ++c) {
    agg.class_wait_mean[c] = bench::aggregate_samples(cls_mean[c]);
  }
  return agg;
}

void print_json(const std::vector<SweepAgg>& sweeps, int jobs_per_class,
                unsigned hw_threads) {
  std::printf("{\n  \"context\": {\"executable\": \"bench_service\", "
              "\"jobs_per_class\": %d, \"batch_max\": 4, "
              "\"class_weights\": [8, 3, 1], \"hw_threads\": %u},\n",
              jobs_per_class, hw_threads);
  std::printf("  \"benchmarks\": [\n");
  for (std::size_t n = 0; n < sweeps.size(); ++n) {
    const SweepAgg& s = sweeps[n];
    // Wall metrics are rep medians (historical key names unchanged);
    // makespan additionally reports its min and CV, and `reps` records
    // the sample count behind every aggregate.
    std::printf(
        "    {\"name\": \"service/lanes=%d\", \"run_type\": \"aggregate\", "
        "\"jobs\": %d, \"completed\": %llu, \"rejected\": %llu, "
        "\"failed\": %llu, \"makespan_s\": %.4f, \"makespan_min_s\": %.4f, "
        "\"makespan_cv\": %.3f, \"reps\": %d, \"jobs_per_s\": %.3f, "
        "\"wait_p50_s\": %.4f, \"wait_p95_s\": %.4f, "
        "\"wait_mean_interactive_s\": %.4f, \"wait_mean_ensemble_s\": %.4f, "
        "\"wait_mean_batch_s\": %.4f, \"pool_parallelism\": %.3f, "
        "\"occupancy\": %.3f, \"dispatches\": %llu, \"batches\": %llu, "
        "\"batched_jobs\": %llu, \"deadline_met\": %llu, "
        "\"deadline_jobs\": %llu}%s\n",
        s.lanes, s.jobs,
        static_cast<unsigned long long>(s.stats.completed()),
        static_cast<unsigned long long>(s.stats.rejected()),
        static_cast<unsigned long long>(s.stats.failed()),
        s.makespan.median, s.makespan.min, s.makespan.cv, s.makespan.reps,
        s.jobs_per_sec.median, s.wait_p50.median, s.wait_p95.median,
        s.class_wait_mean[0].median, s.class_wait_mean[1].median,
        s.class_wait_mean[2].median, s.pool_parallelism.median,
        s.lanes > 0 ? s.pool_parallelism.median / s.lanes : 0.0,
        static_cast<unsigned long long>(s.stats.dispatches),
        static_cast<unsigned long long>(s.stats.batches),
        static_cast<unsigned long long>(s.stats.batched_jobs),
        static_cast<unsigned long long>(
            s.stats.cls[0].deadline_met),
        static_cast<unsigned long long>(
            s.stats.cls[0].deadline_jobs),
        n + 1 < sweeps.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  int jobs_per_class = 8;
  int reps = 3;
  bool json = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--benchmark_format=json") == 0) {
      json = true;
    } else if (std::strncmp(argv[a], "reps=", 5) == 0) {
      reps = std::atoi(argv[a] + 5);
    } else if (std::strchr(argv[a], '=') == nullptr) {
      jobs_per_class = std::atoi(argv[a]);
    }
  }
  if (jobs_per_class < 2) jobs_per_class = 2;
  if (reps < 1) reps = 1;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::vector<SweepAgg> sweeps;
  for (const int lanes : {1, 2, 4}) {
    sweeps.push_back(run_pool_reps(lanes, jobs_per_class, reps));
  }

  // Shape gates evaluated on rep medians (single-shot values were one
  // scheduler-timing sample; medians make the committed numbers and the
  // exit code reproducible).
  const SweepAgg& one = sweeps.front();
  const SweepAgg& widest = sweeps.back();
  bool parallelism_ok = true, batching_ok = true, clean = true;
  for (const SweepAgg& s : sweeps) {
    parallelism_ok =
        parallelism_ok && s.pool_parallelism.median >= 0.5 * s.lanes;
    batching_ok = batching_ok && s.batched_all_reps;
    clean = clean && s.clean_all_reps;
  }
  const bool waits_shrink = widest.wait_p50.median < one.wait_p50.median;
  const bool fair_share_ordered =
      one.class_wait_mean[0].median <= one.class_wait_mean[1].median &&
      one.class_wait_mean[1].median <= one.class_wait_mean[2].median;
  const bool throughput_holds =
      widest.jobs_per_sec.median >= 0.8 * one.jobs_per_sec.median;
  const int exit_code = (parallelism_ok && batching_ok && clean &&
                         waits_shrink && fair_share_ordered &&
                         throughput_holds)
                            ? 0
                            : 1;

  if (json) {
    print_json(sweeps, jobs_per_class, hw);
    return exit_code;
  }

  bench::print_config_header(
      "Forecast service — one job stream, pool widths 1/2/4");
  std::printf("stream: %d jobs per class (interactive v3/persist with "
              "deadlines, ensemble v2/step same-shape members, batch "
              "v1 host-only), weights 8/3/1, batch_max 4, %u hardware "
              "threads, %d whole-stream reps (medians below, makespan "
              "CV as stability gauge)\n\n", jobs_per_class, hw, reps);
  std::printf("  %5s %9s %7s %8s %8s %8s %22s %8s %7s\n", "lanes",
              "makespan", "mk CV", "jobs/s", "p50 wait", "p95 wait",
              "mean wait I/E/B (s)", "pool par", "batches");
  for (const SweepAgg& s : sweeps) {
    std::printf("  %5d %8.3fs %7.3f %8.3f %7.3fs %7.3fs %6.3f %6.3f "
                "%6.3f %8.2f %7llu\n",
                s.lanes, s.makespan.median, s.makespan.cv,
                s.jobs_per_sec.median, s.wait_p50.median,
                s.wait_p95.median, s.class_wait_mean[0].median,
                s.class_wait_mean[1].median, s.class_wait_mean[2].median,
                s.pool_parallelism.median,
                static_cast<unsigned long long>(s.stats.batches));
  }
  std::printf("\nexpected wall-throughput scaling on this host: "
              "min(lanes, hw_threads) = %d at the widest pool\n",
              std::min(widest.lanes, static_cast<int>(hw)));
  std::printf("shape checks: pool_parallelism >= 0.5 x lanes (%s); "
              "p50 wait shrinks 1 -> %d lanes (%s); 1-lane mean wait "
              "ordered I <= E <= B (%s); batching at every width (%s); "
              "clean completions (%s); widest-pool throughput >= 0.8 x "
              "1-lane (%s)\n",
              parallelism_ok ? "yes" : "NO", widest.lanes,
              waits_shrink ? "yes" : "NO",
              fair_share_ordered ? "yes" : "NO",
              batching_ok ? "yes" : "NO", clean ? "yes" : "NO",
              throughput_holds ? "yes" : "NO");
  return exit_code;
}
