// Forecast-service sweep: one fixed mixed-class job stream dispatched
// over pools of 1, 2 and 4 lanes (svc::Scheduler), reporting service
// metrics — makespan, throughput, p50/p95 queue wait, per-class mean
// wait, pool parallelism/occupancy, batching — at each pool width.
//
// Shape targets, enforced through the exit code in BOTH output modes:
//   (a) the pool actually multiplexes: pool_parallelism >= 0.5 x lanes
//       at every width (lane busy windows overlap in wall time even on
//       a single timesliced hardware thread);
//   (b) wider pools start jobs sooner: p50 queue wait at the widest
//       pool strictly below the 1-lane p50;
//   (c) fair-share holds under saturation: per-class mean wait ordered
//       interactive <= ensemble <= batch on the saturated 1-lane pool
//       (weights 8/3/1);
//   (d) ensemble members batch: at least one multi-job dispatch at
//       every width with batch_max > 1;
//   (e) nothing fails or is rejected mid-run, and throughput at the
//       widest pool stays within 0.8x of the 1-lane pool even with zero
//       spare hardware threads (wall throughput only *gains* when
//       min(lanes, hw_threads) > 1 — reported, not gated, since CI
//       hosts vary).
//
// Usage: bench_service [jobs_per_class] [--benchmark_format=json]
//   default 8 jobs per class (24 jobs per pool width); the CI smoke
//   passes 3.  JSON mode emits one record per pool width;
//   scripts/bench_json.sh distills BENCH_service.json from it.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "svc/scheduler.hpp"

using namespace wrf;

namespace {

struct Sweep {
  int lanes = 0;
  int jobs = 0;
  svc::ServiceStats stats;
  double wait_p50 = 0.0, wait_p95 = 0.0;
  double class_wait_mean[svc::kNumClasses] = {0, 0, 0};
  double jobs_per_sec = 0.0;
};

model::RunConfig scenario(int nx, int ny, int nz, int nsteps,
                          fsbm::Version v, mem::ResidencyMode res,
                          std::uint64_t seed) {
  model::RunConfig cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.nz = nz;
  cfg.nsteps = nsteps;
  cfg.npx = cfg.npy = 1;
  cfg.version = v;
  cfg.res = res;
  cfg.seed = seed;
  return cfg;
}

/// The fixed stream: jobs_per_class of each class, submitted paused so
/// the dispatch order is a pure function of the queue, then released.
Sweep run_pool(int lanes, int jobs_per_class) {
  svc::SchedulerConfig sc;
  sc.lanes = lanes;
  sc.batch_max = 4;
  sc.start_paused = true;
  svc::Scheduler sched(sc);

  for (int n = 0; n < jobs_per_class; ++n) {
    // On-demand nowcasts: offloaded v3, persistent residency, deadline.
    svc::Job job;
    job.cls = svc::JobClass::kInteractive;
    job.deadline_sec = 600.0;
    job.config = scenario(24, 16, 10, 2, fsbm::Version::kV3Offload3,
                          mem::ResidencyMode::kPersist, 100 + n);
    sched.submit(job);
  }
  for (int n = 0; n < jobs_per_class; ++n) {
    // Perturbed ensemble members: same shape, different seeds.
    svc::Job job;
    job.cls = svc::JobClass::kEnsemble;
    job.config = scenario(20, 14, 8, 2, fsbm::Version::kV2Offload2,
                          mem::ResidencyMode::kStep, 200 + n);
    sched.submit(job);
  }
  for (int n = 0; n < jobs_per_class; ++n) {
    // Background reanalysis: host-only, no deadline.
    svc::Job job;
    job.cls = svc::JobClass::kBatch;
    job.config = scenario(16, 12, 8, 3, fsbm::Version::kV1LookupOnDemand,
                          mem::ResidencyMode::kStep, 300 + n);
    sched.submit(job);
  }

  sched.drain();
  Sweep s;
  s.lanes = lanes;
  s.jobs = 3 * jobs_per_class;
  s.stats = sched.stats();
  sched.shutdown();

  std::vector<double> waits;
  double wait_sum[svc::kNumClasses] = {0, 0, 0};
  int wait_n[svc::kNumClasses] = {0, 0, 0};
  for (const svc::JobResult& r : sched.take_results()) {
    if (r.outcome != svc::JobOutcome::kCompleted) continue;
    waits.push_back(r.wait_sec());
    wait_sum[static_cast<int>(r.cls)] += r.wait_sec();
    ++wait_n[static_cast<int>(r.cls)];
  }
  std::sort(waits.begin(), waits.end());
  if (!waits.empty()) {
    s.wait_p50 = waits[waits.size() / 2];
    s.wait_p95 = waits[static_cast<std::size_t>(
        0.95 * static_cast<double>(waits.size() - 1))];
  }
  for (int c = 0; c < svc::kNumClasses; ++c) {
    s.class_wait_mean[c] =
        wait_n[c] > 0 ? wait_sum[c] / wait_n[c] : 0.0;
  }
  const double span = s.stats.makespan_sec();
  s.jobs_per_sec =
      span > 0.0 ? static_cast<double>(s.stats.completed()) / span : 0.0;
  return s;
}

void print_json(const std::vector<Sweep>& sweeps, int jobs_per_class,
                unsigned hw_threads) {
  std::printf("{\n  \"context\": {\"executable\": \"bench_service\", "
              "\"jobs_per_class\": %d, \"batch_max\": 4, "
              "\"class_weights\": [8, 3, 1], \"hw_threads\": %u},\n",
              jobs_per_class, hw_threads);
  std::printf("  \"benchmarks\": [\n");
  for (std::size_t n = 0; n < sweeps.size(); ++n) {
    const Sweep& s = sweeps[n];
    std::printf(
        "    {\"name\": \"service/lanes=%d\", \"run_type\": \"aggregate\", "
        "\"jobs\": %d, \"completed\": %llu, \"rejected\": %llu, "
        "\"failed\": %llu, \"makespan_s\": %.4f, \"jobs_per_s\": %.3f, "
        "\"wait_p50_s\": %.4f, \"wait_p95_s\": %.4f, "
        "\"wait_mean_interactive_s\": %.4f, \"wait_mean_ensemble_s\": %.4f, "
        "\"wait_mean_batch_s\": %.4f, \"pool_parallelism\": %.3f, "
        "\"occupancy\": %.3f, \"dispatches\": %llu, \"batches\": %llu, "
        "\"batched_jobs\": %llu, \"deadline_met\": %llu, "
        "\"deadline_jobs\": %llu}%s\n",
        s.lanes, s.jobs,
        static_cast<unsigned long long>(s.stats.completed()),
        static_cast<unsigned long long>(s.stats.rejected()),
        static_cast<unsigned long long>(s.stats.failed()),
        s.stats.makespan_sec(), s.jobs_per_sec, s.wait_p50, s.wait_p95,
        s.class_wait_mean[0], s.class_wait_mean[1], s.class_wait_mean[2],
        s.stats.pool_parallelism(), s.stats.occupancy(),
        static_cast<unsigned long long>(s.stats.dispatches),
        static_cast<unsigned long long>(s.stats.batches),
        static_cast<unsigned long long>(s.stats.batched_jobs),
        static_cast<unsigned long long>(
            s.stats.cls[0].deadline_met),
        static_cast<unsigned long long>(
            s.stats.cls[0].deadline_jobs),
        n + 1 < sweeps.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  int jobs_per_class = 8;
  bool json = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--benchmark_format=json") == 0) {
      json = true;
    } else if (std::strchr(argv[a], '=') == nullptr) {
      jobs_per_class = std::atoi(argv[a]);
    }
  }
  if (jobs_per_class < 2) jobs_per_class = 2;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::vector<Sweep> sweeps;
  for (const int lanes : {1, 2, 4}) {
    sweeps.push_back(run_pool(lanes, jobs_per_class));
  }

  const Sweep& one = sweeps.front();
  const Sweep& widest = sweeps.back();
  bool parallelism_ok = true, batching_ok = true, clean = true;
  for (const Sweep& s : sweeps) {
    parallelism_ok = parallelism_ok &&
                     s.stats.pool_parallelism() >= 0.5 * s.lanes;
    batching_ok = batching_ok && s.stats.batches > 0;
    clean = clean && s.stats.failed() == 0 && s.stats.rejected() == 0 &&
            s.stats.completed() == static_cast<std::uint64_t>(s.jobs);
  }
  const bool waits_shrink = widest.wait_p50 < one.wait_p50;
  const bool fair_share_ordered =
      one.class_wait_mean[0] <= one.class_wait_mean[1] &&
      one.class_wait_mean[1] <= one.class_wait_mean[2];
  const bool throughput_holds =
      widest.jobs_per_sec >= 0.8 * one.jobs_per_sec;
  const int exit_code = (parallelism_ok && batching_ok && clean &&
                         waits_shrink && fair_share_ordered &&
                         throughput_holds)
                            ? 0
                            : 1;

  if (json) {
    print_json(sweeps, jobs_per_class, hw);
    return exit_code;
  }

  bench::print_config_header(
      "Forecast service — one job stream, pool widths 1/2/4");
  std::printf("stream: %d jobs per class (interactive v3/persist with "
              "deadlines, ensemble v2/step same-shape members, batch "
              "v1 host-only), weights 8/3/1, batch_max 4, %u hardware "
              "threads\n\n", jobs_per_class, hw);
  std::printf("  %5s %9s %8s %8s %8s %22s %8s %7s %7s\n", "lanes",
              "makespan", "jobs/s", "p50 wait", "p95 wait",
              "mean wait I/E/B (s)", "pool par", "occup", "batches");
  for (const Sweep& s : sweeps) {
    std::printf("  %5d %8.3fs %8.3f %7.3fs %7.3fs %6.3f %6.3f %6.3f "
                "%8.2f %6.0f%% %7llu\n",
                s.lanes, s.stats.makespan_sec(), s.jobs_per_sec,
                s.wait_p50, s.wait_p95, s.class_wait_mean[0],
                s.class_wait_mean[1], s.class_wait_mean[2],
                s.stats.pool_parallelism(), 100.0 * s.stats.occupancy(),
                static_cast<unsigned long long>(s.stats.batches));
  }
  std::printf("\nexpected wall-throughput scaling on this host: "
              "min(lanes, hw_threads) = %d at the widest pool\n",
              std::min(widest.lanes, static_cast<int>(hw)));
  std::printf("shape checks: pool_parallelism >= 0.5 x lanes (%s); "
              "p50 wait shrinks 1 -> %d lanes (%s); 1-lane mean wait "
              "ordered I <= E <= B (%s); batching at every width (%s); "
              "clean completions (%s); widest-pool throughput >= 0.8 x "
              "1-lane (%s)\n",
              parallelism_ok ? "yes" : "NO", widest.lanes,
              waits_shrink ? "yes" : "NO",
              fair_share_ordered ? "yes" : "NO",
              batching_ok ? "yes" : "NO", clean ? "yes" : "NO",
              throughput_holds ? "yes" : "NO");
  return exit_code;
}
