// Google-benchmark microbenchmarks of the primitives behind the paper's
// optimizations: kernals_ks vs on-demand get_cw, the Bott collision
// sweep, condensation, and the advection stencils.  These quantify the
// per-cell costs that the table benches aggregate.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "dyn/advection.hpp"
#include "fsbm/coal_bott.hpp"
#include "fsbm/kernels.hpp"
#include "fsbm/onecond.hpp"
#include "fsbm/sedimentation.hpp"
#include "util/constants.hpp"
#include "util/rng.hpp"

using namespace wrf;

namespace {

const fsbm::BinGrid& bins33() {
  static const fsbm::BinGrid b(33);
  return b;
}
const fsbm::KernelTables& tables33() {
  static const fsbm::KernelTables t(bins33());
  return t;
}

std::vector<float> spectrum() {
  std::vector<float> g(33, 0.0f);
  Rng rng(7);
  for (int k = 0; k < 20; ++k) {
    g[static_cast<std::size_t>(k)] =
        static_cast<float>(1e-4 * (0.5 + rng.uniform()));
  }
  return g;
}

/// v0's per-cell cost: fill all 20 nkr x nkr interpolated arrays.
void BM_KernalsKsFill(benchmark::State& state) {
  fsbm::CollisionArrays arrays(33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tables33().kernals_ks(70000.0, arrays));
  }
  state.SetItemsProcessed(state.iterations() * 20 * 33 * 33);
}
BENCHMARK(BM_KernalsKsFill);

/// v1's per-entry cost: one on-demand interpolation.
void BM_GetCwOnDemand(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tables33().get_cw(
        fsbm::CollisionPair::kLS, i % 33, (i / 33) % 33, 70000.0));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GetCwOnDemand);

/// One warm-rain collision sweep over a realistic spectrum.
void BM_CollectPairLL(benchmark::State& state) {
  auto base = spectrum();
  fsbm::CoalConfig cfg;
  for (auto _ : state) {
    auto g = base;
    const fsbm::KernelSource ks(tables33(), 70000.0);
    benchmark::DoNotOptimize(
        fsbm::collect_pair(bins33(), fsbm::CollisionPair::kLL, ks, g.data(),
                           g.data(), g.data(), cfg));
  }
}
BENCHMARK(BM_CollectPairLL);

/// Full cold-cell collision step: all 20 pair classes.
void BM_CoalBottNewColdCell(benchmark::State& state) {
  float buf[(4 + fsbm::kIceMax) * fsbm::kMaxNkr] = {};
  fsbm::CoalWorkspace w;
  w.fl1 = buf;
  w.g2 = buf + 33;
  w.g3 = buf + 33 * (1 + fsbm::kIceMax);
  w.g4 = buf + 33 * (2 + fsbm::kIceMax);
  w.g5 = buf + 33 * (3 + fsbm::kIceMax);
  auto liq = spectrum();
  fsbm::CoalConfig cfg;
  for (auto _ : state) {
    std::copy(liq.begin(), liq.end(), w.fl1);
    for (int k = 4; k < 16; ++k) {
      w.g3[k] = 2e-5f;
      w.g4[k] = 1e-5f;
    }
    const fsbm::KernelSource ks(tables33(), 55000.0);
    benchmark::DoNotOptimize(
        fsbm::coal_bott_new(bins33(), 258.0, ks, w, cfg));
  }
}
BENCHMARK(BM_CoalBottNewColdCell);

/// Bin condensation for one cell.
void BM_Onecond1(benchmark::State& state) {
  float buf[(4 + fsbm::kIceMax) * fsbm::kMaxNkr] = {};
  fsbm::CoalWorkspace w;
  w.fl1 = buf;
  w.g2 = buf + 33;
  w.g3 = buf + 33 * (1 + fsbm::kIceMax);
  w.g4 = buf + 33 * (2 + fsbm::kIceMax);
  w.g5 = buf + 33 * (3 + fsbm::kIceMax);
  auto liq = spectrum();
  fsbm::CondConfig cfg;
  for (auto _ : state) {
    std::copy(liq.begin(), liq.end(), w.fl1);
    double t = 285.0;
    double qv = 1.05 * constants::qsat_liquid(285.0, 90000.0);
    benchmark::DoNotOptimize(
        fsbm::onecond1(bins33(), t, qv, 90000.0, w, cfg));
  }
}
BENCHMARK(BM_Onecond1);

constexpr int kSedNz = 24;

/// A column of sparse random spectra (level-major, bin fastest) plus an
/// exponential density profile, as the sedimentation pass sees them.
void random_sed_column(Rng& rng, std::vector<float>& g,
                       std::vector<double>& rho) {
  g.assign(static_cast<std::size_t>(kSedNz) * 33, 0.0f);
  rho.resize(static_cast<std::size_t>(kSedNz));
  for (int iz = 0; iz < kSedNz; ++iz) {
    rho[static_cast<std::size_t>(iz)] = 1.2 * std::exp(-iz * 0.06);
    for (int k = 8; k < 30; ++k) {
      if (rng.uniform() < 0.4) {
        g[static_cast<std::size_t>(iz) * 33 + k] =
            static_cast<float>(1e-4 * rng.uniform());
      }
    }
  }
}

/// The per-column oracle: terminal-velocity lookups paid per
/// (bin, level, substep).
void BM_SedimentColumn(benchmark::State& state) {
  Rng rng(11);
  std::vector<float> base;
  std::vector<double> rho;
  random_sed_column(rng, base, rho);
  fsbm::SedConfig cfg;
  for (auto _ : state) {
    auto g = base;
    benchmark::DoNotOptimize(
        fsbm::sediment_column(bins33(), fsbm::Species::kLiquid, g.data(),
                              rho.data(), kSedNz, cfg));
  }
  state.SetItemsProcessed(state.iterations() * kSedNz * 33);
}
BENCHMARK(BM_SedimentColumn);

/// The blocked solver at N columns: one power-law lookup per bin per
/// block, density corrections shared across bins, lockstep substeps.
void BM_SedimentBlock(benchmark::State& state) {
  const int ncol = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<float> base_blk(static_cast<std::size_t>(kSedNz) * 33 * ncol);
  std::vector<double> rho_blk(static_cast<std::size_t>(kSedNz) * ncol);
  for (int c = 0; c < ncol; ++c) {
    std::vector<float> g;
    std::vector<double> rho;
    random_sed_column(rng, g, rho);
    for (int iz = 0; iz < kSedNz; ++iz) {
      rho_blk[static_cast<std::size_t>(iz) * ncol + c] =
          rho[static_cast<std::size_t>(iz)];
      for (int k = 0; k < 33; ++k) {
        base_blk[(static_cast<std::size_t>(iz) * 33 + k) * ncol + c] =
            g[static_cast<std::size_t>(iz) * 33 + k];
      }
    }
  }
  fsbm::SedConfig cfg;
  std::vector<double> precip(static_cast<std::size_t>(ncol));
  for (auto _ : state) {
    auto g = base_blk;
    benchmark::DoNotOptimize(
        fsbm::sediment_block(bins33(), fsbm::Species::kLiquid, g.data(),
                             rho_blk.data(), kSedNz, ncol, cfg,
                             precip.data()));
  }
  state.SetItemsProcessed(state.iterations() * kSedNz * 33 * ncol);
}
BENCHMARK(BM_SedimentBlock)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

/// The 5th/3rd-order advection tendency for one 32^3-ish patch.
void BM_RkScalarTend(benchmark::State& state) {
  grid::Domain d{Range{1, 32}, Range{1, 20}, Range{1, 32}};
  const grid::Patch p = grid::decompose(d, 1, 1, 3)[0];
  Field3D<float> q(p.im, p.k, p.jm, 1.0f);
  Field3D<float> tend(p.im, p.k, p.jm);
  dyn::AnalyticWinds winds;
  winds.domain = d;
  dyn::AdvConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dyn::rk_scalar_tend(p, q, winds, cfg, tend));
  }
  state.SetItemsProcessed(state.iterations() * d.cells());
}
BENCHMARK(BM_RkScalarTend);

/// Per-bin advection of a 33-bin field (what makes WRF scalar transport
/// expensive when FSBM is enabled).
void BM_RkScalarTendBins(benchmark::State& state) {
  grid::Domain d{Range{1, 16}, Range{1, 12}, Range{1, 16}};
  const grid::Patch p = grid::decompose(d, 1, 1, 3)[0];
  Field4D<float> q(33, p.im, p.k, p.jm, 1.0f);
  Field4D<float> tend(33, p.im, p.k, p.jm);
  dyn::AnalyticWinds winds;
  winds.domain = d;
  dyn::AdvConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dyn::rk_scalar_tend_bins(p, q, winds, cfg, tend));
  }
  state.SetItemsProcessed(state.iterations() * d.cells() * 33);
}
BENCHMARK(BM_RkScalarTendBins);

}  // namespace

BENCHMARK_MAIN();
