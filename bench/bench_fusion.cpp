// Fusion sweep: kernel-launch counts and inter-pass transfer traffic of
// the fused pass graph (fuse=auto, analyzer-verified cond+coal fusion)
// vs the paper's one-launch-per-pass layout (fuse=off), on one
// CONUS-12km rank patch with the condensation pass offloaded
// (v3 + offload_condensation, exec=device).
//
// Shape targets, enforced through the exit code in BOTH output modes:
//   (a) fuse=auto issues strictly fewer kernel launches per step than
//       fuse=off under both res=step and res=persist, and
//   (b) under res=step, fused steady-state h2d+d2h bytes/step drop
//       below unfused (the fused launch skips coal's re-map of
//       call_coal/ff/temp/pres and one full-ff d2h round-trip).
//
// Wall-clock is reported as a min/median/CV aggregate over N reps
// (bench_common.hpp) — on a loaded CI host only the counter columns are
// stable; the CV column says how much to trust the wall ones.
//
// Usage: bench_fusion [nx ny nz nsteps] [--benchmark_format=json]
//   default grid: the 107x75x50 per-rank CONUS patch of Tables IV-VI.
//   JSON mode emits one google-benchmark-style record per (fuse, res)
//   cell; scripts/bench_json.sh distills BENCH_fusion.json from it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace wrf;

namespace {

struct Cell {
  exec::FuseMode fuse = exec::FuseMode::kOff;
  mem::ResidencyMode res = mem::ResidencyMode::kStep;
  double launches_step = 0;     // kernel launches per steady-state step
  double latency_ms_step = 0;   // modeled fixed launch latency per step
  double h2d_steady = 0, d2h_steady = 0;  // bytes per steady-state step
  bench::RepAggregate wall;     // whole-run wall seconds over reps
  std::string fused_pair;       // "a+b" when the schedule fused, else ""
};

model::RunConfig make_config(exec::FuseMode fuse, mem::ResidencyMode res,
                             int nx, int ny, int nz, int nsteps) {
  model::RunConfig cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.nz = nz;
  cfg.npx = cfg.npy = 1;
  cfg.nsteps = nsteps;
  cfg.version = fsbm::Version::kV3Offload3;
  cfg.fsbm_params.offload_condensation = true;
  cfg.res = res;
  cfg.fuse = fuse;
  cfg.exec.kind = exec::ExecKind::kDevice;
  cfg.validate();
  return cfg;
}

Cell measure(exec::FuseMode fuse, mem::ResidencyMode res, int nx, int ny,
             int nz, int nsteps, int reps) {
  const model::RunConfig cfg = make_config(fuse, res, nx, ny, nz, nsteps);

  Cell c;
  c.fuse = fuse;
  c.res = res;

  // Counter pass: step a fresh rank once, bracketing each step with the
  // device transfer counters (steady state = steps after the first).
  {
    const auto patches = grid::decompose(cfg.domain(), 1, 1, cfg.halo);
    model::RankModel rank(cfg, patches[0], nullptr);
    rank.init();
    prof::Profiler prof;
    std::vector<gpu::TransferStats> cum;
    cum.push_back(rank.device()->transfers());
    std::uint64_t launches = 0;
    double latency_ms = 0;
    for (int s = 0; s < nsteps; ++s) {
      const model::StepStats st = rank.step(prof);
      if (s > 0) {  // steady state only
        launches += st.fsbm.kernel_launches;
        latency_ms += st.fsbm.launch_latency_ms;
      }
      cum.push_back(rank.device()->transfers());
    }
    const int steady = nsteps - 1;
    if (steady > 0) {
      const auto& a = cum[1];
      const auto& z = cum.back();
      c.h2d_steady = static_cast<double>(z.h2d_bytes - a.h2d_bytes) / steady;
      c.d2h_steady = static_cast<double>(z.d2h_bytes - a.d2h_bytes) / steady;
      c.launches_step = static_cast<double>(launches) / steady;
      c.latency_ms_step = latency_ms / steady;
    }
    const exec::PassGraph& g = rank.scheme().pass_graph();
    for (const exec::FusionDecision& d : rank.scheme().schedule().decisions) {
      if (d.fused) c.fused_pair = g.node(d.a).name + "+" + g.node(d.b).name;
    }
  }

  // Wall pass: whole-run wall over `reps` repetitions, fresh rank each.
  c.wall = bench::measure_reps(reps, [&]() {
    prof::Profiler prof;
    return model::run_single(cfg, prof).wall_sec;
  });
  return c;
}

double mb(double bytes) { return bytes / 1e6; }

void print_json(const std::vector<Cell>& cells, int nx, int ny, int nz,
                int nsteps) {
  std::printf("{\n  \"context\": {\"executable\": \"bench_fusion\", "
              "\"grid\": \"%dx%dx%d\", \"nsteps\": %d, "
              "\"version\": \"v3_offload_collapse3\", "
              "\"offload_condensation\": true, \"exec\": \"device\"},\n",
              nx, ny, nz, nsteps);
  std::printf("  \"benchmarks\": [\n");
  for (std::size_t n = 0; n < cells.size(); ++n) {
    const Cell& c = cells[n];
    std::printf(
        "    {\"name\": \"fusion/fuse=%s/res=%s\", \"run_type\": "
        "\"aggregate\", \"launches_per_step\": %.1f, "
        "\"launch_latency_ms_per_step\": %.4f, "
        "\"h2d_bytes_per_step\": %.0f, \"d2h_bytes_per_step\": %.0f, "
        "\"wall_s_min\": %.4f, \"wall_s_median\": %.4f, \"wall_cv\": %.3f, "
        "\"reps\": %d, \"fused_pair\": \"%s\"}%s\n",
        exec::fuse_name(c.fuse), mem::residency_name(c.res),
        c.launches_step, c.latency_ms_step, c.h2d_steady, c.d2h_steady,
        c.wall.min, c.wall.median, c.wall.cv, c.wall.reps,
        c.fused_pair.c_str(), n + 1 < cells.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  int nx = 107, ny = 75, nz = 50, nsteps = 3;
  bool json = false;
  int npos = 0;
  int pos[4] = {0, 0, 0, 0};
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--benchmark_format=json") == 0) {
      json = true;
    } else if (npos < 4 && std::strchr(argv[a], '=') == nullptr) {
      pos[npos++] = std::atoi(argv[a]);
    }
  }
  if (npos == 4 && pos[0] > 0) {
    nx = pos[0];
    ny = pos[1];
    nz = pos[2];
    nsteps = pos[3];
  } else if (npos != 0) {
    std::fprintf(stderr,
                 "bench_fusion: want all four of nx ny nz nsteps "
                 "(got %d positional args)\n", npos);
    return 2;
  }
  if (nsteps < 2) nsteps = 2;  // steady state needs a second step
  const int reps = 3;

  std::vector<Cell> cells;
  for (const exec::FuseMode fuse :
       {exec::FuseMode::kOff, exec::FuseMode::kAuto}) {
    for (const mem::ResidencyMode res :
         {mem::ResidencyMode::kStep, mem::ResidencyMode::kPersist}) {
      cells.push_back(measure(fuse, res, nx, ny, nz, nsteps, reps));
    }
  }

  auto find_cell = [&](exec::FuseMode f, mem::ResidencyMode r) -> const Cell& {
    for (const Cell& c : cells) {
      if (c.fuse == f && c.res == r) return c;
    }
    std::fprintf(stderr, "bench_fusion: missing sweep cell\n");
    std::exit(2);
  };
  const Cell& off_step =
      find_cell(exec::FuseMode::kOff, mem::ResidencyMode::kStep);
  const Cell& auto_step =
      find_cell(exec::FuseMode::kAuto, mem::ResidencyMode::kStep);
  const Cell& off_pers =
      find_cell(exec::FuseMode::kOff, mem::ResidencyMode::kPersist);
  const Cell& auto_pers =
      find_cell(exec::FuseMode::kAuto, mem::ResidencyMode::kPersist);
  const bool fewer_launches =
      auto_step.launches_step < off_step.launches_step &&
      auto_pers.launches_step < off_pers.launches_step;
  const double off_bytes = off_step.h2d_steady + off_step.d2h_steady;
  const double auto_bytes = auto_step.h2d_steady + auto_step.d2h_steady;
  const bool fewer_bytes = auto_bytes < off_bytes;
  const int exit_code = (fewer_launches && fewer_bytes) ? 0 : 1;

  if (json) {
    print_json(cells, nx, ny, nz, nsteps);
    return exit_code;
  }

  bench::print_config_header("Pass fusion sweep — fuse=off vs fuse=auto");
  std::printf("CONUS rank patch %dx%dx%d, %d steps, v3 + "
              "offload_condensation, exec=device, %d wall reps\n\n",
              nx, ny, nz, nsteps, reps);
  std::printf("  %-6s %-8s %12s %12s %12s %12s %10s %8s\n", "fuse", "res",
              "launch/st", "lat ms/st", "h2d MB/st", "d2h MB/st",
              "wall med s", "wall CV");
  for (const Cell& c : cells) {
    std::printf("  %-6s %-8s %12.1f %12.4f %12.3f %12.3f %10.3f %8.3f\n",
                exec::fuse_name(c.fuse), mem::residency_name(c.res),
                c.launches_step, c.latency_ms_step, mb(c.h2d_steady),
                mb(c.d2h_steady), c.wall.median, c.wall.cv);
  }
  std::printf("\n");
  std::printf("fused pair (fuse=auto): %s\n",
              auto_step.fused_pair.empty() ? "(none!)"
                                           : auto_step.fused_pair.c_str());
  std::printf("launches/step: off %.1f -> auto %.1f (step); off %.1f -> "
              "auto %.1f (persist)\n",
              off_step.launches_step, auto_step.launches_step,
              off_pers.launches_step, auto_pers.launches_step);
  std::printf("res=step inter-pass traffic: off %.1f MB/step -> auto "
              "%.1f MB/step\n", mb(off_bytes), mb(auto_bytes));
  std::printf("shape check: fused launches strictly below unfused under "
              "both res modes (%s); fused h2d+d2h below unfused at "
              "res=step (%s)\n",
              fewer_launches ? "yes" : "NO", fewer_bytes ? "yes" : "NO");
  return exit_code;
}
