// §VII-B reproduction: diffwrf-style verification of the GPU port.
//
// Paper: comparing a 3-hour run, diffwrf retains 3-6 digits for state
// variables (velocities, temperature, pressure) and 1-5 digits for
// microphysics variables; -gpu=autocompare shows 6-7 digits per step.
//
// Here: run the CPU (v1) and offloaded (v3, FMA-contracted device
// arithmetic) versions of the same case and report per-variable digits
// of agreement with the diffstate comparator.

#include "bench_common.hpp"

using namespace wrf;

int main() {
  bench::print_config_header("§VII-B — output verification (diffstate)");

  model::RunConfig cfg = bench::bench_case(fsbm::Version::kV1LookupOnDemand, 6);
  cfg.npx = cfg.npy = 1;
  prof::Profiler prof;
  const model::RunResult cpu = model::run_single(cfg, prof);
  cfg.version = fsbm::Version::kV3Offload3;
  const model::RunResult gpu = model::run_single(cfg, prof);

  // Single-step agreement first (the -gpu=autocompare analogue).
  model::RunConfig one = cfg;
  one.nsteps = 1;
  one.version = fsbm::Version::kV1LookupOnDemand;
  const model::RunResult cpu1 = model::run_single(one, prof);
  one.version = fsbm::Version::kV3Offload3;
  const model::RunResult gpu1 = model::run_single(one, prof);
  const io::DiffReport step_rep =
      io::diffstate(cpu1.snapshots[0], gpu1.snapshots[0], 1e-12);

  const io::DiffReport rep =
      io::diffstate(cpu.snapshots[0], gpu.snapshots[0], 1e-12);

  std::printf("per-variable agreement after %d steps (CPU v1 vs GPU v3):\n%s\n",
              cfg.nsteps, rep.format().c_str());
  std::printf("single-step agreement (autocompare analogue): worst %.2f "
              "digits (paper: 6-7)\n",
              step_rep.worst_digits);
  std::printf("multi-step agreement: worst %.2f digits (paper: 3-6 for "
              "state, 1-5 for microphysics)\n\n",
              rep.worst_digits);

  double state_worst = 16.0, micro_worst = 16.0;
  for (const auto& v : rep.vars) {
    if (v.name == "T" || v.name == "QVAPOR") {
      state_worst = std::min(state_worst, v.digits_min);
    } else if (v.name.rfind("Q_", 0) == 0) {
      micro_worst = std::min(micro_worst, v.digits_min);
    }
  }
  std::printf("shape checks:\n");
  std::printf("  not bitwise identical (FMA contraction)  : %s\n",
              !rep.identical ? "yes" : "NO");
  std::printf("  state variables keep >= 3 digits         : %s (%.2f)\n",
              state_worst >= 3.0 ? "yes" : "NO", state_worst);
  std::printf("  microphysics keeps >= 1 digit            : %s (%.2f)\n",
              micro_worst >= 1.0 ? "yes" : "NO", micro_worst);
  std::printf("  microphysics noisier than state          : %s\n",
              micro_worst <= state_worst ? "yes" : "NO");
  return 0;
}
