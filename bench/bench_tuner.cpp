// Autotuner bench: what does perfmodel-guided knob tuning buy on the
// CONUS rank patch, and is the decision statistically defensible?
//
// Runs tune::Tuner on the single-rank CONUS-12km patch (v3 offload by
// default), writes the versioned tuned.json artifact, then measures the
// SAME shape twice with adaptive reps: once with the untuned default
// knobs, once loaded back through `tune=file:<artifact>` — so the
// comparison exercises the exact artifact round trip users run.
//
// Exit-code gates (both output modes):
//   1. tuned throughput >= untuned throughput (small noise allowance —
//      when the winner IS the default knobs the two runs are the same
//      config measured twice);
//   2. the deciding rung's winner CV <= the target (a winner picked on
//      jitter is not a winner);
//   3. the tune=file: run is bitwise identical (model::state_hash) to
//      the same knobs set explicitly — tuning may never change physics.
//
// Usage: bench_tuner [nx ny nz nsteps] [version=v1|v2|v3|v3naive]
//                    [artifact=<path>] [keep=N] [target_cv=X]
//                    [--benchmark_format=json]
//   default: the 107x75x50 CONUS rank patch, v3, 2 comparison steps,
//   artifact written to ./tuned.json.  scripts/bench_json.sh distills
//   BENCH_tuner.json from the JSON mode.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "tune/tuner.hpp"

using namespace wrf;

namespace {

struct Side {
  const char* name;
  bench::RepAggregate wall;
  double cellsteps_per_s = 0;
  std::uint64_t hash = 0;
};

Side measure_side(const char* name, const model::RunConfig& cfg,
                  const tune::MeasurePolicy& policy) {
  Side s;
  s.name = name;
  model::RunResult last;
  s.wall = bench::measure_reps(policy, [&]() {
    prof::Profiler p;
    last = model::run_single(cfg, p);
    return last.wall_sec;
  });
  s.cellsteps_per_s = static_cast<double>(cfg.domain().cells()) *
                      static_cast<double>(cfg.nsteps) / s.wall.min;
  s.hash = model::state_hash(last);
  return s;
}

void print_json(const tune::TuneReport& rep, const Side& untuned,
                const Side& tuned, const std::string& artifact_path,
                const model::RunConfig& base, int compare_steps,
                bool bitwise_ok) {
  const tune::MachineFingerprint& m = rep.artifact.machine;
  std::printf("{\n  \"context\": {\"executable\": \"bench_tuner\", "
              "\"grid\": \"%dx%dx%d\", \"nsteps\": %d, "
              "\"version\": \"%s\", \"device\": \"%s\", "
              "\"hw_threads\": %d, \"artifact\": \"%s\", "
              "\"artifact_schema\": %d},\n",
              base.nx, base.ny, base.nz, compare_steps,
              fsbm::version_name(base.version), m.device.c_str(),
              m.hw_threads, artifact_path.c_str(),
              tune::kArtifactSchemaVersion);
  std::printf("  \"benchmarks\": [\n");
  const Side* sides[2] = {&untuned, &tuned};
  for (int i = 0; i < 2; ++i) {
    const Side& s = *sides[i];
    std::printf(
        "    {\"name\": \"tuner/%s\", \"run_type\": \"aggregate\", "
        "\"wall_s_min\": %.4f, \"wall_s_median\": %.4f, "
        "\"wall_cv\": %.3f, \"reps\": %d, \"cellsteps_per_s\": %.0f},\n",
        s.name, s.wall.min, s.wall.median, s.wall.cv, s.wall.reps,
        s.cellsteps_per_s);
  }
  const tune::TunedEntry& e = rep.entry;
  std::printf(
      "    {\"name\": \"tuner/winner\", \"run_type\": \"meta\", "
      "\"knobs\": \"%s\", \"shape\": \"%s\", \"deciding_steps\": %d, "
      "\"deciding_cv\": %.3f, \"space_size\": %d, "
      "\"measured_points\": %d, \"measured_runs\": %d, "
      "\"rungs\": %d, \"speedup\": %.3f, \"bitwise_identical\": %s}\n",
      e.knobs.c_str(), e.shape.c_str(), e.steps, e.wall.cv, rep.space_size,
      rep.measured_points, rep.measured_runs,
      static_cast<int>(e.ladder.size()),
      untuned.cellsteps_per_s > 0
          ? tuned.cellsteps_per_s / untuned.cellsteps_per_s
          : 0.0,
      bitwise_ok ? "true" : "false");
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  int nx = 107, ny = 75, nz = 50, compare_steps = 2;
  std::string artifact_path = "tuned.json";
  fsbm::Version version = fsbm::Version::kV3Offload3;
  bool json = false;
  tune::TunerOptions opts;
  opts.prior_keep = 10;
  opts.policy.max_reps = 8;

  int npos = 0;
  int pos[4] = {0, 0, 0, 0};
  for (int a = 1; a < argc; ++a) {
    const char* arg = argv[a];
    if (std::strcmp(arg, "--benchmark_format=json") == 0) {
      json = true;
    } else if (std::strncmp(arg, "artifact=", 9) == 0) {
      artifact_path = arg + 9;
    } else if (std::strncmp(arg, "keep=", 5) == 0) {
      opts.prior_keep = std::atoi(arg + 5);
    } else if (std::strncmp(arg, "target_cv=", 10) == 0) {
      opts.policy.target_cv = std::atof(arg + 10);
    } else if (std::strncmp(arg, "version=", 8) == 0) {
      const char* v = arg + 8;
      if (std::strcmp(v, "v0") == 0) version = fsbm::Version::kV0Baseline;
      else if (std::strcmp(v, "v1") == 0)
        version = fsbm::Version::kV1LookupOnDemand;
      else if (std::strcmp(v, "v2") == 0)
        version = fsbm::Version::kV2Offload2;
      else if (std::strcmp(v, "v3") == 0)
        version = fsbm::Version::kV3Offload3;
      else if (std::strcmp(v, "v3naive") == 0)
        version = fsbm::Version::kV3NaiveCollapse3;
      else {
        std::fprintf(stderr, "bench_tuner: unknown version '%s'\n", v);
        return 2;
      }
    } else if (npos < 4 && std::strchr(arg, '=') == nullptr) {
      pos[npos++] = std::atoi(arg);
    }
  }
  if (npos == 4 && pos[0] > 0) {
    nx = pos[0];
    ny = pos[1];
    nz = pos[2];
    compare_steps = pos[3];
  } else if (npos != 0) {
    std::fprintf(stderr,
                 "bench_tuner: want all four of nx ny nz nsteps "
                 "(got %d positional args)\n", npos);
    return 2;
  }

  model::RunConfig base = bench::conus_rank_patch(version, compare_steps);
  base.nx = nx;
  base.ny = ny;
  base.nz = nz;
  base.validate();

  const tune::Tuner tuner(opts);
  const tune::TuneReport rep = tuner.tune(base);
  tune::write_artifact(artifact_path, rep.artifact);

  // Tuned side goes through the artifact file, not the in-memory
  // winner: the comparison exercises the exact tune=file: round trip.
  model::RunConfig untuned = base;
  untuned.nsteps = compare_steps;
  model::RunConfig tuned_cfg = base;
  tuned_cfg.nsteps = compare_steps;
  tuned_cfg.tune = tune::TuneSpec::parse("file:" + artifact_path);

  const Side untuned_side =
      measure_side("untuned", untuned, tuner.options().policy);
  const Side tuned_side =
      measure_side("tuned", tuned_cfg, tuner.options().policy);

  // Bitwise gate: the artifact-loaded run equals the explicit-knob run.
  model::RunConfig explicit_cfg = rep.winner;
  explicit_cfg.nsteps = compare_steps;
  prof::Profiler p;
  const std::uint64_t explicit_hash =
      model::state_hash(model::run_single(explicit_cfg, p));
  const bool bitwise_ok = tuned_side.hash == explicit_hash;

  // Throughput gate with a small allowance for the degenerate case
  // (winner == default knobs → the same config measured twice).
  const bool faster =
      tuned_side.cellsteps_per_s * 1.02 >= untuned_side.cellsteps_per_s;
  const bool stable = rep.entry.wall.cv <= opts.policy.target_cv;
  const int exit_code = faster && stable && bitwise_ok ? 0 : 1;

  if (json) {
    print_json(rep, untuned_side, tuned_side, artifact_path, base,
               compare_steps, bitwise_ok);
    return exit_code;
  }

  bench::print_config_header("Knob autotuner — tuned vs untuned");
  std::printf("shape: %s\n", rep.entry.shape.c_str());
  std::printf("space: %d points enumerated, %d advanced past the prior, "
              "%d timed runs total\n\n",
              rep.space_size, rep.measured_points, rep.measured_runs);

  for (const tune::Rung& rung : rep.entry.ladder) {
    std::printf("rung %d (%d steps, target CV %.2f):\n", rung.rung,
                rung.steps, rung.target_cv);
    for (const tune::RungPoint& pt : rung.points) {
      std::printf("  %c %-64s %9.4fs cv=%.3f reps=%d\n",
                  pt.survived ? '*' : ' ', pt.knobs.c_str(), pt.wall.min,
                  pt.wall.cv, pt.wall.reps);
    }
  }
  std::printf("\nwinner: %s\n", rep.entry.knobs.c_str());
  std::printf("artifact: %s (schema v%d, %s, %d hw threads)\n",
              artifact_path.c_str(), tune::kArtifactSchemaVersion,
              rep.artifact.machine.device.c_str(),
              rep.artifact.machine.hw_threads);
  std::printf("\n  %-10s %14s %12s %12s %8s %6s\n", "side", "cellsteps/s",
              "wall min s", "wall med s", "CV", "reps");
  for (const Side* s : {&untuned_side, &tuned_side}) {
    std::printf("  %-10s %14.0f %12.4f %12.4f %8.3f %6d\n", s->name,
                s->cellsteps_per_s, s->wall.min, s->wall.median, s->wall.cv,
                s->wall.reps);
  }
  std::printf("\nspeedup (tuned/untuned): %.2fx\n",
              untuned_side.cellsteps_per_s > 0
                  ? tuned_side.cellsteps_per_s / untuned_side.cellsteps_per_s
                  : 0.0);
  std::printf("gates: tuned>=untuned %s | deciding-rung CV<=%.2f %s | "
              "tune=file: bitwise identical %s\n",
              faster ? "yes" : "NO", opts.policy.target_cv,
              stable ? "yes" : "NO", bitwise_ok ? "yes" : "NO");
  return exit_code;
}
