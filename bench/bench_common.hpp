#pragma once
// Shared helpers for the table/figure reproduction benches.
//
// Every bench prints (a) real wall-clock measurements of the functional
// C++ implementation on this host and (b), where the paper's number
// depends on Perlmutter hardware, modeled values clearly labeled
// `modeled`.  Reproduction targets are the *shapes* (who wins, by what
// factor, where crossovers fall); see EXPERIMENTS.md.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "model/driver.hpp"
#include "perfmodel/scaling.hpp"

namespace wrf::bench {

/// Aggregate of N repetitions of one measurement: the robust trio the
/// benches report instead of a single noisy sample.  `cv` is the
/// coefficient of variation (stddev/mean) — a quick stability gauge; a
/// smoke run with cv > ~0.2 means the wall numbers are jitter, not
/// signal, and only the counter-based columns should be trusted.
struct RepAggregate {
  double min = 0.0;
  double median = 0.0;
  double mean = 0.0;
  double cv = 0.0;
  int reps = 0;
};

/// Aggregate already-collected samples.  For benches whose rep loop
/// yields several metrics at once (e.g. the hetero bench's device and
/// host shard walls per run): collect each metric into its own vector
/// and aggregate them separately.  `samples` must be non-empty.
inline RepAggregate aggregate_samples(std::vector<double> samples) {
  RepAggregate agg;
  std::sort(samples.begin(), samples.end());
  agg.reps = static_cast<int>(samples.size());
  agg.min = samples.front();
  const std::size_t n = samples.size();
  agg.median = n % 2 == 1 ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double sum = 0.0;
  for (double s : samples) sum += s;
  agg.mean = sum / static_cast<double>(n);
  double var = 0.0;
  for (double s : samples) var += (s - agg.mean) * (s - agg.mean);
  var /= static_cast<double>(n);
  agg.cv = agg.mean > 0.0 ? std::sqrt(var) / agg.mean : 0.0;
  return agg;
}

/// Run `fn` (returning one double sample) `reps` times and aggregate.
/// The first call is NOT discarded: callers that want a warmup should do
/// it themselves before measuring (the FSBM benches construct a fresh
/// RankModel per rep, so there is no cross-rep cache to warm).
template <typename Fn>
RepAggregate measure_reps(int reps, Fn&& fn) {
  if (reps < 1) reps = 1;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) samples.push_back(fn());
  return aggregate_samples(std::move(samples));
}

/// Print the Table II configuration header every bench starts with.
inline void print_config_header(const char* what) {
  std::printf("================================================================\n");
  std::printf("miniWRF-SBM bench: %s\n", what);
  std::printf("configuration (paper Table II analogue):\n");
  std::printf("  device        : %s\n",
              gpu::DeviceSpec::a100_40gb().name.c_str());
  std::printf("  stack limit   : 65536 B  (NV_ACC_CUDA_STACKSIZE)\n");
  std::printf("  heap limit    : 64 MB    (NV_ACC_CUDA_HEAPSIZE)\n");
  std::printf("  CPU model     : AMD EPYC 7763 (Milan), 2.45 GHz\n");
  std::printf("================================================================\n\n");
}

/// The scaled-down CONUS case used for functional measurements.
/// `exec` is the host-dispatch knob (serial | threads:N | device) and
/// `halo` the exchange mode (sync | overlap), swept by benches the same
/// way they sweep FSBM versions.
inline model::RunConfig bench_case(fsbm::Version v, int nsteps = 2,
                                   exec::ExecConfig exec = {},
                                   dyn::HaloMode halo = dyn::HaloMode::kSync) {
  model::RunConfig cfg;
  cfg.nx = 64;
  cfg.ny = 48;
  cfg.nz = 24;
  cfg.npx = 2;
  cfg.npy = 2;
  cfg.nsteps = nsteps;
  cfg.version = v;
  cfg.exec = exec;
  cfg.halo_mode = halo;
  return cfg;
}

/// One rank's patch at the paper's full CONUS-12km scale (425x300x50
/// over 16 ranks), used for the device-model benches.  Functional
/// execution of this patch is feasible (a few seconds per step).
inline model::RunConfig conus_rank_patch(fsbm::Version v, int nsteps = 1) {
  model::RunConfig cfg;
  cfg.nx = 107;  // ~425/4
  cfg.ny = 75;   // 300/4
  cfg.nz = 50;
  cfg.npx = 1;
  cfg.npy = 1;
  cfg.nsteps = nsteps;
  cfg.version = v;
  return cfg;
}

/// Build a per-rank-step WorkProfile (16-rank CONUS equivalent) from a
/// functional run of the scaled case.
inline perfmodel::WorkProfile profile_from_run(const model::RunResult& res,
                                               const model::RunConfig& cfg) {
  perfmodel::WorkProfile w;
  const double rank_steps =
      static_cast<double>(cfg.nranks()) * cfg.nsteps;
  const auto& f = res.totals.fsbm;
  w.cells = static_cast<double>(cfg.domain().cells()) / cfg.nranks();
  w.coal_flops = f.coal_flops / rank_steps;
  w.coal_flops_v0 = w.coal_flops;  // caller overrides from a v0 run
  w.cond_nucl_flops = (f.cond_flops + f.nucl_flops) / rank_steps;
  w.sed_flops = f.sed_flops / rank_steps;
  w.adv_flops =
      (res.totals.dyn.tend.flops + res.totals.dyn.update.flops) / rank_steps;
  w.halo_bytes =
      static_cast<double>(res.comm.total_bytes()) / rank_steps;
  w.halo_messages =
      static_cast<double>(res.comm.total_messages()) / rank_steps;
  // Scale per-cell work up to the CONUS-12km per-rank patch.
  const double cell_ratio = (425.0 * 300.0 * 50.0 / 16.0) / w.cells;
  w = w.scaled_to(cell_ratio);
  w.cells = 425.0 * 300.0 * 50.0 / 16.0;
  return w;
}

struct PaperRow {
  const char* name;
  double paper;
  double ours;
};

inline void print_rows(const char* title, const PaperRow* rows, int n) {
  std::printf("%s\n", title);
  std::printf("  %-34s %10s %10s\n", "quantity", "paper", "ours");
  for (int i = 0; i < n; ++i) {
    std::printf("  %-34s %10.3g %10.3g\n", rows[i].name, rows[i].paper,
                rows[i].ours);
  }
  std::printf("\n");
}

}  // namespace wrf::bench
