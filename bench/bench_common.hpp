#pragma once
// Shared helpers for the table/figure reproduction benches.
//
// Every bench prints (a) real wall-clock measurements of the functional
// C++ implementation on this host and (b), where the paper's number
// depends on Perlmutter hardware, modeled values clearly labeled
// `modeled`.  Reproduction targets are the *shapes* (who wins, by what
// factor, where crossovers fall); see EXPERIMENTS.md.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "model/driver.hpp"
#include "perfmodel/scaling.hpp"
#include "tune/measure.hpp"

namespace wrf::bench {

// The statistical measurement primitives live in src/tune/measure.hpp
// (the autotuner aggregates its rungs with exactly this code); the
// benches keep their historical wrf::bench spelling via re-export.
// RepAggregate: min / median / mean / CV over N reps — `min` is the
// headline wall column, `cv` the stability gauge.  measure_reps has a
// fixed-count overload and an adaptive MeasurePolicy overload (repeat
// until CV <= target or the rep cap).
using tune::aggregate_samples;
using tune::MeasurePolicy;
using tune::measure_reps;
using tune::RepAggregate;

/// Print the Table II configuration header every bench starts with.
inline void print_config_header(const char* what) {
  std::printf("================================================================\n");
  std::printf("miniWRF-SBM bench: %s\n", what);
  std::printf("configuration (paper Table II analogue):\n");
  std::printf("  device        : %s\n",
              gpu::DeviceSpec::a100_40gb().name.c_str());
  std::printf("  stack limit   : 65536 B  (NV_ACC_CUDA_STACKSIZE)\n");
  std::printf("  heap limit    : 64 MB    (NV_ACC_CUDA_HEAPSIZE)\n");
  std::printf("  CPU model     : AMD EPYC 7763 (Milan), 2.45 GHz\n");
  std::printf("================================================================\n\n");
}

/// The scaled-down CONUS case used for functional measurements.
/// `exec` is the host-dispatch knob (serial | threads:N | device) and
/// `halo` the exchange mode (sync | overlap), swept by benches the same
/// way they sweep FSBM versions.
inline model::RunConfig bench_case(fsbm::Version v, int nsteps = 2,
                                   exec::ExecConfig exec = {},
                                   dyn::HaloMode halo = dyn::HaloMode::kSync) {
  model::RunConfig cfg;
  cfg.nx = 64;
  cfg.ny = 48;
  cfg.nz = 24;
  cfg.npx = 2;
  cfg.npy = 2;
  cfg.nsteps = nsteps;
  cfg.version = v;
  cfg.exec = exec;
  cfg.halo_mode = halo;
  return cfg;
}

/// One rank's patch at the paper's full CONUS-12km scale (425x300x50
/// over 16 ranks), used for the device-model benches.  Functional
/// execution of this patch is feasible (a few seconds per step).
inline model::RunConfig conus_rank_patch(fsbm::Version v, int nsteps = 1) {
  model::RunConfig cfg;
  cfg.nx = 107;  // ~425/4
  cfg.ny = 75;   // 300/4
  cfg.nz = 50;
  cfg.npx = 1;
  cfg.npy = 1;
  cfg.nsteps = nsteps;
  cfg.version = v;
  return cfg;
}

/// Build a per-rank-step WorkProfile (16-rank CONUS equivalent) from a
/// functional run of the scaled case.
inline perfmodel::WorkProfile profile_from_run(const model::RunResult& res,
                                               const model::RunConfig& cfg) {
  perfmodel::WorkProfile w;
  const double rank_steps =
      static_cast<double>(cfg.nranks()) * cfg.nsteps;
  const auto& f = res.totals.fsbm;
  w.cells = static_cast<double>(cfg.domain().cells()) / cfg.nranks();
  w.coal_flops = f.coal_flops / rank_steps;
  w.coal_flops_v0 = w.coal_flops;  // caller overrides from a v0 run
  w.cond_nucl_flops = (f.cond_flops + f.nucl_flops) / rank_steps;
  w.sed_flops = f.sed_flops / rank_steps;
  w.adv_flops =
      (res.totals.dyn.tend.flops + res.totals.dyn.update.flops) / rank_steps;
  w.halo_bytes =
      static_cast<double>(res.comm.total_bytes()) / rank_steps;
  w.halo_messages =
      static_cast<double>(res.comm.total_messages()) / rank_steps;
  // Scale per-cell work up to the CONUS-12km per-rank patch.
  const double cell_ratio = (425.0 * 300.0 * 50.0 / 16.0) / w.cells;
  w = w.scaled_to(cell_ratio);
  w.cells = 425.0 * 300.0 * 50.0 / 16.0;
  return w;
}

struct PaperRow {
  const char* name;
  double paper;
  double ours;
};

inline void print_rows(const char* title, const PaperRow* rows, int n) {
  std::printf("%s\n", title);
  std::printf("  %-34s %10s %10s\n", "quantity", "paper", "ours");
  for (int i = 0; i < n; ++i) {
    std::printf("  %-34s %10.3g %10.3g\n", rows[i].name, rows[i].paper,
                rows[i].ours);
  }
  std::printf("\n");
}

}  // namespace wrf::bench
