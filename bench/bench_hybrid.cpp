// Hybrid microphysics sweep: throughput vs bin fraction for the phys=
// knob on the CONUS-style storm patch (a compact storm in mostly calm
// air — the regime the hybrid is built for).
//
// Sweeps phys in {bulk, hybrid, bin} on the single-rank scaled case
// with the v1 host bin chain (the fidelity economics live on the host:
// every demoted cell skips the whole bin chain).  Reports per mode the
// whole-run wall aggregate (min/median/CV over reps), the derived
// cell-step throughput, and the hybrid's population census.
//
// Shape target (exit-code gated in both output modes): hybrid
// throughput lands STRICTLY between pure bulk (everything cheap) and
// pure bin (everything expensive), while the hybrid census shows both
// populations genuinely live.  That is the tentpole's speed-for-
// fidelity trade in one number.
//
// Usage: bench_hybrid [nx ny nz nsteps] [--benchmark_format=json]
//   default grid: the 64x48x24 scaled CONUS case, 3 steps.
//   JSON mode emits one record per phys mode; scripts/bench_json.sh
//   distills the trajectory point BENCH_hybrid.json from it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_common.hpp"

using namespace wrf;

namespace {

struct Mode {
  fsbm::PhysScheme phys;
  bench::RepAggregate wall;      // whole-run wall seconds over reps
  double cellsteps_per_s = 0;    // grid cell-steps / best wall second
  double bin_fraction = 0;       // cells_bin / (cells_bin + cells_bulk)
  std::uint64_t cells_active = 0;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  double surface_precip = 0;
  double bulk_flops = 0;
  double bin_flops = 0;          // cond + nucl + coal + sed
};

Mode measure(fsbm::PhysScheme phys, int nx, int ny, int nz, int nsteps,
             const bench::MeasurePolicy& policy) {
  model::RunConfig cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.nz = nz;
  cfg.npx = cfg.npy = 1;
  cfg.nsteps = nsteps;
  cfg.version = fsbm::Version::kV1LookupOnDemand;
  cfg.phys = phys;
  cfg.validate();

  Mode m;
  m.phys = phys;
  model::RunResult last;
  m.wall = bench::measure_reps(policy, [&]() {
    prof::Profiler p;
    last = model::run_single(cfg, p);
    return last.wall_sec;
  });
  const fsbm::FsbmStats& st = last.totals.fsbm;
  const double cellsteps = static_cast<double>(cfg.domain().cells()) *
                           static_cast<double>(nsteps);
  m.cellsteps_per_s = cellsteps / m.wall.min;
  const double census = static_cast<double>(st.cells_bin + st.cells_bulk);
  m.bin_fraction = census > 0
                       ? static_cast<double>(st.cells_bin) / census
                       : 1.0;  // phys=bin keeps no census: all bin
  m.cells_active = st.cells_active;
  m.promotions = st.promotions;
  m.demotions = st.demotions;
  m.surface_precip = st.surface_precip;
  m.bulk_flops = st.bulk_flops;
  m.bin_flops = st.cond_flops + st.nucl_flops + st.coal_flops + st.sed_flops;
  return m;
}

void print_json(const std::vector<Mode>& modes, int nx, int ny, int nz,
                int nsteps) {
  std::printf("{\n  \"context\": {\"executable\": \"bench_hybrid\", "
              "\"grid\": \"%dx%dx%d\", \"nsteps\": %d, "
              "\"version\": \"v1-lookup-on-demand\"},\n",
              nx, ny, nz, nsteps);
  std::printf("  \"benchmarks\": [\n");
  for (std::size_t n = 0; n < modes.size(); ++n) {
    const Mode& m = modes[n];
    std::printf(
        "    {\"name\": \"hybrid/phys=%s\", \"run_type\": \"aggregate\", "
        "\"wall_s_min\": %.4f, \"wall_s_median\": %.4f, \"wall_cv\": %.3f, "
        "\"reps\": %d, \"cellsteps_per_s\": %.0f, \"bin_fraction\": %.4f, "
        "\"cells_active\": %llu, \"promotions\": %llu, "
        "\"demotions\": %llu, \"surface_precip\": %.6e, "
        "\"bulk_flops\": %.4e, \"bin_flops\": %.4e}%s\n",
        fsbm::phys_name(m.phys), m.wall.min, m.wall.median, m.wall.cv,
        m.wall.reps, m.cellsteps_per_s, m.bin_fraction,
        static_cast<unsigned long long>(m.cells_active),
        static_cast<unsigned long long>(m.promotions),
        static_cast<unsigned long long>(m.demotions), m.surface_precip,
        m.bulk_flops, m.bin_flops, n + 1 < modes.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  int nx = 64, ny = 48, nz = 24, nsteps = 3;
  bool json = false;
  int npos = 0;
  int pos[4] = {0, 0, 0, 0};
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--benchmark_format=json") == 0) {
      json = true;
    } else if (npos < 4 && std::strchr(argv[a], '=') == nullptr) {
      pos[npos++] = std::atoi(argv[a]);
    }
  }
  if (npos == 4 && pos[0] > 0) {
    nx = pos[0];
    ny = pos[1];
    nz = pos[2];
    nsteps = pos[3];
  } else if (npos != 0) {
    std::fprintf(stderr,
                 "bench_hybrid: want all four of nx ny nz nsteps "
                 "(got %d positional args)\n", npos);
    return 2;
  }
  // Adaptive reps: at least 3, growing to 8 until the wall CV drops
  // under 10% — the same tune::MeasurePolicy discipline the autotuner's
  // rungs use, so a noisy host spends reps instead of committing jitter.
  bench::MeasurePolicy policy;
  policy.max_reps = 8;

  std::vector<Mode> modes;
  for (const fsbm::PhysScheme phys :
       {fsbm::PhysScheme::kBulk, fsbm::PhysScheme::kHybrid,
        fsbm::PhysScheme::kBin}) {
    modes.push_back(measure(phys, nx, ny, nz, nsteps, policy));
  }
  const Mode& blk = modes[0];
  const Mode& hyb = modes[1];
  const Mode& bin = modes[2];

  // The acceptance gates, enforced through the exit code in BOTH output
  // modes so the CI smoke asserts them: strict bulk > hybrid > bin
  // throughput ordering, and a genuinely two-sided hybrid census on
  // this mostly-clear storm case.
  const bool ordered = blk.cellsteps_per_s > hyb.cellsteps_per_s &&
                       hyb.cellsteps_per_s > bin.cellsteps_per_s;
  const bool two_sided =
      hyb.bin_fraction > 0.0 && hyb.bin_fraction < 1.0;
  const int exit_code = ordered && two_sided ? 0 : 1;

  if (json) {
    print_json(modes, nx, ny, nz, nsteps);
    return exit_code;
  }

  bench::print_config_header("Hybrid microphysics — throughput vs fidelity");
  std::printf("scaled CONUS storm patch %dx%dx%d, %d steps, v1 host bin "
              "chain, adaptive wall reps (%d-%d, target CV %.2f)\n\n",
              nx, ny, nz, nsteps, policy.min_reps, policy.max_reps,
              policy.target_cv);
  std::printf("  %-8s %14s %12s %12s %10s %8s\n", "phys", "cellsteps/s",
              "wall min s", "wall med s", "bin frac", "wall CV");
  for (const Mode& m : modes) {
    std::printf("  %-8s %14.0f %12.4f %12.4f %10.3f %8.3f\n",
                fsbm::phys_name(m.phys), m.cellsteps_per_s, m.wall.min,
                m.wall.median, m.bin_fraction, m.wall.cv);
  }
  std::printf("\nhybrid census: %.1f%% of cell-steps at bin fidelity "
              "(%llu promotions, %llu demotions over the run)\n",
              100.0 * hyb.bin_fraction,
              static_cast<unsigned long long>(hyb.promotions),
              static_cast<unsigned long long>(hyb.demotions));
  std::printf("speedup: hybrid %.2fx over pure bin (pure bulk bound: "
              "%.2fx)\n",
              hyb.cellsteps_per_s / bin.cellsteps_per_s,
              blk.cellsteps_per_s / bin.cellsteps_per_s);
  std::printf("shape check: bulk > hybrid > bin throughput, two-sided "
              "census (%s)\n", exit_code == 0 ? "yes" : "NO");
  return exit_code;
}
