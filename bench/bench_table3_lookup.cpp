// Table III reproduction: speedups from removing kernals_ks (v0 -> v1).
//
// Paper:                current   cumulative
//   fast_sbm             1.83x      1.83x
//   overall              1.42x      1.42x
//
// Both versions run on the CPU, so this bench reports *real wall time*
// of the functional implementation (per model step), plus the modeled
// Milan-core times from the work counters for cross-checking.

#include "bench_common.hpp"

using namespace wrf;

int main() {
  bench::print_config_header("Table III — kernals_ks removal speedups");

  struct Meas {
    double fast_sbm_sec = 0, overall_sec = 0, coal_flops = 0;
  };
  auto measure = [&](fsbm::Version v) {
    model::RunConfig cfg = bench::bench_case(v, 3);
    prof::Profiler prof;
    const model::RunResult res = model::run_simulation(cfg, prof);
    Meas m;
    m.fast_sbm_sec = prof.inclusive_sec("fast_sbm") / cfg.nsteps;
    m.overall_sec = res.wall_sec / cfg.nsteps;
    m.coal_flops = res.totals.fsbm.coal_flops;
    return m;
  };

  const Meas v0 = measure(fsbm::Version::kV0Baseline);
  const Meas v1 = measure(fsbm::Version::kV1LookupOnDemand);

  const double su_sbm = v0.fast_sbm_sec / v1.fast_sbm_sec;
  const double su_all = v0.overall_sec / v1.overall_sec;

  std::printf("measured wall time per step (functional code, 4 simpi "
              "ranks on this host):\n");
  std::printf("  %-12s %12s %12s\n", "", "v0-baseline", "v1-lookup");
  std::printf("  %-12s %12.4f %12.4f  s\n", "fast_sbm", v0.fast_sbm_sec,
              v1.fast_sbm_sec);
  std::printf("  %-12s %12.4f %12.4f  s\n\n", "overall", v0.overall_sec,
              v1.overall_sec);

  const bench::PaperRow rows[] = {
      {"fast_sbm speedup (current)", 1.83, su_sbm},
      {"overall speedup (current)", 1.42, su_all},
  };
  bench::print_rows("Table III (measured):", rows, 2);

  std::printf("mechanism: v0 computes all 20*nkr^2 kernel entries per coal "
              "cell;\nv1 computes only touched entries "
              "(coal FLOPs v0/v1 = %.2fx)\n",
              v0.coal_flops / v1.coal_flops);
  std::printf("\nshape check: fast_sbm speedup > 1.3 (%s), overall > 1.15 "
              "(%s)\n",
              su_sbm > 1.3 ? "yes" : "NO", su_all > 1.15 ? "yes" : "NO");
  return 0;
}
