// Ablation: cost vs. bin count.
//
// The paper's introduction motivates the GPU port with: "This
// discretization can be extended from 33 to a few hundred bins ... The
// computational cost of this technique scales quadratically with the
// number of bins per grid point."  This bench verifies that claim holds
// in our implementation: per-cell collision cost (v1, on-demand) and
// v0's kernals_ks fill cost vs nkr, with fitted scaling exponents.

#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "fsbm/coal_bott.hpp"

using namespace wrf;

namespace {

/// Dense cold-cell workload at a given bin count; returns interactions
/// and measured wall seconds for `reps` cells.
struct Point {
  int nkr;
  double wall_sec;
  double interactions;
  double fill_entries;
};

Point run_nkr(int nkr, int reps) {
  const fsbm::BinGrid bins(nkr);
  const fsbm::KernelTables tables(bins);
  std::vector<float> buf(static_cast<std::size_t>(4 + fsbm::kIceMax) * nkr);
  fsbm::CoalWorkspace w;
  w.fl1 = buf.data();
  w.g2 = buf.data() + nkr;
  w.g3 = buf.data() + nkr * (1 + fsbm::kIceMax);
  w.g4 = buf.data() + nkr * (2 + fsbm::kIceMax);
  w.g5 = buf.data() + nkr * (3 + fsbm::kIceMax);

  fsbm::CoalConfig cfg;
  Point pt{nkr, 0.0, 0.0, static_cast<double>(20) * nkr * nkr};
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    // Re-fill a dense spectrum each rep (every bin populated: the
    // regime the intro's quadratic claim describes).
    for (int s = 0; s < 4 + fsbm::kIceMax; ++s) {
      for (int k = 0; k < nkr; ++k) {
        buf[static_cast<std::size_t>(s) * nkr + k] = 1.0e-5f;
      }
    }
    const fsbm::KernelSource ks(tables, 60000.0);
    const fsbm::CoalStats st = fsbm::coal_bott_new(bins, 258.0, ks, w, cfg);
    pt.interactions += static_cast<double>(st.interactions);
  }
  pt.wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count() /
      reps;
  pt.interactions /= reps;
  return pt;
}

}  // namespace

int main() {
  bench::print_config_header("ablation — cost vs bin count (intro claim)");

  const int nkrs[] = {17, 33, 66, 132, 264};
  std::vector<Point> pts;
  std::printf("%6s %14s %16s %16s\n", "nkr", "wall/cell (us)",
              "interactions", "v0 fill entries");
  for (int nkr : nkrs) {
    const int reps = std::max(2, 2000000 / (nkr * nkr));
    const Point p = run_nkr(nkr, reps);
    std::printf("%6d %14.2f %16.0f %16.0f\n", p.nkr, p.wall_sec * 1e6,
                p.interactions, p.fill_entries);
    pts.push_back(p);
  }

  // Fit the scaling exponent between successive doublings.
  std::printf("\nscaling exponents (log2 ratio per nkr doubling):\n");
  std::printf("%12s %12s %14s\n", "nkr pair", "wall exp", "interactions");
  for (std::size_t i = 2; i < pts.size(); ++i) {
    if (pts[i].nkr != 2 * pts[i - 1].nkr) continue;
    const double we = std::log2(pts[i].wall_sec / pts[i - 1].wall_sec);
    const double ie =
        std::log2(pts[i].interactions / pts[i - 1].interactions);
    std::printf("%5d->%5d %12.2f %14.2f\n", pts[i - 1].nkr, pts[i].nkr, we,
                ie);
  }
  // End-to-end exponent over the full nkr range (per-doubling values
  // are noisy: remap clamping and the drain limiter kick in at the
  // extremes, but the overall slope is the claim under test).
  const Point& lo = pts.front();
  const Point& hi = pts.back();
  const double overall = std::log(hi.wall_sec / lo.wall_sec) /
                         std::log(static_cast<double>(hi.nkr) / lo.nkr);
  std::printf("\nend-to-end exponent (nkr %d -> %d): %.2f\n", lo.nkr,
              hi.nkr, overall);
  std::printf("\nshape check: cost scales ~quadratically in nkr — overall "
              "exponent %.2f vs the paper introduction's \"scales "
              "quadratically\" (%s)\n",
              overall,
              overall > 1.5 && overall < 2.6 ? "yes" : "CHECK");
  return 0;
}
