// Table VI reproduction: Nsight-Compute-style kernel metrics for the
// collision kernel, collapse(2) vs collapse(3)-with-pointers.
//
// Paper:
//   metric                     collapse(2)   collapse(3) w/ pointers
//   Time (ms)                    335.85         29.11
//   Achieved occupancy (%)         4.63         35.67
//   L1/TEX hit rate (%)           84.82         61.43
//   L2 hit rate (%)               95.84         69.28
//   Writes to DRAM (GB)            0.785         4.290
//   Reads from DRAM (GB)           0.654        10.24
//
// All values below are produced by the gpusim device model: occupancy
// from the launch geometry and register budget, hit rates and DRAM
// traffic from the sampled trace replay through the simulated cache
// hierarchy (the v3 pools live in global memory, which is what inflates
// its DRAM traffic relative to v2's thread-local workspaces).

#include "offload_runner.hpp"

using namespace wrf;

int main() {
  bench::print_config_header("Table VI — kernel metrics, c(2) vs c(3)");

  const auto v2 = bench::run_conus_rank(fsbm::Version::kV2Offload2);
  const auto v3 = bench::run_conus_rank(fsbm::Version::kV3Offload3);
  const gpu::KernelStats& k2 = *v2.kernel;
  const gpu::KernelStats& k3 = *v3.kernel;

  struct Row {
    const char* name;
    double p2, o2, p3, o3;
  };
  const Row rows[] = {
      {"Time (ms)", 335.85, k2.modeled_time_ms, 29.11, k3.modeled_time_ms},
      {"Achieved occupancy (%)", 4.63, 100.0 * k2.occupancy.achieved, 35.67,
       100.0 * k3.occupancy.achieved},
      {"L1/TEX hit rate (%)", 84.82, 100.0 * k2.l1_hit_rate, 61.43,
       100.0 * k3.l1_hit_rate},
      {"L2 hit rate (%)", 95.84, 100.0 * k2.l2_hit_rate, 69.28,
       100.0 * k3.l2_hit_rate},
      {"Writes to DRAM (GB)", 0.785, k2.dram_write_gb, 4.290,
       k3.dram_write_gb},
      {"Reads from DRAM (GB)", 0.654, k2.dram_read_gb, 10.24,
       k3.dram_read_gb},
  };
  std::printf("%-26s %12s %12s %12s %12s\n", "metric", "c2(paper)",
              "c2(ours)", "c3(paper)", "c3(ours)");
  for (const Row& r : rows) {
    std::printf("%-26s %12.3f %12.3f %12.3f %12.3f\n", r.name, r.p2, r.o2,
                r.p3, r.o3);
  }

  std::printf("\nkernel grids: c2 %lld iterations (%s-limited), c3 %lld "
              "iterations (%s-limited)\n",
              static_cast<long long>(k2.iterations), k2.occupancy.limiter,
              static_cast<long long>(k3.iterations), k3.occupancy.limiter);
  std::printf("\nshape checks:\n");
  std::printf("  c3 much faster than c2          : %s (%.1fx)\n",
              k2.modeled_time_ms > 3.0 * k3.modeled_time_ms ? "yes" : "NO",
              k2.modeled_time_ms / k3.modeled_time_ms);
  std::printf("  occupancy rises sharply         : %s (%.2f%% -> %.2f%%)\n",
              k3.occupancy.achieved > 4.0 * k2.occupancy.achieved ? "yes"
                                                                  : "NO",
              100.0 * k2.occupancy.achieved, 100.0 * k3.occupancy.achieved);
  std::printf("  cache hit rates drop            : %s (L1) / %s (L2)\n",
              k3.l1_hit_rate < k2.l1_hit_rate ? "yes" : "NO",
              k3.l2_hit_rate < k2.l2_hit_rate ? "yes" : "NO");
  std::printf("  DRAM traffic grows              : %s (R) / %s (W)\n",
              k3.dram_read_gb > k2.dram_read_gb ? "yes" : "NO",
              k3.dram_write_gb > k2.dram_write_gb ? "yes" : "NO");
  return 0;
}
