// Table V reproduction: full collapse(3) via pooled temp arrays (v2->v3).
//
// Paper:                       current   cumulative
//   coal_bott_new loop          10.3x      66.6x   (vs v1)
//   fast_sbm                    1.12x      2.99x   (vs v0)
//   overall                     1.05x      2.20x   (vs v0)

#include "offload_runner.hpp"

using namespace wrf;
using bench::OffloadMeasurement;

int main() {
  bench::print_config_header(
      "Table V — collapse(3) with pooled automatic arrays");

  const OffloadMeasurement v1 =
      bench::run_conus_rank(fsbm::Version::kV1LookupOnDemand);
  const OffloadMeasurement v2 =
      bench::run_conus_rank(fsbm::Version::kV2Offload2);
  const OffloadMeasurement v3 =
      bench::run_conus_rank(fsbm::Version::kV3Offload3);

  const bench::V0V1Ratio r01 = bench::measure_v0_v1_ratio();
  const double v0_fast = v1.fast_sbm_sec * r01.fast_sbm;
  const double v0_overall = v1.overall_sec * r01.overall;

  std::printf("modeled Perlmutter times per step (1 rank of 16, CONUS):\n");
  std::printf("  %-18s %10s %10s %10s\n", "", "v1 (CPU)", "v2 c(2)",
              "v3 c(3)");
  std::printf("  %-18s %10.4f %10.4f %10.4f  s\n", "coal loop",
              v1.coal_loop_sec, v2.coal_loop_sec, v3.coal_loop_sec);
  std::printf("  %-18s %10.4f %10.4f %10.4f  s\n", "fast_sbm",
              v1.fast_sbm_sec, v2.fast_sbm_sec, v3.fast_sbm_sec);
  std::printf("  %-18s %10.4f %10.4f %10.4f  s\n\n", "overall",
              v1.overall_sec, v2.overall_sec, v3.overall_sec);
  std::printf("  v2 kernel %.2f ms (occupancy %.2f%%), v3 kernel %.2f ms "
              "(occupancy %.2f%%)\n\n",
              v2.kernel_ms, 100.0 * v2.kernel->occupancy.achieved,
              v3.kernel_ms, 100.0 * v3.kernel->occupancy.achieved);

  const bench::PaperRow rows[] = {
      {"coal loop speedup (current)", 10.3,
       v2.coal_loop_sec / v3.coal_loop_sec},
      {"coal loop speedup (cumulative)", 66.6,
       v1.coal_loop_sec / v3.coal_loop_sec},
      {"fast_sbm speedup (current)", 1.12, v2.fast_sbm_sec / v3.fast_sbm_sec},
      {"fast_sbm speedup (cumulative)", 2.99, v0_fast / v3.fast_sbm_sec},
      {"overall speedup (current)", 1.05, v2.overall_sec / v3.overall_sec},
      {"overall speedup (cumulative)", 2.20, v0_overall / v3.overall_sec},
  };
  bench::print_rows("Table V (modeled):", rows, 6);

  std::printf("memory note: the naive collapse(3) (automatic arrays kept) "
              "raises\nthe paper's CUDA memory error; reproduced in "
              "tests/test_fast_sbm.cpp\n(NaiveCollapse3OverflowsDeviceHeap).\n");
  std::printf("shape check: v3 beats v2 on the loop (%s); diminishing "
              "whole-program returns (%s)\n",
              v2.coal_loop_sec / v3.coal_loop_sec > 2 ? "yes" : "NO",
              v2.overall_sec / v3.overall_sec <
                      v1.overall_sec / v2.overall_sec
                  ? "yes"
                  : "NO");
  return 0;
}
