#pragma once
// Shared runner for the offload benches (Tables IV, V, VI; Figure 3):
// executes one CONUS-12km rank patch (425x300x50 / 16 ranks) through a
// chosen fast_sbm version and collects both functional measurements and
// the device-model outputs, plus modeled Milan-core times for the parts
// the paper leaves on the CPU.

#include <optional>

#include "bench_common.hpp"

namespace wrf::bench {

struct OffloadMeasurement {
  fsbm::Version version;
  // Modeled Perlmutter times per step, seconds.
  double coal_loop_sec = 0;   ///< collision section (CPU or kernel+maps)
  double fast_sbm_sec = 0;    ///< nucleation+condensation+sed + coal
  double overall_sec = 0;     ///< + advection + halo comm
  // Raw pieces.
  double kernel_ms = 0, h2d_ms = 0, d2h_ms = 0;
  std::optional<gpu::KernelStats> kernel;
  // Functional wall time on this host, for the record.
  double wall_step_sec = 0;
  fsbm::FsbmStats fsbm_stats;
  double adv_flops = 0;
};

inline OffloadMeasurement run_conus_rank(fsbm::Version v) {
  model::RunConfig cfg = conus_rank_patch(v, /*nsteps=*/1);
  prof::Profiler prof;
  const model::RunResult res = model::run_single(cfg, prof);

  OffloadMeasurement m;
  m.version = v;
  m.fsbm_stats = res.totals.fsbm;
  m.wall_step_sec = res.wall_sec / cfg.nsteps;
  m.adv_flops =
      (res.totals.dyn.tend.flops + res.totals.dyn.update.flops) / cfg.nsteps;

  const perfmodel::CpuSpec cpu = perfmodel::CpuSpec::milan();
  const auto& f = res.totals.fsbm;
  const double host_phys_sec =
      cpu.seconds_for_flops(f.cond_flops + f.nucl_flops + f.sed_flops) /
      cfg.nsteps;

  if (res.last_coal_kernel) {
    m.kernel = res.last_coal_kernel;
    m.kernel_ms = res.last_coal_kernel->modeled_time_ms;
    m.h2d_ms = f.h2d_ms / cfg.nsteps;
    m.d2h_ms = f.d2h_ms / cfg.nsteps;
    // The collision-loop timing is the target-region execution time;
    // the bin-field maps belong to the enclosing per-step data region
    // and are charged to fast_sbm (identical across v2/v3, as in the
    // paper where Table V isolates the kernel change).
    m.coal_loop_sec = m.kernel_ms / 1e3;
    m.fast_sbm_sec =
        host_phys_sec + m.coal_loop_sec + (m.h2d_ms + m.d2h_ms) / 1e3;
  } else {
    m.coal_loop_sec = cpu.seconds_for_flops(f.coal_flops) / cfg.nsteps;
    m.fast_sbm_sec = host_phys_sec + m.coal_loop_sec;
  }

  const perfmodel::NetworkSpec net = perfmodel::NetworkSpec::slingshot();
  const double comm_sec = net.seconds_for(8, 30 << 20, 16);
  m.overall_sec =
      m.fast_sbm_sec + cpu.seconds_for_flops(m.adv_flops) + comm_sec;
  return m;
}

/// Measured v0/v1 cost ratios at bench scale (wall time of the
/// functional code).  The modeled cumulative rows of Tables IV/V derive
/// v0's time as v1's modeled time scaled by these measured ratios — our
/// synthetic spectra are sparser than a real storm's, so deriving v0
/// from flop counts alone would overweight the kernals_ks fill.
struct V0V1Ratio {
  double fast_sbm = 1.0;
  double overall = 1.0;
};

inline V0V1Ratio measure_v0_v1_ratio() {
  auto one = [&](fsbm::Version v, double* fast, double* overall) {
    model::RunConfig cfg = bench_case(v, 2);
    prof::Profiler prof;
    const model::RunResult res = model::run_simulation(cfg, prof);
    *fast = prof.inclusive_sec("fast_sbm");
    *overall = res.wall_sec;
  };
  double f0, o0, f1, o1;
  one(fsbm::Version::kV0Baseline, &f0, &o0);
  one(fsbm::Version::kV1LookupOnDemand, &f1, &o1);
  return V0V1Ratio{f0 / f1, o0 / o1};
}

}  // namespace wrf::bench
