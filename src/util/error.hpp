#pragma once
// Error types shared across miniWRF-SBM.
//
// The library throws exceptions derived from `wrf::Error` for programming
// and configuration errors, and `wrf::gpu::DeviceError` (declared here so
// call sites can catch it without pulling in the device model) for
// simulated device-side failures such as the CUDA stack overflow the paper
// hits when offloading `coal_bott_new` with automatic arrays (Section VI-B).

#include <stdexcept>
#include <string>

namespace wrf {

/// Base class for all errors thrown by miniWRF-SBM.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid user-supplied configuration (grid sizes, rank counts, ...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Index or range violation detected by a checked accessor.
class BoundsError : public Error {
 public:
  explicit BoundsError(const std::string& what) : Error(what) {}
};

/// I/O failure in the snapshot reader/writer.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace gpu {

/// Simulated device-side failure (mirrors a CUDA runtime error).
///
/// `code` follows CUDA error numbering loosely; the one the paper cares
/// about is `kLaunchOutOfStack` raised when per-thread stack demand
/// exceeds the configured device stack limit.
class DeviceError : public Error {
 public:
  enum Code {
    kUnknown = 0,
    kLaunchOutOfStack = 719,   // cudaErrorLaunchFailure-style stack overflow
    kOutOfMemory = 2,          // cudaErrorMemoryAllocation
    kInvalidConfiguration = 9, // cudaErrorInvalidConfiguration
  };

  DeviceError(Code code, const std::string& what)
      : Error(what), code_(code) {}

  Code code() const noexcept { return code_; }

 private:
  Code code_;
};

}  // namespace gpu
}  // namespace wrf
