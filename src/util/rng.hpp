#pragma once
// Deterministic pseudo-random numbers for synthetic case generation.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64.  We avoid
// std::mt19937 so that streams are cheap to fork per rank/tile and results
// are bit-reproducible across standard libraries — a requirement for the
// diffstate verification tests, which compare decomposed vs. single-patch
// runs bitwise.

#include <cstdint>

namespace wrf {

/// Small, fast, deterministic RNG with forkable streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& si : s_) si = splitmix64(x);
  }

  /// Uniform 64-bit integer.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  std::uint64_t bounded(std::uint64_t n) noexcept {
    return n == 0 ? 0 : next_u64() % n;
  }

  /// Derive an independent stream; fork(i) != fork(j) for i != j.
  Rng fork(std::uint64_t stream_id) const noexcept {
    std::uint64_t x = s_[0] ^ (stream_id * 0xBF58476D1CE4E5B9ull + 1);
    Rng child(0);
    for (auto& si : child.s_) si = splitmix64(x);
    return child;
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  static std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace wrf
