#pragma once
#include <cmath>

// Physical constants used by the microphysics and dynamics, in SI units.
// Values follow the WRF model constants module where applicable.

namespace wrf::constants {

inline constexpr double kGravity = 9.81;          ///< m s^-2
inline constexpr double kRd = 287.04;             ///< dry-air gas constant, J kg^-1 K^-1
inline constexpr double kRv = 461.6;              ///< water-vapor gas constant, J kg^-1 K^-1
inline constexpr double kCp = 1004.5;             ///< dry-air heat capacity, J kg^-1 K^-1
inline constexpr double kLv = 2.50e6;             ///< latent heat of vaporization, J kg^-1
inline constexpr double kLs = 2.834e6;            ///< latent heat of sublimation, J kg^-1
inline constexpr double kLf = 3.34e5;             ///< latent heat of fusion, J kg^-1
inline constexpr double kRhoWater = 1000.0;       ///< kg m^-3
inline constexpr double kRhoIceBulk = 917.0;      ///< kg m^-3
inline constexpr double kP1000mb = 1.0e5;         ///< reference pressure, Pa
inline constexpr double kT0 = 273.15;             ///< freezing point, K
inline constexpr double kEps = kRd / kRv;         ///< Rd/Rv
inline constexpr double kPi = 3.14159265358979323846;

/// Saturation vapor pressure over liquid water (Bolton 1980), Pa.
/// Valid for the tropospheric temperature range used by the test cases.
inline double esat_liquid(double temp_k) {
  const double tc = temp_k - kT0;
  // 6.112 hPa * exp(17.67 Tc / (Tc + 243.5))
  double x = 17.67 * tc / (tc + 243.5);
  // Cheap, branch-free clamped exponent keeps the kernel GPU-friendly.
  if (x > 10.0) x = 10.0;
  if (x < -20.0) x = -20.0;
  return 611.2 * std::exp(x);
}

/// Saturation vapor pressure over ice (Magnus form), Pa.
inline double esat_ice(double temp_k) {
  const double tc = temp_k - kT0;
  double x = 21.8745584 * tc / (tc + 265.49);
  if (x > 10.0) x = 10.0;
  if (x < -25.0) x = -25.0;
  return 611.2 * std::exp(x);
}

/// Saturation mixing ratio over liquid at (T, p).
inline double qsat_liquid(double temp_k, double pres_pa) {
  const double es = esat_liquid(temp_k);
  return kEps * es / (pres_pa - (1.0 - kEps) * es);
}

/// Saturation mixing ratio over ice at (T, p).
inline double qsat_ice(double temp_k, double pres_pa) {
  const double es = esat_ice(temp_k);
  return kEps * es / (pres_pa - (1.0 - kEps) * es);
}

}  // namespace wrf::constants
