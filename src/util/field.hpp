#pragma once
// Index-ranged multidimensional arrays in WRF memory order.
//
// WRF stores 3-D state as A(i,k,j): `i` (west-east) fastest, then `k`
// (vertical), then `j` (south-north), with inclusive Fortran-style index
// ranges that may start anywhere (memory vs. tile vs. domain ranges, see
// Figure 1 of the paper).  `Field3D` reproduces that layout so loop nests
// written here look like their Fortran counterparts, and so halo /
// decomposition logic can use the same (ims:ime, kms:kme, jms:jme)
// vocabulary as WRF.
//
// `Field4D` adds a leading bin/species dimension that is fastest-varying,
// matching FSBM's ff(1:nkr, i, k, j) chemistry-style arrays; this is what
// makes GPU accesses "strided by b elements" as discussed in the paper's
// roofline section.

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace wrf {

/// Inclusive 1-D index range [lo, hi], Fortran style.
struct Range {
  int lo = 0;
  int hi = -1;  // default: empty

  Range() = default;
  Range(int lo_, int hi_) : lo(lo_), hi(hi_) {}

  /// Number of indices in the range (0 when empty).
  int size() const noexcept { return hi < lo ? 0 : hi - lo + 1; }
  bool contains(int v) const noexcept { return v >= lo && v <= hi; }

  /// Intersection of two ranges (may be empty).
  Range clip(const Range& o) const noexcept {
    return Range{lo > o.lo ? lo : o.lo, hi < o.hi ? hi : o.hi};
  }
  bool operator==(const Range&) const = default;
};

/// 3-D field with inclusive index ranges, laid out i-fastest (WRF order).
template <class T>
class Field3D {
 public:
  Field3D() = default;

  /// Allocate a field covering [ir] x [kr] x [jr], zero-initialized.
  Field3D(Range ir, Range kr, Range jr, T init = T{})
      : ir_(ir), kr_(kr), jr_(jr),
        ni_(ir.size()), nk_(kr.size()), nj_(jr.size()),
        data_(static_cast<std::size_t>(ni_) * nk_ * nj_, init) {}

  T& operator()(int i, int k, int j) noexcept {
    assert(ir_.contains(i) && kr_.contains(k) && jr_.contains(j));
    return data_[index(i, k, j)];
  }
  const T& operator()(int i, int k, int j) const noexcept {
    assert(ir_.contains(i) && kr_.contains(k) && jr_.contains(j));
    return data_[index(i, k, j)];
  }

  /// Bounds-checked accessor; throws BoundsError on violation.
  T& at(int i, int k, int j) {
    check(i, k, j);
    return data_[index(i, k, j)];
  }
  const T& at(int i, int k, int j) const {
    const_cast<Field3D*>(this)->check(i, k, j);
    return data_[index(i, k, j)];
  }

  Range irange() const noexcept { return ir_; }
  Range krange() const noexcept { return kr_; }
  Range jrange() const noexcept { return jr_; }
  std::size_t size() const noexcept { return data_.size(); }
  std::size_t bytes() const noexcept { return data_.size() * sizeof(T); }
  bool empty() const noexcept { return data_.empty(); }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  void fill(T v) { data_.assign(data_.size(), v); }

  /// Linear offset of (i,k,j); exposed for trace generation in gpusim.
  std::size_t index(int i, int k, int j) const noexcept {
    return static_cast<std::size_t>(j - jr_.lo) * nk_ * ni_ +
           static_cast<std::size_t>(k - kr_.lo) * ni_ +
           static_cast<std::size_t>(i - ir_.lo);
  }

 private:
  void check(int i, int k, int j) const {
    if (!ir_.contains(i) || !kr_.contains(k) || !jr_.contains(j)) {
      throw BoundsError("Field3D index (" + std::to_string(i) + "," +
                        std::to_string(k) + "," + std::to_string(j) +
                        ") outside [" + std::to_string(ir_.lo) + ":" +
                        std::to_string(ir_.hi) + "," + std::to_string(kr_.lo) +
                        ":" + std::to_string(kr_.hi) + "," +
                        std::to_string(jr_.lo) + ":" + std::to_string(jr_.hi) +
                        "]");
    }
  }

  Range ir_, kr_, jr_;
  int ni_ = 0, nk_ = 0, nj_ = 0;
  std::vector<T> data_;
};

/// 4-D field with a fastest-varying leading dimension [0, n) and three
/// ranged spatial dimensions in WRF order; used for per-bin distributions
/// ff(n, i, k, j) and for the v3 "temp_arrays" device pools of the paper.
template <class T>
class Field4D {
 public:
  Field4D() = default;

  Field4D(int n, Range ir, Range kr, Range jr, T init = T{})
      : n_(n), ir_(ir), kr_(kr), jr_(jr),
        ni_(ir.size()), nk_(kr.size()), nj_(jr.size()),
        data_(static_cast<std::size_t>(n) * ni_ * nk_ * nj_, init) {}

  T& operator()(int n, int i, int k, int j) noexcept {
    assert(n >= 0 && n < n_);
    assert(ir_.contains(i) && kr_.contains(k) && jr_.contains(j));
    return data_[index(n, i, k, j)];
  }
  const T& operator()(int n, int i, int k, int j) const noexcept {
    assert(n >= 0 && n < n_);
    assert(ir_.contains(i) && kr_.contains(k) && jr_.contains(j));
    return data_[index(n, i, k, j)];
  }

  /// Pointer to the contiguous n-slice at grid point (i,k,j) — this is the
  /// C++ equivalent of the paper's Fortran pointer assignment
  /// `fl1 => fl1_temp(:, Iin, Kin, Jin)`.
  T* slice(int i, int k, int j) noexcept { return &data_[index(0, i, k, j)]; }
  const T* slice(int i, int k, int j) const noexcept {
    return &data_[index(0, i, k, j)];
  }

  int n() const noexcept { return n_; }
  Range irange() const noexcept { return ir_; }
  Range krange() const noexcept { return kr_; }
  Range jrange() const noexcept { return jr_; }
  std::size_t size() const noexcept { return data_.size(); }
  std::size_t bytes() const noexcept { return data_.size() * sizeof(T); }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }
  void fill(T v) { data_.assign(data_.size(), v); }

  std::size_t index(int n, int i, int k, int j) const noexcept {
    return ((static_cast<std::size_t>(j - jr_.lo) * nk_ +
             static_cast<std::size_t>(k - kr_.lo)) *
                ni_ +
            static_cast<std::size_t>(i - ir_.lo)) *
               n_ +
           static_cast<std::size_t>(n);
  }

 private:
  int n_ = 0;
  Range ir_, kr_, jr_;
  int ni_ = 0, nk_ = 0, nj_ = 0;
  std::vector<T> data_;
};

}  // namespace wrf
