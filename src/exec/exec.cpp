#include "exec/exec.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "gpu/device.hpp"
#include "mem/residency.hpp"
#include "obs/trace.hpp"
#include "par/thread_pool.hpp"

namespace wrf::exec {

// ------------------------------------------------------------ split plan

SplitPlan split_plan(const Range3& r, const TilePlan& plan,
                     const std::function<bool(int, int, int)>& pred) {
  SplitPlan sp;
  sp.plan = plan;
  for (std::int64_t t = 0; t < plan.tiles(); ++t) {
    const std::int64_t b = plan.tile_begin(t);
    const std::int64_t e = plan.tile_end(t);
    bool active = false;
    for (std::int64_t f = b; f < e && !active; ++f) {
      const Range3::Cell c = r.cell(f);
      active = pred(c.i, c.k, c.j);
    }
    if (active) {
      sp.device_tiles.push_back(t);
      sp.device_cells += e - b;
    } else {
      sp.host_tiles.push_back(t);
      sp.host_cells += e - b;
    }
  }
  return sp;
}

// ------------------------------------------------------- tile-list base

void ExecSpace::run_tile_list(const TilePlan& plan,
                              const std::vector<std::int64_t>& tiles,
                              const LaunchParams& p, const TileFn& fn) {
  OBS_SPAN("pass", p.name,
           {{"space", "serial"}, {"tiles", tiles.size()}});
  for (const std::int64_t t : tiles) {
    fn(t, plan.tile_begin(t), plan.tile_end(t));
  }
}

// ----------------------------------------------------------------- serial

void SerialSpace::run_tiles(const TilePlan& plan, const LaunchParams& p,
                            const TileFn& fn) {
  OBS_SPAN("pass", p.name,
           {{"space", "serial"},
            {"tiles", plan.tiles()},
            {"iters", plan.total()}});
  for (std::int64_t t = 0; t < plan.tiles(); ++t) {
    fn(t, plan.tile_begin(t), plan.tile_end(t));
  }
}

// ---------------------------------------------------------------- threads

ThreadedSpace::ThreadedSpace(int nthreads) {
  if (nthreads > 0) {
    owned_ = std::make_unique<par::ThreadPool>(nthreads);
    pool_ = owned_.get();
  } else {
    pool_ = &par::shared_pool();
  }
}

ThreadedSpace::~ThreadedSpace() = default;

int ThreadedSpace::concurrency() const noexcept { return pool_->size(); }

namespace {

/// Dispatch tiles over a pool with first-exception capture: workers must
/// never let an exception escape into the pool's task loop (that would
/// std::terminate), so the wrapper records the first one, skips remaining
/// tiles, and rethrows on the calling thread after the join.
void run_tiles_on_pool(par::ThreadPool& pool, const TilePlan& plan,
                       const TileFn& fn) {
  std::atomic<bool> failed{false};
  std::exception_ptr eptr;
  std::mutex emu;
  pool.parallel_for(
      0, plan.tiles(),
      [&](std::int64_t t) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          fn(t, plan.tile_begin(t), plan.tile_end(t));
        } catch (...) {
          std::lock_guard<std::mutex> lk(emu);
          if (!eptr) eptr = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      },
      /*chunk=*/1);
  if (eptr) std::rethrow_exception(eptr);
}

/// Tile-list variant: dispatch over list positions, handing fn the
/// original tile ids (same exception contract as run_tiles_on_pool).
void run_tile_list_on_pool(par::ThreadPool& pool, const TilePlan& plan,
                           const std::vector<std::int64_t>& tiles,
                           const TileFn& fn) {
  std::atomic<bool> failed{false};
  std::exception_ptr eptr;
  std::mutex emu;
  pool.parallel_for(
      0, static_cast<std::int64_t>(tiles.size()),
      [&](std::int64_t n) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          const std::int64_t t = tiles[static_cast<std::size_t>(n)];
          fn(t, plan.tile_begin(t), plan.tile_end(t));
        } catch (...) {
          std::lock_guard<std::mutex> lk(emu);
          if (!eptr) eptr = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      },
      /*chunk=*/1);
  if (eptr) std::rethrow_exception(eptr);
}

}  // namespace

void ThreadedSpace::run_tiles(const TilePlan& plan, const LaunchParams& p,
                              const TileFn& fn) {
  if (plan.tiles() == 0) return;
  OBS_SPAN("pass", p.name,
           {{"space", "threads"},
            {"tiles", plan.tiles()},
            {"iters", plan.total()}});
  if (plan.tiles() == 1 || pool_->size() == 1) {
    // One tile (or one worker) gains nothing from dispatch overhead.
    for (std::int64_t t = 0; t < plan.tiles(); ++t) {
      fn(t, plan.tile_begin(t), plan.tile_end(t));
    }
    return;
  }
  run_tiles_on_pool(*pool_, plan, fn);
}

void ThreadedSpace::run_tile_list(const TilePlan& plan,
                                  const std::vector<std::int64_t>& tiles,
                                  const LaunchParams& p, const TileFn& fn) {
  if (tiles.empty()) return;
  if (tiles.size() == 1 || pool_->size() == 1) {
    ExecSpace::run_tile_list(plan, tiles, p, fn);
    return;
  }
  OBS_SPAN("pass", p.name,
           {{"space", "threads"}, {"tiles", tiles.size()}});
  run_tile_list_on_pool(*pool_, plan, tiles, fn);
}

// ----------------------------------------------------------------- device

DeviceSpace::DeviceSpace(gpu::Device& device, par::ThreadPool* pool)
    : device_(&device),
      pool_(pool != nullptr ? pool : &par::shared_pool()) {}

DeviceSpace::~DeviceSpace() = default;

mem::DataRegion& DeviceSpace::region() {
  if (!region_) region_ = std::make_unique<mem::DataRegion>(*device_);
  return *region_;
}

int DeviceSpace::concurrency() const noexcept { return pool_->size(); }

namespace {

/// The performance-model half of a device dispatch: one body-less kernel
/// launch whose geometry describes the collapsed nest (or nest shard)
/// the functional execution stood for.
gpu::KernelDesc model_desc(const LaunchParams& p, std::int64_t iterations) {
  gpu::KernelDesc desc;
  desc.name = p.name;
  desc.iterations = iterations;
  desc.collapse = p.collapse;
  desc.regs_per_thread = p.regs_per_thread;
  desc.workspace_bytes_per_thread = p.workspace_bytes_per_thread;
  desc.flops_per_iter = p.flops_per_iter;
  desc.bytes_per_iter = p.bytes_per_iter;
  desc.double_precision = p.double_precision;
  return desc;
}

}  // namespace

void DeviceSpace::run_tiles(const TilePlan& plan, const LaunchParams& p,
                            const TileFn& fn) {
  if (plan.tiles() == 0) return;
  OBS_SPAN("pass", p.name,
           {{"space", "device"},
            {"tiles", plan.tiles()},
            {"iters", plan.total()}});
  // Functional execution first, tile-deterministic like the host spaces.
  if (plan.tiles() == 1) {
    fn(0, plan.tile_begin(0), plan.tile_end(0));
  } else {
    run_tiles_on_pool(*pool_, plan, fn);
  }
  const gpu::KernelStats ks = device_->launch(model_desc(p, plan.total()));
  kernel_ms_ += ks.modeled_time_ms;
  ++dispatches_;
}

void DeviceSpace::run_tile_list(const TilePlan& plan,
                                const std::vector<std::int64_t>& tiles,
                                const LaunchParams& p, const TileFn& fn) {
  if (tiles.empty()) return;
  std::int64_t iters = 0;
  for (const std::int64_t t : tiles) {
    iters += plan.tile_end(t) - plan.tile_begin(t);
  }
  OBS_SPAN("pass", p.name,
           {{"space", "device"},
            {"tiles", tiles.size()},
            {"iters", iters}});
  if (tiles.size() == 1) {
    const std::int64_t t = tiles.front();
    fn(t, plan.tile_begin(t), plan.tile_end(t));
  } else {
    run_tile_list_on_pool(*pool_, plan, tiles, fn);
  }
  const gpu::KernelStats ks = device_->launch(model_desc(p, iters));
  kernel_ms_ += ks.modeled_time_ms;
  ++dispatches_;
}

gpu::KernelStats DeviceSpace::launch(const gpu::KernelDesc& desc) {
  const gpu::KernelStats ks = device_->launch(desc);
  kernel_ms_ += ks.modeled_time_ms;
  ++dispatches_;
  return ks;
}

// ----------------------------------------------------------------- hetero

HeteroSpace::HeteroSpace(gpu::Device& device, int nthreads)
    : device_(device), host_(nthreads) {}

HeteroSpace::~HeteroSpace() = default;

int HeteroSpace::concurrency() const noexcept { return host_.concurrency(); }

void HeteroSpace::run_tiles(const TilePlan& plan, const LaunchParams& p,
                            const TileFn& fn) {
  // No predicate, no split: generic dispatches are host work, so every
  // pass that does not opt into a SplitPlan behaves exactly like
  // exec=threads (bitwise, by the shared tile contract).
  host_.run_tiles(plan, p, fn);
}

void HeteroSpace::run_tile_list(const TilePlan& plan,
                                const std::vector<std::int64_t>& tiles,
                                const LaunchParams& p, const TileFn& fn) {
  host_.run_tile_list(plan, tiles, p, fn);
}

void HeteroSpace::run_split(const SplitPlan& sp, const LaunchParams& p,
                            const TileFn& device_fn, const TileFn& host_fn) {
  OBS_SPAN("pass", p.name,
           {{"space", "hetero"},
            {"device_tiles", sp.device_tiles.size()},
            {"host_tiles", sp.host_tiles.size()},
            {"device_cells", sp.device_cells},
            {"host_cells", sp.host_cells}});
  // Host remainder on its own thread so it overlaps the device shard's
  // functional execution + modeled launch — the heterogeneous overlap
  // the TSan job exercises.  Exceptions from the host side are carried
  // back and rethrown after the join (device-side exceptions win, as
  // they surface first on the calling thread).
  std::exception_ptr host_err;
  std::thread host_thread([&] {
    try {
      host_.run_tile_list(sp.plan, sp.host_tiles, p, host_fn);
    } catch (...) {
      host_err = std::current_exception();
    }
  });
  try {
    device_.run_tile_list(sp.plan, sp.device_tiles, p, device_fn);
  } catch (...) {
    host_thread.join();
    throw;
  }
  host_thread.join();
  if (host_err) std::rethrow_exception(host_err);
}

// ----------------------------------------------------------------- config

namespace {

/// Parse the ":N" suffix of a "mode:N" knob; throws ConfigError naming
/// `what` when N is missing, non-numeric, trailing-junked, or < 1.
int parse_thread_suffix(const std::string& s, const std::string& prefix,
                        const char* what) {
  const std::string num = s.substr(prefix.size());
  std::size_t pos = 0;
  int n = 0;
  try {
    n = std::stoi(num, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != num.size() || num.empty() || n < 1) {
    throw ConfigError("ExecConfig: bad thread count in '" + s + "' (want " +
                      what + ":N with N >= 1)");
  }
  return n;
}

}  // namespace

ExecConfig ExecConfig::parse(const std::string& s) {
  ExecConfig cfg;
  if (s == "serial") {
    cfg.kind = ExecKind::kSerial;
    return cfg;
  }
  if (s == "device") {
    cfg.kind = ExecKind::kDevice;
    return cfg;
  }
  if (s == "threads") {
    cfg.kind = ExecKind::kThreads;
    cfg.nthreads = 0;
    return cfg;
  }
  if (s == "hetero") {
    cfg.kind = ExecKind::kHetero;
    cfg.nthreads = 0;
    return cfg;
  }
  const std::string threads_prefix = "threads:";
  if (s.rfind(threads_prefix, 0) == 0) {
    cfg.kind = ExecKind::kThreads;
    cfg.nthreads = parse_thread_suffix(s, threads_prefix, "threads");
    return cfg;
  }
  const std::string hetero_prefix = "hetero:";
  if (s.rfind(hetero_prefix, 0) == 0) {
    cfg.kind = ExecKind::kHetero;
    cfg.nthreads = parse_thread_suffix(s, hetero_prefix, "hetero");
    return cfg;
  }
  throw ConfigError("ExecConfig: unknown exec mode '" + s +
                    "' (want serial | threads[:N] | device | hetero[:N])");
}

std::string ExecConfig::describe() const {
  switch (kind) {
    case ExecKind::kSerial: return "serial";
    case ExecKind::kDevice: return "device";
    case ExecKind::kThreads:
      return nthreads > 0 ? "threads:" + std::to_string(nthreads)
                          : "threads";
    case ExecKind::kHetero:
      return nthreads > 0 ? "hetero:" + std::to_string(nthreads) : "hetero";
  }
  return "?";
}

std::unique_ptr<ExecSpace> make_space(const ExecConfig& cfg,
                                      gpu::Device* device) {
  switch (cfg.kind) {
    case ExecKind::kSerial:
      return std::make_unique<SerialSpace>();
    case ExecKind::kThreads:
      return std::make_unique<ThreadedSpace>(cfg.nthreads);
    case ExecKind::kDevice:
      if (device == nullptr) {
        throw ConfigError("make_space: exec=device needs a gpu::Device");
      }
      return std::make_unique<DeviceSpace>(*device);
    case ExecKind::kHetero:
      if (device == nullptr) {
        throw ConfigError("make_space: exec=hetero needs a gpu::Device");
      }
      return std::make_unique<HeteroSpace>(*device, cfg.nthreads);
  }
  throw ConfigError("make_space: unknown ExecKind");
}

ExecSpace& serial() {
  static SerialSpace space;
  return space;
}

ExecConfig exec_from_args(int argc, char** argv) {
  const std::string prefix = "exec=";
  for (int a = 1; a < argc; ++a) {
    const std::string s = argv[a];
    if (s.rfind(prefix, 0) == 0) {
      return ExecConfig::parse(s.substr(prefix.size()));
    }
  }
  return ExecConfig{};
}

}  // namespace wrf::exec
