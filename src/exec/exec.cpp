#include "exec/exec.hpp"

#include <atomic>
#include <mutex>

#include "gpu/device.hpp"
#include "mem/residency.hpp"
#include "par/thread_pool.hpp"

namespace wrf::exec {

// ----------------------------------------------------------------- serial

void SerialSpace::run_tiles(const TilePlan& plan, const LaunchParams&,
                            const TileFn& fn) {
  for (std::int64_t t = 0; t < plan.tiles(); ++t) {
    fn(t, plan.tile_begin(t), plan.tile_end(t));
  }
}

// ---------------------------------------------------------------- threads

ThreadedSpace::ThreadedSpace(int nthreads) {
  if (nthreads > 0) {
    owned_ = std::make_unique<par::ThreadPool>(nthreads);
    pool_ = owned_.get();
  } else {
    pool_ = &par::shared_pool();
  }
}

ThreadedSpace::~ThreadedSpace() = default;

int ThreadedSpace::concurrency() const noexcept { return pool_->size(); }

namespace {

/// Dispatch tiles over a pool with first-exception capture: workers must
/// never let an exception escape into the pool's task loop (that would
/// std::terminate), so the wrapper records the first one, skips remaining
/// tiles, and rethrows on the calling thread after the join.
void run_tiles_on_pool(par::ThreadPool& pool, const TilePlan& plan,
                       const TileFn& fn) {
  std::atomic<bool> failed{false};
  std::exception_ptr eptr;
  std::mutex emu;
  pool.parallel_for(
      0, plan.tiles(),
      [&](std::int64_t t) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          fn(t, plan.tile_begin(t), plan.tile_end(t));
        } catch (...) {
          std::lock_guard<std::mutex> lk(emu);
          if (!eptr) eptr = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      },
      /*chunk=*/1);
  if (eptr) std::rethrow_exception(eptr);
}

}  // namespace

void ThreadedSpace::run_tiles(const TilePlan& plan, const LaunchParams&,
                              const TileFn& fn) {
  if (plan.tiles() == 0) return;
  if (plan.tiles() == 1 || pool_->size() == 1) {
    // One tile (or one worker) gains nothing from dispatch overhead.
    for (std::int64_t t = 0; t < plan.tiles(); ++t) {
      fn(t, plan.tile_begin(t), plan.tile_end(t));
    }
    return;
  }
  run_tiles_on_pool(*pool_, plan, fn);
}

// ----------------------------------------------------------------- device

DeviceSpace::DeviceSpace(gpu::Device& device, par::ThreadPool* pool)
    : device_(&device),
      pool_(pool != nullptr ? pool : &par::shared_pool()) {}

DeviceSpace::~DeviceSpace() = default;

mem::DataRegion& DeviceSpace::region() {
  if (!region_) region_ = std::make_unique<mem::DataRegion>(*device_);
  return *region_;
}

int DeviceSpace::concurrency() const noexcept { return pool_->size(); }

void DeviceSpace::run_tiles(const TilePlan& plan, const LaunchParams& p,
                            const TileFn& fn) {
  if (plan.tiles() == 0) return;
  // Functional execution first, tile-deterministic like the host spaces.
  if (plan.tiles() == 1) {
    fn(0, plan.tile_begin(0), plan.tile_end(0));
  } else {
    run_tiles_on_pool(*pool_, plan, fn);
  }
  // Then the performance model: one body-less kernel launch whose
  // geometry describes the collapsed nest this dispatch stood for.
  gpu::KernelDesc desc;
  desc.name = p.name;
  desc.iterations = plan.total();
  desc.collapse = p.collapse;
  desc.regs_per_thread = p.regs_per_thread;
  desc.workspace_bytes_per_thread = p.workspace_bytes_per_thread;
  desc.flops_per_iter = p.flops_per_iter;
  desc.bytes_per_iter = p.bytes_per_iter;
  desc.double_precision = p.double_precision;
  const gpu::KernelStats ks = device_->launch(desc);
  kernel_ms_ += ks.modeled_time_ms;
  ++dispatches_;
}

gpu::KernelStats DeviceSpace::launch(const gpu::KernelDesc& desc) {
  const gpu::KernelStats ks = device_->launch(desc);
  kernel_ms_ += ks.modeled_time_ms;
  ++dispatches_;
  return ks;
}

// ----------------------------------------------------------------- config

ExecConfig ExecConfig::parse(const std::string& s) {
  ExecConfig cfg;
  if (s == "serial") {
    cfg.kind = ExecKind::kSerial;
    return cfg;
  }
  if (s == "device") {
    cfg.kind = ExecKind::kDevice;
    return cfg;
  }
  if (s == "threads") {
    cfg.kind = ExecKind::kThreads;
    cfg.nthreads = 0;
    return cfg;
  }
  const std::string prefix = "threads:";
  if (s.rfind(prefix, 0) == 0) {
    const std::string num = s.substr(prefix.size());
    std::size_t pos = 0;
    int n = 0;
    try {
      n = std::stoi(num, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != num.size() || num.empty() || n < 1) {
      throw ConfigError("ExecConfig: bad thread count in '" + s +
                        "' (want threads:N with N >= 1)");
    }
    cfg.kind = ExecKind::kThreads;
    cfg.nthreads = n;
    return cfg;
  }
  throw ConfigError("ExecConfig: unknown exec mode '" + s +
                    "' (want serial | threads[:N] | device)");
}

std::string ExecConfig::describe() const {
  switch (kind) {
    case ExecKind::kSerial: return "serial";
    case ExecKind::kDevice: return "device";
    case ExecKind::kThreads:
      return nthreads > 0 ? "threads:" + std::to_string(nthreads)
                          : "threads";
  }
  return "?";
}

std::unique_ptr<ExecSpace> make_space(const ExecConfig& cfg,
                                      gpu::Device* device) {
  switch (cfg.kind) {
    case ExecKind::kSerial:
      return std::make_unique<SerialSpace>();
    case ExecKind::kThreads:
      return std::make_unique<ThreadedSpace>(cfg.nthreads);
    case ExecKind::kDevice:
      if (device == nullptr) {
        throw ConfigError("make_space: exec=device needs a gpu::Device");
      }
      return std::make_unique<DeviceSpace>(*device);
  }
  throw ConfigError("make_space: unknown ExecKind");
}

ExecSpace& serial() {
  static SerialSpace space;
  return space;
}

ExecConfig exec_from_args(int argc, char** argv) {
  const std::string prefix = "exec=";
  for (int a = 1; a < argc; ++a) {
    const std::string s = argv[a];
    if (s.rfind(prefix, 0) == 0) {
      return ExecConfig::parse(s.substr(prefix.size()));
    }
  }
  return ExecConfig{};
}

}  // namespace wrf::exec
