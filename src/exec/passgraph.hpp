#pragma once
// Pass-DAG executor: the cross-pass rung of the paper's collapse ladder.
//
// FSBM's per-step work is a short chain of passes (condensation ->
// collision -> sedimentation), each today a separate dispatch paying the
// modeled per-launch latency plus inter-pass DataRegion round-trips.  A
// PassGraph holds one PassNode per pass — its field footprint (reads /
// writes), tile plan (range, grain, collapse depth), shard placement,
// and a pointer to the embedded mini-Fortran kernel source the analyzer
// can reason about.  `schedule()` walks adjacent pairs and fuses two
// device-shard passes into one launch group when
//
//   1. a *legality callback* (analyzer/fusion.hpp: dependence analysis
//      over both kernel sources, memoized per pass-pair and collapse
//      depth) proves the merged lanes have no fusion-blocking
//      dependence, and
//   2. the tile plans are structurally compatible (same collapse depth,
//      same iteration range, same grain — the fused kernel must index
//      both bodies with one flat lane id).
//
// Host-shard and predicate-split (hetero) passes never fuse.  Every
// decision — fused or not, and why — is recorded in the Schedule so
// tests and benches can assert the reason came from the analyzer
// rather than a hand-coded blocklist.
//
// Determinism: fusion never changes the tile cut (the fused launch uses
// the shared plan) and the legality proof is exactly the pointwise
// condition under which lane-by-lane back-to-back execution is bitwise
// identical to two sequential full passes — so fuse=auto must, and
// does, reproduce fuse=off bit for bit (asserted across the full
// version x residency x exec matrix in tests/test_fusion.cpp).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exec/exec.hpp"

namespace wrf::exec {

/// The `fuse=` knob: cross-pass kernel fusion policy.
enum class FuseMode : int {
  kOff = 0,   ///< every pass launches separately (the paper's layout)
  kAuto = 1,  ///< fuse adjacent device passes the analyzer proves legal
};

/// Parse "off" | "auto"; throws ConfigError on anything else.
FuseMode parse_fuse(const std::string& s);

/// Render back to the knob syntax.
const char* fuse_name(FuseMode m) noexcept;

/// Scan argv for a `fuse=<mode>` argument (any position); default off.
FuseMode fuse_from_args(int argc, char** argv);

/// One pass's declared footprint and tile plan.
struct PassNode {
  std::string name;      ///< kernel/pass name (diagnostics, decisions)
  bool device = false;   ///< runs on the device shard
  bool split = false;    ///< predicate-split across shards (hetero)
  int collapse = 3;      ///< collapsed loop depth of the launch
  Range3 range;          ///< iteration range of the collapsed nest
  std::int64_t grain = 0;  ///< tile grain (0 = default plane grain)
  std::vector<std::string> reads;   ///< field footprint: read
  std::vector<std::string> writes;  ///< field footprint: written
  /// Embedded kernel source + procedure for the legality analysis;
  /// passes without one (host physics) are never fusion candidates.
  const std::string* kernel_src = nullptr;
  std::string procedure;
  int tag = 0;  ///< caller-private id (FastSbm's pass dispatch)
};

/// Legality callback verdict.
struct FusionCheck {
  bool fusible = false;
  std::string reason;  ///< analyzer blockers when not fusible
};

/// The recorded outcome for one adjacent pair (a, b = node ids).
struct FusionDecision {
  std::size_t a = 0, b = 0;
  bool fused = false;
  std::string reason;
};

/// Result of scheduling: consecutive passes grouped into launch units
/// (group.size() > 1 => one fused launch), plus the per-pair decisions.
struct Schedule {
  std::vector<std::vector<std::size_t>> groups;
  std::vector<FusionDecision> decisions;

  /// Decision for the adjacent pair (a, b); null when not adjacent.
  const FusionDecision* decision(std::size_t a, std::size_t b) const {
    for (const auto& d : decisions) {
      if (d.a == a && d.b == b) return &d;
    }
    return nullptr;
  }
};

/// Legality callback: may passes a and b merge their outermost
/// `collapse` loops into one launch?  Implemented by the caller over
/// analyzer::FusionOracle (kept a callback so exec does not depend on
/// the analyzer layer).
using Legality =
    std::function<FusionCheck(const PassNode&, const PassNode&, int collapse)>;

/// Ordered pass chain (the per-step DAG is a chain: each pass reads its
/// predecessor's writes).
class PassGraph {
 public:
  /// Append a pass; returns its node id (position in the chain).
  std::size_t add(PassNode node);

  const PassNode& node(std::size_t id) const { return nodes_[id]; }
  std::size_t size() const noexcept { return nodes_.size(); }

  /// Greedily group adjacent passes, consulting `legality` for each
  /// candidate pair at the pair's shared collapse depth.  Structural
  /// gates (host/split passes, missing sources, mismatched plans) are
  /// checked here; the dependence verdict always comes from the
  /// callback.  With FuseMode::kOff every pass gets its own group and
  /// each decision records "fuse=off".
  Schedule schedule(FuseMode mode, const Legality& legality) const;

 private:
  std::vector<PassNode> nodes_;
};

}  // namespace wrf::exec
