#include "exec/passgraph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wrf::exec {

FuseMode parse_fuse(const std::string& s) {
  if (s == "off") return FuseMode::kOff;
  if (s == "auto") return FuseMode::kAuto;
  throw ConfigError("fuse=" + s + ": expected fuse=off or fuse=auto");
}

const char* fuse_name(FuseMode m) noexcept {
  return m == FuseMode::kAuto ? "auto" : "off";
}

FuseMode fuse_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("fuse=", 0) == 0) return parse_fuse(arg.substr(5));
  }
  return FuseMode::kOff;
}

std::size_t PassGraph::add(PassNode node) {
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

namespace {

bool same_range(const Range3& a, const Range3& b) {
  return a.i.lo == b.i.lo && a.i.hi == b.i.hi && a.k.lo == b.k.lo &&
         a.k.hi == b.k.hi && a.j.lo == b.j.lo && a.j.hi == b.j.hi;
}

/// Can the pair (a, b) share one launch?  Structural gates first (cheap,
/// and they make the *analyzer* the only source of dependence verdicts),
/// then the legality callback, then plan compatibility.
FusionCheck check_pair(const PassNode& a, const PassNode& b,
                       const Legality& legality) {
  FusionCheck c;
  if (!a.device || !b.device) {
    c.reason = (!a.device ? a.name : b.name) + " is a host-shard pass";
    return c;
  }
  if (a.split || b.split) {
    c.reason = (a.split ? a.name : b.name) +
               " is a predicate-split pass (hetero shards)";
    return c;
  }
  if (a.kernel_src == nullptr || b.kernel_src == nullptr) {
    c.reason = (a.kernel_src == nullptr ? a.name : b.name) +
               " has no embedded kernel source to analyze";
    return c;
  }
  // Dependence legality at the depth both launches could share.  Asked
  // BEFORE the structural plan checks so a genuinely illegal pair (e.g.
  // coal -> sedimentation's vertical dependence) is rejected by the
  // analyzer, not masked by a collapse-depth mismatch.
  const int depth = std::min(a.collapse, b.collapse);
  const FusionCheck verdict = legality(a, b, depth);
  if (!verdict.fusible) {
    c.reason = verdict.reason.empty() ? "analyzer rejected the pair"
                                      : verdict.reason;
    return c;
  }
  if (a.collapse != b.collapse) {
    c.reason = "collapse depth differs (" + std::to_string(a.collapse) +
               " vs " + std::to_string(b.collapse) + ")";
    return c;
  }
  if (!same_range(a.range, b.range)) {
    c.reason = "iteration ranges differ";
    return c;
  }
  if (a.grain != b.grain) {
    c.reason = "tile grains differ";
    return c;
  }
  c.fusible = true;
  c.reason = verdict.reason.empty()
                 ? "analyzer: no fusion-blocking dependence"
                 : verdict.reason;
  return c;
}

}  // namespace

Schedule PassGraph::schedule(FuseMode mode, const Legality& legality) const {
  Schedule s;
  if (nodes_.empty()) return s;
  s.groups.push_back({0});
  for (std::size_t b = 1; b < nodes_.size(); ++b) {
    const std::size_t a = b - 1;
    FusionDecision d;
    d.a = a;
    d.b = b;
    if (mode == FuseMode::kOff) {
      d.fused = false;
      d.reason = "fuse=off";
    } else {
      // Only the first pass of a group may accept a new member — the
      // legality proof covers pairs; longer chains would need a
      // pairwise-transitive argument we don't make.
      const bool chain_open = s.groups.back().size() < 2;
      const FusionCheck c = check_pair(nodes_[a], nodes_[b], legality);
      d.fused = chain_open && c.fusible;
      d.reason = !c.fusible
                     ? c.reason
                     : (chain_open ? c.reason
                                   : "previous pass already fused");
    }
    if (d.fused) {
      s.groups.back().push_back(b);
    } else {
      s.groups.push_back({b});
    }
    s.decisions.push_back(std::move(d));
  }
  return s;
}

}  // namespace wrf::exec
