#pragma once
// The execution-space layer: one dispatch path for serial, threaded, and
// simulated-device loop nests.
//
// The paper's whole arc is moving FSBM's per-cell loops from serial host
// execution to offloaded `collapse(2)` / `collapse(3)` kernels.  This
// module abstracts that choice so a loop nest is written once against an
// `ExecSpace` and can then run
//
//   * serially        (`SerialSpace`   — Listing 1 as found),
//   * across threads  (`ThreadedSpace` — WRF's OpenMP tile layer,
//                      backed by par::ThreadPool with dynamic chunking),
//   * on the device   (`DeviceSpace`   — functional execution plus the
//                      gpusim performance model and transfer accounting),
//   * split across both (`HeteroSpace` — a DeviceSpace plus a
//                      ThreadedSpace; a predicate-split `SplitPlan`
//                      routes each tile to exactly one shard).
//
// Determinism contract: a `Range3` iteration space is cut into tiles by a
// `TilePlan` that depends only on the range and the requested grain —
// never on the executor's concurrency.  Each tile's iterations run in
// ascending order on a single thread, and reduction partials are merged
// in tile order on the calling thread.  Consequently every ExecSpace
// produces bitwise-identical state *and* bitwise-identical floating-point
// reductions for the same (range, grain), which is what the
// serial-vs-threaded determinism tests assert.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/field.hpp"

namespace wrf::par {
class ThreadPool;
}
namespace wrf::gpu {
class Device;
struct KernelDesc;
struct KernelStats;
}
namespace wrf::mem {
class DataRegion;
}

namespace wrf::exec {

/// Inclusive 3-D iteration range in WRF loop order: `i` fastest, then
/// `k`, then `j` — the shape of every `do j / do k / do i` nest the paper
/// collapses.  Ranges may be empty or halo-inclusive (negative lower
/// bounds); flattening matches the paper's collapse order.
struct Range3 {
  Range i, k, j;

  struct Cell {
    int i, k, j;
  };

  std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(i.size()) * k.size() * j.size();
  }
  bool empty() const noexcept { return size() == 0; }

  /// Decode a flat index in [0, size()) into (i, k, j).
  Cell cell(std::int64_t flat) const noexcept {
    const std::int64_t ni = i.size();
    const std::int64_t nk = k.size();
    Cell c;
    c.i = i.lo + static_cast<int>(flat % ni);
    c.k = k.lo + static_cast<int>((flat / ni) % nk);
    c.j = j.lo + static_cast<int>(flat / (ni * nk));
    return c;
  }

  /// A plane of (i,k) — the default tile grain: one j-iteration of the
  /// collapsed nest, which keeps i-rows contiguous the way `collapse(2)`
  /// lanes do.
  std::int64_t plane() const noexcept {
    return static_cast<std::int64_t>(i.size()) * k.size();
  }

  /// The sub-range at least `depth` cells inside the i/j faces (k is
  /// never decomposed, so it is untouched).  With halos refreshed only
  /// at range edges, interior cells of a `depth`-wide-stencil nest are
  /// safe to compute with *stale* halos — the comms/compute overlap
  /// contract.  Empty when the range is thinner than 2*depth.
  Range3 interior(int depth) const noexcept {
    return Range3{Range{i.lo + depth, i.hi - depth}, k,
                  Range{j.lo + depth, j.hi - depth}};
  }

  /// Partition of `*this` minus `interior(depth)` into at most four
  /// disjoint pieces, in the fixed order {south, north, west, east}
  /// (j-strips first, then i-strips spanning only interior j rows).
  /// Pieces may be empty; their union with `interior(depth)` is exactly
  /// `*this`.  The cut and its order are a pure function of the range,
  /// which is what keeps overlap execution bitwise identical to sync.
  std::array<Range3, 4> shell(int depth) const noexcept {
    const int jlo_s = j.lo, jhi_s = j.lo + depth - 1 < j.hi
                                         ? j.lo + depth - 1
                                         : j.hi;
    int jlo_n = j.hi - depth + 1;
    if (jlo_n < j.lo + depth) jlo_n = j.lo + depth;  // never dip into south
    const Range j_mid{j.lo + depth, j.hi - depth};
    const int ihi_w = i.lo + depth - 1 < i.hi ? i.lo + depth - 1 : i.hi;
    int ilo_e = i.hi - depth + 1;
    if (ilo_e < i.lo + depth) ilo_e = i.lo + depth;  // never dip into west
    return {Range3{i, k, Range{jlo_s, jhi_s}},
            Range3{i, k, Range{jlo_n, j.hi}},
            Range3{Range{i.lo, ihi_w}, k, j_mid},
            Range3{Range{ilo_e, i.hi}, k, j_mid}};
  }
};

/// Per-dispatch knobs.  Host spaces use `grain`; DeviceSpace additionally
/// feeds the launch-geometry fields into the gpusim performance model
/// (occupancy, heap check, roofline) exactly like fsbm's hand-built
/// KernelDescs do.
struct LaunchParams {
  const char* name = "exec";
  int collapse = 3;          ///< collapse(2) vs collapse(3) bookkeeping
  std::int64_t grain = 0;    ///< iterations per tile; 0 = default
  int regs_per_thread = 64;
  std::uint64_t workspace_bytes_per_thread = 0;
  double flops_per_iter = 0.0;
  double bytes_per_iter = 0.0;
  bool double_precision = false;
};

/// Deterministic cut of [0, total) into fixed-grain tiles.  The layout is
/// a pure function of (total, grain): executors may run tiles in any
/// order or concurrently, but the tiles themselves never change.
class TilePlan {
 public:
  TilePlan(std::int64_t total, std::int64_t grain)
      : total_(total < 0 ? 0 : total), grain_(grain < 1 ? 1 : grain),
        ntiles_(total_ == 0 ? 0 : (total_ + grain_ - 1) / grain_) {}

  std::int64_t total() const noexcept { return total_; }
  std::int64_t grain() const noexcept { return grain_; }
  std::int64_t tiles() const noexcept { return ntiles_; }
  std::int64_t tile_begin(std::int64_t t) const noexcept {
    return t * grain_;
  }
  std::int64_t tile_end(std::int64_t t) const noexcept {
    const std::int64_t e = (t + 1) * grain_;
    return e > total_ ? total_ : e;
  }

 private:
  std::int64_t total_;
  std::int64_t grain_;
  std::int64_t ntiles_;
};

/// One tile of work: flat indices [begin, end) in ascending order.
using TileFn =
    std::function<void(std::int64_t tile, std::int64_t begin, std::int64_t end)>;

/// Deterministic predicate split of one tile plan across two shards.
/// Every tile of `plan` appears in exactly one of the two ascending tile
/// lists, so every cell of the range lands in exactly one shard; the
/// split is a pure function of (range, plan, predicate), never of either
/// shard's concurrency — which is what keeps a heterogeneous pass bitwise
/// identical to running the whole plan on one space.
struct SplitPlan {
  TilePlan plan{0, 1};
  std::vector<std::int64_t> device_tiles;  ///< predicate-true tiles, ascending
  std::vector<std::int64_t> host_tiles;    ///< remainder tiles, ascending
  std::int64_t device_cells = 0;  ///< total iterations in device tiles
  std::int64_t host_cells = 0;    ///< total iterations in host tiles

  /// Flat range index of the n-th device-shard iteration (lane n of a
  /// kernel launched over only the device shard).  Valid for
  /// n in [0, device_cells); relies on every device tile except possibly
  /// the list's last being full-grain (only the plan's final tile can be
  /// short, and ascending order puts it last).
  std::int64_t device_flat(std::int64_t lane) const noexcept {
    const std::int64_t g = plan.grain();
    const std::int64_t m = static_cast<std::int64_t>(device_tiles.size());
    std::int64_t q = lane / g;
    if (q > m - 1) q = m - 1;
    const std::int64_t t = device_tiles[static_cast<std::size_t>(q)];
    return plan.tile_begin(t) + (lane - q * g);
  }
};

/// Partition `plan`'s tiles into device-shard and host-shard lists from a
/// per-cell predicate: a tile joins the device shard iff ANY of its cells
/// satisfies the predicate (evaluation short-circuits in ascending cell
/// order).  The cut is deterministic — see SplitPlan.
SplitPlan split_plan(const Range3& r, const TilePlan& plan,
                     const std::function<bool(int, int, int)>& pred);

/// Abstract executor.  The single virtual primitive is tile execution;
/// parallel_for / parallel_reduce are derived conveniences, so every
/// space inherits the same tiling (and therefore the same numerics).
class ExecSpace {
 public:
  virtual ~ExecSpace() = default;

  virtual const char* name() const noexcept = 0;
  /// Worker count this space can occupy (1 for SerialSpace).
  virtual int concurrency() const noexcept = 0;

  /// Execute every tile of `plan`.  Tiles may run concurrently; one
  /// tile's iterations run in ascending order on a single thread.
  /// Exceptions thrown by `fn` are rethrown on the calling thread (first
  /// one wins; remaining tiles are skipped on a best-effort basis).
  virtual void run_tiles(const TilePlan& plan, const LaunchParams& p,
                         const TileFn& fn) = 0;

  /// Execute only the listed tiles of `plan` (ascending ids — one shard
  /// of a SplitPlan).  Same contract as run_tiles restricted to the
  /// list; the default implementation runs the list serially on the
  /// calling thread.  `fn` receives the ORIGINAL tile ids, so per-tile
  /// reduction partials keep their plan-wide slots and merge order.
  virtual void run_tile_list(const TilePlan& plan,
                             const std::vector<std::int64_t>& tiles,
                             const LaunchParams& p, const TileFn& fn);

  /// Run `body(i, k, j)` over the range (paper loop order: i fastest).
  /// Templated on the body so per-cell calls inline; only the per-tile
  /// dispatch is type-erased.
  template <class Body>
  void parallel_for(const Range3& r, const LaunchParams& p, Body&& body) {
    if (r.empty()) return;
    run_tiles(plan_for(r, p), p,
              [&](std::int64_t, std::int64_t b, std::int64_t e) {
                for (std::int64_t f = b; f < e; ++f) {
                  const Range3::Cell c = r.cell(f);
                  body(c.i, c.k, c.j);
                }
              });
  }

  /// Run `body(n)` for n in [0, count) — the 1-D (pack/unpack) shape.
  template <class Body>
  void parallel_for_flat(std::int64_t count, const LaunchParams& p,
                         Body&& body) {
    if (count <= 0) return;
    run_tiles(plan_flat(count, p), p,
              [&](std::int64_t, std::int64_t b, std::int64_t e) {
                for (std::int64_t f = b; f < e; ++f) body(f);
              });
  }

  /// Reduction with per-tile partials.  `R` must be default-constructible
  /// and provide `merge(const R&)`.  Partials are merged in tile order on
  /// the calling thread, so the result is bitwise-deterministic and
  /// identical across executors (no mutex, no atomics, no
  /// association-order dependence on thread count).
  template <class R, class Body>
  R parallel_reduce(const Range3& r, const LaunchParams& p, Body&& body) {
    R out{};
    if (r.empty()) return out;
    const TilePlan plan = plan_for(r, p);
    std::vector<R> parts(static_cast<std::size_t>(plan.tiles()));
    run_tiles(plan, p, [&](std::int64_t t, std::int64_t b, std::int64_t e) {
      R& local = parts[static_cast<std::size_t>(t)];
      for (std::int64_t f = b; f < e; ++f) {
        const Range3::Cell c = r.cell(f);
        body(local, c.i, c.k, c.j);
      }
    });
    for (const R& part : parts) out.merge(part);
    return out;
  }

  /// Tiling for a 3-D range: default grain is one (i,k) plane.
  static TilePlan plan_for(const Range3& r, const LaunchParams& p) {
    const std::int64_t grain =
        p.grain > 0 ? p.grain : std::max<std::int64_t>(1, r.plane());
    return TilePlan(r.size(), grain);
  }

  /// Tiling for a flat range: default grain targets ~64 tiles
  /// (independent of concurrency, so the cut is deterministic).
  static TilePlan plan_flat(std::int64_t count, const LaunchParams& p) {
    const std::int64_t grain =
        p.grain > 0 ? p.grain : std::max<std::int64_t>(1, (count + 63) / 64);
    return TilePlan(count, grain);
  }
};

/// Serial execution on the calling thread — Listing 1 as found.
class SerialSpace final : public ExecSpace {
 public:
  const char* name() const noexcept override { return "serial"; }
  int concurrency() const noexcept override { return 1; }
  void run_tiles(const TilePlan& plan, const LaunchParams& p,
                 const TileFn& fn) override;
};

/// Host-parallel execution over a par::ThreadPool — WRF's OpenMP tile
/// layer.  Tiles are dispatched with dynamic (chunk=1) scheduling so the
/// cloud-cover load imbalance cannot serialize a whole plan.
class ThreadedSpace final : public ExecSpace {
 public:
  /// `nthreads` > 0 builds a private pool of that size; <= 0 shares the
  /// process-wide pool (hardware-sized).
  explicit ThreadedSpace(int nthreads = 0);
  ~ThreadedSpace() override;

  const char* name() const noexcept override { return "threads"; }
  int concurrency() const noexcept override;
  void run_tiles(const TilePlan& plan, const LaunchParams& p,
                 const TileFn& fn) override;
  void run_tile_list(const TilePlan& plan,
                     const std::vector<std::int64_t>& tiles,
                     const LaunchParams& p, const TileFn& fn) override;

 private:
  par::ThreadPool* pool_;                    ///< pool in use
  std::unique_ptr<par::ThreadPool> owned_;   ///< set when nthreads > 0
};

/// Simulated-device execution: functional execution of the tiles on the
/// host pool (bit-for-bit, tile-deterministic like every other space)
/// plus a gpusim kernel launch per dispatch for the performance model,
/// and a device data environment (mem::DataRegion) giving launches named
/// persistent buffers with dirty tracking instead of raw byte-counter
/// transfers.
class DeviceSpace final : public ExecSpace {
 public:
  /// `device` must outlive the space.  `pool` defaults to the shared
  /// pool (the same one gpusim itself uses for functional execution).
  explicit DeviceSpace(gpu::Device& device, par::ThreadPool* pool = nullptr);
  ~DeviceSpace() override;

  const char* name() const noexcept override { return "device"; }
  int concurrency() const noexcept override;
  void run_tiles(const TilePlan& plan, const LaunchParams& p,
                 const TileFn& fn) override;
  /// Shard dispatch: functional execution of the listed tiles on the
  /// pool plus ONE modeled kernel launch covering exactly the listed
  /// tiles' iterations (a shard's kernel is smaller than the full
  /// plan's, which is the point of the split).
  void run_tile_list(const TilePlan& plan,
                     const std::vector<std::int64_t>& tiles,
                     const LaunchParams& p, const TileFn& fn) override;

  gpu::Device& device() noexcept { return *device_; }

  /// Pass-through for fully hand-described kernels (fsbm's coal/cond
  /// launches with traces); recorded like any other dispatch.
  gpu::KernelStats launch(const gpu::KernelDesc& desc);

  /// The space's device data environment: a field table of named device
  /// buffers with `target data` map/update verbs and per-field dirty
  /// ranges (see mem/residency.hpp).  Created on first use and owned by
  /// the space; field registration and residency policy (`res=step` vs
  /// `res=persist`) belong to the caller.
  mem::DataRegion& region();

  /// Modeled kernel milliseconds dispatched through this space.
  double kernel_ms() const noexcept { return kernel_ms_; }
  std::uint64_t dispatches() const noexcept { return dispatches_; }

 private:
  gpu::Device* device_;
  par::ThreadPool* pool_;
  std::unique_ptr<mem::DataRegion> region_;
  double kernel_ms_ = 0.0;
  std::uint64_t dispatches_ = 0;
};

/// Heterogeneous execution: a DeviceSpace and a ThreadedSpace working one
/// logical pass together.  Generic dispatches (run_tiles /
/// parallel_for / parallel_reduce) go to the HOST shard — so a pass with
/// no predicate behaves exactly like exec=threads — while predicate-split
/// passes route a SplitPlan's device tiles through the device shard
/// (functional execution + one modeled kernel launch + shard-granular
/// transfer accounting through the shard's DataRegion) and the remainder
/// tiles through the host shard, concurrently.  Determinism: both shards
/// inherit the tile contract, the split is a pure function of the
/// predicate, and split-pass reductions merge device partials then host
/// partials in tile order — so results are bitwise identical to running
/// the same plan on any single space.
class HeteroSpace final : public ExecSpace {
 public:
  /// `device` must outlive the space.  `nthreads` sizes the host shard
  /// (ThreadedSpace semantics: <= 0 shares the process-wide pool).
  explicit HeteroSpace(gpu::Device& device, int nthreads = 0);
  ~HeteroSpace() override;

  const char* name() const noexcept override { return "hetero"; }
  /// Host-shard workers (the device shard's functional pool rides along).
  int concurrency() const noexcept override;
  void run_tiles(const TilePlan& plan, const LaunchParams& p,
                 const TileFn& fn) override;
  void run_tile_list(const TilePlan& plan,
                     const std::vector<std::int64_t>& tiles,
                     const LaunchParams& p, const TileFn& fn) override;

  DeviceSpace& device_shard() noexcept { return device_; }
  ThreadedSpace& host_shard() noexcept { return host_; }

  /// Run one predicate-split pass: the device tiles through the device
  /// shard and the host tiles through the host shard, CONCURRENTLY (the
  /// host remainder overlaps the modeled kernel).  Blocks until both
  /// shards finish; the first exception from either shard is rethrown on
  /// the calling thread.  Callers needing a hand-built gpu::KernelDesc
  /// for the device side (fsbm's coal pass) drive the shards directly
  /// instead.
  void run_split(const SplitPlan& sp, const LaunchParams& p,
                 const TileFn& device_fn, const TileFn& host_fn);

 private:
  DeviceSpace device_;
  ThreadedSpace host_;
};

/// The `exec=` knob: how host loop nests are dispatched.
enum class ExecKind : int {
  kSerial = 0,
  kThreads = 1,
  kDevice = 2,
  kHetero = 3,  ///< predicate-split passes across device + host shards
};

struct ExecConfig {
  ExecKind kind = ExecKind::kSerial;
  int nthreads = 0;  ///< threads/hetero modes: 0 = hardware concurrency

  /// Parse "serial" | "threads" | "threads:N" | "device" |
  /// "hetero" | "hetero:N" (N = host-shard threads).
  /// Throws ConfigError on anything else.
  static ExecConfig parse(const std::string& s);

  /// Render back to the knob syntax ("threads:8", "hetero:4", ...).
  std::string describe() const;
};

/// Build the space a config asks for.  `device` is required for
/// ExecKind::kDevice and ExecKind::kHetero, ignored otherwise.
std::unique_ptr<ExecSpace> make_space(const ExecConfig& cfg,
                                      gpu::Device* device = nullptr);

/// Process-wide SerialSpace, for call sites that take an optional
/// ExecSpace* and fall back to serial dispatch.
ExecSpace& serial();

/// Scan argv for an `exec=<mode>` argument (any position) and parse it;
/// returns the default (serial) config when absent.  Shared by the
/// examples and benches so every binary sweeps host parallelism the same
/// way it sweeps FSBM versions.
ExecConfig exec_from_args(int argc, char** argv);

}  // namespace wrf::exec
