#include "dyn/rk3.hpp"

namespace wrf::dyn {

Rk3::Rk3(const grid::Patch& patch, int nkr, AdvConfig cfg, double dt,
         exec::ExecSpace* exec)
    : patch_(patch),
      cfg_(cfg),
      dt_(dt),
      exec_(exec),
      qv0_(patch.im, patch.k, patch.jm),
      qv_tend_(patch.im, patch.k, patch.jm) {
  for (auto& f : ff0_) f = Field4D<float>(nkr, patch.im, patch.k, patch.jm);
  for (auto& f : ff_tend_) {
    f = Field4D<float>(nkr, patch.im, patch.k, patch.jm);
  }
}

Rk3Stats Rk3::step(fsbm::MicroState& state, const AnalyticWinds& winds,
                   const std::function<void(fsbm::MicroState&)>& halo_fill,
                   prof::Profiler& prof) {
  Rk3Stats st;
  // Stage-0 snapshot (copy the whole memory extent: halos included so
  // updates into q can be re-based on q0 without re-exchange).
  qv0_ = state.qv;
  for (int s = 0; s < fsbm::kNumSpecies; ++s) {
    ff0_[static_cast<std::size_t>(s)] = state.ff[static_cast<std::size_t>(s)];
  }

  const double stage_dt[3] = {dt_ / 3.0, dt_ / 2.0, dt_};
  for (int stage = 0; stage < 3; ++stage) {
    halo_fill(state);
    exec::ExecSpace& ex = exec_space();
    {
      prof::ScopedRange r(prof, "rk_scalar_tend");
      const AdvStats a =
          rk_scalar_tend(ex, patch_, state.qv, winds, cfg_, qv_tend_);
      st.tend.cells += a.cells;
      st.tend.flops += a.flops;
      for (int s = 0; s < fsbm::kNumSpecies; ++s) {
        const AdvStats b = rk_scalar_tend_bins(
            ex, patch_, state.ff[static_cast<std::size_t>(s)], winds, cfg_,
            ff_tend_[static_cast<std::size_t>(s)]);
        st.tend.cells += b.cells;
        st.tend.flops += b.flops;
      }
    }
    {
      prof::ScopedRange r(prof, "rk_update_scalar");
      const AdvStats a = rk_update_scalar(ex, patch_, qv0_, qv_tend_,
                                          stage_dt[stage], state.qv);
      st.update.cells += a.cells;
      st.update.flops += a.flops;
      for (int s = 0; s < fsbm::kNumSpecies; ++s) {
        const AdvStats b = rk_update_scalar_bins(
            ex, patch_, ff0_[static_cast<std::size_t>(s)],
            ff_tend_[static_cast<std::size_t>(s)], stage_dt[stage],
            state.ff[static_cast<std::size_t>(s)]);
        st.update.cells += b.cells;
        st.update.flops += b.flops;
      }
    }
  }
  return st;
}

}  // namespace wrf::dyn
