#include "dyn/rk3.hpp"

namespace wrf::dyn {

HaloMode parse_halo_mode(const std::string& s) {
  if (s == "sync") return HaloMode::kSync;
  if (s == "overlap") return HaloMode::kOverlap;
  throw ConfigError("HaloMode: unknown halo mode '" + s +
                    "' (want sync | overlap)");
}

const char* halo_mode_name(HaloMode m) noexcept {
  return m == HaloMode::kOverlap ? "overlap" : "sync";
}

HaloMode halo_mode_from_args(int argc, char** argv) {
  const std::string prefix = "halo=";
  for (int a = 1; a < argc; ++a) {
    const std::string s = argv[a];
    if (s.rfind(prefix, 0) == 0) {
      return parse_halo_mode(s.substr(prefix.size()));
    }
  }
  return HaloMode::kSync;
}

Rk3::Rk3(const grid::Patch& patch, int nkr, AdvConfig cfg, double dt,
         exec::ExecSpace* exec, HaloMode halo_mode)
    : patch_(patch),
      cfg_(cfg),
      dt_(dt),
      exec_(exec),
      halo_mode_(halo_mode),
      qv0_(patch.im, patch.k, patch.jm),
      qv_tend_(patch.im, patch.k, patch.jm) {
  for (auto& f : ff0_) f = Field4D<float>(nkr, patch.im, patch.k, patch.jm);
  for (auto& f : ff_tend_) {
    f = Field4D<float>(nkr, patch.im, patch.k, patch.jm);
  }
}

void Rk3::tend_range(const exec::Range3& r, fsbm::MicroState& state,
                     const AnalyticWinds& winds, Rk3Stats& st) {
  if (r.empty()) return;
  exec::ExecSpace& ex = exec_space();
  const AdvStats a =
      rk_scalar_tend(ex, patch_, r, state.qv, winds, cfg_, qv_tend_);
  st.tend.cells += a.cells;
  st.tend.flops += a.flops;
  for (int s = 0; s < fsbm::kNumSpecies; ++s) {
    const AdvStats b = rk_scalar_tend_bins(
        ex, patch_, r, state.ff[static_cast<std::size_t>(s)], winds, cfg_,
        ff_tend_[static_cast<std::size_t>(s)]);
    st.tend.cells += b.cells;
    st.tend.flops += b.flops;
  }
}

Rk3Stats Rk3::step(fsbm::MicroState& state, const AnalyticWinds& winds,
                   HaloPhases& halo, prof::Profiler& prof) {
  Rk3Stats st;
  // Stage-0 snapshot (copy the whole memory extent: halos included so
  // updates into q can be re-based on q0 without re-exchange).
  qv0_ = state.qv;
  for (int s = 0; s < fsbm::kNumSpecies; ++s) {
    ff0_[static_cast<std::size_t>(s)] = state.ff[static_cast<std::size_t>(s)];
  }

  const exec::Range3 comp{patch_.ip, patch_.k, patch_.jp};
  const double stage_dt[3] = {dt_ / 3.0, dt_ / 2.0, dt_};
  for (int stage = 0; stage < 3; ++stage) {
    // The "halo_exchange" range brackets both phases in both modes (as
    // a nested child under overlap, so rk_scalar_tend's exclusive time
    // stays compute-only and comparable across modes).
    {
      prof::ScopedRange h(prof, "halo_exchange");
      halo.begin(state);
      if (halo_mode_ == HaloMode::kSync) halo.finish(state);
    }
    {
      prof::ScopedRange r(prof, "rk_scalar_tend");
      if (halo_mode_ == HaloMode::kOverlap) {
        // Interior tiles never read halo cells (shell depth = stencil
        // width), so they run while the exchange is in flight; the
        // shell waits for finish.  finish() only writes halo cells, so
        // every cell's tendency sees exactly the q values the sync
        // order would have shown it — bitwise-identical results.
        tend_range(comp.interior(kStencilWidth), state, winds, st);
        {
          prof::ScopedRange h(prof, "halo_exchange");
          halo.finish(state);
        }
        for (const auto& piece : comp.shell(kStencilWidth)) {
          tend_range(piece, state, winds, st);
        }
      } else {
        tend_range(comp, state, winds, st);
      }
    }
    {
      prof::ScopedRange r(prof, "rk_update_scalar");
      exec::ExecSpace& ex = exec_space();
      const AdvStats a = rk_update_scalar(ex, patch_, qv0_, qv_tend_,
                                          stage_dt[stage], state.qv);
      st.update.cells += a.cells;
      st.update.flops += a.flops;
      for (int s = 0; s < fsbm::kNumSpecies; ++s) {
        const AdvStats b = rk_update_scalar_bins(
            ex, patch_, ff0_[static_cast<std::size_t>(s)],
            ff_tend_[static_cast<std::size_t>(s)], stage_dt[stage],
            state.ff[static_cast<std::size_t>(s)]);
        st.update.cells += b.cells;
        st.update.flops += b.flops;
      }
    }
  }
  return st;
}

}  // namespace wrf::dyn
