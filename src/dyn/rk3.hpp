#pragma once
// WRF's 3-stage Runge-Kutta scalar transport driver.
//
// Each model step advects vapor and all nkr x species bin distributions
// with the ARW staging: q1 = q0 + dt/3 L(q0); q2 = q0 + dt/2 L(q1);
// q(t+dt) = q0 + dt L(q2).  Halos must be refreshed before every stage's
// tendency evaluation; the caller supplies that as a callback (halo
// exchange between ranks, zero-gradient fill at domain edges).

#include <array>
#include <functional>

#include "dyn/advection.hpp"
#include "fsbm/state.hpp"
#include "prof/prof.hpp"

namespace wrf::dyn {

struct Rk3Stats {
  AdvStats tend;    ///< accumulated rk_scalar_tend work
  AdvStats update;  ///< accumulated rk_update_scalar work
};

/// Per-patch RK3 transport.  Owns the stage-0 copies and tendency
/// buffers (sized once; a rank reuses them every step).
class Rk3 {
 public:
  /// `exec` selects how tendency/update nests are dispatched; nullptr
  /// means exec::serial().
  Rk3(const grid::Patch& patch, int nkr, AdvConfig cfg, double dt,
      exec::ExecSpace* exec = nullptr);

  /// Advance qv and all bin fields one step.  `halo_fill(state)` must
  /// leave all advected fields with valid halos; it is invoked before
  /// each of the three stages.
  Rk3Stats step(fsbm::MicroState& state, const AnalyticWinds& winds,
                const std::function<void(fsbm::MicroState&)>& halo_fill,
                prof::Profiler& prof);

 private:
  exec::ExecSpace& exec_space() const noexcept {
    return exec_ != nullptr ? *exec_ : exec::serial();
  }

  grid::Patch patch_;
  AdvConfig cfg_;
  double dt_;
  exec::ExecSpace* exec_ = nullptr;
  Field3D<float> qv0_, qv_tend_;
  std::array<Field4D<float>, fsbm::kNumSpecies> ff0_, ff_tend_;
};

}  // namespace wrf::dyn
