#pragma once
// WRF's 3-stage Runge-Kutta scalar transport driver.
//
// Each model step advects vapor and all nkr x species bin distributions
// with the ARW staging: q1 = q0 + dt/3 L(q0); q2 = q0 + dt/2 L(q1);
// q(t+dt) = q0 + dt L(q2).  Halos must be refreshed before every stage's
// tendency evaluation; the caller supplies that as a *phased* interface
// (`HaloPhases`): `begin` posts the communication, `finish` completes
// it.  Under HaloMode::kSync the driver calls begin+finish back to back
// and then evaluates the full tendency range (the classic blocking
// exchange).  Under HaloMode::kOverlap it evaluates interior tiles —
// safe with stale halos because the widest stencil reads kStencilWidth
// cells — between the two phases, then the shell tiles after finish:
// WRF's comms/compute overlap.  Tile geometry and order are a pure
// function of the range (Range3::interior / Range3::shell), and cells
// write only their own tendency, so both modes are bitwise identical.

#include <array>
#include <functional>
#include <string>
#include <utility>

#include "dyn/advection.hpp"
#include "fsbm/state.hpp"
#include "prof/prof.hpp"

namespace wrf::dyn {

/// The `halo=` knob: blocking exchange vs comms/compute overlap.
enum class HaloMode : int { kSync = 0, kOverlap = 1 };

/// Parse "sync" | "overlap"; throws ConfigError on anything else.
HaloMode parse_halo_mode(const std::string& s);
const char* halo_mode_name(HaloMode m) noexcept;

/// Scan argv for a `halo=<mode>` argument (any position); returns kSync
/// when absent.  Shared by the examples and benches, like
/// exec::exec_from_args.
HaloMode halo_mode_from_args(int argc, char** argv);

/// Phased halo refresh.  `begin(state)` must post all communication for
/// one exchange round (and may complete local work); after
/// `finish(state)` every advected field must have valid halos.  Between
/// the two, callers may only touch cells at least kStencilWidth inside
/// the computational range.
class HaloPhases {
 public:
  virtual ~HaloPhases() = default;
  virtual void begin(fsbm::MicroState& s) = 0;
  virtual void finish(fsbm::MicroState& s) = 0;
};

/// Adapts a plain "fill everything" callback to the phased interface by
/// running it entirely in finish() — the legacy blocking shape, used by
/// single-patch tests where the refresh is just a boundary fill.
class HaloFillFn final : public HaloPhases {
 public:
  explicit HaloFillFn(std::function<void(fsbm::MicroState&)> fn)
      : fn_(std::move(fn)) {}
  void begin(fsbm::MicroState&) override {}
  void finish(fsbm::MicroState& s) override { fn_(s); }

 private:
  std::function<void(fsbm::MicroState&)> fn_;
};

struct Rk3Stats {
  AdvStats tend;    ///< accumulated rk_scalar_tend work
  AdvStats update;  ///< accumulated rk_update_scalar work
};

/// Per-patch RK3 transport.  Owns the stage-0 copies and tendency
/// buffers (sized once; a rank reuses them every step).
class Rk3 {
 public:
  /// `exec` selects how tendency/update nests are dispatched; nullptr
  /// means exec::serial().  `halo_mode` picks blocking vs overlapped
  /// stage exchanges (bitwise-identical results either way).
  Rk3(const grid::Patch& patch, int nkr, AdvConfig cfg, double dt,
      exec::ExecSpace* exec = nullptr, HaloMode halo_mode = HaloMode::kSync);

  /// Advance qv and all bin fields one step.  `halo.begin/finish` are
  /// invoked once per stage, bracketing the interior tendencies under
  /// kOverlap.
  Rk3Stats step(fsbm::MicroState& state, const AnalyticWinds& winds,
                HaloPhases& halo, prof::Profiler& prof);

  HaloMode halo_mode() const noexcept { return halo_mode_; }

 private:
  exec::ExecSpace& exec_space() const noexcept {
    return exec_ != nullptr ? *exec_ : exec::serial();
  }

  /// Tendencies of qv and every bin field over one sub-range.
  void tend_range(const exec::Range3& r, fsbm::MicroState& state,
                  const AnalyticWinds& winds, Rk3Stats& st);

  grid::Patch patch_;
  AdvConfig cfg_;
  double dt_;
  exec::ExecSpace* exec_ = nullptr;
  HaloMode halo_mode_ = HaloMode::kSync;
  Field3D<float> qv0_, qv_tend_;
  std::array<Field4D<float>, fsbm::kNumSpecies> ff0_, ff_tend_;
};

}  // namespace wrf::dyn
