#pragma once
// Scalar advection: WRF's rk_scalar_tend / rk_update_scalar pair.
//
// Flux-form advection with WRF's default stencils — 5th-order upwind in
// the two horizontal dimensions, 3rd-order upwind in the vertical — and
// the 3-stage Runge-Kutta driver of the ARW solver.  These are the #2
// and #3 hotspots of the paper's Table I; in WRF every FSBM bin is an
// advected scalar, which is why rk_scalar_tend is expensive.  The
// stencils need a 3-cell halo, which fixes the patch halo width.
//
// The routines operate on one patch with halos already filled (by
// src/model's exchange for interior edges and by zero-gradient boundary
// fill at domain edges).  The vertical stencil degrades to 1st order at
// the top/bottom boundaries and vertical flux through them is zero.

#include <cstdint>

#include "exec/exec.hpp"
#include "fsbm/state.hpp"
#include "grid/decomp.hpp"
#include "util/field.hpp"

namespace wrf::dyn {

/// Analytic, divergence-shaped wind field driving the test cases: a
/// uniform zonal flow plus a stationary mesoscale updraft core (a proxy
/// for the squall-line circulation of the CONUS-12km thunderstorm case).
struct AnalyticWinds {
  double u0 = 12.0;     ///< background zonal wind, m/s
  double v0 = 3.0;      ///< background meridional wind, m/s
  double w_max = 8.0;   ///< updraft core strength, m/s
  double xc = 0.5;      ///< updraft center, fraction of domain x
  double yc = 0.5;      ///< updraft center, fraction of domain y
  double radius = 0.18; ///< updraft core radius, fraction of domain x
  grid::Domain domain;
  double dx = 12000.0;
  double dz = 400.0;

  double u(int /*i*/, int /*k*/, int /*j*/) const { return u0; }
  double v(int /*i*/, int /*k*/, int /*j*/) const { return v0; }
  double w(int i, int k, int j) const;
};

struct AdvConfig {
  double dx = 12000.0;
  double dy = 12000.0;
  double dz = 400.0;
};

/// Horizontal half-width of the widest advection stencil (5th-order
/// upwind reads i±3 / j±3).  This fixes both the patch halo width and
/// the shell depth of the comms/compute-overlap split: cells at least
/// this far inside the computational range never read a halo cell.
constexpr int kStencilWidth = 3;

/// Work counters for the perf model.
struct AdvStats {
  std::uint64_t cells = 0;
  double flops = 0.0;

  /// Partial-merge hook for ExecSpace::parallel_reduce.
  void merge(const AdvStats& o) {
    cells += o.cells;
    flops += o.flops;
  }
};

/// Advective tendency of one 3-D scalar over a sub-range `r` of the
/// patch computational range: tend = -div(V q), 5th-order horizontal /
/// 3rd-order vertical upwind fluxes.  `q` must have valid halos within
/// `kStencilWidth` of `r` (interior sub-ranges tolerate stale halos).
/// Cells write only their own tendency, so the nest dispatches through
/// any execution space.
AdvStats rk_scalar_tend(exec::ExecSpace& ex, const grid::Patch& patch,
                        const exec::Range3& r, const Field3D<float>& q,
                        const AnalyticWinds& winds, const AdvConfig& cfg,
                        Field3D<float>& tend);

/// Full computational range.
inline AdvStats rk_scalar_tend(exec::ExecSpace& ex, const grid::Patch& patch,
                               const Field3D<float>& q,
                               const AnalyticWinds& winds,
                               const AdvConfig& cfg, Field3D<float>& tend) {
  return rk_scalar_tend(ex, patch, exec::Range3{patch.ip, patch.k, patch.jp},
                        q, winds, cfg, tend);
}
inline AdvStats rk_scalar_tend(const grid::Patch& patch,
                               const Field3D<float>& q,
                               const AnalyticWinds& winds,
                               const AdvConfig& cfg, Field3D<float>& tend) {
  return rk_scalar_tend(exec::serial(), patch, q, winds, cfg, tend);
}

/// Same tendency for every bin of a 4-D distribution (bin-fastest);
/// the inner bin loop amortizes stencil index math as WRF's chem loop
/// does.  Sub-range variant first, full-range wrappers below.
AdvStats rk_scalar_tend_bins(exec::ExecSpace& ex, const grid::Patch& patch,
                             const exec::Range3& r, const Field4D<float>& q,
                             const AnalyticWinds& winds, const AdvConfig& cfg,
                             Field4D<float>& tend);
inline AdvStats rk_scalar_tend_bins(exec::ExecSpace& ex,
                                    const grid::Patch& patch,
                                    const Field4D<float>& q,
                                    const AnalyticWinds& winds,
                                    const AdvConfig& cfg,
                                    Field4D<float>& tend) {
  return rk_scalar_tend_bins(ex, patch,
                             exec::Range3{patch.ip, patch.k, patch.jp}, q,
                             winds, cfg, tend);
}
inline AdvStats rk_scalar_tend_bins(const grid::Patch& patch,
                                    const Field4D<float>& q,
                                    const AnalyticWinds& winds,
                                    const AdvConfig& cfg,
                                    Field4D<float>& tend) {
  return rk_scalar_tend_bins(exec::serial(), patch, q, winds, cfg, tend);
}

/// RK stage update: q = max(0, q0 + dt_stage * tend) over the
/// computational range (positive-definite clip, as WRF's PD limiter
/// guarantees for moisture scalars).
AdvStats rk_update_scalar(exec::ExecSpace& ex, const grid::Patch& patch,
                          const Field3D<float>& q0, const Field3D<float>& tend,
                          double dt_stage, Field3D<float>& q);
inline AdvStats rk_update_scalar(const grid::Patch& patch,
                                 const Field3D<float>& q0,
                                 const Field3D<float>& tend, double dt_stage,
                                 Field3D<float>& q) {
  return rk_update_scalar(exec::serial(), patch, q0, tend, dt_stage, q);
}

/// 4-D variant of the stage update.
AdvStats rk_update_scalar_bins(exec::ExecSpace& ex, const grid::Patch& patch,
                               const Field4D<float>& q0,
                               const Field4D<float>& tend, double dt_stage,
                               Field4D<float>& q);
inline AdvStats rk_update_scalar_bins(const grid::Patch& patch,
                                      const Field4D<float>& q0,
                                      const Field4D<float>& tend,
                                      double dt_stage, Field4D<float>& q) {
  return rk_update_scalar_bins(exec::serial(), patch, q0, tend, dt_stage, q);
}

/// Zero-gradient fill of halo cells on sides where the patch touches the
/// global domain boundary (interior sides come from halo exchange).
void fill_domain_boundaries(const grid::Patch& patch, Field3D<float>& q);
void fill_domain_boundaries_bins(const grid::Patch& patch, Field4D<float>& q);

}  // namespace wrf::dyn
