#include "dyn/advection.hpp"

#include <algorithm>
#include <cmath>

#include "util/constants.hpp"

namespace wrf::dyn {

double AnalyticWinds::w(int i, int k, int j) const {
  // Gaussian updraft core with a half-sine vertical profile: zero at the
  // surface and model top, max mid-troposphere.
  const double nx = domain.i.size();
  const double ny = domain.j.size();
  const double nz = domain.k.size();
  const double x = (i - domain.i.lo + 0.5) / nx;
  const double y = (j - domain.j.lo + 0.5) / ny;
  const double z = (k - domain.k.lo + 0.5) / nz;
  const double r2 = ((x - xc) * (x - xc) + (y - yc) * (y - yc)) /
                    (radius * radius);
  if (r2 > 9.0) return 0.0;
  return w_max * std::exp(-r2) * std::sin(constants::kPi * z);
}

namespace {

/// WRF 5th-order upwind interface flux given the 6-point stencil
/// q[-2..3] around the interface and the advecting velocity.
inline double flux5(double vel, const double q[6]) {
  const double f_c = (37.0 * (q[2] + q[3]) - 8.0 * (q[1] + q[4]) +
                      (q[0] + q[5])) /
                     60.0;
  const double f_u = ((q[5] - q[0]) - 5.0 * (q[4] - q[1]) +
                      10.0 * (q[3] - q[2])) /
                     60.0;
  return vel * f_c - std::abs(vel) * f_u;
}

/// WRF 3rd-order upwind interface flux from the 4-point stencil
/// q[-1..2].
inline double flux3(double vel, const double q[4]) {
  const double f_c = (7.0 * (q[1] + q[2]) - (q[0] + q[3])) / 12.0;
  const double f_u = ((q[3] - q[0]) - 3.0 * (q[2] - q[1])) / 12.0;
  return vel * f_c - std::abs(vel) * f_u;
}

constexpr double kFlopsPerCell = 66.0;  // 2x flux5 + flux3 + divergence

}  // namespace

AdvStats rk_scalar_tend(exec::ExecSpace& ex, const grid::Patch& patch,
                        const exec::Range3& r, const Field3D<float>& q,
                        const AnalyticWinds& winds, const AdvConfig& cfg,
                        Field3D<float>& tend) {
  const int klo = patch.k.lo;
  const int khi = patch.k.hi;
  exec::LaunchParams lp;
  lp.name = "rk_scalar_tend";
  lp.collapse = 3;
  lp.flops_per_iter = kFlopsPerCell;
  AdvStats st = ex.parallel_reduce<AdvStats>(
      r, lp,
      [&](AdvStats& pt, int i, int k, int j) {
        // --- x fluxes at i-1/2 and i+1/2 ---
        double s[6];
        for (int m = 0; m < 6; ++m) s[m] = q(i - 3 + m, k, j);
        const double fxm = flux5(winds.u(i, k, j), s);
        for (int m = 0; m < 6; ++m) s[m] = q(i - 2 + m, k, j);
        const double fxp = flux5(winds.u(i, k, j), s);
        // --- y fluxes ---
        for (int m = 0; m < 6; ++m) s[m] = q(i, k, j - 3 + m);
        const double fym = flux5(winds.v(i, k, j), s);
        for (int m = 0; m < 6; ++m) s[m] = q(i, k, j - 2 + m);
        const double fyp = flux5(winds.v(i, k, j), s);
        // --- z fluxes (3rd order, zero through domain top/bottom) ---
        double fzm = 0.0, fzp = 0.0;
        if (k > klo + 1 && k < khi - 1) {
          double t4[4];
          for (int m = 0; m < 4; ++m) t4[m] = q(i, k - 2 + m, j);
          fzm = flux3(winds.w(i, k, j), t4);
          for (int m = 0; m < 4; ++m) t4[m] = q(i, k - 1 + m, j);
          fzp = flux3(winds.w(i, k + 1, j), t4);
        } else if (k > klo && k < khi) {
          // 1st-order upwind near the vertical boundaries.
          const double wm = winds.w(i, k, j);
          fzm = wm > 0 ? wm * q(i, k - 1, j) : wm * q(i, k, j);
          const double wp = winds.w(i, k + 1, j);
          fzp = wp > 0 ? wp * q(i, k, j) : wp * q(i, k + 1, j);
        }
        tend(i, k, j) = static_cast<float>(-(fxp - fxm) / cfg.dx -
                                           (fyp - fym) / cfg.dy -
                                           (fzp - fzm) / cfg.dz);
        ++pt.cells;
      });
  st.flops = static_cast<double>(st.cells) * kFlopsPerCell;
  return st;
}

AdvStats rk_scalar_tend_bins(exec::ExecSpace& ex, const grid::Patch& patch,
                             const exec::Range3& r, const Field4D<float>& q,
                             const AnalyticWinds& winds, const AdvConfig& cfg,
                             Field4D<float>& tend) {
  const int n = q.n();
  const int klo = patch.k.lo;
  const int khi = patch.k.hi;
  exec::LaunchParams lp;
  lp.name = "rk_scalar_tend_bins";
  lp.collapse = 3;
  lp.flops_per_iter = kFlopsPerCell;
  AdvStats st = ex.parallel_reduce<AdvStats>(
      r, lp,
      [&](AdvStats& pt, int i, int k, int j) {
        const double uu = winds.u(i, k, j);
        const double vv = winds.v(i, k, j);
        const double wm = winds.w(i, k, j);
        const double wp = winds.w(i, k + 1, j);
        const bool z_full = (k > klo + 1 && k < khi - 1);
        const bool z_edge = (k > klo && k < khi);
        // Slices for the stencil neighborhoods (bin-fastest layout).
        const float* xs[6];
        const float* xs1[6];
        const float* ys[6];
        const float* ys1[6];
        for (int m = 0; m < 6; ++m) {
          xs[m] = q.slice(i - 3 + m, k, j);
          xs1[m] = q.slice(i - 2 + m, k, j);
          ys[m] = q.slice(i, k, j - 3 + m);
          ys1[m] = q.slice(i, k, j - 2 + m);
        }
        const float* zs[4] = {nullptr, nullptr, nullptr, nullptr};
        const float* zs1[4] = {nullptr, nullptr, nullptr, nullptr};
        if (z_full) {
          for (int m = 0; m < 4; ++m) {
            zs[m] = q.slice(i, k - 2 + m, j);
            zs1[m] = q.slice(i, k - 1 + m, j);
          }
        }
        float* out = tend.slice(i, k, j);
        for (int b = 0; b < n; ++b) {
          double s[6];
          for (int m = 0; m < 6; ++m) s[m] = xs[m][b];
          const double fxm = flux5(uu, s);
          for (int m = 0; m < 6; ++m) s[m] = xs1[m][b];
          const double fxp = flux5(uu, s);
          for (int m = 0; m < 6; ++m) s[m] = ys[m][b];
          const double fym = flux5(vv, s);
          for (int m = 0; m < 6; ++m) s[m] = ys1[m][b];
          const double fyp = flux5(vv, s);
          double fzm = 0.0, fzp = 0.0;
          if (z_full) {
            double t4[4];
            for (int m = 0; m < 4; ++m) t4[m] = zs[m][b];
            fzm = flux3(wm, t4);
            for (int m = 0; m < 4; ++m) t4[m] = zs1[m][b];
            fzp = flux3(wp, t4);
          } else if (z_edge) {
            fzm = wm > 0 ? wm * q(b, i, k - 1, j) : wm * q(b, i, k, j);
            fzp = wp > 0 ? wp * q(b, i, k, j) : wp * q(b, i, k + 1, j);
          }
          out[b] = static_cast<float>(-(fxp - fxm) / cfg.dx -
                                      (fyp - fym) / cfg.dy -
                                      (fzp - fzm) / cfg.dz);
        }
        pt.cells += static_cast<std::uint64_t>(n);
      });
  st.flops = static_cast<double>(st.cells) * kFlopsPerCell;
  return st;
}

AdvStats rk_update_scalar(exec::ExecSpace& ex, const grid::Patch& patch,
                          const Field3D<float>& q0, const Field3D<float>& tend,
                          double dt_stage, Field3D<float>& q) {
  exec::LaunchParams lp;
  lp.name = "rk_update_scalar";
  lp.collapse = 3;
  lp.flops_per_iter = 3.0;
  AdvStats st = ex.parallel_reduce<AdvStats>(
      exec::Range3{patch.ip, patch.k, patch.jp}, lp,
      [&](AdvStats& pt, int i, int k, int j) {
        const double v =
            static_cast<double>(q0(i, k, j)) + dt_stage * tend(i, k, j);
        q(i, k, j) = static_cast<float>(v > 0.0 ? v : 0.0);
        ++pt.cells;
      });
  st.flops = static_cast<double>(st.cells) * 3.0;
  return st;
}

AdvStats rk_update_scalar_bins(exec::ExecSpace& ex, const grid::Patch& patch,
                               const Field4D<float>& q0,
                               const Field4D<float>& tend, double dt_stage,
                               Field4D<float>& q) {
  const int n = q.n();
  exec::LaunchParams lp;
  lp.name = "rk_update_scalar_bins";
  lp.collapse = 3;
  lp.flops_per_iter = 3.0;
  AdvStats st = ex.parallel_reduce<AdvStats>(
      exec::Range3{patch.ip, patch.k, patch.jp}, lp,
      [&](AdvStats& pt, int i, int k, int j) {
        const float* s0 = q0.slice(i, k, j);
        const float* tn = tend.slice(i, k, j);
        float* out = q.slice(i, k, j);
        for (int b = 0; b < n; ++b) {
          const double v = static_cast<double>(s0[b]) + dt_stage * tn[b];
          out[b] = static_cast<float>(v > 0.0 ? v : 0.0);
        }
        pt.cells += static_cast<std::uint64_t>(n);
      });
  st.flops = static_cast<double>(st.cells) * 3.0;
  return st;
}

void fill_domain_boundaries(const grid::Patch& patch, Field3D<float>& q) {
  using grid::Side;
  const int h = patch.halo;
  if (patch.at_domain_edge(Side::kWest)) {
    for (int j = patch.jm.lo; j <= patch.jm.hi; ++j)
      for (int k = patch.k.lo; k <= patch.k.hi; ++k)
        for (int g = 1; g <= h; ++g)
          q(patch.ip.lo - g, k, j) = q(patch.ip.lo, k, j);
  }
  if (patch.at_domain_edge(Side::kEast)) {
    for (int j = patch.jm.lo; j <= patch.jm.hi; ++j)
      for (int k = patch.k.lo; k <= patch.k.hi; ++k)
        for (int g = 1; g <= h; ++g)
          q(patch.ip.hi + g, k, j) = q(patch.ip.hi, k, j);
  }
  if (patch.at_domain_edge(Side::kSouth)) {
    for (int i = patch.im.lo; i <= patch.im.hi; ++i)
      for (int k = patch.k.lo; k <= patch.k.hi; ++k)
        for (int g = 1; g <= h; ++g)
          q(i, k, patch.jp.lo - g) = q(i, k, patch.jp.lo);
  }
  if (patch.at_domain_edge(Side::kNorth)) {
    for (int i = patch.im.lo; i <= patch.im.hi; ++i)
      for (int k = patch.k.lo; k <= patch.k.hi; ++k)
        for (int g = 1; g <= h; ++g)
          q(i, k, patch.jp.hi + g) = q(i, k, patch.jp.hi);
  }
}

void fill_domain_boundaries_bins(const grid::Patch& patch,
                                 Field4D<float>& q) {
  using grid::Side;
  const int h = patch.halo;
  const int n = q.n();
  auto copy_slice = [&](int di, int dk, int dj, int si, int sk, int sj) {
    float* dst = q.slice(di, dk, dj);
    const float* src = q.slice(si, sk, sj);
    for (int b = 0; b < n; ++b) dst[b] = src[b];
  };
  if (patch.at_domain_edge(Side::kWest)) {
    for (int j = patch.jm.lo; j <= patch.jm.hi; ++j)
      for (int k = patch.k.lo; k <= patch.k.hi; ++k)
        for (int g = 1; g <= h; ++g)
          copy_slice(patch.ip.lo - g, k, j, patch.ip.lo, k, j);
  }
  if (patch.at_domain_edge(Side::kEast)) {
    for (int j = patch.jm.lo; j <= patch.jm.hi; ++j)
      for (int k = patch.k.lo; k <= patch.k.hi; ++k)
        for (int g = 1; g <= h; ++g)
          copy_slice(patch.ip.hi + g, k, j, patch.ip.hi, k, j);
  }
  if (patch.at_domain_edge(Side::kSouth)) {
    for (int i = patch.im.lo; i <= patch.im.hi; ++i)
      for (int k = patch.k.lo; k <= patch.k.hi; ++k)
        for (int g = 1; g <= h; ++g)
          copy_slice(i, k, patch.jp.lo - g, i, k, patch.jp.lo);
  }
  if (patch.at_domain_edge(Side::kNorth)) {
    for (int i = patch.im.lo; i <= patch.im.hi; ++i)
      for (int k = patch.k.lo; k <= patch.k.hi; ++k)
        for (int g = 1; g <= h; ++g)
          copy_slice(i, k, patch.jp.hi + g, i, k, patch.jp.hi);
  }
}

}  // namespace wrf::dyn
