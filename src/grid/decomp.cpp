#include "grid/decomp.hpp"

#include <cmath>
#include <cstdio>

namespace wrf::grid {

Side opposite(Side s) noexcept {
  switch (s) {
    case Side::kWest: return Side::kEast;
    case Side::kEast: return Side::kWest;
    case Side::kSouth: return Side::kNorth;
    case Side::kNorth: return Side::kSouth;
  }
  return Side::kWest;  // unreachable
}

namespace {

/// Balanced split of inclusive range `r` into `n` pieces; piece `idx`.
Range split(const Range& r, int n, int idx) {
  const int len = r.size();
  const int base = len / n;
  const int rem = len % n;
  // First `rem` pieces get one extra cell.
  const int lo_off = idx * base + (idx < rem ? idx : rem);
  const int sz = base + (idx < rem ? 1 : 0);
  return Range{r.lo + lo_off, r.lo + lo_off + sz - 1};
}

}  // namespace

Tile Patch::tile(int t, int ntiles) const {
  if (t < 0 || ntiles <= 0 || t >= ntiles) {
    throw ConfigError("Patch::tile: tile index " + std::to_string(t) +
                      " outside [0," + std::to_string(ntiles) + ")");
  }
  Tile out;
  out.it = ip;
  out.kt = k;
  out.jt = split(jp, ntiles, t);
  return out;
}

HaloRect Patch::send_rect(Side s) const {
  switch (s) {
    case Side::kWest:  return {Range{ip.lo, ip.lo + halo - 1}, jp};
    case Side::kEast:  return {Range{ip.hi - halo + 1, ip.hi}, jp};
    case Side::kSouth: return {ip, Range{jp.lo, jp.lo + halo - 1}};
    case Side::kNorth: return {ip, Range{jp.hi - halo + 1, jp.hi}};
  }
  return {};
}

HaloRect Patch::recv_rect(Side s) const {
  switch (s) {
    case Side::kWest:  return {Range{ip.lo - halo, ip.lo - 1}, jp};
    case Side::kEast:  return {Range{ip.hi + 1, ip.hi + halo}, jp};
    case Side::kSouth: return {ip, Range{jp.lo - halo, jp.lo - 1}};
    case Side::kNorth: return {ip, Range{jp.hi + 1, jp.hi + halo}};
  }
  return {};
}

std::vector<Patch> decompose(const Domain& domain, int npx, int npy,
                             int halo) {
  if (npx <= 0 || npy <= 0) {
    throw ConfigError("decompose: process grid must be positive, got " +
                      std::to_string(npx) + "x" + std::to_string(npy));
  }
  if (halo < 0) throw ConfigError("decompose: negative halo");
  if (domain.i.size() <= 0 || domain.j.size() <= 0 || domain.k.size() <= 0) {
    throw ConfigError("decompose: empty domain");
  }
  if (domain.i.size() / npx < halo || domain.j.size() / npy < halo) {
    throw ConfigError(
        "decompose: patches narrower than halo width; reduce ranks or halo "
        "(domain " +
        std::to_string(domain.i.size()) + "x" + std::to_string(domain.j.size()) +
        ", grid " + std::to_string(npx) + "x" + std::to_string(npy) +
        ", halo " + std::to_string(halo) + ")");
  }

  std::vector<Patch> patches;
  patches.reserve(static_cast<std::size_t>(npx) * npy);
  for (int py = 0; py < npy; ++py) {
    for (int px = 0; px < npx; ++px) {
      Patch p;
      p.rank = py * npx + px;
      p.px = px;
      p.py = py;
      p.halo = halo;
      p.domain = domain;
      p.ip = split(domain.i, npx, px);
      p.jp = split(domain.j, npy, py);
      p.k = domain.k;
      // Memory ranges always extend `halo` beyond the computational range;
      // at domain edges those cells hold boundary-condition data.
      p.im = Range{p.ip.lo - halo, p.ip.hi + halo};
      p.jm = Range{p.jp.lo - halo, p.jp.hi + halo};
      p.neighbor[static_cast<int>(Side::kWest)] =
          px > 0 ? p.rank - 1 : -1;
      p.neighbor[static_cast<int>(Side::kEast)] =
          px < npx - 1 ? p.rank + 1 : -1;
      p.neighbor[static_cast<int>(Side::kSouth)] =
          py > 0 ? p.rank - npx : -1;
      p.neighbor[static_cast<int>(Side::kNorth)] =
          py < npy - 1 ? p.rank + npx : -1;
      patches.push_back(p);
    }
  }
  return patches;
}

std::pair<int, int> default_process_grid(const Domain& domain, int nranks) {
  if (nranks <= 0) throw ConfigError("default_process_grid: nranks <= 0");
  // Pick the factorization npx*npy == nranks whose patch aspect ratio is
  // closest to square, as WRF's MPASPECT does.
  const double target =
      static_cast<double>(domain.i.size()) / domain.j.size();
  int best_px = 1, best_py = nranks;
  double best_err = 1e300;
  for (int px = 1; px <= nranks; ++px) {
    if (nranks % px != 0) continue;
    const int py = nranks / px;
    const double ratio = static_cast<double>(px) / py;
    const double err = std::abs(std::log(ratio / target));
    if (err < best_err) {
      best_err = err;
      best_px = px;
      best_py = py;
    }
  }
  return {best_px, best_py};
}

std::string describe(const Patch& p) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "rank %d (px=%d,py=%d) ip=%d:%d jp=%d:%d im=%d:%d jm=%d:%d",
                p.rank, p.px, p.py, p.ip.lo, p.ip.hi, p.jp.lo, p.jp.hi,
                p.im.lo, p.im.hi, p.jm.lo, p.jm.hi);
  return buf;
}

}  // namespace wrf::grid
