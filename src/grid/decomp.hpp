#pragma once
// WRF-style domain decomposition (paper Figure 1).
//
// The model grid ("domain", ids:ide x kds:kde x jds:jde) is partitioned in
// the two horizontal dimensions into rectangular "patches", one per MPI
// rank (jms:jme, ims:ime memory ranges include a halo).  Within a patch,
// work is further split into "tiles" (jts:jte, its:ite) distributed among
// OpenMP threads.  The vertical dimension k is never decomposed.
//
// This module is pure index arithmetic: it computes patch extents, memory
// extents, neighbor ranks, tile strips, and the rectangles involved in
// halo exchange.  Actual data motion lives in src/par.

#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/field.hpp"

namespace wrf::grid {

/// The full model grid, Fortran-style inclusive ranges.
struct Domain {
  Range i;  ///< ids:ide (west-east)
  Range k;  ///< kds:kde (bottom-top)
  Range j;  ///< jds:jde (south-north)

  long long cells() const noexcept {
    return static_cast<long long>(i.size()) * k.size() * j.size();
  }
};

/// Sides for halo exchange, in WRF compass convention.
enum class Side { kWest = 0, kEast = 1, kSouth = 2, kNorth = 3 };

/// Opposite side (west<->east, south<->north).
Side opposite(Side s) noexcept;

/// One tile: the unit of work handed to a thread.
struct Tile {
  Range it;  ///< its:ite
  Range kt;  ///< kts:kte
  Range jt;  ///< jts:jte
};

/// A horizontal rectangle (full k extent implied) used to describe the
/// strips exchanged between neighboring patches.
struct HaloRect {
  Range i;
  Range j;
  long long cells(int nk) const noexcept {
    return static_cast<long long>(i.size()) * j.size() * nk;
  }
};

/// One rank's rectangular piece of the domain.
struct Patch {
  int rank = 0;          ///< linear rank id, row-major in (py, px)
  int px = 0, py = 0;    ///< coordinates in the process grid
  int halo = 3;          ///< halo width (3 supports 5th-order advection)

  Domain domain;         ///< the global grid this patch belongs to
  Range ip, jp;          ///< computational range (ips:ipe, jps:jpe)
  Range im, jm;          ///< memory range incl. halo (ims:ime, jms:jme)
  Range k;               ///< kds:kde (never decomposed)

  int neighbor[4] = {-1, -1, -1, -1};  ///< rank per Side, -1 at domain edge

  /// True if this patch touches the global domain boundary on `s`.
  bool at_domain_edge(Side s) const noexcept {
    return neighbor[static_cast<int>(s)] < 0;
  }

  /// Split the computational range into `ntiles` j-strips, WRF's default
  /// tiling.  Tile `t` is empty when there are more tiles than rows.
  Tile tile(int t, int ntiles) const;

  /// Interior strip this patch sends to its neighbor on side `s`
  /// (the `halo`-wide band just inside the computational range).
  HaloRect send_rect(Side s) const;

  /// Ghost strip this patch receives from its neighbor on side `s`.
  HaloRect recv_rect(Side s) const;

  long long computational_cells() const noexcept {
    return static_cast<long long>(ip.size()) * k.size() * jp.size();
  }
};

/// Partition `domain` into an npx-by-npy process grid with the given halo
/// width.  Cell counts differ by at most one between patches in each
/// dimension (WRF's balanced split).  Throws ConfigError when a patch
/// would be narrower than the halo, which would make exchanges ill-formed.
std::vector<Patch> decompose(const Domain& domain, int npx, int npy,
                             int halo);

/// Choose a near-square (npx, npy) factorization of `nranks` for the given
/// domain aspect ratio, mimicking WRF's default processor layout.
std::pair<int, int> default_process_grid(const Domain& domain, int nranks);

/// Human-readable one-line description, e.g. for run headers.
std::string describe(const Patch& p);

}  // namespace wrf::grid
