#include "analyzer/rewrite.hpp"

#include <algorithm>
#include <sstream>

#include "analyzer/parser.hpp"

namespace wrf::analyzer {

namespace {

/// Locate the procedure and outer do-stmt at `line`.
struct Located {
  const Procedure* proc = nullptr;
  const Stmt* loop = nullptr;
};

const Stmt* find_do_at(const Block& b, int line) {
  for (const auto& s : b) {
    if (s.kind == Stmt::kDo && s.line == line) return &s;
    // Recurse into structured bodies to find non-top-level loops too.
    for (const auto& blk : s.blocks) {
      const Stmt* f = find_do_at(blk, line);
      if (f != nullptr) return f;
    }
  }
  return nullptr;
}

Located locate(const ProgramUnit& unit, int line) {
  Located out;
  auto scan_proc = [&](const Procedure& p) {
    const Stmt* f = find_do_at(p.body, line);
    if (f != nullptr) {
      out.proc = &p;
      out.loop = f;
    }
  };
  for (const auto& m : unit.modules) {
    for (const auto& p : m.procs) scan_proc(p);
  }
  for (const auto& p : unit.procs) scan_proc(p);
  return out;
}

/// Innermost do-line of the perfect nest rooted at `outer`.
int innermost_do_line(const Stmt& outer, int depth_limit) {
  const Stmt* cur = &outer;
  int depth = 1;
  for (;;) {
    if (depth_limit > 0 && depth >= depth_limit) break;
    const Stmt* only_do = nullptr;
    int real = 0;
    for (const auto& s : cur->blocks[0]) {
      if (s.kind == Stmt::kDirective) continue;
      ++real;
      if (s.kind == Stmt::kDo) only_do = &s;
    }
    if (real == 1 && only_do != nullptr) {
      cur = only_do;
      ++depth;
      continue;
    }
    break;
  }
  return cur->line;
}

std::string indent_of(const std::string& line_text) {
  std::string ind;
  for (char c : line_text) {
    if (c == ' ' || c == '\t') ind += c;
    else break;
  }
  return ind;
}

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ", ";
    out += v[i];
  }
  return out;
}

}  // namespace

RewriteResult rewrite_offload(const std::string& source, int line,
                              int collapse_limit) {
  RewriteResult res;
  res.source = source;

  const ProgramUnit unit = parse(source);
  const SemanticModel model(unit);
  const Located loc = locate(unit, line);
  if (loc.loop == nullptr) {
    res.notes.push_back("no do-loop starts at line " + std::to_string(line));
    return res;
  }
  const LoopAnalysis la = analyze_loop(model, *loc.proc, *loc.loop);
  if (!la.parallelizable) {
    res.notes.push_back("loop at line " + std::to_string(line) +
                        " not parallelizable:");
    for (const auto& b : la.blockers) res.notes.push_back("  " + b);
    return res;
  }

  // Clause construction.
  std::vector<std::string> privates, map_from, map_to, reductions;
  for (const auto& v : la.vars) {
    switch (v.role) {
      case VarClass::kPrivate:
        privates.push_back(v.name);
        break;
      case VarClass::kWriteFirst:
        if (v.is_array) map_from.push_back(v.name);
        else privates.push_back(v.name);
        break;
      case VarClass::kReadOnly:
        if (v.is_array) map_to.push_back(v.name);
        break;
      case VarClass::kReduction:
        reductions.push_back(v.reduction_op + ": " + v.name);
        break;
      default:
        break;
    }
  }
  const int collapse =
      collapse_limit > 0 ? std::min(collapse_limit, la.nest_depth)
                         : la.nest_depth;

  // Build the directive block (continuation style, as Codee emits).
  std::vector<std::string> dir;
  dir.push_back("!$omp target teams distribute &");
  {
    std::string l = "!$omp parallel do";
    if (collapse > 1) l += " collapse(" + std::to_string(collapse) + ")";
    dir.push_back(l + " &");
  }
  if (!privates.empty()) {
    dir.push_back("!$omp private(" + join(privates) + ") &");
  }
  if (!reductions.empty()) {
    dir.push_back("!$omp reduction(" + join(reductions) + ") &");
  }
  if (!map_to.empty()) {
    dir.push_back("!$omp map(to: " + join(map_to) + ") &");
  }
  if (!map_from.empty()) {
    dir.push_back("!$omp map(from: " + join(map_from) + ") &");
  }
  // Last line must not continue.
  std::string& last = dir.back();
  if (last.size() >= 2 && last.substr(last.size() - 2) == " &") {
    last = last.substr(0, last.size() - 2);
  }

  const int simd_line =
      collapse < la.nest_depth ? innermost_do_line(*loc.loop, 0) : -1;

  // Splice into the text.
  std::vector<std::string> lines;
  {
    std::istringstream is(source);
    std::string l;
    while (std::getline(is, l)) lines.push_back(l);
  }
  if (line < 1 || line > static_cast<int>(lines.size())) {
    res.notes.push_back("line out of range");
    return res;
  }
  std::ostringstream os;
  for (int n = 1; n <= static_cast<int>(lines.size()); ++n) {
    if (n == line) {
      const std::string ind = indent_of(lines[static_cast<std::size_t>(n - 1)]);
      os << ind << "! loopcheck: loop modified\n";
      for (const auto& d : dir) os << ind << d << "\n";
    }
    if (n == simd_line && simd_line != line) {
      const std::string ind = indent_of(lines[static_cast<std::size_t>(n - 1)]);
      os << ind << "! loopcheck: loop modified\n";
      os << ind << "!$omp simd\n";
    }
    os << lines[static_cast<std::size_t>(n - 1)] << "\n";
  }
  res.applied = true;
  res.source = os.str();
  res.notes.push_back("annotated loop nest at line " + std::to_string(line) +
                      " (collapse(" + std::to_string(collapse) + "))");
  if (simd_line > 0) {
    res.notes.push_back("applied simd to inner loop at line " +
                        std::to_string(simd_line));
  }
  return res;
}

RewriteResult rewrite_all_offloadable(const std::string& source,
                                      int collapse_limit) {
  const ProgramUnit unit = parse(source);
  const SemanticModel model(unit);
  std::vector<int> targets;
  auto scan = [&](const Procedure& p) {
    for (const Stmt* loop : outer_loops(p)) {
      const LoopAnalysis la = analyze_loop(model, p, *loop);
      if (la.parallelizable) targets.push_back(loop->line);
    }
  };
  for (const auto& m : unit.modules) {
    for (const auto& p : m.procs) scan(p);
  }
  for (const auto& p : unit.procs) scan(p);

  // Apply bottom-up so earlier insertions do not shift later targets.
  std::sort(targets.rbegin(), targets.rend());
  RewriteResult res;
  res.source = source;
  for (int line : targets) {
    RewriteResult one = rewrite_offload(res.source, line, collapse_limit);
    if (one.applied) {
      res.source = one.source;
      res.applied = true;
    }
    for (auto& n : one.notes) res.notes.push_back(std::move(n));
  }
  return res;
}

}  // namespace wrf::analyzer
