#pragma once
// Recursive-descent parser for the mini-Fortran subset (see ast.hpp).

#include "analyzer/ast.hpp"
#include "analyzer/lexer.hpp"

namespace wrf::analyzer {

/// Parse a whole source file.  Throws ParseError with line numbers.
ProgramUnit parse(const std::string& source);

}  // namespace wrf::analyzer
