#pragma once
// Directive rewriter: the `codee rewrite --offload omp --in-place
// file.f90:LINE` command of Listing 2, producing annotations like
// Listing 4's.
//
// Given a source file and the line of an outer `do`, the rewriter runs
// the dependency analysis and, when the nest is parallelizable, inserts
//
//   !$omp target teams distribute &
//   !$omp parallel do [collapse(n)] &
//   !$omp private(...) &
//   !$omp map(from: ...) [map(to: ...)] [reduction(+: ...)]
//
// before the outer loop and `!$omp simd` before the innermost loop (the
// vectorization clause Codee applied to kernals_ks).  Non-parallelizable
// nests are left untouched and the blockers are reported.

#include <string>
#include <vector>

#include "analyzer/analysis.hpp"

namespace wrf::analyzer {

struct RewriteResult {
  bool applied = false;
  std::string source;               ///< annotated (or original) text
  std::vector<std::string> notes;   ///< what was inserted / why not
};

/// Annotate the do-loop starting at 1-based `line` of `source`.
/// `collapse_limit` caps the collapse depth (the paper first had to
/// limit collapse to 2; 0 means collapse the full nest).
RewriteResult rewrite_offload(const std::string& source, int line,
                              int collapse_limit = 0);

/// Convenience: find all offloadable outer loops and annotate each.
RewriteResult rewrite_all_offloadable(const std::string& source,
                                      int collapse_limit = 0);

}  // namespace wrf::analyzer
