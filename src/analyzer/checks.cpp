#include "analyzer/checks.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace wrf::analyzer {

namespace {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kCritical: return "critical";
  }
  return "?";
}

/// Apply `fn` to every procedure in the unit.
template <class Fn>
void for_each_proc(const SemanticModel& m, Fn&& fn) {
  for (const auto& mod : m.unit().modules) {
    for (const auto& p : mod.procs) fn(p);
  }
  for (const auto& p : m.unit().procs) fn(p);
}

}  // namespace

int Report::count(const std::string& id) const {
  int n = 0;
  for (const auto& f : findings) {
    if (f.id == id) ++n;
  }
  return n;
}

std::string Report::format() const {
  std::string out;
  char buf[512];
  for (const auto& f : findings) {
    std::snprintf(buf, sizeof(buf), "[%s] %-8s %s:%d  %s\n",
                  severity_name(f.severity), f.id.c_str(),
                  f.procedure.c_str(), f.line, f.message.c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%zu finding(s)\n", findings.size());
  out += buf;
  return out;
}

std::vector<Finding> check_global_write_in_loop(const SemanticModel& m) {
  std::vector<Finding> out;
  for_each_proc(m, [&](const Procedure& p) {
    for (const Stmt* loop : outer_loops(p)) {
      const LoopAnalysis la = analyze_loop(m, p, *loop);
      for (const auto& v : la.vars) {
        const bool writes = v.role == VarClass::kWriteFirst ||
                            v.role == VarClass::kSharedWrite ||
                            v.role == VarClass::kReduction ||
                            v.role == VarClass::kLoopCarried ||
                            v.role == VarClass::kPrivate;
        if (writes && v.scope == SymbolScope::kGlobal) {
          out.push_back(Finding{
              "PWR010", Severity::kWarning, p.name, loop->line,
              "global variable '" + v.name +
                  "' is written inside the loop nest; shared module state "
                  "defeats parallelization of enclosing grid loops"});
        }
      }
    }
  });
  return out;
}

std::vector<Finding> check_offloadable_loops(const SemanticModel& m) {
  std::vector<Finding> out;
  for_each_proc(m, [&](const Procedure& p) {
    for (const Stmt* loop : outer_loops(p)) {
      const LoopAnalysis la = analyze_loop(m, p, *loop);
      if (la.parallelizable) {
        std::string vars;
        for (const auto& lv : la.loop_vars) {
          if (!vars.empty()) vars += ",";
          vars += lv;
        }
        out.push_back(Finding{
            "PWR015", Severity::kInfo, p.name, loop->line,
            "loop nest over (" + vars + ") has no loop-carried "
                "dependencies; offload candidate "
                "(collapse(" + std::to_string(la.nest_depth) + "))"});
      }
    }
  });
  return out;
}

std::vector<Finding> check_write_first_arrays(const SemanticModel& m) {
  std::vector<Finding> out;
  for_each_proc(m, [&](const Procedure& p) {
    for (const Stmt* loop : outer_loops(p)) {
      const LoopAnalysis la = analyze_loop(m, p, *loop);
      for (const auto& v : la.vars) {
        if (v.role == VarClass::kWriteFirst && v.is_array) {
          out.push_back(Finding{
              "PWR020", Severity::kInfo, p.name, loop->line,
              "array '" + v.name + "' is overwritten by the nest and its "
                  "previous contents are never used: map(from:) candidate; "
                  "values could instead be computed on demand"});
        }
      }
    }
  });
  return out;
}

std::vector<Finding> check_automatic_arrays(const SemanticModel& m) {
  std::vector<Finding> out;
  for_each_proc(m, [&](const Procedure& p) {
    if (!p.declares_target) return;
    for (const auto& d : p.decls) {
      const bool is_arg =
          std::find(p.args.begin(), p.args.end(), d.name) != p.args.end();
      if (is_arg || !d.is_array() || d.pointer || d.allocatable ||
          d.parameter) {
        continue;
      }
      out.push_back(Finding{
          "PWR025", Severity::kCritical, p.name, d.line,
          "automatic array '" + d.name + "' in device procedure: "
              "allocated per device thread at kernel entry; large thread "
              "counts overflow the device stack/heap "
              "(raise NV_ACC_CUDA_STACKSIZE/HEAPSIZE or hoist into a "
              "persistent module pool)"});
    }
  });
  return out;
}

std::vector<Finding> check_missing_intent(const SemanticModel& m) {
  std::vector<Finding> out;
  for_each_proc(m, [&](const Procedure& p) {
    for (const auto& arg : p.args) {
      const Decl* d = nullptr;
      for (const auto& dd : p.decls) {
        if (dd.name == arg) d = &dd;
      }
      if (d == nullptr) continue;  // undeclared (implicit) — other check
      if (d->intent.empty()) {
        out.push_back(Finding{
            "MOD001", Severity::kWarning, p.name, d->line,
            "dummy argument '" + arg + "' has no declared intent"});
      }
    }
  });
  return out;
}

std::vector<Finding> check_assumed_size(const SemanticModel& m) {
  std::vector<Finding> out;
  for_each_proc(m, [&](const Procedure& p) {
    for (const auto& d : p.decls) {
      for (const auto& dim : d.dims) {
        if (dim == "*") {
          out.push_back(Finding{
              "MOD002", Severity::kWarning, p.name, d.line,
              "assumed-size array '" + d.name +
                  "(*)': defeats shape checking and device mapping; use "
                  "assumed-shape or explicit extents"});
        }
      }
    }
  });
  return out;
}

std::vector<Finding> check_loop_carried(const SemanticModel& m) {
  std::vector<Finding> out;
  for_each_proc(m, [&](const Procedure& p) {
    for (const Stmt* loop : outer_loops(p)) {
      const LoopAnalysis la = analyze_loop(m, p, *loop);
      if (!la.parallelizable) {
        for (const auto& b : la.blockers) {
          out.push_back(Finding{"PWR030", Severity::kWarning, p.name,
                                loop->line,
                                "loop nest not parallelizable: " + b});
        }
      }
    }
  });
  return out;
}

Report run_checks(const ProgramUnit& unit) {
  const SemanticModel m(unit);
  Report r;
  auto add = [&](std::vector<Finding> v) {
    for (auto& f : v) r.findings.push_back(std::move(f));
  };
  add(check_global_write_in_loop(m));
  add(check_offloadable_loops(m));
  add(check_write_first_arrays(m));
  add(check_automatic_arrays(m));
  add(check_missing_intent(m));
  add(check_assumed_size(m));
  add(check_loop_carried(m));
  return r;
}

}  // namespace wrf::analyzer
