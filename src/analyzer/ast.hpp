#pragma once
// Abstract syntax for the mini-Fortran subset loopcheck analyzes.
//
// The subset covers what FSBM's hot loops use: modules with global
// arrays, subroutines/functions with intents, nested do loops, if/else,
// assignments (incl. pointer assignment), calls, and arithmetic/logical
// expressions with array references.  Everything else in real WRF
// Fortran is out of scope and rejected with a clear ParseError.

#include <string>
#include <vector>

namespace wrf::analyzer {

struct Expr {
  enum Kind {
    kNum,       ///< numeric or logical literal (text in `name`)
    kStr,       ///< string literal
    kVar,       ///< scalar variable reference
    kArrayRef,  ///< name(args...) where name is a declared array
    kCall,      ///< name(args...) where name is not a known array
    kBin,       ///< binary op; op text in `name`, operands in args[0..1]
    kUn,        ///< unary op; operand in args[0]
    kRange,     ///< lo:hi array section; empty args = ':'
  };
  Kind kind = kNum;
  std::string name;
  std::vector<Expr> args;
  int line = 0;
};

struct Stmt;
using Block = std::vector<Stmt>;

struct Stmt {
  enum Kind {
    kAssign,        ///< exprs[0] = exprs[1]
    kPointerAssign, ///< exprs[0] => exprs[1]
    kIf,            ///< exprs[b] is branch b's condition (absent for else);
                    ///< blocks[b] the branch body
    kDo,            ///< text = loop var; exprs = {lo, hi[, step]};
                    ///< blocks[0] = body
    kCall,          ///< text = callee; exprs = args
    kSimple,        ///< return/exit/cycle (text)
    kDirective,     ///< preserved !$omp line (text)
  };
  Kind kind = kAssign;
  std::string text;
  std::vector<Expr> exprs;
  std::vector<Block> blocks;
  bool else_present = false;  ///< for kIf: last block is an else branch
  int line = 0;
};

struct Decl {
  std::string name;
  std::string type;               ///< real / integer / logical
  std::vector<std::string> dims;  ///< textual extents; "*" assumed-size,
                                  ///< ":" deferred shape
  std::string intent;             ///< "", "in", "out", "inout"
  bool pointer = false;
  bool parameter = false;
  bool allocatable = false;
  bool is_arg = false;  ///< filled during semantic analysis
  int line = 0;

  bool is_array() const { return !dims.empty(); }
};

struct Procedure {
  std::string name;
  bool is_function = false;
  bool pure = false;
  std::string result_type;  ///< for functions
  std::vector<std::string> args;
  std::vector<std::string> uses;  ///< `use <module>` imports
  std::vector<Decl> decls;
  bool declares_target = false;   ///< had a `!$omp declare target`
  Block body;
  int line = 0;
};

struct ModuleUnit {
  std::string name;
  std::vector<Decl> globals;
  std::vector<Procedure> procs;
  int line = 0;
};

/// Result of parsing one source file.
struct ProgramUnit {
  std::vector<ModuleUnit> modules;
  std::vector<Procedure> procs;  ///< bare (non-module) procedures
};

}  // namespace wrf::analyzer
