#pragma once
// Cross-pass fusion legality, built on the loop dependence analysis.
//
// The paper's speedup rung was collapsing loop nests *within* a pass
// (collapse(2) -> collapse(3)) after the analyzer proved independence;
// the next rung is collapsing *across* passes — running cond and coal
// for one grid cell back to back inside a single kernel launch.  That
// is legal only when, for every array both passes touch, each collapsed
// loop variable indexes the array pointwise on both sides: then the
// fused lane (i,k,j) reads and writes exactly the elements the two
// sequential full passes would have, in the same per-cell order, so the
// fused execution is bitwise identical.  A shifted or unanalyzable
// subscript on either side (sedimentation's ff(n,i,k+1,j), the
// write-after-read control pair) makes the interleaving observable and
// blocks fusion.
//
// The verdict is machine-derived: both kernel sources are parsed and
// run through analyze_loop, and the decision consumes only its output
// (parallelizable, blockers, VarClass::pointwise_vars).  No pass names
// are special-cased.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace wrf::analyzer {

/// One fusion candidate: a pass plus its embedded kernel source.
struct KernelRef {
  std::string pass;           ///< pass name (diagnostics + cache key)
  const std::string* source;  ///< embedded mini-Fortran source
  std::string procedure;      ///< procedure to analyze within `source`
};

/// Outcome of a legality query.
struct FusionVerdict {
  bool fusible = false;
  std::vector<std::string> blockers;  ///< analyzer messages when not
};

/// Decide whether `a` immediately followed by `b` may run as one fused
/// kernel with the outermost `collapse` loop variables merged into the
/// launch index.  Loop variables are aligned positionally
/// (a.loop_vars[p] <-> b.loop_vars[p]).
FusionVerdict check_fusion(const KernelRef& a, const KernelRef& b,
                           int collapse);

/// Memoized legality queries: one dependence analysis per distinct
/// (pass pair, collapse depth), shared across ranks.  Thread-safe.
class FusionOracle {
 public:
  FusionVerdict check(const KernelRef& a, const KernelRef& b, int collapse);

  /// Number of cache misses (actual analyses run) so far.
  std::uint64_t analyses_run() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, FusionVerdict> cache_;
  std::uint64_t analyses_ = 0;
};

}  // namespace wrf::analyzer
