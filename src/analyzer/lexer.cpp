#include "analyzer/lexer.hpp"

#include <cctype>

namespace wrf::analyzer {

namespace {
bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
char lower(char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); }
}  // namespace

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  const std::size_t n = src.size();
  std::size_t p = 0;
  int line = 1, col = 1;
  bool continuation = false;  // previous line ended with '&'

  auto push = [&](Tok k, std::string text) {
    out.push_back(Token{k, std::move(text), line, col});
  };
  auto advance = [&](std::size_t by) {
    p += by;
    col += static_cast<int>(by);
  };

  while (p < n) {
    const char c = src[p];
    if (c == '\n') {
      if (!continuation) {
        // Collapse repeated newlines.
        if (!out.empty() && out.back().kind != Tok::kNewline) {
          push(Tok::kNewline, "\n");
        }
      }
      continuation = false;
      ++p;
      ++line;
      col = 1;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      advance(1);
      continue;
    }
    if (c == '&') {
      continuation = true;
      advance(1);
      continue;
    }
    if (c == '!') {
      // Comment to end of line; preserve OpenMP sentinels.
      std::size_t e = p;
      while (e < n && src[e] != '\n') ++e;
      std::string text = src.substr(p, e - p);
      std::string low;
      for (char ch : text) low += lower(ch);
      if (low.rfind("!$omp", 0) == 0) {
        push(Tok::kDirective, text);
        // A trailing '&' in a directive continues onto the next
        // directive line; the parser glues kDirective runs.
      }
      p = e;
      continue;
    }
    continuation = false;
    if (ident_start(c)) {
      std::size_t e = p;
      std::string text;
      while (e < n && ident_char(src[e])) {
        text += lower(src[e]);
        ++e;
      }
      push(Tok::kIdent, text);
      advance(e - p);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && p + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[p + 1])))) {
      std::size_t e = p;
      std::string text;
      bool seen_dot = false, seen_exp = false;
      while (e < n) {
        const char d = src[e];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          text += d;
        } else if (d == '.' && !seen_dot && !seen_exp) {
          // Don't swallow `.and.` after e.g. `1.and.` — peek: digit or
          // exponent must follow, else stop.
          if (e + 1 < n && ident_start(src[e + 1])) {
            const char x = lower(src[e + 1]);
            if (x != 'e' && x != 'd') break;
          }
          seen_dot = true;
          text += '.';
        } else if ((d == 'e' || d == 'E' || d == 'd' || d == 'D') &&
                   !seen_exp && e + 1 < n &&
                   (std::isdigit(static_cast<unsigned char>(src[e + 1])) ||
                    src[e + 1] == '+' || src[e + 1] == '-')) {
          seen_exp = true;
          text += 'e';
          ++e;
          text += src[e];
        } else {
          break;
        }
        ++e;
      }
      push(Tok::kNumber, text);
      advance(e - p);
      continue;
    }
    if (c == '.') {
      // .and. / .or. / .not. / .true. / .false.
      std::size_t e = p + 1;
      std::string word;
      while (e < n && ident_char(src[e])) {
        word += lower(src[e]);
        ++e;
      }
      if (e < n && src[e] == '.') {
        ++e;
        if (word == "and") push(Tok::kAnd, ".and.");
        else if (word == "or") push(Tok::kOr, ".or.");
        else if (word == "not") push(Tok::kNot, ".not.");
        else if (word == "true" || word == "false") {
          push(Tok::kNumber, "." + word + ".");
        } else {
          throw ParseError("unknown logical operator '." + word + ".'", line);
        }
        advance(e - p);
        continue;
      }
      throw ParseError("stray '.'", line);
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      std::size_t e = p + 1;
      std::string text;
      while (e < n && src[e] != quote) {
        text += src[e];
        ++e;
      }
      if (e >= n) throw ParseError("unterminated string", line);
      push(Tok::kString, text);
      advance(e - p + 1);
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && p + 1 < n && src[p + 1] == b;
    };
    if (two(':', ':')) { push(Tok::kColonColon, "::"); advance(2); continue; }
    if (two('=', '>')) { push(Tok::kArrow, "=>"); advance(2); continue; }
    if (two('=', '=')) { push(Tok::kEq, "=="); advance(2); continue; }
    if (two('/', '=')) { push(Tok::kNe, "/="); advance(2); continue; }
    if (two('<', '=')) { push(Tok::kLe, "<="); advance(2); continue; }
    if (two('>', '=')) { push(Tok::kGe, ">="); advance(2); continue; }
    if (two('*', '*')) { push(Tok::kPower, "**"); advance(2); continue; }
    switch (c) {
      case '(': push(Tok::kLParen, "("); break;
      case ')': push(Tok::kRParen, ")"); break;
      case ',': push(Tok::kComma, ","); break;
      case ':': push(Tok::kColon, ":"); break;
      case '=': push(Tok::kAssign, "="); break;
      case '+': push(Tok::kPlus, "+"); break;
      case '-': push(Tok::kMinus, "-"); break;
      case '*': push(Tok::kStar, "*"); break;
      case '/': push(Tok::kSlash, "/"); break;
      case '<': push(Tok::kLt, "<"); break;
      case '>': push(Tok::kGt, ">"); break;
      case '%': push(Tok::kPercent, "%"); break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'",
                         line);
    }
    advance(1);
  }
  if (out.empty() || out.back().kind != Tok::kNewline) {
    push(Tok::kNewline, "\n");
  }
  out.push_back(Token{Tok::kEof, "", line, col});
  return out;
}

}  // namespace wrf::analyzer
