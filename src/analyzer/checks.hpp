#pragma once
// Open-Catalog-style checkers (the paper's `codee checks` report).
//
// Checker ids follow the Open Catalog naming style: PWRxxx are
// performance/parallelization rules, MODxxx modernization rules (the
// paper mentions using Codee's modernization checks to find legacy
// constructs like missing intents and assumed-size arrays in onecond).

#include <string>
#include <vector>

#include "analyzer/analysis.hpp"

namespace wrf::analyzer {

enum class Severity { kInfo, kWarning, kCritical };

struct Finding {
  std::string id;        ///< e.g. "PWR015"
  Severity severity = Severity::kInfo;
  std::string procedure;
  int line = 0;
  std::string message;
};

struct Report {
  std::vector<Finding> findings;
  std::string format() const;
  int count(const std::string& id) const;
};

/// Run every checker over a parsed file.
Report run_checks(const ProgramUnit& unit);

/// Individual checkers (exposed for unit tests).
/// PWR010: global (module) variable written inside a parallelizable-
///         looking loop nest — shared state that blocks parallelization
///         (the cw** arrays of kernals_ks).
std::vector<Finding> check_global_write_in_loop(const SemanticModel& m);
/// PWR015: loop nest is parallelizable -> offload candidate.
std::vector<Finding> check_offloadable_loops(const SemanticModel& m);
/// PWR020: array is fully overwritten (write-first) in the nest ->
///         map(from:) candidate; prior values dead.
std::vector<Finding> check_write_first_arrays(const SemanticModel& m);
/// PWR025: automatic (stack) arrays in a device-marked procedure ->
///         device stack/heap hazard (coal_bott_new's failure mode).
std::vector<Finding> check_automatic_arrays(const SemanticModel& m);
/// MOD001: dummy argument without declared intent.
std::vector<Finding> check_missing_intent(const SemanticModel& m);
/// MOD002: assumed-size array dummy argument a(*).
std::vector<Finding> check_assumed_size(const SemanticModel& m);
/// PWR030: loop-carried dependence diagnosis for non-parallelizable
///         nests (explains *why*, as Codee's screening does).
std::vector<Finding> check_loop_carried(const SemanticModel& m);

}  // namespace wrf::analyzer
