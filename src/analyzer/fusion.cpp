#include "analyzer/fusion.hpp"

#include <algorithm>

#include "analyzer/analysis.hpp"
#include "analyzer/parser.hpp"

namespace wrf::analyzer {

namespace {

struct Analyzed {
  bool ok = false;
  std::string error;
  LoopAnalysis la;
};

/// Parse one kernel source and analyze its first outer loop nest.  The
/// LoopAnalysis owns only strings, so it safely outlives the AST.
Analyzed analyze_kernel(const KernelRef& ref) {
  Analyzed out;
  if (ref.source == nullptr) {
    out.error = ref.pass + ": no embedded kernel source";
    return out;
  }
  const ProgramUnit unit = parse(*ref.source);
  const SemanticModel model(unit);
  const Procedure* p = model.find_procedure(ref.procedure);
  if (p == nullptr) {
    out.error = ref.pass + ": procedure '" + ref.procedure +
                "' not found in kernel source";
    return out;
  }
  const auto loops = outer_loops(*p);
  if (loops.empty()) {
    out.error = ref.pass + ": kernel source has no loop nest";
    return out;
  }
  out.la = analyze_loop(model, *p, *loops[0]);
  out.ok = true;
  return out;
}

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

FusionVerdict check_fusion(const KernelRef& a, const KernelRef& b,
                           int collapse) {
  FusionVerdict v;
  const Analyzed aa = analyze_kernel(a);
  const Analyzed ab = analyze_kernel(b);
  if (!aa.ok || !ab.ok) {
    if (!aa.ok) v.blockers.push_back(aa.error);
    if (!ab.ok) v.blockers.push_back(ab.error);
    return v;
  }

  // Each pass must itself be a parallel nest: a loop-carried dependence
  // anywhere (sedimentation's vertical flux, an impure call) already
  // orders iterations, and fusing would interleave lanes across that
  // order.  Propagate the analyzer's own blocker messages.
  for (const auto* side : {&aa, &ab}) {
    const std::string& pass = (side == &aa) ? a.pass : b.pass;
    if (!side->la.parallelizable) {
      if (side->la.blockers.empty()) {
        v.blockers.push_back(pass + ": loop nest not parallelizable");
      }
      for (const auto& blk : side->la.blockers) {
        v.blockers.push_back(pass + ": " + blk);
      }
    }
  }
  if (!v.blockers.empty()) return v;

  // The fused launch merges the outermost `collapse` loop variables,
  // aligned positionally between the two nests.
  const int depth = std::min(aa.la.nest_depth, ab.la.nest_depth);
  const int c = std::clamp(collapse, 1, depth);

  // Cross-pass footprint check: for every name both kernels touch
  // (skipping locals — private per pass by construction), a write on
  // either side demands pointwise access over every collapsed loop
  // variable on BOTH sides.  Then lane (i,k,j) of the fused kernel
  // touches exactly its own elements in both pass bodies, so running
  // them back to back per lane is bitwise identical to two sequential
  // full passes.
  for (const VarClass& va : aa.la.vars) {
    if (va.scope == SymbolScope::kLocal) continue;
    const VarClass* vb = ab.la.find(va.name);
    if (vb == nullptr || vb->scope == SymbolScope::kLocal) continue;
    if (va.role == VarClass::kReadOnly && vb->role == VarClass::kReadOnly) {
      continue;  // no pass writes it: any interleaving is safe
    }
    if (va.is_array != vb->is_array) {
      v.blockers.push_back("shared name '" + va.name +
                           "' is an array in one pass and a scalar in the "
                           "other");
      continue;
    }
    if (!va.is_array) {
      v.blockers.push_back("shared scalar '" + va.name +
                           "' written by a fused pass would be carried "
                           "across lanes");
      continue;
    }
    for (int p = 0; p < c; ++p) {
      const std::string& lva = aa.la.loop_vars[static_cast<std::size_t>(p)];
      const std::string& lvb = ab.la.loop_vars[static_cast<std::size_t>(p)];
      const bool pw_a = contains(va.pointwise_vars, lva);
      const bool pw_b = contains(vb->pointwise_vars, lvb);
      if (!pw_a || !pw_b) {
        const std::string& pass = !pw_a ? a.pass : b.pass;
        const std::string& lv = !pw_a ? lva : lvb;
        v.blockers.push_back(
            "array '" + va.name + "' is not pointwise over collapsed loop "
            "variable '" + lv + "' in " + pass +
            ": fusing would let one lane's write race another lane's "
            "shifted access (write-after-read hazard)");
      }
    }
  }

  v.fusible = v.blockers.empty();
  return v;
}

FusionVerdict FusionOracle::check(const KernelRef& a, const KernelRef& b,
                                  int collapse) {
  const std::string key =
      a.pass + "|" + b.pass + "#" + std::to_string(collapse);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  ++analyses_;
  FusionVerdict v = check_fusion(a, b, collapse);
  cache_.emplace(key, v);
  return v;
}

std::uint64_t FusionOracle::analyses_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return analyses_;
}

}  // namespace wrf::analyzer
