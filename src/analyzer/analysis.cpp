#include "analyzer/analysis.hpp"

#include <algorithm>
#include <set>

namespace wrf::analyzer {

namespace {

/// Intrinsics never treated as array references.
const std::set<std::string>& intrinsics() {
  static const std::set<std::string> s = {
      "abs",  "min",  "max",  "sqrt", "exp",  "log",  "sin", "cos",
      "mod",  "sign", "real", "int",  "nint", "floor", "merge", "sum",
      "size", "dble", "tiny", "huge", "epsilon"};
  return s;
}

/// Affine subscript c0 + coeff*var (coeff 0 => constant-ish).
struct Affine {
  bool affine = false;
  std::string var;   ///< empty when constant
  long long offset = 0;
  std::string text;  ///< canonical text for exact comparison
};

bool to_int(const Expr& e, long long* out) {
  if (e.kind == Expr::kNum) {
    try {
      *out = std::stoll(e.name);
      return true;
    } catch (...) {
      return false;
    }
  }
  return false;
}

Affine affine_of(const Expr& e) {
  Affine a;
  a.text = expr_text(e);
  if (e.kind == Expr::kVar) {
    a.affine = true;
    a.var = e.name;
    return a;
  }
  long long c;
  if (to_int(e, &c)) {
    a.affine = true;
    a.offset = c;
    return a;
  }
  if (e.kind == Expr::kBin && (e.name == "+" || e.name == "-")) {
    const Expr& l = e.args[0];
    const Expr& r = e.args[1];
    long long rc;
    if (l.kind == Expr::kVar && to_int(r, &rc)) {
      a.affine = true;
      a.var = l.name;
      a.offset = e.name == "+" ? rc : -rc;
      return a;
    }
    long long lc;
    if (e.name == "+" && r.kind == Expr::kVar && to_int(l, &lc)) {
      a.affine = true;
      a.var = r.name;
      a.offset = lc;
      return a;
    }
  }
  return a;  // not affine
}

struct Access {
  bool write = false;
  std::vector<Expr> subs;  ///< empty for scalars
  int line = 0;
  int seq = 0;  ///< program order within one iteration (approximate)
};

struct Collector {
  std::map<std::string, std::vector<Access>> acc;
  std::set<std::string> called;  ///< procedures invoked in the body
  /// Scalars seen in `s = s <op> expr` statements (reduction shape).
  std::set<std::string> reduction_shaped;
  int seq = 0;

  void note(const std::string& name, bool write,
            const std::vector<Expr>& subs, int line) {
    acc[name].push_back(Access{write, subs, line, seq++});
  }

  void expr(const Expr& e, bool write_root = false) {
    switch (e.kind) {
      case Expr::kVar:
        note(e.name, write_root, {}, e.line);
        break;
      case Expr::kArrayRef:
        note(e.name, write_root, e.args, e.line);
        for (const auto& s : e.args) expr(s, false);
        break;
      case Expr::kCall:
        if (intrinsics().count(e.name) == 0) {
          // Unknown call inside an expression: could be an array ref to
          // an undeclared (use-associated) array or a function.  Record
          // as a read of the name so globals get flagged.
          note(e.name, false, e.args, e.line);
          called.insert(e.name);
        }
        for (const auto& s : e.args) expr(s, false);
        break;
      case Expr::kBin:
      case Expr::kUn:
      case Expr::kRange:
        for (const auto& s : e.args) expr(s, false);
        break;
      default:
        break;
    }
  }

  void stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::kAssign:
      case Stmt::kPointerAssign:
        // Recognize the reduction statement shape v = v <op> ... (or
        // v = ... <op> v) for scalar targets before recording accesses.
        if (s.kind == Stmt::kAssign && s.exprs[0].kind == Expr::kVar &&
            s.exprs[1].kind == Expr::kBin &&
            (s.exprs[1].name == "+" || s.exprs[1].name == "*" ||
             s.exprs[1].name == "-")) {
          const std::string& v = s.exprs[0].name;
          for (const Expr& side : s.exprs[1].args) {
            if (side.kind == Expr::kVar && side.name == v) {
              reduction_shaped.insert(v);
            }
          }
        }
        // RHS reads happen before the LHS write in program order.
        expr(s.exprs[1], false);
        expr(s.exprs[0], true);
        break;
      case Stmt::kIf:
        for (const auto& c : s.exprs) expr(c, false);
        for (const auto& b : s.blocks) {
          for (const auto& st : b) stmt(st);
        }
        break;
      case Stmt::kDo:
        // Inner (sequential) loop: bounds are reads; loop var is
        // per-iteration private by construction.
        for (const auto& c : s.exprs) expr(c, false);
        note(s.text, true, {}, s.line);
        for (const auto& st : s.blocks[0]) stmt(st);
        break;
      case Stmt::kCall:
        called.insert(s.text);
        // Conservatively: every argument is read and (if a name) written.
        for (const auto& a : s.exprs) {
          expr(a, false);
          if (a.kind == Expr::kVar || a.kind == Expr::kArrayRef) {
            note(a.name, true, a.kind == Expr::kArrayRef ? a.args
                                                         : std::vector<Expr>{},
                 a.line);
          }
        }
        break;
      default:
        break;
    }
  }
};

}  // namespace

std::string expr_text(const Expr& e) {
  switch (e.kind) {
    case Expr::kNum:
    case Expr::kStr:
    case Expr::kVar:
      return e.name;
    case Expr::kRange: {
      std::string t;
      if (!e.args.empty()) t += expr_text(e.args[0]);
      t += ":";
      if (e.args.size() > 1) t += expr_text(e.args[1]);
      return t;
    }
    case Expr::kArrayRef:
    case Expr::kCall: {
      std::string t = e.name + "(";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i) t += ",";
        t += expr_text(e.args[i]);
      }
      return t + ")";
    }
    case Expr::kUn:
      return e.name + expr_text(e.args[0]);
    case Expr::kBin: {
      // Built up with += (not operator+ chains): GCC 12's -Wrestrict
      // false-positives on `const char* + std::string&&` (PR105651).
      std::string t = "(";
      t += expr_text(e.args[0]);
      t += e.name;
      t += expr_text(e.args[1]);
      t += ")";
      return t;
    }
  }
  return "?";
}

SemanticModel::SemanticModel(const ProgramUnit& unit) : unit_(&unit) {
  for (const auto& m : unit.modules) {
    for (const auto& p : m.procs) module_of_proc_[p.name] = &m;
  }
}

const Procedure* SemanticModel::find_procedure(const std::string& name) const {
  for (const auto& m : unit_->modules) {
    for (const auto& p : m.procs) {
      if (p.name == name) return &p;
    }
  }
  for (const auto& p : unit_->procs) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const Decl* SemanticModel::find_decl(const Procedure& proc,
                                     const std::string& name) const {
  for (const auto& d : proc.decls) {
    if (d.name == name) return &d;
  }
  for (const Decl* g : visible_globals(proc)) {
    if (g->name == name) return g;
  }
  return nullptr;
}

std::vector<const Decl*> SemanticModel::visible_globals(
    const Procedure& proc) const {
  std::vector<const Decl*> out;
  auto it = module_of_proc_.find(proc.name);
  if (it != module_of_proc_.end()) {
    for (const auto& d : it->second->globals) out.push_back(&d);
  }
  for (const auto& used : proc.uses) {
    for (const auto& m : unit_->modules) {
      if (m.name == used) {
        for (const auto& d : m.globals) out.push_back(&d);
      }
    }
  }
  return out;
}

SymbolScope SemanticModel::resolve(const Procedure& proc,
                                   const std::string& name) const {
  for (const auto& a : proc.args) {
    if (a == name) return SymbolScope::kArgument;
  }
  for (const auto& d : proc.decls) {
    if (d.name == name) return SymbolScope::kLocal;
  }
  auto it = module_of_proc_.find(proc.name);
  if (it != module_of_proc_.end()) {
    for (const auto& d : it->second->globals) {
      if (d.name == name) return SymbolScope::kGlobal;
    }
  }
  for (const auto& used : proc.uses) {
    for (const auto& m : unit_->modules) {
      if (m.name == used) {
        for (const auto& d : m.globals) {
          if (d.name == name) return SymbolScope::kGlobal;
        }
      }
    }
  }
  return SymbolScope::kUnknown;
}

std::vector<const Stmt*> outer_loops(const Procedure& proc) {
  std::vector<const Stmt*> out;
  for (const auto& s : proc.body) {
    if (s.kind == Stmt::kDo) out.push_back(&s);
  }
  return out;
}

LoopAnalysis analyze_loop(const SemanticModel& model, const Procedure& proc,
                          const Stmt& outer) {
  LoopAnalysis la;
  // Walk the perfect nest: while the body is (directives +) exactly one
  // do statement, descend.
  const Stmt* cur = &outer;
  const Block* body = nullptr;
  for (;;) {
    la.loop_vars.push_back(cur->text);
    body = &cur->blocks[0];
    const Stmt* only_do = nullptr;
    int real_stmts = 0;
    for (const auto& s : *body) {
      if (s.kind == Stmt::kDirective) continue;
      ++real_stmts;
      if (s.kind == Stmt::kDo) only_do = &s;
    }
    if (real_stmts == 1 && only_do != nullptr) {
      cur = only_do;
      continue;
    }
    break;
  }
  la.nest_depth = static_cast<int>(la.loop_vars.size());

  Collector col;
  for (const auto& s : *body) col.stmt(s);

  const std::set<std::string> loop_vars(la.loop_vars.begin(),
                                        la.loop_vars.end());
  bool ok = true;

  for (const auto& [name, accesses] : col.acc) {
    if (loop_vars.count(name)) continue;  // the indices themselves
    VarClass vc;
    vc.name = name;
    vc.scope = model.resolve(proc, name);
    const Decl* decl = model.find_decl(proc, name);
    const bool treat_as_array =
        (decl != nullptr && decl->is_array()) ||
        (decl == nullptr && !accesses.empty() && !accesses[0].subs.empty());
    vc.is_array = treat_as_array;
    // Skip pure function calls that are not array accesses.
    if (decl == nullptr && col.called.count(name) &&
        model.find_procedure(name) != nullptr) {
      const Procedure* callee = model.find_procedure(name);
      if (callee->pure) continue;  // pure callee: no dependence hazard
    }

    bool any_write = false, any_read = false;
    for (const auto& a : accesses) {
      any_write |= a.write;
      any_read |= !a.write;
    }

    if (treat_as_array) {
      // Pointwise classification feeds cross-pass fusion legality
      // (analyzer/fusion.cpp): a loop variable is pointwise for this
      // array when every access subscripts it with a plain zero-offset
      // affine term and never with a shifted one.  An unanalyzable
      // subscript disqualifies the whole access conservatively.
      for (const auto& lv : la.loop_vars) {
        bool pointwise = !accesses.empty();
        for (const auto& a : accesses) {
          bool zero_hit = false, hazard = false;
          for (const auto& s : a.subs) {
            const Affine af = affine_of(s);
            if (!af.affine) {
              hazard = true;
            } else if (af.var == lv && af.offset == 0) {
              zero_hit = true;
            } else if (af.var == lv && af.offset != 0) {
              hazard = true;
            }
          }
          if (!zero_hit || hazard) {
            pointwise = false;
            break;
          }
        }
        if (pointwise) vc.pointwise_vars.push_back(lv);
      }
    }

    if (!any_write) {
      vc.role = VarClass::kReadOnly;
      vc.reason = "only read inside the nest";
      la.vars.push_back(std::move(vc));
      continue;
    }

    if (!treat_as_array) {
      // --- scalar ---
      // Reduction pattern: the first read and first write share a
      // statement of the form s = s op expr; approximate: the very first
      // access in program order is a read that is immediately followed
      // by a write at the same seq+1.
      const Access* first = &accesses.front();
      for (const auto& a : accesses) {
        if (a.seq < first->seq) first = &a;
      }
      if (!first->write) {
        if (col.reduction_shaped.count(name)) {
          vc.role = VarClass::kReduction;
          vc.reduction_op = "+";
          vc.reason = "read-modify-write accumulation (s = s op ...)";
          la.vars.push_back(std::move(vc));
          continue;
        }
        vc.role = VarClass::kLoopCarried;
        vc.reason = "scalar read before it is written in the iteration";
        la.blockers.push_back(name + ": " + vc.reason);
        ok = false;
        la.vars.push_back(std::move(vc));
        continue;
      }
      vc.role = VarClass::kPrivate;
      vc.reason = "scalar written before any read (privatizable)";
      la.vars.push_back(std::move(vc));
      continue;
    }

    // --- array ---
    // Gather canonical subscript tuples.
    auto tuple_text = [](const Access& a) {
      std::string t;
      for (const auto& s : a.subs) t += expr_text(s) + ",";
      return t;
    };
    std::set<std::string> write_tuples, read_tuples;
    bool write_first = true;
    int first_write_seq = 1 << 30;
    for (const auto& a : accesses) {
      if (a.write) {
        write_tuples.insert(tuple_text(a));
        first_write_seq = std::min(first_write_seq, a.seq);
      }
    }
    for (const auto& a : accesses) {
      if (!a.write) {
        read_tuples.insert(tuple_text(a));
        if (a.seq < first_write_seq) write_first = false;
      }
    }

    // Disjointness: every write tuple must index every loop variable
    // with a plain affine subscript (var + c), each var in some dim.
    bool disjoint = true;
    std::string why;
    for (const auto& a : accesses) {
      if (!a.write) continue;
      std::set<std::string> covered;
      for (const auto& s : a.subs) {
        const Affine af = affine_of(s);
        if (af.affine && !af.var.empty() && loop_vars.count(af.var)) {
          covered.insert(af.var);
        }
      }
      for (const auto& lv : la.loop_vars) {
        if (!covered.count(lv)) {
          disjoint = false;
          why = "write " + name + "(" + tuple_text(a) +
                ") does not index loop variable '" + lv + "'";
        }
      }
    }

    // Cross-iteration read: a read tuple that differs from every write
    // tuple while involving a loop variable with an offset.
    bool offset_read = false;
    for (const auto& a : accesses) {
      if (a.write) continue;
      const std::string rt = tuple_text(a);
      if (write_tuples.count(rt)) continue;
      for (const auto& s : a.subs) {
        const Affine af = affine_of(s);
        if (af.affine && !af.var.empty() && loop_vars.count(af.var) &&
            af.offset != 0) {
          offset_read = true;
          why = "read " + name + "(" + rt + ") reaches a neighboring "
                "iteration's element";
        }
      }
      if (!offset_read && !write_tuples.empty()) {
        // Different tuple with same vars, or unanalyzable subscript:
        // conservative.
        offset_read = true;
        why = "read " + name + "(" + rt +
              ") cannot be proven independent of other iterations' writes";
      }
    }

    if (disjoint && !any_read) {
      vc.role = VarClass::kWriteFirst;
      vc.reason =
          "every element written, none read: the nest overwrites it "
          "(map(from:) candidate; prior values are dead)";
      la.vars.push_back(std::move(vc));
      continue;
    }
    if (disjoint && !offset_read && write_first) {
      vc.role = VarClass::kWriteFirst;
      vc.reason = "written before read at the same element (map(from:))";
      la.vars.push_back(std::move(vc));
      continue;
    }
    if (disjoint && !offset_read) {
      vc.role = VarClass::kSharedWrite;
      vc.reason = "iteration-disjoint writes; reads match writes";
      la.vars.push_back(std::move(vc));
      continue;
    }
    if (!disjoint && write_tuples.size() == 1 &&
        read_tuples.count(*write_tuples.begin())) {
      vc.role = VarClass::kReduction;
      vc.reduction_op = "+";
      vc.reason = "array element accumulated across iterations (" + why + ")";
      la.blockers.push_back(name + ": array reduction; needs atomic or "
                            "reduction clause");
      ok = false;
      la.vars.push_back(std::move(vc));
      continue;
    }
    vc.role = VarClass::kLoopCarried;
    vc.reason = why.empty() ? "unanalyzable access pattern" : why;
    la.blockers.push_back(name + ": " + vc.reason);
    ok = false;
    la.vars.push_back(std::move(vc));
  }

  // Calls to non-pure procedures we cannot see through block
  // parallelization (unless they are known pure).
  for (const auto& callee : col.called) {
    if (intrinsics().count(callee)) continue;
    const Procedure* p = model.find_procedure(callee);
    if (p == nullptr) {
      if (model.find_decl(proc, callee) != nullptr) continue;  // array ref
      la.blockers.push_back("call to unknown procedure '" + callee + "'");
      ok = false;
    } else if (!p->pure && !p->declares_target) {
      la.blockers.push_back("call to impure procedure '" + callee +
                            "' (side effects unprovable)");
      ok = false;
    }
  }

  la.parallelizable = ok;
  return la;
}

}  // namespace wrf::analyzer
