#include "analyzer/embedded_sources.hpp"

namespace wrf::analyzer::sources {

const std::string& kernals_ks() {
  static const std::string src = R"f90(
module module_mp_fast_sbm
  implicit none
  integer, parameter :: nkr = 33
  real :: cwls(33,33), cwlg(33,33), cwlh(33,33), cwll(33,33)
  real :: ywls_750mb(33,33,1), ywls_500mb(33,33,1)
  real :: ywlg_750mb(33,33,1), ywlg_500mb(33,33,1)
  real :: ywlh_750mb(33,33,1), ywlh_500mb(33,33,1)
  real :: ywll_750mb(33,33,1), ywll_500mb(33,33,1)
contains
subroutine kernals_ks(p_z)
  implicit none
  real, intent(in) :: p_z
  integer :: i, j
  real :: ckern_1, ckern_2, scale
  do j = 1, nkr
    do i = 1, nkr
      ckern_1 = ywls_750mb(i,j,1)
      ckern_2 = ywls_500mb(i,j,1)
      scale = (p_z - 50000.0) / 25000.0
      cwls(i,j) = ckern_2 + (ckern_1 - ckern_2) * scale
      ckern_1 = ywlg_750mb(i,j,1)
      ckern_2 = ywlg_500mb(i,j,1)
      cwlg(i,j) = ckern_2 + (ckern_1 - ckern_2) * scale
      ckern_1 = ywlh_750mb(i,j,1)
      ckern_2 = ywlh_500mb(i,j,1)
      cwlh(i,j) = ckern_2 + (ckern_1 - ckern_2) * scale
      ckern_1 = ywll_750mb(i,j,1)
      ckern_2 = ywll_500mb(i,j,1)
      cwll(i,j) = ckern_2 + (ckern_1 - ckern_2) * scale
    enddo
  enddo
end subroutine kernals_ks
end module module_mp_fast_sbm
)f90";
  return src;
}

const std::string& grid_loop() {
  static const std::string src = R"f90(
subroutine fast_sbm_driver(t_old, tt, its, ite, kts, kte, jts, jte)
  implicit none
  integer, intent(in) :: its, ite, kts, kte, jts, jte
  real, intent(in) :: t_old(ite,kte,jte)
  real, intent(in) :: tt(ite,kte,jte)
  integer :: i, k, j
  do j = jts, jte
    do k = kts, kte
      do i = its, ite
        if (t_old(i,k,j) > 193.15) then
          call jernucl01_ks(i, k, j)
          if (t_old(i,k,j) > 273.15) then
            call onecond1(i, k, j)
          else
            call onecond2(i, k, j)
          endif
          if (tt(i,k,j) > 223.15) then
            call coal_bott_new(i, k, j)
          endif
        endif
      enddo
    enddo
  enddo
end subroutine fast_sbm_driver
)f90";
  return src;
}

const std::string& coal_isolated_loop() {
  static const std::string src = R"f90(
subroutine coal_pass(call_coal_bott_new, its, ite, kts, kte, jts, jte)
  implicit none
  integer, intent(in) :: its, ite, kts, kte, jts, jte
  logical, intent(in) :: call_coal_bott_new(ite,kte,jte)
  integer :: i, k, j
  do j = jts, jte
    do k = kts, kte
      do i = its, ite
        if (call_coal_bott_new(i,k,j)) then
          call coal_bott_new(i, k, j)
        endif
      enddo
    enddo
  enddo
end subroutine coal_pass
pure subroutine coal_bott_new(iin, kin, jin)
  implicit none
  integer, intent(in) :: iin, kin, jin
end subroutine coal_bott_new
)f90";
  return src;
}

const std::string& coal_bott_decl() {
  static const std::string src = R"f90(
subroutine coal_bott_new(iin, kin, jin, dt_coll)
  implicit none
  !$omp declare target
  integer, intent(in) :: iin, kin, jin
  real, intent(in) :: dt_coll
  real :: fl1(33), fl2(33), fl3(33)
  real :: g1(33), g2(33,3), g3(33)
  real :: g4(33), g5(33)
  integer :: i
  do i = 1, 33
    fl1(i) = 0.0
    fl2(i) = 0.0
    fl3(i) = 0.0
    g1(i) = 0.0
    g3(i) = 0.0
    g4(i) = 0.0
    g5(i) = 0.0
  enddo
end subroutine coal_bott_new
)f90";
  return src;
}

const std::string& carried_dep_loop() {
  static const std::string src = R"f90(
subroutine prefix_sum(a, n)
  implicit none
  integer, intent(in) :: n
  real, intent(inout) :: a(n)
  integer :: i
  do i = 2, n
    a(i) = a(i) + a(i-1)
  enddo
end subroutine prefix_sum
)f90";
  return src;
}

const std::string& reduction_loop() {
  static const std::string src = R"f90(
subroutine total_mass(g, n, s)
  implicit none
  integer, intent(in) :: n
  real, intent(in) :: g(n)
  real, intent(out) :: s
  integer :: i
  s = 0.0
  do i = 1, n
    s = s + g(i)
  enddo
end subroutine total_mass
)f90";
  return src;
}

const std::string& legacy_onecond() {
  static const std::string src = R"f90(
subroutine onecond1(tt, qv, pp, ff, nbins)
  implicit none
  real :: tt
  real :: qv
  real, intent(in) :: pp
  real :: ff(*)
  integer, intent(in) :: nbins
  integer :: k
  do k = 1, nbins
    ff(k) = ff(k) * 1.0001
  enddo
end subroutine onecond1
)f90";
  return src;
}

const std::string& cond_kernel() {
  static const std::string src = R"f90(
subroutine cond_kernel(tt, qv, pp, call_coal, ff, nbin, its, ite, kts, kte, jts, jte)
  implicit none
  integer, intent(in) :: nbin, its, ite, kts, kte, jts, jte
  real, intent(inout) :: tt(ite,kte,jte)
  real, intent(inout) :: qv(ite,kte,jte)
  real, intent(in) :: pp(ite,kte,jte)
  integer, intent(out) :: call_coal(ite,kte,jte)
  real, intent(inout) :: ff(nbin,ite,kte,jte)
  integer :: i, k, j, n
  real :: sat
  do j = jts, jte
    do k = kts, kte
      do i = its, ite
        call_coal(i,k,j) = 0
        if (tt(i,k,j) > 193.15) then
          sat = qv(i,k,j) * pp(i,k,j)
          do n = 1, nbin
            ff(n,i,k,j) = ff(n,i,k,j) + sat * 0.001
          enddo
          tt(i,k,j) = tt(i,k,j) + sat * 0.0005
          qv(i,k,j) = qv(i,k,j) - sat * 0.0005
          if (tt(i,k,j) > 223.15) then
            call_coal(i,k,j) = 1
          endif
        endif
      enddo
    enddo
  enddo
end subroutine cond_kernel
)f90";
  return src;
}

const std::string& coal_kernel() {
  static const std::string src = R"f90(
subroutine coal_kernel(tt, pp, call_coal, ff, nbin, its, ite, kts, kte, jts, jte)
  implicit none
  integer, intent(in) :: nbin, its, ite, kts, kte, jts, jte
  real, intent(in) :: tt(ite,kte,jte)
  real, intent(in) :: pp(ite,kte,jte)
  integer, intent(in) :: call_coal(ite,kte,jte)
  real, intent(inout) :: ff(nbin,ite,kte,jte)
  integer :: i, k, j, n
  real :: scale
  do j = jts, jte
    do k = kts, kte
      do i = its, ite
        if (call_coal(i,k,j) > 0) then
          scale = (pp(i,k,j) - 50000.0) / 25000.0
          do n = 1, nbin
            ff(n,i,k,j) = ff(n,i,k,j) * (1.0 + scale * tt(i,k,j) * 0.00001)
          enddo
        endif
      enddo
    enddo
  enddo
end subroutine coal_kernel
)f90";
  return src;
}

const std::string& sed_kernel() {
  static const std::string src = R"f90(
subroutine sed_kernel(ff, vt, nbin, its, ite, kts, kte, jts, jte)
  implicit none
  integer, intent(in) :: nbin, its, ite, kts, kte, jts, jte
  real, intent(inout) :: ff(nbin,ite,kte,jte)
  real, intent(in) :: vt(nbin)
  integer :: i, k, j, n
  do j = jts, jte
    do k = kts, kte
      do i = its, ite
        do n = 1, nbin
          ff(n,i,k,j) = ff(n,i,k,j) + vt(n) * (ff(n,i,k+1,j) - ff(n,i,k,j))
        enddo
      enddo
    enddo
  enddo
end subroutine sed_kernel
)f90";
  return src;
}

const std::string& war_pair() {
  static const std::string src = R"f90(
subroutine war_reader(a, b, its, ite, kts, kte, jts, jte)
  implicit none
  integer, intent(in) :: its, ite, kts, kte, jts, jte
  real, intent(in) :: a(ite,kte,jte)
  real, intent(out) :: b(ite,kte,jte)
  integer :: i, k, j
  do j = jts, jte
    do k = kts, kte
      do i = its, ite
        b(i,k,j) = a(i+1,k,j) * 0.5
      enddo
    enddo
  enddo
end subroutine war_reader
subroutine war_writer(a, its, ite, kts, kte, jts, jte)
  implicit none
  integer, intent(in) :: its, ite, kts, kte, jts, jte
  real, intent(inout) :: a(ite,kte,jte)
  integer :: i, k, j
  do j = jts, jte
    do k = kts, kte
      do i = its, ite
        a(i,k,j) = a(i,k,j) * 0.9
      enddo
    enddo
  enddo
end subroutine war_writer
)f90";
  return src;
}

}  // namespace wrf::analyzer::sources
