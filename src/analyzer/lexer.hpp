#pragma once
// loopcheck: a static analyzer for the mini-Fortran subset FSBM's hot
// loops are written in.  This is the reproduction's stand-in for Codee
// (Section V-A): it parses loop nests, runs dependency analysis, emits
// Open-Catalog-style checks, and rewrites loops with OpenMP offload
// directives — the three capabilities the paper's workflow uses
// (`codee screening`, `codee checks`, `codee rewrite --offload omp`).
//
// This header: the lexer.  Free-form Fortran, case-insensitive keywords,
// `&` continuations, `!` comments (with `!$omp` sentinels preserved as
// directive tokens so already-annotated code can be re-analyzed).

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace wrf::analyzer {

enum class Tok : int {
  kEof = 0,
  kNewline,
  kIdent,      ///< identifiers and keywords (keyword-ness decided later)
  kNumber,
  kString,
  kDirective,  ///< a whole !$omp ... line
  // punctuation / operators
  kLParen, kRParen, kComma, kColon, kColonColon, kAssign, kArrow,  // = and =>
  kPlus, kMinus, kStar, kSlash, kPower, kPercent,
  kLt, kGt, kLe, kGe, kEq, kNe,  // < > <= >= == /=
  kAnd, kOr, kNot,               // .and. .or. .not.
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;   ///< lower-cased for identifiers
  int line = 0;
  int col = 0;
};

/// Error with source position.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line)
      : Error("line " + std::to_string(line) + ": " + what), line_(line) {}
  int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Tokenize free-form source.  Newlines are significant (statement
/// separators); `&` at end of line continues the statement.
std::vector<Token> lex(const std::string& source);

}  // namespace wrf::analyzer
