#include "analyzer/parser.hpp"

#include <algorithm>

namespace wrf::analyzer {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  ProgramUnit parse_unit() {
    ProgramUnit unit;
    skip_newlines();
    while (!at(Tok::kEof)) {
      if (is_kw("module") && peek_text(1) != "procedure") {
        unit.modules.push_back(parse_module());
      } else if (starts_procedure()) {
        unit.procs.push_back(parse_procedure());
      } else {
        throw ParseError("expected module or procedure, got '" +
                             cur().text + "'",
                         cur().line);
      }
      skip_newlines();
    }
    return unit;
  }

 private:
  // --- token helpers ---
  const Token& cur() const { return toks_[pos_]; }
  const Token& la(std::size_t n) const {
    return toks_[std::min(pos_ + n, toks_.size() - 1)];
  }
  std::string peek_text(std::size_t n) const { return la(n).text; }
  bool at(Tok k) const { return cur().kind == k; }
  bool is_kw(const char* kw) const {
    return cur().kind == Tok::kIdent && cur().text == kw;
  }
  bool la_kw(std::size_t n, const char* kw) const {
    return la(n).kind == Tok::kIdent && la(n).text == kw;
  }
  Token eat() { return toks_[pos_++]; }
  Token expect(Tok k, const char* what) {
    if (!at(k)) {
      throw ParseError(std::string("expected ") + what + ", got '" +
                           cur().text + "'",
                       cur().line);
    }
    return eat();
  }
  void expect_kw(const char* kw) {
    if (!is_kw(kw)) {
      throw ParseError(std::string("expected '") + kw + "', got '" +
                           cur().text + "'",
                       cur().line);
    }
    eat();
  }
  void end_stmt() {
    if (at(Tok::kEof)) return;
    expect(Tok::kNewline, "end of statement");
    skip_newlines();
  }
  void skip_newlines() {
    while (at(Tok::kNewline)) eat();
  }

  bool starts_procedure() const {
    if (is_kw("subroutine") || is_kw("function")) return true;
    // [pure] [elemental] [type] function/subroutine
    std::size_t n = 0;
    while (la(n).kind == Tok::kIdent &&
           (la(n).text == "pure" || la(n).text == "elemental" ||
            la(n).text == "real" || la(n).text == "integer" ||
            la(n).text == "logical")) {
      ++n;
      if (la_kw(n, "function") || la_kw(n, "subroutine")) return true;
    }
    return false;
  }

  // --- grammar ---
  ModuleUnit parse_module() {
    ModuleUnit m;
    m.line = cur().line;
    expect_kw("module");
    m.name = expect(Tok::kIdent, "module name").text;
    end_stmt();
    // Specification part: declarations until `contains` or `end`.
    while (!is_kw("contains") && !is_kw("end")) {
      if (is_kw("implicit")) {
        eat();
        expect_kw("none");
        end_stmt();
        continue;
      }
      if (at(Tok::kDirective)) {
        eat();
        skip_newlines();
        continue;
      }
      if (is_kw("use")) {
        eat();
        expect(Tok::kIdent, "module name");
        end_stmt();
        continue;
      }
      parse_decl_into(m.globals);
      end_stmt();
    }
    if (is_kw("contains")) {
      eat();
      end_stmt();
      while (!is_kw("end")) {
        m.procs.push_back(parse_procedure());
        skip_newlines();
      }
    }
    expect_kw("end");
    if (is_kw("module")) {
      eat();
      if (at(Tok::kIdent)) eat();  // optional name
    }
    end_stmt();
    return m;
  }

  Procedure parse_procedure() {
    Procedure p;
    p.line = cur().line;
    while (is_kw("pure") || is_kw("elemental") || is_kw("real") ||
           is_kw("integer") || is_kw("logical")) {
      if (is_kw("pure")) p.pure = true;
      else if (!is_kw("elemental")) p.result_type = cur().text;
      eat();
    }
    if (is_kw("function")) {
      p.is_function = true;
      eat();
    } else {
      expect_kw("subroutine");
    }
    p.name = expect(Tok::kIdent, "procedure name").text;
    if (at(Tok::kLParen)) {
      eat();
      while (!at(Tok::kRParen)) {
        p.args.push_back(expect(Tok::kIdent, "dummy argument").text);
        if (at(Tok::kComma)) eat();
      }
      eat();
    }
    if (is_kw("result")) {  // function ... result(name)
      eat();
      expect(Tok::kLParen, "(");
      expect(Tok::kIdent, "result name");
      expect(Tok::kRParen, ")");
    }
    end_stmt();

    // Specification part.
    for (;;) {
      if (is_kw("use")) {
        eat();
        p.uses.push_back(expect(Tok::kIdent, "module name").text);
        end_stmt();
        continue;
      }
      if (is_kw("implicit")) {
        eat();
        expect_kw("none");
        end_stmt();
        continue;
      }
      if (at(Tok::kDirective)) {
        std::string low = cur().text;
        std::transform(low.begin(), low.end(), low.begin(), ::tolower);
        if (low.find("declare target") != std::string::npos) {
          p.declares_target = true;
        }
        eat();
        skip_newlines();
        continue;
      }
      if (is_kw("real") || is_kw("integer") || is_kw("logical")) {
        parse_decl_into(p.decls);
        end_stmt();
        continue;
      }
      break;
    }

    p.body = parse_block();
    expect_kw("end");
    if (is_kw("subroutine") || is_kw("function")) {
      eat();
      if (at(Tok::kIdent)) eat();
    }
    end_stmt();
    return p;
  }

  /// One type-declaration statement; may declare several entities.
  void parse_decl_into(std::vector<Decl>& out) {
    Decl proto;
    proto.line = cur().line;
    proto.type = expect(Tok::kIdent, "type name").text;
    // Attribute list up to '::'.
    std::vector<std::string> shared_dims;
    while (at(Tok::kComma)) {
      eat();
      const std::string attr = expect(Tok::kIdent, "attribute").text;
      if (attr == "dimension") {
        expect(Tok::kLParen, "(");
        shared_dims = parse_dim_list();
      } else if (attr == "intent") {
        expect(Tok::kLParen, "(");
        std::string dir = expect(Tok::kIdent, "intent direction").text;
        if (dir == "inout") proto.intent = "inout";
        else if (dir == "in") {
          if (is_kw("out")) { eat(); proto.intent = "inout"; }
          else proto.intent = "in";
        } else if (dir == "out") proto.intent = "out";
        expect(Tok::kRParen, ")");
      } else if (attr == "pointer") {
        proto.pointer = true;
      } else if (attr == "parameter") {
        proto.parameter = true;
      } else if (attr == "allocatable") {
        proto.allocatable = true;
      } else if (attr == "save" || attr == "target" || attr == "public" ||
                 attr == "private") {
        // accepted, no semantic effect here
      } else {
        throw ParseError("unknown attribute '" + attr + "'", proto.line);
      }
    }
    expect(Tok::kColonColon, "'::'");
    for (;;) {
      Decl d = proto;
      d.name = expect(Tok::kIdent, "entity name").text;
      if (at(Tok::kLParen)) {
        eat();
        d.dims = parse_dim_list();
      } else {
        d.dims = shared_dims;
      }
      if (at(Tok::kAssign)) {  // initializer
        eat();
        parse_expr();
      }
      out.push_back(std::move(d));
      if (at(Tok::kComma)) {
        eat();
        continue;
      }
      break;
    }
  }

  /// Dim list after '(' — textual extents; consumes through ')'.
  std::vector<std::string> parse_dim_list() {
    std::vector<std::string> dims;
    std::string curdim;
    int depth = 1;
    while (depth > 0) {
      if (at(Tok::kEof)) throw ParseError("unterminated dims", cur().line);
      if (at(Tok::kLParen)) ++depth;
      if (at(Tok::kRParen)) {
        --depth;
        if (depth == 0) {
          eat();
          break;
        }
      }
      if (at(Tok::kComma) && depth == 1) {
        dims.push_back(curdim);
        curdim.clear();
        eat();
        continue;
      }
      curdim += eat().text;
    }
    dims.push_back(curdim);
    return dims;
  }

  Block parse_block() {
    Block b;
    skip_newlines();
    while (!block_terminator()) {
      b.push_back(parse_stmt());
      skip_newlines();
    }
    return b;
  }

  bool block_terminator() const {
    if (at(Tok::kEof)) return true;
    if (is_kw("end")) return true;       // end / enddo / endif handled above
    if (is_kw("enddo") || is_kw("endif")) return true;
    if (is_kw("else") || is_kw("elseif")) return true;
    if (is_kw("contains")) return true;
    return false;
  }

  Stmt parse_stmt() {
    Stmt s;
    s.line = cur().line;
    if (at(Tok::kDirective)) {
      s.kind = Stmt::kDirective;
      s.text = eat().text;
      end_stmt();
      return s;
    }
    if (is_kw("do")) return parse_do();
    if (is_kw("if")) return parse_if();
    if (is_kw("call")) {
      eat();
      s.kind = Stmt::kCall;
      s.text = expect(Tok::kIdent, "subroutine name").text;
      if (at(Tok::kLParen)) {
        eat();
        while (!at(Tok::kRParen)) {
          s.exprs.push_back(parse_expr());
          if (at(Tok::kComma)) eat();
        }
        eat();
      }
      end_stmt();
      return s;
    }
    if (is_kw("return") || is_kw("exit") || is_kw("cycle") ||
        is_kw("continue")) {
      s.kind = Stmt::kSimple;
      s.text = eat().text;
      end_stmt();
      return s;
    }
    // Assignment or pointer assignment.
    Expr lhs = parse_primary();
    if (lhs.kind != Expr::kVar && lhs.kind != Expr::kArrayRef &&
        lhs.kind != Expr::kCall) {
      throw ParseError("expected assignment target", s.line);
    }
    if (lhs.kind == Expr::kCall) lhs.kind = Expr::kArrayRef;
    if (at(Tok::kArrow)) {
      eat();
      s.kind = Stmt::kPointerAssign;
      s.exprs.push_back(std::move(lhs));
      s.exprs.push_back(parse_expr());
    } else {
      expect(Tok::kAssign, "'='");
      s.kind = Stmt::kAssign;
      s.exprs.push_back(std::move(lhs));
      s.exprs.push_back(parse_expr());
    }
    end_stmt();
    return s;
  }

  Stmt parse_do() {
    Stmt s;
    s.line = cur().line;
    s.kind = Stmt::kDo;
    expect_kw("do");
    s.text = expect(Tok::kIdent, "loop variable").text;
    expect(Tok::kAssign, "'='");
    s.exprs.push_back(parse_expr());
    expect(Tok::kComma, "','");
    s.exprs.push_back(parse_expr());
    if (at(Tok::kComma)) {
      eat();
      s.exprs.push_back(parse_expr());
    }
    end_stmt();
    s.blocks.push_back(parse_block());
    if (is_kw("enddo")) {
      eat();
    } else {
      expect_kw("end");
      expect_kw("do");
    }
    end_stmt();
    return s;
  }

  Stmt parse_if() {
    Stmt s;
    s.line = cur().line;
    s.kind = Stmt::kIf;
    expect_kw("if");
    expect(Tok::kLParen, "(");
    s.exprs.push_back(parse_expr());
    expect(Tok::kRParen, ")");
    if (!is_kw("then")) {
      // One-line if: if (cond) <action>
      Block b;
      b.push_back(parse_stmt());
      s.blocks.push_back(std::move(b));
      return s;
    }
    eat();  // then
    end_stmt();
    s.blocks.push_back(parse_block());
    while (is_kw("elseif") || (is_kw("else") && la_kw(1, "if"))) {
      if (is_kw("elseif")) {
        eat();
      } else {
        eat();
        eat();
      }
      expect(Tok::kLParen, "(");
      s.exprs.push_back(parse_expr());
      expect(Tok::kRParen, ")");
      expect_kw("then");
      end_stmt();
      s.blocks.push_back(parse_block());
    }
    if (is_kw("else")) {
      eat();
      end_stmt();
      s.blocks.push_back(parse_block());
      s.else_present = true;
    }
    if (is_kw("endif")) {
      eat();
    } else {
      expect_kw("end");
      expect_kw("if");
    }
    end_stmt();
    return s;
  }

  // --- expressions (precedence climbing) ---
  Expr parse_expr() { return parse_or(); }

  Expr parse_or() {
    Expr e = parse_and();
    while (at(Tok::kOr)) {
      eat();
      Expr rhs = parse_and();
      e = make_bin(".or.", std::move(e), std::move(rhs));
    }
    return e;
  }
  Expr parse_and() {
    Expr e = parse_not();
    while (at(Tok::kAnd)) {
      eat();
      Expr rhs = parse_not();
      e = make_bin(".and.", std::move(e), std::move(rhs));
    }
    return e;
  }
  Expr parse_not() {
    if (at(Tok::kNot)) {
      const int line = eat().line;
      Expr e;
      e.kind = Expr::kUn;
      e.name = ".not.";
      e.line = line;
      e.args.push_back(parse_not());
      return e;
    }
    return parse_cmp();
  }
  Expr parse_cmp() {
    Expr e = parse_add();
    while (at(Tok::kLt) || at(Tok::kGt) || at(Tok::kLe) || at(Tok::kGe) ||
           at(Tok::kEq) || at(Tok::kNe)) {
      const std::string op = eat().text;
      Expr rhs = parse_add();
      e = make_bin(op, std::move(e), std::move(rhs));
    }
    return e;
  }
  Expr parse_add() {
    Expr e = parse_mul();
    while (at(Tok::kPlus) || at(Tok::kMinus)) {
      const std::string op = eat().text;
      Expr rhs = parse_mul();
      e = make_bin(op, std::move(e), std::move(rhs));
    }
    return e;
  }
  Expr parse_mul() {
    Expr e = parse_unary();
    while (at(Tok::kStar) || at(Tok::kSlash)) {
      const std::string op = eat().text;
      Expr rhs = parse_unary();
      e = make_bin(op, std::move(e), std::move(rhs));
    }
    return e;
  }
  Expr parse_unary() {
    if (at(Tok::kMinus) || at(Tok::kPlus)) {
      Expr e;
      e.kind = Expr::kUn;
      e.name = eat().text;
      e.args.push_back(parse_unary());
      return e;
    }
    return parse_power();
  }
  Expr parse_power() {
    Expr e = parse_primary();
    if (at(Tok::kPower)) {
      eat();
      Expr rhs = parse_unary();  // right associative
      e = make_bin("**", std::move(e), std::move(rhs));
    }
    return e;
  }
  Expr parse_primary() {
    Expr e;
    e.line = cur().line;
    if (at(Tok::kNumber)) {
      e.kind = Expr::kNum;
      e.name = eat().text;
      return e;
    }
    if (at(Tok::kString)) {
      e.kind = Expr::kStr;
      e.name = eat().text;
      return e;
    }
    if (at(Tok::kLParen)) {
      eat();
      e = parse_expr();
      expect(Tok::kRParen, "')'");
      return e;
    }
    if (at(Tok::kColon)) {  // bare ':' section
      eat();
      e.kind = Expr::kRange;
      return e;
    }
    if (at(Tok::kIdent)) {
      e.name = eat().text;
      if (at(Tok::kLParen)) {
        e.kind = Expr::kCall;  // classified as array ref in analysis
        eat();
        while (!at(Tok::kRParen)) {
          Expr arg = parse_expr();
          if (at(Tok::kColon)) {  // lo:hi section
            eat();
            Expr range;
            range.kind = Expr::kRange;
            range.line = arg.line;
            range.args.push_back(std::move(arg));
            if (!at(Tok::kComma) && !at(Tok::kRParen)) {
              range.args.push_back(parse_expr());
            }
            arg = std::move(range);
          }
          e.args.push_back(std::move(arg));
          if (at(Tok::kComma)) eat();
        }
        eat();
      } else {
        e.kind = Expr::kVar;
      }
      return e;
    }
    throw ParseError("unexpected token '" + cur().text + "' in expression",
                     cur().line);
  }

  static Expr make_bin(std::string op, Expr l, Expr r) {
    Expr e;
    e.kind = Expr::kBin;
    e.name = std::move(op);
    e.line = l.line;
    e.args.push_back(std::move(l));
    e.args.push_back(std::move(r));
    return e;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

ProgramUnit parse(const std::string& source) {
  Parser p(lex(source));
  return p.parse_unit();
}

}  // namespace wrf::analyzer
