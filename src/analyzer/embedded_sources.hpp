#pragma once
// Embedded mini-Fortran renditions of the paper's listings, used by the
// examples, tests, and the codee_workflow demonstration.  These are the
// actual loop shapes the paper analyzes: kernals_ks with its 20 global
// collision arrays (Listing 3), the grid-level physics loop (Listing 1),
// the isolated collision loop (Listing 6), the automatic-array
// declaration of coal_bott_new (Listing 7), and negative controls with
// real loop-carried dependencies.

#include <string>

namespace wrf::analyzer::sources {

/// module_mp_fast_sbm extract: kernals_ks filling the global cw**
/// arrays from the two pressure-level tables (Listing 3 shape).
const std::string& kernals_ks();

/// The grid-level j/k/i loop calling nucleation/condensation/collision
/// subroutines (Listing 1 shape).
const std::string& grid_loop();

/// The isolated collision loop behind the predicate array (Listing 6).
const std::string& coal_isolated_loop();

/// coal_bott_new's declaration with automatic arrays on a device
/// procedure (Listing 7 shape) — PWR025 target.
const std::string& coal_bott_decl();

/// Negative control: prefix-sum loop with a genuine loop-carried
/// dependence.
const std::string& carried_dep_loop();

/// Negative control: scalar accumulation (reduction) loop.
const std::string& reduction_loop();

/// Modernization target: missing intents and an assumed-size dummy
/// (what the paper found in onecond).
const std::string& legacy_onecond();

// --- pass-fusion kernel sources -------------------------------------
// Per-pass loop nests consumed by the fusion legality check
// (analyzer/fusion.hpp): each mirrors the field footprint and subscript
// shape of the corresponding FastSbm device pass, so the dependence
// analysis — not a hand-coded blocklist — decides which adjacent passes
// may share a kernel launch.

/// Condensation/nucleation pass: pointwise updates of tt/qv/ff plus the
/// call_coal predicate write (the onecond_loop footprint).
const std::string& cond_kernel();

/// Collision pass: predicate-gated pointwise ff update reading tt/pp
/// (the coal_bott_new_loop footprint).
const std::string& coal_kernel();

/// Sedimentation pass: vertical flux update reading ff(n,i,k+1,j) — a
/// genuine loop-carried dependence along k that must block fusion.
const std::string& sed_kernel();

/// Negative control pair: war_reader reads a(i+1,k,j) while war_writer
/// rewrites a(i,k,j) — individually parallelizable, but fusing them
/// would move the writer's store before the reader's shifted load
/// (write-after-read hazard across the fused lanes).
const std::string& war_pair();

}  // namespace wrf::analyzer::sources
