#pragma once
// Semantic model and loop dependency analysis.
//
// This is the piece of Codee the paper actually leans on: "the
// dependency analysis functionality of Codee enabled a quick
// restructuring of the collision arrays in kernals_ks by confirming the
// lack of dependencies between grid points".  Given a do-loop nest, the
// analysis classifies every variable touched inside:
//
//   * read-only            -> safe to share / map(to:)
//   * private              -> written before read each iteration
//   * write-first array    -> fully overwritten, never read:
//                             map(from:) candidate (the cw** arrays!)
//   * reduction            -> s = s + expr patterns
//   * loop-carried         -> genuine dependence; blocks parallelization
//
// Subscripts are analyzed as affine forms (c0 + var + c); anything more
// exotic is treated conservatively as a dependence.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analyzer/ast.hpp"

namespace wrf::analyzer {

/// Where a name resolves inside a procedure.
enum class SymbolScope {
  kLocal,     ///< declared in the procedure
  kArgument,  ///< dummy argument
  kGlobal,    ///< module-level (host module or use-associated)
  kLoopVar,   ///< do-loop index
  kUnknown,   ///< intrinsic / external function / undeclared
};

/// One variable's classification within an analyzed loop nest.
struct VarClass {
  enum Role {
    kReadOnly,
    kPrivate,      ///< scalar written before read in every iteration
    kWriteFirst,   ///< array fully overwritten before any read: map(from:)
    kReduction,    ///< s = s <op> ... accumulation
    kLoopCarried,  ///< dependence across iterations
    kSharedWrite,  ///< written without per-iteration disjointness proof
  };
  std::string name;
  Role role = kReadOnly;
  SymbolScope scope = SymbolScope::kUnknown;
  bool is_array = false;
  std::string reduction_op;  ///< for kReduction
  std::string reason;        ///< human-readable justification
  /// Arrays only: loop variables this array is *pointwise* over — every
  /// access subscripts the variable with a plain zero-offset affine term
  /// and never with a shifted one.  Two passes touching the same array
  /// may fuse along a collapsed loop variable only when both sides are
  /// pointwise over it (see analyzer/fusion.hpp).
  std::vector<std::string> pointwise_vars;
};

/// Result of analyzing one loop nest.
struct LoopAnalysis {
  std::vector<std::string> loop_vars;  ///< outer..inner perfect nest
  int nest_depth = 0;
  bool parallelizable = false;
  std::vector<VarClass> vars;
  std::vector<std::string> blockers;  ///< messages for carried deps

  const VarClass* find(const std::string& name) const {
    for (const auto& v : vars) {
      if (v.name == name) return &v;
    }
    return nullptr;
  }
};

/// Cross-procedure symbol knowledge for one parsed file.
class SemanticModel {
 public:
  explicit SemanticModel(const ProgramUnit& unit);

  const ProgramUnit& unit() const noexcept { return *unit_; }

  /// Find a procedure anywhere in the file (module or bare).
  const Procedure* find_procedure(const std::string& name) const;

  /// Resolve `name` inside `proc`; loop vars must be supplied by the
  /// analysis driver since they are context-dependent.
  SymbolScope resolve(const Procedure& proc, const std::string& name) const;

  /// Declaration for `name` visible in `proc` (local, arg, or global).
  const Decl* find_decl(const Procedure& proc, const std::string& name) const;

  /// Module globals visible to `proc` (containment + use association).
  std::vector<const Decl*> visible_globals(const Procedure& proc) const;

 private:
  const ProgramUnit* unit_;
  std::map<std::string, const ModuleUnit*> module_of_proc_;
};

/// Analyze the perfect do-nest rooted at `outer` inside `proc`.
LoopAnalysis analyze_loop(const SemanticModel& model, const Procedure& proc,
                          const Stmt& outer);

/// Find every outermost do statement in a procedure (analysis targets).
std::vector<const Stmt*> outer_loops(const Procedure& proc);

/// Canonical text of an expression (for diagnostics and subscript
/// comparison).
std::string expr_text(const Expr& e);

}  // namespace wrf::analyzer
