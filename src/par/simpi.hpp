#pragma once
// simpi: an MPI-like rank runtime executed on threads.
//
// The paper runs WRF with 16-256 MPI ranks, one patch per rank, with halo
// exchanges between neighbors and round-robin binding of ranks to GPUs.
// simpi reproduces that programming model inside one process: `run()`
// spawns one thread per rank, each receiving a `RankCtx` that provides
// point-to-point messaging (matched by source+tag), barriers, reductions,
// and GPU binding.  All traffic is recorded in `CommStats` so the
// performance model can price it with an alpha-beta network model
// (Perlmutter Slingshot-like constants) when reproducing Table VII, where
// the 256-core CPU run becomes communication-dominated.
//
// Messaging is request-based, like MPI's nonblocking layer: `isend`
// returns an already-complete request (eager protocol, unbounded
// buffering), `irecv` posts a receive matched by (source, tag) in posting
// order, and `test` / `wait` / `wait_all` complete requests.  The
// blocking `send` / `recv` calls are thin wrappers over it.  Time a rank
// spends blocked in `wait` is accumulated in `CommStats::wait_sec`, which
// is what lets the perf model price comms/compute overlap: halo traffic
// that is fully overlapped shows up as bytes moved but ~zero wait.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/registry.hpp"
#include "util/error.hpp"

namespace wrf::par {

/// Aggregate communication counters for one rank.
struct CommStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_recvd = 0;  ///< receives completed (observed)
  std::uint64_t bytes_recvd = 0;
  double wait_sec = 0.0;             ///< time blocked in wait/wait_all
  std::uint64_t barriers = 0;
  std::uint64_t reductions = 0;

  /// publish() contract (obs/registry.hpp): add every counter above into
  /// `reg` under wrf_comm_* names (messages/bytes split by a dir label),
  /// exactly — metric totals equal these fields.  Publishing each rank's
  /// stats accumulates like summing them first.
  void publish(obs::Registry& reg) const;
};

class Comm;  // shared state owned by run()
struct RequestState;

/// Handle to one nonblocking operation.  Copyable (handles share the
/// underlying operation); default-constructed handles are invalid.
/// Like its RankCtx, a Request must only be used from the rank thread
/// that posted it.
class Request {
 public:
  Request() = default;

  bool valid() const noexcept { return state_ != nullptr; }

  /// Nonblocking completion probe (an MPI_Test that keeps the payload).
  bool test();

  /// Block until complete.  Returns the received payload for a recv
  /// request (moved out — a second wait returns empty) and an empty
  /// vector for a send request.  Throws Error if the run was aborted by
  /// another rank's exception while waiting.
  std::vector<float> wait();

 private:
  friend class RankCtx;
  Request(Comm* comm, int owner, std::shared_ptr<RequestState> state)
      : comm_(comm), owner_(owner), state_(std::move(state)) {}

  Comm* comm_ = nullptr;
  int owner_ = -1;  ///< rank that posted the request
  std::shared_ptr<RequestState> state_;
};

/// Per-rank handle passed to the rank function.
///
/// Thread-safety: a RankCtx must only be used from its own rank thread,
/// like an MPI communicator in MPI_THREAD_FUNNELED mode.
class RankCtx {
 public:
  RankCtx(Comm& comm, int rank) : comm_(comm), rank_(rank) {}

  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Nonblocking eager send: copies `data` into the destination mailbox
  /// (or a matching posted irecv) and returns an already-complete
  /// request.  Never blocks — an eager-protocol MPI_Isend.
  Request isend(int dest, int tag, std::vector<float> data);

  /// Nonblocking receive matched by (source, tag).  Requests from the
  /// same (source, tag) match messages in posting order, messages match
  /// in send order (MPI's non-overtaking rule).
  Request irecv(int source, int tag);

  /// Wait for every request in `reqs` (any order of completion).  The
  /// payloads stay retrievable afterwards via each request's `wait()`,
  /// which then returns immediately.
  void wait_all(std::vector<Request>& reqs);

  /// Blocking-buffered send: `isend` with the request dropped.
  void send(int dest, int tag, const std::vector<float>& data);

  /// Blocking receive: `irecv(source, tag).wait()`.
  std::vector<float> recv(int source, int tag);

  /// Collective barrier over all ranks.
  void barrier();

  /// Collective sum-reduction; every rank receives the global sum.
  double allreduce_sum(double v);

  /// Collective max-reduction; every rank receives the global max.
  double allreduce_max(double v);

  /// GPU id this rank is bound to under round-robin placement of
  /// `size()` ranks onto `ngpus` devices, as in Section VII-A.
  int gpu_binding(int ngpus) const;

  /// This rank's communication counters (reading is racy only if called
  /// from another thread; rank threads read their own).
  const CommStats& stats() const;

 private:
  Comm& comm_;
  int rank_;
};

/// Result of a simpi run: per-rank stats, for the perf model.
struct RunStats {
  std::vector<CommStats> per_rank;
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;
  std::uint64_t total_messages_recvd() const;
  std::uint64_t total_bytes_recvd() const;
  double total_wait_sec() const;

  /// publish() contract: fold every rank's CommStats into `reg`
  /// (counters add, so this equals publishing the per-rank totals).
  void publish(obs::Registry& reg) const;
};

/// Spawn `nranks` threads, run `fn(ctx)` on each, join, and return the
/// communication statistics.  Exceptions thrown by rank functions are
/// captured and rethrown (the first one, by rank order) after all ranks
/// have been joined; the run is aborted so ranks blocked in wait /
/// recv / barrier are woken (and fail) instead of leaking threads.
RunStats run(int nranks, const std::function<void(RankCtx&)>& fn);

}  // namespace wrf::par
