#pragma once
// simpi: an MPI-like rank runtime executed on threads.
//
// The paper runs WRF with 16-256 MPI ranks, one patch per rank, with halo
// exchanges between neighbors and round-robin binding of ranks to GPUs.
// simpi reproduces that programming model inside one process: `run()`
// spawns one thread per rank, each receiving a `RankCtx` that provides
// point-to-point messaging (matched by source+tag), barriers, reductions,
// and GPU binding.  All traffic is recorded in `CommStats` so the
// performance model can price it with an alpha-beta network model
// (Perlmutter Slingshot-like constants) when reproducing Table VII, where
// the 256-core CPU run becomes communication-dominated.
//
// simpi is deliberately a subset of MPI: blocking send/recv with
// unbounded buffering (send never blocks), barrier, allreduce.  That is
// exactly the set WRF's halo exchange layer needs.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "util/error.hpp"

namespace wrf::par {

/// Aggregate communication counters for one rank.
struct CommStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t barriers = 0;
  std::uint64_t reductions = 0;
};

class Comm;  // shared state owned by run()

/// Per-rank handle passed to the rank function.
///
/// Thread-safety: a RankCtx must only be used from its own rank thread,
/// like an MPI communicator in MPI_THREAD_FUNNELED mode.
class RankCtx {
 public:
  RankCtx(Comm& comm, int rank) : comm_(comm), rank_(rank) {}

  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Blocking-buffered send: copies `data` into the destination mailbox
  /// and returns immediately (an eager-protocol MPI_Send).
  void send(int dest, int tag, const std::vector<float>& data);

  /// Blocking receive matched by (source, tag), in-order per pair.
  std::vector<float> recv(int source, int tag);

  /// Collective barrier over all ranks.
  void barrier();

  /// Collective sum-reduction; every rank receives the global sum.
  double allreduce_sum(double v);

  /// Collective max-reduction; every rank receives the global max.
  double allreduce_max(double v);

  /// GPU id this rank is bound to under round-robin placement of
  /// `size()` ranks onto `ngpus` devices, as in Section VII-A.
  int gpu_binding(int ngpus) const;

  /// This rank's communication counters (reading is racy only if called
  /// from another thread; rank threads read their own).
  const CommStats& stats() const;

 private:
  Comm& comm_;
  int rank_;
};

/// Result of a simpi run: per-rank stats, for the perf model.
struct RunStats {
  std::vector<CommStats> per_rank;
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;
};

/// Spawn `nranks` threads, run `fn(ctx)` on each, join, and return the
/// communication statistics.  Exceptions thrown by rank functions are
/// captured and rethrown (the first one, by rank order) after all ranks
/// have been joined, so a failing rank cannot leak threads.
RunStats run(int nranks, const std::function<void(RankCtx&)>& fn);

}  // namespace wrf::par
