#include "par/thread_pool.hpp"

#include <algorithm>

namespace wrf::par {

ThreadPool::ThreadPool(int nthreads) {
  int n = nthreads;
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 4;
  }
  workers_.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--inflight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++inflight_;
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return inflight_ == 0; });
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              const std::function<void(std::int64_t)>& fn,
                              std::int64_t chunk) {
  if (end <= begin) return;
  const std::int64_t n = end - begin;
  if (chunk <= 0) {
    chunk = std::max<std::int64_t>(1, n / (8LL * size()));
  }
  // Dynamic scheduling via a shared cursor: each worker grabs the next
  // chunk when it finishes its current one.
  auto cursor = std::make_shared<std::atomic<std::int64_t>>(begin);
  const int nworkers =
      static_cast<int>(std::min<std::int64_t>(size(), (n + chunk - 1) / chunk));
  for (int w = 0; w < nworkers; ++w) {
    submit([cursor, end, chunk, &fn] {
      for (;;) {
        const std::int64_t lo = cursor->fetch_add(chunk);
        if (lo >= end) return;
        const std::int64_t hi = std::min(end, lo + chunk);
        for (std::int64_t i = lo; i < hi; ++i) fn(i);
      }
    });
  }
  wait_idle();
}

ThreadPool& shared_pool() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace wrf::par
