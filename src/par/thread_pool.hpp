#pragma once
// Minimal blocking thread pool with a parallel_for primitive.
//
// Used in two places: (a) the gpusim device executes kernel iterations on
// the pool (the functional half of the simulated GPU), and (b) patch tiles
// are distributed over "OpenMP threads" as in WRF's shared-memory layer.
// Chunked dynamic scheduling keeps load imbalance from the cloud-cover
// conditionals from serializing the simulated kernels, the same role
// OpenMP's schedule(dynamic) plays.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wrf::par {

/// Fixed-size pool of worker threads.
class ThreadPool {
 public:
  /// Create `nthreads` workers (>=1). 0 means hardware_concurrency().
  explicit ThreadPool(int nthreads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Run fn(i) for i in [begin, end) across the pool and block until all
  /// iterations complete.  `chunk` <= 0 picks a chunk size that yields
  /// about 8 chunks per worker (dynamic-schedule flavor).
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& fn,
                    std::int64_t chunk = 0);

  /// Enqueue one task; returns immediately.  Use wait_idle() to join.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::int64_t inflight_ = 0;
  bool stop_ = false;
};

/// Process-wide pool sized to the hardware, shared by gpusim devices.
ThreadPool& shared_pool();

}  // namespace wrf::par
