#include "par/simpi.hpp"

#include <deque>
#include <exception>
#include <thread>

namespace wrf::par {

namespace {
struct Message {
  int source = 0;
  int tag = 0;
  std::vector<float> data;
};
}  // namespace

/// Shared state for one simpi run.  Mailboxes are per destination rank;
/// matching is by (source, tag) FIFO, like MPI with a single communicator.
class Comm {
 public:
  explicit Comm(int nranks)
      : nranks_(nranks), mailbox_(nranks), stats_(nranks) {}

  int size() const noexcept { return nranks_; }

  void send(int src, int dest, int tag, const std::vector<float>& data) {
    if (dest < 0 || dest >= nranks_) {
      throw Error("simpi send: destination rank " + std::to_string(dest) +
                  " out of range");
    }
    {
      std::lock_guard<std::mutex> lk(mailbox_[dest].mu);
      mailbox_[dest].queue.push_back(Message{src, tag, data});
    }
    mailbox_[dest].cv.notify_all();
    auto& st = stats_[src];
    st.messages_sent += 1;
    st.bytes_sent += data.size() * sizeof(float);
  }

  std::vector<float> recv(int me, int source, int tag) {
    if (source < 0 || source >= nranks_) {
      throw Error("simpi recv: source rank " + std::to_string(source) +
                  " out of range");
    }
    Box& box = mailbox_[me];
    std::unique_lock<std::mutex> lk(box.mu);
    for (;;) {
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (it->source == source && it->tag == tag) {
          std::vector<float> out = std::move(it->data);
          box.queue.erase(it);
          return out;
        }
      }
      box.cv.wait(lk);
    }
  }

  void barrier(int me) {
    std::unique_lock<std::mutex> lk(coll_mu_);
    const std::uint64_t gen = barrier_gen_;
    if (++barrier_count_ == nranks_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      coll_cv_.notify_all();
    } else {
      coll_cv_.wait(lk, [&] { return barrier_gen_ != gen; });
    }
    stats_[me].barriers += 1;
  }

  double allreduce(int me, double v, bool is_max) {
    std::unique_lock<std::mutex> lk(coll_mu_);
    if (red_count_ == 0) {
      red_acc_ = v;
    } else {
      red_acc_ = is_max ? (red_acc_ > v ? red_acc_ : v) : red_acc_ + v;
    }
    const std::uint64_t gen = red_gen_;
    if (++red_count_ == nranks_) {
      red_result_ = red_acc_;
      red_count_ = 0;
      ++red_gen_;
      coll_cv_.notify_all();
    } else {
      coll_cv_.wait(lk, [&] { return red_gen_ != gen; });
    }
    stats_[me].reductions += 1;
    return red_result_;
  }

  const CommStats& stats(int rank) const { return stats_[rank]; }
  std::vector<CommStats> all_stats() const { return stats_; }

 private:
  struct Box {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  int nranks_;
  std::vector<Box> mailbox_;
  std::vector<CommStats> stats_;

  std::mutex coll_mu_;
  std::condition_variable coll_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
  int red_count_ = 0;
  std::uint64_t red_gen_ = 0;
  double red_acc_ = 0.0;
  double red_result_ = 0.0;
};

int RankCtx::size() const noexcept { return comm_.size(); }

void RankCtx::send(int dest, int tag, const std::vector<float>& data) {
  comm_.send(rank_, dest, tag, data);
}

std::vector<float> RankCtx::recv(int source, int tag) {
  return comm_.recv(rank_, source, tag);
}

void RankCtx::barrier() { comm_.barrier(rank_); }

double RankCtx::allreduce_sum(double v) {
  return comm_.allreduce(rank_, v, /*is_max=*/false);
}

double RankCtx::allreduce_max(double v) {
  return comm_.allreduce(rank_, v, /*is_max=*/true);
}

int RankCtx::gpu_binding(int ngpus) const {
  if (ngpus <= 0) throw ConfigError("gpu_binding: ngpus must be positive");
  // Round-robin placement, as on Perlmutter with `--gpus-per-node` and
  // cyclic rank distribution (Section VII-A).
  return rank_ % ngpus;
}

const CommStats& RankCtx::stats() const { return comm_.stats(rank_); }

std::uint64_t RunStats::total_messages() const {
  std::uint64_t n = 0;
  for (const auto& s : per_rank) n += s.messages_sent;
  return n;
}

std::uint64_t RunStats::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& s : per_rank) n += s.bytes_sent;
  return n;
}

RunStats run(int nranks, const std::function<void(RankCtx&)>& fn) {
  if (nranks <= 0) throw ConfigError("simpi::run: nranks must be positive");
  Comm comm(nranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&comm, &fn, &errors, r] {
      RankCtx ctx(comm, r);
      try {
        fn(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  RunStats out;
  out.per_rank = comm.all_stats();
  return out;
}

}  // namespace wrf::par
