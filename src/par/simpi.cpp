#include "par/simpi.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <thread>

namespace wrf::par {

namespace {

struct Message {
  int source = 0;
  int tag = 0;
  std::vector<float> data;
};

/// Thrown into ranks woken from a blocking call after another rank
/// failed.  run() discards these in favor of the original exception.
struct AbortError : Error {
  AbortError() : Error("simpi: aborted because a peer rank failed") {}
};

using Clock = std::chrono::steady_clock;

}  // namespace

/// One posted nonblocking operation.  Guarded by the owning rank's
/// mailbox mutex: the owner polls/waits under it, and a sender may
/// complete a pending receive under it (direct delivery).
struct RequestState {
  bool is_recv = false;
  bool complete = false;
  bool counted = false;  ///< recv stats recorded by the owner's thread
  int peer = -1;
  int tag = 0;
  std::vector<float> data;
};

/// Shared state for one simpi run.  Mailboxes are per destination rank;
/// matching is by (source, tag) FIFO, like MPI with a single
/// communicator: messages match in send order, posted receives in
/// posting order.
class Comm {
 public:
  explicit Comm(int nranks)
      : nranks_(nranks), mailbox_(nranks), stats_(nranks) {}

  int size() const noexcept { return nranks_; }

  void isend(int src, int dest, int tag, std::vector<float> data) {
    if (dest < 0 || dest >= nranks_) {
      throw Error("simpi send: destination rank " + std::to_string(dest) +
                  " out of range");
    }
    const std::uint64_t bytes = data.size() * sizeof(float);
    Box& box = mailbox_[static_cast<std::size_t>(dest)];
    {
      std::lock_guard<std::mutex> lk(box.mu);
      // Direct delivery into the oldest matching posted receive, else
      // enqueue for a future irecv to claim.
      bool delivered = false;
      for (auto it = box.pending.begin(); it != box.pending.end(); ++it) {
        RequestState& st = **it;
        if (!st.complete && st.peer == src && st.tag == tag) {
          st.data = std::move(data);
          st.complete = true;
          box.pending.erase(it);
          delivered = true;
          break;
        }
      }
      if (!delivered) box.queue.push_back(Message{src, tag, std::move(data)});
    }
    box.cv.notify_all();
    auto& st = stats_[static_cast<std::size_t>(src)];
    st.messages_sent += 1;
    st.bytes_sent += bytes;
  }

  std::shared_ptr<RequestState> post_irecv(int me, int source, int tag) {
    if (source < 0 || source >= nranks_) {
      throw Error("simpi recv: source rank " + std::to_string(source) +
                  " out of range");
    }
    auto state = std::make_shared<RequestState>();
    state->is_recv = true;
    state->peer = source;
    state->tag = tag;
    Box& box = mailbox_[static_cast<std::size_t>(me)];
    std::lock_guard<std::mutex> lk(box.mu);
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (it->source == source && it->tag == tag) {
        state->data = std::move(it->data);
        state->complete = true;
        box.queue.erase(it);
        return state;
      }
    }
    box.pending.push_back(state);
    return state;
  }

  bool request_test(int owner, RequestState& st) {
    if (!st.is_recv) return true;  // eager sends complete at post time
    Box& box = mailbox_[static_cast<std::size_t>(owner)];
    std::lock_guard<std::mutex> lk(box.mu);
    if (st.complete) count_recv(owner, st);
    return st.complete;
  }

  /// Block until `st` completes; accumulates the blocked time into the
  /// owner's wait_sec.  Throws AbortError if the run is aborted first.
  void request_wait(int owner, RequestState& st) {
    if (!st.is_recv) return;
    Box& box = mailbox_[static_cast<std::size_t>(owner)];
    std::unique_lock<std::mutex> lk(box.mu);
    if (!st.complete) {
      const auto t0 = Clock::now();
      box.cv.wait(lk, [&] { return st.complete || aborted_; });
      stats_[static_cast<std::size_t>(owner)].wait_sec +=
          std::chrono::duration<double>(Clock::now() - t0).count();
      if (!st.complete) throw AbortError();
    }
    count_recv(owner, st);
  }

  void barrier(int me) {
    std::unique_lock<std::mutex> lk(coll_mu_);
    if (aborted_) throw AbortError();
    const std::uint64_t gen = barrier_gen_;
    if (++barrier_count_ == nranks_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      coll_cv_.notify_all();
    } else {
      coll_cv_.wait(lk, [&] { return barrier_gen_ != gen || aborted_; });
      if (barrier_gen_ == gen) throw AbortError();
    }
    stats_[static_cast<std::size_t>(me)].barriers += 1;
  }

  double allreduce(int me, double v, bool is_max) {
    std::unique_lock<std::mutex> lk(coll_mu_);
    if (aborted_) throw AbortError();
    if (red_count_ == 0) {
      red_acc_ = v;
    } else {
      red_acc_ = is_max ? (red_acc_ > v ? red_acc_ : v) : red_acc_ + v;
    }
    const std::uint64_t gen = red_gen_;
    if (++red_count_ == nranks_) {
      red_result_ = red_acc_;
      red_count_ = 0;
      ++red_gen_;
      coll_cv_.notify_all();
    } else {
      coll_cv_.wait(lk, [&] { return red_gen_ != gen || aborted_; });
      if (red_gen_ == gen) throw AbortError();
    }
    stats_[static_cast<std::size_t>(me)].reductions += 1;
    return red_result_;
  }

  /// Wake every blocked rank; their blocking calls throw AbortError.
  void abort() {
    aborted_.store(true);
    // Empty lock sections: a waiter either observes the flag before
    // sleeping or is woken by the notify that follows the lock.
    for (auto& box : mailbox_) {
      { std::lock_guard<std::mutex> lk(box.mu); }
      box.cv.notify_all();
    }
    { std::lock_guard<std::mutex> lk(coll_mu_); }
    coll_cv_.notify_all();
  }

  const CommStats& stats(int rank) const {
    return stats_[static_cast<std::size_t>(rank)];
  }
  std::vector<CommStats> all_stats() const { return stats_; }

 private:
  struct Box {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;                            ///< unclaimed messages
    std::deque<std::shared_ptr<RequestState>> pending;    ///< unmatched irecvs
  };

  /// Record a completed receive in the owner's stats, once, from the
  /// owner's own thread (called under the owner's box mutex at the first
  /// completion observation, so stats stay single-writer).
  void count_recv(int owner, RequestState& st) {
    if (st.counted) return;
    st.counted = true;
    auto& s = stats_[static_cast<std::size_t>(owner)];
    s.messages_recvd += 1;
    s.bytes_recvd += st.data.size() * sizeof(float);
  }

  int nranks_;
  std::vector<Box> mailbox_;
  std::vector<CommStats> stats_;
  std::atomic<bool> aborted_{false};

  std::mutex coll_mu_;
  std::condition_variable coll_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
  int red_count_ = 0;
  std::uint64_t red_gen_ = 0;
  double red_acc_ = 0.0;
  double red_result_ = 0.0;
};

bool Request::test() {
  if (!valid()) throw Error("simpi: test() on an invalid request");
  return comm_->request_test(owner_, *state_);
}

std::vector<float> Request::wait() {
  if (!valid()) throw Error("simpi: wait() on an invalid request");
  comm_->request_wait(owner_, *state_);
  return std::move(state_->data);
}

int RankCtx::size() const noexcept { return comm_.size(); }

Request RankCtx::isend(int dest, int tag, std::vector<float> data) {
  comm_.isend(rank_, dest, tag, std::move(data));
  // Eager protocol: the payload is already buffered (or delivered), so
  // the request is born complete.
  auto state = std::make_shared<RequestState>();
  state->is_recv = false;
  state->complete = true;
  state->peer = dest;
  state->tag = tag;
  return Request(&comm_, rank_, std::move(state));
}

Request RankCtx::irecv(int source, int tag) {
  return Request(&comm_, rank_, comm_.post_irecv(rank_, source, tag));
}

void RankCtx::wait_all(std::vector<Request>& reqs) {
  for (auto& r : reqs) {
    if (r.valid()) comm_.request_wait(rank_, *r.state_);
  }
}

void RankCtx::send(int dest, int tag, const std::vector<float>& data) {
  comm_.isend(rank_, dest, tag, data);
}

std::vector<float> RankCtx::recv(int source, int tag) {
  return irecv(source, tag).wait();
}

void RankCtx::barrier() { comm_.barrier(rank_); }

double RankCtx::allreduce_sum(double v) {
  return comm_.allreduce(rank_, v, /*is_max=*/false);
}

double RankCtx::allreduce_max(double v) {
  return comm_.allreduce(rank_, v, /*is_max=*/true);
}

int RankCtx::gpu_binding(int ngpus) const {
  if (ngpus <= 0) throw ConfigError("gpu_binding: ngpus must be positive");
  // Round-robin placement, as on Perlmutter with `--gpus-per-node` and
  // cyclic rank distribution (Section VII-A).
  return rank_ % ngpus;
}

const CommStats& RankCtx::stats() const { return comm_.stats(rank_); }

std::uint64_t RunStats::total_messages() const {
  std::uint64_t n = 0;
  for (const auto& s : per_rank) n += s.messages_sent;
  return n;
}

std::uint64_t RunStats::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& s : per_rank) n += s.bytes_sent;
  return n;
}

std::uint64_t RunStats::total_messages_recvd() const {
  std::uint64_t n = 0;
  for (const auto& s : per_rank) n += s.messages_recvd;
  return n;
}

std::uint64_t RunStats::total_bytes_recvd() const {
  std::uint64_t n = 0;
  for (const auto& s : per_rank) n += s.bytes_recvd;
  return n;
}

double RunStats::total_wait_sec() const {
  double t = 0.0;
  for (const auto& s : per_rank) t += s.wait_sec;
  return t;
}

void CommStats::publish(obs::Registry& reg) const {
  reg.counter("wrf_comm_messages_total",
              static_cast<double>(messages_sent), {{"dir", "send"}});
  reg.counter("wrf_comm_messages_total",
              static_cast<double>(messages_recvd), {{"dir", "recv"}});
  reg.counter("wrf_comm_bytes_total", static_cast<double>(bytes_sent),
              {{"dir", "send"}});
  reg.counter("wrf_comm_bytes_total", static_cast<double>(bytes_recvd),
              {{"dir", "recv"}});
  reg.counter("wrf_comm_wait_seconds_total", wait_sec);
  reg.counter("wrf_comm_barriers_total", static_cast<double>(barriers));
  reg.counter("wrf_comm_reductions_total",
              static_cast<double>(reductions));
}

void RunStats::publish(obs::Registry& reg) const {
  for (const auto& s : per_rank) s.publish(reg);
}

RunStats run(int nranks, const std::function<void(RankCtx&)>& fn) {
  if (nranks <= 0) throw ConfigError("simpi::run: nranks must be positive");
  Comm comm(nranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&comm, &fn, &errors, r] {
      RankCtx ctx(comm, r);
      try {
        fn(ctx);
      } catch (const AbortError&) {
        // Secondary failure: the rank whose exception triggered the
        // abort already recorded the original error.
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        comm.abort();  // wake peers blocked on this rank — no leaked threads
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  RunStats out;
  out.per_rank = comm.all_stats();
  return out;
}

}  // namespace wrf::par
