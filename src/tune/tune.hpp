#pragma once
// The `tune=` knob: how a run picks its performance knobs.
//
// Kept free of model/ includes so model::RunConfig can embed a TuneSpec
// the same way it embeds obs::ObsConfig; the heavy machinery (knob
// strings, the search space, artifacts, the tuner itself) lives in the
// sibling headers, which depend on model/config.hpp.

#include <string>

namespace wrf::tune {

enum class TuneMode : int {
  kOff = 0,   ///< run exactly the knobs the config carries (default)
  kAuto = 1,  ///< apply kDefaultArtifactPath if present; no-op otherwise
  kFile = 2,  ///< load a named tuned.json; missing/broken file is an error
};

const char* tune_mode_name(TuneMode m) noexcept;

/// Where tune=auto looks for an artifact (relative to the working
/// directory, like every other default output path in this tree).
inline constexpr const char* kDefaultArtifactPath = "tuned.json";

/// The parsed `tune=` knob.  Applying a tuned entry only ever rewrites
/// the performance-neutral knobs (exec/halo/sed/res/fuse) — physics
/// selections (version, phys, grid, dt) are part of the *shape* an
/// entry is keyed by, so a tuned run is bitwise identical to the same
/// config with the knobs set explicitly (asserted in tests/test_tune.cpp).
struct TuneSpec {
  TuneMode mode = TuneMode::kOff;
  std::string path;  ///< kFile: the artifact to load; empty otherwise

  bool off() const noexcept { return mode == TuneMode::kOff; }

  /// The artifact path this spec resolves to ("" when off).
  std::string artifact_path() const;

  /// Parse "off" | "auto" | "file:<path>"; throws ConfigError on
  /// anything else (unknown mode, empty file path, path on off/auto).
  static TuneSpec parse(const std::string& s);
  std::string describe() const;
};

/// Scan argv for "tune=..."; absent means off.  Shared by the examples
/// and benches like exec::exec_from_args.
TuneSpec tune_from_args(int argc, char** argv);

}  // namespace wrf::tune
