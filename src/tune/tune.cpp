#include "tune/tune.hpp"

#include "util/error.hpp"

namespace wrf::tune {

const char* tune_mode_name(TuneMode m) noexcept {
  switch (m) {
    case TuneMode::kOff: return "off";
    case TuneMode::kAuto: return "auto";
    case TuneMode::kFile: return "file";
  }
  return "?";
}

std::string TuneSpec::artifact_path() const {
  switch (mode) {
    case TuneMode::kOff: return "";
    case TuneMode::kAuto: return kDefaultArtifactPath;
    case TuneMode::kFile: return path;
  }
  return "";
}

TuneSpec TuneSpec::parse(const std::string& s) {
  TuneSpec spec;
  if (s == "off") return spec;
  if (s == "auto") {
    spec.mode = TuneMode::kAuto;
    return spec;
  }
  const std::string file_prefix = "file:";
  if (s.rfind(file_prefix, 0) == 0) {
    spec.mode = TuneMode::kFile;
    spec.path = s.substr(file_prefix.size());
    if (spec.path.empty()) {
      throw ConfigError("TuneSpec: empty path in tune='" + s + "'");
    }
    return spec;
  }
  throw ConfigError("TuneSpec: unknown tune mode '" + s +
                    "' (want off | auto | file:<path>)");
}

std::string TuneSpec::describe() const {
  if (mode == TuneMode::kFile) return "file:" + path;
  return tune_mode_name(mode);
}

TuneSpec tune_from_args(int argc, char** argv) {
  const std::string prefix = "tune=";
  for (int a = 1; a < argc; ++a) {
    const std::string s = argv[a];
    if (s.rfind(prefix, 0) == 0) {
      return TuneSpec::parse(s.substr(prefix.size()));
    }
  }
  return TuneSpec{};
}

}  // namespace wrf::tune
