#pragma once
// The tunable knob subset and the legal search space over it.
//
// A KnobSet is the slice of model::RunConfig the tuner may touch: the
// five performance-neutral knobs (exec/halo/sed/res/fuse, including
// their numeric sub-dimensions threads:N / hetero:N / block:N).  Every
// one of them is covered by a bitwise-equivalence gate elsewhere in the
// tree (tests/test_exec.cpp, test_halo_overlap.cpp,
// test_fsbm_properties.cpp, test_fusion.cpp), which is precisely what
// makes them tunable: swapping them changes speed, never physics.
// Physics selections — version, phys, grid, dt, nkr — are deliberately
// NOT dimensions; they are part of the shape_key a tuned entry is
// filed under.
//
// The describe() <-> parse() round trip on KnobSet is the loadability
// contract of tuned.json artifacts (tests/test_tune.cpp): whatever a
// tuner run renders, a later run must re-parse to the identical knobs.

#include <string>
#include <vector>

#include "model/config.hpp"

namespace wrf::tune {

/// The performance-neutral knobs of one configuration point.
struct KnobSet {
  exec::ExecConfig exec;
  dyn::HaloMode halo = dyn::HaloMode::kSync;
  fsbm::SedDispatch sed;
  mem::ResidencyMode res = mem::ResidencyMode::kStep;
  exec::FuseMode fuse = exec::FuseMode::kOff;

  /// Extract the tunable slice of a config.
  static KnobSet of(const model::RunConfig& cfg);

  /// Write this slice back onto a config (nothing else is touched).
  void apply_to(model::RunConfig& cfg) const;

  /// Render as the knob-string syntax the artifact stores:
  ///   "exec=threads:4 halo=sync sed=block:8 res=persist fuse=auto"
  std::string describe() const;

  /// Parse a knob string: whitespace-separated key=value tokens, keys
  /// from {exec, halo, sed, res, fuse}, each at most once; values go
  /// through the knobs' own parsers.  Missing keys keep defaults.
  /// Throws ConfigError on unknown keys, duplicates, or bad values.
  static KnobSet parse(const std::string& s);

  bool operator==(const KnobSet& o) const noexcept;
};

/// What a tuned entry is keyed by: everything that defines the workload
/// but none of the tunable knobs.  Two configs with equal shape keys
/// want the same winner on the same machine.
std::string shape_key(const model::RunConfig& cfg);

/// The legal knob grid for one base config on one machine, enumerated
/// with the validity constraints applied up front instead of filtered
/// out later:
///   - exec=device / exec=hetero:N, res=persist, and fuse=auto only
///     appear for offloaded versions (they are inert or pure overhead
///     for the host-only chain);
///   - halo=overlap only appears for multi-rank configs (single-rank
///     runs have no exchange to overlap);
///   - thread counts are derived from the machine's hardware
///     concurrency (plus an oversubscribed point — on a busy host the
///     measured rung, not the enumeration, decides).
/// The base config's own KnobSet is always point [0], so the tuner can
/// never return something worse than "untuned" without having measured
/// it.
struct SearchSpace {
  std::vector<KnobSet> points;

  static SearchSpace enumerate(const model::RunConfig& base, int hw_threads);

  bool contains(const KnobSet& k) const noexcept;
};

}  // namespace wrf::tune
