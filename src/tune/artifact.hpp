#pragma once
// The tuned.json artifact: what a tuner run leaves behind and what the
// `tune=` knob loads back.
//
// Versioned schema (kArtifactSchemaVersion).  One artifact holds tuned
// entries for any number of shapes, each keyed by tune::shape_key and
// carrying the winning knob string, the winner's measured statistics on
// the deciding rung (min/median/CV, reps, steps), the untuned point's
// throughput for reference, the full successive-halving ladder, and the
// machine fingerprint the numbers were measured on.  Loading is strict:
// a missing file (under tune=file:), a schema mismatch, or malformed
// JSON throws; an artifact that simply has no entry for a config's
// shape applies nothing (the artifact is a cache — an absent entry
// means "not tuned yet", not an error).

#include <cstdint>
#include <string>
#include <vector>

#include "model/config.hpp"
#include "tune/measure.hpp"
#include "tune/space.hpp"

namespace wrf::tune {

inline constexpr int kArtifactSchemaVersion = 1;

/// What the numbers were measured on.  Trajectory points and artifacts
/// carry this so entries from different hosts are never conflated.
struct MachineFingerprint {
  int hw_threads = 0;
  std::string device;  ///< gpu::DeviceSpec::name of the modeled device

  bool operator==(const MachineFingerprint& o) const noexcept {
    return hw_threads == o.hw_threads && device == o.device;
  }
};

/// Fingerprint of this process's machine (hardware concurrency) and the
/// given device model.
MachineFingerprint local_fingerprint(const std::string& device_name);

/// One configuration's measurement inside one rung.
struct RungPoint {
  std::string knobs;
  RepAggregate wall;               ///< whole-run seconds at `Rung::steps`
  double cellsteps_per_s = 0.0;    ///< cells * steps / wall.min
  double prior_ms_per_step = 0.0;  ///< perfmodel prior (rung 0 only)
  bool survived = false;           ///< advanced to the next rung
};

/// One successive-halving rung: every surviving config measured at the
/// same step count under the same CV policy.
struct Rung {
  int rung = 0;
  int steps = 0;
  double target_cv = 0.0;
  std::vector<RungPoint> points;
};

/// The tuned result for one shape.
struct TunedEntry {
  std::string shape;  ///< tune::shape_key of the configs this applies to
  std::string knobs;  ///< winning KnobSet::describe() string
  int steps = 0;      ///< deciding rung's per-run step count
  RepAggregate wall;  ///< winner's aggregate on the deciding rung
  double cellsteps_per_s = 0.0;
  /// The untuned (base-config) point's throughput on the last rung it
  /// was measured in — the "what did tuning buy" reference.
  double baseline_cellsteps_per_s = 0.0;
  std::vector<Rung> ladder;
};

struct Artifact {
  int schema_version = kArtifactSchemaVersion;
  MachineFingerprint machine;
  std::vector<TunedEntry> entries;

  /// Entry for a shape key, or nullptr.
  const TunedEntry* find(const std::string& shape) const noexcept;
  /// Replace the same-shape entry or append.
  void upsert(TunedEntry entry);
};

/// Write the artifact as JSON.  Throws IoError on failure.
void write_artifact(const std::string& path, const Artifact& artifact);

/// Load and validate an artifact.  Throws IoError when the file cannot
/// be read, ConfigError on malformed JSON or a schema-version mismatch.
Artifact load_artifact(const std::string& path);

/// Apply the artifact entry matching `cfg`'s shape: parse its knob
/// string and overwrite the tunable knobs.  Returns false (config
/// untouched) when no entry matches.
bool apply_artifact(model::RunConfig& cfg, const Artifact& artifact);

/// Resolve cfg.tune in place: off is a no-op; file:<path> loads the
/// artifact (errors propagate) and applies the matching entry; auto
/// applies kDefaultArtifactPath if the file exists (a missing file is a
/// no-op, a malformed one still throws).  The spec itself is left on
/// the config — only the tunable knobs change, so the run is bitwise
/// identical to the same knobs set explicitly.  Returns true iff an
/// entry was applied.  model::run_simulation / run_single call this at
/// entry, making the knob effective for every caller (examples,
/// benches, service lanes).
bool apply(model::RunConfig& cfg);

}  // namespace wrf::tune
