#pragma once
// The autotuner: perfmodel prior + measured successive halving.
//
// One Tuner::tune(base) call answers "which performance-neutral knobs
// (exec/halo/sed/res/fuse) make this shape fastest on this machine?":
//
//   1. PROBE.  One short run of the base config with canonical knobs
//      (sed=column, res=step, fuse=off — the unamortized work profile)
//      distills the counted work — FLOPs per pass, sedimentation
//      lookups, transfer bytes, halo traffic, launches — into a
//      perfmodel::KnobWork.  Work counts, not wall time: they are
//      knob-invariant by the bitwise-equivalence contracts.
//
//   2. PRIOR.  perfmodel::knob_prior_step_seconds prices every point of
//      the enumerated SearchSpace in microseconds of model evaluation.
//      The cheapest `prior_keep` advance (the base config's own knobs
//      always do — the tuner never declares a winner it has not
//      measured the baseline against).
//
//   3. CORRECTOR.  Successive halving over `rung_steps`: every survivor
//      is measured at rung r's step count with adaptive repetitions
//      (tune::measure_reps — repeat until the wall-time CV drops under
//      MeasurePolicy::target_cv or the rep cap), then the faster half
//      (by min wall) advances to the next, longer rung.  The winner is
//      the argmin on the final rung; the full ladder is recorded in the
//      artifact so "why did X lose" is answerable after the fact.
//
// Measurement runs force obs=off and tune=off (no recursion, no
// exporter overhead); physics is untouched by construction — only
// KnobSet dimensions are ever varied.

#include "model/driver.hpp"
#include "perfmodel/knobprior.hpp"
#include "tune/artifact.hpp"
#include "tune/measure.hpp"
#include "tune/space.hpp"

namespace wrf::tune {

struct TunerOptions {
  /// Search-space points advanced to the first measured rung (the
  /// perfmodel prior prunes the rest unmeasured).
  int prior_keep = 12;
  /// Per-run step counts of the successive-halving rungs, shortest
  /// first.  The last entry is the deciding rung.
  std::vector<int> rung_steps = {1, 2, 4};
  /// Adaptive repetition policy applied at every rung.
  MeasurePolicy policy;
  /// Steps in the work-profile probe run.
  int probe_steps = 1;
};

/// Everything one tuning run produced.
struct TuneReport {
  model::RunConfig base;      ///< the config that was tuned (tune/obs off)
  model::RunConfig winner;    ///< base with the winning knobs applied
  TunedEntry entry;           ///< artifact entry (winner + ladder)
  Artifact artifact;          ///< machine fingerprint + [entry]
  perfmodel::KnobWork work;   ///< the probe's distilled work profile
  int space_size = 0;         ///< enumerated points before pruning
  int measured_points = 0;    ///< points that reached any rung
  int measured_runs = 0;      ///< total timed runs across all rungs
};

class Tuner {
 public:
  explicit Tuner(TunerOptions opts = {});

  /// Tune one config's shape.  Throws ConfigError on an invalid base.
  TuneReport tune(const model::RunConfig& base) const;

  /// The probe step alone: run `base` briefly (canonical knobs) and
  /// distill the work profile the prior prices.  Exposed for tests.
  perfmodel::KnobWork probe(const model::RunConfig& base) const;

  const TunerOptions& options() const noexcept { return opts_; }

 private:
  TunerOptions opts_;
};

}  // namespace wrf::tune
