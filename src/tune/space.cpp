#include "tune/space.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace wrf::tune {

KnobSet KnobSet::of(const model::RunConfig& cfg) {
  KnobSet k;
  k.exec = cfg.exec;
  k.halo = cfg.halo_mode;
  k.sed = cfg.sed;
  k.res = cfg.res;
  k.fuse = cfg.fuse;
  return k;
}

void KnobSet::apply_to(model::RunConfig& cfg) const {
  cfg.exec = exec;
  cfg.halo_mode = halo;
  cfg.sed = sed;
  cfg.res = res;
  cfg.fuse = fuse;
}

std::string KnobSet::describe() const {
  std::string out = "exec=" + exec.describe();
  out += " halo=";
  out += dyn::halo_mode_name(halo);
  out += " sed=" + sed.describe();
  out += " res=";
  out += mem::residency_name(res);
  out += " fuse=";
  out += exec::fuse_name(fuse);
  return out;
}

KnobSet KnobSet::parse(const std::string& s) {
  KnobSet k;
  bool seen[5] = {false, false, false, false, false};
  std::istringstream in(s);
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("KnobSet: token '" + token +
                        "' is not key=value in '" + s + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string val = token.substr(eq + 1);
    int which = -1;
    if (key == "exec") {
      which = 0;
      k.exec = exec::ExecConfig::parse(val);
    } else if (key == "halo") {
      which = 1;
      k.halo = dyn::parse_halo_mode(val);
    } else if (key == "sed") {
      which = 2;
      k.sed = fsbm::SedDispatch::parse(val);
    } else if (key == "res") {
      which = 3;
      k.res = mem::parse_residency(val);
    } else if (key == "fuse") {
      which = 4;
      k.fuse = exec::parse_fuse(val);
    } else {
      throw ConfigError("KnobSet: unknown knob '" + key + "' in '" + s +
                        "' (tunable knobs: exec halo sed res fuse)");
    }
    if (seen[which]) {
      throw ConfigError("KnobSet: duplicate knob '" + key + "' in '" + s +
                        "'");
    }
    seen[which] = true;
  }
  return k;
}

bool KnobSet::operator==(const KnobSet& o) const noexcept {
  return exec.kind == o.exec.kind && exec.nthreads == o.exec.nthreads &&
         halo == o.halo && sed.kind == o.sed.kind &&
         (sed.kind == fsbm::SedDispatch::Kind::kColumn ||
          sed.block == o.sed.block) &&
         res == o.res && fuse == o.fuse;
}

std::string shape_key(const model::RunConfig& cfg) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "grid %dx%dx%d nkr=%d ranks=%dx%d version=%s phys=%s",
                cfg.nx, cfg.ny, cfg.nz, cfg.nkr, cfg.npx, cfg.npy,
                fsbm::version_name(cfg.version), fsbm::phys_name(cfg.phys));
  return buf;
}

SearchSpace SearchSpace::enumerate(const model::RunConfig& base,
                                   int hw_threads) {
  const bool offloaded = base.offloaded();
  const bool multi_rank = base.nranks() > 1;
  if (hw_threads < 1) hw_threads = 1;

  // Candidate values per dimension, base-config validity applied here.
  std::vector<exec::ExecConfig> execs;
  {
    exec::ExecConfig e;
    execs.push_back(e);  // serial
    // Thread counts: hardware width, half-width when distinct, and one
    // oversubscribed point (2 on a 1-core host) — the measured rungs
    // decide whether oversubscription pays on this machine.
    std::vector<int> counts;
    counts.push_back(std::max(hw_threads, 2));
    if (hw_threads >= 4) counts.push_back(hw_threads / 2);
    for (const int t : counts) {
      e.kind = exec::ExecKind::kThreads;
      e.nthreads = t;
      execs.push_back(e);
    }
    if (offloaded) {
      e.kind = exec::ExecKind::kDevice;
      e.nthreads = 0;
      execs.push_back(e);
      e.kind = exec::ExecKind::kHetero;
      e.nthreads = std::max(hw_threads, 2);
      execs.push_back(e);
    }
  }

  std::vector<fsbm::SedDispatch> seds;
  {
    fsbm::SedDispatch sd;
    seds.push_back(sd);  // column oracle
    for (const int n : {8, 32}) {
      sd.kind = fsbm::SedDispatch::Kind::kBlock;
      sd.block = n;
      seds.push_back(sd);
    }
  }

  std::vector<mem::ResidencyMode> reses{mem::ResidencyMode::kStep};
  if (offloaded) reses.push_back(mem::ResidencyMode::kPersist);

  std::vector<dyn::HaloMode> halos{dyn::HaloMode::kSync};
  if (multi_rank) halos.push_back(dyn::HaloMode::kOverlap);

  std::vector<exec::FuseMode> fuses{exec::FuseMode::kOff};
  if (offloaded) fuses.push_back(exec::FuseMode::kAuto);

  SearchSpace space;
  // The untuned point always leads: a tuner that prunes everything
  // still has a measured baseline, and the winner can only displace it
  // by out-measuring it.
  space.points.push_back(KnobSet::of(base));
  for (const auto& e : execs) {
    for (const auto& h : halos) {
      for (const auto& sd : seds) {
        for (const auto& r : reses) {
          for (const auto& f : fuses) {
            KnobSet k;
            k.exec = e;
            k.halo = h;
            k.sed = sd;
            k.res = r;
            k.fuse = f;
            if (!space.contains(k)) space.points.push_back(k);
          }
        }
      }
    }
  }
  return space;
}

bool SearchSpace::contains(const KnobSet& k) const noexcept {
  return std::find(points.begin(), points.end(), k) != points.end();
}

}  // namespace wrf::tune
