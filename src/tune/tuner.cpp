#include "tune/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <thread>
#include <utility>

#include "prof/prof.hpp"
#include "util/error.hpp"

namespace wrf::tune {
namespace {

// Priced cost of one sedimentation terminal-velocity table lookup (and
// one CFL correction evaluation): a short interpolation, not a flop —
// expressed in flop-equivalents so the prior can fold it into the host
// compute term.  Ordering-only, like every prior constant.
constexpr double kFlopsPerSedLookup = 16.0;

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

/// Run `cfg` once and return the run result (single-rank runs skip the
/// simpi layer, matching how the benches measure).
model::RunResult timed_run(const model::RunConfig& cfg) {
  prof::Profiler prof;
  return cfg.nranks() > 1 ? model::run_simulation(cfg, prof)
                          : model::run_single(cfg, prof);
}

/// The measurement config for one knob point: base with the knobs
/// applied, `steps` steps, observability and tuning forced off.
model::RunConfig measured_config(const model::RunConfig& base,
                                 const KnobSet& k, int steps) {
  model::RunConfig cfg = base;
  k.apply_to(cfg);
  cfg.nsteps = std::max(steps, 1);
  cfg.obs = obs::ObsConfig{};
  cfg.tune = TuneSpec{};
  return cfg;
}

}  // namespace

Tuner::Tuner(TunerOptions opts) : opts_(std::move(opts)) {
  if (opts_.rung_steps.empty()) opts_.rung_steps = {1};
  if (opts_.prior_keep < 1) opts_.prior_keep = 1;
  if (opts_.probe_steps < 1) opts_.probe_steps = 1;
}

perfmodel::KnobWork Tuner::probe(const model::RunConfig& base) const {
  // Canonical knobs for work counting: the unamortized sed oracle, full
  // per-step transfer traffic, one launch per pass.  All of these are
  // bitwise-neutral, so the counted physics work is the base config's.
  model::RunConfig cfg = base;
  cfg.sed = fsbm::SedDispatch{};               // column
  cfg.res = mem::ResidencyMode::kStep;
  cfg.fuse = exec::FuseMode::kOff;
  cfg.halo_mode = dyn::HaloMode::kSync;
  cfg.nsteps = opts_.probe_steps;
  cfg.obs = obs::ObsConfig{};
  cfg.tune = TuneSpec{};
  const model::RunResult r = timed_run(cfg);

  const double nranks = static_cast<double>(base.nranks());
  const double steps = static_cast<double>(opts_.probe_steps);
  const double rank_steps = nranks * steps;
  const double domain_cells = static_cast<double>(base.nx) * base.ny * base.nz;

  perfmodel::KnobWork w;
  w.cells = domain_cells / nranks;
  w.offloaded = base.offloaded();
  w.nranks = base.nranks();
  const fsbm::FsbmStats& f = r.totals.fsbm;
  w.coal_flops = f.coal_flops / rank_steps;
  w.cond_nucl_flops = (f.cond_flops + f.nucl_flops + f.bulk_flops) / rank_steps;
  w.sed_flops = f.sed_flops / rank_steps;
  w.adv_flops =
      (r.totals.dyn.tend.flops + r.totals.dyn.update.flops) / rank_steps;
  w.sed_lookup_flops =
      static_cast<double>(f.sed_tv_lookups + f.sed_corr_evals) *
      kFlopsPerSedLookup / rank_steps;
  w.step_h2d_bytes = static_cast<double>(f.h2d_bytes) / rank_steps;
  w.step_d2h_bytes = static_cast<double>(f.d2h_bytes) / rank_steps;
  w.kernel_launches = static_cast<double>(f.kernel_launches) / rank_steps;
  w.halo_bytes = static_cast<double>(r.totals.halo_bytes) / rank_steps;
  w.halo_messages =
      static_cast<double>(r.comm.total_messages()) / rank_steps;
  const double cell_steps = domain_cells * steps;
  if (cell_steps > 0 && f.cells_coal > 0) {
    w.coal_active_fraction = static_cast<double>(f.cells_coal) / cell_steps;
  }
  return w;
}

TuneReport Tuner::tune(const model::RunConfig& base) const {
  base.validate();

  TuneReport report;
  report.base = base;
  report.base.obs = obs::ObsConfig{};
  report.base.tune = TuneSpec{};

  const int hw = hardware_threads();
  report.work = probe(report.base);

  const SearchSpace space = SearchSpace::enumerate(report.base, hw);
  report.space_size = static_cast<int>(space.points.size());

  // Prior: price every point, advance the cheapest prior_keep.  The
  // base point (index 0) always advances — a pruned baseline would make
  // "tuned vs untuned" unmeasured.
  const perfmodel::CpuSpec cpu = perfmodel::CpuSpec::milan();
  const perfmodel::NetworkSpec net = perfmodel::NetworkSpec::slingshot();
  std::vector<double> prior_s(space.points.size(), 0.0);
  for (std::size_t i = 0; i < space.points.size(); ++i) {
    const KnobSet& k = space.points[i];
    prior_s[i] = perfmodel::knob_prior_step_seconds(
        report.work, k.exec, k.halo, k.sed, k.res, k.fuse, cpu, net,
        report.base.device_spec, hw);
  }
  std::vector<std::size_t> order(space.points.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return prior_s[a] < prior_s[b];
  });
  std::vector<std::size_t> alive;
  for (const std::size_t i : order) {
    if (static_cast<int>(alive.size()) >= opts_.prior_keep) break;
    alive.push_back(i);
  }
  if (std::find(alive.begin(), alive.end(), std::size_t{0}) == alive.end()) {
    alive.push_back(0);
  }
  report.measured_points = static_cast<int>(alive.size());

  // Corrector: successive halving over the rung ladder.
  const std::string base_knobs = KnobSet::of(report.base).describe();
  double baseline_cellsteps = 0.0;
  const double domain_cells =
      static_cast<double>(report.base.nx) * report.base.ny * report.base.nz;

  struct Measured {
    std::size_t point;
    RepAggregate wall;
  };
  std::vector<Measured> last_rung;
  for (std::size_t r = 0; r < opts_.rung_steps.size(); ++r) {
    const int steps = std::max(opts_.rung_steps[r], 1);
    Rung rung;
    rung.rung = static_cast<int>(r);
    rung.steps = steps;
    rung.target_cv = opts_.policy.target_cv;

    last_rung.clear();
    for (const std::size_t i : alive) {
      const model::RunConfig cfg =
          measured_config(report.base, space.points[i], steps);
      const RepAggregate wall = measure_reps(opts_.policy, [&cfg] {
        return timed_run(cfg).wall_sec;
      });
      report.measured_runs += wall.reps;

      RungPoint pt;
      pt.knobs = space.points[i].describe();
      pt.wall = wall;
      pt.cellsteps_per_s =
          wall.min > 0 ? domain_cells * steps / wall.min : 0.0;
      pt.prior_ms_per_step = r == 0 ? prior_s[i] * 1e3 : 0.0;
      if (pt.knobs == base_knobs) baseline_cellsteps = pt.cellsteps_per_s;
      rung.points.push_back(std::move(pt));
      last_rung.push_back(Measured{i, wall});
    }

    // Keep the faster half (by min wall); the last rung keeps one.
    const bool final_rung = r + 1 == opts_.rung_steps.size();
    const std::size_t keep =
        final_rung ? 1
                   : std::max<std::size_t>(1, (last_rung.size() + 1) / 2);
    std::vector<std::size_t> idx(last_rung.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a,
                                                 std::size_t b) {
      return last_rung[a].wall.min < last_rung[b].wall.min;
    });
    std::vector<std::size_t> next;
    for (std::size_t j = 0; j < keep && j < idx.size(); ++j) {
      rung.points[idx[j]].survived = true;
      next.push_back(last_rung[idx[j]].point);
    }
    report.entry.ladder.push_back(std::move(rung));
    alive = std::move(next);
  }

  // The deciding rung's survivor is the winner.
  const std::size_t winner_idx = alive.front();
  const Rung& deciding = report.entry.ladder.back();
  const RungPoint* winner_pt = nullptr;
  for (const RungPoint& pt : deciding.points) {
    if (pt.survived) {
      winner_pt = &pt;
      break;
    }
  }
  report.entry.shape = shape_key(report.base);
  report.entry.knobs = space.points[winner_idx].describe();
  report.entry.steps = deciding.steps;
  if (winner_pt != nullptr) {
    report.entry.wall = winner_pt->wall;
    report.entry.cellsteps_per_s = winner_pt->cellsteps_per_s;
  }
  report.entry.baseline_cellsteps_per_s = baseline_cellsteps;

  report.winner = report.base;
  space.points[winner_idx].apply_to(report.winner);

  report.artifact.machine =
      local_fingerprint(report.base.device_spec.name);
  report.artifact.upsert(report.entry);
  return report;
}

}  // namespace wrf::tune
