#include "tune/artifact.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "util/error.hpp"

namespace wrf::tune {

MachineFingerprint local_fingerprint(const std::string& device_name) {
  MachineFingerprint m;
  m.hw_threads = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  m.device = device_name;
  return m;
}

const TunedEntry* Artifact::find(const std::string& shape) const noexcept {
  for (const TunedEntry& e : entries) {
    if (e.shape == shape) return &e;
  }
  return nullptr;
}

void Artifact::upsert(TunedEntry entry) {
  for (TunedEntry& e : entries) {
    if (e.shape == entry.shape) {
      e = std::move(entry);
      return;
    }
  }
  entries.push_back(std::move(entry));
}

// ------------------------------------------------------------- writing

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

void write_aggregate_fields(std::ostream& os, const RepAggregate& a) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"wall_min_s\": %.6f, \"wall_median_s\": %.6f, "
                "\"wall_cv\": %.4f, \"reps\": %d",
                a.min, a.median, a.cv, a.reps);
  os << buf;
}

}  // namespace

void write_artifact(const std::string& path, const Artifact& artifact) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema_version\": " << artifact.schema_version << ",\n";
  os << "  \"machine\": {\"hw_threads\": " << artifact.machine.hw_threads
     << ", \"device\": \"" << json_escape(artifact.machine.device)
     << "\"},\n";
  os << "  \"entries\": [\n";
  for (std::size_t n = 0; n < artifact.entries.size(); ++n) {
    const TunedEntry& e = artifact.entries[n];
    os << "    {\n";
    os << "      \"shape\": \"" << json_escape(e.shape) << "\",\n";
    os << "      \"knobs\": \"" << json_escape(e.knobs) << "\",\n";
    os << "      \"steps\": " << e.steps << ",\n      ";
    write_aggregate_fields(os, e.wall);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  ",\n      \"cellsteps_per_s\": %.1f,\n"
                  "      \"baseline_cellsteps_per_s\": %.1f,\n",
                  e.cellsteps_per_s, e.baseline_cellsteps_per_s);
    os << buf;
    os << "      \"ladder\": [\n";
    for (std::size_t r = 0; r < e.ladder.size(); ++r) {
      const Rung& rung = e.ladder[r];
      std::snprintf(buf, sizeof(buf),
                    "        {\"rung\": %d, \"steps\": %d, "
                    "\"target_cv\": %.3f, \"points\": [\n",
                    rung.rung, rung.steps, rung.target_cv);
      os << buf;
      for (std::size_t p = 0; p < rung.points.size(); ++p) {
        const RungPoint& pt = rung.points[p];
        os << "          {\"knobs\": \"" << json_escape(pt.knobs)
           << "\", ";
        write_aggregate_fields(os, pt.wall);
        std::snprintf(buf, sizeof(buf),
                      ", \"cellsteps_per_s\": %.1f, "
                      "\"prior_ms_per_step\": %.4f, \"survived\": %s}",
                      pt.cellsteps_per_s, pt.prior_ms_per_step,
                      pt.survived ? "true" : "false");
        os << buf << (p + 1 < rung.points.size() ? ",\n" : "\n");
      }
      os << "        ]}" << (r + 1 < e.ladder.size() ? ",\n" : "\n");
    }
    os << "      ]\n";
    os << "    }" << (n + 1 < artifact.entries.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";

  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("tuned artifact: cannot open '" + path + "'");
  out << os.str();
  if (!out.flush()) {
    throw IoError("tuned artifact: write to '" + path + "' failed");
  }
}

// ------------------------------------------------------------- parsing

namespace {

/// Minimal JSON value for the artifact's known schema (objects, arrays,
/// strings, numbers, bools).  A hand-rolled parser keeps the loader
/// dependency-free; it accepts exactly standard JSON and reports the
/// byte offset of the first violation.
struct Json {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  const Json* get(const std::string& key) const {
    for (const auto& kv : obj) {
      if (kv.first == key) return &kv.second;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ConfigError("tuned artifact: " + what + " at byte " +
                      std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json value() {
    const char c = peek();
    Json v;
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      v.kind = Json::kStr;
      v.str = string();
      return v;
    }
    if (consume_literal("true")) {
      v.kind = Json::kBool;
      v.b = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = Json::kBool;
      v.b = false;
      return v;
    }
    if (consume_literal("null")) return v;
    return number();
  }

  Json object() {
    expect('{');
    Json v;
    v.kind = Json::kObj;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("expected object key string");
      std::string key = string();
      expect(':');
      v.obj.emplace_back(std::move(key), value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json array() {
    expect('[');
    Json v;
    v.kind = Json::kArr;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        if (e == 'n') {
          out.push_back('\n');
        } else if (e == '"' || e == '\\' || e == '/') {
          out.push_back(e);
        } else {
          fail(std::string("unsupported escape '\\") + e + "'");
        }
        continue;
      }
      out.push_back(c);
    }
    fail("unterminated string");
  }

  Json number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Json v;
    v.kind = Json::kNum;
    try {
      v.num = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number '" + text_.substr(start, pos_ - start) + "'");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const Json& require(const Json& obj, const std::string& key,
                    Json::Kind kind, const char* where) {
  const Json* v = obj.kind == Json::kObj ? obj.get(key) : nullptr;
  if (v == nullptr || v->kind != kind) {
    throw ConfigError("tuned artifact: missing or mistyped '" + key +
                      "' in " + where);
  }
  return *v;
}

RepAggregate aggregate_of(const Json& obj, const char* where) {
  RepAggregate a;
  a.min = require(obj, "wall_min_s", Json::kNum, where).num;
  a.median = require(obj, "wall_median_s", Json::kNum, where).num;
  a.cv = require(obj, "wall_cv", Json::kNum, where).num;
  a.reps = static_cast<int>(require(obj, "reps", Json::kNum, where).num);
  a.mean = a.median;  // mean is not persisted; median is the fallback
  return a;
}

}  // namespace

Artifact load_artifact(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("tuned artifact: cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const Json root = JsonParser(text).parse();
  if (root.kind != Json::kObj) {
    throw ConfigError("tuned artifact: document is not an object");
  }
  Artifact art;
  art.schema_version = static_cast<int>(
      require(root, "schema_version", Json::kNum, "document").num);
  if (art.schema_version != kArtifactSchemaVersion) {
    throw ConfigError(
        "tuned artifact: schema_version " +
        std::to_string(art.schema_version) + " in '" + path +
        "' (this build reads version " +
        std::to_string(kArtifactSchemaVersion) + ")");
  }
  const Json& machine = require(root, "machine", Json::kObj, "document");
  art.machine.hw_threads = static_cast<int>(
      require(machine, "hw_threads", Json::kNum, "machine").num);
  art.machine.device = require(machine, "device", Json::kStr, "machine").str;

  for (const Json& je :
       require(root, "entries", Json::kArr, "document").arr) {
    TunedEntry e;
    e.shape = require(je, "shape", Json::kStr, "entry").str;
    e.knobs = require(je, "knobs", Json::kStr, "entry").str;
    e.steps = static_cast<int>(require(je, "steps", Json::kNum, "entry").num);
    e.wall = aggregate_of(je, "entry");
    e.cellsteps_per_s =
        require(je, "cellsteps_per_s", Json::kNum, "entry").num;
    e.baseline_cellsteps_per_s =
        require(je, "baseline_cellsteps_per_s", Json::kNum, "entry").num;
    for (const Json& jr : require(je, "ladder", Json::kArr, "entry").arr) {
      Rung rung;
      rung.rung = static_cast<int>(require(jr, "rung", Json::kNum, "rung").num);
      rung.steps =
          static_cast<int>(require(jr, "steps", Json::kNum, "rung").num);
      rung.target_cv = require(jr, "target_cv", Json::kNum, "rung").num;
      for (const Json& jp :
           require(jr, "points", Json::kArr, "rung").arr) {
        RungPoint pt;
        pt.knobs = require(jp, "knobs", Json::kStr, "point").str;
        pt.wall = aggregate_of(jp, "point");
        pt.cellsteps_per_s =
            require(jp, "cellsteps_per_s", Json::kNum, "point").num;
        pt.prior_ms_per_step =
            require(jp, "prior_ms_per_step", Json::kNum, "point").num;
        pt.survived = require(jp, "survived", Json::kBool, "point").b;
        rung.points.push_back(std::move(pt));
      }
      e.ladder.push_back(std::move(rung));
    }
    // The loadability contract: a winner that does not parse back into
    // a KnobSet can never be applied — reject at load time, where the
    // artifact (not the requesting run) is identifiably at fault.
    (void)KnobSet::parse(e.knobs);
    art.entries.push_back(std::move(e));
  }
  return art;
}

bool apply_artifact(model::RunConfig& cfg, const Artifact& artifact) {
  const TunedEntry* entry = artifact.find(shape_key(cfg));
  if (entry == nullptr) return false;
  KnobSet::parse(entry->knobs).apply_to(cfg);
  return true;
}

bool apply(model::RunConfig& cfg) {
  switch (cfg.tune.mode) {
    case TuneMode::kOff:
      return false;
    case TuneMode::kAuto: {
      // auto is opportunistic: tune if an artifact has been produced on
      // this machine, run untuned otherwise.  A present-but-broken file
      // still throws — silent fallback would mask corruption.
      std::ifstream probe(kDefaultArtifactPath);
      if (!probe) return false;
      probe.close();
      return apply_artifact(cfg, load_artifact(kDefaultArtifactPath));
    }
    case TuneMode::kFile:
      return apply_artifact(cfg, load_artifact(cfg.tune.path));
  }
  return false;
}

}  // namespace wrf::tune
