#pragma once
// Statistical measurement primitives shared by the bench harness
// (bench/bench_common.hpp re-exports these under wrf::bench) and the
// knob autotuner (tune::Tuner), so a committed BENCH_*.json point and a
// tuned.json rung are aggregated by exactly the same code.
//
// The unit of currency is the RepAggregate: min / median / mean / CV
// over N repetitions of one measurement.  `min` is the headline number
// (least-noise estimate of the achievable wall), `median` the robustness
// check, and `cv` (stddev/mean) the stability gauge — a rung whose CV
// exceeds the target is jitter, not signal, and must not decide a
// winner.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace wrf::tune {

/// Aggregate of N repetitions of one measurement.
struct RepAggregate {
  double min = 0.0;
  double median = 0.0;
  double mean = 0.0;
  double cv = 0.0;  ///< coefficient of variation, stddev / mean
  int reps = 0;
};

/// Aggregate already-collected samples.  For callers whose rep loop
/// yields several metrics at once (e.g. the hetero bench's device and
/// host shard walls per run): collect each metric into its own vector
/// and aggregate them separately.  `samples` must be non-empty.
inline RepAggregate aggregate_samples(std::vector<double> samples) {
  RepAggregate agg;
  std::sort(samples.begin(), samples.end());
  agg.reps = static_cast<int>(samples.size());
  agg.min = samples.front();
  const std::size_t n = samples.size();
  agg.median = n % 2 == 1 ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double sum = 0.0;
  for (double s : samples) sum += s;
  agg.mean = sum / static_cast<double>(n);
  double var = 0.0;
  for (double s : samples) var += (s - agg.mean) * (s - agg.mean);
  var /= static_cast<double>(n);
  agg.cv = agg.mean > 0.0 ? std::sqrt(var) / agg.mean : 0.0;
  return agg;
}

/// Run `fn` (returning one double sample) `reps` times and aggregate.
/// The first call is NOT discarded: callers that want a warmup should do
/// it themselves before measuring (the FSBM benches construct a fresh
/// RankModel per rep, so there is no cross-rep cache to warm).
template <typename Fn>
RepAggregate measure_reps(int reps, Fn&& fn) {
  if (reps < 1) reps = 1;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) samples.push_back(fn());
  return aggregate_samples(std::move(samples));
}

/// Adaptive repetition policy: keep measuring until the aggregate's CV
/// drops to `target_cv` or the rep cap is hit.  On a quiet host this
/// costs `min_reps` runs; on a noisy one it spends up to `max_reps`
/// driving the estimate down instead of committing a garbage winner.
/// The caller can tell which happened from RepAggregate::cv vs the
/// target (the tuner and bench_tuner gate on it explicitly).
struct MeasurePolicy {
  int min_reps = 3;       ///< always collect at least this many
  int max_reps = 10;      ///< rep cap — never spend more than this
  double target_cv = 0.10;
};

/// Adaptive overload of measure_reps: repeat `fn` until CV <= target or
/// the rep cap, re-aggregating the full sample set each round.
template <typename Fn>
RepAggregate measure_reps(const MeasurePolicy& policy, Fn&& fn) {
  const int lo = std::max(policy.min_reps, 1);
  const int hi = std::max(policy.max_reps, lo);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(hi));
  RepAggregate agg;
  while (static_cast<int>(samples.size()) < hi) {
    samples.push_back(fn());
    if (static_cast<int>(samples.size()) < lo) continue;
    agg = aggregate_samples(samples);  // copy: keep collecting order
    if (agg.cv <= policy.target_cv) return agg;
  }
  return aggregate_samples(std::move(samples));
}

}  // namespace wrf::tune
