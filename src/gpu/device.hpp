#pragma once
// gpusim: a simulated OpenMP-offload target device.
//
// We do not have GPUs in this environment, so the paper's A100 is
// replaced by an explicit device model.  A kernel launch does two things:
//
//   1. *Functional execution*: the kernel body runs for every iteration
//      on a host thread pool, producing bit-for-bit the physics the GPU
//      code path would produce (modulo FMA contraction, which we emulate
//      by using std::fma in device code paths — this is what gives the
//      paper's 3-6 digit diffwrf agreement its analogue here).
//
//   2. *Performance modeling*: an occupancy model (registers, block size,
//      grid size vs. SM resources), a sampled trace-driven cache
//      hierarchy simulation (per-SM L1, shared L2 -> DRAM), and a
//      roofline-style timing model combine into the modeled kernel time
//      and the Nsight-Compute-style metrics of Table VI.
//
// The data environment mirrors OpenMP device data management: `map_to`,
// `map_from`, `enter_data_alloc` (the paper's `!$omp target enter data
// map(alloc: fl1_temp)`), with transfer costs and a device memory
// capacity limit.  Per-thread stack demand is checked at launch against
// the configured stack limit; exceeding it raises the same failure the
// paper hit with automatic arrays in `coal_bott_new` (fixed there by
// NV_ACC_CUDA_STACKSIZE=65536 and ultimately by pooling the arrays).

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "gpu/cache.hpp"
#include "obs/registry.hpp"
#include "util/error.hpp"

namespace wrf::par {
class ThreadPool;
}

namespace wrf::gpu {

/// Static hardware description.  `a100_40gb()` matches the Perlmutter
/// node GPU the paper uses (108 SMs, 9.7/19.5 TFLOP/s DP/SP, 1555 GB/s).
struct DeviceSpec {
  std::string name;
  int num_sms = 108;
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 32;
  int max_warps_per_sm = 64;
  int warp_size = 32;
  std::uint32_t regs_per_sm = 65536;
  std::uint64_t l1_bytes = 192 * 1024;       ///< unified L1/shmem per SM
  std::uint32_t l1_ways = 8;
  std::uint64_t l2_bytes = 40ull << 20;      ///< 40 MB device L2
  std::uint32_t l2_ways = 16;
  std::uint32_t line_bytes = 64;
  std::uint64_t dram_bytes = 40ull << 30;    ///< HBM capacity
  double dram_bw_gbs = 1555.0;               ///< HBM bandwidth
  double l2_bw_gbs = 4500.0;
  double peak_sp_gflops = 19500.0;
  double peak_dp_gflops = 9700.0;
  double host_link_gbs = 25.0;               ///< PCIe 4.0 x16 effective
  double kernel_launch_us = 8.0;             ///< fixed launch latency
  std::uint64_t default_stack_bytes = 8192;  ///< per-thread stack limit
  /// Device-side malloc pool (CUDA heap).  nvfortran places large
  /// automatic arrays here; the paper raises it with
  /// NV_ACC_CUDA_HEAPSIZE=64MB after hitting a memory error (§VI-B).
  std::uint64_t default_heap_bytes = 8ull << 20;

  static DeviceSpec a100_40gb();
  /// Small fictional device for fast unit tests.
  static DeviceSpec test_device();
};

/// Occupancy computation result (theoretical = resource limits only;
/// achieved additionally accounts for how many blocks the grid supplies).
struct Occupancy {
  int blocks_per_sm_resource = 0;  ///< limited by regs/warps/blocks
  double blocks_per_sm_achieved = 0.0;
  double resident_warps_per_sm = 0.0;
  double theoretical = 0.0;  ///< fraction of max warps, resource-limited
  double achieved = 0.0;     ///< fraction of max warps, grid-limited too
  const char* limiter = "";  ///< "registers" | "warps" | "blocks" | "grid"
};

/// Compute occupancy for a launch of `total_blocks` blocks of
/// `threads_per_block` threads using `regs_per_thread` registers.
Occupancy compute_occupancy(const DeviceSpec& dev, std::int64_t total_blocks,
                            int threads_per_block, int regs_per_thread);

/// Description of one offloaded loop nest (one `target teams distribute
/// parallel do collapse(n)` region).
struct KernelDesc {
  std::string name;
  std::int64_t iterations = 0;  ///< collapsed loop trip count
  int collapse = 2;             ///< bookkeeping only; trip count rules
  int threads_per_block = 128;  ///< nvfortran default team size
  int regs_per_thread = 64;
  std::uint64_t stack_bytes_per_thread = 0;  ///< fixed-size locals, spills
  /// Dynamically sized automatic arrays: allocated per *resident* thread
  /// from the device heap at kernel entry.  A collapse(3) launch keeps
  /// orders of magnitude more threads resident than collapse(2), which is
  /// how the paper's memory error appears only at full collapse.
  std::uint64_t workspace_bytes_per_thread = 0;
  bool double_precision = false;

  /// Functional body, called once per iteration (may be empty for
  /// perf-model-only launches).
  std::function<void(std::int64_t)> body;

  /// Average floating-point operations per iteration (for the roofline).
  double flops_per_iter = 0.0;

  /// Optional: exact FLOP total, queried after the functional execution
  /// (for kernels whose work is data-dependent, like the
  /// conditionally-active collision loop).  Overrides flops_per_iter.
  std::function<double()> flops_total;

  /// Optional trace generator: append the memory accesses iteration
  /// `iter` performs.  The device samples iterations and replays traces
  /// through the cache hierarchy; when absent, hit rates default to 0 and
  /// DRAM traffic to `bytes_per_iter`.
  std::function<void(std::int64_t iter, std::vector<AccessEvent>&)> trace;

  /// Fallback DRAM bytes per iteration when no trace is supplied.
  double bytes_per_iter = 0.0;

  /// Number of logical passes this launch executes back to back per
  /// lane (cross-pass fusion: cond+coal fused => 2).  Bookkeeping for
  /// launch-count accounting; 1 for ordinary launches.
  int fused_passes = 1;
};

/// Nsight-Compute-style metrics for one launch (paper Table VI).
struct KernelStats {
  std::string name;
  std::int64_t iterations = 0;
  double modeled_time_ms = 0.0;
  double wall_time_ms = 0.0;  ///< host time for the functional execution
  Occupancy occupancy;
  double l1_hit_rate = 0.0;
  double l2_hit_rate = 0.0;
  double dram_read_gb = 0.0;
  double dram_write_gb = 0.0;
  double flops = 0.0;
  double arithmetic_intensity = 0.0;  ///< flops / DRAM bytes
  double gflops_achieved = 0.0;       ///< flops / modeled time
  const char* bound = "";             ///< "memory" | "compute" | "latency"
  int fused_passes = 1;               ///< logical passes in this launch
};

/// Cumulative host<->device transfer bookkeeping.  Byte totals and
/// transfer counts surface through FsbmStats/StepStats and the bench
/// tables so residency wins are visible as bytes, not only modeled time.
struct TransferStats {
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t h2d_count = 0;  ///< number of h2d transfers issued
  std::uint64_t d2h_count = 0;  ///< number of d2h transfers issued
  std::uint64_t alloc_bytes = 0;
  double modeled_time_ms = 0.0;

  /// publish() contract (obs/registry.hpp): add the totals above into
  /// `reg` under wrf_device_* names, byte-exact.  Distinct from the
  /// wrf_xfer_* family FsbmStats publishes (which charges the same
  /// transfers to the microphysics), so a RunResult publishing both
  /// never double-counts a metric.
  void publish(obs::Registry& reg) const;
};

/// One simulated device instance.
///
/// Not thread-safe for concurrent launches; each simpi rank owns its own
/// Device (multiple Devices may share a physical `gpu_id`, which the
/// perfmodel uses to serialize their kernels when pricing Table VII).
class Device {
 public:
  explicit Device(DeviceSpec spec, par::ThreadPool* pool = nullptr);

  const DeviceSpec& spec() const noexcept { return spec_; }

  /// OpenMP `omp_set_teams_thread_limit` analogue for stack: the paper's
  /// NV_ACC_CUDA_STACKSIZE environment variable.
  void set_stack_limit(std::uint64_t bytes) { stack_limit_ = bytes; }
  std::uint64_t stack_limit() const noexcept { return stack_limit_; }

  /// NV_ACC_CUDA_HEAPSIZE analogue: capacity of the device-side malloc
  /// pool that automatic arrays live in.
  void set_heap_limit(std::uint64_t bytes) { heap_limit_ = bytes; }
  std::uint64_t heap_limit() const noexcept { return heap_limit_; }

  /// `map(to:)`: host-to-device copy of `bytes` into a *transient*
  /// buffer.  The buffer must fit beside the persistent allocations, so
  /// this checks capacity (DeviceError::kOutOfMemory) without charging
  /// it — the transient allocation dies with the enclosing launch.
  /// Persistent buffers go through `alloc_named` + `update_to` instead
  /// so their bytes stay charged against `dram_bytes`.
  void map_to(std::uint64_t bytes);
  /// `map(from:)`: device-to-host copy of `bytes` (same transient
  /// capacity check as map_to).
  void map_from(std::uint64_t bytes);
  /// `target update to/from(...)`: copy into/out of memory that is
  /// already device-resident — transfer accounting only, no capacity
  /// interaction.  The DataRegion dirty-range updates price through
  /// these.
  void update_to(std::uint64_t bytes);
  void update_from(std::uint64_t bytes);
  /// `target enter data map(alloc:)`: device allocation without copy.
  /// Throws DeviceError(kOutOfMemory) when capacity would be exceeded.
  void enter_data_alloc(std::uint64_t bytes);
  /// `target exit data map(delete:)`.
  void exit_data_delete(std::uint64_t bytes);
  std::uint64_t allocated_bytes() const noexcept { return allocated_; }

  /// Named persistent allocations — the backing store of the residency
  /// subsystem's field table (mem::DataRegion).  `alloc_named` charges
  /// `bytes` against `dram_bytes` through the same capacity check as
  /// `enter_data_alloc` and throws DeviceError(kOutOfMemory) with the
  /// paper-style message when the domain does not fit; allocating an
  /// existing name again is an error (the DataRegion enforces presence
  /// semantics above this).
  void alloc_named(const std::string& name, std::uint64_t bytes);
  void free_named(const std::string& name);
  bool has_named(const std::string& name) const;
  /// Size of a named allocation; 0 when absent.
  std::uint64_t named_bytes(const std::string& name) const;

  /// Launch one kernel: functional execution + performance model.
  /// Throws DeviceError(kLaunchOutOfStack) if the kernel's per-thread
  /// stack demand exceeds the current stack limit.
  KernelStats launch(const KernelDesc& desc);

  /// Stats of every launch so far, in order.
  const std::vector<KernelStats>& launches() const noexcept {
    return launches_;
  }
  const TransferStats& transfers() const noexcept { return transfers_; }

  /// Sum of modeled kernel milliseconds since construction/reset.
  double total_kernel_ms() const noexcept { return total_kernel_ms_; }
  void reset_stats();

  /// Maximum sampled iterations for trace replay (tests may lower it).
  void set_trace_sample_budget(std::int64_t n) { sample_budget_ = n; }

  /// Trace replay is expensive, and a kernel's locality profile is
  /// stable across launches of the same shape; results are cached per
  /// kernel name and refreshed only when the grid changes materially.
  /// `set_trace_refresh(true)` forces replay on every launch.
  void set_trace_refresh(bool always) { trace_always_ = always; }

 private:
  double model_time_ms(const KernelDesc& desc, const Occupancy& occ,
                       double dram_bytes, double l2_bytes, double l1_hit,
                       double l2_hit, bool traced, const char** bound) const;

  /// Shared capacity check: throws kOutOfMemory when `bytes` more would
  /// not fit; charges nothing.
  void check_capacity(std::uint64_t bytes, const std::string& what) const;

  DeviceSpec spec_;
  par::ThreadPool* pool_;
  std::uint64_t stack_limit_;
  std::uint64_t heap_limit_;
  std::uint64_t allocated_ = 0;
  std::map<std::string, std::uint64_t> named_;
  TransferStats transfers_;
  std::vector<KernelStats> launches_;
  double total_kernel_ms_ = 0.0;
  std::int64_t sample_budget_ = 512;
  bool trace_always_ = false;

  struct TraceCache {
    std::int64_t iterations = 0;
    double l1_hit = 0.0, l2_hit = 0.0;
    double dram_read_per_iter = 0.0, dram_write_per_iter = 0.0;
    double l2_bytes_per_iter = 0.0;
  };
  std::map<std::string, TraceCache> trace_cache_;
};

/// Roofline helper: attainable GFLOP/s at arithmetic intensity `ai`
/// (FLOP per DRAM byte) for the given precision.
double roofline_gflops(const DeviceSpec& dev, double ai, bool double_precision);

}  // namespace wrf::gpu
