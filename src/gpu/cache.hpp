#pragma once
// Set-associative LRU cache simulator for the gpusim memory hierarchy.
//
// The device model replays sampled per-thread access traces through a
// two-level hierarchy (per-SM L1, device-wide L2) to estimate the hit
// rates and DRAM traffic that Nsight Compute reports in the paper's
// Table VI.  The simulator is trace-driven and exact for the trace it is
// given; sampling and interleaving policy live in the device model.

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace wrf::gpu {

/// One memory access as seen by the cache (already coalesced or not —
/// the caller decides; FSBM's bin-strided accesses do not coalesce,
/// which the paper's roofline discussion calls out).
struct AccessEvent {
  std::uint64_t addr = 0;
  std::uint32_t bytes = 4;
  bool write = false;
};

/// Results of replaying a trace through one cache level.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  double hit_rate() const noexcept {
    return accesses == 0 ? 0.0 : static_cast<double>(hits) / accesses;
  }
};

/// A single set-associative write-back, write-allocate LRU cache.
class CacheSim {
 public:
  /// capacity_bytes and line_bytes must be powers of two;
  /// ways must divide capacity/line.
  CacheSim(std::uint64_t capacity_bytes, std::uint32_t line_bytes,
           std::uint32_t ways);

  /// Access one address range; large/straddling accesses touch every
  /// line they cover.  Returns the number of line misses incurred.
  std::uint32_t access(std::uint64_t addr, std::uint32_t bytes, bool write);

  /// Line-granular probe used by the hierarchy glue: access exactly one
  /// line; returns true on hit.
  bool access_line(std::uint64_t line_addr, bool write);

  const CacheStats& stats() const noexcept { return stats_; }
  std::uint32_t line_bytes() const noexcept { return line_bytes_; }
  std::uint64_t capacity() const noexcept { return capacity_; }
  void reset();

 private:
  struct Way {
    std::uint64_t tag = ~0ull;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  // larger = more recently used
  };

  std::uint64_t capacity_;
  std::uint32_t line_bytes_;
  std::uint32_t ways_;
  std::uint64_t num_sets_;
  std::uint64_t tick_ = 0;
  std::vector<Way> sets_;  // num_sets * ways, row-major
  CacheStats stats_;
};

/// Two-level hierarchy: `nl1` private L1 slices in front of a shared L2.
/// Each access names the L1 slice (the SM) it originates from.
class Hierarchy {
 public:
  Hierarchy(int nl1, std::uint64_t l1_bytes, std::uint32_t l1_ways,
            std::uint64_t l2_bytes, std::uint32_t l2_ways,
            std::uint32_t line_bytes);

  /// Replay one access from SM `sm`; updates L1/L2 stats and DRAM bytes.
  void access(int sm, std::uint64_t addr, std::uint32_t bytes, bool write);

  /// Aggregate stats over all L1 slices.
  CacheStats l1_stats() const;
  const CacheStats& l2_stats() const noexcept { return l2_.stats(); }
  std::uint64_t dram_read_bytes() const noexcept { return dram_read_; }
  /// DRAM writes are dirty L2 evictions (write-back at the last level).
  std::uint64_t dram_write_bytes() const noexcept {
    return l2_.stats().writebacks * line_bytes_;
  }
  void reset();

 private:
  std::vector<CacheSim> l1_;
  CacheSim l2_;
  std::uint32_t line_bytes_;
  std::uint64_t dram_read_ = 0;
};

}  // namespace wrf::gpu
