#include "gpu/cache.hpp"

namespace wrf::gpu {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

CacheSim::CacheSim(std::uint64_t capacity_bytes, std::uint32_t line_bytes,
                   std::uint32_t ways)
    : capacity_(capacity_bytes), line_bytes_(line_bytes), ways_(ways) {
  if (!is_pow2(line_bytes)) {
    throw ConfigError("CacheSim: line size must be a power of 2");
  }
  if (ways == 0 || capacity_bytes <
                       static_cast<std::uint64_t>(line_bytes) * ways ||
      capacity_bytes % (static_cast<std::uint64_t>(line_bytes) * ways) != 0) {
    throw ConfigError("CacheSim: ways must divide capacity/line");
  }
  num_sets_ = capacity_bytes / line_bytes / ways;
  sets_.assign(num_sets_ * ways_, Way{});
}

void CacheSim::reset() {
  sets_.assign(num_sets_ * ways_, Way{});
  stats_ = CacheStats{};
  tick_ = 0;
}

bool CacheSim::access_line(std::uint64_t line_addr, bool write) {
  const std::uint64_t set = line_addr % num_sets_;
  const std::uint64_t tag = line_addr / num_sets_;
  Way* base = &sets_[set * ways_];
  ++tick_;
  ++stats_.accesses;

  // Hit path.
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lru = tick_;
      if (write) base[w].dirty = true;
      ++stats_.hits;
      return true;
    }
  }
  // Miss: fill into LRU victim (invalid ways are oldest by construction).
  ++stats_.misses;
  std::uint32_t victim = 0;
  std::uint64_t oldest = ~0ull;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = w;
      oldest = 0;
      break;
    }
    if (base[w].lru < oldest) {
      oldest = base[w].lru;
      victim = w;
    }
  }
  if (base[victim].valid && base[victim].dirty) ++stats_.writebacks;
  base[victim] = Way{tag, true, write, tick_};
  return false;
}

std::uint32_t CacheSim::access(std::uint64_t addr, std::uint32_t bytes,
                               bool write) {
  const std::uint64_t first = addr / line_bytes_;
  const std::uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) / line_bytes_;
  std::uint32_t misses = 0;
  for (std::uint64_t line = first; line <= last; ++line) {
    if (!access_line(line, write)) ++misses;
  }
  return misses;
}

Hierarchy::Hierarchy(int nl1, std::uint64_t l1_bytes, std::uint32_t l1_ways,
                     std::uint64_t l2_bytes, std::uint32_t l2_ways,
                     std::uint32_t line_bytes)
    : l2_(l2_bytes, line_bytes, l2_ways), line_bytes_(line_bytes) {
  if (nl1 <= 0) throw ConfigError("Hierarchy: need at least one L1 slice");
  l1_.reserve(static_cast<std::size_t>(nl1));
  for (int i = 0; i < nl1; ++i) l1_.emplace_back(l1_bytes, line_bytes, l1_ways);
}

void Hierarchy::access(int sm, std::uint64_t addr, std::uint32_t bytes,
                       bool write) {
  CacheSim& l1 = l1_[static_cast<std::size_t>(sm) % l1_.size()];
  const std::uint64_t first = addr / line_bytes_;
  const std::uint64_t last =
      (addr + (bytes == 0 ? 0 : bytes - 1)) / line_bytes_;
  for (std::uint64_t line = first; line <= last; ++line) {
    if (!l1.access_line(line, write)) {
      // L1 miss goes to L2; L2 miss goes to DRAM.  Write misses allocate
      // (fetch-on-write), and dirty evictions are priced as DRAM writes
      // at the L2 boundary, which is what Nsight's DRAM counters see.
      if (!l2_.access_line(line, write)) {
        dram_read_ += line_bytes_;
      }
    }
  }
}

CacheStats Hierarchy::l1_stats() const {
  CacheStats agg;
  for (const auto& c : l1_) {
    agg.accesses += c.stats().accesses;
    agg.hits += c.stats().hits;
    agg.misses += c.stats().misses;
    agg.writebacks += c.stats().writebacks;
  }
  return agg;
}

void Hierarchy::reset() {
  for (auto& c : l1_) c.reset();
  l2_.reset();
  dram_read_ = 0;
}

}  // namespace wrf::gpu
