#include "gpu/device.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/trace.hpp"
#include "par/thread_pool.hpp"

namespace wrf::gpu {

void TransferStats::publish(obs::Registry& reg) const {
  reg.counter("wrf_device_bytes_total", static_cast<double>(h2d_bytes),
              {{"dir", "h2d"}});
  reg.counter("wrf_device_bytes_total", static_cast<double>(d2h_bytes),
              {{"dir", "d2h"}});
  reg.counter("wrf_device_transfers_total", static_cast<double>(h2d_count),
              {{"dir", "h2d"}});
  reg.counter("wrf_device_transfers_total", static_cast<double>(d2h_count),
              {{"dir", "d2h"}});
  reg.counter("wrf_device_alloc_bytes_total",
              static_cast<double>(alloc_bytes));
  reg.counter("wrf_device_transfer_modeled_ms_total", modeled_time_ms);
}

DeviceSpec DeviceSpec::a100_40gb() {
  DeviceSpec d;
  d.name = "NVIDIA A100-SXM4-40GB (simulated)";
  return d;  // defaults are the A100 values
}

DeviceSpec DeviceSpec::test_device() {
  DeviceSpec d;
  d.name = "gpusim-test";
  d.num_sms = 4;
  d.regs_per_sm = 8192;
  d.l1_bytes = 16 * 1024;
  d.l2_bytes = 256 * 1024;
  d.dram_bytes = 1ull << 30;
  d.dram_bw_gbs = 100.0;
  d.l2_bw_gbs = 300.0;
  d.peak_sp_gflops = 1000.0;
  d.peak_dp_gflops = 500.0;
  return d;
}

Occupancy compute_occupancy(const DeviceSpec& dev, std::int64_t total_blocks,
                            int threads_per_block, int regs_per_thread) {
  if (threads_per_block <= 0 || threads_per_block % dev.warp_size != 0) {
    throw ConfigError("compute_occupancy: threads_per_block must be a "
                      "positive multiple of the warp size");
  }
  Occupancy occ;
  const int warps_per_block = threads_per_block / dev.warp_size;

  const int by_warps = dev.max_warps_per_sm / warps_per_block;
  const int by_blocks = dev.max_blocks_per_sm;
  const std::uint32_t regs_per_block =
      static_cast<std::uint32_t>(std::max(regs_per_thread, 1)) *
      static_cast<std::uint32_t>(threads_per_block);
  const int by_regs =
      static_cast<int>(dev.regs_per_sm / std::max<std::uint32_t>(regs_per_block, 1));

  occ.blocks_per_sm_resource = std::max(0, std::min({by_warps, by_blocks, by_regs}));
  if (occ.blocks_per_sm_resource == 0) {
    occ.limiter = "registers";
    return occ;  // kernel cannot launch even one block per SM -> occ 0
  }
  if (by_regs <= by_warps && by_regs <= by_blocks) occ.limiter = "registers";
  else if (by_warps <= by_blocks) occ.limiter = "warps";
  else occ.limiter = "blocks";

  occ.theoretical =
      static_cast<double>(occ.blocks_per_sm_resource * warps_per_block) /
      dev.max_warps_per_sm;

  // Achieved occupancy: the grid may not supply enough blocks to fill
  // every SM to the resource limit.  This is precisely what happens with
  // the paper's collapse(2) launch (j*k blocks only -> 4.63%).
  const double blocks_per_sm_avail =
      static_cast<double>(total_blocks) / dev.num_sms;
  occ.blocks_per_sm_achieved =
      std::min<double>(occ.blocks_per_sm_resource, blocks_per_sm_avail);
  if (blocks_per_sm_avail < occ.blocks_per_sm_resource) occ.limiter = "grid";
  occ.resident_warps_per_sm = occ.blocks_per_sm_achieved * warps_per_block;
  occ.achieved = occ.resident_warps_per_sm / dev.max_warps_per_sm;
  return occ;
}

double roofline_gflops(const DeviceSpec& dev, double ai,
                       bool double_precision) {
  const double peak = double_precision ? dev.peak_dp_gflops : dev.peak_sp_gflops;
  return std::min(peak, ai * dev.dram_bw_gbs);
}

Device::Device(DeviceSpec spec, par::ThreadPool* pool)
    : spec_(std::move(spec)),
      pool_(pool != nullptr ? pool : &par::shared_pool()),
      stack_limit_(spec_.default_stack_bytes),
      heap_limit_(spec_.default_heap_bytes) {}

void Device::check_capacity(std::uint64_t bytes, const std::string& what) const {
  if (allocated_ + bytes > spec_.dram_bytes) {
    throw DeviceError(
        DeviceError::kOutOfMemory,
        "CUDA error: out of memory (" + what + " of " +
            std::to_string(bytes) + " B on top of " +
            std::to_string(allocated_) + " B allocated exceeds " +
            std::to_string(spec_.dram_bytes) + " B capacity on " + spec_.name +
            ")");
  }
}

void Device::update_to(std::uint64_t bytes) {
  transfers_.h2d_bytes += bytes;
  ++transfers_.h2d_count;
  transfers_.modeled_time_ms +=
      static_cast<double>(bytes) / (spec_.host_link_gbs * 1e6);
  // Every h2d byte flows through here (map_to included), so the summed
  // xfer events reconcile exactly with TransferStats and FsbmStats.
  if (obs::TraceSink* sink = obs::active()) {
    sink->instant("xfer", "h2d", {{"bytes", bytes}});
  }
}

void Device::update_from(std::uint64_t bytes) {
  transfers_.d2h_bytes += bytes;
  ++transfers_.d2h_count;
  transfers_.modeled_time_ms +=
      static_cast<double>(bytes) / (spec_.host_link_gbs * 1e6);
  if (obs::TraceSink* sink = obs::active()) {
    sink->instant("xfer", "d2h", {{"bytes", bytes}});
  }
}

void Device::map_to(std::uint64_t bytes) {
  check_capacity(bytes, "transient map(to:)");
  update_to(bytes);
}

void Device::map_from(std::uint64_t bytes) {
  check_capacity(bytes, "transient map(from:)");
  update_from(bytes);
}

void Device::enter_data_alloc(std::uint64_t bytes) {
  check_capacity(bytes, "device allocation");
  allocated_ += bytes;
  transfers_.alloc_bytes += bytes;
}

void Device::exit_data_delete(std::uint64_t bytes) {
  allocated_ = bytes > allocated_ ? 0 : allocated_ - bytes;
}

void Device::alloc_named(const std::string& name, std::uint64_t bytes) {
  if (named_.count(name) != 0) {
    throw Error("Device::alloc_named: '" + name + "' already allocated");
  }
  check_capacity(bytes, "persistent allocation '" + name + "'");
  named_[name] = bytes;
  allocated_ += bytes;
  transfers_.alloc_bytes += bytes;
}

void Device::free_named(const std::string& name) {
  const auto it = named_.find(name);
  if (it == named_.end()) {
    throw Error("Device::free_named: no allocation named '" + name + "'");
  }
  allocated_ = it->second > allocated_ ? 0 : allocated_ - it->second;
  named_.erase(it);
}

bool Device::has_named(const std::string& name) const {
  return named_.count(name) != 0;
}

std::uint64_t Device::named_bytes(const std::string& name) const {
  const auto it = named_.find(name);
  return it == named_.end() ? 0 : it->second;
}

namespace {
/// Average memory-access latency given cache hit rates, ns.
double avg_latency_ns(double l1_hit, double l2_hit) {
  constexpr double kL1Ns = 25.0, kL2Ns = 120.0, kDramNs = 350.0;
  return l1_hit * kL1Ns +
         (1.0 - l1_hit) * (l2_hit * kL2Ns + (1.0 - l2_hit) * kDramNs);
}
}  // namespace

double Device::model_time_ms(const KernelDesc& desc, const Occupancy& occ,
                             double dram_bytes, double l2_bytes,
                             double l1_hit, double l2_hit, bool traced,
                             const char** bound) const {
  // Effective throughput scales with how much latency the resident warps
  // can hide.  Saturation points (fractions of full occupancy) follow the
  // usual CUDA guidance: memory pipes saturate around 25-30% occupancy,
  // compute pipes around 50%.
  const double occ_f = std::max(occ.achieved, 1e-4);
  const double mem_eff = std::min(1.0, occ_f / 0.25);
  const double cmp_eff = std::min(1.0, occ_f / 0.50);

  const double peak =
      desc.double_precision ? spec_.peak_dp_gflops : spec_.peak_sp_gflops;
  const double flops = desc.flops_per_iter * static_cast<double>(desc.iterations);

  const double t_cmp_ms = flops / (peak * 1e6 * std::max(cmp_eff, 1e-4));
  const double t_dram_ms =
      dram_bytes / (spec_.dram_bw_gbs * 1e6 * std::max(mem_eff, 1e-4));
  const double t_l2_ms =
      l2_bytes / (spec_.l2_bw_gbs * 1e6 * std::max(mem_eff, 1e-4));

  double t = std::max({t_cmp_ms, t_dram_ms, t_l2_ms});
  *bound = (t == t_cmp_ms) ? "compute" : "memory";

  const double resident_total =
      std::max(1.0, std::min(static_cast<double>(desc.iterations),
                             occ.resident_warps_per_sm * spec_.warp_size *
                                 spec_.num_sms));
  double t_lat_ms;
  if (traced) {
    // Dependent-chain model: FSBM-style kernels issue mostly dependent
    // loads (table lookups feeding arithmetic), so a thread progresses
    // at ~1 FLOP per `ns_per_flop`, set by the average access latency
    // and limited ILP.  Total serial work spreads over the resident
    // thread population — this is what makes the grid-starved
    // collapse(2) launch two orders of magnitude slower than the
    // throughput bound would suggest (Table VI's 335.85 ms).
    constexpr double kAccessesPerFlop = 2.0;
    constexpr double kIlp = 0.6;
    const double ns_per_flop =
        1.0 + kAccessesPerFlop * avg_latency_ns(l1_hit, l2_hit) / kIlp;
    t_lat_ms = static_cast<double>(desc.iterations) * desc.flops_per_iter *
               ns_per_flop / resident_total / 1.0e6;
  } else {
    // Without a trace we only know the launch geometry: use a fixed
    // per-iteration issue latency floor.
    constexpr double kIterLatencyUs = 2.0;
    t_lat_ms = static_cast<double>(desc.iterations) * kIterLatencyUs /
               resident_total / 1e3;
  }
  if (t_lat_ms > t) {
    t = t_lat_ms;
    *bound = "latency";
  }
  return t + spec_.kernel_launch_us / 1e3;
}

KernelStats Device::launch(const KernelDesc& desc) {
  if (desc.iterations < 0) throw ConfigError("Device::launch: negative grid");
  if (desc.stack_bytes_per_thread > stack_limit_) {
    throw DeviceError(
        DeviceError::kLaunchOutOfStack,
        "CUDA error 719: call stack overflow in kernel '" + desc.name +
            "': per-thread stack demand " +
            std::to_string(desc.stack_bytes_per_thread) +
            " B exceeds limit " + std::to_string(stack_limit_) +
            " B (raise NV_ACC_CUDA_STACKSIZE / Device::set_stack_limit, or "
            "hoist automatic arrays into pooled device arrays)");
  }

  // Heap check: automatic arrays are malloc'ed per resident thread at
  // kernel entry.  Resident count is resource-limited (occupancy) but
  // never more than the grid supplies.
  if (desc.workspace_bytes_per_thread > 0) {
    const std::int64_t blocks =
        (desc.iterations + desc.threads_per_block - 1) /
        std::max(desc.threads_per_block, 1);
    const Occupancy pre = compute_occupancy(
        spec_, blocks, desc.threads_per_block, desc.regs_per_thread);
    const double resident_threads =
        std::min<double>(static_cast<double>(desc.iterations),
                         pre.resident_warps_per_sm * spec_.warp_size *
                             spec_.num_sms);
    const double demand = resident_threads *
                          static_cast<double>(desc.workspace_bytes_per_thread);
    if (demand > static_cast<double>(heap_limit_)) {
      throw DeviceError(
          DeviceError::kOutOfMemory,
          "CUDA error: out of memory in kernel '" + desc.name +
              "': automatic-array workspace needs " +
              std::to_string(static_cast<std::uint64_t>(demand)) +
              " B of device heap for " +
              std::to_string(static_cast<std::int64_t>(resident_threads)) +
              " resident threads, heap limit is " +
              std::to_string(heap_limit_) +
              " B (raise NV_ACC_CUDA_HEAPSIZE / Device::set_heap_limit, or "
              "hoist automatic arrays into pooled device arrays)");
    }
  }

  KernelStats ks;
  ks.name = desc.name;
  ks.iterations = desc.iterations;
  ks.fused_passes = desc.fused_passes < 1 ? 1 : desc.fused_passes;

  obs::Span span(obs::active(), "kernel", desc.name,
                 {{"iters", desc.iterations},
                  {"fused_passes", ks.fused_passes}});

  // --- functional execution on the host pool ---
  const auto t0 = std::chrono::steady_clock::now();
  if (desc.body && desc.iterations > 0) {
    pool_->parallel_for(0, desc.iterations, desc.body);
  }
  ks.wall_time_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();

  // --- performance model ---
  const std::int64_t total_blocks =
      (desc.iterations + desc.threads_per_block - 1) /
      std::max(desc.threads_per_block, 1);
  ks.occupancy = compute_occupancy(spec_, total_blocks, desc.threads_per_block,
                                   desc.regs_per_thread);

  double dram_bytes = desc.bytes_per_iter * static_cast<double>(desc.iterations);
  double l2_bytes = dram_bytes;
  auto cached = trace_cache_.find(desc.name);
  const bool cache_ok =
      !trace_always_ && cached != trace_cache_.end() &&
      desc.iterations > 0 &&
      cached->second.iterations > desc.iterations / 2 &&
      cached->second.iterations < desc.iterations * 2;
  if (desc.trace && cache_ok) {
    const TraceCache& tc = cached->second;
    ks.l1_hit_rate = tc.l1_hit;
    ks.l2_hit_rate = tc.l2_hit;
    ks.dram_read_gb =
        tc.dram_read_per_iter * static_cast<double>(desc.iterations) / 1e9;
    ks.dram_write_gb =
        tc.dram_write_per_iter * static_cast<double>(desc.iterations) / 1e9;
    dram_bytes = (ks.dram_read_gb + ks.dram_write_gb) * 1e9;
    l2_bytes = tc.l2_bytes_per_iter * static_cast<double>(desc.iterations);
  } else if (desc.trace && desc.iterations > 0) {
    // Sample iterations, interleave them as resident warps on one SM
    // would interleave, and replay through a one-SM-slice hierarchy.
    // The sample emulates steady state on a single SM; rates extrapolate
    // to the full device because SM populations are statistically alike.
    const std::int64_t sample =
        std::min<std::int64_t>(desc.iterations, sample_budget_);
    std::vector<std::vector<AccessEvent>> traces(
        static_cast<std::size_t>(sample));
    // Stride sampling covers the whole index space (active and inactive
    // cells alike), preserving the activity ratio of the real grid.
    const std::int64_t stride = std::max<std::int64_t>(1, desc.iterations / sample);
    double sampled_bytes = 0.0;
    for (std::int64_t s = 0; s < sample; ++s) {
      desc.trace(s * stride, traces[static_cast<std::size_t>(s)]);
      for (const auto& ev : traces[static_cast<std::size_t>(s)]) {
        sampled_bytes += ev.bytes;
      }
    }

    // Interleaving width = threads resident on one SM.
    const int resident_threads = std::max(
        1, static_cast<int>(ks.occupancy.resident_warps_per_sm + 0.999) *
               spec_.warp_size);
    // One SM slice of the hierarchy: private L1 plus the SM's fair share
    // of L2 (rounded to keep sets x ways integral).
    std::uint64_t l2_slice = spec_.l2_bytes / spec_.num_sms;
    const std::uint64_t gran =
        static_cast<std::uint64_t>(spec_.line_bytes) * spec_.l2_ways;
    l2_slice = std::max(gran, l2_slice / gran * gran);
    Hierarchy hier(1, spec_.l1_bytes, spec_.l1_ways, l2_slice, spec_.l2_ways,
                   spec_.line_bytes);
    std::vector<std::size_t> cursor(static_cast<std::size_t>(sample), 0);
    bool progress = true;
    // Round-robin one access per resident thread per sweep; threads beyond
    // the resident set only start once earlier ones finish (wave model).
    std::int64_t window_lo = 0;
    while (progress) {
      progress = false;
      const std::int64_t window_hi =
          std::min<std::int64_t>(sample, window_lo + resident_threads);
      bool window_done = true;
      for (std::int64_t t = window_lo; t < window_hi; ++t) {
        auto& tr = traces[static_cast<std::size_t>(t)];
        auto& cur = cursor[static_cast<std::size_t>(t)];
        if (cur < tr.size()) {
          hier.access(0, tr[cur].addr, tr[cur].bytes, tr[cur].write);
          ++cur;
          progress = true;
          if (cur < tr.size()) window_done = false;
        }
      }
      if (window_done && window_hi < sample) {
        window_lo = window_hi;
        progress = true;
      }
    }

    const auto l1 = hier.l1_stats();
    const auto& l2 = hier.l2_stats();
    ks.l1_hit_rate = l1.hit_rate();
    ks.l2_hit_rate = l2.hit_rate();
    const double scale =
        sampled_bytes > 0.0
            ? (desc.bytes_per_iter > 0.0
                   ? desc.bytes_per_iter * static_cast<double>(desc.iterations) /
                         sampled_bytes
                   : static_cast<double>(desc.iterations) / sample)
            : 0.0;
    dram_bytes = (static_cast<double>(hier.dram_read_bytes()) +
                  static_cast<double>(hier.dram_write_bytes())) *
                 scale;
    l2_bytes = static_cast<double>(l1.misses) * spec_.line_bytes * scale;
    ks.dram_read_gb = static_cast<double>(hier.dram_read_bytes()) * scale / 1e9;
    ks.dram_write_gb =
        static_cast<double>(hier.dram_write_bytes()) * scale / 1e9;
    TraceCache tc;
    tc.iterations = desc.iterations;
    tc.l1_hit = ks.l1_hit_rate;
    tc.l2_hit = ks.l2_hit_rate;
    tc.dram_read_per_iter =
        ks.dram_read_gb * 1e9 / static_cast<double>(desc.iterations);
    tc.dram_write_per_iter =
        ks.dram_write_gb * 1e9 / static_cast<double>(desc.iterations);
    tc.l2_bytes_per_iter = l2_bytes / static_cast<double>(desc.iterations);
    trace_cache_[desc.name] = tc;
  } else {
    ks.dram_read_gb = dram_bytes * 0.6 / 1e9;
    ks.dram_write_gb = dram_bytes * 0.4 / 1e9;
  }

  ks.flops = desc.flops_total
                 ? desc.flops_total()
                 : desc.flops_per_iter * static_cast<double>(desc.iterations);
  KernelDesc priced = desc;
  priced.flops_per_iter =
      desc.iterations > 0 ? ks.flops / static_cast<double>(desc.iterations)
                          : 0.0;
  priced.flops_total = nullptr;
  const bool traced = static_cast<bool>(desc.trace);
  ks.modeled_time_ms =
      model_time_ms(priced, ks.occupancy, dram_bytes, l2_bytes,
                    ks.l1_hit_rate, ks.l2_hit_rate, traced, &ks.bound);
  ks.arithmetic_intensity = dram_bytes > 0.0 ? ks.flops / dram_bytes : 0.0;
  ks.gflops_achieved =
      ks.modeled_time_ms > 0.0 ? ks.flops / (ks.modeled_time_ms * 1e6) : 0.0;

  total_kernel_ms_ += ks.modeled_time_ms;
  launches_.push_back(ks);
  span.arg("modeled_us",
           static_cast<std::int64_t>(ks.modeled_time_ms * 1e3));
  return ks;
}

void Device::reset_stats() {
  launches_.clear();
  transfers_ = TransferStats{};
  total_kernel_ms_ = 0.0;
}

}  // namespace wrf::gpu
