#pragma once
// Device residency: persistent named device buffers with dirty tracking.
//
// The paper's offload versions pay a full host<->device round-trip of
// every bin distribution on every collision pass: `target data
// map(to: ff, temp, pres) map(from: ff)` per launch, re-shipping fields
// whose device copy is already current.  This module gives the simulated
// device a real data environment instead of byte-counter transfers:
//
//   * `FieldTable` semantics — a `DataRegion` holds one named device
//     buffer per registered field, allocated against
//     `DeviceSpec::dram_bytes` through the same capacity check as
//     `target enter data map(alloc:)` (so a domain that does not fit
//     raises DeviceError::kOutOfMemory up front, paper-style).
//   * OpenMP `target data` verbs at field granularity — `map_to` /
//     `map_from` (allocate + full copy), `update_to` / `update_from`
//     (`target update`-style copies of only the *dirty* bytes), `unmap`
//     (`exit data map(delete:)`).
//   * Per-field dirty bits with sub-field byte ranges (`DirtySpans`):
//     host-side writers mark what they wrote (a halo unpack marks only
//     the shell strips; interior cells never re-transfer), device
//     kernels mark what they computed, and the update verbs move exactly
//     the marked bytes, coalesced.  Last writer wins: marking one side
//     dirty drops the other side's pending marks for those bytes, so an
//     update can never ship stale data over fresher data.
//
// The functional simulation always runs in host memory (the device is
// modeled), so the region never owns data — it is the *transfer
// accounting* a real device-resident implementation would perform, which
// is what makes the `res=step` vs `res=persist` traffic comparison
// measurable in modeled milliseconds and bytes while the physics stays
// bitwise identical.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace wrf::gpu {
class Device;
}

namespace wrf::mem {

/// The `res=` knob: per-launch `target data` regions (the paper's
/// as-ported behavior) vs persistent device residency across steps.
enum class ResidencyMode : int { kStep = 0, kPersist = 1 };

/// Parse "step" | "persist"; throws ConfigError on anything else.
ResidencyMode parse_residency(const std::string& s);
const char* residency_name(ResidencyMode m) noexcept;

/// Scan argv for a `res=<mode>` argument (any position); returns kStep
/// when absent.  Shared by the examples and benches, like
/// exec::exec_from_args and fsbm::sed_from_args.
ResidencyMode residency_from_args(int argc, char** argv);

/// One contiguous byte range of a field's storage (e.g. a strip row).
struct ByteRange {
  std::uint64_t off = 0;
  std::uint64_t len = 0;
};

/// Sorted, coalescing set of half-open byte intervals [off, off+len).
/// Insertions are O(1) amortized when they arrive in ascending order
/// (the order every field walker here produces); the set normalizes
/// lazily on query.
class DirtySpans {
 public:
  void add(std::uint64_t off, std::uint64_t len);
  /// Mark the whole field [0, total).
  void add_all(std::uint64_t total) { clear(); add(0, total); }
  void clear();

  bool empty() const noexcept { return spans_.empty(); }
  /// Total dirty bytes (normalized).
  std::uint64_t bytes() const;
  /// Number of disjoint intervals after normalization (tests use this to
  /// assert strip granularity, e.g. that adjacent rows coalesced).
  std::size_t spans() const;

  /// Remove and return the number of dirty bytes inside [off, off+len) —
  /// the `target update` of a sub-rectangle (halo send strips).
  std::uint64_t take_range(std::uint64_t off, std::uint64_t len);
  /// Batched take_range over rows sorted ascending and disjoint (the
  /// order rect_rows produces): one merged sweep over the span set
  /// instead of one O(spans) rebuild per row, so flushing an R-row
  /// strip out of a fully dirty field costs O(spans + R), not O(R^2).
  std::uint64_t take_ranges(const std::vector<ByteRange>& rows);
  /// Remove and return all dirty bytes.
  std::uint64_t take_all();

 private:
  void normalize() const;
  /// (off, end) pairs; kept sorted+disjoint only after normalize().
  mutable std::vector<std::pair<std::uint64_t, std::uint64_t>> spans_;
  mutable bool normalized_ = true;
};

/// Field handle within a DataRegion.
using FieldId = int;
constexpr FieldId kInvalidField = -1;

/// A device data environment over one gpu::Device: the field table plus
/// `target data` semantics.  Not thread-safe; writers mark dirty ranges
/// from the (serial) pass epilogues, never from inside parallel bodies.
class DataRegion {
 public:
  explicit DataRegion(gpu::Device& device);
  /// Frees every still-resident named buffer (exit data on scope end).
  ~DataRegion();

  DataRegion(const DataRegion&) = delete;
  DataRegion& operator=(const DataRegion&) = delete;

  /// Register a field: name + device-buffer size.  Registration alone
  /// allocates nothing; `map_alloc`/`map_to` make the field resident.
  FieldId add_field(std::string name, std::uint64_t bytes);

  int fields() const noexcept { return static_cast<int>(slots_.size()); }
  const std::string& name(FieldId f) const { return slot(f).name; }
  std::uint64_t bytes(FieldId f) const { return slot(f).bytes; }

  /// `target enter data map(alloc:)`: allocate the named device buffer
  /// through the capacity check (DeviceError::kOutOfMemory when the
  /// domain does not fit).  Idempotent — double-mapping an already
  /// resident field allocates and charges nothing (OpenMP presence
  /// semantics).  A freshly mapped field starts fully host-dirty: the
  /// device copy is undefined until the first update_to.
  void map_alloc(FieldId f);
  /// `map(to:)`: map_alloc + full-field h2d copy.  Clears host dirt.
  void map_to(FieldId f);
  /// `map(from:)`: full-field d2h copy of a resident field.  Clears
  /// device dirt.  Throws Error when the field is not resident.
  void map_from(FieldId f);
  /// `target exit data map(delete:)`: release the device buffer.  The
  /// host copy becomes the only one, so the field returns to fully
  /// host-dirty for any future re-map.  No-op when not resident.
  void unmap(FieldId f);
  void unmap_all();

  bool resident(FieldId f) const { return slot(f).resident; }
  /// Sum of resident field bytes (the persistent footprint a rank pins).
  std::uint64_t resident_bytes() const noexcept { return resident_bytes_; }

  // --- dirty marking (who wrote what since the copies last agreed) ---
  // Last writer wins: marking bytes dirty on one side drops the other
  // side's pending marks for those bytes — a host write supersedes any
  // unflushed device write of the same range (and vice versa), so a
  // later update can never ship stale data over fresher data.
  void mark_host_dirty(FieldId f) {
    Slot& s = slot(f);
    s.host_dirty.add_all(s.bytes);
    s.device_dirty.clear();
  }
  void mark_host_dirty(FieldId f, std::uint64_t off, std::uint64_t len);
  /// Batched ranged mark over rows sorted ascending and disjoint: the
  /// host-dirty adds stay O(1) appends and the device-dirty supersede
  /// runs as one merged sweep (see DirtySpans::take_ranges) instead of
  /// one O(spans) rebuild per row — the halo unpack path.
  void mark_host_dirty_ranges(FieldId f, const std::vector<ByteRange>& rows);
  void mark_device_dirty(FieldId f) {
    Slot& s = slot(f);
    s.device_dirty.add_all(s.bytes);
    s.host_dirty.clear();
  }
  void mark_device_dirty(FieldId f, std::uint64_t off, std::uint64_t len);

  std::uint64_t host_dirty_bytes(FieldId f) const {
    return slot(f).host_dirty.bytes();
  }
  std::uint64_t device_dirty_bytes(FieldId f) const {
    return slot(f).device_dirty.bytes();
  }
  std::size_t host_dirty_spans(FieldId f) const {
    return slot(f).host_dirty.spans();
  }

  // --- `target update` verbs: move exactly the dirty bytes ---
  /// h2d of the field's host-dirty bytes; auto-maps a non-resident
  /// field (alloc + the full-field upload its dirt implies).  Returns
  /// bytes transferred.
  std::uint64_t update_to(FieldId f);
  /// h2d of the host-dirty bytes inside [off, off+len) only; bytes
  /// outside stay host-dirty.  Auto-maps a non-resident field (alloc
  /// only — just the range, not the whole field, then crosses).
  std::uint64_t update_to_range(FieldId f, std::uint64_t off,
                                std::uint64_t len);
  /// Row-batched variant: h2d of only the host-dirty bytes inside the
  /// given rows (sorted ascending, disjoint), priced as one transfer —
  /// the heterogeneous coal pass's device-shard upload (a freshly
  /// map_alloc'd field is fully host-dirty, so under per-launch
  /// regions this moves exactly the shard's rows).
  std::uint64_t update_to_ranges(FieldId f,
                                 const std::vector<ByteRange>& rows);
  /// d2h of the field's device-dirty bytes.  Returns bytes transferred.
  std::uint64_t update_from(FieldId f);
  /// d2h of the device-dirty bytes inside [off, off+len) only — the
  /// single-range form of update_from_ranges (the halo paths use the
  /// row-batched variants below).
  std::uint64_t update_from_range(FieldId f, std::uint64_t off,
                                  std::uint64_t len);
  /// Row-batched variant: d2h of only the device-dirty bytes inside
  /// the given rows (sorted ascending, disjoint), priced as one
  /// transfer (real ports copy a strip with one strided memcpy, not
  /// one call per row) — the halo send-strip flush.  No-op when not
  /// resident.
  std::uint64_t update_from_ranges(FieldId f,
                                   const std::vector<ByteRange>& rows);
  /// d2h every registered field's device-dirty bytes (the pre-snapshot
  /// flush); returns total bytes moved.
  std::uint64_t update_from_all();

  gpu::Device& device() noexcept { return *device_; }

 private:
  struct Slot {
    std::string name;
    std::uint64_t bytes = 0;
    bool resident = false;
    DirtySpans host_dirty;
    DirtySpans device_dirty;
  };
  Slot& slot(FieldId f);
  const Slot& slot(FieldId f) const;

  gpu::Device* device_;
  std::vector<Slot> slots_;
  std::uint64_t resident_bytes_ = 0;
};

}  // namespace wrf::mem
