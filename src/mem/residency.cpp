#include "mem/residency.hpp"

#include <algorithm>

#include "gpu/device.hpp"
#include "obs/trace.hpp"

namespace wrf::mem {

namespace {

/// One "region" instant per DataRegion verb that actually moved bytes:
/// field name, direction, byte count, and how many dirty spans the copy
/// coalesced.  The byte-level "xfer" event the Device emits underneath
/// stays the reconciliation source; this adds the field-level context.
void note_region(obs::TraceSink* sink, const char* dir,
                 const std::string& field, std::uint64_t bytes,
                 std::size_t spans) {
  if (sink == nullptr || bytes == 0) return;
  sink->instant("region", field,
                {{"dir", dir}, {"bytes", bytes}, {"spans", spans}});
}

}  // namespace

// ------------------------------------------------------------ res= knob

ResidencyMode parse_residency(const std::string& s) {
  if (s == "step") return ResidencyMode::kStep;
  if (s == "persist") return ResidencyMode::kPersist;
  throw ConfigError("ResidencyMode: unknown res mode '" + s +
                    "' (want step | persist)");
}

const char* residency_name(ResidencyMode m) noexcept {
  return m == ResidencyMode::kPersist ? "persist" : "step";
}

ResidencyMode residency_from_args(int argc, char** argv) {
  const std::string prefix = "res=";
  for (int a = 1; a < argc; ++a) {
    const std::string s = argv[a];
    if (s.rfind(prefix, 0) == 0) {
      return parse_residency(s.substr(prefix.size()));
    }
  }
  return ResidencyMode::kStep;
}

// ------------------------------------------------------------ DirtySpans

void DirtySpans::add(std::uint64_t off, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t end = off + len;
  if (!spans_.empty()) {
    auto& back = spans_.back();
    if (off >= back.first && off <= back.second) {
      // Ascending-order fast path: extend the last interval in place.
      back.second = std::max(back.second, end);
      return;
    }
    // Appending past the last interval keeps the set sorted; an insert
    // behind it needs a normalize() before the next query.
    if (off < back.first) normalized_ = false;
  }
  spans_.emplace_back(off, end);
}

void DirtySpans::clear() {
  spans_.clear();
  normalized_ = true;
}

void DirtySpans::normalize() const {
  if (normalized_) return;
  std::sort(spans_.begin(), spans_.end());
  std::size_t out = 0;
  for (std::size_t n = 1; n < spans_.size(); ++n) {
    if (spans_[n].first <= spans_[out].second) {
      spans_[out].second = std::max(spans_[out].second, spans_[n].second);
    } else {
      spans_[++out] = spans_[n];
    }
  }
  spans_.resize(out + 1);
  normalized_ = true;
}

std::uint64_t DirtySpans::bytes() const {
  normalize();
  std::uint64_t total = 0;
  for (const auto& s : spans_) total += s.second - s.first;
  return total;
}

std::size_t DirtySpans::spans() const {
  normalize();
  return spans_.size();
}

std::uint64_t DirtySpans::take_range(std::uint64_t off, std::uint64_t len) {
  if (len == 0 || spans_.empty()) return 0;
  normalize();
  const std::uint64_t end = off + len;
  std::uint64_t taken = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> kept;
  kept.reserve(spans_.size() + 1);
  for (const auto& s : spans_) {
    const std::uint64_t lo = std::max(s.first, off);
    const std::uint64_t hi = std::min(s.second, end);
    if (lo >= hi) {
      kept.push_back(s);
      continue;
    }
    taken += hi - lo;
    if (s.first < lo) kept.emplace_back(s.first, lo);
    if (hi < s.second) kept.emplace_back(hi, s.second);
  }
  spans_ = std::move(kept);
  return taken;
}

std::uint64_t DirtySpans::take_ranges(const std::vector<ByteRange>& rows) {
  if (rows.empty() || spans_.empty()) return 0;
  normalize();
  std::uint64_t taken = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> kept;
  kept.reserve(spans_.size());
  std::size_t r = 0;
  for (const auto& s : spans_) {
    std::uint64_t cur = s.first;
    while (cur < s.second) {
      // Skip rows that end at or before the sweep position.
      while (r < rows.size() && rows[r].off + rows[r].len <= cur) ++r;
      if (r == rows.size() || rows[r].off >= s.second) {
        kept.emplace_back(cur, s.second);
        break;
      }
      const std::uint64_t lo = std::max(cur, rows[r].off);
      const std::uint64_t hi = std::min(s.second, rows[r].off + rows[r].len);
      if (cur < lo) kept.emplace_back(cur, lo);
      taken += hi - lo;
      cur = hi;
      // Leave `r` in place: the row may extend into the next span.
    }
  }
  spans_ = std::move(kept);
  return taken;
}

std::uint64_t DirtySpans::take_all() {
  const std::uint64_t total = bytes();
  clear();
  return total;
}

// ------------------------------------------------------------ DataRegion

DataRegion::DataRegion(gpu::Device& device) : device_(&device) {}

DataRegion::~DataRegion() {
  for (FieldId f = 0; f < fields(); ++f) {
    if (slots_[static_cast<std::size_t>(f)].resident) unmap(f);
  }
}

DataRegion::Slot& DataRegion::slot(FieldId f) {
  if (f < 0 || f >= fields()) {
    throw Error("DataRegion: invalid field id " + std::to_string(f));
  }
  return slots_[static_cast<std::size_t>(f)];
}

const DataRegion::Slot& DataRegion::slot(FieldId f) const {
  return const_cast<DataRegion*>(this)->slot(f);
}

FieldId DataRegion::add_field(std::string name, std::uint64_t bytes) {
  Slot s;
  s.name = std::move(name);
  s.bytes = bytes;
  s.host_dirty.add_all(bytes);  // host copy is the only copy so far
  slots_.push_back(std::move(s));
  return fields() - 1;
}

void DataRegion::map_alloc(FieldId f) {
  Slot& s = slot(f);
  if (s.resident) return;  // presence semantics: double-map is a no-op
  device_->alloc_named(s.name, s.bytes);
  s.resident = true;
  resident_bytes_ += s.bytes;
  s.host_dirty.add_all(s.bytes);  // device copy undefined until update_to
  s.device_dirty.clear();
}

void DataRegion::map_to(FieldId f) {
  map_alloc(f);
  Slot& s = slot(f);
  note_region(obs::active(), "h2d", s.name, s.bytes, 1);
  device_->update_to(s.bytes);
  // The full h2d copy makes both sides agree: pending marks on either
  // side are superseded (a stale device-dirty range must not survive a
  // map(to:) that just overwrote the device copy).
  s.host_dirty.clear();
  s.device_dirty.clear();
}

void DataRegion::map_from(FieldId f) {
  Slot& s = slot(f);
  if (!s.resident) {
    throw Error("DataRegion: map_from of non-resident field '" + s.name + "'");
  }
  note_region(obs::active(), "d2h", s.name, s.bytes, 1);
  device_->update_from(s.bytes);
  // Same agreement rule, d2h direction: the copy overwrites the host
  // buffer, so pending host-dirty marks are superseded too.
  s.device_dirty.clear();
  s.host_dirty.clear();
}

void DataRegion::unmap(FieldId f) {
  Slot& s = slot(f);
  if (!s.resident) return;
  device_->free_named(s.name);
  s.resident = false;
  resident_bytes_ -= s.bytes;
  s.host_dirty.add_all(s.bytes);  // host copy is the only one again
  s.device_dirty.clear();
}

void DataRegion::unmap_all() {
  for (FieldId f = 0; f < fields(); ++f) unmap(f);
}

void DataRegion::mark_host_dirty(FieldId f, std::uint64_t off,
                                 std::uint64_t len) {
  Slot& s = slot(f);
  s.host_dirty.add(off, len);
  s.device_dirty.take_range(off, len);  // superseded by the host write
}

void DataRegion::mark_device_dirty(FieldId f, std::uint64_t off,
                                   std::uint64_t len) {
  Slot& s = slot(f);
  s.device_dirty.add(off, len);
  s.host_dirty.take_range(off, len);  // superseded by the device write
}

void DataRegion::mark_host_dirty_ranges(FieldId f,
                                        const std::vector<ByteRange>& rows) {
  Slot& s = slot(f);
  for (const ByteRange& r : rows) s.host_dirty.add(r.off, r.len);
  s.device_dirty.take_ranges(rows);  // superseded by the host writes
}

std::uint64_t DataRegion::update_to(FieldId f) {
  Slot& s = slot(f);
  if (!s.resident) map_alloc(f);
  obs::TraceSink* sink = obs::active();
  const std::size_t spans = sink ? s.host_dirty.spans() : 0;
  const std::uint64_t bytes = s.host_dirty.take_all();
  if (bytes > 0) {
    note_region(sink, "h2d", s.name, bytes, spans);
    device_->update_to(bytes);
  }
  return bytes;
}

std::uint64_t DataRegion::update_to_range(FieldId f, std::uint64_t off,
                                          std::uint64_t len) {
  Slot& s = slot(f);
  if (!s.resident) map_alloc(f);
  obs::TraceSink* sink = obs::active();
  const std::size_t spans = sink ? s.host_dirty.spans() : 0;
  const std::uint64_t bytes = s.host_dirty.take_range(off, len);
  if (bytes > 0) {
    note_region(sink, "h2d", s.name, bytes, spans);
    device_->update_to(bytes);
  }
  return bytes;
}

std::uint64_t DataRegion::update_to_ranges(FieldId f,
                                           const std::vector<ByteRange>& rows) {
  Slot& s = slot(f);
  if (!s.resident) map_alloc(f);
  obs::TraceSink* sink = obs::active();
  const std::size_t spans = sink ? s.host_dirty.spans() : 0;
  const std::uint64_t bytes = s.host_dirty.take_ranges(rows);
  if (bytes > 0) {
    note_region(sink, "h2d", s.name, bytes, spans);
    device_->update_to(bytes);
  }
  return bytes;
}

std::uint64_t DataRegion::update_from(FieldId f) {
  Slot& s = slot(f);
  obs::TraceSink* sink = obs::active();
  const std::size_t spans = sink ? s.device_dirty.spans() : 0;
  const std::uint64_t bytes = s.device_dirty.take_all();
  if (bytes > 0) {
    note_region(sink, "d2h", s.name, bytes, spans);
    device_->update_from(bytes);
  }
  return bytes;
}

std::uint64_t DataRegion::update_from_range(FieldId f, std::uint64_t off,
                                            std::uint64_t len) {
  Slot& s = slot(f);
  obs::TraceSink* sink = obs::active();
  const std::size_t spans = sink ? s.device_dirty.spans() : 0;
  const std::uint64_t bytes = s.device_dirty.take_range(off, len);
  if (bytes > 0) {
    note_region(sink, "d2h", s.name, bytes, spans);
    device_->update_from(bytes);
  }
  return bytes;
}

std::uint64_t DataRegion::update_from_ranges(
    FieldId f, const std::vector<ByteRange>& rows) {
  Slot& s = slot(f);
  if (!s.resident) return 0;
  obs::TraceSink* sink = obs::active();
  const std::size_t spans = sink ? s.device_dirty.spans() : 0;
  const std::uint64_t bytes = s.device_dirty.take_ranges(rows);
  if (bytes > 0) {
    note_region(sink, "d2h", s.name, bytes, spans);
    device_->update_from(bytes);
  }
  return bytes;
}

std::uint64_t DataRegion::update_from_all() {
  std::uint64_t total = 0;
  for (FieldId f = 0; f < fields(); ++f) total += update_from(f);
  return total;
}

}  // namespace wrf::mem
