#include "perfmodel/scaling.hpp"

#include <functional>

#include "util/error.hpp"

namespace wrf::perfmodel {

CpuStepTime cpu_step_time(const WorkProfile& w, const CpuSpec& cpu,
                          const NetworkSpec& net, int nranks,
                          bool use_v0_coal) {
  CpuStepTime t;
  t.coal = cpu.seconds_for_flops(use_v0_coal ? w.coal_flops_v0 : w.coal_flops);
  t.cond_nucl = cpu.seconds_for_flops(w.cond_nucl_flops);
  t.sed = cpu.seconds_for_flops(w.sed_flops);
  t.adv = cpu.seconds_for_flops(w.adv_flops);
  t.comm = net.seconds_for(static_cast<std::uint64_t>(w.halo_messages),
                           static_cast<std::uint64_t>(w.halo_bytes), nranks);
  return t;
}

GpuStepTime gpu_step_time(const WorkProfile& w, const CpuSpec& cpu,
                          const NetworkSpec& net, int nranks,
                          int ranks_per_gpu, double kernel_ms_per_step,
                          double transfer_ms_per_step) {
  if (ranks_per_gpu < 1) throw ConfigError("gpu_step_time: ranks_per_gpu<1");
  GpuStepTime t;
  // Host side keeps nucleation/condensation/sedimentation/advection
  // (the paper offloads only the collision loop).
  t.host = cpu.seconds_for_flops(w.cond_nucl_flops + w.sed_flops +
                                 w.adv_flops);
  t.kernel = kernel_ms_per_step * 1e-3;
  t.transfer = transfer_ms_per_step * 1e-3;
  // Ranks sharing a GPU serialize their kernels and transfers.  Load
  // imbalance softens the penalty: cloudy patches dominate while clear
  // ones underutilize the device (Section VIII's explanation of why
  // 2-4 ranks/GPU still see speedups).  Sharing interleaves busy and
  // idle ranks, so the queueing factor is the *average* utilization,
  // not the worst case.
  const double duty = std::min(1.0, 2.0 * w.coal_fraction_cloudy);
  t.queue = (ranks_per_gpu - 1) * duty * (t.kernel + t.transfer);
  t.comm = net.seconds_for(static_cast<std::uint64_t>(w.halo_messages),
                           static_cast<std::uint64_t>(w.halo_bytes), nranks);
  return t;
}

std::vector<ScalingRow> table7_rows(
    const WorkProfile& profile16, int nsteps, const CpuSpec& cpu,
    const NetworkSpec& net, const gpu::DeviceSpec& dev,
    const DeviceFootprint& footprint, int nkr,
    const std::function<double(double)>& kernel_ms_fn,
    const std::function<double(double)>& transfer_ms_fn) {
  struct Config {
    const char* label;
    int cpu_ranks;  ///< ranks of the CPU-only runs (all cores in use)
    int gpu_ranks;  ///< ranks the GPU run launches (cores on GPU nodes)
    int ngpus;
  };
  // Figure 4's groups: 16 GPUs fixed while ranks grow, then the 2-node
  // equal-resource comparison — 256 CPU cores on 2 CPU nodes vs the GPU
  // build on 2 GPU nodes, which has fewer host cores and is further
  // capped by device memory (the paper lands at 40 ranks over 8 GPUs).
  const Config configs[] = {
      {"16 ranks", 16, 16, 16},
      {"32 ranks", 32, 32, 16},
      {"64 ranks", 64, 64, 16},
      {"2 nodes", 256, 128, 8},
  };

  std::vector<ScalingRow> rows;
  for (const auto& c : configs) {
    ScalingRow row;
    row.label = c.label;
    row.ranks = c.cpu_ranks;
    row.ngpus = c.ngpus;

    // CPU versions always use all cpu_ranks cores.
    const double ratio_cpu = 16.0 / c.cpu_ranks;
    const WorkProfile w_cpu = profile16.scaled_to(ratio_cpu);
    row.baseline_sec =
        cpu_step_time(w_cpu, cpu, net, c.cpu_ranks, /*use_v0_coal=*/true)
            .total() *
        nsteps;
    row.lookup_sec =
        cpu_step_time(w_cpu, cpu, net, c.cpu_ranks, /*use_v0_coal=*/false)
            .total() *
        nsteps;

    // GPU version: device memory caps how many ranks fit per GPU, which
    // caps the total rank count ("limited to 5 MPI tasks per GPU").
    int gpu_ranks = c.gpu_ranks;
    for (;;) {
      const auto cells = static_cast<std::int64_t>(
          profile16.cells * 16.0 / gpu_ranks);
      const int max_rpg = footprint.max_ranks_per_gpu(dev, cells, nkr);
      const int rpg = (gpu_ranks + c.ngpus - 1) / c.ngpus;
      if (rpg <= max_rpg || gpu_ranks <= c.ngpus) {
        row.ranks_per_gpu = rpg;
        break;
      }
      gpu_ranks -= c.ngpus;
    }

    const WorkProfile w_gpu = profile16.scaled_to(16.0 / gpu_ranks);
    const double kms = kernel_ms_fn(w_gpu.cells);
    const double tms = transfer_ms_fn(w_gpu.cells);
    row.gpu_sec = gpu_step_time(w_gpu, cpu, net, gpu_ranks,
                                row.ranks_per_gpu, kms, tms)
                      .total() *
                  nsteps;
    row.speedup = row.baseline_sec / row.gpu_sec;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace wrf::perfmodel
