#include "perfmodel/knobprior.hpp"

#include <algorithm>
#include <cmath>

namespace wrf::perfmodel {
namespace {

// Documented modeling constants.  Like the rest of perfmodel these are
// order-of-magnitude mechanisms, not fitted values — the tuner's
// measured rungs absorb the error; the prior only has to get the
// ordering of the obviously-bad tail right.

// Fraction of DP peak the branchy, lookup-heavy collision kernel
// achieves on the device (Table VI puts the real kernel deep in the
// latency-bound regime).
constexpr double kDeviceKernelEfficiency = 0.10;

// Per-pass dispatch overhead of the host thread pool (wake + join).
constexpr double kThreadDispatchSeconds = 30.0e-6;

// Host passes dispatched per step (advection, cond/nucl, coal, sed) —
// the granularity the thread-pool overhead applies at.
constexpr double kHostPassesPerStep = 4.0;

// Imperfect scaling of the host pool on this code (memory-bound tails,
// serial pack/unpack): speedup = T^alpha.
constexpr double kThreadScalingExponent = 0.85;

// sed=block:N amortizes the per-column terminal-velocity lookups over
// the block; amortization saturates (shared lookups stop being shared
// once the block spans distinct stability regimes).
constexpr double kSedAmortizationCap = 64.0;

// res=persist still moves halo strips and diagnostics each step; model
// it as a small residual fraction of the full res=step traffic.
constexpr double kPersistResidualTraffic = 0.05;

// fuse=auto removes inter-pass d2h+h2d bounces for fused neighbors;
// the analyzer typically fuses cond+coal, saving roughly this fraction
// of the per-step traffic under res=step (under persist there is next
// to nothing left to save).
constexpr double kFuseTrafficSaving = 0.20;

// halo=overlap hides exchange behind interior compute; only part of the
// step is overlappable (the exchange must complete before the next RK3
// substage consumes the halo).
constexpr double kOverlapHideableFraction = 0.5;

double effective_threads(const exec::ExecConfig& e, int hw_threads) {
  int requested = 1;
  switch (e.kind) {
    case exec::ExecKind::kSerial:
    case exec::ExecKind::kDevice:
      return 1.0;
    case exec::ExecKind::kThreads:
    case exec::ExecKind::kHetero:
      requested = e.nthreads > 0 ? e.nthreads : hw_threads;
      break;
  }
  const int t = std::min(std::max(requested, 1), std::max(hw_threads, 1));
  if (t <= 1) return 1.0;
  return std::pow(static_cast<double>(t), kThreadScalingExponent);
}

}  // namespace

double knob_prior_step_seconds(const KnobWork& w, const exec::ExecConfig& e,
                               dyn::HaloMode halo,
                               const fsbm::SedDispatch& sed,
                               mem::ResidencyMode res, exec::FuseMode fuse,
                               const CpuSpec& cpu, const NetworkSpec& net,
                               const gpu::DeviceSpec& dev, int hw_threads) {
  const double threads = effective_threads(e, hw_threads);
  const bool on_device = w.offloaded && (e.kind == exec::ExecKind::kDevice ||
                                         e.kind == exec::ExecKind::kHetero);

  // --- Host compute ------------------------------------------------
  double host_flops = w.cond_nucl_flops + w.sed_flops + w.adv_flops;
  if (!on_device) host_flops += w.coal_flops;
  // sed=column pays the per-column lookup price in full; blocked
  // dispatch amortizes it across min(block, cap) columns.
  double lookup_flops = w.sed_lookup_flops;
  if (sed.kind == fsbm::SedDispatch::Kind::kBlock) {
    const double amort =
        std::min<double>(std::max(sed.block, 1), kSedAmortizationCap);
    lookup_flops /= amort;
  }
  host_flops += lookup_flops;

  double t_host = cpu.seconds_for_flops(host_flops) / threads;
  if (threads > 1.0 || e.kind == exec::ExecKind::kHetero) {
    t_host += kHostPassesPerStep * kThreadDispatchSeconds;
  }

  // --- Device compute + transfers ----------------------------------
  double t_device = 0.0;
  if (on_device) {
    double t_kernel = w.coal_flops /
                      (dev.peak_dp_gflops * 1.0e9 * kDeviceKernelEfficiency);
    double launches = std::max(w.kernel_launches, 1.0);
    if (fuse == exec::FuseMode::kAuto && launches > 1.0) launches -= 1.0;
    t_kernel += launches * dev.kernel_launch_us * 1e-6;

    double xfer_bytes = w.step_h2d_bytes + w.step_d2h_bytes;
    if (res == mem::ResidencyMode::kPersist) {
      xfer_bytes *= kPersistResidualTraffic;
    } else if (fuse == exec::FuseMode::kAuto) {
      xfer_bytes *= 1.0 - kFuseTrafficSaving;
    }
    if (e.kind == exec::ExecKind::kHetero) {
      // The device shard only stages the coal-active fraction.
      xfer_bytes *= std::min(1.0, w.coal_active_fraction + 0.1);
    }
    t_device = t_kernel + xfer_bytes / (dev.host_link_gbs * 1.0e9);
  }

  // hetero runs the host passes and the device coal shard concurrently:
  // the step ends when the slower side does.  device serializes.
  double t_compute;
  if (on_device && e.kind == exec::ExecKind::kHetero) {
    t_compute = std::max(t_host, t_device);
  } else {
    t_compute = t_host + t_device;
  }

  // --- Halo exchange -----------------------------------------------
  double t_halo = 0.0;
  if (w.nranks > 1 && w.halo_messages > 0) {
    t_halo = net.seconds_for(static_cast<std::uint64_t>(w.halo_messages),
                             static_cast<std::uint64_t>(w.halo_bytes),
                             w.nranks);
    if (halo == dyn::HaloMode::kOverlap) {
      t_halo = std::max(0.0, t_halo - kOverlapHideableFraction * t_compute);
    }
  }

  return t_compute + t_halo;
}

}  // namespace wrf::perfmodel
