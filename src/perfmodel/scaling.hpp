#pragma once
// Work profiles and the Table VII / Figure 4 scaling composer.
//
// A WorkProfile captures, per rank-step, the work a functional run
// actually performed (measured at bench scale).  `scaled_to` extrapolates
// it to the CONUS-12km grid by cell ratio — legitimate because FSBM cost
// is per-cell work gated by cloud cover, and the synthetic case holds the
// cloudy fraction roughly constant under refinement.  The composer then
// prices baseline-CPU and GPU-offloaded configurations for any
// (ranks, gpus) combination, including the serialization of multiple
// ranks' kernels on a shared GPU and the ranks-per-GPU memory cap that
// produces the paper's 2-node result.

#include <cmath>
#include <string>
#include <vector>

#include "fsbm/fast_sbm.hpp"
#include "perfmodel/machine.hpp"

namespace wrf::perfmodel {

/// Measured work per rank-step (averages over a functional run).
struct WorkProfile {
  double cells = 0;             ///< grid cells per rank
  double coal_flops = 0;        ///< collision FLOPs (v1 on-demand path)
  double coal_flops_v0 = 0;     ///< collision FLOPs incl. kernals_ks fills
  double cond_nucl_flops = 0;   ///< condensation + nucleation FLOPs
  double sed_flops = 0;
  double adv_flops = 0;         ///< rk_scalar_tend + rk_update_scalar
  double halo_bytes = 0;        ///< sent per rank-step
  double halo_messages = 0;
  double coal_fraction_cloudy = 0.15;  ///< fraction of cells doing real work

  /// Extrapolate to a grid with `cell_ratio` times more cells per rank.
  WorkProfile scaled_to(double cell_ratio) const {
    WorkProfile w = *this;
    w.cells *= cell_ratio;
    w.coal_flops *= cell_ratio;
    w.coal_flops_v0 *= cell_ratio;
    w.cond_nucl_flops *= cell_ratio;
    w.sed_flops *= cell_ratio;
    w.adv_flops *= cell_ratio;
    // Halo traffic scales with the patch perimeter ~ sqrt of cells.
    w.halo_bytes *= std::sqrt(cell_ratio);
    return w;
  }
};

/// CPU step time breakdown for one rank (seconds).
struct CpuStepTime {
  double coal = 0, cond_nucl = 0, sed = 0, adv = 0, comm = 0;
  double total() const { return coal + cond_nucl + sed + adv + comm; }
};

/// Price one CPU rank-step.  `use_v0_coal` selects the baseline's
/// kernals_ks-heavy collision cost.
CpuStepTime cpu_step_time(const WorkProfile& w, const CpuSpec& cpu,
                          const NetworkSpec& net, int nranks,
                          bool use_v0_coal);

/// GPU-offloaded step time for one rank: host physics + device kernel
/// (modeled) + transfers, with `ranks_per_gpu` kernels serialized on the
/// shared device.
struct GpuStepTime {
  double host = 0, kernel = 0, transfer = 0, comm = 0, queue = 0;
  double total() const { return host + kernel + transfer + comm + queue; }
};

GpuStepTime gpu_step_time(const WorkProfile& w, const CpuSpec& cpu,
                          const NetworkSpec& net, int nranks,
                          int ranks_per_gpu, double kernel_ms_per_step,
                          double transfer_ms_per_step);

/// One row of Table VII / one group of Figure 4 bars.
struct ScalingRow {
  std::string label;
  int ranks = 0;
  int ngpus = 0;
  int ranks_per_gpu = 0;
  double baseline_sec = 0;   ///< CPU v0, whole run
  double lookup_sec = 0;     ///< CPU v1, whole run
  double gpu_sec = 0;        ///< offloaded v3, whole run
  double speedup = 0;        ///< baseline / gpu
};

/// The paper's four configurations (16/32/64 ranks with 16 GPUs; the
/// 2-node equal-resource comparison), priced over `nsteps` steps of the
/// full CONUS-12km grid.  `kernel_ms_fn(cells_per_rank)` supplies the
/// modeled collision-kernel milliseconds for a patch of that size
/// (collapse(3) launch), and `transfer_ms_fn` the per-step map costs.
std::vector<ScalingRow> table7_rows(
    const WorkProfile& per_cell_profile_16rank, int nsteps,
    const CpuSpec& cpu, const NetworkSpec& net, const gpu::DeviceSpec& dev,
    const DeviceFootprint& footprint, int nkr,
    const std::function<double(double cells_per_rank)>& kernel_ms_fn,
    const std::function<double(double cells_per_rank)>& transfer_ms_fn);

}  // namespace wrf::perfmodel
