#pragma once
// Machine models: converting counted work into modeled Perlmutter time.
//
// We cannot run on Milan CPUs + A100 GPUs + Slingshot, so the benches
// that reproduce the paper's absolute-scale tables (IV, V, VII/Fig. 4)
// price *measured work counts* (FLOPs, table entries, bytes, messages)
// with explicit hardware models.  Each model is a handful of documented
// constants — the point is that the *shapes* (who wins, crossover
// locations) emerge from mechanism, not from dialing in the answer.
// EXPERIMENTS.md records the calibration (a single throughput constant
// per machine, set so the 16-rank baseline magnitude matches Table VII).

#include <cmath>
#include <cstdint>

#include "gpu/device.hpp"

namespace wrf::perfmodel {

/// One AMD EPYC 7763 (Milan) core running the FSBM/advection code.
struct CpuSpec {
  double freq_ghz = 2.45;
  /// Sustained FLOP/cycle for this (branchy, short-vector) code path;
  /// calibrated, documented in EXPERIMENTS.md.
  double flops_per_cycle = 1.6;
  /// Per-core share of the socket's ~204.8 GB/s.
  double mem_bw_gbs = 3.2;

  static CpuSpec milan() { return CpuSpec{}; }

  /// Seconds to execute `flops` on one core.
  double seconds_for_flops(double flops) const {
    return flops / (freq_ghz * 1.0e9 * flops_per_cycle);
  }
};

/// Slingshot-like interconnect, per-rank effective.
struct NetworkSpec {
  double latency_us = 8.0;       ///< per message, software included
  double bandwidth_gbs = 10.0;   ///< per-rank effective
  /// Synchronization overhead grows with sqrt(ranks) (tree collectives +
  /// jitter); coefficient in microseconds.
  double sync_us_coeff = 40.0;

  static NetworkSpec slingshot() { return NetworkSpec{}; }

  /// Seconds for one rank's halo traffic in one step.
  double seconds_for(std::uint64_t messages, std::uint64_t bytes,
                     int nranks) const {
    const double t_msg = static_cast<double>(messages) * latency_us * 1e-6;
    const double t_bw =
        static_cast<double>(bytes) / (bandwidth_gbs * 1.0e9);
    const double t_sync =
        sync_us_coeff * 1e-6 * std::sqrt(static_cast<double>(nranks));
    return t_msg + t_bw + t_sync;
  }
};

/// One resident-footprint formula — the single source of truth shared by
/// the paper-scale `DeviceFootprint` below and the forecast service's
/// admission control (`svc::job_footprint_bytes`): an inventory of
/// nkr-sized bin arrays, elem-sized 3-D arrays, and 1-byte 3-D predicate
/// arrays over `cells` grid points, plus fixed per-rank reservations.
/// Keeping both callers on this helper is what makes the scheduler's
/// packing constraint and the paper's ranks-per-GPU analysis agree on
/// per-rank bytes (asserted in tests/test_svc.cpp).
struct ResidentInventory {
  int bin_arrays = 0;      ///< nkr-sized 4-D arrays
  int arrays_3d = 0;       ///< elem-sized 3-D arrays
  int byte_arrays_3d = 0;  ///< 1-byte 3-D arrays (predicates)
  int elem_bytes = 8;
  std::uint64_t fixed_bytes = 0;  ///< patch-size-independent reservations
};

inline std::uint64_t resident_footprint_bytes(const ResidentInventory& inv,
                                              std::int64_t cells, int nkr) {
  const std::uint64_t per_cell =
      static_cast<std::uint64_t>(inv.bin_arrays) *
          static_cast<std::uint64_t>(nkr) *
          static_cast<std::uint64_t>(inv.elem_bytes) +
      static_cast<std::uint64_t>(inv.arrays_3d) *
          static_cast<std::uint64_t>(inv.elem_bytes) +
      static_cast<std::uint64_t>(inv.byte_arrays_3d);
  return static_cast<std::uint64_t>(cells) * per_cell + inv.fixed_bytes;
}

/// Per-rank device-resident memory of the full FSBM scheme.
///
/// Our mini scheme maps 7 bin fields + pools; the real fast_sbm maps on
/// the order of a hundred nkr-sized 4-D arrays (multiple time levels,
/// supersaturation and tendency fields, remap scratch, the temp_arrays
/// pools) plus dozens of 3-D fields, largely in double precision on the
/// device.  This inventory is what capped the paper at 5 MPI ranks per
/// 40 GB GPU in the 2-node experiment; the constants below encode that
/// documented inventory.
struct DeviceFootprint {
  int bin_arrays = 60;    ///< nkr-sized 4-D arrays resident per rank
                          ///< (distributions at two time levels, tendencies,
                          ///< supersaturation fields, remap scratch, pools)
  int arrays_3d = 40;     ///< plain 3-D fields resident per rank
  int elem_bytes = 8;     ///< FSBM device arrays are double precision

  /// Fixed, patch-size-independent reservations each rank makes on the
  /// device.  Dominated by the CUDA local-memory (stack) reservation:
  /// NV_ACC_CUDA_STACKSIZE bytes for every thread that *could* be
  /// resident for the heavy kernel — 65536 B x 640 threads/SM (the
  /// 90-register occupancy limit) x 108 SMs = ~4.5 GB — plus the CUDA
  /// context and the raised NV_ACC_CUDA_HEAPSIZE pool.  This is what
  /// caps ranks-per-GPU almost independently of patch size, which is
  /// why the paper's 2-node run is "limited to 5 MPI tasks per GPU".
  std::uint64_t stack_reservation_bytes = 65536ull * 640 * 108;
  std::uint64_t context_bytes = 500ull << 20;
  std::uint64_t heap_bytes = 64ull << 20;

  std::uint64_t per_rank_bytes(std::int64_t cells, int nkr) const {
    ResidentInventory inv;
    inv.bin_arrays = bin_arrays;
    inv.arrays_3d = arrays_3d;
    inv.elem_bytes = elem_bytes;
    inv.fixed_bytes = stack_reservation_bytes + context_bytes + heap_bytes;
    return resident_footprint_bytes(inv, cells, nkr);
  }

  /// How many ranks of `cells` grid points fit on one device.
  int max_ranks_per_gpu(const gpu::DeviceSpec& dev, std::int64_t cells,
                        int nkr) const {
    const std::uint64_t per_rank = per_rank_bytes(cells, nkr);
    if (per_rank == 0) return 1 << 20;
    return static_cast<int>(dev.dram_bytes / per_rank);
  }
};

}  // namespace wrf::perfmodel
