#pragma once
// Knob-configuration prior: price one (exec, halo, sed, res, fuse) knob
// choice from a measured work profile, cheaply enough to rank a whole
// search space without running it.
//
// This is the perfmodel side of the autotuner's prior+corrector split
// (src/tune): the tuner measures ONE probe run of the base config,
// distills it into a KnobWork profile (counted flops, lookups, bytes —
// work, not wall time), and prices every candidate configuration with
// the same explicit machine models the Table IV/VII benches use.  The
// prior's job is ordering, not accuracy: it prunes the obviously bad
// corner of the grid, and short measured runs (successive halving)
// correct it on the actual host.  Constants follow the documented
// perfmodel calibration style (see machine.hpp / EXPERIMENTS.md).

#include "dyn/rk3.hpp"
#include "exec/exec.hpp"
#include "exec/passgraph.hpp"
#include "fsbm/sedimentation.hpp"
#include "mem/residency.hpp"
#include "perfmodel/machine.hpp"

namespace wrf::perfmodel {

/// Measured work per rank-step, distilled from one probe run of the
/// base configuration (tune::Tuner::probe).
struct KnobWork {
  double cells = 0;             ///< grid cells per rank
  double coal_flops = 0;        ///< collision FLOPs per rank-step
  double cond_nucl_flops = 0;
  double sed_flops = 0;
  double adv_flops = 0;
  /// Priced cost of the sedimentation terminal-velocity lookups under
  /// sed=column (the blocked solver amortizes these ~blockwise).
  double sed_lookup_flops = 0;
  double step_h2d_bytes = 0;    ///< per-launch transfer bytes, res=step
  double step_d2h_bytes = 0;
  double halo_bytes = 0;        ///< sent per rank-step
  double halo_messages = 0;
  double kernel_launches = 0;   ///< per rank-step, fuse=off
  /// Fraction of cells inside the coal predicate (the hetero split).
  double coal_active_fraction = 0.15;
  bool offloaded = false;       ///< v2/v3: collision runs on the device
  int nranks = 1;
};

/// Modeled seconds for one rank-step of `work` under the given knobs.
/// Lower is better; only the ORDERING is consumed (tune::Tuner ranks by
/// this, then measures).  `hw_threads` caps the host-thread speedup.
double knob_prior_step_seconds(const KnobWork& work,
                               const exec::ExecConfig& exec,
                               dyn::HaloMode halo,
                               const fsbm::SedDispatch& sed,
                               mem::ResidencyMode res, exec::FuseMode fuse,
                               const CpuSpec& cpu, const NetworkSpec& net,
                               const gpu::DeviceSpec& dev, int hw_threads);

}  // namespace wrf::perfmodel
