#include "fsbm/bins.hpp"

#include <cmath>

#include "util/constants.hpp"

namespace wrf::fsbm {

namespace c = wrf::constants;

const char* species_name(Species s) {
  switch (s) {
    case Species::kLiquid: return "liquid";
    case Species::kIceColumn: return "ice_column";
    case Species::kIcePlate: return "ice_plate";
    case Species::kIceDendrite: return "ice_dendrite";
    case Species::kSnow: return "snow";
    case Species::kGraupel: return "graupel";
    case Species::kHail: return "hail";
  }
  return "?";
}

double BinGrid::bulk_density(Species s) {
  switch (s) {
    case Species::kLiquid: return c::kRhoWater;
    case Species::kIceColumn: return 700.0;
    case Species::kIcePlate: return 850.0;
    case Species::kIceDendrite: return 500.0;
    case Species::kSnow: return 100.0;   // fluffy aggregates
    case Species::kGraupel: return 400.0;
    case Species::kHail: return 900.0;
  }
  return c::kRhoWater;
}

BinGrid::BinGrid(int nkr) : nkr_(nkr), dln_(std::log(2.0)) {
  if (nkr < 4) throw ConfigError("BinGrid: nkr must be >= 4");
  // m0: 2 um radius water drop.
  const double r0 = 2.0e-6;
  const double m0 = 4.0 / 3.0 * c::kPi * c::kRhoWater * r0 * r0 * r0;
  mass_.resize(static_cast<std::size_t>(nkr));
  for (int k = 0; k < nkr; ++k) {
    mass_[static_cast<std::size_t>(k)] = m0 * std::ldexp(1.0, k);
  }
  for (int s = 0; s < kNumSpecies; ++s) {
    const double rho = bulk_density(static_cast<Species>(s));
    auto& rad = radius_[static_cast<std::size_t>(s)];
    rad.resize(static_cast<std::size_t>(nkr));
    for (int k = 0; k < nkr; ++k) {
      rad[static_cast<std::size_t>(k)] =
          std::cbrt(3.0 * mass_[static_cast<std::size_t>(k)] /
                    (4.0 * c::kPi * rho));
    }
  }
}

double BinGrid::terminal_velocity_base(Species s, int k) const {
  // Piecewise power laws v = a * (r / r_ref)^b, capped, per class —
  // Stokes regime for droplets, Best-number-like fits for precipitation.
  const double r = radius(s, k);
  double v;
  switch (s) {
    case Species::kLiquid:
      if (r < 40e-6) {
        v = 1.19e8 * r * r;               // Stokes: ~1.2e8 r^2
      } else if (r < 0.6e-3) {
        v = 8.0e3 * r;                    // linear regime
      } else {
        v = 2.2e2 * std::sqrt(r);         // large raindrops, ~9 m/s cap
      }
      if (v > 9.2) v = 9.2;
      break;
    case Species::kIceColumn:
    case Species::kIcePlate:
    case Species::kIceDendrite:
      v = 7.0e2 * std::pow(r, 0.8);
      if (v > 1.2) v = 1.2;
      break;
    case Species::kSnow:
      v = 5.0 * std::pow(r, 0.25);
      if (v > 1.8) v = 1.8;
      break;
    case Species::kGraupel:
      v = 1.1e2 * std::pow(r, 0.57);
      if (v > 12.0) v = 12.0;
      break;
    case Species::kHail:
      v = 5.0e2 * std::pow(r, 0.6);
      if (v > 45.0) v = 45.0;
      break;
    default:
      v = 0.0;
  }
  return v;
}

double BinGrid::density_correction(double rho_air) {
  // Air-density correction: falls faster in thin air.  rho0 = 1.225.
  return std::sqrt(1.225 / (rho_air > 0.05 ? rho_air : 0.05));
}

double BinGrid::terminal_velocity(Species s, int k, double rho_air) const {
  return terminal_velocity_base(s, k) * density_correction(rho_air);
}

int BinGrid::bin_floor(double m) const {
  if (m <= mass_[0]) return 0;
  // Mass-doubling grid: bin index is log2(m/m0), O(1).
  const int k = static_cast<int>(std::floor(std::log2(m / mass_[0])));
  if (k >= nkr_ - 1) return nkr_ - 1;
  return k < 0 ? 0 : k;
}

}  // namespace wrf::fsbm
