#pragma once
// Spectral bin discretization for the FSBM scheme.
//
// FSBM (Khain et al. 2004; Shpund et al. 2019) represents each
// hydrometeor class by a discrete size distribution on a mass-doubling
// grid of nkr bins (nkr = 33 in WRF; the paper notes it can be extended
// to hundreds, with cost scaling quadratically).  This module owns the
// bin grid: masses, radii per hydrometeor class (different bulk
// densities), logarithmic bin widths, and terminal velocities including
// the air-density (pressure) correction that makes the collision-kernel
// tables pressure-dependent (the 750 mb / 500 mb tables of Listing 3).

#include <array>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace wrf::fsbm {

/// Number of ice-crystal habits tracked separately (FSBM's `icemax`).
inline constexpr int kIceMax = 3;

/// Hydrometeor classes carried by the fast scheme.
enum class Species : int {
  kLiquid = 0,    ///< cloud drops + rain (one continuous spectrum)
  kIceColumn = 1, ///< columnar ice crystals
  kIcePlate = 2,  ///< plate ice crystals
  kIceDendrite = 3, ///< dendritic ice crystals
  kSnow = 4,      ///< snowflakes / aggregates
  kGraupel = 5,
  kHail = 6,
};
inline constexpr int kNumSpecies = 7;

const char* species_name(Species s);

/// True for the three ice-crystal habits.
inline bool is_ice_crystal(Species s) {
  return s == Species::kIceColumn || s == Species::kIcePlate ||
         s == Species::kIceDendrite;
}

/// The mass-doubling bin grid shared by all species.
///
/// Bin k holds particles of mass m(k) = m0 * 2^k, k = 0..nkr-1, where m0
/// is the mass of a 2 um-radius water drop.  Radii are derived per
/// species from an effective bulk density (snow is fluffy, hail dense).
class BinGrid {
 public:
  /// nkr >= 4; 33 reproduces WRF's FSBM configuration.
  explicit BinGrid(int nkr = 33);

  int nkr() const noexcept { return nkr_; }

  /// Particle mass of bin k, kg.
  double mass(int k) const { return mass_.at(static_cast<std::size_t>(k)); }
  /// Radius of bin k for species s, m.
  double radius(Species s, int k) const {
    return radius_[static_cast<std::size_t>(s)][static_cast<std::size_t>(k)];
  }
  /// ln(m_{k+1}/m_k) = ln 2: logarithmic bin width (uniform by design).
  double dln() const noexcept { return dln_; }

  /// Terminal velocity (m/s) of bin k of species s at air density rho
  /// (kg/m^3).  Power-law fits per class with the (rho0/rho)^0.5 density
  /// correction — the pressure dependence behind the two-level kernel
  /// tables.
  ///
  /// Factored as terminal_velocity_base(s, k) * density_correction(rho):
  /// the base power-law is the expensive part (pow/sqrt on the radius)
  /// and depends only on (species, bin), while the correction depends
  /// only on the level's air density.  The blocked sedimentation solver
  /// exploits the split — one base lookup per bin per block, one
  /// correction per (level, column) per block — and the product is
  /// evaluated with exactly the same operations as this function, so
  /// both paths are bitwise identical.
  double terminal_velocity(Species s, int k, double rho_air) const;

  /// The capped power-law fall speed of bin k of species s at reference
  /// air density (1.225 kg/m^3) — terminal_velocity without the density
  /// correction.
  double terminal_velocity_base(Species s, int k) const;

  /// The (rho0/rho)^0.5 air-density correction factor (falls faster in
  /// thin air); rho is floored at 0.05 kg/m^3.
  static double density_correction(double rho_air);

  /// Index of the largest bin whose mass is <= m (clamped to [0,nkr-1]).
  /// Used by the collision gain term to place coalesced mass.
  int bin_floor(double m) const;

  /// Effective bulk density of species s, kg/m^3.
  static double bulk_density(Species s);

 private:
  int nkr_;
  double dln_;
  std::vector<double> mass_;
  std::array<std::vector<double>, kNumSpecies> radius_;
};

}  // namespace wrf::fsbm
