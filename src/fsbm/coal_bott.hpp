#pragma once
// Collision-coalescence for one grid cell: the paper's `coal_bott_new`.
//
// A Bott-style flux method on the mass-doubling bin grid: for every
// active (collected bin i, collector bin j) pair of every
// temperature-gated interaction, a number-based collection rate moves
// mass out of both source bins and deposits the coalesced mass into the
// destination class at mass m_i + m_j, split between the two bracketing
// bins so that both mass and number are conserved exactly.
//
// The routine works on a per-cell workspace of bin arrays (`fl1`, `g2`,
// `g3`, ...), mirroring the Fortran original's automatic arrays
// (Listing 7).  Who owns that workspace is precisely the paper's v2/v3
// distinction:
//   * v0-v2: stack ("automatic") arrays — cheap thread-local storage,
//     but per-resident-thread heap demand on the simulated device;
//   * v3: slices of persistent device pools ("temp_arrays" module,
//     Listing 8) — no per-thread allocation, enabling collapse(3), at
//     the price of global-memory traffic for every workspace access
//     (the DRAM increase in Table VI).
//
// Kernel values come through `KernelSource`, which hides the v0
// (precomputed CollisionArrays) vs v1+ (on-demand get_cw) strategies.

#include <cstdint>

#include "fsbm/bins.hpp"
#include "fsbm/kernels.hpp"

namespace wrf::fsbm {

/// Compile-time upper bound on nkr for stack workspaces (the paper
/// discusses extending 33 bins to "a few hundred").
inline constexpr int kMaxNkr = 264;

/// Abstraction over where kernel values come from.
class KernelSource {
 public:
  /// v0: read from arrays precomputed by kernals_ks for this cell.
  explicit KernelSource(const CollisionArrays& pre)
      : pre_(&pre), tables_(nullptr), pres_pa_(0.0) {}

  /// v1+: compute entries on demand at cell pressure `pres_pa`.
  /// `device_fma` selects the FMA-contracted device arithmetic used by
  /// the offloaded versions (the source of the paper's 3-6-digit
  /// CPU-vs-GPU differences).
  KernelSource(const KernelTables& tables, double pres_pa,
               bool device_fma = false)
      : pre_(nullptr), tables_(&tables), pres_pa_(pres_pa),
        device_fma_(device_fma) {}

  float k(CollisionPair p, int i, int j) const {
    ++lookups_;
    if (pre_ != nullptr) return pre_->at(p, i, j);
    return device_fma_ ? tables_->get_cw_device(p, i, j, pres_pa_)
                       : tables_->get_cw(p, i, j, pres_pa_);
  }

  bool on_demand() const noexcept { return tables_ != nullptr; }
  std::uint64_t lookups() const noexcept { return lookups_; }

 private:
  const CollisionArrays* pre_;
  const KernelTables* tables_;
  double pres_pa_;
  bool device_fma_ = false;
  mutable std::uint64_t lookups_ = 0;
};

/// Per-cell bin workspace, FSBM naming: fl1 = liquid, g2 = ice crystals
/// (nkr x icemax), g3 = snow, g4 = graupel, g5 = hail.  Pointers may
/// target stack buffers (v0-v2) or pooled device arrays (v3).
struct CoalWorkspace {
  float* fl1 = nullptr;
  float* g2 = nullptr;  ///< nkr * kIceMax, habit-major slabs
  float* g3 = nullptr;
  float* g4 = nullptr;
  float* g5 = nullptr;

  /// Bytes of workspace one cell needs (drives the device heap check).
  static constexpr std::uint64_t bytes_per_cell(int nkr) {
    return static_cast<std::uint64_t>(nkr) * (4 + kIceMax) * sizeof(float);
  }
};

/// Work accounting for the performance model and Table III/IV analysis.
struct CoalStats {
  std::uint64_t kernel_lookups = 0;  ///< cw values fetched/computed
  std::uint64_t interactions = 0;    ///< (i,j) pairs that moved mass
  std::uint64_t pairs_active = 0;    ///< of the 20 classes, how many ran
  double flops = 0.0;
};

struct CoalConfig {
  double dt = 5.0;          ///< seconds (CONUS-12km time step)
  double gmin = 1.0e-14;    ///< kg/kg; bins below this are empty
  double max_frac = 0.9;    ///< max fraction of a bin consumed per step
};

/// Run collision-coalescence on the workspace distributions for a cell
/// at temperature `temp_k`.  Interactions are gated exactly as FSBM
/// gates them: liquid-liquid always (the caller guarantees TT > 223.15
/// per Listing 1), ice-phase interactions only below freezing.
CoalStats coal_bott_new(const BinGrid& bins, double temp_k,
                        const KernelSource& ks, const CoalWorkspace& w,
                        const CoalConfig& cfg);

/// One pairwise collection sweep: distribution `ga` (species `sa`)
/// collected by `gb` (species `sb`), coalesced mass deposited into `gd`
/// (species `sd`).  `ga`, `gb`, `gd` may alias for self-collection.
/// Exposed for unit testing of conservation properties.
CoalStats collect_pair(const BinGrid& bins, CollisionPair pair,
                       const KernelSource& ks, float* ga, float* gb,
                       float* gd, const CoalConfig& cfg);

}  // namespace wrf::fsbm
