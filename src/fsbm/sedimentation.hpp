#pragma once
// Bin sedimentation: gravitational fallout of every bin of every class.
//
// First-order upwind transport in the vertical with per-bin terminal
// velocities and CFL sub-stepping; the flux through the lowest level
// accumulates as surface precipitation.  Two solvers share the same
// numerics:
//
//   * sediment_column — one column at a time, the shape of FSBM's
//     original fall-speed loops.  Terminal velocities are looked up per
//     (bin, level, substep), which is the unamortized cost the paper's
//     hotspot analysis flags; it stays as the oracle the blocked solver
//     is tested against.
//   * sediment_block — a tile of `ncol` columns at once in SoA layout
//     (see below).  The per-bin terminal-velocity power law is hoisted
//     out of the column/level/substep loops (one lookup per bin per
//     block) and the per-level density corrections are computed once per
//     block and shared across all bins, so lookups are amortized by the
//     block width and more.  Bitwise identical to sediment_column per
//     column (asserted in tests/test_fsbm_properties.cpp).
//
// SoA block layout (column-minor, so the inner loop vectorizes across
// columns):
//
//   g_blk[(iz * nkr + k) * ncol + c]   bin k, level iz, column c
//   rho_blk[iz * ncol + c]             per-level air density
//
// iz = 0 is the surface.  Lockstep sub-stepping rule: for each bin the
// block marches a worst-case substep count (the max CFL substep count
// over its columns) so every column advances through the substep loop in
// lockstep; a column that needs fewer substeps keeps its own dt/nsub
// substep length and is masked out once its own count is exhausted.
// Each column therefore performs exactly the arithmetic the per-column
// solver would, which is what makes the blocked path bitwise identical
// for any block width and any block composition.
//
// Device residency: both solvers run host-side and rewrite every bin
// column, so under res=persist the fast_sbm sedimentation passes mark
// the full bin fields dirty in their epilogues (host-dirty under a host
// exec space, device-dirty under exec=device where the pass is modeled
// as a device kernel) — see FastSbm::mark_written and mem/residency.hpp.

#include <cstdint>
#include <string>

#include "fsbm/bins.hpp"

namespace wrf::fsbm {

struct SedConfig {
  double dt = 5.0;
  double dz = 400.0;       ///< uniform layer thickness, m
  double gmin = 1.0e-14;
  /// Scales every terminal velocity (sensitivity studies and the
  /// zero-velocity fixed-point property test).  The default of 1.0 is
  /// bitwise neutral (multiplication by 1.0 is exact).
  double vel_scale = 1.0;
};

struct SedStats {
  double surface_precip = 0.0;  ///< kg/kg column-equivalent mass removed
  /// Per-column CFL substeps, summed over bins and columns — identical
  /// between the column and blocked solvers.
  std::uint64_t substeps = 0;
  /// Substeps the solver actually marched: equals `substeps` for the
  /// column path; the per-block worst case summed over bins for the
  /// blocked path (<= substeps, since N columns share each march).
  std::uint64_t lockstep_substeps = 0;
  /// Terminal-velocity power-law evaluations.  The column solver pays
  /// one per (bin, level, substep); the blocked solver one per bin per
  /// block — the amortization the bench sweep reports.
  std::uint64_t tv_lookups = 0;
  /// Air-density correction (sqrt) evaluations.  One per tv lookup in
  /// the column solver; one per (level, column) per block — shared
  /// across all bins and species substeps — in the blocked solver.
  std::uint64_t corr_evals = 0;
  double flops = 0.0;

  void merge(const SedStats& o) {
    surface_precip += o.surface_precip;
    substeps += o.substeps;
    lockstep_substeps += o.lockstep_substeps;
    tv_lookups += o.tv_lookups;
    corr_evals += o.corr_evals;
    flops += o.flops;
  }
};

/// Sediment one species' column.  `g_col` holds nz levels of nkr bins,
/// level-major: g_col[iz * nkr + k], iz = 0 at the surface.  `rho` is the
/// per-level air density (nz entries).  Returns mass delivered to the
/// surface (sum over bins of rho-weighted flux, normalized by level 0).
SedStats sediment_column(const BinGrid& bins, Species sp, float* g_col,
                         const double* rho, int nz, const SedConfig& cfg);

/// Sediment one species over a block of `ncol` columns in the SoA layout
/// documented above.  `precip_col` (ncol entries) receives each column's
/// surface precipitation; SedStats.surface_precip is their sum.  Per
/// column, results are bitwise identical to sediment_column on the same
/// data for any ncol >= 1.
SedStats sediment_block(const BinGrid& bins, Species sp, float* g_blk,
                        const double* rho_blk, int nz, int ncol,
                        const SedConfig& cfg, double* precip_col);

/// The `sed=` knob: how fast_sbm dispatches sedimentation columns.
struct SedDispatch {
  enum class Kind : int { kColumn = 0, kBlock = 1 };
  Kind kind = Kind::kColumn;
  int block = 8;  ///< columns per block when kind == kBlock

  /// Parse "column" | "block" | "block:N" (N >= 1); throws ConfigError
  /// on anything else.
  static SedDispatch parse(const std::string& s);

  /// Render back to the knob syntax ("column", "block:8", ...).
  std::string describe() const;
};

/// Scan argv for a `sed=<mode>` argument (any position); returns the
/// default (column) when absent.  Shared by the examples and benches,
/// like exec::exec_from_args and dyn::halo_mode_from_args.
SedDispatch sed_from_args(int argc, char** argv);

}  // namespace wrf::fsbm
