#pragma once
// Bin sedimentation: gravitational fallout of every bin of every class.
//
// First-order upwind transport in the vertical with per-bin terminal
// velocities and CFL sub-stepping; the flux through the lowest level
// accumulates as surface precipitation.  Operates on one column at a
// time, which is how FSBM's fall-speed loops are structured.

#include <cstdint>

#include "fsbm/bins.hpp"

namespace wrf::fsbm {

struct SedConfig {
  double dt = 5.0;
  double dz = 400.0;       ///< uniform layer thickness, m
  double gmin = 1.0e-14;
};

struct SedStats {
  double surface_precip = 0.0;  ///< kg/kg column-equivalent mass removed
  std::uint64_t substeps = 0;
  double flops = 0.0;
};

/// Sediment one species' column.  `g_col` holds nz levels of nkr bins,
/// level-major: g_col[iz * nkr + k], iz = 0 at the surface.  `rho` is the
/// per-level air density (nz entries).  Returns mass delivered to the
/// surface (sum over bins of rho-weighted flux, normalized by level 0).
SedStats sediment_column(const BinGrid& bins, Species sp, float* g_col,
                         const double* rho, int nz, const SedConfig& cfg);

}  // namespace wrf::fsbm
