#pragma once
// Drop activation and ice nucleation: FSBM's jernucl01_ks.
//
// Liquid: Twomey-type CCN activation N_act = N_ccn * S^kappa; newly
// activated droplets enter the smallest liquid bin.  Ice: Meyers-type
// deposition nucleation N_in = N0 * exp(a + b * S_ice) for T < -5 C,
// with the crystal habit selected by temperature band (columns, plates,
// dendrites), entering the smallest bin of that habit.  Both paths
// conserve water and apply latent heating.

#include <cstdint>

#include "fsbm/bins.hpp"
#include "fsbm/coal_bott.hpp"

namespace wrf::fsbm {

struct NuclConfig {
  double dt = 5.0;
  double n_ccn = 1.2e8;     ///< available CCN, per kg of air (continental)
  double kappa = 0.5;       ///< activation-spectrum exponent
  double meyers_a = -0.639; ///< Meyers et al. (1992) intercept
  double meyers_b = 12.96;  ///< Meyers slope on ice supersaturation
  double n_in_max = 1.0e5;  ///< cap on ice nuclei, per kg
  double gmin = 1.0e-14;
};

struct NuclStats {
  double dq_activated = 0.0;   ///< vapor -> new droplets, kg/kg
  double dq_ice_nucl = 0.0;    ///< vapor -> new crystals, kg/kg
  std::uint64_t events = 0;
  double flops = 0.0;
};

/// Nucleate new particles in one cell; updates temp, qv, and the
/// workspace distributions.
NuclStats jernucl01_ks(const BinGrid& bins, double& temp_k, double& qv,
                       double pres_pa, const CoalWorkspace& w,
                       const NuclConfig& cfg);

}  // namespace wrf::fsbm
