#pragma once
// The fast_sbm driver: FSBM's per-step entry point, in the paper's four
// optimization stages.
//
//   kV0Baseline       — Listing 1 as found: one serial i/k/j loop doing
//                       nucleation, condensation, and collisions per
//                       cell, with `kernals_ks` refilling all 20 global
//                       collision arrays for every cell.
//   kV1LookupOnDemand — Section VI-A: kernals_ks and the global arrays
//                       deleted; collision code calls get_cw on demand.
//   kV2Offload2       — Section VI-B: loop fission isolates the
//                       collision call behind a predicate array
//                       (`call_coal_bott_new`), and the outer 2 loops are
//                       offloaded (`collapse(2)`); coal_bott_new keeps
//                       its automatic arrays (device-heap workspace).
//   kV3Offload3       — Section VI-C: automatic arrays hoisted into
//                       persistent device pools (`temp_arrays` module),
//                       enabling collapse(3).
//
// All versions compute the same physics; v2/v3 run their collision pass
// through a gpu::Device (functional execution + performance model).
// A fifth mode, kV3NaiveCollapse3, offloads collapse(3) while keeping
// automatic arrays — it exists to reproduce the CUDA memory error the
// paper hit before introducing the pools.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "exec/exec.hpp"
#include "exec/passgraph.hpp"
#include "fsbm/coal_bott.hpp"
#include "fsbm/hybrid.hpp"
#include "fsbm/kernels.hpp"
#include "fsbm/nucleation.hpp"
#include "fsbm/onecond.hpp"
#include "fsbm/sedimentation.hpp"
#include "fsbm/state.hpp"
#include "gpu/device.hpp"
#include "mem/residency.hpp"
#include "obs/registry.hpp"
#include "prof/prof.hpp"

namespace wrf::fsbm {

enum class Version : int {
  kV0Baseline = 0,
  kV1LookupOnDemand = 1,
  kV2Offload2 = 2,
  kV3Offload3 = 3,
  kV3NaiveCollapse3 = 4,  ///< reproduces the §VI-B memory error
};

const char* version_name(Version v);

/// Tunable parameters of the scheme (paper values as defaults).
struct FsbmParams {
  double dt = 5.0;               ///< CONUS-12km time step, s
  double t_active = 193.15;      ///< Listing 1: cells colder than this skip
  double t_coal = 223.15;        ///< Listing 1: collision gate (TT >)
  CoalConfig coal;
  CondConfig cond;
  NuclConfig nucl;
  SedConfig sed;
  /// The `sed=` knob: per-column oracle vs the blocked multi-column
  /// solver (sediment_block) with gather/scatter through per-thread
  /// block buffers.  Both produce bitwise-identical state.
  SedDispatch sed_dispatch;
  /// Registers/thread of the offloaded collision kernel; limits
  /// occupancy at full collapse (Table VI's 35.67%).
  int coal_regs_per_thread = 90;
  /// The Fortran routine declares ~30 automatic bin arrays (Listing 7
  /// shows the first few); this inventory sets the per-thread device
  /// workspace for the heap check.
  int automatic_array_count = 30;

  /// §VIII extension ("the loops calling condensation routines are
  /// currently being offloaded using a similar approach"): when true,
  /// the offloaded versions also run nucleation+condensation as a
  /// second device kernel (fissioned behind its own predicate), leaving
  /// only sedimentation on the host.
  bool offload_condensation = false;
  int cond_regs_per_thread = 72;

  /// The `fuse=` knob (see exec/passgraph.hpp): cross-pass kernel
  /// fusion.  kAuto fuses adjacent device passes the analyzer proves
  /// legal — cond+coal when offload_condensation is on — into one
  /// launch, skipping the inter-pass transfer round-trip; kOff keeps
  /// the paper's one-launch-per-pass layout.  Both modes produce
  /// bitwise-identical state and physics statistics.
  exec::FuseMode fuse = exec::FuseMode::kOff;

  /// The `phys=` knob (fsbm/hybrid.hpp): bin runs the full FSBM chain
  /// everywhere (the default); bulk runs the Kessler scheme everywhere;
  /// hybrid adapts per cell through the fidelity field.  phys=hybrid
  /// with hybrid.override_mode == kAllBin is bitwise identical to
  /// phys=bin — state, physics stats, and transfer traffic (asserted in
  /// tests/test_hybrid.cpp).
  PhysScheme phys = PhysScheme::kBin;
  HybridConfig hybrid;

  /// The `res=` knob (offloaded versions only; a no-op for v0/v1).
  /// kStep opens a per-launch `target data` region around every
  /// collision pass — all fields h2d before, bin fields d2h after, the
  /// paper's as-ported behavior.  kPersist keeps the fields resident on
  /// the device across steps with per-field dirty tracking, so steady-
  /// state transfers shrink to what actually changed hands (see
  /// mem/residency.hpp and the README data-environment section).
  mem::ResidencyMode residency = mem::ResidencyMode::kStep;
};

/// Per-call statistics (work counters drive src/perfmodel).
struct FsbmStats {
  std::uint64_t cells_active = 0;      ///< passed the 193.15 K gate
  std::uint64_t cells_coal = 0;        ///< called coal_bott_new
  std::uint64_t kernel_table_fills = 0;///< v0: kernals_ks invocations
  std::uint64_t kernel_entries = 0;    ///< cw entries computed (any path)
  std::uint64_t coal_interactions = 0;
  double coal_flops = 0.0;
  double cond_flops = 0.0;
  double nucl_flops = 0.0;
  double sed_flops = 0.0;
  /// Sedimentation work counters (SedStats aggregated over columns or
  /// blocks): per-column CFL substeps are dispatch-invariant; lookup and
  /// correction counts are what the column-vs-block bench sweep reports.
  std::uint64_t sed_substeps = 0;
  std::uint64_t sed_lockstep_substeps = 0;
  std::uint64_t sed_tv_lookups = 0;
  std::uint64_t sed_corr_evals = 0;
  double surface_precip = 0.0;
  /// Host wall seconds of the whole call and of the collision section.
  double wall_total_sec = 0.0;
  double wall_coal_sec = 0.0;
  /// Kernel launches issued during the call (offloaded passes plus any
  /// exec=device nest dispatches) and the modeled fixed launch latency
  /// they paid (launches * DeviceSpec::kernel_launch_us).  Cross-pass
  /// fusion's first win is making these drop with the physics bitwise
  /// unchanged; surfaced here so benches need no device introspection.
  std::uint64_t kernel_launches = 0;
  double launch_latency_ms = 0.0;
  /// Device-side numbers (v2/v3 only).
  std::optional<gpu::KernelStats> coal_kernel;
  std::optional<gpu::KernelStats> cond_kernel;  ///< §VIII extension
  double h2d_ms = 0.0;
  double d2h_ms = 0.0;
  /// Transfer traffic of the microphysics passes in bytes and transfer
  /// counts (gpu::TransferStats deltas) — what the residency sweep
  /// reports; res=persist collapses these while the physics stays
  /// bitwise identical.
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t h2d_transfers = 0;
  std::uint64_t d2h_transfers = 0;
  /// Heterogeneous dispatch (exec=hetero): the coal pass's predicate
  /// split.  Cells routed to the device shard (tiles containing at least
  /// one coal-active cell) vs the predicate-false remainder handled by
  /// the host shard, and each shard's wall seconds (the two overlap, so
  /// the pass wall is ~max, not the sum).  Zero under every other exec.
  std::uint64_t shard_cells_device = 0;
  std::uint64_t shard_cells_host = 0;
  double shard_wall_device_sec = 0.0;
  double shard_wall_host_sec = 0.0;
  /// Hybrid microphysics (phys=bulk|hybrid): the fidelity census after
  /// each step's fidelity pass (cells summed over steps), the fidelity
  /// transitions that fired, and the bulk population's work.  All zero
  /// under phys=bin.  `bulk_precip` is also included in surface_precip
  /// (both populations share the SedStats kg/kg column-equivalent units
  /// contract), so conservation checks read one number.
  std::uint64_t cells_bin = 0;
  std::uint64_t cells_bulk = 0;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  double bulk_flops = 0.0;
  double bulk_precip = 0.0;

  /// Charge the device transfer delta [t0, now) into these counters.
  /// The link rate is direction-independent, so the modeled-ms delta
  /// splits exactly in proportion to the byte deltas (a one-direction
  /// bracket attributes its full ms to that direction, bitwise).
  void charge_transfer_delta(const gpu::TransferStats& t0,
                             const gpu::TransferStats& now);

  void merge(const FsbmStats& o);

  /// publish() contract (obs/registry.hpp): add every counter above
  /// into `reg` under the wrf_fsbm_*/wrf_xfer_*/wrf_shard_*/
  /// wrf_fidelity_* names, byte-exact (e.g. the
  /// wrf_xfer_bytes_total{dir="h2d"} counter receives exactly
  /// h2d_bytes, so registry totals reconcile with this struct and with
  /// gpu::TransferStats — the gate in tests/test_obs.cpp).  Publishing
  /// N partials accumulates like merging them first.
  void publish(obs::Registry& reg) const;
};

/// One rank's FSBM scheme instance.  Owns the kernel tables and the v3
/// device pools.  v0's "global" collision arrays became per-executing-
/// thread blocks when the host passes moved onto the exec layer (the
/// shared Fortran globals are exactly what Codee flagged as blocking
/// parallelization; the per-cell refill cost they imply is preserved).
///
/// Statistics are accumulated into per-tile partials and merged in tile
/// order (FsbmStats::merge), so a threaded pass produces bitwise the
/// same stats as a serial one — no mutex, no atomics on the host path.
class FastSbm {
 public:
  /// `device` is required for the offloaded versions and ignored
  /// otherwise.  The device's heap/stack limits control whether the
  /// naive collapse(3) reproduction throws (as on Perlmutter before
  /// NV_ACC_CUDA_HEAPSIZE was raised).
  ///
  /// `exec` selects how the *host* loop nests (pass_physics for v0/v1,
  /// sedimentation) are dispatched; nullptr means exec::serial().  The
  /// offloaded collision/condensation passes always go through the
  /// device, independent of `exec`.
  FastSbm(const grid::Patch& patch, int nkr, Version version,
          FsbmParams params = {}, gpu::Device* device = nullptr,
          exec::ExecSpace* exec = nullptr);

  /// Advance microphysics one step over the patch's computational range.
  /// Profiler ranges: "fast_sbm" (whole call), "coal_bott_new_loop"
  /// (collision section), matching the paper's NVTX annotation points.
  FsbmStats step(MicroState& state, prof::Profiler& prof);

  Version version() const noexcept { return version_; }
  const KernelTables& tables() const noexcept { return tables_; }
  const FsbmParams& params() const noexcept { return params_; }

  /// Device bytes the v3 pools occupy (0 for host versions); used by the
  /// perfmodel's ranks-per-GPU memory analysis.
  std::uint64_t pool_bytes() const noexcept { return pool_bytes_; }

  /// Field registrations of this scheme's device data environment
  /// (all kInvalidField for host-only versions).
  struct ResidencyFields {
    ResidencyFields() { ff.fill(mem::kInvalidField); }
    mem::FieldId qv = mem::kInvalidField;
    mem::FieldId temp = mem::kInvalidField;
    mem::FieldId pres = mem::kInvalidField;
    mem::FieldId call_coal = mem::kInvalidField;
    std::array<mem::FieldId, kNumSpecies> ff;
  };
  const ResidencyFields& residency_fields() const noexcept { return ids_; }

  /// The device data environment the offloaded passes transfer through
  /// (nullptr for host-only versions).  Under res=persist the model
  /// driver binds this region into the halo exchange so unpacked shell
  /// strips mark sub-field dirty ranges.
  mem::DataRegion* region() noexcept { return region_; }

  /// Bytes pinned resident on the device under res=persist (0 under
  /// res=step, where maps are per-launch transients).
  std::uint64_t resident_bytes() const noexcept {
    return region_ != nullptr ? region_->resident_bytes() : 0;
  }

  /// The per-step pass chain and its fusion schedule (the `fuse=`
  /// knob), built once at construction — field footprints and tile
  /// plans are static per run.  Exposed so tests and benches can
  /// inspect which adjacent pairs fused and the analyzer's reasons.
  const exec::PassGraph& pass_graph() const noexcept { return graph_; }
  const exec::Schedule& schedule() const noexcept { return schedule_; }

  /// res=persist: the dynamics transport (an RK3 stage update) rewrote
  /// qv and every bin field — stale the device copies (host exec
  /// spaces) or advance them (exec=device models the tendency/update
  /// nests as device kernels, whose read-coherence flush may move h2d
  /// bytes; they are charged into `st` when given).  The model driver
  /// calls this before each halo round after the first and once after
  /// the final stage.  No-op unless res=persist.
  void mark_transport_writes(FsbmStats* st = nullptr);

 private:
  struct CellRef {
    int i, k, j;
  };

  /// Step prologue under phys=bulk|hybrid: resolve each cell's fidelity
  /// for this step (promote/demote transitions with hysteresis, or the
  /// override), apply the bin<->bulk transforms, and re-collapse cells
  /// that stay bulk (advection smears neighbor bins into them).  Never
  /// runs under phys=bin.
  void pass_fidelity(MicroState& state, FsbmStats& st, prof::Profiler& prof);

  /// One bulk cell's physics (the Kessler scheme on the carried
  /// moments); shares the t_active inertness gate with the bin body.
  /// Returns the flops run (0 when the gate skipped the cell).
  double physics_bulk_cell(MicroState& state, int i, int k, int j);

  /// True when the whole computational column at (i, j) is bulk
  /// fidelity — the sedimentation passes then run the Kessler column
  /// solver on the rain carrier instead of the liquid bin solver.
  bool column_all_bulk(int i, int j) const;

  /// Kessler sedimentation of one bulk column's rain carrier: updates
  /// the carrier bins and the work counters, returns the surface precip
  /// so each caller can fold it into `state.precip` and
  /// `surface_precip` in its own accumulation order (the blocked path
  /// routes it through the species-0 slot of its precip matrix to keep
  /// the per-column path's (column, species) order).
  double sediment_bulk_column(MicroState& state, int i, int j,
                              FsbmStats& pt);

  /// Pass 1: nucleation + condensation per cell; fills the coal
  /// predicate for v2/v3 or runs collisions inline for v0/v1.
  void pass_physics(MicroState& state, FsbmStats& st, prof::Profiler& prof);

  /// Pass 2 (v2/v3): the isolated, offloaded collision loop (Listing 6).
  void pass_coal_offload(MicroState& state, FsbmStats& st,
                         prof::Profiler& prof);

  /// Heterogeneous collision pass (exec=hetero): predicate-split the
  /// pass's row-tile plan, launch the kernel over only the device-shard
  /// tiles (shard-granular h2d/d2h through the data region) while the
  /// host shard walks the predicate-false remainder concurrently.
  void pass_coal_hetero(MicroState& state, FsbmStats& st,
                        prof::Profiler& prof);

  /// Memory rows (sorted ascending, disjoint) covering the device-shard
  /// tiles of `sp`, in CELLS of the shared scalar geometry — one walk;
  /// callers scale offsets and lengths to each field's per-cell bytes
  /// (nkr*sizeof(float) for bin fields, sizeof(float) for thermo
  /// scalars, 1 for the predicate).
  void shard_rows(const exec::SplitPlan& sp, const exec::Range3& range,
                  std::vector<mem::ByteRange>* cell_rows) const;

  /// §VIII extension: nucleation+condensation as a device kernel.
  void pass_cond_offload(MicroState& state, FsbmStats& st,
                         prof::Profiler& prof);

  /// Fused cond+coal launch (fuse=auto when the analyzer approves the
  /// pair): one kernel whose lanes run both pass bodies back to back
  /// for their own cell, skipping the inter-pass transfer round-trip.
  /// Bitwise identical to pass_cond_offload + pass_coal_offload — the
  /// legality proof (analyzer/fusion.hpp) is exactly the pointwise
  /// condition that makes lane-sequential execution equal to two
  /// sequential full passes.
  void pass_cond_coal_fused(MicroState& state, FsbmStats& st,
                            prof::Profiler& prof);

  void pass_sedimentation(MicroState& state, FsbmStats& st,
                          prof::Profiler& prof);

  /// The blocked sedimentation path (sed=block:N): tiles gather N
  /// columns at a time into a reusable per-thread SoA block buffer, run
  /// sediment_block, and scatter back.
  void pass_sedimentation_blocked(MicroState& state, FsbmStats& st,
                                  prof::Profiler& prof);

  /// Per-launch counters of an offloaded collision kernel; relaxed
  /// atomics so lanes may run on any shard or pool thread.
  struct CoalCounters {
    std::atomic<std::uint64_t> interactions{0};
    std::atomic<std::uint64_t> lookups{0};
    std::atomic<std::uint64_t> cells{0};
  };

  /// One offloaded collision lane (Listing 6's body): predicate gate,
  /// device-FMA kernel source, stack vs pooled workspace.  Shared by
  /// the full-pass launch and the hetero device shard so the two
  /// dispatch modes can never drift apart per cell.
  void coal_run_cell(MicroState& state, int i, int k, int j, bool pooled,
                     CoalCounters& c);

  /// Per-launch counters of the offloaded condensation kernel.
  struct CondCounters {
    std::atomic<std::uint64_t> active{0};
    std::atomic<std::uint64_t> coal_cells{0};
    /// flops * 1000 as an integer so relaxed adds stay exact.
    std::atomic<std::uint64_t> flops_milli{0};
    /// Bulk-fidelity lanes' Kessler flops (phys=bulk|hybrid only).
    std::atomic<std::uint64_t> bulk_flops_milli{0};
  };

  /// One offloaded condensation lane (the §VIII body): predicate
  /// refill, activity gate, nucleation + condensation, writeback.
  /// Shared by the standalone cond launch and the fused cond+coal
  /// launch so the two can never drift apart per cell.
  void cond_run_cell(MicroState& state, int i, int k, int j,
                     const CondConfig& cond_cfg, const NuclConfig& nucl_cfg,
                     CondCounters& cnt);

  /// Memory-access trace of one condensation lane (cache model).
  void emit_cond_trace(const MicroState& state, int i, int k, int j,
                       std::vector<gpu::AccessEvent>& out) const;

  /// The offloaded kernel's flop model: 24 per interaction + 4 per
  /// kernel lookup.
  static double coal_flops_model(std::uint64_t interactions,
                                 std::uint64_t lookups) noexcept {
    return 24.0 * static_cast<double>(interactions) +
           4.0 * static_cast<double>(lookups);
  }

  /// Run collisions for one cell with a stack workspace (v0-v2 path).
  void coal_cell_stack(MicroState& state, int i, int k, int j,
                       const KernelSource& ks, CoalStats& cst);

  /// Run collisions for one cell with pooled workspace slices (v3 path).
  void coal_cell_pooled(MicroState& state, int i, int k, int j,
                        const KernelSource& ks, CoalStats& cst);

  /// Copy state bins into a workspace / back.
  static void load_workspace(const MicroState& s, int i, int k, int j,
                             const CoalWorkspace& w);
  static void store_workspace(MicroState& s, int i, int k, int j,
                              const CoalWorkspace& w);

  /// Emit the memory-access trace one collision iteration generates
  /// (for the device cache model).  `pooled` decides whether workspace
  /// traffic hits global memory.
  void emit_coal_trace(const MicroState& state, int i, int k, int j,
                       bool pooled, std::vector<gpu::AccessEvent>& out) const;

  /// The execution space host passes dispatch through (never null).
  exec::ExecSpace& exec_space() const noexcept {
    return exec_ != nullptr ? *exec_ : exec::serial();
  }

  bool persist() const noexcept {
    return region_ != nullptr &&
           params_.residency == mem::ResidencyMode::kPersist;
  }

  /// Mark the fields a pass wrote: host passes stale the device copy
  /// (host-dirty); passes dispatched on the device (exec=device, or the
  /// offloaded kernels themselves) advance the device copy instead
  /// (device-dirty, after a read-coherence h2d flush of pending host
  /// writes — the kernel consumed current operands).  No-op unless
  /// res=persist.
  void mark_written(const std::vector<mem::FieldId>& ids, bool on_device);

  /// Shared pass epilogue: mark_written for the bin fields (plus the
  /// thermo state + predicate when `thermo`), charging any
  /// read-coherence flush bytes into `st`.  No-op unless res=persist.
  void mark_pass_writes(FsbmStats& st, bool on_device, bool thermo);

  /// Strip-granular device-dirty marks for the collision kernel's
  /// writes: one bin-slice range per predicate-flagged cell, walked in
  /// memory order so adjacent active cells coalesce.
  void mark_coal_writes(const MicroState& state);

  grid::Patch patch_;
  Version version_;
  FsbmParams params_;
  gpu::Device* device_;
  exec::ExecSpace* exec_;
  /// Offload dispatch wrapper around device_ (launch + transfer
  /// accounting); set iff device_ is set.  Under exec=hetero over the
  /// same device this aliases the HeteroSpace's device shard (one data
  /// region, one launch ledger); otherwise it points at
  /// device_space_owned_.
  exec::DeviceSpace* device_space_ = nullptr;
  std::unique_ptr<exec::DeviceSpace> device_space_owned_;
  /// Set when `exec` is a HeteroSpace: the offloaded coal pass then
  /// predicate-splits across the space's two shards.
  exec::HeteroSpace* hetero_ = nullptr;
  BinGrid bins_;
  KernelTables tables_;
  /// v3's temp_arrays module: pooled per-cell workspaces on the device.
  std::unique_ptr<Field4D<float>> pool_fl1_, pool_g2_, pool_g3_, pool_g4_,
      pool_g5_;
  Field3D<std::uint8_t> call_coal_;  ///< the predicate array of Listing 6
  /// Per-cell fidelity (kFidelityBin/kFidelityBulk) and the demotion
  /// patience counters.  Initialized all-bin / zero; only read or
  /// written when params_.phys != kBin.
  Field3D<std::uint8_t> fidelity_;
  Field3D<std::uint8_t> calm_steps_;
  /// False until the first fidelity pass: the cold-start pass applies
  /// the fidelity rule directly (no demotion patience), so a fresh run
  /// does not spend `demote_patience` steps running every calm cell at
  /// bin fidelity.
  bool fidelity_initialized_ = false;
  std::uint64_t pool_bytes_ = 0;
  /// The device data environment (owned by device_space_); null for
  /// host-only versions.
  mem::DataRegion* region_ = nullptr;
  ResidencyFields ids_;
  /// True when `exec` is a DeviceSpace: host passes are then modeled as
  /// device-resident kernels, so their writes advance the device copy.
  bool exec_device_ = false;
  /// The per-step pass chain (PassNodes with footprints + embedded
  /// kernel sources) and its fusion schedule under params_.fuse.
  exec::PassGraph graph_;
  exec::Schedule schedule_;
};

}  // namespace wrf::fsbm
