#include "fsbm/nucleation.hpp"

#include <algorithm>
#include <cmath>

#include "util/constants.hpp"

namespace wrf::fsbm {

namespace c = wrf::constants;

namespace {
/// Total number concentration (per kg) in a bin distribution.
double number_in(const BinGrid& bins, const float* g, double gmin) {
  double n = 0.0;
  for (int k = 0; k < bins.nkr(); ++k) {
    if (g[k] > gmin) n += g[k] / bins.mass(k);
  }
  return n;
}
}  // namespace

NuclStats jernucl01_ks(const BinGrid& bins, double& temp_k, double& qv,
                       double pres_pa, const CoalWorkspace& w,
                       const NuclConfig& cfg) {
  NuclStats st;
  const int nkr = bins.nkr();
  const double m0 = bins.mass(0);

  // --- CCN activation (homogeneous drop freezing limit at -40 C) ---
  const double qs_w = c::qsat_liquid(temp_k, pres_pa);
  const double s_w = qv / qs_w - 1.0;
  if (s_w > 0.0 && temp_k > 233.15) {
    // Twomey spectrum: cumulative activated CCN at supersaturation s_w
    // (expressed in percent, as activation spectra conventionally are).
    const double n_act =
        cfg.n_ccn * std::min(1.0, std::pow(100.0 * s_w, cfg.kappa));
    const double n_have = number_in(bins, w.fl1, cfg.gmin);
    double n_new = n_act - n_have;
    // Ignore float-roundoff residuals of an already-saturated spectrum.
    if (n_new > 1.0e-6 * n_act) {
      double dq = n_new * m0;
      // Activation cannot consume more than the available excess vapor.
      const double avail = std::max(0.0, 0.5 * (qv - qs_w));
      if (dq > avail) {
        dq = avail;
        n_new = dq / m0;
      }
      if (dq > 0.0) {
        w.fl1[0] = static_cast<float>(w.fl1[0] + dq);
        qv -= dq;
        temp_k += c::kLv / c::kCp * dq;
        st.dq_activated += dq;
        ++st.events;
      }
    }
    st.flops += 25.0;
  }

  // --- Meyers deposition-condensation ice nucleation ---
  const double qs_i = c::qsat_ice(temp_k, pres_pa);
  const double s_i = qv / qs_i - 1.0;
  if (s_i > 0.0 && temp_k < 268.15) {
    double n_in =
        1.0e3 * std::exp(cfg.meyers_a + cfg.meyers_b * std::min(s_i, 0.25));
    n_in = std::min(n_in, cfg.n_in_max);
    // Habit selection by temperature band (Magono-Lee morphology):
    // -5..-10 C columns, -10..-20 C plates, colder: dendrites.
    const double tc = temp_k - c::kT0;
    float* target;
    if (tc > -10.0) {
      target = w.g2;                    // columns
    } else if (tc > -20.0) {
      target = w.g2 + nkr;              // plates
    } else {
      target = w.g2 + 2 * nkr;          // dendrites
    }
    const double n_have = number_in(bins, w.g2, cfg.gmin) +
                          number_in(bins, w.g2 + nkr, cfg.gmin) +
                          number_in(bins, w.g2 + 2 * nkr, cfg.gmin);
    double n_new = n_in - n_have;
    if (n_new > 1.0e-6 * n_in) {
      double dq = n_new * m0;
      const double avail = std::max(0.0, 0.5 * (qv - qs_i));
      if (dq > avail) dq = avail;
      if (dq > 0.0) {
        target[0] = static_cast<float>(target[0] + dq);
        qv -= dq;
        temp_k += c::kLs / c::kCp * dq;
        st.dq_ice_nucl += dq;
        ++st.events;
      }
    }
    st.flops += 40.0;
  }
  return st;
}

}  // namespace wrf::fsbm
