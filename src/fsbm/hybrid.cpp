#include "fsbm/hybrid.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wrf::fsbm {

const char* phys_name(PhysScheme p) {
  switch (p) {
    case PhysScheme::kBin: return "bin";
    case PhysScheme::kBulk: return "bulk";
    case PhysScheme::kHybrid: return "hybrid";
  }
  return "?";
}

PhysScheme parse_phys(const std::string& s) {
  if (s == "bin") return PhysScheme::kBin;
  if (s == "bulk") return PhysScheme::kBulk;
  if (s == "hybrid") return PhysScheme::kHybrid;
  throw ConfigError("phys: unknown mode '" + s +
                    "' (want bin | bulk | hybrid)");
}

PhysScheme phys_from_args(int argc, char** argv) {
  for (int a = 1; a < argc; ++a) {
    const std::string arg(argv[a]);
    if (arg.rfind("phys=", 0) == 0) return parse_phys(arg.substr(5));
  }
  return PhysScheme::kBin;
}

BulkMoments demote_liquid(float* liq, int nkr, const HybridConfig& cfg) {
  BulkMoments m;
  for (int n = 0; n < cfg.rain_bin_cut; ++n) m.qc += liq[n];
  for (int n = cfg.rain_bin_cut; n < nkr; ++n) m.qr += liq[n];
  for (int n = 0; n < nkr; ++n) liq[n] = 0.0f;
  liq[cfg.cloud_carrier_bin] = static_cast<float>(m.qc);
  liq[cfg.rain_carrier_bin] = static_cast<float>(m.qr);
  return m;
}

void promote_liquid(float* liq, int nkr, const HybridConfig& cfg) {
  // Integrate first (strays from advection included), exactly like
  // demote, so promote(x) and promote(demote(x)) see the same moments.
  double qc = 0.0, qr = 0.0;
  for (int n = 0; n < cfg.rain_bin_cut; ++n) qc += liq[n];
  for (int n = cfg.rain_bin_cut; n < nkr; ++n) qr += liq[n];

  // Cloud mode: Gaussian in bin index around the cloud carrier (a narrow
  // droplet mode); rain tail: exponential decay from the cut, the
  // Marshall-Palmer shape a one-moment qr implies.  Both weight sets are
  // normalized in double before any float store, so the reconstructed
  // spectrum carries each category's mass to rounding ulps.
  constexpr double kCloudWidth = 3.0;
  constexpr double kRainScale = 4.0;
  double wc_sum = 0.0, wr_sum = 0.0;
  for (int n = 0; n < cfg.rain_bin_cut; ++n) {
    const double d = (n - cfg.cloud_carrier_bin) / kCloudWidth;
    wc_sum += std::exp(-0.5 * d * d);
  }
  for (int n = cfg.rain_bin_cut; n < nkr; ++n) {
    wr_sum += std::exp(-(n - cfg.rain_bin_cut) / kRainScale);
  }
  for (int n = 0; n < cfg.rain_bin_cut; ++n) {
    const double d = (n - cfg.cloud_carrier_bin) / kCloudWidth;
    liq[n] = static_cast<float>(qc * std::exp(-0.5 * d * d) / wc_sum);
  }
  for (int n = cfg.rain_bin_cut; n < nkr; ++n) {
    liq[n] = static_cast<float>(
        qr * std::exp(-(n - cfg.rain_bin_cut) / kRainScale) / wr_sum);
  }
}

}  // namespace wrf::fsbm
