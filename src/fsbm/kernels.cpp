#include "fsbm/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "util/constants.hpp"

namespace wrf::fsbm {

namespace c = wrf::constants;

namespace {
struct PairDef {
  Species a;
  Species b;
  const char* name;
};

constexpr PairDef kPairs[kNumPairs] = {
    {Species::kLiquid, Species::kLiquid, "cwll"},
    {Species::kLiquid, Species::kSnow, "cwls"},
    {Species::kLiquid, Species::kGraupel, "cwlg"},
    {Species::kLiquid, Species::kHail, "cwlh"},
    {Species::kLiquid, Species::kIceColumn, "cwli_1"},
    {Species::kLiquid, Species::kIcePlate, "cwli_2"},
    {Species::kLiquid, Species::kIceDendrite, "cwli_3"},
    {Species::kSnow, Species::kSnow, "cwss"},
    {Species::kSnow, Species::kGraupel, "cwsg"},
    {Species::kSnow, Species::kHail, "cwsh"},
    {Species::kIceColumn, Species::kSnow, "cwsi_1"},
    {Species::kIcePlate, Species::kSnow, "cwsi_2"},
    {Species::kIceDendrite, Species::kSnow, "cwsi_3"},
    {Species::kGraupel, Species::kGraupel, "cwgg"},
    {Species::kGraupel, Species::kHail, "cwgh"},
    {Species::kHail, Species::kHail, "cwhh"},
    {Species::kIceColumn, Species::kIceColumn, "cwii_1"},
    {Species::kIcePlate, Species::kIcePlate, "cwii_2"},
    {Species::kIceDendrite, Species::kIceDendrite, "cwii_3"},
    {Species::kIceColumn, Species::kGraupel, "cwig"},
};
}  // namespace

Species pair_a(CollisionPair p) { return kPairs[static_cast<int>(p)].a; }
Species pair_b(CollisionPair p) { return kPairs[static_cast<int>(p)].b; }
const char* pair_name(CollisionPair p) {
  return kPairs[static_cast<int>(p)].name;
}

double KernelTables::collision_efficiency(double r_small, double r_large) {
  // Hall-like shape: efficiency rises steeply with collector size and
  // with the size ratio; tiny collectors barely collect.
  if (r_large < 5.0e-6) return 1.0e-4;
  const double size_term = std::min(1.0, std::pow(r_large / 50.0e-6, 2.0));
  const double ratio = std::min(1.0, r_small / r_large);
  const double ratio_term = 0.15 + 0.85 * ratio * (2.0 - ratio);
  const double e = size_term * ratio_term;
  return std::clamp(e, 1.0e-4, 1.0);
}

double KernelTables::hydrodynamic_kernel(const BinGrid& bins, Species a,
                                         int ka, Species b, int kb,
                                         double rho_air) {
  const double ra = bins.radius(a, ka);
  const double rb = bins.radius(b, kb);
  const double va = bins.terminal_velocity(a, ka, rho_air);
  const double vb = bins.terminal_velocity(b, kb, rho_air);
  double dv = std::abs(va - vb);
  // Same-class same-bin pairs have |dv| = 0; turbulence keeps a floor on
  // relative motion so that self-collection is not identically zero.
  const double dv_floor = 0.01 * std::max(va, vb) + 1.0e-4;
  if (dv < dv_floor) dv = dv_floor;
  const double sum_r = ra + rb;
  const double eff = collision_efficiency(std::min(ra, rb), std::max(ra, rb));
  return c::kPi * sum_r * sum_r * dv * eff;
}

KernelTables::KernelTables(const BinGrid& bins) : nkr_(bins.nkr()) {
  // Air densities at the two reference levels (T ~ 273 K and 253 K are
  // representative of those pressures in the CONUS soundings).
  const double rho750 = kTableP750 / (c::kRd * 273.0);
  const double rho500 = kTableP500 / (c::kRd * 253.0);
  const auto n = static_cast<std::size_t>(nkr_);
  for (int p = 0; p < kNumPairs; ++p) {
    auto& t750 = yw750_[static_cast<std::size_t>(p)];
    auto& t500 = yw500_[static_cast<std::size_t>(p)];
    t750.assign(n * n, 0.0f);
    t500.assign(n * n, 0.0f);
    const Species a = kPairs[p].a;
    const Species b = kPairs[p].b;
    for (int i = 0; i < nkr_; ++i) {
      for (int j = 0; j < nkr_; ++j) {
        t750[static_cast<std::size_t>(i) * n + j] = static_cast<float>(
            hydrodynamic_kernel(bins, a, i, b, j, rho750));
        t500[static_cast<std::size_t>(i) * n + j] = static_cast<float>(
            hydrodynamic_kernel(bins, a, i, b, j, rho500));
      }
    }
  }
}

std::uint64_t KernelTables::kernals_ks(double pres_pa,
                                       CollisionArrays& out) const {
  // Listing 3: the doubly nested loop over all nkr x nkr entries of all
  // 20 arrays, re-run for every grid cell in the baseline code.
  const auto n = static_cast<std::size_t>(nkr_);
  for (int p = 0; p < kNumPairs; ++p) {
    const auto& t750 = yw750_[static_cast<std::size_t>(p)];
    const auto& t500 = yw500_[static_cast<std::size_t>(p)];
    auto& cw = out.cw[static_cast<std::size_t>(p)];
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        const float ckern_1 = t750[i * n + j];
        const float ckern_2 = t500[i * n + j];
        cw[i * n + j] = interp(ckern_1, ckern_2, pres_pa);
      }
    }
  }
  return static_cast<std::uint64_t>(kNumPairs) * n * n;
}

}  // namespace wrf::fsbm
