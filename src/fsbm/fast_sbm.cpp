#include "fsbm/fast_sbm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "analyzer/embedded_sources.hpp"
#include "analyzer/fusion.hpp"
#include "obs/trace.hpp"
#include "util/constants.hpp"

namespace wrf::fsbm {

namespace c = wrf::constants;

namespace {

using Clock = std::chrono::steady_clock;

/// PassNode tags: which FastSbm pass a graph node dispatches to.
constexpr int kTagPre = 1;   ///< cond kernel or host physics
constexpr int kTagCoal = 2;  ///< offloaded collision pass
constexpr int kTagSed = 3;   ///< sedimentation

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Stack-resident workspace buffer: the C++ analogue of the Fortran
/// automatic arrays fl1(33), g2(33,icemax), g3(33), ... of Listing 7.
struct StackWorkspace {
  float buf[(4 + kIceMax) * kMaxNkr];

  CoalWorkspace view(int nkr) {
    CoalWorkspace w;
    w.fl1 = buf;
    w.g2 = buf + nkr;
    w.g3 = buf + nkr * (1 + kIceMax);
    w.g4 = buf + nkr * (2 + kIceMax);
    w.g5 = buf + nkr * (3 + kIceMax);
    return w;
  }
};

}  // namespace

const char* version_name(Version v) {
  switch (v) {
    case Version::kV0Baseline: return "v0-baseline";
    case Version::kV1LookupOnDemand: return "v1-lookup-on-demand";
    case Version::kV2Offload2: return "v2-offload-collapse2";
    case Version::kV3Offload3: return "v3-offload-collapse3";
    case Version::kV3NaiveCollapse3: return "v3-naive-collapse3";
  }
  return "?";
}

void FsbmStats::merge(const FsbmStats& o) {
  cells_active += o.cells_active;
  cells_coal += o.cells_coal;
  kernel_table_fills += o.kernel_table_fills;
  kernel_entries += o.kernel_entries;
  coal_interactions += o.coal_interactions;
  coal_flops += o.coal_flops;
  cond_flops += o.cond_flops;
  nucl_flops += o.nucl_flops;
  sed_flops += o.sed_flops;
  sed_substeps += o.sed_substeps;
  sed_lockstep_substeps += o.sed_lockstep_substeps;
  sed_tv_lookups += o.sed_tv_lookups;
  sed_corr_evals += o.sed_corr_evals;
  surface_precip += o.surface_precip;
  wall_total_sec += o.wall_total_sec;
  wall_coal_sec += o.wall_coal_sec;
  kernel_launches += o.kernel_launches;
  launch_latency_ms += o.launch_latency_ms;
  h2d_ms += o.h2d_ms;
  d2h_ms += o.d2h_ms;
  h2d_bytes += o.h2d_bytes;
  d2h_bytes += o.d2h_bytes;
  h2d_transfers += o.h2d_transfers;
  d2h_transfers += o.d2h_transfers;
  shard_cells_device += o.shard_cells_device;
  shard_cells_host += o.shard_cells_host;
  shard_wall_device_sec += o.shard_wall_device_sec;
  shard_wall_host_sec += o.shard_wall_host_sec;
  cells_bin += o.cells_bin;
  cells_bulk += o.cells_bulk;
  promotions += o.promotions;
  demotions += o.demotions;
  bulk_flops += o.bulk_flops;
  bulk_precip += o.bulk_precip;
  if (o.coal_kernel) coal_kernel = o.coal_kernel;
  if (o.cond_kernel) cond_kernel = o.cond_kernel;
}

void FsbmStats::charge_transfer_delta(const gpu::TransferStats& t0,
                                      const gpu::TransferStats& now) {
  const std::uint64_t h2d = now.h2d_bytes - t0.h2d_bytes;
  const std::uint64_t d2h = now.d2h_bytes - t0.d2h_bytes;
  h2d_bytes += h2d;
  d2h_bytes += d2h;
  h2d_transfers += now.h2d_count - t0.h2d_count;
  d2h_transfers += now.d2h_count - t0.d2h_count;
  const double ms = now.modeled_time_ms - t0.modeled_time_ms;
  const double total = static_cast<double>(h2d) + static_cast<double>(d2h);
  if (total > 0) {
    h2d_ms += ms * (static_cast<double>(h2d) / total);
    d2h_ms += ms * (static_cast<double>(d2h) / total);
  }
}

void FsbmStats::publish(obs::Registry& reg) const {
  using Labels = obs::Registry::Labels;
  auto C = [&](const char* n, double v, Labels l = {}) {
    reg.counter(n, v, std::move(l));
  };
  C("wrf_fsbm_cells_active_total", static_cast<double>(cells_active));
  C("wrf_fsbm_cells_coal_total", static_cast<double>(cells_coal));
  C("wrf_fsbm_kernel_table_fills_total",
    static_cast<double>(kernel_table_fills));
  C("wrf_fsbm_kernel_entries_total", static_cast<double>(kernel_entries));
  C("wrf_fsbm_coal_interactions_total",
    static_cast<double>(coal_interactions));
  C("wrf_fsbm_flops_total", coal_flops, {{"pass", "coal"}});
  C("wrf_fsbm_flops_total", cond_flops, {{"pass", "cond"}});
  C("wrf_fsbm_flops_total", nucl_flops, {{"pass", "nucl"}});
  C("wrf_fsbm_flops_total", sed_flops, {{"pass", "sed"}});
  C("wrf_fsbm_flops_total", bulk_flops, {{"pass", "bulk"}});
  C("wrf_fsbm_sed_substeps_total", static_cast<double>(sed_substeps));
  C("wrf_fsbm_sed_lockstep_substeps_total",
    static_cast<double>(sed_lockstep_substeps));
  C("wrf_fsbm_sed_tv_lookups_total", static_cast<double>(sed_tv_lookups));
  C("wrf_fsbm_sed_corr_evals_total", static_cast<double>(sed_corr_evals));
  C("wrf_fsbm_surface_precip_total", surface_precip);
  C("wrf_fsbm_bulk_precip_total", bulk_precip);
  C("wrf_fsbm_wall_seconds_total", wall_total_sec, {{"section", "total"}});
  C("wrf_fsbm_wall_seconds_total", wall_coal_sec, {{"section", "coal"}});
  C("wrf_kernel_launches_total", static_cast<double>(kernel_launches));
  C("wrf_kernel_launch_latency_ms_total", launch_latency_ms);
  C("wrf_xfer_bytes_total", static_cast<double>(h2d_bytes),
    {{"dir", "h2d"}});
  C("wrf_xfer_bytes_total", static_cast<double>(d2h_bytes),
    {{"dir", "d2h"}});
  C("wrf_xfer_transfers_total", static_cast<double>(h2d_transfers),
    {{"dir", "h2d"}});
  C("wrf_xfer_transfers_total", static_cast<double>(d2h_transfers),
    {{"dir", "d2h"}});
  C("wrf_xfer_modeled_ms_total", h2d_ms, {{"dir", "h2d"}});
  C("wrf_xfer_modeled_ms_total", d2h_ms, {{"dir", "d2h"}});
  C("wrf_shard_cells_total", static_cast<double>(shard_cells_device),
    {{"shard", "device"}});
  C("wrf_shard_cells_total", static_cast<double>(shard_cells_host),
    {{"shard", "host"}});
  C("wrf_shard_wall_seconds_total", shard_wall_device_sec,
    {{"shard", "device"}});
  C("wrf_shard_wall_seconds_total", shard_wall_host_sec,
    {{"shard", "host"}});
  C("wrf_fidelity_cells_total", static_cast<double>(cells_bin),
    {{"fidelity", "bin"}});
  C("wrf_fidelity_cells_total", static_cast<double>(cells_bulk),
    {{"fidelity", "bulk"}});
  C("wrf_fidelity_transitions_total", static_cast<double>(promotions),
    {{"kind", "promote"}});
  C("wrf_fidelity_transitions_total", static_cast<double>(demotions),
    {{"kind", "demote"}});
}

FastSbm::FastSbm(const grid::Patch& patch, int nkr, Version version,
                 FsbmParams params, gpu::Device* device,
                 exec::ExecSpace* exec)
    : patch_(patch),
      version_(version),
      params_(params),
      device_(device),
      exec_(exec),
      bins_(nkr),
      tables_(bins_),
      call_coal_(patch.im, patch.k, patch.jm, std::uint8_t{0}),
      fidelity_(patch.im, patch.k, patch.jm, kFidelityBin),
      calm_steps_(patch.im, patch.k, patch.jm, std::uint8_t{0}) {
  if (nkr > kMaxNkr) {
    throw ConfigError("FastSbm: nkr exceeds kMaxNkr stack workspace bound");
  }
  if (params_.phys != PhysScheme::kBin) {
    const HybridConfig& hc = params_.hybrid;
    if (hc.rain_bin_cut < 1 || hc.rain_bin_cut >= nkr) {
      throw ConfigError("FastSbm: hybrid rain_bin_cut outside [1, nkr)");
    }
    if (hc.cloud_carrier_bin < 0 || hc.cloud_carrier_bin >= hc.rain_bin_cut ||
        hc.rain_carrier_bin < hc.rain_bin_cut || hc.rain_carrier_bin >= nkr) {
      throw ConfigError(
          "FastSbm: hybrid carrier bins must satisfy cloud < cut <= rain "
          "< nkr");
    }
    if (!(hc.promote_threshold > 0.0) || !(hc.demote_threshold > 0.0) ||
        hc.demote_threshold >= hc.promote_threshold) {
      throw ConfigError(
          "FastSbm: hybrid thresholds need 0 < demote < promote");
    }
    if (hc.demote_patience < 1 || hc.demote_patience > 255) {
      throw ConfigError("FastSbm: hybrid demote_patience outside [1, 255]");
    }
  }
  const bool offloaded = version_ == Version::kV2Offload2 ||
                         version_ == Version::kV3Offload3 ||
                         version_ == Version::kV3NaiveCollapse3;
  if (offloaded && device_ == nullptr) {
    throw ConfigError("FastSbm: offloaded versions need a gpu::Device");
  }
  hetero_ = dynamic_cast<exec::HeteroSpace*>(exec_);
  if (hetero_ != nullptr && device_ != nullptr &&
      &hetero_->device_shard().device() == device_) {
    // exec=hetero over this scheme's device: the offloaded passes launch
    // through the space's own device shard, so the split pass and the
    // halo plan share one data region and one launch ledger.
    device_space_ = &hetero_->device_shard();
  } else if (device_ != nullptr) {
    device_space_owned_ = std::make_unique<exec::DeviceSpace>(*device_);
    device_space_ = device_space_owned_.get();
  }
  exec_device_ = dynamic_cast<exec::DeviceSpace*>(exec_) != nullptr;
  if (offloaded) {
    // Register the scheme's field table once: every buffer the offloaded
    // passes touch, sized from the patch memory ranges.  Registration
    // allocates nothing; residency policy decides below.
    region_ = &device_space_->region();
    const std::uint64_t cells3 =
        static_cast<std::uint64_t>(patch_.im.size()) * patch_.k.size() *
        patch_.jm.size();
    ids_.call_coal =
        region_->add_field("call_coal", call_coal_.size() * sizeof(std::uint8_t));
    ids_.temp = region_->add_field("temp", cells3 * sizeof(float));
    ids_.qv = region_->add_field("qv", cells3 * sizeof(float));
    ids_.pres = region_->add_field("pres", cells3 * sizeof(float));
    for (int s = 0; s < kNumSpecies; ++s) {
      ids_.ff[static_cast<std::size_t>(s)] = region_->add_field(
          std::string("ff_") + species_name(static_cast<Species>(s)),
          cells3 * static_cast<std::uint64_t>(nkr) * sizeof(float));
    }
    if (params_.residency == mem::ResidencyMode::kPersist) {
      // res=persist: pin the whole domain resident up front, through the
      // capacity check — a domain that does not fit fails here with the
      // paper-style out-of-memory error instead of at the first launch.
      for (int f = 0; f < region_->fields(); ++f) region_->map_alloc(f);
    }
  }
  if (version_ == Version::kV3Offload3) {
    // The temp_arrays module: one pooled slab per automatic array,
    // spanning every grid point of the patch, allocated on the device
    // once via `target enter data map(alloc:)` (Listing 8).
    pool_fl1_ = std::make_unique<Field4D<float>>(nkr, patch.ip, patch.k,
                                                 patch.jp);
    pool_g2_ = std::make_unique<Field4D<float>>(nkr * kIceMax, patch.ip,
                                                patch.k, patch.jp);
    pool_g3_ = std::make_unique<Field4D<float>>(nkr, patch.ip, patch.k,
                                                patch.jp);
    pool_g4_ = std::make_unique<Field4D<float>>(nkr, patch.ip, patch.k,
                                                patch.jp);
    pool_g5_ = std::make_unique<Field4D<float>>(nkr, patch.ip, patch.k,
                                                patch.jp);
    pool_bytes_ = pool_fl1_->bytes() + pool_g2_->bytes() + pool_g3_->bytes() +
                  pool_g4_->bytes() + pool_g5_->bytes();
    device_->enter_data_alloc(pool_bytes_);
  }

  // --- the per-step pass chain and its fusion schedule ---------------
  // Footprints and tile plans are static per run, so the graph is built
  // once here.  Legality comes from the analyzer: each candidate pair's
  // embedded kernel sources run through the dependence analysis,
  // memoized process-wide per (pass pair, collapse depth).
  const exec::Range3 cell_range{patch_.ip, patch_.k, patch_.jp};
  {
    exec::PassNode pre;
    pre.tag = kTagPre;
    pre.collapse = 3;
    pre.range = cell_range;
    pre.reads = {"temp", "qv", "pres", "ff"};
    pre.writes = {"temp", "qv", "call_coal", "ff"};
    if (offloaded && params_.offload_condensation) {
      pre.name = "onecond_loop";
      pre.device = true;
      pre.kernel_src = &analyzer::sources::cond_kernel();
      pre.procedure = "cond_kernel";
    } else {
      pre.name = "pass_physics";
      pre.device = false;  // host nest (inline coal for v0/v1)
    }
    graph_.add(std::move(pre));
  }
  if (offloaded) {
    exec::PassNode coal;
    coal.tag = kTagCoal;
    coal.name = "coal_bott_new_loop";
    coal.device = true;
    coal.split = hetero_ != nullptr && device_space_ == &hetero_->device_shard();
    coal.collapse = version_ == Version::kV2Offload2 ? 2 : 3;
    coal.range = cell_range;
    coal.reads = {"call_coal", "temp", "pres", "ff"};
    coal.writes = {"ff"};
    coal.kernel_src = &analyzer::sources::coal_kernel();
    coal.procedure = "coal_kernel";
    graph_.add(std::move(coal));
  }
  {
    exec::PassNode sed;
    sed.tag = kTagSed;
    sed.name = "sedimentation";
    sed.device = exec_device_;  // modeled as a device nest under exec=device
    sed.collapse = 2;
    sed.range = exec::Range3{patch_.ip, Range{0, 0}, patch_.jp};
    sed.grain = patch_.ip.size();
    sed.reads = {"ff", "rho"};
    sed.writes = {"ff", "precip"};
    sed.kernel_src = &analyzer::sources::sed_kernel();
    sed.procedure = "sed_kernel";
    graph_.add(std::move(sed));
  }
  schedule_ = graph_.schedule(
      params_.fuse,
      [](const exec::PassNode& a, const exec::PassNode& b, int collapse) {
        // Process-wide verdict cache: every rank asks about the same
        // (pair, depth) keys, so each distinct analysis runs once.
        static analyzer::FusionOracle oracle;
        const analyzer::FusionVerdict v =
            oracle.check({a.name, a.kernel_src, a.procedure},
                         {b.name, b.kernel_src, b.procedure}, collapse);
        exec::FusionCheck check;
        check.fusible = v.fusible;
        for (const auto& blk : v.blockers) {
          if (!check.reason.empty()) check.reason += "; ";
          check.reason += blk;
        }
        return check;
      });
}

void FastSbm::load_workspace(const MicroState& s, int i, int k, int j,
                             const CoalWorkspace& w) {
  const int nkr = s.bins.nkr();
  const auto sz = static_cast<std::size_t>(nkr) * sizeof(float);
  std::memcpy(w.fl1, s.ff[0].slice(i, k, j), sz);
  std::memcpy(w.g2, s.ff[1].slice(i, k, j), sz);
  std::memcpy(w.g2 + nkr, s.ff[2].slice(i, k, j), sz);
  std::memcpy(w.g2 + 2 * nkr, s.ff[3].slice(i, k, j), sz);
  std::memcpy(w.g3, s.ff[4].slice(i, k, j), sz);
  std::memcpy(w.g4, s.ff[5].slice(i, k, j), sz);
  std::memcpy(w.g5, s.ff[6].slice(i, k, j), sz);
}

void FastSbm::store_workspace(MicroState& s, int i, int k, int j,
                              const CoalWorkspace& w) {
  const int nkr = s.bins.nkr();
  const auto sz = static_cast<std::size_t>(nkr) * sizeof(float);
  std::memcpy(s.ff[0].slice(i, k, j), w.fl1, sz);
  std::memcpy(s.ff[1].slice(i, k, j), w.g2, sz);
  std::memcpy(s.ff[2].slice(i, k, j), w.g2 + nkr, sz);
  std::memcpy(s.ff[3].slice(i, k, j), w.g2 + 2 * nkr, sz);
  std::memcpy(s.ff[4].slice(i, k, j), w.g3, sz);
  std::memcpy(s.ff[5].slice(i, k, j), w.g4, sz);
  std::memcpy(s.ff[6].slice(i, k, j), w.g5, sz);
}

void FastSbm::coal_cell_stack(MicroState& state, int i, int k, int j,
                              const KernelSource& ks, CoalStats& cst) {
  StackWorkspace sw;
  const CoalWorkspace w = sw.view(bins_.nkr());
  load_workspace(state, i, k, j, w);
  CoalConfig cfg = params_.coal;
  cfg.dt = params_.dt;
  const CoalStats one =
      coal_bott_new(bins_, state.temp(i, k, j), ks, w, cfg);
  store_workspace(state, i, k, j, w);
  cst.kernel_lookups += one.kernel_lookups;
  cst.interactions += one.interactions;
  cst.pairs_active += one.pairs_active;
  cst.flops += one.flops;
}

void FastSbm::coal_cell_pooled(MicroState& state, int i, int k, int j,
                               const KernelSource& ks, CoalStats& cst) {
  // Listing 8: pointers into pooled slabs indexed by the grid point.
  CoalWorkspace w;
  w.fl1 = pool_fl1_->slice(i, k, j);
  w.g2 = pool_g2_->slice(i, k, j);
  w.g3 = pool_g3_->slice(i, k, j);
  w.g4 = pool_g4_->slice(i, k, j);
  w.g5 = pool_g5_->slice(i, k, j);
  load_workspace(state, i, k, j, w);
  CoalConfig cfg = params_.coal;
  cfg.dt = params_.dt;
  const CoalStats one =
      coal_bott_new(bins_, state.temp(i, k, j), ks, w, cfg);
  store_workspace(state, i, k, j, w);
  cst.kernel_lookups += one.kernel_lookups;
  cst.interactions += one.interactions;
  cst.pairs_active += one.pairs_active;
  cst.flops += one.flops;
}

void FastSbm::coal_run_cell(MicroState& state, int i, int k, int j,
                            bool pooled, CoalCounters& c) {
  if (call_coal_(i, k, j) == 0) return;
  // Device code path: nvfortran-style FMA contraction (see get_cw_device).
  const KernelSource ks(tables_, state.pres(i, k, j), /*device_fma=*/true);
  CoalStats cst;
  if (pooled) {
    coal_cell_pooled(state, i, k, j, ks, cst);
  } else {
    coal_cell_stack(state, i, k, j, ks, cst);
  }
  c.interactions.fetch_add(cst.interactions, std::memory_order_relaxed);
  c.lookups.fetch_add(cst.kernel_lookups, std::memory_order_relaxed);
  c.cells.fetch_add(1, std::memory_order_relaxed);
}

void FastSbm::mark_written(const std::vector<mem::FieldId>& ids,
                           bool on_device) {
  if (!persist()) return;
  for (const mem::FieldId f : ids) {
    if (f == mem::kInvalidField) continue;
    if (on_device) {
      // Read coherence: a device kernel consumed current operands, so
      // any pending host-side writes must have crossed h2d before it
      // ran (the first step's initial-state upload lands here; steady
      // state moves nothing).  Only then does its own write advance the
      // device copy.
      region_->update_to(f);
      region_->mark_device_dirty(f);
    } else {
      // Same rule, d2h direction: a host pass consumed current values,
      // so pending device-kernel writes must have crossed d2h before
      // it ran — only then does the host write stale the device copy.
      region_->update_from(f);
      region_->mark_host_dirty(f);
    }
  }
}

void FastSbm::mark_transport_writes(FsbmStats* st) {
  if (!persist()) return;
  const gpu::TransferStats t0 = device_->transfers();
  std::vector<mem::FieldId> w{ids_.qv};
  w.insert(w.end(), ids_.ff.begin(), ids_.ff.end());
  mark_written(w, exec_device_);
  if (st != nullptr) st->charge_transfer_delta(t0, device_->transfers());
}

void FastSbm::mark_pass_writes(FsbmStats& st, bool on_device, bool thermo) {
  if (!persist()) return;
  const gpu::TransferStats t0 = device_->transfers();
  std::vector<mem::FieldId> w;
  if (thermo) w = {ids_.temp, ids_.qv, ids_.call_coal};
  w.insert(w.end(), ids_.ff.begin(), ids_.ff.end());
  mark_written(w, on_device);
  st.charge_transfer_delta(t0, device_->transfers());
}

void FastSbm::mark_coal_writes(const MicroState& state) {
  // Walk in memory order (j slowest, i fastest) so the per-cell slice
  // ranges arrive ascending and adjacent active cells coalesce into one
  // span — cloud regions are i-contiguous.
  const auto& f0 = state.ff[0];
  const std::uint64_t slice_bytes =
      static_cast<std::uint64_t>(bins_.nkr()) * sizeof(float);
  for (int j = patch_.jp.lo; j <= patch_.jp.hi; ++j) {
    for (int k = patch_.k.lo; k <= patch_.k.hi; ++k) {
      for (int i = patch_.ip.lo; i <= patch_.ip.hi; ++i) {
        if (call_coal_(i, k, j) == 0) continue;
        const std::uint64_t off = f0.index(0, i, k, j) * sizeof(float);
        for (const mem::FieldId f : ids_.ff) {
          region_->mark_device_dirty(f, off, slice_bytes);
        }
      }
    }
  }
}

double FastSbm::physics_bulk_cell(MicroState& state, int i, int k, int j) {
  // Same inertness gate as the bin body: cells colder than t_active are
  // skipped at either fidelity.
  if (state.temp(i, k, j) <= params_.t_active) return 0.0;
  const HybridConfig& hc = params_.hybrid;
  double temp = state.temp(i, k, j);
  double qv = state.qv(i, k, j);
  const double pres = state.pres(i, k, j);
  float* liq = state.ff[0].slice(i, k, j);
  bulk::KesslerCell cell;
  cell.qc = liq[hc.cloud_carrier_bin];
  cell.qr = liq[hc.rain_carrier_bin];
  const bulk::KesslerStats ks =
      bulk::kessler_cell(temp, qv, pres, cell, params_.dt, hc.kessler);
  state.temp(i, k, j) = static_cast<float>(temp);
  state.qv(i, k, j) = static_cast<float>(qv);
  liq[hc.cloud_carrier_bin] = static_cast<float>(cell.qc);
  liq[hc.rain_carrier_bin] = static_cast<float>(cell.qr);
  return ks.flops;
}

bool FastSbm::column_all_bulk(int i, int j) const {
  if (params_.phys == PhysScheme::kBin) return false;
  for (int k = patch_.k.lo; k <= patch_.k.hi; ++k) {
    if (fidelity_(i, k, j) != kFidelityBulk) return false;
  }
  return true;
}

double FastSbm::sediment_bulk_column(MicroState& state, int i, int j,
                                     FsbmStats& pt) {
  const int nz = patch_.k.size();
  const int klo = patch_.k.lo;
  const HybridConfig& hc = params_.hybrid;
  auto& liq = state.ff[0];
  thread_local std::vector<double> qr_col;
  thread_local std::vector<double> rho_col;
  qr_col.resize(static_cast<std::size_t>(nz));
  rho_col.resize(static_cast<std::size_t>(nz));
  for (int iz = 0; iz < nz; ++iz) {
    qr_col[static_cast<std::size_t>(iz)] =
        liq(hc.rain_carrier_bin, i, klo + iz, j);
    rho_col[static_cast<std::size_t>(iz)] = state.rho(i, klo + iz, j);
  }
  const bulk::KesslerSedStats ss = bulk::kessler_sediment_column(
      qr_col.data(), rho_col.data(), nz, params_.sed.dz, params_.dt);
  for (int iz = 0; iz < nz; ++iz) {
    liq(hc.rain_carrier_bin, i, klo + iz, j) =
        static_cast<float>(qr_col[static_cast<std::size_t>(iz)]);
  }
  pt.bulk_precip += ss.surface_precip;
  pt.bulk_flops += ss.flops;
  return ss.surface_precip;
}

void FastSbm::pass_fidelity(MicroState& state, FsbmStats& st,
                            prof::Profiler& prof) {
  prof::ScopedRange fr(prof, "fidelity");
  const HybridConfig& hc = params_.hybrid;
  const int nkr = bins_.nkr();
  const bool init = !fidelity_initialized_;
  // phys=bulk is the all-bulk override through the same machinery.
  const HybridConfig::Override ov = params_.phys == PhysScheme::kBulk
                                        ? HybridConfig::Override::kAllBulk
                                        : hc.override_mode;

  exec::LaunchParams lp;
  lp.name = "fidelity";
  lp.collapse = 3;
  const FsbmStats sum = exec_space().parallel_reduce<FsbmStats>(
      exec::Range3{patch_.ip, patch_.k, patch_.jp}, lp,
      [&](FsbmStats& pt, int i, int k, int j) {
        std::uint8_t& fid = fidelity_(i, k, j);
        std::uint8_t& calm = calm_steps_(i, k, j);
        float* liq = state.ff[0].slice(i, k, j);
        if (ov == HybridConfig::Override::kAllBin) {
          fid = kFidelityBin;
          calm = 0;
          ++pt.cells_bin;
          return;
        }
        if (ov == HybridConfig::Override::kAllBulk) {
          if (fid == kFidelityBin) ++pt.demotions;
          fid = kFidelityBulk;
          calm = 0;
          demote_liquid(liq, nkr, hc);
          ++pt.cells_bulk;
          return;
        }
        // Adaptive rule: the coal-gate temperature shape (the same cut
        // that drives call_coal_) plus a liquid-mass trigger.  The
        // promote/demote threshold band and the demotion patience
        // counter are the hysteresis that keeps cells from flapping.
        double lm = 0.0;
        for (int n = 0; n < nkr; ++n) lm += liq[n];
        const bool warm = state.temp(i, k, j) > params_.t_coal;
        const bool wants_bin = warm && lm > hc.promote_threshold;
        const bool calm_now = !warm || lm < hc.demote_threshold;
        if (fid == kFidelityBin) {
          bool demote = false;
          if (init) {
            // Cold start: the rule applies directly, no patience — a
            // fresh run should not spend demote_patience steps running
            // every calm cell at bin fidelity.
            demote = !wants_bin;
          } else if (calm_now) {
            if (calm < 255) ++calm;
            demote = calm >= hc.demote_patience;
          } else {
            calm = 0;
          }
          if (demote) {
            fid = kFidelityBulk;
            calm = 0;
            demote_liquid(liq, nkr, hc);
            ++pt.demotions;
            ++pt.cells_bulk;
          } else {
            ++pt.cells_bin;
          }
          return;
        }
        if (wants_bin) {
          promote_liquid(liq, nkr, hc);
          fid = kFidelityBin;
          calm = 0;
          ++pt.promotions;
          ++pt.cells_bin;
          return;
        }
        // Stays bulk: re-collapse what advection smeared off the
        // carriers since last step (idempotent when nothing did).
        demote_liquid(liq, nkr, hc);
        ++pt.cells_bulk;
      });
  st.merge(sum);
  fidelity_initialized_ = true;
  if (obs::TraceSink* sink = obs::active()) {
    sink->instant("fidelity", "census",
                  {{"cells_bin", sum.cells_bin},
                   {"cells_bulk", sum.cells_bulk},
                   {"promotions", sum.promotions},
                   {"demotions", sum.demotions}});
  }
  // Residency: the transforms rewrote (only) the liquid bin field, and
  // only when some cell was or became bulk.  Under the all-bin override
  // nothing is written, so the device traffic stays identical to
  // phys=bin — part of the bitwise regression gate.
  if (persist() && (sum.cells_bulk > 0 || sum.promotions > 0)) {
    const gpu::TransferStats t0 = device_->transfers();
    mark_written({ids_.ff[0]}, exec_device_);
    st.charge_transfer_delta(t0, device_->transfers());
  }
}

void FastSbm::cond_run_cell(MicroState& state, int i, int k, int j,
                            const CondConfig& cond_cfg,
                            const NuclConfig& nucl_cfg, CondCounters& cnt) {
  call_coal_(i, k, j) = 0;
  if (params_.phys != PhysScheme::kBin &&
      fidelity_(i, k, j) == kFidelityBulk) {
    // Bulk-fidelity lane: the Kessler cell on the carried moments; the
    // coal predicate stays 0, so bulk cells never reach the collision
    // kernel (and under exec=hetero never join the device shard).
    const double flops = physics_bulk_cell(state, i, k, j);
    cnt.bulk_flops_milli.fetch_add(
        static_cast<std::uint64_t>(flops * 1000.0),
        std::memory_order_relaxed);
    return;
  }
  if (state.temp(i, k, j) <= params_.t_active) return;
  cnt.active.fetch_add(1, std::memory_order_relaxed);
  StackWorkspace sw;
  const CoalWorkspace w = sw.view(bins_.nkr());
  double temp = state.temp(i, k, j);
  double qv = state.qv(i, k, j);
  const double pres = state.pres(i, k, j);
  load_workspace(state, i, k, j, w);
  const NuclStats ns = jernucl01_ks(bins_, temp, qv, pres, w, nucl_cfg);
  const CondStats cs = temp >= c::kT0
                           ? onecond1(bins_, temp, qv, pres, w, cond_cfg)
                           : onecond2(bins_, temp, qv, pres, w, cond_cfg);
  state.temp(i, k, j) = static_cast<float>(temp);
  state.qv(i, k, j) = static_cast<float>(qv);
  store_workspace(state, i, k, j, w);
  cnt.flops_milli.fetch_add(
      static_cast<std::uint64_t>((ns.flops + cs.flops) * 1000.0),
      std::memory_order_relaxed);
  if (temp > params_.t_coal) {
    call_coal_(i, k, j) = 1;
    cnt.coal_cells.fetch_add(1, std::memory_order_relaxed);
  }
}

void FastSbm::emit_cond_trace(const MicroState& state, int i, int k, int j,
                              std::vector<gpu::AccessEvent>& out) const {
  auto addr = [](const void* p) {
    return reinterpret_cast<std::uint64_t>(p);
  };
  out.push_back({addr(&state.temp(i, k, j)), 4, false});
  if (params_.phys != PhysScheme::kBin &&
      fidelity_(i, k, j) == kFidelityBulk) {
    // Bulk lane: thermo plus the two carrier bins — the light access
    // pattern is most of why hybrid lanes are cheap.
    if (state.temp(i, k, j) <= params_.t_active) return;
    out.push_back({addr(&state.qv(i, k, j)), 4, true});
    const float* sl = state.ff[0].slice(i, k, j);
    out.push_back({addr(sl + params_.hybrid.cloud_carrier_bin), 4, true});
    out.push_back({addr(sl + params_.hybrid.rain_carrier_bin), 4, true});
    return;
  }
  if (state.temp(i, k, j) <= params_.t_active) return;
  out.push_back({addr(&state.qv(i, k, j)), 4, true});
  for (int s = 0; s < kNumSpecies; ++s) {
    const float* sl = state.ff[static_cast<std::size_t>(s)].slice(i, k, j);
    for (int n = 0; n < bins_.nkr(); n += 2) {
      out.push_back({addr(sl + n), 4, false});
      out.push_back({addr(sl + n), 4, true});
    }
  }
}

void FastSbm::pass_cond_offload(MicroState& state, FsbmStats& st,
                                prof::Profiler& prof) {
  // §VIII: the condensation loops offloaded "using a similar approach" —
  // loop fission with a per-cell predicate, one device lane per cell,
  // stack workspaces (condensation's automatic arrays are smaller than
  // coal_bott_new's, so no pooled variant is needed).
  prof::ScopedRange cr(prof, "onecond_loop");
  const int ni = patch_.ip.size();
  const int nk = patch_.k.size();
  const int nj = patch_.jp.size();

  CondConfig cond_cfg = params_.cond;
  cond_cfg.dt = params_.dt;
  NuclConfig nucl_cfg = params_.nucl;
  nucl_cfg.dt = params_.dt;

  CondCounters cnt;

  gpu::KernelDesc desc;
  desc.name = "onecond_loop";
  desc.collapse = 3;
  desc.iterations = static_cast<std::int64_t>(ni) * nk * nj;
  desc.regs_per_thread = params_.cond_regs_per_thread;
  desc.workspace_bytes_per_thread = 0;  // fits in registers/stack budget
  desc.body = [&](std::int64_t it) {
    const int i = patch_.ip.lo + static_cast<int>(it % ni);
    const int k = patch_.k.lo + static_cast<int>((it / ni) % nk);
    const int j =
        patch_.jp.lo +
        static_cast<int>(it / (static_cast<std::int64_t>(ni) * nk));
    cond_run_cell(state, i, k, j, cond_cfg, nucl_cfg, cnt);
  };
  desc.flops_total = [&]() {
    return static_cast<double>(cnt.flops_milli.load() +
                               cnt.bulk_flops_milli.load()) /
           1000.0;
  };
  desc.trace = [&](std::int64_t it, std::vector<gpu::AccessEvent>& out) {
    const int i = patch_.ip.lo + static_cast<int>(it % ni);
    const int k = patch_.k.lo + static_cast<int>((it / ni) % nk);
    const int j =
        patch_.jp.lo +
        static_cast<int>(it / (static_cast<std::int64_t>(ni) * nk));
    emit_cond_trace(state, i, k, j, out);
  };
  {
    // The condensation kernel consumes the thermo + bin fields.
    // res=persist brings the resident operands current (dirty bytes
    // only); res=step opens a per-launch `target data` region like the
    // coal pass, so the two modes stay comparable for this launch too.
    const gpu::TransferStats t0 = device_->transfers();
    if (persist()) {
      region_->update_to(ids_.temp);
      region_->update_to(ids_.qv);
      region_->update_to(ids_.pres);
      for (const mem::FieldId f : ids_.ff) region_->update_to(f);
    } else {
      region_->map_to(ids_.temp);
      region_->map_to(ids_.qv);
      region_->map_to(ids_.pres);
      region_->map_to(ids_.call_coal);
      for (const mem::FieldId f : ids_.ff) region_->map_to(f);
    }
    st.charge_transfer_delta(t0, device_->transfers());
  }
  st.cond_kernel = device_space_->launch(desc);
  if (persist()) {
    // Kernel writes: thermo state, bins, and the refilled predicate
    // advance the device copy (operands were flushed above, so the
    // read-coherence flush inside moves nothing here).
    mark_pass_writes(st, /*on_device=*/true, /*thermo=*/true);
  } else {
    // Close the per-launch region: the kernel's outputs map back d2h.
    const gpu::TransferStats t0 = device_->transfers();
    region_->map_from(ids_.temp);
    region_->map_from(ids_.qv);
    region_->map_from(ids_.call_coal);
    for (const mem::FieldId f : ids_.ff) region_->map_from(f);
    region_->unmap_all();
    st.charge_transfer_delta(t0, device_->transfers());
  }
  st.cells_active += cnt.active.load();
  st.cells_coal += cnt.coal_cells.load();
  st.cond_flops += static_cast<double>(cnt.flops_milli.load()) / 1000.0;
  st.bulk_flops += static_cast<double>(cnt.bulk_flops_milli.load()) / 1000.0;
}

void FastSbm::pass_physics(MicroState& state, FsbmStats& st,
                           prof::Profiler& prof) {
  const bool inline_coal = version_ == Version::kV0Baseline ||
                           version_ == Version::kV1LookupOnDemand;
  const int nkr = bins_.nkr();

  CondConfig cond_cfg = params_.cond;
  cond_cfg.dt = params_.dt;
  NuclConfig nucl_cfg = params_.nucl;
  nucl_cfg.dt = params_.dt;

  // Listing 1's j/k/i nest, dispatched through the execution space.
  // Every cell touches only its own state, so the nest parallelizes over
  // tiles; statistics go into per-tile FsbmStats partials merged in tile
  // order, which keeps the result bitwise-identical across executors.
  exec::LaunchParams lp;
  lp.name = "pass_physics";
  lp.collapse = 3;
  const exec::Range3 range{patch_.ip, patch_.k, patch_.jp};
  const auto bin_cell = [&](FsbmStats& pt, int i, int k, int j) {
        if (state.temp(i, k, j) <= params_.t_active) return;
        ++pt.cells_active;

        StackWorkspace sw;
        const CoalWorkspace w = sw.view(nkr);
        double temp = state.temp(i, k, j);
        double qv = state.qv(i, k, j);
        const double pres = state.pres(i, k, j);
        load_workspace(state, i, k, j, w);

        // Nucleation.
        const NuclStats ns = jernucl01_ks(bins_, temp, qv, pres, w, nucl_cfg);
        pt.nucl_flops += ns.flops;

        // Condensation: warm path above freezing, mixed-phase below.
        const CondStats cs =
            temp >= c::kT0
                ? onecond1(bins_, temp, qv, pres, w, cond_cfg)
                : onecond2(bins_, temp, qv, pres, w, cond_cfg);
        pt.cond_flops += cs.flops;

        state.temp(i, k, j) = static_cast<float>(temp);
        state.qv(i, k, j) = static_cast<float>(qv);
        store_workspace(state, i, k, j, w);

        // Collision gate (TT > 223.15 in Listing 1).
        if (temp <= params_.t_coal) return;
        if (inline_coal) {
          // No ScopedRange here: per-cell ranges on worker threads would
          // serialize on the profiler mutex (each pop at depth zero
          // merges).  Coal wall time goes into the partials instead and
          // is attributed once per pass below.
          const auto t0 = Clock::now();
          CoalStats cst;
          if (version_ == Version::kV0Baseline) {
            // kernals_ks refills the collision arrays for this cell;
            // every entry of all 20 arrays is interpolated whether used
            // or not.  The Fortran original keeps ONE global block (the
            // shared state Codee flagged); one block per executing
            // thread preserves the per-cell refill cost while making the
            // pass dispatchable on any ExecSpace.
            thread_local std::unique_ptr<CollisionArrays> cw;
            if (!cw || cw->nkr != nkr) {
              cw = std::make_unique<CollisionArrays>(nkr);
            }
            pt.kernel_entries += tables_.kernals_ks(pres, *cw);
            ++pt.kernel_table_fills;
            const KernelSource ks(*cw);
            coal_cell_stack(state, i, k, j, ks, cst);
          } else {
            const KernelSource ks(tables_, pres);
            coal_cell_stack(state, i, k, j, ks, cst);
            pt.kernel_entries += cst.kernel_lookups;
          }
          pt.coal_interactions += cst.interactions;
          pt.coal_flops +=
              cst.flops +
              (version_ == Version::kV0Baseline
                   ? 4.0 * kNumPairs * nkr * nkr  // table fill flops
                   : 4.0 * static_cast<double>(cst.kernel_lookups));
          ++pt.cells_coal;
          pt.wall_coal_sec += seconds_since(t0);
        } else {
          call_coal_(i, k, j) = 1;
          ++pt.cells_coal;
        }
  };

  FsbmStats sum;
  if (params_.phys == PhysScheme::kBin) {
    sum = exec_space().parallel_reduce<FsbmStats>(
        range, lp, [&](FsbmStats& pt, int i, int k, int j) {
          call_coal_(i, k, j) = 0;
          bin_cell(pt, i, k, j);
        });
  } else {
    // phys=bulk|hybrid: route the two fidelity populations through the
    // predicate-split dispatch (exec/exec.hpp SplitPlan).  Tiles holding
    // any bin-fidelity cell form one shard, pure-bulk tiles the other;
    // both run the same per-cell body (which branches on fidelity for
    // the mixed tiles), over the SAME tile plan parallel_reduce would
    // use, with plan-wide partials merged in tile order.  With an
    // all-bin fidelity field the first list is every tile and the
    // second is empty, which reproduces the phys=bin dispatch — and its
    // results — bit for bit.
    const exec::TilePlan plan = exec::ExecSpace::plan_for(range, lp);
    const exec::SplitPlan sp = exec::split_plan(
        range, plan, [&](int i, int k, int j) {
          return fidelity_(i, k, j) == kFidelityBin;
        });
    std::vector<FsbmStats> parts(static_cast<std::size_t>(plan.tiles()));
    const exec::TileFn body = [&](std::int64_t t, std::int64_t b,
                                  std::int64_t e) {
      FsbmStats& pt = parts[static_cast<std::size_t>(t)];
      for (std::int64_t f = b; f < e; ++f) {
        const exec::Range3::Cell c = range.cell(f);
        call_coal_(c.i, c.k, c.j) = 0;
        if (fidelity_(c.i, c.k, c.j) == kFidelityBin) {
          bin_cell(pt, c.i, c.k, c.j);
        } else {
          pt.bulk_flops += physics_bulk_cell(state, c.i, c.k, c.j);
        }
      }
    };
    exec_space().run_tile_list(sp.plan, sp.device_tiles, lp, body);
    exec_space().run_tile_list(sp.plan, sp.host_tiles, lp, body);
    for (const FsbmStats& part : parts) sum.merge(part);
  }
  if (inline_coal && sum.cells_coal > 0) {
    prof.add_range_time("coal_bott_new_loop", sum.cells_coal,
                        sum.wall_coal_sec);
  }
  st.merge(sum);
  // Residency: this pass rewrote the thermo state, the bins, and the
  // predicate — host-side under a host space (device copy stale), as a
  // device kernel under exec=device (device copy advanced).
  mark_pass_writes(st, exec_device_, /*thermo=*/true);
}

void FastSbm::emit_coal_trace(const MicroState& state, int i, int k, int j,
                              bool pooled,
                              std::vector<gpu::AccessEvent>& out) const {
  auto addr = [](const void* p) {
    return reinterpret_cast<std::uint64_t>(p);
  };
  out.push_back({addr(&call_coal_(i, k, j)), 1, false});
  if (call_coal_(i, k, j) == 0) return;
  out.push_back({addr(&state.temp(i, k, j)), 4, false});
  out.push_back({addr(&state.pres(i, k, j)), 4, false});

  const int nkr = bins_.nkr();
  // Workspace copy-in: bin-strided reads of the ff slices; pooled runs
  // also write the pool slabs (global memory), stack runs keep the
  // workspace in thread-local storage invisible to the DRAM counters.
  const float* pool_base[5] = {nullptr, nullptr, nullptr, nullptr, nullptr};
  if (pooled) {
    pool_base[0] = pool_fl1_->slice(i, k, j);
    pool_base[1] = pool_g2_->slice(i, k, j);
    pool_base[2] = pool_g3_->slice(i, k, j);
    pool_base[3] = pool_g4_->slice(i, k, j);
    pool_base[4] = pool_g5_->slice(i, k, j);
  }
  for (int s = 0; s < kNumSpecies; ++s) {
    const float* src = state.ff[static_cast<std::size_t>(s)].slice(i, k, j);
    for (int n = 0; n < nkr; ++n) {
      out.push_back({addr(src + n), 4, false});
      if (pooled) {
        // Species -> pool slab mapping (ice habits share g2).
        const int slab = s == 0 ? 0 : (s <= 3 ? 1 : s - 2);
        const int off = (s >= 1 && s <= 3) ? (s - 1) * nkr + n : n;
        out.push_back({addr(pool_base[slab] + off), 4, true});
      }
    }
  }

  // Workspace copy-out at the end of the lane: the updated bin
  // distributions are written back to the ff arrays in global memory.
  for (int s = 0; s < kNumSpecies; ++s) {
    const float* dst = state.ff[static_cast<std::size_t>(s)].slice(i, k, j);
    for (int n = 0; n < nkr; n += 2) {
      out.push_back({addr(dst + n), 4, true});
    }
  }

  // Collision sweeps: table reads (+ pooled workspace read/write) per
  // active (i2, j2) pair.  Pair activity mirrors coal_bott_new's gates.
  const bool cold = state.temp(i, k, j) < c::kT0;
  const int npairs = cold ? kNumPairs : 1;
  for (int p = 0; p < npairs; ++p) {
    const auto pair = static_cast<CollisionPair>(p);
    const float* t750 = tables_.table_ptr(pair, true);
    const float* t500 = tables_.table_ptr(pair, false);
    const bool self = pair_a(pair) == pair_b(pair);
    for (int j2 = 0; j2 < nkr; j2 += 2) {      // sampled rows
      const int imax = self ? j2 : nkr - 1;
      for (int i2 = 0; i2 <= imax; i2 += 2) {  // sampled columns
        const std::size_t idx = static_cast<std::size_t>(i2) * nkr + j2;
        out.push_back({addr(t750 + idx), 4, false});
        out.push_back({addr(t500 + idx), 4, false});
        if (pooled) {
          out.push_back({addr(pool_base[0] + i2), 4, false});
          out.push_back({addr(pool_base[0] + i2), 4, true});
        }
      }
    }
  }
}

void FastSbm::pass_coal_offload(MicroState& state, FsbmStats& st,
                                prof::Profiler& prof) {
  prof::ScopedRange cr(prof, "coal_bott_new_loop");
  const auto t0 = Clock::now();

  const int nkr = bins_.nkr();
  const int ni = patch_.ip.size();
  const int nk = patch_.k.size();
  const int nj = patch_.jp.size();
  const bool pooled = version_ == Version::kV3Offload3;
  const bool collapse3 = version_ != Version::kV2Offload2;

  // Host -> device: bin distributions, thermodynamic fields, predicate.
  // res=step opens a per-launch `target data` region — allocate + upload
  // every field through the capacity check, the paper's as-ported
  // behavior.  res=persist issues `target update to` of only the dirty
  // bytes: halo shell strips and whatever host-side passes wrote since
  // the device copy was last current.
  {
    const gpu::TransferStats t0 = device_->transfers();
    if (persist()) {
      region_->update_to(ids_.call_coal);
      for (const mem::FieldId f : ids_.ff) region_->update_to(f);
      region_->update_to(ids_.temp);
      region_->update_to(ids_.pres);
    } else {
      region_->map_to(ids_.call_coal);
      for (const mem::FieldId f : ids_.ff) region_->map_to(f);
      region_->map_to(ids_.temp);
      region_->map_to(ids_.pres);
    }
    st.charge_transfer_delta(t0, device_->transfers());
  }

  CoalCounters cnt;

  gpu::KernelDesc desc;
  desc.name = "coal_bott_new_loop";
  desc.collapse = collapse3 ? 3 : 2;
  desc.iterations = collapse3 ? static_cast<std::int64_t>(ni) * nk * nj
                              : static_cast<std::int64_t>(nk) * nj;
  desc.regs_per_thread = params_.coal_regs_per_thread;
  desc.workspace_bytes_per_thread =
      pooled ? 0
             : static_cast<std::uint64_t>(params_.automatic_array_count) *
                   static_cast<std::uint64_t>(nkr) * sizeof(float);
  desc.double_precision = false;

  auto run_cell = [&](int i, int k, int j) {
    coal_run_cell(state, i, k, j, pooled, cnt);
  };

  if (collapse3) {
    // Listing 6 with full collapse: one device lane per grid cell.
    desc.body = [&](std::int64_t it) {
      const int i = patch_.ip.lo + static_cast<int>(it % ni);
      const int k = patch_.k.lo + static_cast<int>((it / ni) % nk);
      const int j = patch_.jp.lo + static_cast<int>(it / (static_cast<std::int64_t>(ni) * nk));
      run_cell(i, k, j);
    };
  } else {
    // collapse(2): lanes over (k, j); the i loop stays inside the lane.
    desc.body = [&](std::int64_t it) {
      const int k = patch_.k.lo + static_cast<int>(it % nk);
      const int j = patch_.jp.lo + static_cast<int>(it / nk);
      for (int i = patch_.ip.lo; i <= patch_.ip.hi; ++i) run_cell(i, k, j);
    };
  }
  desc.flops_total = [&]() {
    return coal_flops_model(cnt.interactions.load(), cnt.lookups.load());
  };
  desc.trace = [&](std::int64_t it, std::vector<gpu::AccessEvent>& out) {
    if (collapse3) {
      const int i = patch_.ip.lo + static_cast<int>(it % ni);
      const int k = patch_.k.lo + static_cast<int>((it / ni) % nk);
      const int j = patch_.jp.lo + static_cast<int>(it / (static_cast<std::int64_t>(ni) * nk));
      emit_coal_trace(state, i, k, j, pooled, out);
    } else {
      const int k = patch_.k.lo + static_cast<int>(it % nk);
      const int j = patch_.jp.lo + static_cast<int>(it / nk);
      for (int i = patch_.ip.lo; i <= patch_.ip.hi; ++i) {
        emit_coal_trace(state, i, k, j, pooled, out);
      }
    }
  };

  st.coal_kernel = device_space_->launch(desc);

  // Device -> host: updated distributions.  res=step closes the data
  // region (full bin-field map(from:) + delete).  res=persist marks the
  // kernel's writes device-dirty at bin-slice granularity through the
  // predicate array and flushes exactly those slices d2h here (host
  // passes consume them next), while under exec=device the fields stay
  // resident (the next consumer is another device-dispatched nest).
  {
    const gpu::TransferStats t0 = device_->transfers();
    if (persist()) {
      if (exec_device_) {
        for (const mem::FieldId f : ids_.ff) region_->mark_device_dirty(f);
      } else {
        mark_coal_writes(state);
        for (const mem::FieldId f : ids_.ff) region_->update_from(f);
      }
    } else {
      for (const mem::FieldId f : ids_.ff) region_->map_from(f);
      region_->unmap_all();
    }
    st.charge_transfer_delta(t0, device_->transfers());
  }

  st.coal_interactions += cnt.interactions.load();
  st.kernel_entries += cnt.lookups.load();
  st.coal_flops += desc.flops_total();
  st.wall_coal_sec += seconds_since(t0);
}

void FastSbm::pass_cond_coal_fused(MicroState& state, FsbmStats& st,
                                   prof::Profiler& prof) {
  // One launch for cond + coal: each lane runs the condensation body
  // for its cell, then — gated by the predicate the lane itself just
  // wrote — the collision body for the SAME cell.  Legal because the
  // analyzer proved every shared field pointwise over the collapsed
  // loop variables (the ctor's schedule), which makes lane-sequential
  // execution bitwise identical to the two sequential full passes.
  // The win: one launch latency instead of two, and no inter-pass
  // transfer round-trip (coal's upload + cond's bin-field download).
  prof::ScopedRange cr(prof, "onecond_coal_fused");
  const auto t0 = Clock::now();
  const int ni = patch_.ip.size();
  const int nk = patch_.k.size();
  const int nj = patch_.jp.size();
  const int nkr = bins_.nkr();
  const bool pooled = version_ == Version::kV3Offload3;

  CondConfig cond_cfg = params_.cond;
  cond_cfg.dt = params_.dt;
  NuclConfig nucl_cfg = params_.nucl;
  nucl_cfg.dt = params_.dt;

  CondCounters ccnt;
  CoalCounters kcnt;

  gpu::KernelDesc desc;
  desc.name = "onecond_coal_fused";
  desc.collapse = 3;
  desc.fused_passes = 2;
  desc.iterations = static_cast<std::int64_t>(ni) * nk * nj;
  // The fused lane carries both bodies: register pressure is the max of
  // the two, workspace demand the coal kernel's (cond fits in stack).
  desc.regs_per_thread =
      std::max(params_.cond_regs_per_thread, params_.coal_regs_per_thread);
  desc.workspace_bytes_per_thread =
      pooled ? 0
             : static_cast<std::uint64_t>(params_.automatic_array_count) *
                   static_cast<std::uint64_t>(nkr) * sizeof(float);
  desc.double_precision = false;
  desc.body = [&](std::int64_t it) {
    const int i = patch_.ip.lo + static_cast<int>(it % ni);
    const int k = patch_.k.lo + static_cast<int>((it / ni) % nk);
    const int j =
        patch_.jp.lo +
        static_cast<int>(it / (static_cast<std::int64_t>(ni) * nk));
    cond_run_cell(state, i, k, j, cond_cfg, nucl_cfg, ccnt);
    coal_run_cell(state, i, k, j, pooled, kcnt);
  };
  desc.flops_total = [&]() {
    return static_cast<double>(ccnt.flops_milli.load() +
                               ccnt.bulk_flops_milli.load()) /
               1000.0 +
           coal_flops_model(kcnt.interactions.load(), kcnt.lookups.load());
  };
  desc.trace = [&](std::int64_t it, std::vector<gpu::AccessEvent>& out) {
    const int i = patch_.ip.lo + static_cast<int>(it % ni);
    const int k = patch_.k.lo + static_cast<int>((it / ni) % nk);
    const int j =
        patch_.jp.lo +
        static_cast<int>(it / (static_cast<std::int64_t>(ni) * nk));
    emit_cond_trace(state, i, k, j, out);
    emit_coal_trace(state, i, k, j, pooled, out);
  };

  // Prologue: exactly the standalone cond launch's — the fused kernel's
  // operands are cond's operand set (coal reads a subset plus the
  // predicate cond writes).  Coal's separate upload is the h2d saving.
  {
    const gpu::TransferStats tx0 = device_->transfers();
    if (persist()) {
      region_->update_to(ids_.temp);
      region_->update_to(ids_.qv);
      region_->update_to(ids_.pres);
      for (const mem::FieldId f : ids_.ff) region_->update_to(f);
    } else {
      region_->map_to(ids_.temp);
      region_->map_to(ids_.qv);
      region_->map_to(ids_.pres);
      region_->map_to(ids_.call_coal);
      for (const mem::FieldId f : ids_.ff) region_->map_to(f);
    }
    st.charge_transfer_delta(tx0, device_->transfers());
  }

  // The fused launch reports under the coal slot (the dominant body);
  // cond_kernel stays unset — per-pass kernel stats are a property of
  // the unfused layout.
  st.coal_kernel = device_space_->launch(desc);

  if (persist()) {
    // Kernel writes: thermo + predicate + bins advance the device copy
    // (operands were flushed above).  Then, like the standalone coal
    // epilogue, flush the bin fields d2h when the next consumer is a
    // host pass; under exec=device they stay resident.
    mark_pass_writes(st, /*on_device=*/true, /*thermo=*/true);
    if (!exec_device_) {
      const gpu::TransferStats tx0 = device_->transfers();
      mark_coal_writes(state);
      for (const mem::FieldId f : ids_.ff) region_->update_from(f);
      st.charge_transfer_delta(tx0, device_->transfers());
    }
  } else {
    // Close the one per-launch region: cond's output set maps back d2h
    // ONCE (the unfused layout paid a second full bin-field download
    // after the coal launch — that is the d2h saving).
    const gpu::TransferStats tx0 = device_->transfers();
    region_->map_from(ids_.temp);
    region_->map_from(ids_.qv);
    region_->map_from(ids_.call_coal);
    for (const mem::FieldId f : ids_.ff) region_->map_from(f);
    region_->unmap_all();
    st.charge_transfer_delta(tx0, device_->transfers());
  }

  st.cells_active += ccnt.active.load();
  st.cells_coal += ccnt.coal_cells.load();
  st.cond_flops += static_cast<double>(ccnt.flops_milli.load()) / 1000.0;
  st.bulk_flops +=
      static_cast<double>(ccnt.bulk_flops_milli.load()) / 1000.0;
  st.coal_interactions += kcnt.interactions.load();
  st.kernel_entries += kcnt.lookups.load();
  st.coal_flops +=
      coal_flops_model(kcnt.interactions.load(), kcnt.lookups.load());
  st.wall_coal_sec += seconds_since(t0);
}

void FastSbm::shard_rows(const exec::SplitPlan& sp, const exec::Range3& range,
                         std::vector<mem::ByteRange>* cell_rows) const {
  // Decompose each device-shard tile into maximal i-runs; a run of
  // consecutive i at fixed (k, j) is contiguous in field memory, and
  // ascending flat order implies ascending memory offsets, so the rows
  // arrive sorted and disjoint — the contract the batched region verbs
  // (update_to_ranges / take_ranges) require.  Offsets/lengths are in
  // cells of the shared scalar geometry; callers scale them to each
  // field's per-cell footprint, so the walk runs once per pass.
  cell_rows->clear();
  for (const std::int64_t t : sp.device_tiles) {
    std::int64_t f = sp.plan.tile_begin(t);
    const std::int64_t e = sp.plan.tile_end(t);
    while (f < e) {
      const exec::Range3::Cell c = range.cell(f);
      const std::int64_t run =
          std::min<std::int64_t>(e - f, range.i.hi - c.i + 1);
      cell_rows->push_back({call_coal_.index(c.i, c.k, c.j),
                            static_cast<std::uint64_t>(run)});
      f += run;
    }
  }
}

void FastSbm::pass_coal_hetero(MicroState& state, FsbmStats& st,
                               prof::Profiler& prof) {
  prof::ScopedRange cr(prof, "coal_bott_new_loop");
  const auto t0 = Clock::now();

  const int nkr = bins_.nkr();
  const int ni = patch_.ip.size();
  const bool pooled = version_ == Version::kV3Offload3;
  const bool collapse3 = version_ != Version::kV2Offload2;

  // Predicate split over row tiles (one i-row per tile): the coal gate
  // is altitude-shaped — whole upper-level rows are predicate-false —
  // so row granularity is what lets the cheap remainder stay off the
  // device.  The cut is a pure function of (range, grain, call_coal_),
  // identical across shard concurrencies.
  exec::LaunchParams lp;
  lp.name = "coal_bott_new_loop";
  lp.collapse = collapse3 ? 3 : 2;
  lp.grain = ni;
  lp.regs_per_thread = params_.coal_regs_per_thread;
  lp.workspace_bytes_per_thread =
      pooled ? 0
             : static_cast<std::uint64_t>(params_.automatic_array_count) *
                   static_cast<std::uint64_t>(nkr) * sizeof(float);
  const exec::Range3 range{patch_.ip, patch_.k, patch_.jp};
  const exec::TilePlan plan = exec::ExecSpace::plan_for(range, lp);
  const exec::SplitPlan sp = exec::split_plan(
      range, plan,
      [&](int i, int k, int j) { return call_coal_(i, k, j) != 0; });
  st.shard_cells_device += static_cast<std::uint64_t>(sp.device_cells);
  st.shard_cells_host += static_cast<std::uint64_t>(sp.host_cells);

  // Host shard: the predicate-false remainder, concurrent with the
  // device shard's upload + kernel.  Its lanes are Listing 6's gate and
  // nothing else; a nonzero predicate here means the split planner
  // leaked an active cell into the remainder, which the join below
  // turns into a hard error rather than silently dropped physics.
  std::atomic<std::uint64_t> strays{0};
  std::exception_ptr host_err;
  double host_wall = 0.0;
  std::thread host_thread([&] {
    const auto h0 = Clock::now();
    try {
      hetero_->host_shard().run_tile_list(
          sp.plan, sp.host_tiles, lp,
          [&](std::int64_t, std::int64_t b, std::int64_t e) {
            for (std::int64_t f = b; f < e; ++f) {
              const exec::Range3::Cell c = range.cell(f);
              if (call_coal_(c.i, c.k, c.j) != 0) {
                strays.fetch_add(1, std::memory_order_relaxed);
              }
            }
          });
    } catch (...) {
      host_err = std::current_exception();
    }
    host_wall = seconds_since(h0);
  });

  CoalCounters cnt;
  const auto d0 = Clock::now();
  try {
    if (!sp.device_tiles.empty()) {
      // Shard-granular h2d under BOTH residency modes: a res=step launch
      // map_allocs per-launch transients (fully host-dirty, so the
      // ranged update moves exactly the shard's rows — never the
      // predicate-false remainder), and res=persist moves the host-dirty
      // bytes inside the shard rows only, leaving the rest marked for
      // whoever needs them later.  One row walk, scaled per field
      // footprint.
      std::vector<mem::ByteRange> cell_rows;
      shard_rows(sp, range, &cell_rows);
      auto scaled = [&](std::uint64_t elem_bytes) {
        std::vector<mem::ByteRange> rows;
        rows.reserve(cell_rows.size());
        for (const mem::ByteRange& r : cell_rows) {
          rows.push_back({r.off * elem_bytes, r.len * elem_bytes});
        }
        return rows;
      };
      const std::vector<mem::ByteRange> rows_bins =
          scaled(static_cast<std::uint64_t>(nkr) * sizeof(float));
      const std::vector<mem::ByteRange> rows_scalar = scaled(sizeof(float));
      {
        const gpu::TransferStats tx0 = device_->transfers();
        region_->update_to_ranges(ids_.call_coal, cell_rows);  // 1 B/cell
        for (const mem::FieldId f : ids_.ff) {
          region_->update_to_ranges(f, rows_bins);
        }
        region_->update_to_ranges(ids_.temp, rows_scalar);
        region_->update_to_ranges(ids_.pres, rows_scalar);
        st.charge_transfer_delta(tx0, device_->transfers());
      }

      auto run_cell = [&](int i, int k, int j) {
        coal_run_cell(state, i, k, j, pooled, cnt);
      };

      gpu::KernelDesc desc;
      desc.name = "coal_bott_new_loop";
      desc.regs_per_thread = params_.coal_regs_per_thread;
      desc.workspace_bytes_per_thread = lp.workspace_bytes_per_thread;
      desc.double_precision = false;
      desc.collapse = lp.collapse;
      if (collapse3) {
        // One device lane per device-shard cell.
        desc.iterations = sp.device_cells;
        desc.body = [&](std::int64_t it) {
          const exec::Range3::Cell c = range.cell(sp.device_flat(it));
          run_cell(c.i, c.k, c.j);
        };
        desc.trace = [&](std::int64_t it, std::vector<gpu::AccessEvent>& out) {
          const exec::Range3::Cell c = range.cell(sp.device_flat(it));
          emit_coal_trace(state, c.i, c.k, c.j, pooled, out);
        };
      } else {
        // collapse(2): one lane per device-shard (k, j) row, i inside.
        desc.iterations = static_cast<std::int64_t>(sp.device_tiles.size());
        desc.body = [&](std::int64_t it) {
          const std::int64_t t =
              sp.device_tiles[static_cast<std::size_t>(it)];
          const exec::Range3::Cell c = range.cell(sp.plan.tile_begin(t));
          for (int i = range.i.lo; i <= range.i.hi; ++i) {
            run_cell(i, c.k, c.j);
          }
        };
        desc.trace = [&](std::int64_t it, std::vector<gpu::AccessEvent>& out) {
          const std::int64_t t =
              sp.device_tiles[static_cast<std::size_t>(it)];
          const exec::Range3::Cell c = range.cell(sp.plan.tile_begin(t));
          for (int i = range.i.lo; i <= range.i.hi; ++i) {
            emit_coal_trace(state, i, c.k, c.j, pooled, out);
          }
        };
      }
      desc.flops_total = [&]() {
        return coal_flops_model(cnt.interactions.load(), cnt.lookups.load());
      };

      st.coal_kernel = device_space_->launch(desc);

      // d2h: the kernel's writes at bin-slice granularity through the
      // predicate (mark_coal_writes) — the host shard wrote nothing, so
      // this is exactly the bytes that changed hands.  res=step then
      // closes its per-launch transients.
      {
        const gpu::TransferStats tx0 = device_->transfers();
        mark_coal_writes(state);
        for (const mem::FieldId f : ids_.ff) region_->update_from(f);
        if (!persist()) region_->unmap_all();
        st.charge_transfer_delta(tx0, device_->transfers());
      }
    }
  } catch (...) {
    host_thread.join();
    throw;
  }
  st.shard_wall_device_sec += seconds_since(d0);

  host_thread.join();
  if (host_err) std::rethrow_exception(host_err);
  st.shard_wall_host_sec += host_wall;
  if (strays.load() != 0) {
    throw Error("FastSbm: hetero split leaked coal-active cells into the "
                "host shard");
  }

  st.coal_interactions += cnt.interactions.load();
  st.kernel_entries += cnt.lookups.load();
  st.coal_flops += coal_flops_model(cnt.interactions.load(),
                                    cnt.lookups.load());
  st.wall_coal_sec += seconds_since(t0);
}

void FastSbm::pass_sedimentation(MicroState& state, FsbmStats& st,
                                 prof::Profiler& prof) {
  if (params_.sed_dispatch.kind == SedDispatch::Kind::kBlock) {
    pass_sedimentation_blocked(state, st, prof);
    return;
  }
  prof::ScopedRange sr(prof, "sedimentation");
  const int nkr = bins_.nkr();
  const int nz = patch_.k.size();
  SedConfig cfg = params_.sed;
  cfg.dt = params_.dt;

  // Columns are independent: the collapse(2) shape of the paper's
  // sedimentation loops (k runs inside the column solver).  Dispatch the
  // (i, j) plane through the execution space; each column owns its cell
  // of `precip`, and stats go into per-tile FsbmStats partials.
  exec::LaunchParams lp;
  lp.name = "sedimentation";
  lp.collapse = 2;
  lp.grain = patch_.ip.size();  // one j-row of columns per tile
  const FsbmStats sum = exec_space().parallel_reduce<FsbmStats>(
      exec::Range3{patch_.ip, Range{0, 0}, patch_.jp}, lp,
      [&](FsbmStats& pt, int i, int /*k*/, int j) {
        // Per-thread column buffers (tiles never share a thread
        // mid-tile, and sediment_column fully overwrites them).
        thread_local std::vector<float> col;
        thread_local std::vector<double> rho_col;
        col.resize(static_cast<std::size_t>(nz) * nkr);
        rho_col.resize(static_cast<std::size_t>(nz));
        for (int iz = 0; iz < nz; ++iz) {
          rho_col[static_cast<std::size_t>(iz)] =
              state.rho(i, patch_.k.lo + iz, j);
        }
        // A column that is bulk-fidelity at every level sediments its
        // liquid through the Kessler column solver (rain carrier bin
        // only); its ice species still take the bin path below.  Mixed
        // columns stay fully on the bin path — the carrier bins fall
        // with their own bin velocities there, which is the price of a
        // column-local solver, and the fidelity rule promotes such
        // columns' wet cells anyway.
        const bool bulk_col =
            params_.phys != PhysScheme::kBin && column_all_bulk(i, j);
        if (bulk_col) {
          const double p = sediment_bulk_column(state, i, j, pt);
          state.precip(i, 0, j) =
              static_cast<float>(state.precip(i, 0, j) + p);
          pt.surface_precip += p;
        }
        for (int s = 0; s < kNumSpecies; ++s) {
          if (bulk_col && s == static_cast<int>(Species::kLiquid)) continue;
          auto& f = state.ff[static_cast<std::size_t>(s)];
          // Gather the column (bin-fastest slices per level).
          for (int iz = 0; iz < nz; ++iz) {
            std::memcpy(&col[static_cast<std::size_t>(iz) * nkr],
                        f.slice(i, patch_.k.lo + iz, j),
                        static_cast<std::size_t>(nkr) * sizeof(float));
          }
          const SedStats ss =
              sediment_column(bins_, static_cast<Species>(s), col.data(),
                              rho_col.data(), nz, cfg);
          for (int iz = 0; iz < nz; ++iz) {
            std::memcpy(f.slice(i, patch_.k.lo + iz, j),
                        &col[static_cast<std::size_t>(iz) * nkr],
                        static_cast<std::size_t>(nkr) * sizeof(float));
          }
          state.precip(i, 0, j) =
              static_cast<float>(state.precip(i, 0, j) + ss.surface_precip);
          pt.surface_precip += ss.surface_precip;
          pt.sed_flops += ss.flops;
          pt.sed_substeps += ss.substeps;
          pt.sed_lockstep_substeps += ss.lockstep_substeps;
          pt.sed_tv_lookups += ss.tv_lookups;
          pt.sed_corr_evals += ss.corr_evals;
        }
      });
  st.merge(sum);
  // Residency: sedimentation rewrote every bin column (host-side under a
  // host space; modeled as a device kernel under exec=device).
  mark_pass_writes(st, exec_device_, /*thermo=*/false);
}

void FastSbm::pass_sedimentation_blocked(MicroState& state, FsbmStats& st,
                                         prof::Profiler& prof) {
  prof::ScopedRange sr(prof, "sedimentation");
  const int nkr = bins_.nkr();
  const int nz = patch_.k.size();
  const int klo = patch_.k.lo;
  SedConfig cfg = params_.sed;
  cfg.dt = params_.dt;
  const int nb = std::max(1, params_.sed_dispatch.block);

  // Same tile plan as the per-column path (one j-row of columns per
  // tile, a pure function of the range), so per-tile stat partials merge
  // in the same order and the two dispatch modes produce bitwise-equal
  // run statistics, not just bitwise-equal state.  Within a tile,
  // columns are taken in flat order in chunks of `nb`; the last chunk of
  // a tile may be ragged (ncol < nb).
  exec::LaunchParams lp;
  lp.name = "sedimentation";
  lp.collapse = 2;
  lp.grain = patch_.ip.size();
  const exec::Range3 range{patch_.ip, Range{0, 0}, patch_.jp};
  if (range.empty()) return;
  const exec::TilePlan plan = exec::ExecSpace::plan_for(range, lp);
  std::vector<FsbmStats> parts(static_cast<std::size_t>(plan.tiles()));
  exec_space().run_tiles(
      plan, lp, [&](std::int64_t t, std::int64_t b, std::int64_t e) {
        FsbmStats& pt = parts[static_cast<std::size_t>(t)];
        // Reusable per-thread block buffers.  Every entry a block reads
        // is written by its own gather first (ragged blocks use a
        // shorter column stride, so no stale data from a wider previous
        // block can leak through — the seed-determinism test guards
        // this).
        thread_local std::vector<float> g_blk;
        thread_local std::vector<double> rho_blk;
        thread_local std::vector<double> rho_bin;
        thread_local std::vector<double> precip_col;
        thread_local std::vector<double> precip_mat;
        thread_local std::vector<int> ci, cj, bincols;
        g_blk.resize(static_cast<std::size_t>(nb) * nz * nkr);
        rho_blk.resize(static_cast<std::size_t>(nb) * nz);
        precip_col.resize(static_cast<std::size_t>(nb));
        precip_mat.resize(static_cast<std::size_t>(nb) * kNumSpecies);
        ci.resize(static_cast<std::size_t>(nb));
        cj.resize(static_cast<std::size_t>(nb));
        bincols.resize(static_cast<std::size_t>(nb));

        for (std::int64_t c0 = b; c0 < e; c0 += nb) {
          const int ncol =
              static_cast<int>(std::min<std::int64_t>(nb, e - c0));
          const auto nc = static_cast<std::size_t>(ncol);
          for (int c = 0; c < ncol; ++c) {
            const exec::Range3::Cell cell = range.cell(c0 + c);
            ci[static_cast<std::size_t>(c)] = cell.i;
            cj[static_cast<std::size_t>(c)] = cell.j;
          }
          // Gather densities once per block (shared by all species).
          for (int iz = 0; iz < nz; ++iz) {
            for (int c = 0; c < ncol; ++c) {
              rho_blk[static_cast<std::size_t>(iz) * nc +
                      static_cast<std::size_t>(c)] =
                  state.rho(ci[static_cast<std::size_t>(c)], klo + iz,
                            cj[static_cast<std::size_t>(c)]);
            }
          }
          // Fidelity split of the chunk: pure-bulk columns take the
          // Kessler column solver for their liquid (in flat column
          // order, so bulk stats accumulate like the per-column path);
          // the remainder forms a compacted sub-block for the bin
          // solver.  Under phys=bin every column is a bin column and
          // the compaction is the identity, leaving the block math —
          // and its results — untouched.
          int ncb = 0;
          for (int c = 0; c < ncol; ++c) {
            if (params_.phys != PhysScheme::kBin &&
                column_all_bulk(ci[static_cast<std::size_t>(c)],
                                cj[static_cast<std::size_t>(c)])) {
              precip_mat[static_cast<std::size_t>(c) * kNumSpecies] =
                  sediment_bulk_column(state, ci[static_cast<std::size_t>(c)],
                                       cj[static_cast<std::size_t>(c)], pt);
            } else {
              bincols[static_cast<std::size_t>(ncb++)] = c;
            }
          }
          for (int s = 0; s < kNumSpecies; ++s) {
            // The liquid species runs only over the compacted bin
            // columns; ice species always take the full chunk (bulk
            // cells never carry bulk ice).
            const bool liquid = s == static_cast<int>(Species::kLiquid);
            const int nsc = liquid ? ncb : ncol;
            if (nsc == 0) continue;
            const auto nsz = static_cast<std::size_t>(nsc);
            const auto col_of = [&](int c) {
              return liquid ? bincols[static_cast<std::size_t>(c)] : c;
            };
            const double* rho = rho_blk.data();
            if (liquid && ncb < ncol) {
              rho_bin.resize(nsz * static_cast<std::size_t>(nz));
              for (int iz = 0; iz < nz; ++iz) {
                for (int c = 0; c < nsc; ++c) {
                  rho_bin[static_cast<std::size_t>(iz) * nsz +
                          static_cast<std::size_t>(c)] =
                      rho_blk[static_cast<std::size_t>(iz) * nc +
                              static_cast<std::size_t>(col_of(c))];
                }
              }
              rho = rho_bin.data();
            }
            auto& f = state.ff[static_cast<std::size_t>(s)];
            // Gather: transpose bin-fastest level slices into the
            // column-minor SoA block.
            for (int iz = 0; iz < nz; ++iz) {
              for (int c = 0; c < nsc; ++c) {
                const int cc = col_of(c);
                const float* sl =
                    f.slice(ci[static_cast<std::size_t>(cc)], klo + iz,
                            cj[static_cast<std::size_t>(cc)]);
                float* dst =
                    g_blk.data() + static_cast<std::size_t>(iz) * nkr * nsz +
                    static_cast<std::size_t>(c);
                for (int k = 0; k < nkr; ++k) {
                  dst[static_cast<std::size_t>(k) * nsz] = sl[k];
                }
              }
            }
            const SedStats ss = sediment_block(
                bins_, static_cast<Species>(s), g_blk.data(), rho, nz, nsc,
                cfg, precip_col.data());
            // Scatter back.
            for (int iz = 0; iz < nz; ++iz) {
              for (int c = 0; c < nsc; ++c) {
                const int cc = col_of(c);
                float* sl = f.slice(ci[static_cast<std::size_t>(cc)], klo + iz,
                                    cj[static_cast<std::size_t>(cc)]);
                const float* src =
                    g_blk.data() + static_cast<std::size_t>(iz) * nkr * nsz +
                    static_cast<std::size_t>(c);
                for (int k = 0; k < nkr; ++k) {
                  sl[k] = src[static_cast<std::size_t>(k) * nsz];
                }
              }
            }
            for (int c = 0; c < nsc; ++c) {
              precip_mat[static_cast<std::size_t>(col_of(c)) * kNumSpecies +
                         static_cast<std::size_t>(s)] = precip_col[c];
            }
            pt.sed_flops += ss.flops;
            pt.sed_substeps += ss.substeps;
            pt.sed_lockstep_substeps += ss.lockstep_substeps;
            pt.sed_tv_lookups += ss.tv_lookups;
            pt.sed_corr_evals += ss.corr_evals;
          }
          // Accumulate precipitation in (column, species) order — the
          // same association the per-column path uses, which keeps
          // FsbmStats::surface_precip bitwise identical across the two
          // dispatch modes.
          for (int c = 0; c < ncol; ++c) {
            const int i = ci[static_cast<std::size_t>(c)];
            const int j = cj[static_cast<std::size_t>(c)];
            for (int s = 0; s < kNumSpecies; ++s) {
              const double p =
                  precip_mat[static_cast<std::size_t>(c) * kNumSpecies +
                             static_cast<std::size_t>(s)];
              state.precip(i, 0, j) =
                  static_cast<float>(state.precip(i, 0, j) + p);
              pt.surface_precip += p;
            }
          }
        }
      });
  FsbmStats sum;
  for (const FsbmStats& part : parts) sum.merge(part);
  st.merge(sum);
  // Residency: same dirty marks as the per-column path (see above).
  mark_pass_writes(st, exec_device_, /*thermo=*/false);
}

FsbmStats FastSbm::step(MicroState& state, prof::Profiler& prof) {
  prof::ScopedRange r(prof, "fast_sbm");
  OBS_SPAN("fsbm", "fast_sbm",
           {{"version", version_name(version_)},
            {"groups", schedule_.groups.size()}});
  const auto t0 = Clock::now();
  FsbmStats st;
  // Walk the fusion schedule: a two-pass group is the fused cond+coal
  // launch; singleton groups dispatch their pass exactly as the
  // pre-graph step() did (each node's device/split flags encode the
  // old offloaded/hetero conditions).
  const std::size_t launches0 =
      device_ != nullptr ? device_->launches().size() : 0;
  // The fidelity sweep is a step prologue, not a PassGraph node: it
  // reads only the liquid field + thermo and decides which scheme each
  // cell runs this step, so it must precede every pass and must never
  // fuse with one.  Under phys=bin it is skipped entirely — no extra
  // launches, no extra stats, bitwise-identical behavior to builds
  // without the knob.
  if (params_.phys != PhysScheme::kBin) pass_fidelity(state, st, prof);
  for (const auto& group : schedule_.groups) {
    const exec::PassNode& head = graph_.node(group[0]);
    if (group.size() == 2) {
      if (head.tag != kTagPre || graph_.node(group[1]).tag != kTagCoal) {
        throw Error("FastSbm: unexpected fused group (only cond+coal has a "
                    "fused kernel)");
      }
      pass_cond_coal_fused(state, st, prof);
      continue;
    }
    switch (head.tag) {
      case kTagPre:
        if (head.device) {
          pass_cond_offload(state, st, prof);
        } else {
          pass_physics(state, st, prof);
        }
        break;
      case kTagCoal:
        if (head.split) {
          pass_coal_hetero(state, st, prof);
        } else {
          pass_coal_offload(state, st, prof);
        }
        break;
      case kTagSed:
        pass_sedimentation(state, st, prof);
        break;
      default:
        throw Error("FastSbm: unknown pass tag in schedule");
    }
  }
  if (device_ != nullptr) {
    const std::uint64_t n =
        static_cast<std::uint64_t>(device_->launches().size() - launches0);
    st.kernel_launches += n;
    st.launch_latency_ms +=
        static_cast<double>(n) * device_->spec().kernel_launch_us / 1000.0;
  }
  st.wall_total_sec = seconds_since(t0);
  return st;
}

}  // namespace wrf::fsbm
