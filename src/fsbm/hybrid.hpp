#pragma once
// Adaptive bin/bulk hybrid microphysics: the `phys=` knob.
//
// The FSBM bin chain is expensive everywhere it runs, but most of a
// CONUS-style domain at any instant is clear air or stratiform drizzle
// that a one-moment bulk scheme represents adequately.  The hybrid mode
// generalizes the PR-5 predicate machinery into a per-cell *fidelity*
// field: cells where cloud is active or precipitating (the same
// coal-gate shape that drives `call_coal_`) run the full bin chain,
// while the calm remainder runs the corrected Kessler scheme
// (src/bulk/kessler.*) on two moments carried inside the liquid bin
// field itself.  Hysteresis — a promote/demote threshold band plus a
// demotion patience counter — keeps cells from flapping between
// fidelities step to step.
//
//   phys=bin     every cell runs the bin chain (the default; bitwise
//                identical to builds that predate the knob).
//   phys=bulk    every cell runs the Kessler scheme (step 1 demotes the
//                whole domain).
//   phys=hybrid  the adaptive fidelity field decides per cell.
//
// Representation: a bulk cell stores qc on `cloud_carrier_bin` and qr on
// `rain_carrier_bin` of the liquid bin field; every other liquid bin is
// zero.  That keeps the halo exchange, advection, snapshots, and the
// water-budget diagnostics working unchanged — a bulk cell is just a
// very sparse spectrum.  Ice species are never touched by the
// transforms.
//
// Transforms (free functions so tests can drive them directly):
//   demote_liquid  — integrate the spectrum into (qc, qr) moments at the
//                    rain-bin cut and collapse it onto the carriers.
//                    Idempotent on an already-collapsed cell; conserves
//                    liquid mass to float-rounding ulps.
//   promote_liquid — integrate the (possibly advection-smeared) moments
//                    and reconstruct a moment-matched spectrum: a
//                    Gaussian-in-bin-index cloud mode around the cloud
//                    carrier and an exponential (Marshall-Palmer-like)
//                    rain tail from the cut.  Conserves each category's
//                    mass to ulps.
// Neither transform touches temp or qv, so moist static energy is
// exactly invariant across promotion/demotion; conservation is asserted
// with ulp-scaled tolerances in tests/test_fsbm_properties.cpp.

#include <cstdint>
#include <string>

#include "bulk/kessler.hpp"

namespace wrf::fsbm {

/// The `phys=` knob: which microphysics fidelity the scheme runs.
enum class PhysScheme : int { kBin = 0, kBulk = 1, kHybrid = 2 };

const char* phys_name(PhysScheme p);

/// Parse "bin" | "bulk" | "hybrid"; throws ConfigError on anything else.
PhysScheme parse_phys(const std::string& s);

/// Scan argv for a `phys=<mode>` argument (any position); returns the
/// default (bin) when absent.  Shared by the examples and benches, like
/// fsbm::sed_from_args.
PhysScheme phys_from_args(int argc, char** argv);

/// Per-cell fidelity codes (Field3D<uint8_t> values).
constexpr std::uint8_t kFidelityBulk = 0;
constexpr std::uint8_t kFidelityBin = 1;

/// Tunables of the hybrid mode.
struct HybridConfig {
  /// A bulk cell whose liquid mass exceeds this (and whose temperature
  /// passes the coal gate) promotes to bin fidelity, kg/kg.
  double promote_threshold = 1.0e-6;
  /// A bin cell is "calm" when its liquid mass is below this (or its
  /// temperature fails the coal gate), kg/kg.  Two orders of magnitude
  /// below the promote threshold: the band is the hysteresis.
  double demote_threshold = 1.0e-8;
  /// Consecutive calm steps before a bin cell demotes (temporal
  /// hysteresis; must be in [1, 255] — the counter is a byte).
  int demote_patience = 3;
  /// Liquid bins >= this integrate into qr, below into qc (bin 16 is
  /// ~80 um radius, the same cut the fig2 bench uses).
  int rain_bin_cut = 16;
  /// Which bins carry the bulk moments.  cloud < cut <= rain.
  int cloud_carrier_bin = 8;
  int rain_carrier_bin = 20;
  /// Test hook: force the fidelity field instead of adapting.  kAllBin
  /// is the bitwise-regression gate (phys=hybrid + kAllBin must equal
  /// phys=bin bit for bit); kAllBulk is what phys=bulk uses internally.
  enum class Override : int { kAdaptive = 0, kAllBin = 1, kAllBulk = 2 };
  Override override_mode = Override::kAdaptive;
  /// Parameters of the bulk cells' Kessler scheme.
  bulk::KesslerParams kessler;
};

/// Bulk moments of one liquid spectrum (diagnostic return of demote).
struct BulkMoments {
  double qc = 0.0;
  double qr = 0.0;
};

/// Collapse a liquid spectrum (nkr bins) in place onto the carrier
/// bins: bins below the cut integrate (in double) into qc, bins at or
/// above into qr.  Returns the moments.  Idempotent on an
/// already-collapsed cell (the carriers re-integrate to themselves).
BulkMoments demote_liquid(float* liq, int nkr, const HybridConfig& cfg);

/// Reconstruct a moment-matched spectrum in place from the carried
/// moments (strays included: the whole current spectrum is integrated
/// first, exactly like demote).  Cloud mass spreads over bins below the
/// cut with Gaussian-in-index weights centered on the cloud carrier;
/// rain mass over bins at or above the cut with an exponential tail.
/// Weights are computed and normalized in double, so each category's
/// mass round-trips to ulps.
void promote_liquid(float* liq, int nkr, const HybridConfig& cfg);

}  // namespace wrf::fsbm
