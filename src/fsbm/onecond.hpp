#pragma once
// Bin condensation / evaporation / deposition: FSBM's onecond1/onecond2.
//
// `onecond1` handles warm cells (liquid only); `onecond2` handles
// mixed-phase cells where supercooled liquid and the ice classes compete
// for vapor (the Wegener-Bergeron-Findeisen mechanism emerges because
// saturation over ice is lower than over liquid).  Growth follows the
// classic diffusional equation dm/dt = 4*pi*r*S / (Fk + Fd) per bin, with
// explicit sub-stepping, vapor-budget clamping, and a number-and-mass
// conserving remap of grown/shrunk particles back onto the fixed
// mass-doubling grid.  Latent heating updates the cell temperature.
//
// These routines run on the host in every code version — the paper lists
// offloading them as ongoing work (Section VIII).

#include <cstdint>

#include "fsbm/bins.hpp"
#include "fsbm/coal_bott.hpp"

namespace wrf::fsbm {

struct CondConfig {
  double dt = 5.0;
  int substeps = 2;       ///< explicit growth substeps per call
  double gmin = 1.0e-14;  ///< empty-bin threshold, kg/kg
};

struct CondStats {
  double dq_liquid = 0.0;  ///< net vapor -> liquid this call, kg/kg
  double dq_ice = 0.0;     ///< net vapor -> ice this call, kg/kg
  std::uint64_t bins_active = 0;
  double flops = 0.0;
};

/// Warm-cell condensation/evaporation on the liquid spectrum only.
/// Updates `temp_k`, `qv`, and the workspace liquid distribution.
CondStats onecond1(const BinGrid& bins, double& temp_k, double& qv,
                   double pres_pa, const CoalWorkspace& w,
                   const CondConfig& cfg);

/// Mixed-phase condensation/deposition on liquid + ice classes.
CondStats onecond2(const BinGrid& bins, double& temp_k, double& qv,
                   double pres_pa, const CoalWorkspace& w,
                   const CondConfig& cfg);

/// Shared helper: grow every bin of `g` by per-particle mass change
/// `dm[k]`, remapping onto the fixed grid; returns net condensate mass
/// change (kg/kg).  Negative growth below the smallest bin evaporates
/// mass to vapor entirely.  Exposed for property tests.
double grow_and_remap(const BinGrid& bins, float* g, const double* dm,
                      double gmin);

}  // namespace wrf::fsbm
