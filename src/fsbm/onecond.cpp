#include "fsbm/onecond.hpp"

#include <algorithm>
#include <cmath>

#include "util/constants.hpp"

namespace wrf::fsbm {

namespace c = wrf::constants;

double grow_and_remap(const BinGrid& bins, float* g, const double* dm,
                      double gmin) {
  const int nkr = bins.nkr();
  // Scratch on the stack: remap targets a clean array, then copies back.
  float gnew[kMaxNkr] = {};
  double dq = 0.0;  // vapor consumed (positive = condensation)

  for (int k = 0; k < nkr; ++k) {
    const float gk = g[k];
    if (gk <= gmin) {
      // Numerical dust still carries mass; keep it in place.
      gnew[k] += gk;
      continue;
    }
    const double m = bins.mass(k);
    const double n = gk / m;
    double m_new = m + dm[k];
    if (m_new <= 0.5 * bins.mass(0)) {
      // Shrunk below the grid: complete evaporation of this bin.
      dq -= gk;
      continue;
    }
    const double m_top = bins.mass(nkr - 1);
    if (m_new >= m_top) {
      // Clamp growth at the top bin (mass beyond the grid is truncated;
      // vapor budget sees only the realized growth).
      gnew[nkr - 1] += static_cast<float>(n * m_top);
      dq += n * (m_top - m);
      continue;
    }
    const int kd = bins.bin_floor(m_new);
    const double mk = bins.mass(kd);
    const double mk1 = bins.mass(kd + 1);
    const double f = (m_new - mk) / (mk1 - mk);
    gnew[kd] += static_cast<float>(n * (1.0 - f) * mk);
    gnew[kd + 1] += static_cast<float>(n * f * mk1);
    dq += n * (m_new - m);
  }
  for (int k = 0; k < nkr; ++k) g[k] = gnew[k];
  return dq;
}

namespace {

/// Thermodynamic growth factor 1/(Fk + Fd) pieces for one phase.
struct GrowthEnv {
  double inv_fk_fd;  ///< 1/(Fk+Fd): kg m^-1 s^-1 scale of dm/dt = 4 pi r S * this
  double qs;         ///< saturation mixing ratio for this phase
  double latent;     ///< heating per kg condensed
};

GrowthEnv growth_env(double temp_k, double pres_pa, bool over_ice) {
  const double es = over_ice ? c::esat_ice(temp_k) : c::esat_liquid(temp_k);
  const double lat = over_ice ? c::kLs : c::kLv;
  const double dv =
      2.11e-5 * std::pow(temp_k / 273.15, 1.94) * (101325.0 / pres_pa);
  const double ka = 0.0243;
  const double fk = (lat / (c::kRv * temp_k) - 1.0) * lat / (ka * temp_k);
  const double fd = c::kRv * temp_k / (dv * es);
  GrowthEnv env;
  env.inv_fk_fd = 1.0 / (fk + fd);
  env.qs = over_ice ? c::qsat_ice(temp_k, pres_pa)
                    : c::qsat_liquid(temp_k, pres_pa);
  env.latent = lat;
  return env;
}

/// One growth substep for one distribution.  Computes per-bin particle
/// growth, clamps the aggregate against the vapor budget, remaps, and
/// applies vapor/temperature feedback.  Returns condensed mass.
double substep_one(const BinGrid& bins, Species sp, float* g, double& temp_k,
                   double& qv, double pres_pa, bool over_ice, double dt,
                   double gmin, CondStats& st) {
  const GrowthEnv env = growth_env(temp_k, pres_pa, over_ice);
  const double s_super = qv / env.qs - 1.0;
  if (std::abs(s_super) < 1.0e-8) return 0.0;

  const int nkr = bins.nkr();
  double dm[kMaxNkr];
  double dq_request = 0.0;
  for (int k = 0; k < nkr; ++k) {
    if (g[k] <= gmin) {
      dm[k] = 0.0;
      continue;
    }
    const double r = bins.radius(sp, k);
    dm[k] = 4.0 * c::kPi * r * s_super * env.inv_fk_fd * dt;
    // A particle cannot more than double or lose more than half its mass
    // in one substep (stability of the explicit scheme).
    const double m = bins.mass(k);
    dm[k] = std::clamp(dm[k], -0.5 * m, m);
    dq_request += g[k] / m * dm[k];
    ++st.bins_active;
    st.flops += 30.0;
  }
  if (dq_request == 0.0) return 0.0;

  // Vapor budget clamp: condensation cannot overshoot saturation
  // (relaxation limit), evaporation cannot push qv above saturation.
  double allow;
  if (dq_request > 0.0) {
    allow = std::max(0.0, 0.9 * (qv - env.qs));
  } else {
    allow = std::min(0.0, -0.9 * (env.qs - qv));
  }
  double scale = 1.0;
  if (std::abs(dq_request) > std::abs(allow)) {
    scale = std::abs(allow) / std::abs(dq_request);
  }
  if (scale < 1.0) {
    for (int k = 0; k < nkr; ++k) dm[k] *= scale;
  }

  const double dq = grow_and_remap(bins, g, dm, gmin);
  qv -= dq;
  temp_k += env.latent / c::kCp * dq;
  return dq;
}

}  // namespace

CondStats onecond1(const BinGrid& bins, double& temp_k, double& qv,
                   double pres_pa, const CoalWorkspace& w,
                   const CondConfig& cfg) {
  CondStats st;
  const double dt_sub = cfg.dt / cfg.substeps;
  for (int s = 0; s < cfg.substeps; ++s) {
    st.dq_liquid += substep_one(bins, Species::kLiquid, w.fl1, temp_k, qv,
                                pres_pa, /*over_ice=*/false, dt_sub, cfg.gmin,
                                st);
  }
  return st;
}

CondStats onecond2(const BinGrid& bins, double& temp_k, double& qv,
                   double pres_pa, const CoalWorkspace& w,
                   const CondConfig& cfg) {
  CondStats st;
  const int nkr = bins.nkr();
  const double dt_sub = cfg.dt / cfg.substeps;
  for (int s = 0; s < cfg.substeps; ++s) {
    // Liquid equilibrates against water saturation...
    st.dq_liquid += substep_one(bins, Species::kLiquid, w.fl1, temp_k, qv,
                                pres_pa, /*over_ice=*/false, dt_sub, cfg.gmin,
                                st);
    // ...while every ice class grows against (lower) ice saturation:
    // between the two saturation curves, ice grows at liquid's expense.
    float* const ice_arrays[3] = {w.g2, w.g2 + nkr, w.g2 + 2 * nkr};
    const Species ice_species[3] = {Species::kIceColumn, Species::kIcePlate,
                                    Species::kIceDendrite};
    for (int h = 0; h < kIceMax; ++h) {
      st.dq_ice += substep_one(bins, ice_species[h], ice_arrays[h], temp_k,
                               qv, pres_pa, /*over_ice=*/true, dt_sub,
                               cfg.gmin, st);
    }
    st.dq_ice += substep_one(bins, Species::kSnow, w.g3, temp_k, qv, pres_pa,
                             /*over_ice=*/true, dt_sub, cfg.gmin, st);
    st.dq_ice += substep_one(bins, Species::kGraupel, w.g4, temp_k, qv,
                             pres_pa, /*over_ice=*/true, dt_sub, cfg.gmin, st);
    st.dq_ice += substep_one(bins, Species::kHail, w.g5, temp_k, qv, pres_pa,
                             /*over_ice=*/true, dt_sub, cfg.gmin, st);
  }
  return st;
}

}  // namespace wrf::fsbm
