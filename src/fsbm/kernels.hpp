#pragma once
// Collision-kernel lookup tables and the paper's two access strategies.
//
// FSBM precomputes gravitational-collection kernels K(i,j) for every pair
// of interacting hydrometeor classes at two reference pressure levels
// (750 mb and 500 mb); at run time the kernel for a grid cell is a linear
// interpolation in pressure between the two tables (Listing 3).
//
// The paper's first optimization (Section VI-A, Table III) is entirely
// about *how* these values reach the collision code:
//
//   * v0 (`kernals_ks`): for every grid cell, fill all 20 nkr x nkr
//     "cw**" arrays, then let the collision subroutines read them.  The
//     arrays were global state, which also blocked parallelization.
//   * v1 (`get_cw`): delete the arrays; compute each entry on demand via
//     pure functions.  Wins because (1) not all 20 arrays are used in a
//     given cell, and (2) not every entry of a used array is read.

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "fsbm/bins.hpp"

namespace wrf::fsbm {

/// The 20 interacting class pairs whose kernels FSBM tabulates
/// (cwls = liquid collected by snow, cwlg = liquid by graupel, ...).
enum class CollisionPair : int {
  kLL = 0,   ///< liquid - liquid (collision-coalescence / rain formation)
  kLS,       ///< liquid - snow (riming)
  kLG,       ///< liquid - graupel (riming)
  kLH,       ///< liquid - hail (wet growth)
  kLI1,      ///< liquid - columnar ice
  kLI2,      ///< liquid - plate ice
  kLI3,      ///< liquid - dendritic ice
  kSS,       ///< snow - snow (aggregation)
  kSG,       ///< snow - graupel
  kSH,       ///< snow - hail
  kSI1,      ///< snow - columnar ice
  kSI2,      ///< snow - plate ice
  kSI3,      ///< snow - dendritic ice
  kGG,       ///< graupel - graupel
  kGH,       ///< graupel - hail
  kHH,       ///< hail - hail
  kII1,      ///< columnar - columnar
  kII2,      ///< plate - plate
  kII3,      ///< dendrite - dendrite
  kIG,       ///< ice crystals - graupel
};
inline constexpr int kNumPairs = 20;

/// Collected (smaller, "a") species of the pair.
Species pair_a(CollisionPair p);
/// Collecting (larger, "b") species of the pair.
Species pair_b(CollisionPair p);
const char* pair_name(CollisionPair p);

/// v0's global-state block: all 20 interpolated kernel arrays for one
/// grid cell.  Each array is nkr*nkr, row-major in (i, j).
struct CollisionArrays {
  explicit CollisionArrays(int nkr)
      : nkr(nkr) {
    for (auto& a : cw) a.assign(static_cast<std::size_t>(nkr) * nkr, 0.0f);
  }
  int nkr;
  std::array<std::vector<float>, kNumPairs> cw;

  float at(CollisionPair p, int i, int j) const {
    return cw[static_cast<std::size_t>(p)]
             [static_cast<std::size_t>(i) * nkr + j];
  }
};

/// Reference pressure levels of the precomputed tables, Pa.
inline constexpr double kTableP750 = 75000.0;
inline constexpr double kTableP500 = 50000.0;

/// Owner of the per-pressure-level kernel tables (yw**_750mb /
/// yw**_500mb) and the two access strategies built on them.
class KernelTables {
 public:
  explicit KernelTables(const BinGrid& bins);

  int nkr() const noexcept { return nkr_; }

  /// Raw table entry at one of the two reference levels.
  float table(CollisionPair p, int i, int j, bool level_750mb) const {
    const auto& t = level_750mb ? yw750_ : yw500_;
    return t[static_cast<std::size_t>(p)]
            [static_cast<std::size_t>(i) * nkr_ + j];
  }

  /// v0: fill all 20 cw** arrays for cell pressure `pres_pa`.  This is
  /// the O(20 * nkr^2) per-cell cost the paper removes.  Returns the
  /// number of table entries computed (for work counters).
  std::uint64_t kernals_ks(double pres_pa, CollisionArrays& out) const;

  /// v1: one interpolated entry, computed on demand.  Pure; safe to call
  /// concurrently from any thread / simulated device lane.
  float get_cw(CollisionPair p, int i, int j, double pres_pa) const {
    const float ckern_1 = table(p, i, j, /*level_750mb=*/true);
    const float ckern_2 = table(p, i, j, /*level_750mb=*/false);
    return interp(ckern_1, ckern_2, pres_pa);
  }

  /// Device-code flavor of get_cw: nvfortran contracts the interpolation
  /// into an FMA, which is why the paper's diffwrf comparison retains
  /// "only" 3-6 digits (Section VII-B).  We reproduce that exact
  /// numerical difference with std::fma.
  float get_cw_device(CollisionPair p, int i, int j, double pres_pa) const {
    const float ckern_1 = table(p, i, j, /*level_750mb=*/true);
    const float ckern_2 = table(p, i, j, /*level_750mb=*/false);
    double w = (pres_pa - kTableP500) / (kTableP750 - kTableP500);
    if (w < 0.0) w = 0.0;
    if (w > 1.0) w = 1.0;
    return std::fma(static_cast<float>(w), ckern_1 - ckern_2, ckern_2);
  }

  /// Pressure interpolation shared by both strategies (Listing 3's
  /// `(ckern_2 + (ckern_1 - ckern_2) * ...)` expression).
  static float interp(float ckern_750, float ckern_500, double pres_pa) {
    double w = (pres_pa - kTableP500) / (kTableP750 - kTableP500);
    if (w < 0.0) w = 0.0;
    if (w > 1.0) w = 1.0;
    return ckern_500 + static_cast<float>(w) * (ckern_750 - ckern_500);
  }

  /// Base address of one table's storage; used by the device cache model
  /// to replay table reads at their true host addresses.
  const float* table_ptr(CollisionPair p, bool level_750mb) const {
    return (level_750mb ? yw750_ : yw500_)[static_cast<std::size_t>(p)].data();
  }

  /// Physical hydrodynamic kernel used to build the tables:
  /// K = pi (ri+rj)^2 |vt_i - vt_j| E(ri, rj), m^3/s.
  static double hydrodynamic_kernel(const BinGrid& bins, Species a, int ka,
                                    Species b, int kb, double rho_air);

  /// Collision efficiency E(r_small, r_large) in [0, 1]; Hall-table-like
  /// shape: small collectors are inefficient, rain-sized ones sweep.
  static double collision_efficiency(double r_small, double r_large);

 private:
  int nkr_;
  std::array<std::vector<float>, kNumPairs> yw750_;
  std::array<std::vector<float>, kNumPairs> yw500_;
};

}  // namespace wrf::fsbm
