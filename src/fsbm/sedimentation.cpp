#include "fsbm/sedimentation.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace wrf::fsbm {

SedStats sediment_column(const BinGrid& bins, Species sp, float* g_col,
                         const double* rho, int nz, const SedConfig& cfg) {
  SedStats st;
  const int nkr = bins.nkr();
  if (nz <= 0) return st;

  for (int k = 0; k < nkr; ++k) {
    // Fastest fall speed in the column bounds the CFL substep.
    double vmax = 0.0;
    for (int iz = 0; iz < nz; ++iz) {
      vmax = std::max(vmax,
                      bins.terminal_velocity(sp, k, rho[iz]) * cfg.vel_scale);
      ++st.tv_lookups;
      ++st.corr_evals;
    }
    if (vmax <= 0.0) continue;
    const int nsub =
        std::max(1, static_cast<int>(std::ceil(vmax * cfg.dt / cfg.dz)));
    const double dts = cfg.dt / nsub;
    st.substeps += static_cast<std::uint64_t>(nsub);
    st.lockstep_substeps += static_cast<std::uint64_t>(nsub);

    for (int s = 0; s < nsub; ++s) {
      // Downward upwind sweep: flux out of level iz lands in iz-1;
      // level 0's outflux is surface precipitation.  rho-weighting keeps
      // the mass budget exact on a column with varying density.
      double flux_from_above = 0.0;  // rho*g*v entering the current level
      for (int iz = nz - 1; iz >= 0; --iz) {
        float& g = g_col[static_cast<std::size_t>(iz) * nkr + k];
        const double v =
            bins.terminal_velocity(sp, k, rho[iz]) * cfg.vel_scale;
        ++st.tv_lookups;
        ++st.corr_evals;
        const double courant = std::min(1.0, v * dts / cfg.dz);
        const double out = rho[iz] * static_cast<double>(g) * courant;
        const double in = flux_from_above;
        g = static_cast<float>((rho[iz] * g - out + in) / rho[iz]);
        flux_from_above = out;
        st.flops += 8.0;
      }
      st.surface_precip += flux_from_above / rho[0];
    }
  }
  return st;
}

SedStats sediment_block(const BinGrid& bins, Species sp, float* g_blk,
                        const double* rho_blk, int nz, int ncol,
                        const SedConfig& cfg, double* precip_col) {
  SedStats st;
  for (int c = 0; c < ncol; ++c) precip_col[c] = 0.0;
  if (nz <= 0 || ncol <= 0) return st;
  const int nkr = bins.nkr();
  const auto nc = static_cast<std::size_t>(ncol);

  // Per-thread scratch: O(ncol) CFL state plus the per-(level, column)
  // density corrections shared by every bin of this species call.
  thread_local std::vector<double> corr, vmax, dts, flux;
  thread_local std::vector<int> nsub;
  corr.resize(static_cast<std::size_t>(nz) * nc);
  vmax.resize(nc);
  dts.resize(nc);
  flux.resize(nc);
  nsub.resize(nc);

  for (int iz = 0; iz < nz; ++iz) {
    for (int c = 0; c < ncol; ++c) {
      corr[static_cast<std::size_t>(iz) * nc + static_cast<std::size_t>(c)] =
          BinGrid::density_correction(
              rho_blk[static_cast<std::size_t>(iz) * nc +
                      static_cast<std::size_t>(c)]);
    }
  }
  st.corr_evals += static_cast<std::uint64_t>(nz) * static_cast<std::uint64_t>(ncol);

  for (int k = 0; k < nkr; ++k) {
    // One power-law lookup per bin per block: the amortization win.
    const double base = bins.terminal_velocity_base(sp, k);
    ++st.tv_lookups;

    // Per-column CFL: each column keeps its OWN substep count and substep
    // length (so its arithmetic matches the solo column solver exactly);
    // the block marches the worst case in lockstep and masks finished
    // columns.
    for (int c = 0; c < ncol; ++c) vmax[static_cast<std::size_t>(c)] = 0.0;
    for (int iz = 0; iz < nz; ++iz) {
      const double* crow = corr.data() + static_cast<std::size_t>(iz) * nc;
      for (int c = 0; c < ncol; ++c) {
        const double v = base * crow[c] * cfg.vel_scale;
        vmax[static_cast<std::size_t>(c)] =
            std::max(vmax[static_cast<std::size_t>(c)], v);
      }
    }
    int nsub_max = 0;
    for (int c = 0; c < ncol; ++c) {
      if (vmax[static_cast<std::size_t>(c)] <= 0.0) {
        nsub[static_cast<std::size_t>(c)] = 0;
        dts[static_cast<std::size_t>(c)] = 0.0;
        continue;
      }
      const int ns = std::max(
          1, static_cast<int>(
                 std::ceil(vmax[static_cast<std::size_t>(c)] * cfg.dt /
                           cfg.dz)));
      nsub[static_cast<std::size_t>(c)] = ns;
      dts[static_cast<std::size_t>(c)] = cfg.dt / ns;
      st.substeps += static_cast<std::uint64_t>(ns);
      if (ns > nsub_max) nsub_max = ns;
    }
    if (nsub_max == 0) continue;
    st.lockstep_substeps += static_cast<std::uint64_t>(nsub_max);

    for (int s = 0; s < nsub_max; ++s) {
      for (int c = 0; c < ncol; ++c) flux[static_cast<std::size_t>(c)] = 0.0;
      for (int iz = nz - 1; iz >= 0; --iz) {
        float* grow =
            g_blk + (static_cast<std::size_t>(iz) * nkr + k) * nc;
        const double* rrow = rho_blk + static_cast<std::size_t>(iz) * nc;
        const double* crow = corr.data() + static_cast<std::size_t>(iz) * nc;
        for (int c = 0; c < ncol; ++c) {
          if (s >= nsub[static_cast<std::size_t>(c)]) continue;
          float& g = grow[c];
          const double v = base * crow[c] * cfg.vel_scale;
          const double courant =
              std::min(1.0, v * dts[static_cast<std::size_t>(c)] / cfg.dz);
          const double out = rrow[c] * static_cast<double>(g) * courant;
          const double in = flux[static_cast<std::size_t>(c)];
          g = static_cast<float>((rrow[c] * g - out + in) / rrow[c]);
          flux[static_cast<std::size_t>(c)] = out;
          st.flops += 8.0;
        }
      }
      for (int c = 0; c < ncol; ++c) {
        if (s < nsub[static_cast<std::size_t>(c)]) {
          precip_col[c] +=
              flux[static_cast<std::size_t>(c)] / rho_blk[c];  // level 0
        }
      }
    }
  }
  for (int c = 0; c < ncol; ++c) st.surface_precip += precip_col[c];
  return st;
}

SedDispatch SedDispatch::parse(const std::string& s) {
  SedDispatch d;
  if (s == "column") {
    d.kind = Kind::kColumn;
    return d;
  }
  const std::string prefix = "block";
  if (s.rfind(prefix, 0) == 0) {
    d.kind = Kind::kBlock;
    if (s.size() == prefix.size()) return d;  // bare "block": default width
    if (s[prefix.size()] == ':') {
      const std::string n = s.substr(prefix.size() + 1);
      if (!n.empty() &&
          n.find_first_not_of("0123456789") == std::string::npos) {
        errno = 0;
        const long v = std::strtol(n.c_str(), nullptr, 10);
        if (errno == 0 && v >= 1 && v <= 1 << 20) {
          d.block = static_cast<int>(v);
          return d;
        }
      }
    }
  }
  throw ConfigError("SedDispatch: unknown sed mode '" + s +
                    "' (want column | block[:N], N >= 1)");
}

std::string SedDispatch::describe() const {
  if (kind == Kind::kColumn) return "column";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "block:%d", block);
  return buf;
}

SedDispatch sed_from_args(int argc, char** argv) {
  const std::string prefix = "sed=";
  for (int a = 1; a < argc; ++a) {
    const std::string s = argv[a];
    if (s.rfind(prefix, 0) == 0) {
      return SedDispatch::parse(s.substr(prefix.size()));
    }
  }
  return SedDispatch{};
}

}  // namespace wrf::fsbm
