#include "fsbm/sedimentation.hpp"

#include <algorithm>
#include <cmath>

namespace wrf::fsbm {

SedStats sediment_column(const BinGrid& bins, Species sp, float* g_col,
                         const double* rho, int nz, const SedConfig& cfg) {
  SedStats st;
  const int nkr = bins.nkr();
  if (nz <= 0) return st;

  for (int k = 0; k < nkr; ++k) {
    // Fastest fall speed in the column bounds the CFL substep.
    double vmax = 0.0;
    for (int iz = 0; iz < nz; ++iz) {
      vmax = std::max(vmax, bins.terminal_velocity(sp, k, rho[iz]));
    }
    if (vmax <= 0.0) continue;
    const int nsub =
        std::max(1, static_cast<int>(std::ceil(vmax * cfg.dt / cfg.dz)));
    const double dts = cfg.dt / nsub;
    st.substeps += static_cast<std::uint64_t>(nsub);

    for (int s = 0; s < nsub; ++s) {
      // Downward upwind sweep: flux out of level iz lands in iz-1;
      // level 0's outflux is surface precipitation.  rho-weighting keeps
      // the mass budget exact on a column with varying density.
      double flux_from_above = 0.0;  // rho*g*v entering the current level
      for (int iz = nz - 1; iz >= 0; --iz) {
        float& g = g_col[static_cast<std::size_t>(iz) * nkr + k];
        const double v = bins.terminal_velocity(sp, k, rho[iz]);
        const double courant = std::min(1.0, v * dts / cfg.dz);
        const double out = rho[iz] * static_cast<double>(g) * courant;
        const double in = flux_from_above;
        g = static_cast<float>((rho[iz] * g - out + in) / rho[iz]);
        flux_from_above = out;
        st.flops += 8.0;
      }
      st.surface_precip += flux_from_above / rho[0];
    }
  }
  return st;
}

}  // namespace wrf::fsbm
