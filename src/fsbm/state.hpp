#pragma once
// Per-patch microphysics state in WRF memory layout.
//
// Thermodynamic fields are Field3D (i fastest); bin distributions are
// Field4D with the bin index fastest, matching FSBM's ff(1:nkr,i,k,j)
// arrays — the layout whose bin-strided GPU accesses the paper's
// roofline discussion analyzes.

#include <array>

#include "fsbm/bins.hpp"
#include "grid/decomp.hpp"
#include "util/field.hpp"

namespace wrf::fsbm {

/// All microphysics state owned by one rank's patch.
struct MicroState {
  explicit MicroState(const grid::Patch& patch, int nkr = 33)
      : patch(patch),
        bins(nkr),
        temp(patch.im, patch.k, patch.jm),
        qv(patch.im, patch.k, patch.jm),
        pres(patch.im, patch.k, patch.jm),
        rho(patch.im, patch.k, patch.jm) {
    for (auto& f : ff) {
      f = Field4D<float>(nkr, patch.im, patch.k, patch.jm);
    }
    precip = Field3D<float>(patch.im, Range{0, 0}, patch.jm);
  }

  /// Sum of all condensate (every bin of every class) at one cell, kg/kg.
  double total_condensate(int i, int k, int j) const {
    double q = 0.0;
    for (const auto& f : ff) {
      for (int n = 0; n < bins.nkr(); ++n) q += f(n, i, k, j);
    }
    return q;
  }

  /// Column-integrated mass of one species over the whole patch
  /// computational region (diagnostic; kg/kg summed over cells).
  double species_mass(Species s) const {
    const auto& f = ff[static_cast<std::size_t>(s)];
    double q = 0.0;
    for (int j = patch.jp.lo; j <= patch.jp.hi; ++j) {
      for (int k = patch.k.lo; k <= patch.k.hi; ++k) {
        for (int i = patch.ip.lo; i <= patch.ip.hi; ++i) {
          for (int n = 0; n < bins.nkr(); ++n) q += f(n, i, k, j);
        }
      }
    }
    return q;
  }

  /// Water-budget invariant: vapor + all condensate summed over the
  /// computational region (sedimentation adds surface precip).
  double total_water() const {
    double q = 0.0;
    for (int j = patch.jp.lo; j <= patch.jp.hi; ++j) {
      for (int k = patch.k.lo; k <= patch.k.hi; ++k) {
        for (int i = patch.ip.lo; i <= patch.ip.hi; ++i) {
          q += qv(i, k, j) + total_condensate(i, k, j);
        }
      }
    }
    for (int j = patch.jp.lo; j <= patch.jp.hi; ++j) {
      for (int i = patch.ip.lo; i <= patch.ip.hi; ++i) {
        q += precip(i, 0, j);
      }
    }
    return q;
  }

  grid::Patch patch;
  BinGrid bins;
  Field3D<float> temp;   ///< air temperature, K (the paper's T_OLD)
  Field3D<float> qv;     ///< water-vapor mixing ratio, kg/kg
  Field3D<float> pres;   ///< pressure, Pa
  Field3D<float> rho;    ///< dry-air density, kg/m^3
  std::array<Field4D<float>, kNumSpecies> ff;  ///< bin distributions
  Field3D<float> precip; ///< accumulated surface precipitation (2-D)
};

}  // namespace wrf::fsbm
