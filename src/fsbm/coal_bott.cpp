#include "fsbm/coal_bott.hpp"

#include <algorithm>
#include <cmath>

#include "util/constants.hpp"

namespace wrf::fsbm {

CoalStats collect_pair(const BinGrid& bins, CollisionPair pair,
                       const KernelSource& ks, float* ga, float* gb,
                       float* gd, const CoalConfig& cfg) {
  CoalStats st;
  const int nkr = bins.nkr();
  const bool self = (ga == gb);
  const auto gmin = static_cast<float>(cfg.gmin);

  const std::uint64_t lookups_before = ks.lookups();
  for (int j = 0; j < nkr; ++j) {
    if (gb[j] <= gmin) continue;  // empty collector: skip the whole row
    const double mj = bins.mass(j);
    // Self-collection covers each unordered pair once (i <= j).
    const int imax = self ? j : nkr - 1;
    for (int i = 0; i <= imax; ++i) {
      // Re-read both bins: earlier (i,j) events in this sweep may have
      // drained them (explicit sequential update, as in Bott's scheme).
      const float gbj = gb[j];
      if (gbj <= gmin) break;
      const float gai = ga[i];
      if (gai <= gmin) continue;
      const double nb = gbj / mj;
      const double mi = bins.mass(i);
      const double na = gai / mi;
      const double kv = ks.k(pair, i, j);
      double dn = kv * na * nb * cfg.dt;  // collection events / volume
      if (self && i == j) dn *= 0.5;      // unordered same-bin pairs
      if (dn <= 0.0) continue;

      double dma = dn * mi;  // mass leaving collected bin
      double dmb = dn * mj;  // collector mass migrating upward
      // Limit consumption so bins never go negative; scale both sides by
      // the same factor to keep the event count consistent.
      double scale = 1.0;
      if (self && i == j) {
        const double avail = cfg.max_frac * gai;
        if (dma + dmb > avail) scale = avail / (dma + dmb);
      } else {
        if (dma > cfg.max_frac * gai) scale = cfg.max_frac * gai / dma;
        if (dmb > cfg.max_frac * gbj) {
          scale = std::min(scale, cfg.max_frac * gbj / dmb);
        }
      }
      dma *= scale;
      dmb *= scale;
      dn *= scale;

      ga[i] = static_cast<float>(ga[i] - dma);
      gb[j] = static_cast<float>(gb[j] - dmb);

      // Coalesced particles of mass mi+mj: number-and-mass-conserving
      // two-bin split on the destination grid (Kovetz-Olund placement).
      const double m_new = mi + mj;
      const int kd = bins.bin_floor(m_new);
      if (kd >= nkr - 1) {
        gd[nkr - 1] = static_cast<float>(gd[nkr - 1] + dma + dmb);
      } else {
        const double mk = bins.mass(kd);
        const double mk1 = bins.mass(kd + 1);
        const double f = (m_new - mk) / (mk1 - mk);
        const double n_new = dn;
        gd[kd] = static_cast<float>(gd[kd] + n_new * (1.0 - f) * mk);
        gd[kd + 1] = static_cast<float>(gd[kd + 1] + n_new * f * mk1);
      }
      ++st.interactions;
      st.flops += 24.0;
    }
  }
  st.kernel_lookups = ks.lookups() - lookups_before;
  ++st.pairs_active;
  return st;
}

namespace {

void accumulate(CoalStats& into, const CoalStats& s) {
  into.kernel_lookups += s.kernel_lookups;
  into.interactions += s.interactions;
  into.pairs_active += s.pairs_active;
  into.flops += s.flops;
}

}  // namespace

CoalStats coal_bott_new(const BinGrid& bins, double temp_k,
                        const KernelSource& ks, const CoalWorkspace& w,
                        const CoalConfig& cfg) {
  CoalStats st;
  const int nkr = bins.nkr();
  float* ice1 = w.g2;              // columnar
  float* ice2 = w.g2 + nkr;        // plates
  float* ice3 = w.g2 + 2 * nkr;    // dendrites

  // Warm-rain collision-coalescence runs whenever the routine is called
  // (the TT > 223.15 gate lives at the call site, Listing 1).
  accumulate(st, collect_pair(bins, CollisionPair::kLL, ks, w.fl1, w.fl1,
                              w.fl1, cfg));

  if (temp_k < constants::kT0) {
    // Riming: supercooled liquid collected by the precipitating ice
    // classes; mass lands in the collector class.
    accumulate(st, collect_pair(bins, CollisionPair::kLS, ks, w.fl1, w.g3,
                                w.g3, cfg));
    accumulate(st, collect_pair(bins, CollisionPair::kLG, ks, w.fl1, w.g4,
                                w.g4, cfg));
    accumulate(st, collect_pair(bins, CollisionPair::kLH, ks, w.fl1, w.g5,
                                w.g5, cfg));
    // Drop-crystal riming: heavily rimed crystals feed graupel.
    accumulate(st, collect_pair(bins, CollisionPair::kLI1, ks, w.fl1, ice1,
                                w.g4, cfg));
    accumulate(st, collect_pair(bins, CollisionPair::kLI2, ks, w.fl1, ice2,
                                w.g4, cfg));
    accumulate(st, collect_pair(bins, CollisionPair::kLI3, ks, w.fl1, ice3,
                                w.g4, cfg));
    // Aggregation: crystals and snow build snow.
    accumulate(st, collect_pair(bins, CollisionPair::kSS, ks, w.g3, w.g3,
                                w.g3, cfg));
    accumulate(st, collect_pair(bins, CollisionPair::kSI1, ks, ice1, w.g3,
                                w.g3, cfg));
    accumulate(st, collect_pair(bins, CollisionPair::kSI2, ks, ice2, w.g3,
                                w.g3, cfg));
    accumulate(st, collect_pair(bins, CollisionPair::kSI3, ks, ice3, w.g3,
                                w.g3, cfg));
    accumulate(st, collect_pair(bins, CollisionPair::kII1, ks, ice1, ice1,
                                w.g3, cfg));
    accumulate(st, collect_pair(bins, CollisionPair::kII2, ks, ice2, ice2,
                                w.g3, cfg));
    accumulate(st, collect_pair(bins, CollisionPair::kII3, ks, ice3, ice3,
                                w.g3, cfg));
    // Graupel/hail interactions.
    accumulate(st, collect_pair(bins, CollisionPair::kSG, ks, w.g3, w.g4,
                                w.g4, cfg));
    accumulate(st, collect_pair(bins, CollisionPair::kSH, ks, w.g3, w.g5,
                                w.g5, cfg));
    accumulate(st, collect_pair(bins, CollisionPair::kGG, ks, w.g4, w.g4,
                                w.g4, cfg));
    accumulate(st, collect_pair(bins, CollisionPair::kGH, ks, w.g4, w.g5,
                                w.g5, cfg));
    accumulate(st, collect_pair(bins, CollisionPair::kHH, ks, w.g5, w.g5,
                                w.g5, cfg));
    accumulate(st, collect_pair(bins, CollisionPair::kIG, ks, ice1, w.g4,
                                w.g4, cfg));
  }
  return st;
}

}  // namespace wrf::fsbm
