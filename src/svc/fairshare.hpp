#pragma once
// Hierarchical fair-share queue for the forecast service.
//
// A two-level tree: the root arbitrates between weighted class leaves
// (interactive / ensemble / batch), each leaf holds that class's pending
// jobs.  Dispatch picks the leaf with the smallest usage/weight ratio —
// the classic fair-share rule: a class that has consumed less than its
// weighted share of the pool goes first — then the leaf yields its
// earliest-deadline (then oldest) entry.  Usage is charged in
// *deterministic cost units* (domain cells x steps), not wall seconds,
// so scheduling decisions — and the tests that pin them — do not depend
// on machine timing.
//
// Deadlines are tie-breakers at the root too: when two classes are at
// equal weighted usage (e.g. both idle), the one holding the most urgent
// deadline wins.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace wrf::svc {

/// One queued job, reduced to what scheduling needs.
struct QueueEntry {
  std::uint64_t id = 0;
  std::uint64_t seq = 0;       ///< admission order (FIFO tie-break)
  double deadline = 0.0;       ///< absolute seconds; <= 0 = none
  double cost = 0.0;           ///< deterministic units (cells x steps)
  std::uint64_t footprint_bytes = 0;
  std::string shape_key;       ///< batching key (job_shape_key)
};

/// The tree.  Leaves are created once (one per class) with add_leaf;
/// push/pop are O(queue length) — service queues are small.
class FairShareTree {
 public:
  /// Returns the new leaf's index (dense, starting at 0).
  int add_leaf(std::string name, double weight);

  int leaves() const noexcept { return static_cast<int>(leaves_.size()); }
  const std::string& leaf_name(int leaf) const { return at(leaf).name; }
  double leaf_weight(int leaf) const { return at(leaf).weight; }
  /// Cost units charged to this leaf so far.
  double leaf_usage(int leaf) const { return at(leaf).usage; }
  std::size_t leaf_pending(int leaf) const { return at(leaf).queue.size(); }

  void push(int leaf, QueueEntry entry);

  bool empty() const noexcept;
  std::size_t pending() const noexcept;

  /// Dispatch: pick the non-empty leaf minimizing usage/weight (ties:
  /// most urgent queued deadline, then lowest leaf index), pop its
  /// earliest-deadline-then-oldest entry, and charge its cost to the
  /// leaf.  `leaf_out` (optional) receives the winning leaf.  Must not
  /// be called when empty().
  QueueEntry pop_next(int* leaf_out = nullptr);

  /// Batching: pop the next entry of `leaf` whose shape_key matches and
  /// whose footprint fits `footprint_budget`, preserving the leaf's
  /// deadline-then-FIFO order among matching entries.  Charges its cost.
  /// Returns false if no entry matches.
  bool pop_matching(int leaf, const std::string& shape_key,
                    std::uint64_t footprint_budget, QueueEntry* out);

 private:
  struct Leaf {
    std::string name;
    double weight = 1.0;
    double usage = 0.0;
    std::deque<QueueEntry> queue;
  };

  const Leaf& at(int leaf) const;
  Leaf& at(int leaf);
  /// Index into the leaf's queue of its next entry (min deadline, then
  /// min seq); -1 when the queue is empty.
  static int best_in(const Leaf& leaf);

  std::vector<Leaf> leaves_;
};

}  // namespace wrf::svc
