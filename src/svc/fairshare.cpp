#include "svc/fairshare.hpp"

#include <limits>

#include "util/error.hpp"

namespace wrf::svc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Normalize the "no deadline" encoding (<= 0) to +inf for comparisons.
double deadline_key(const QueueEntry& e) {
  return e.deadline > 0.0 ? e.deadline : kInf;
}

}  // namespace

int FairShareTree::add_leaf(std::string name, double weight) {
  if (weight <= 0.0) {
    throw ConfigError("FairShareTree: leaf weight must be > 0");
  }
  Leaf leaf;
  leaf.name = std::move(name);
  leaf.weight = weight;
  leaves_.push_back(std::move(leaf));
  return static_cast<int>(leaves_.size()) - 1;
}

const FairShareTree::Leaf& FairShareTree::at(int leaf) const {
  if (leaf < 0 || leaf >= leaves()) {
    throw BoundsError("FairShareTree: leaf index out of range");
  }
  return leaves_[static_cast<std::size_t>(leaf)];
}

FairShareTree::Leaf& FairShareTree::at(int leaf) {
  return const_cast<Leaf&>(
      static_cast<const FairShareTree*>(this)->at(leaf));
}

void FairShareTree::push(int leaf, QueueEntry entry) {
  at(leaf).queue.push_back(std::move(entry));
}

bool FairShareTree::empty() const noexcept { return pending() == 0; }

std::size_t FairShareTree::pending() const noexcept {
  std::size_t n = 0;
  for (const Leaf& leaf : leaves_) n += leaf.queue.size();
  return n;
}

int FairShareTree::best_in(const Leaf& leaf) {
  int best = -1;
  for (int i = 0; i < static_cast<int>(leaf.queue.size()); ++i) {
    if (best < 0) {
      best = i;
      continue;
    }
    const QueueEntry& a = leaf.queue[static_cast<std::size_t>(i)];
    const QueueEntry& b = leaf.queue[static_cast<std::size_t>(best)];
    const double da = deadline_key(a), db = deadline_key(b);
    if (da < db || (da == db && a.seq < b.seq)) best = i;
  }
  return best;
}

QueueEntry FairShareTree::pop_next(int* leaf_out) {
  int winner = -1;
  double winner_share = 0.0, winner_deadline = 0.0;
  for (int l = 0; l < leaves(); ++l) {
    const Leaf& leaf = leaves_[static_cast<std::size_t>(l)];
    if (leaf.queue.empty()) continue;
    const double share = leaf.usage / leaf.weight;
    double urgent = kInf;
    for (const QueueEntry& e : leaf.queue) {
      const double d = deadline_key(e);
      if (d < urgent) urgent = d;
    }
    if (winner < 0 || share < winner_share ||
        (share == winner_share && urgent < winner_deadline)) {
      winner = l;
      winner_share = share;
      winner_deadline = urgent;
    }
  }
  if (winner < 0) {
    throw Error("FairShareTree::pop_next called on an empty tree");
  }
  Leaf& leaf = leaves_[static_cast<std::size_t>(winner)];
  const int idx = best_in(leaf);
  QueueEntry entry = std::move(leaf.queue[static_cast<std::size_t>(idx)]);
  leaf.queue.erase(leaf.queue.begin() + idx);
  leaf.usage += entry.cost;
  if (leaf_out != nullptr) *leaf_out = winner;
  return entry;
}

bool FairShareTree::pop_matching(int leaf_idx, const std::string& shape_key,
                                 std::uint64_t footprint_budget,
                                 QueueEntry* out) {
  Leaf& leaf = at(leaf_idx);
  // Deadline-then-FIFO among *matching* entries: the same order pop_next
  // would eventually serve them in, so batching never reorders a class.
  int best = -1;
  for (int i = 0; i < static_cast<int>(leaf.queue.size()); ++i) {
    const QueueEntry& e = leaf.queue[static_cast<std::size_t>(i)];
    if (e.shape_key != shape_key || e.footprint_bytes > footprint_budget) {
      continue;
    }
    if (best < 0) {
      best = i;
      continue;
    }
    const QueueEntry& b = leaf.queue[static_cast<std::size_t>(best)];
    const double de = deadline_key(e), db = deadline_key(b);
    if (de < db || (de == db && e.seq < b.seq)) best = i;
  }
  if (best < 0) return false;
  QueueEntry entry = std::move(leaf.queue[static_cast<std::size_t>(best)]);
  leaf.queue.erase(leaf.queue.begin() + best);
  leaf.usage += entry.cost;
  if (out != nullptr) *out = std::move(entry);
  return true;
}

}  // namespace wrf::svc
