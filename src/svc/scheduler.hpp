#pragma once
// The forecast-service scheduler: many scenario jobs, one shared pool.
//
// A `Scheduler` owns N worker *lanes* — each lane models one execution
// slot of the shared machine (one rank's worth of host threads plus, for
// offloaded jobs, one simulated GPU of `lane_spec`).  Clients submit
// `svc::Job`s; the scheduler:
//
//  * admits a job only if its device footprint estimate (the shared
//    perfmodel::resident_footprint_bytes formula, via
//    svc::job_footprint_bytes) fits a lane's DeviceSpec::dram_bytes —
//    oversized jobs are rejected up front with a typed reason, never
//    killed mid-run by the residency subsystem's OOM;
//  * picks the next job by hierarchical fair-share between the job
//    classes (weights in SchedulerConfig::class_weights), with
//    deadline-aware tie-breaking (svc/fairshare.hpp);
//  * batches small same-shape ensemble members onto one lane dispatch,
//    as long as their summed footprints co-fit the lane's DRAM;
//  * runs each job through `model::run_single` with a private Profiler,
//    so per-job results are bitwise identical to a standalone run of the
//    same RunConfig (the determinism gate: model::state_hash equality,
//    asserted in tests/test_svc.cpp and examples/forecast_service.cpp).
//
// Every job leaves as a `JobResult` carrying the full RunStats/FsbmStats
// plus queue/admission/service timestamps; `ServiceStats` aggregates the
// service-level view (per-class wall and wait, pool occupancy).

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gpu/device.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "svc/fairshare.hpp"
#include "svc/job.hpp"
#include "tune/artifact.hpp"

namespace wrf::svc {

struct SchedulerConfig {
  int lanes = 2;
  /// Device model every lane exposes; a job's config is normalized to
  /// run against it, and admission checks against its dram_bytes.
  gpu::DeviceSpec lane_spec = gpu::DeviceSpec::a100_40gb();
  /// Max ensemble members co-dispatched onto one lane (1 = no batching).
  int batch_max = 4;
  /// Fair-share weights per class, indexed by JobClass.
  std::array<double, kNumClasses> class_weights{8.0, 3.0, 1.0};
  /// Construct with dispatch paused: jobs queue but no lane picks any
  /// until resume().  Lets callers (and tests) submit a whole stream
  /// first, so dispatch order is a pure function of the queue contents.
  bool start_paused = false;
  /// Service-level observability.  `metrics` writes a Prometheus text
  /// snapshot at shutdown; `trace` additionally installs a TraceSink for
  /// the scheduler's lifetime — lifecycle instants (submit/admit/
  /// dispatch/batch/complete) plus every lane-run job's internal spans,
  /// one track per lane thread — and writes Chrome trace JSON.  Job
  /// configs are normalized to obs=off either way (the scheduler's sink
  /// sees their spans; jobs never write their own export files), so
  /// shape keys, state hashes, and results stay identical to obs=off.
  obs::ObsConfig obs;
  /// Service-level autotuning.  file:<path> loads a tuned.json artifact
  /// at construction (errors throw there, never on a lane); auto loads
  /// ./tuned.json when present.  At submit, a job whose shape matches a
  /// tuned entry gets the winning performance-neutral knobs applied as
  /// part of normalization — before shape keys, footprints, and
  /// admission — and its JobResult::config records the explicit tuned
  /// knobs with tune=off, so the standalone-rerun determinism gate
  /// holds unchanged.  A job carrying its own tune= spec wins over the
  /// scheduler's artifact.  Lanes never touch the filesystem for this:
  /// the artifact is read once, here.
  tune::TuneSpec tune;
};

/// What submit() returns: the job's id and its admission verdict.  A
/// rejected job never reaches a lane; its JobResult (outcome kRejected)
/// is still recorded for take_results().
struct Ticket {
  std::uint64_t id = 0;
  bool admitted = false;
  RejectReason reason = RejectReason::kNone;
  std::string message;
};

/// Per-class service aggregates.
struct ClassStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double wait_total_sec = 0.0;     ///< queue wait, completed+failed jobs
  double wait_max_sec = 0.0;
  double service_total_sec = 0.0;  ///< lane time, completed+failed jobs
  double service_max_sec = 0.0;
  double wall_total_sec = 0.0;     ///< RunResult::wall_sec, completed jobs
  std::uint64_t deadline_jobs = 0;
  std::uint64_t deadline_met = 0;
  /// Every completed/failed job's queue wait, in recording order — the
  /// sample set behind the wait quantiles below.
  std::vector<double> wait_samples_sec;

  /// Linear-interpolated quantile of wait_samples_sec (q in [0, 1]);
  /// 0 when the class has no finished jobs yet.
  double wait_quantile_sec(double q) const;
  double wait_p50_sec() const { return wait_quantile_sec(0.50); }
  double wait_p95_sec() const { return wait_quantile_sec(0.95); }
};

/// Aggregate service view, a snapshot of Scheduler::stats().
struct ServiceStats {
  std::array<ClassStats, kNumClasses> cls;
  int lanes = 0;
  std::uint64_t dispatches = 0;    ///< lane pick-ups (a batch counts once)
  std::uint64_t batches = 0;       ///< dispatches carrying > 1 job
  std::uint64_t batched_jobs = 0;  ///< jobs that rode a batch of > 1
  double lane_busy_sec = 0.0;      ///< summed busy wall across lanes
  double first_start_sec = 0.0;    ///< earliest dispatch timestamp
  double last_finish_sec = 0.0;    ///< latest completion timestamp
  bool any_dispatched = false;

  std::uint64_t submitted() const noexcept;
  std::uint64_t admitted() const noexcept;
  std::uint64_t rejected() const noexcept;
  std::uint64_t completed() const noexcept;
  std::uint64_t failed() const noexcept;

  /// Busy span of the pool, first dispatch to last completion.
  double makespan_sec() const noexcept {
    return any_dispatched ? last_finish_sec - first_start_sec : 0.0;
  }
  /// Average lanes concurrently busy over the makespan (<= lanes).  On
  /// any host — even a single hardware thread timeslicing the lanes —
  /// this approaches `lanes` when the pool is saturated, because lane
  /// busy windows overlap in wall time.
  double pool_parallelism() const noexcept {
    const double span = makespan_sec();
    return span > 0.0 ? lane_busy_sec / span : 0.0;
  }
  /// pool_parallelism normalized by pool width, in [0, 1].
  double occupancy() const noexcept {
    return lanes > 0 ? pool_parallelism() / lanes : 0.0;
  }

  /// publish() contract (obs/registry.hpp): fold the service view into
  /// `reg` — per-class job counts (state label), wait/service/wall
  /// second totals and wait p50/p95 gauges, plus pool-level dispatch/
  /// batch counters and makespan/occupancy gauges, all under wrf_svc_*
  /// names.  Counter values equal the fields above exactly.
  void publish(obs::Registry& reg) const;
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerConfig& config);
  ~Scheduler();  ///< shutdown() if the caller has not

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Validate, normalize (single-rank, lane device spec), and admit or
  /// reject `job`.  Thread-safe; returns immediately.
  Ticket submit(Job job);

  /// Release dispatch after SchedulerConfig::start_paused.
  void resume();

  /// Block until every admitted job has left the system (queue empty,
  /// all lanes idle).  Implies resume().
  void drain();

  /// Stop accepting work, finish queued jobs, join the lanes.  Runs the
  /// queue dry first — call take_results() afterwards for the tail.
  void shutdown();

  /// Move out all JobResults recorded so far (completed, failed, and
  /// rejected), in recording order.  Thread-safe.
  std::vector<JobResult> take_results();

  /// Snapshot of the aggregate counters.  Thread-safe.
  ServiceStats stats() const;

  /// Seconds since the scheduler's epoch (its construction) — the
  /// clock JobResult timestamps are expressed in.
  double now_sec() const;

  const SchedulerConfig& config() const noexcept { return config_; }

  /// The scheduler's trace sink (null when SchedulerConfig::obs is off).
  /// Read it only after shutdown() — lanes emit into it while running.
  const obs::TraceSink* trace_sink() const noexcept { return sink_.get(); }

 private:
  struct Pending {
    Job job;             ///< normalized config inside
    JobResult result;    ///< pre-filled identity + submit timestamp
  };

  void lane_loop(int lane);
  /// Record a finished (or rejected) result and fold it into stats_.
  /// Caller holds mu_.
  void record_locked(JobResult&& result);

  SchedulerConfig config_;
  std::chrono::steady_clock::time_point epoch_;
  /// Loaded once in the ctor from SchedulerConfig::tune; applied to
  /// matching-shape jobs during submit-time normalization.
  std::optional<tune::Artifact> tuned_;
  /// Observability: the sink outlives the lanes; the ScopedActive makes
  /// it the process-wide sink for the scheduler's lifetime (trace mode),
  /// so lane-run jobs' internal spans land here.  Exports happen in
  /// shutdown(), after the lanes have joined.
  std::unique_ptr<obs::TraceSink> sink_;
  std::unique_ptr<obs::ScopedActive> active_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< lanes wait: work or shutdown
  std::condition_variable idle_cv_;   ///< drain() waits: all quiet
  bool paused_ = false;
  bool stopping_ = false;
  int busy_lanes_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_dispatch_ = 1;  ///< lane pick-ups (JobResult::batch_seq)
  std::uint64_t next_job_dispatch_ = 1;  ///< jobs leaving the queue
  FairShareTree tree_;                ///< one leaf per JobClass
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::vector<JobResult> results_;
  ServiceStats stats_;

  std::vector<std::thread> lanes_;
};

}  // namespace wrf::svc
