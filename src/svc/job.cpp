#include "svc/job.hpp"

#include <cstdio>

#include "fsbm/bins.hpp"
#include "grid/decomp.hpp"
#include "perfmodel/machine.hpp"
#include "util/error.hpp"

namespace wrf::svc {

const char* job_class_name(JobClass c) {
  switch (c) {
    case JobClass::kInteractive: return "interactive";
    case JobClass::kEnsemble: return "ensemble";
    case JobClass::kBatch: return "batch";
  }
  return "?";
}

JobClass parse_job_class(const std::string& s) {
  if (s == "interactive") return JobClass::kInteractive;
  if (s == "ensemble") return JobClass::kEnsemble;
  if (s == "batch") return JobClass::kBatch;
  throw ConfigError("svc: unknown job class '" + s +
                    "' (want interactive|ensemble|batch)");
}

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kOverDeviceMemory: return "over-device-memory";
    case RejectReason::kBadConfig: return "bad-config";
    case RejectReason::kShuttingDown: return "shutting-down";
  }
  return "?";
}

const char* job_outcome_name(JobOutcome o) {
  switch (o) {
    case JobOutcome::kCompleted: return "completed";
    case JobOutcome::kRejected: return "rejected";
    case JobOutcome::kFailed: return "failed";
  }
  return "?";
}

std::uint64_t job_footprint_bytes(const model::RunConfig& cfg) {
  if (!cfg.offloaded()) {
    // Host-only versions register no device fields (even under
    // exec=device/hetero, where a device exists but stays empty).
    return 0;
  }
  // The service runs each job single-rank on its lane, so price the
  // whole domain as one patch — the same shape FastSbm registers.
  const auto patches = grid::decompose(cfg.domain(), 1, 1, cfg.halo);
  const grid::Patch& p = patches.front();
  const std::int64_t mem_cells =
      static_cast<std::int64_t>(p.im.size()) * p.k.size() * p.jm.size();

  // Registered field table (FastSbm ctor): kNumSpecies nkr-sized bin
  // fields + temp/qv/pres + the 1-byte call_coal predicate, float
  // precision, over halo-inclusive memory cells.
  perfmodel::ResidentInventory fields;
  fields.bin_arrays = fsbm::kNumSpecies;
  fields.arrays_3d = 3;
  fields.byte_arrays_3d = 1;
  fields.elem_bytes = sizeof(float);
  std::uint64_t bytes =
      perfmodel::resident_footprint_bytes(fields, mem_cells, cfg.nkr);

  if (cfg.version == fsbm::Version::kV3Offload3) {
    // temp_arrays pools (Listing 8): fl1/g3/g4/g5 at nkr plus g2 at
    // nkr*kIceMax, float, over computational cells only.
    perfmodel::ResidentInventory pools;
    pools.bin_arrays = 4 + fsbm::kIceMax;
    pools.elem_bytes = sizeof(float);
    bytes += perfmodel::resident_footprint_bytes(
        pools, p.computational_cells(), cfg.nkr);
  }
  return bytes;
}

std::string job_shape_key(const model::RunConfig& cfg) {
  // describe() covers grid dims, nkr, version, and every knob — but not
  // nsteps or the case seed.  Append nsteps (batched members must do the
  // same amount of work); leave the seed out so perturbed ensemble
  // members share a key.
  char steps[32];
  std::snprintf(steps, sizeof(steps), " nsteps=%d", cfg.nsteps);
  return cfg.describe() + steps;
}

}  // namespace wrf::svc
