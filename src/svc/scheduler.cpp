#include "svc/scheduler.hpp"

#include <algorithm>
#include <fstream>
#include <utility>

#include "obs/export.hpp"
#include "util/error.hpp"

namespace wrf::svc {
namespace {

int class_index(JobClass c) { return static_cast<int>(c); }

/// Deterministic scheduling cost of one job: domain cells x steps.
/// Charging cost units instead of wall seconds makes the dispatch
/// sequence a pure function of the queue contents — the property the
/// test_svc fair-share laws rely on (and why a paused-submit stream
/// dispatches in the same order on any machine, at any pool width).
double job_cost(const model::RunConfig& cfg) {
  return static_cast<double>(cfg.domain().cells()) *
         static_cast<double>(cfg.nsteps);
}

}  // namespace

double ClassStats::wait_quantile_sec(double q) const {
  if (wait_samples_sec.empty()) return 0.0;
  std::vector<double> v = wait_samples_sec;
  std::sort(v.begin(), v.end());
  const double pos =
      std::clamp(q, 0.0, 1.0) * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  return v[lo] + (v[hi] - v[lo]) * (pos - static_cast<double>(lo));
}

void ServiceStats::publish(obs::Registry& reg) const {
  for (int c = 0; c < kNumClasses; ++c) {
    const ClassStats& cs = cls[static_cast<std::size_t>(c)];
    const std::string name = job_class_name(static_cast<JobClass>(c));
    auto J = [&](const char* state, std::uint64_t n) {
      reg.counter("wrf_svc_jobs_total", static_cast<double>(n),
                  {{"class", name}, {"state", state}});
    };
    J("submitted", cs.submitted);
    J("admitted", cs.admitted);
    J("rejected", cs.rejected);
    J("completed", cs.completed);
    J("failed", cs.failed);
    reg.counter("wrf_svc_wait_seconds_total", cs.wait_total_sec,
                {{"class", name}});
    reg.counter("wrf_svc_service_seconds_total", cs.service_total_sec,
                {{"class", name}});
    reg.counter("wrf_svc_run_wall_seconds_total", cs.wall_total_sec,
                {{"class", name}});
    reg.counter("wrf_svc_deadline_jobs_total",
                static_cast<double>(cs.deadline_jobs), {{"class", name}});
    reg.counter("wrf_svc_deadline_met_total",
                static_cast<double>(cs.deadline_met), {{"class", name}});
    reg.gauge("wrf_svc_wait_seconds", cs.wait_p50_sec(),
              {{"class", name}, {"quantile", "0.5"}});
    reg.gauge("wrf_svc_wait_seconds", cs.wait_p95_sec(),
              {{"class", name}, {"quantile", "0.95"}});
    reg.gauge("wrf_svc_wait_max_seconds", cs.wait_max_sec,
              {{"class", name}});
    reg.gauge("wrf_svc_service_max_seconds", cs.service_max_sec,
              {{"class", name}});
  }
  reg.gauge("wrf_svc_lanes", static_cast<double>(lanes));
  reg.counter("wrf_svc_dispatches_total", static_cast<double>(dispatches));
  reg.counter("wrf_svc_batches_total", static_cast<double>(batches));
  reg.counter("wrf_svc_batched_jobs_total",
              static_cast<double>(batched_jobs));
  reg.counter("wrf_svc_lane_busy_seconds_total", lane_busy_sec);
  reg.gauge("wrf_svc_makespan_seconds", makespan_sec());
  reg.gauge("wrf_svc_occupancy", occupancy());
}

std::uint64_t ServiceStats::submitted() const noexcept {
  std::uint64_t n = 0;
  for (const ClassStats& c : cls) n += c.submitted;
  return n;
}

std::uint64_t ServiceStats::admitted() const noexcept {
  std::uint64_t n = 0;
  for (const ClassStats& c : cls) n += c.admitted;
  return n;
}

std::uint64_t ServiceStats::rejected() const noexcept {
  std::uint64_t n = 0;
  for (const ClassStats& c : cls) n += c.rejected;
  return n;
}

std::uint64_t ServiceStats::completed() const noexcept {
  std::uint64_t n = 0;
  for (const ClassStats& c : cls) n += c.completed;
  return n;
}

std::uint64_t ServiceStats::failed() const noexcept {
  std::uint64_t n = 0;
  for (const ClassStats& c : cls) n += c.failed;
  return n;
}

Scheduler::Scheduler(const SchedulerConfig& config)
    : config_(config), epoch_(std::chrono::steady_clock::now()) {
  if (config_.lanes < 1) {
    throw ConfigError("svc::Scheduler: need at least one lane");
  }
  if (config_.batch_max < 1) {
    throw ConfigError("svc::Scheduler: batch_max must be >= 1");
  }
  for (int c = 0; c < kNumClasses; ++c) {
    // Throws ConfigError on a non-positive weight.
    tree_.add_leaf(job_class_name(static_cast<JobClass>(c)),
                   config_.class_weights[static_cast<std::size_t>(c)]);
  }
  paused_ = config_.start_paused;
  stats_.lanes = config_.lanes;
  if (!config_.tune.off()) {
    // One artifact read for the scheduler's lifetime.  file: is strict
    // (a missing or malformed artifact throws here, before any lane
    // starts); auto treats a missing ./tuned.json as "not tuned yet".
    const std::string path = config_.tune.artifact_path();
    if (config_.tune.mode == tune::TuneMode::kFile ||
        std::ifstream(path).good()) {
      tuned_ = tune::load_artifact(path);
    }
  }
  if (!config_.obs.off()) {
    sink_ = std::make_unique<obs::TraceSink>();
    if (config_.obs.trace()) {
      // Process-wide install: the spans every lane-run job emits (pass
      // dispatches, kernels, transfers) flow into the service trace,
      // one track per lane thread.
      active_ = std::make_unique<obs::ScopedActive>(sink_.get());
    }
  }
  lanes_.reserve(static_cast<std::size_t>(config_.lanes));
  for (int l = 0; l < config_.lanes; ++l) {
    lanes_.emplace_back([this, l] { lane_loop(l); });
  }
}

Scheduler::~Scheduler() { shutdown(); }

double Scheduler::now_sec() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

Ticket Scheduler::submit(Job job) {
  // Normalize outside the lock: the service runs every job single-rank
  // on one lane, against the lane's device model.  JobResult::config
  // records this effective config, so re-running it standalone through
  // model::run_single reproduces the job bit for bit.  Observability is
  // the scheduler's, never the job's: forcing obs=off keeps lane runs
  // from writing export files or re-installing sinks (the scheduler's
  // own sink still sees their spans) and keeps shape keys stable.
  job.config.npx = 1;
  job.config.npy = 1;
  job.config.device_spec = config_.lane_spec;
  job.config.obs = obs::ObsConfig{};

  RejectReason why = RejectReason::kNone;
  std::string message;
  try {
    // Tuning is part of normalization, ahead of shape keys, footprint,
    // and admission: the recorded config carries the explicit tuned
    // knobs with tune=off, so re-running it standalone needs no
    // artifact and reproduces the job bit for bit.  A job-supplied
    // tune= spec wins over the scheduler's artifact; either failing
    // (missing file, malformed artifact) is a kBadConfig rejection.
    if (!job.config.tune.off()) {
      tune::apply(job.config);
      job.config.tune = tune::TuneSpec{};
    } else if (tuned_) {
      tune::apply_artifact(job.config, *tuned_);
    }
    job.config.validate();
  } catch (const std::exception& e) {
    why = RejectReason::kBadConfig;
    message = e.what();
  }
  std::uint64_t footprint = 0;
  if (why == RejectReason::kNone) {
    footprint = job_footprint_bytes(job.config);
    if (footprint > config_.lane_spec.dram_bytes) {
      why = RejectReason::kOverDeviceMemory;
      message = "job '" + job.name + "' needs " +
                std::to_string(footprint) + " device bytes but the lane's " +
                config_.lane_spec.name + " has " +
                std::to_string(config_.lane_spec.dram_bytes) +
                " (would fail the residency out-of-memory check mid-run)";
    }
  }

  std::lock_guard<std::mutex> lk(mu_);
  if (why == RejectReason::kNone && stopping_) {
    why = RejectReason::kShuttingDown;
    message = "scheduler is shutting down";
  }

  Ticket ticket;
  ticket.id = next_id_++;
  ClassStats& cs = stats_.cls[static_cast<std::size_t>(class_index(job.cls))];
  ++cs.submitted;
  if (sink_) {
    sink_->instant("svc", "submit",
                   {{"id", ticket.id},
                    {"class", job_class_name(job.cls)},
                    {"job", job.name}});
  }

  const double now = now_sec();
  JobResult result;
  result.id = ticket.id;
  result.name = job.name;
  result.cls = job.cls;
  result.config = job.config;
  result.footprint_bytes = footprint;
  result.submit_sec = now;
  result.deadline_abs_sec =
      job.deadline_sec > 0.0 ? now + job.deadline_sec : 0.0;

  if (why != RejectReason::kNone) {
    ticket.admitted = false;
    ticket.reason = why;
    ticket.message = message;
    result.outcome = JobOutcome::kRejected;
    result.reject = why;
    result.error = message;
    record_locked(std::move(result));
    return ticket;
  }

  ++cs.admitted;
  if (sink_) {
    sink_->instant("svc", "admit",
                   {{"id", ticket.id},
                    {"class", job_class_name(job.cls)},
                    {"footprint_bytes", footprint}});
  }
  QueueEntry entry;
  entry.id = ticket.id;
  entry.seq = next_seq_++;
  entry.deadline = result.deadline_abs_sec;
  entry.cost = job_cost(job.config);
  entry.footprint_bytes = footprint;
  entry.shape_key = job_shape_key(job.config);

  Pending pending;
  pending.job = std::move(job);
  pending.result = std::move(result);
  const int leaf = class_index(pending.job.cls);
  pending_.emplace(ticket.id, std::move(pending));
  tree_.push(leaf, std::move(entry));

  ticket.admitted = true;
  work_cv_.notify_one();
  return ticket;
}

void Scheduler::resume() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void Scheduler::drain() {
  resume();
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return tree_.empty() && busy_lanes_ == 0; });
}

void Scheduler::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_ && lanes_.empty()) return;  // idempotent
    stopping_ = true;
    paused_ = false;  // queued jobs still run dry before the lanes exit
  }
  work_cv_.notify_all();
  for (std::thread& t : lanes_) {
    if (t.joinable()) t.join();
  }
  lanes_.clear();

  // Lanes are joined: the sink is quiescent, exports are safe.  The
  // Prometheus snapshot is the forecast service's scrape file; trace
  // mode additionally writes the Chrome trace (obs path override).
  active_.reset();
  if (sink_) {
    obs::Registry reg;
    stats().publish(reg);
    obs::write_prometheus(reg, "obs_service.prom");
    if (config_.obs.trace()) {
      const std::string path = config_.obs.path.empty()
                                   ? "obs_service_trace.json"
                                   : config_.obs.path;
      obs::write_chrome_trace(*sink_, path);
    }
  }
}

std::vector<JobResult> Scheduler::take_results() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<JobResult> out = std::move(results_);
  results_.clear();
  return out;
}

ServiceStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void Scheduler::record_locked(JobResult&& result) {
  ClassStats& cs =
      stats_.cls[static_cast<std::size_t>(class_index(result.cls))];
  switch (result.outcome) {
    case JobOutcome::kRejected:
      ++cs.rejected;
      break;
    case JobOutcome::kCompleted:
    case JobOutcome::kFailed: {
      if (result.outcome == JobOutcome::kCompleted) {
        ++cs.completed;
        cs.wall_total_sec += result.run.wall_sec;
      } else {
        ++cs.failed;
      }
      const double wait = result.wait_sec();
      const double service = result.service_sec();
      cs.wait_total_sec += wait;
      cs.wait_samples_sec.push_back(wait);
      if (wait > cs.wait_max_sec) cs.wait_max_sec = wait;
      cs.service_total_sec += service;
      if (service > cs.service_max_sec) cs.service_max_sec = service;
      if (result.has_deadline()) {
        ++cs.deadline_jobs;
        if (result.deadline_met()) ++cs.deadline_met;
      }
      if (result.finish_sec > stats_.last_finish_sec) {
        stats_.last_finish_sec = result.finish_sec;
      }
      if (sink_) {
        sink_->instant("svc", "complete",
                       {{"id", result.id},
                        {"lane", result.lane},
                        {"class", job_class_name(result.cls)},
                        {"outcome", job_outcome_name(result.outcome)}});
      }
      break;
    }
  }
  results_.push_back(std::move(result));
}

void Scheduler::lane_loop(int lane) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] {
      return stopping_ || (!paused_ && !tree_.empty());
    });
    if (tree_.empty()) {
      if (stopping_) return;
      continue;  // spurious wake vs a faster lane; re-wait
    }

    // Pick the next job by fair-share, then grow the dispatch into a
    // batch: same class, same shape key (grid + knobs + step count —
    // ensemble members differing only by seed), as long as the summed
    // footprints co-fit the lane's device memory.
    int leaf = -1;
    std::vector<QueueEntry> picked;
    picked.push_back(tree_.pop_next(&leaf));
    std::uint64_t budget =
        config_.lane_spec.dram_bytes - picked.front().footprint_bytes;
    while (static_cast<int>(picked.size()) < config_.batch_max) {
      QueueEntry extra;
      if (!tree_.pop_matching(leaf, picked.front().shape_key, budget,
                              &extra)) {
        break;
      }
      budget -= extra.footprint_bytes;
      picked.push_back(std::move(extra));
    }

    const std::uint64_t batch_seq = next_dispatch_++;
    ++stats_.dispatches;
    if (picked.size() > 1) {
      ++stats_.batches;
      stats_.batched_jobs += picked.size();
    }
    std::vector<Pending> batch;
    batch.reserve(picked.size());
    for (QueueEntry& e : picked) {
      auto it = pending_.find(e.id);
      Pending p = std::move(it->second);
      pending_.erase(it);
      p.result.lane = lane;
      p.result.dispatch_seq = next_job_dispatch_++;
      p.result.batch_seq = batch_seq;
      p.result.batch_size = static_cast<int>(picked.size());
      batch.push_back(std::move(p));
    }
    ++busy_lanes_;
    const double batch_start = now_sec();
    if (!stats_.any_dispatched || batch_start < stats_.first_start_sec) {
      stats_.first_start_sec = batch_start;
      stats_.any_dispatched = true;
    }
    if (sink_) {
      sink_->instant("svc", "dispatch",
                     {{"lane", lane},
                      {"batch_seq", batch_seq},
                      {"jobs", batch.size()},
                      {"class", job_class_name(batch.front().job.cls)}});
      if (batch.size() > 1) {
        sink_->instant("svc", "batch",
                       {{"lane", lane},
                        {"batch_seq", batch_seq},
                        {"jobs", batch.size()}});
      }
    }
    lk.unlock();

    // Run the batch back to back on this lane, scheduler unlocked.  Each
    // job gets a private Profiler, so its RunResult is exactly what a
    // standalone model::run_single of the same config produces.
    for (Pending& p : batch) {
      JobResult& r = p.result;
      r.start_sec = now_sec();
      {
        // Span the whole lane occupancy of this job; its internal run
        // spans nest underneath on the same (lane-thread) track.
        obs::Span job_span(sink_.get(), "svc",
                           sink_ ? r.name : std::string(),
                           {{"id", r.id},
                            {"lane", lane},
                            {"batch_seq", batch_seq}});
        try {
          prof::Profiler prof;
          r.run = model::run_single(r.config, prof);
          r.state_hash = model::state_hash(r.run);
          r.outcome = JobOutcome::kCompleted;
        } catch (const std::exception& e) {
          r.outcome = JobOutcome::kFailed;
          r.error = e.what();
        }
        job_span.arg("outcome", job_outcome_name(r.outcome));
      }
      r.finish_sec = now_sec();
      std::lock_guard<std::mutex> rec(mu_);
      record_locked(std::move(r));
    }

    lk.lock();
    --busy_lanes_;
    stats_.lane_busy_sec += now_sec() - batch_start;
    if (tree_.empty() && busy_lanes_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace wrf::svc
