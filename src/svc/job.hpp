#pragma once
// Forecast-service job model: one scenario run as a schedulable unit.
//
// The examples hardcode one scenario per binary — grid dims, case knobs
// (`exec/sed/res/halo/fuse`), step count — and run it to completion.
// `svc::Job` captures exactly that tuple plus the service-level facts a
// production scheduler needs: a priority class (interactive vs ensemble
// vs batch), an optional deadline, and a name.  `svc::JobResult` carries
// the full `model::RunResult` (every RunStats/FsbmStats counter) plus the
// queue/admission/service timestamps, so the service is observable from
// day one and every job can be audited against a standalone run of the
// same config (the bitwise determinism gate, `model::state_hash`).

#include <cstdint>
#include <string>

#include "model/driver.hpp"

namespace wrf::svc {

/// Priority classes of the fair-share tree, heaviest first.  Interactive
/// is the on-demand forecast a user is waiting on; ensemble members are
/// the bread-and-butter bulk traffic; batch is reanalysis/backfill work
/// that soaks up whatever is left.
enum class JobClass : int { kInteractive = 0, kEnsemble = 1, kBatch = 2 };
inline constexpr int kNumClasses = 3;

const char* job_class_name(JobClass c);
/// Parse "interactive" | "ensemble" | "batch"; throws ConfigError.
JobClass parse_job_class(const std::string& s);

/// One scenario job: what `examples/` hardcode today, as data.
struct Job {
  model::RunConfig config;  ///< grid, case, knobs, step count, seed
  JobClass cls = JobClass::kBatch;
  /// Seconds after submit by which the job should finish; <= 0 = none.
  /// Deadlines order jobs *within* a class (earliest first) and break
  /// fair-share ties *between* classes; they are scheduling hints, not
  /// guarantees — `JobResult::deadline_met()` reports the outcome.
  double deadline_sec = 0.0;
  std::string name;
};

/// Why admission refused a job — typed, so callers can branch on the
/// reason instead of parsing a message.
enum class RejectReason : int {
  kNone = 0,
  /// The job's device footprint exceeds a lane's DeviceSpec::dram_bytes:
  /// it could never run without the residency subsystem's paper-style
  /// out-of-memory error, so it is refused up front, never mid-run.
  kOverDeviceMemory = 1,
  kBadConfig = 2,     ///< RunConfig::validate rejected the namelist
  kShuttingDown = 3,  ///< submitted after shutdown began
};
const char* reject_reason_name(RejectReason r);

enum class JobOutcome : int {
  kCompleted = 0,
  kRejected = 1,  ///< refused at admission; `reject` says why
  kFailed = 2,    ///< threw mid-run (e.g. the §VI-B device heap error)
};
const char* job_outcome_name(JobOutcome o);

/// Everything the service knows about one job after it leaves the
/// system.  Timestamps are seconds since the scheduler's epoch.
struct JobResult {
  std::uint64_t id = 0;
  std::string name;
  JobClass cls = JobClass::kBatch;
  /// The effective config the job ran with: single-rank normalized and
  /// carrying the lane's DeviceSpec (lanes are the hardware; a job
  /// inherits the device it lands on).  Re-running this config through
  /// `model::run_single` standalone must reproduce `state_hash` exactly.
  model::RunConfig config;
  JobOutcome outcome = JobOutcome::kRejected;
  RejectReason reject = RejectReason::kNone;
  std::string error;  ///< what() of a mid-run throw (kFailed)

  model::RunResult run;         ///< full run stats (kCompleted only)
  std::uint64_t state_hash = 0; ///< model::state_hash of `run`
  std::uint64_t footprint_bytes = 0;  ///< admission estimate

  double submit_sec = 0.0;
  double start_sec = 0.0;   ///< dispatch onto a lane (kCompleted/kFailed)
  double finish_sec = 0.0;
  double deadline_abs_sec = 0.0;  ///< submit + deadline; 0 = none

  int lane = -1;
  std::uint64_t dispatch_seq = 0;  ///< global dispatch order (1-based)
  std::uint64_t batch_seq = 0;     ///< which lane dispatch carried it
  int batch_size = 1;              ///< jobs co-scheduled in that dispatch

  double wait_sec() const noexcept { return start_sec - submit_sec; }
  double service_sec() const noexcept { return finish_sec - start_sec; }
  bool has_deadline() const noexcept { return deadline_abs_sec > 0.0; }
  bool deadline_met() const noexcept {
    return !has_deadline() || finish_sec <= deadline_abs_sec;
  }
};

/// Admission-control footprint: the device bytes one rank of `cfg` pins
/// (or, under res=step, transiently demands) — the same inventory the
/// residency subsystem allocates, priced through the shared
/// perfmodel::resident_footprint_bytes helper so the scheduler and the
/// paper's ranks-per-GPU model agree on per-rank bytes.  Exact for the
/// mini scheme: equals RunResult::resident_bytes_per_rank +
/// pool_bytes_per_rank of a res=persist run of the same config
/// (asserted in tests/test_svc.cpp).  0 for host-only configurations.
std::uint64_t job_footprint_bytes(const model::RunConfig& cfg);

/// Batching key: two jobs with equal keys run the same shape and knob
/// set (grid, nkr, version, exec/halo/sed/res/fuse, step count) and may
/// share one lane dispatch.  Seeds are deliberately excluded — ensemble
/// members differ only by their perturbation seed.
std::string job_shape_key(const model::RunConfig& cfg);

}  // namespace wrf::svc
