#pragma once
// One-moment warm-rain bulk scheme (Kessler 1969), the conceptual
// counterpart of Figure 2's "bulk" panel.
//
// Where FSBM evolves an explicit 33-bin spectrum, a bulk scheme carries
// two scalar moments — cloud water qc and rain water qr — and closes the
// process rates with an assumed (Marshall-Palmer) size distribution.
// Implemented as the paper-style comparator: same cell-level interface
// as the bin scheme so the bin_vs_bulk example and bench can time and
// compare both on identical soundings.

#include <cstdint>

namespace wrf::bulk {

struct KesslerParams {
  double autoconv_threshold = 5.0e-4;  ///< qc above this converts, kg/kg
  double autoconv_rate = 1.0e-3;       ///< 1/s
  double accretion_rate = 2.2;         ///< Kessler k2
  double vent_a = 1.6;                 ///< rain evaporation ventilation
  double vent_b = 124.9;
};

struct KesslerCell {
  double qc = 0.0;  ///< cloud water, kg/kg
  double qr = 0.0;  ///< rain water, kg/kg
};

struct KesslerStats {
  double dq_cond = 0.0;
  double dq_auto = 0.0;
  double dq_accr = 0.0;
  double dq_revp = 0.0;
  double flops = 0.0;
};

/// Advance one cell by dt: saturation adjustment, autoconversion,
/// accretion, rain evaporation.  Updates temp/qv/cell in place.
KesslerStats kessler_cell(double& temp_k, double& qv, double pres_pa,
                          KesslerCell& cell, double dt,
                          const KesslerParams& p = {});

/// Mass-weighted rain fall speed (Kessler/Marshall-Palmer), m/s.
double rain_fall_speed(double qr, double rho_air);

/// Column sedimentation of qr with surface accumulation; `qr_col` has nz
/// levels, level 0 at the surface.  Returns precipitation (kg/kg at
/// level 0 equivalents).
double kessler_sediment_column(double* qr_col, const double* rho, int nz,
                               double dz, double dt);

}  // namespace wrf::bulk
