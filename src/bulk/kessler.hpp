#pragma once
// One-moment warm-rain bulk scheme (Kessler 1969), the conceptual
// counterpart of Figure 2's "bulk" panel.
//
// Where FSBM evolves an explicit 33-bin spectrum, a bulk scheme carries
// two scalar moments — cloud water qc and rain water qr — and closes the
// process rates with an assumed (Marshall-Palmer) size distribution.
// Implemented as the paper-style comparator: same cell-level interface
// as the bin scheme so the bin_vs_bulk example and bench can time and
// compare both on identical soundings.

#include <cstdint>

namespace wrf::bulk {

struct KesslerParams {
  double autoconv_threshold = 5.0e-4;  ///< qc above this converts, kg/kg
  double autoconv_rate = 1.0e-3;       ///< 1/s
  double accretion_rate = 2.2;         ///< Kessler k2
  double vent_a = 1.6;                 ///< rain evaporation ventilation
  double vent_b = 124.9;
};

struct KesslerCell {
  double qc = 0.0;  ///< cloud water, kg/kg
  double qr = 0.0;  ///< rain water, kg/kg
};

struct KesslerStats {
  double dq_cond = 0.0;
  double dq_auto = 0.0;
  double dq_accr = 0.0;
  double dq_revp = 0.0;
  /// Flop estimate of the branches that actually ran (saturation
  /// adjustment always; accretion and rain evaporation only when their
  /// gates fired) — feeds the same perfmodel counters as the bin chain.
  double flops = 0.0;
};

/// Work counters of one kessler_sediment_column call.
struct KesslerSedStats {
  /// Mass delivered to the surface, in the same units as the bin
  /// scheme's SedStats::surface_precip contract: kg/kg column-equivalent
  /// (sum over substeps of the rho-weighted surface flux, normalized by
  /// the level-0 density) — so bin and bulk precipitation add directly
  /// in hybrid conservation checks.
  double surface_precip = 0.0;
  std::uint64_t substeps = 0;
  /// Largest per-cell Courant number the integration used; the adaptive
  /// substepping keeps this <= 1 by construction.
  double max_courant = 0.0;
  double flops = 0.0;
};

/// Advance one cell by dt: saturation adjustment, autoconversion,
/// accretion, rain evaporation.  Updates temp/qv/cell in place.
KesslerStats kessler_cell(double& temp_k, double& qv, double pres_pa,
                          KesslerCell& cell, double dt,
                          const KesslerParams& p = {});

/// Mass-weighted rain fall speed (Kessler/Marshall-Palmer), m/s.
double rain_fall_speed(double qr, double rho_air);

/// Column sedimentation of qr with surface accumulation; `qr_col` has nz
/// levels, level 0 at the surface.  First-order upwind with adaptive CFL
/// substepping: the column's max fall speed is recomputed every substep
/// (rain intensifies downward mid-integration as upper levels drain into
/// lower ones), and each substep length is chosen so no cell exceeds
/// Courant 1 — never by clamping an over-CFL flux.
KesslerSedStats kessler_sediment_column(double* qr_col, const double* rho,
                                        int nz, double dz, double dt);

}  // namespace wrf::bulk
