#include "bulk/kessler.hpp"

#include <algorithm>
#include <cmath>

#include "util/constants.hpp"

namespace wrf::bulk {

namespace c = wrf::constants;

KesslerStats kessler_cell(double& temp_k, double& qv, double pres_pa,
                          KesslerCell& cell, double dt,
                          const KesslerParams& p) {
  KesslerStats st;

  // --- saturation adjustment: instantly condense/evaporate cloud water
  // to bring the cell to (near) saturation, with latent-heat feedback
  // folded in through the linearized qs(T) slope. ---
  const double qs = c::qsat_liquid(temp_k, pres_pa);
  const double dqs_dt =
      qs * c::kLv / (c::kRv * temp_k * temp_k);  // Clausius-Clapeyron
  double dq = (qv - qs) / (1.0 + c::kLv / c::kCp * dqs_dt);
  if (dq < 0.0) dq = std::max(dq, -cell.qc);  // can only evaporate qc
  qv -= dq;
  cell.qc += dq;
  temp_k += c::kLv / c::kCp * dq;
  st.dq_cond = dq;

  // --- autoconversion qc -> qr ---
  const double auto_rate =
      p.autoconv_rate * std::max(0.0, cell.qc - p.autoconv_threshold);
  const double dauto = std::min(cell.qc, auto_rate * dt);
  cell.qc -= dauto;
  cell.qr += dauto;
  st.dq_auto = dauto;

  // --- accretion: rain collecting cloud water ---
  if (cell.qr > 0.0 && cell.qc > 0.0) {
    const double daccr =
        std::min(cell.qc, p.accretion_rate * cell.qc *
                              std::pow(cell.qr, 0.875) * dt);
    cell.qc -= daccr;
    cell.qr += daccr;
    st.dq_accr = daccr;
  }

  // Saturation adjustment: ~20 for qsat_liquid, ~10 for the slope +
  // update; autoconversion adds a handful more.
  st.flops = 36.0;
  if (cell.qr > 0.0 && cell.qc > 0.0) st.flops += 8.0;  // accretion branch

  // --- rain evaporation in subsaturated air ---
  // The adjustment above changed temp_k, so the saturation value must be
  // recomputed at the CURRENT temperature: testing (and capping) against
  // the pre-adjustment qs either suppresses evaporation after latent
  // warming or over-evaporates after cloud-exhausting cooling.
  if (cell.qr > 0.0) {
    const double qs_now = c::qsat_liquid(temp_k, pres_pa);
    st.flops += 20.0;
    if (qv < qs_now) {
      const double sub = 1.0 - qv / qs_now;
      const double evap_rate =
          sub * (p.vent_a + p.vent_b * std::pow(cell.qr, 0.65)) *
          std::pow(cell.qr, 0.5) * 1.0e-3;
      const double devp = std::min({cell.qr, evap_rate * dt, qs_now - qv});
      cell.qr -= devp;
      qv += devp;
      temp_k -= c::kLv / c::kCp * devp;
      st.dq_revp = devp;
      st.flops += 16.0;
    }
  }
  return st;
}

double rain_fall_speed(double qr, double rho_air) {
  if (qr <= 0.0) return 0.0;
  // Kessler's mass-weighted fall speed for a Marshall-Palmer spectrum.
  const double v = 36.34 * std::pow(rho_air * qr * 1.0e-3, 0.1364) *
                   std::sqrt(1.225 / std::max(rho_air, 0.05));
  return std::min(v, 10.0);
}

KesslerSedStats kessler_sediment_column(double* qr_col, const double* rho,
                                        int nz, double dz, double dt) {
  KesslerSedStats st;
  if (nz <= 0 || dt <= 0.0) return st;
  // Adaptive CFL substepping: rain intensifies downward as upper levels
  // drain into lower ones (and the density correction grows toward thin
  // air), so a substep length fixed from the initial profile's vmax can
  // leave later substeps over-CFL.  Recompute vmax each substep and size
  // the substep so courant <= 1 everywhere by construction.
  double t = 0.0;
  while (t < dt) {
    double vmax = 0.0;
    for (int iz = 0; iz < nz; ++iz) {
      vmax = std::max(vmax, rain_fall_speed(qr_col[iz], rho[iz]));
    }
    st.flops += 10.0 * nz;
    if (vmax <= 0.0) break;
    const double remain = dt - t;
    const bool last = dz / vmax >= remain;
    const double dts = last ? remain : dz / vmax;
    double flux_in = 0.0;
    for (int iz = nz - 1; iz >= 0; --iz) {
      const double v = rain_fall_speed(qr_col[iz], rho[iz]);
      // dts was sized from this substep's vmax, so v * dts / dz <= 1 up
      // to rounding of dz / vmax; the min() only absorbs that last ulp
      // (it never hides a physically over-CFL flux like the old
      // fixed-nsub clamp did) and keeps qr from drifting ~1e-19 negative
      // when a cell evacuates completely.
      const double courant = std::min(1.0, v * dts / dz);
      st.max_courant = std::max(st.max_courant, courant);
      const double out = rho[iz] * qr_col[iz] * courant;
      qr_col[iz] = (rho[iz] * qr_col[iz] - out + flux_in) / rho[iz];
      flux_in = out;
    }
    st.flops += 16.0 * nz;
    st.surface_precip += flux_in / rho[0];
    ++st.substeps;
    if (last) break;
    t += dts;
  }
  return st;
}

}  // namespace wrf::bulk
