#include "bulk/kessler.hpp"

#include <algorithm>
#include <cmath>

#include "util/constants.hpp"

namespace wrf::bulk {

namespace c = wrf::constants;

KesslerStats kessler_cell(double& temp_k, double& qv, double pres_pa,
                          KesslerCell& cell, double dt,
                          const KesslerParams& p) {
  KesslerStats st;

  // --- saturation adjustment: instantly condense/evaporate cloud water
  // to bring the cell to (near) saturation, with latent-heat feedback
  // folded in through the linearized qs(T) slope. ---
  const double qs = c::qsat_liquid(temp_k, pres_pa);
  const double dqs_dt =
      qs * c::kLv / (c::kRv * temp_k * temp_k);  // Clausius-Clapeyron
  double dq = (qv - qs) / (1.0 + c::kLv / c::kCp * dqs_dt);
  if (dq < 0.0) dq = std::max(dq, -cell.qc);  // can only evaporate qc
  qv -= dq;
  cell.qc += dq;
  temp_k += c::kLv / c::kCp * dq;
  st.dq_cond = dq;

  // --- autoconversion qc -> qr ---
  const double auto_rate =
      p.autoconv_rate * std::max(0.0, cell.qc - p.autoconv_threshold);
  const double dauto = std::min(cell.qc, auto_rate * dt);
  cell.qc -= dauto;
  cell.qr += dauto;
  st.dq_auto = dauto;

  // --- accretion: rain collecting cloud water ---
  if (cell.qr > 0.0 && cell.qc > 0.0) {
    const double daccr =
        std::min(cell.qc, p.accretion_rate * cell.qc *
                              std::pow(cell.qr, 0.875) * dt);
    cell.qc -= daccr;
    cell.qr += daccr;
    st.dq_accr = daccr;
  }

  // --- rain evaporation in subsaturated air ---
  if (cell.qr > 0.0 && qv < qs) {
    const double sub = 1.0 - qv / qs;
    const double evap_rate =
        sub * (p.vent_a + p.vent_b * std::pow(cell.qr, 0.65)) *
        std::pow(cell.qr, 0.5) * 1.0e-3;
    const double devp = std::min({cell.qr, evap_rate * dt, qs - qv});
    cell.qr -= devp;
    qv += devp;
    temp_k -= c::kLv / c::kCp * devp;
    st.dq_revp = devp;
  }
  st.flops = 60.0;
  return st;
}

double rain_fall_speed(double qr, double rho_air) {
  if (qr <= 0.0) return 0.0;
  // Kessler's mass-weighted fall speed for a Marshall-Palmer spectrum.
  const double v = 36.34 * std::pow(rho_air * qr * 1.0e-3, 0.1364) *
                   std::sqrt(1.225 / std::max(rho_air, 0.05));
  return std::min(v, 10.0);
}

double kessler_sediment_column(double* qr_col, const double* rho, int nz,
                               double dz, double dt) {
  if (nz <= 0) return 0.0;
  double vmax = 0.0;
  for (int iz = 0; iz < nz; ++iz) {
    vmax = std::max(vmax, rain_fall_speed(qr_col[iz], rho[iz]));
  }
  if (vmax <= 0.0) return 0.0;
  const int nsub = std::max(1, static_cast<int>(std::ceil(vmax * dt / dz)));
  const double dts = dt / nsub;
  double precip = 0.0;
  for (int s = 0; s < nsub; ++s) {
    double flux_in = 0.0;
    for (int iz = nz - 1; iz >= 0; --iz) {
      const double v = rain_fall_speed(qr_col[iz], rho[iz]);
      const double courant = std::min(1.0, v * dts / dz);
      const double out = rho[iz] * qr_col[iz] * courant;
      qr_col[iz] = (rho[iz] * qr_col[iz] - out + flux_in) / rho[iz];
      flux_in = out;
    }
    precip += flux_in / rho[0];
  }
  return precip;
}

}  // namespace wrf::bulk
