#pragma once
// Observability: the low-overhead trace recorder and the obs= knob.
//
// A TraceSink records spans (begin/end pairs) and instant events into
// per-thread buffers: each emitting thread appends to its own buffer
// (registered once, under a mutex; appends are lock-free thereafter),
// so concurrent emitters — simpi rank threads, the hetero host-shard
// thread, scheduler lanes — never contend or race.  One buffer becomes
// one track in the Chrome-trace export, which is also why per-track
// timestamps are monotone by construction: buffer order is emission
// order.
//
// Instrumentation sites use the zero-cost-when-off OBS_SPAN macro: it
// reads the process-wide active-sink pointer (one atomic load) and does
// nothing when no sink is installed, so `obs=off` runs execute the same
// instructions as a build without the hooks — the bitwise-identity
// guarantee tests/test_obs.cpp gates on.  Installing a sink only adds
// timestamping and buffer appends; no event ever feeds back into the
// physics, so `obs=trace` leaves state hashes and stats untouched.
//
// Event taxonomy (category / name / args):
//   pass     <pass name>      pass dispatch through an exec space
//                             (space, tiles, iters; shard lists too)
//   kernel   <kernel name>    simulated device launch (iters,
//                             fused_passes, modeled_us)
//   xfer     h2d | d2h        device-level transfer accounting — the
//                             reconciliation source: summed bytes equal
//                             gpu::TransferStats and FsbmStats exactly
//   region   <field name>     DataRegion verb (dir, bytes, spans)
//   halo     begin | finish   one halo round (round, bytes, wait_us)
//   fidelity census           hybrid promote/demote sweep result
//   fsbm     fast_sbm         one microphysics step
//   svc      submit | admit | dispatch | batch | complete | <job name>
//                             scheduler lifecycle (lane, id, class)

#include <array>
#include <atomic>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wrf::obs {

// ------------------------------------------------------------ obs= knob

enum class ObsMode { kOff, kMetrics, kTrace };

const char* obs_mode_name(ObsMode m) noexcept;

/// The `obs=off|metrics|trace[:path]` knob.  `off` records nothing;
/// `metrics` collects the per-step time series + registry totals and
/// writes metrics JSONL; `trace` additionally installs the active
/// TraceSink and writes Chrome trace-event JSON.  The optional `:path`
/// overrides the export file.
struct ObsConfig {
  ObsMode mode = ObsMode::kOff;
  std::string path;  ///< export file override; "" = mode default

  bool off() const noexcept { return mode == ObsMode::kOff; }
  bool trace() const noexcept { return mode == ObsMode::kTrace; }

  /// Effective export path for the selected mode.
  std::string export_path() const;

  /// Parse "off" | "metrics[:path]" | "trace[:path]"; throws ConfigError.
  static ObsConfig parse(const std::string& s);
  std::string describe() const;
};

/// Scan argv for "obs=..."; absent means off.
ObsConfig obs_from_args(int argc, char** argv);

// --------------------------------------------------------------- events

/// POD argument for hot-path spans: keys and string values must be
/// string literals (or otherwise outlive the sink), so constructing one
/// on the obs=off path costs nothing.
struct Arg {
  const char* key;
  bool is_str;
  std::int64_t i;
  const char* s;
  template <std::integral T>
  constexpr Arg(const char* k, T v)
      : key(k), is_str(false), i(static_cast<std::int64_t>(v)), s(nullptr) {}
  constexpr Arg(const char* k, const char* v)
      : key(k), is_str(true), i(0), s(v) {}
};

/// Owned argument as stored on an event (string values copied, so
/// dynamic names like job ids are safe).
struct ArgVal {
  const char* key = "";
  bool is_str = false;
  std::int64_t i = 0;
  std::string s;
  ArgVal() = default;
  template <std::integral T>
  ArgVal(const char* k, T v)
      : key(k), is_str(false), i(static_cast<std::int64_t>(v)) {}
  ArgVal(const char* k, std::string v)
      : key(k), is_str(true), s(std::move(v)) {}
  ArgVal(const char* k, const char* v) : key(k), is_str(true), s(v) {}
  ArgVal(const Arg& a)  // NOLINT(google-explicit-constructor)
      : key(a.key), is_str(a.is_str), i(a.i), s(a.is_str ? a.s : "") {}
};

/// One trace event: 'B' (span begin), 'E' (span end), or 'i' (instant),
/// with a microsecond timestamp relative to the sink's epoch.
struct TraceEvent {
  std::string name;
  const char* cat = "";
  char phase = 'i';
  std::uint64_t ts_us = 0;
  std::vector<ArgVal> args;
};

/// One per-thread buffer, drained as one export track.
struct TrackEvents {
  int track = 0;
  std::vector<TraceEvent> events;
};

/// One line of the per-step metrics time series (metrics JSONL): the
/// rebalancer-facing slice of StepStats, recorded by the run helpers.
struct StepRecord {
  int step = 0;
  int rank = 0;
  double wall_sec = 0.0;
  double fsbm_wall_sec = 0.0;
  double coal_wall_sec = 0.0;
  double halo_wall_sec = 0.0;
  std::uint64_t halo_bytes = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t shard_cells_device = 0;
  std::uint64_t shard_cells_host = 0;
  std::uint64_t cells_bin = 0;
  std::uint64_t cells_bulk = 0;
};

// ---------------------------------------------------------------- sink

/// The trace recorder.  Thread-safe for concurrent emission (per-thread
/// buffers); drain() and steps() must not race live emitters — call
/// them after the run's worker threads have been joined (or are
/// quiescent through a join/barrier edge).
class TraceSink {
 public:
  TraceSink();
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Microseconds since this sink's construction.
  std::uint64_t now_us() const noexcept;

  /// Append a fully-formed event to the calling thread's buffer.
  void append(TraceEvent e);

  /// Emit an instant event.
  void instant(const char* cat, std::string name,
               std::vector<ArgVal> args = {});

  /// Record one step of the metrics time series (mutex-guarded; cold).
  void record_step(const StepRecord& r);

  /// Copy out every thread's events, one track per thread, in each
  /// track's emission (= time) order.
  std::vector<TrackEvents> drain() const;

  /// Copy of the step series, sorted by (step, rank).
  std::vector<StepRecord> steps() const;

  /// Total events currently buffered (diagnostic).
  std::size_t event_count() const;

  /// One thread's buffer (implementation detail, public only for the
  /// TLS registry in trace.cpp).
  struct ThreadBuf {
    int track = 0;
    std::vector<TraceEvent> events;
  };

 private:
  friend class Span;
  ThreadBuf& tls() const;

  std::uint64_t gen_;  ///< global generation, detects stale TLS entries
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex reg_mu_;                         ///< buffer registry
  mutable std::vector<std::unique_ptr<ThreadBuf>> bufs_;
  mutable std::mutex step_mu_;
  std::vector<StepRecord> steps_;
};

// --------------------------------------------------------- active sink

/// The process-wide active sink OBS_SPAN instruments against; nullptr
/// (the default) means every hook is a single load-and-branch.
TraceSink* active() noexcept;
void set_active(TraceSink* sink) noexcept;

/// RAII install/restore of the active sink.
class ScopedActive {
 public:
  explicit ScopedActive(TraceSink* sink);
  ~ScopedActive();
  ScopedActive(const ScopedActive&) = delete;
  ScopedActive& operator=(const ScopedActive&) = delete;

 private:
  TraceSink* prev_;
};

// ----------------------------------------------------------------- span

/// RAII span: emits 'B' at construction (with the ctor args) and 'E' at
/// destruction (with any arg() added in between).  A null sink makes
/// every member a no-op.
class Span {
 public:
  Span(TraceSink* sink, const char* cat, const char* name);
  Span(TraceSink* sink, const char* cat, const char* name,
       std::initializer_list<Arg> args);
  /// Dynamic-name variant (job names); guard the call site with
  /// active() if constructing the name is itself costly.
  Span(TraceSink* sink, const char* cat, std::string name,
       std::initializer_list<Arg> args = {});
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach an argument to the closing 'E' event.
  void arg(const char* key, std::int64_t v);
  void arg(const char* key, const char* v);

 private:
  void open(const char* cat, std::string name,
            std::initializer_list<Arg> args);
  TraceSink* sink_;
  const char* cat_ = "";
  std::string name_;
  std::array<ArgVal, 6> end_args_;
  int n_end_args_ = 0;
};

#define WRF_OBS_CAT2_(a, b) a##b
#define WRF_OBS_CAT_(a, b) WRF_OBS_CAT2_(a, b)

/// The instrumentation hook: a scoped span against the active sink.
///   OBS_SPAN("pass", p.name);
///   OBS_SPAN("halo", "begin", {{"round", r}, {"bytes", b}});
/// Zero-cost when no sink is installed (one atomic load + branch; the
/// POD args carry only literals and integers).
#define OBS_SPAN(...)                                      \
  ::wrf::obs::Span WRF_OBS_CAT_(obs_span_, __LINE__) {     \
    ::wrf::obs::active(), __VA_ARGS__                      \
  }

}  // namespace wrf::obs
