#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/error.hpp"

namespace wrf::obs {

namespace {

/// Shortest float formatting that is still JSON/Prometheus-valid.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_args(std::string& out, const std::vector<ArgVal>& args) {
  out += "\"args\":{";
  bool first = true;
  for (const ArgVal& a : args) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(a.key);
    out += "\":";
    if (a.is_str) {
      out += '"';
      out += json_escape(a.s);
      out += '"';
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRId64, a.i);
      out += buf;
    }
  }
  out += '}';
}

void write_file(const std::string& path, const std::string& content) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    // A pre-existing directory is fine; a real failure surfaces below.
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("obs: cannot open '" + path + "' for writing");
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  if (!out) throw Error("obs: short write to '" + path + "'");
}

std::string labels_json(const Metric& m) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : m.labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":\"";
    out += json_escape(v);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string chrome_trace_json(const std::vector<TrackEvents>& tracks) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const TrackEvents& t : tracks) {
    for (const TraceEvent& e : t.events) {
      if (!first) out += ",\n";
      first = false;
      char head[96];
      std::snprintf(head, sizeof(head),
                    "{\"pid\":0,\"tid\":%d,\"ph\":\"%c\",\"ts\":%" PRIu64 ",",
                    t.track, e.phase, e.ts_us);
      out += head;
      out += "\"cat\":\"";
      out += json_escape(e.cat);
      out += "\",\"name\":\"";
      out += json_escape(e.name);
      out += "\",";
      append_args(out, e.args);
      out += '}';
    }
  }
  out += "\n]}\n";
  return out;
}

void write_chrome_trace(const TraceSink& sink, const std::string& path) {
  write_file(path, chrome_trace_json(sink.drain()));
}

std::string metrics_jsonl(const std::vector<StepRecord>& steps,
                          const Registry& reg) {
  std::string out;
  for (const StepRecord& r : steps) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"type\":\"step\",\"step\":%d,\"rank\":%d,\"wall_sec\":%s,"
        "\"fsbm_wall_sec\":%s,\"coal_wall_sec\":%s,\"halo_wall_sec\":%s,"
        "\"halo_bytes\":%" PRIu64 ",\"h2d_bytes\":%" PRIu64
        ",\"d2h_bytes\":%" PRIu64 ",\"kernel_launches\":%" PRIu64
        ",\"shard_cells_device\":%" PRIu64 ",\"shard_cells_host\":%" PRIu64
        ",\"cells_bin\":%" PRIu64 ",\"cells_bulk\":%" PRIu64 "}\n",
        r.step, r.rank, num(r.wall_sec).c_str(),
        num(r.fsbm_wall_sec).c_str(), num(r.coal_wall_sec).c_str(),
        num(r.halo_wall_sec).c_str(), r.halo_bytes, r.h2d_bytes,
        r.d2h_bytes, r.kernel_launches, r.shard_cells_device,
        r.shard_cells_host, r.cells_bin, r.cells_bulk);
    out += buf;
  }
  for (const Metric& m : reg.snapshot()) {
    out += "{\"type\":\"metric\",\"name\":\"";
    out += json_escape(m.name);
    out += "\",\"kind\":\"";
    out += m.is_counter ? "counter" : "gauge";
    out += "\",\"labels\":";
    out += labels_json(m);
    out += ",\"value\":";
    out += num(m.value);
    out += "}\n";
  }
  return out;
}

void write_metrics_jsonl(const TraceSink& sink, const Registry& reg,
                         const std::string& path) {
  write_file(path, metrics_jsonl(sink.steps(), reg));
}

std::string prometheus_text(const Registry& reg) {
  std::string out;
  std::string last_name;
  for (const Metric& m : reg.snapshot()) {
    if (m.name != last_name) {
      out += "# TYPE ";
      out += m.name;
      out += m.is_counter ? " counter\n" : " gauge\n";
      last_name = m.name;
    }
    out += m.name;
    if (!m.labels.empty()) {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : m.labels) {
        if (!first) out += ',';
        first = false;
        out += k;
        out += "=\"";
        out += json_escape(v);  // Prometheus escaping is a JSON subset
        out += '"';
      }
      out += '}';
    }
    out += ' ';
    out += num(m.value);
    out += '\n';
  }
  return out;
}

void write_prometheus(const Registry& reg, const std::string& path) {
  write_file(path, prometheus_text(reg));
}

}  // namespace wrf::obs
