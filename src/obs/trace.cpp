#include "obs/trace.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"

namespace wrf::obs {

// ------------------------------------------------------------ obs= knob

const char* obs_mode_name(ObsMode m) noexcept {
  switch (m) {
    case ObsMode::kOff: return "off";
    case ObsMode::kMetrics: return "metrics";
    case ObsMode::kTrace: return "trace";
  }
  return "?";
}

std::string ObsConfig::export_path() const {
  if (!path.empty()) return path;
  return mode == ObsMode::kTrace ? "obs_trace.json" : "obs_metrics.jsonl";
}

ObsConfig ObsConfig::parse(const std::string& s) {
  ObsConfig cfg;
  std::string mode = s;
  const std::size_t colon = s.find(':');
  if (colon != std::string::npos) {
    mode = s.substr(0, colon);
    cfg.path = s.substr(colon + 1);
    if (cfg.path.empty()) {
      throw ConfigError("ObsConfig: empty path in obs='" + s + "'");
    }
  }
  if (mode == "off") {
    if (!cfg.path.empty()) {
      throw ConfigError("ObsConfig: obs=off takes no path ('" + s + "')");
    }
    cfg.mode = ObsMode::kOff;
  } else if (mode == "metrics") {
    cfg.mode = ObsMode::kMetrics;
  } else if (mode == "trace") {
    cfg.mode = ObsMode::kTrace;
  } else {
    throw ConfigError("ObsConfig: unknown obs mode '" + s +
                      "' (want off | metrics[:path] | trace[:path])");
  }
  return cfg;
}

std::string ObsConfig::describe() const {
  std::string out = obs_mode_name(mode);
  if (!path.empty()) out += ":" + path;
  return out;
}

ObsConfig obs_from_args(int argc, char** argv) {
  const std::string prefix = "obs=";
  for (int a = 1; a < argc; ++a) {
    const std::string s = argv[a];
    if (s.rfind(prefix, 0) == 0) {
      return ObsConfig::parse(s.substr(prefix.size()));
    }
  }
  return ObsConfig{};
}

// ---------------------------------------------------------------- sink

namespace {

std::atomic<std::uint64_t> g_sink_gen{1};
std::atomic<TraceSink*> g_active{nullptr};

struct TlsEntry {
  std::uint64_t gen = 0;
  TraceSink::ThreadBuf* buf = nullptr;
};
// Per-thread map from sink instance to its buffer.  Leaked intentionally
// (like prof::Profiler's TLS): pointer maps avoid destructor-order races
// between dying threads and live sinks.  Stale entries — a new sink at a
// recycled address — are detected by the generation stamp.
thread_local std::unordered_map<const TraceSink*, TlsEntry>* t_bufs = nullptr;

}  // namespace

TraceSink::TraceSink()
    : gen_(g_sink_gen.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceSink::~TraceSink() {
  if (active() == this) set_active(nullptr);
}

std::uint64_t TraceSink::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceSink::ThreadBuf& TraceSink::tls() const {
  if (t_bufs == nullptr) {
    t_bufs = new std::unordered_map<const TraceSink*, TlsEntry>();
  }
  TlsEntry& e = (*t_bufs)[this];
  if (e.buf == nullptr || e.gen != gen_) {
    std::lock_guard<std::mutex> lk(reg_mu_);
    auto buf = std::make_unique<ThreadBuf>();
    buf->track = static_cast<int>(bufs_.size());
    e.buf = buf.get();
    e.gen = gen_;
    bufs_.push_back(std::move(buf));
  }
  return *e.buf;
}

void TraceSink::append(TraceEvent e) { tls().events.push_back(std::move(e)); }

void TraceSink::instant(const char* cat, std::string name,
                        std::vector<ArgVal> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = cat;
  e.phase = 'i';
  e.ts_us = now_us();
  e.args = std::move(args);
  append(std::move(e));
}

void TraceSink::record_step(const StepRecord& r) {
  std::lock_guard<std::mutex> lk(step_mu_);
  steps_.push_back(r);
}

std::vector<TrackEvents> TraceSink::drain() const {
  std::lock_guard<std::mutex> lk(reg_mu_);
  std::vector<TrackEvents> out;
  out.reserve(bufs_.size());
  for (const auto& b : bufs_) {
    if (b->events.empty()) continue;
    TrackEvents t;
    t.track = b->track;
    t.events = b->events;
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<StepRecord> TraceSink::steps() const {
  std::vector<StepRecord> out;
  {
    std::lock_guard<std::mutex> lk(step_mu_);
    out = steps_;
  }
  std::sort(out.begin(), out.end(),
            [](const StepRecord& a, const StepRecord& b) {
              return a.step != b.step ? a.step < b.step : a.rank < b.rank;
            });
  return out;
}

std::size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lk(reg_mu_);
  std::size_t n = 0;
  for (const auto& b : bufs_) n += b->events.size();
  return n;
}

// --------------------------------------------------------- active sink

TraceSink* active() noexcept {
  return g_active.load(std::memory_order_acquire);
}

void set_active(TraceSink* sink) noexcept {
  g_active.store(sink, std::memory_order_release);
}

ScopedActive::ScopedActive(TraceSink* sink) : prev_(active()) {
  set_active(sink);
}

ScopedActive::~ScopedActive() { set_active(prev_); }

// ----------------------------------------------------------------- span

void Span::open(const char* cat, std::string name,
                std::initializer_list<Arg> args) {
  cat_ = cat;
  name_ = std::move(name);
  TraceEvent e;
  e.name = name_;
  e.cat = cat_;
  e.phase = 'B';
  e.ts_us = sink_->now_us();
  e.args.reserve(args.size());
  for (const Arg& a : args) e.args.emplace_back(a);
  sink_->append(std::move(e));
}

Span::Span(TraceSink* sink, const char* cat, const char* name)
    : sink_(sink) {
  if (sink_ != nullptr) open(cat, name, {});
}

Span::Span(TraceSink* sink, const char* cat, const char* name,
           std::initializer_list<Arg> args)
    : sink_(sink) {
  if (sink_ != nullptr) open(cat, name, args);
}

Span::Span(TraceSink* sink, const char* cat, std::string name,
           std::initializer_list<Arg> args)
    : sink_(sink) {
  if (sink_ != nullptr) open(cat, std::move(name), args);
}

Span::~Span() {
  if (sink_ == nullptr) return;
  TraceEvent e;
  e.name = std::move(name_);
  e.cat = cat_;
  e.phase = 'E';
  e.ts_us = sink_->now_us();
  e.args.assign(end_args_.begin(), end_args_.begin() + n_end_args_);
  sink_->append(std::move(e));
}

void Span::arg(const char* key, std::int64_t v) {
  if (sink_ == nullptr ||
      n_end_args_ >= static_cast<int>(end_args_.size())) {
    return;
  }
  end_args_[static_cast<std::size_t>(n_end_args_++)] = ArgVal(key, v);
}

void Span::arg(const char* key, const char* v) {
  if (sink_ == nullptr ||
      n_end_args_ >= static_cast<int>(end_args_.size())) {
    return;
  }
  end_args_[static_cast<std::size_t>(n_end_args_++)] = ArgVal(key, v);
}

}  // namespace wrf::obs
