#include "obs/registry.hpp"

#include <algorithm>

namespace wrf::obs {

std::string Registry::key(const std::string& name, const Labels& labels) {
  std::string k = name;
  k += '{';
  for (const auto& [lk, lv] : labels) {
    k += lk;
    k += '=';
    k += lv;
    k += ',';
  }
  k += '}';
  return k;
}

Metric& Registry::upsert(const std::string& name, Labels&& labels,
                         bool is_counter) {
  std::sort(labels.begin(), labels.end());
  const std::string k = key(name, labels);
  auto it = table_.find(k);
  if (it == table_.end()) {
    Metric m;
    m.name = name;
    m.labels = std::move(labels);
    m.is_counter = is_counter;
    it = table_.emplace(k, std::move(m)).first;
  }
  return it->second;
}

void Registry::counter(const std::string& name, double v, Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  upsert(name, std::move(labels), /*is_counter=*/true).value += v;
}

void Registry::gauge(const std::string& name, double v, Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  Metric& m = upsert(name, std::move(labels), /*is_counter=*/false);
  m.is_counter = false;
  m.value = v;
}

double Registry::value(const std::string& name, const Labels& labels) const {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::lock_guard<std::mutex> lk(mu_);
  auto it = table_.find(key(name, sorted));
  return it == table_.end() ? 0.0 : it->second.value;
}

bool Registry::has(const std::string& name, const Labels& labels) const {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::lock_guard<std::mutex> lk(mu_);
  return table_.count(key(name, sorted)) != 0;
}

std::vector<Metric> Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Metric> out;
  out.reserve(table_.size());
  for (const auto& [k, m] : table_) out.push_back(m);
  return out;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return table_.size();
}

}  // namespace wrf::obs
