#pragma once
// Observability: the metrics registry.
//
// A Registry holds named monotonic counters and gauges, each with an
// optional label set, keyed by (name, sorted labels).  Every stats
// struct in the system publishes into one through a single
// `publish(Registry&)` verb — FsbmStats, par::CommStats/RunStats,
// gpu::TransferStats, svc::ServiceStats, model::RunResult — so the
// exporters (Prometheus text, metrics JSONL) read one source of truth
// instead of N bespoke printing paths.
//
// The publish() contract: counters are *added* (publishing two stats
// structs accumulates, exactly like merging the structs first), gauges
// are *set* (last writer wins).  Metric totals must reconcile exactly
// with the struct fields they came from — the gate in tests/test_obs.cpp.
//
// Naming scheme (Prometheus conventions): `wrf_<subsystem>_<what>_<unit>`
// with a `_total` suffix on counters; dimensions go into labels, e.g.
//   wrf_xfer_bytes_total{dir="h2d"}
//   wrf_fsbm_flops_total{pass="coal"}
//   wrf_svc_wait_seconds{class="interactive",quantile="0.95"}

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace wrf::obs {

/// One registered metric (a snapshot row).
struct Metric {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;  ///< sorted
  double value = 0.0;
  bool is_counter = true;
};

/// Named counters and gauges with label sets.  Thread-safe; iteration
/// order (snapshot()) is deterministic — sorted by (name, labels).
class Registry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  /// Add `v` to the monotonic counter `name{labels}` (created at 0).
  void counter(const std::string& name, double v, Labels labels = {});
  /// Set the gauge `name{labels}` to `v`.
  void gauge(const std::string& name, double v, Labels labels = {});

  /// Current value of `name{labels}`; 0.0 when absent.
  double value(const std::string& name, const Labels& labels = {}) const;
  bool has(const std::string& name, const Labels& labels = {}) const;

  /// All metrics in deterministic order.
  std::vector<Metric> snapshot() const;
  std::size_t size() const;

 private:
  Metric& upsert(const std::string& name, Labels&& labels, bool is_counter);
  static std::string key(const std::string& name, const Labels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Metric> table_;
};

}  // namespace wrf::obs
