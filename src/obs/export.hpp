#pragma once
// Observability: the three exporters.
//
//   * Chrome trace-event JSON — load in chrome://tracing or Perfetto
//     (ui.perfetto.dev > "Open trace file").  One track (tid) per
//     emitting thread/lane; spans are balanced B/E pairs with
//     monotonically non-decreasing timestamps per track (gated in
//     tests/test_obs.cpp and the ci.sh span-balance check).
//   * Metrics JSONL — one {"type":"step",...} record per model step
//     (the rebalancer-facing time series), followed by one
//     {"type":"metric",...} line per registry entry.
//   * Prometheus text exposition — a snapshot of a Registry, written by
//     the forecast service (svc::Scheduler::shutdown).
//
// The write_* helpers create parent directories as needed and throw
// util Error on I/O failure, so a mistyped obs=trace:path fails loudly
// instead of silently dropping the trace.

#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace wrf::obs {

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

/// Render tracks as a Chrome trace-event JSON document
/// ({"traceEvents":[...]}; pid 0, tid = track id).
std::string chrome_trace_json(const std::vector<TrackEvents>& tracks);

/// Drain `sink` and write the Chrome trace to `path`.
void write_chrome_trace(const TraceSink& sink, const std::string& path);

/// Render the step series + registry as metrics JSONL.
std::string metrics_jsonl(const std::vector<StepRecord>& steps,
                          const Registry& reg);

void write_metrics_jsonl(const TraceSink& sink, const Registry& reg,
                         const std::string& path);

/// Render a Registry in Prometheus text exposition format
/// (# TYPE comments; counters end in _total).
std::string prometheus_text(const Registry& reg);

void write_prometheus(const Registry& reg, const std::string& path);

}  // namespace wrf::obs
