#include "io/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace wrf::io {

namespace {
constexpr char kMagic[8] = {'M', 'W', 'R', 'F', 'S', 'N', 'P', '1'};

template <class T>
void put(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T get(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw IoError("snapshot: truncated file");
  return v;
}
}  // namespace

void Snapshot::add(std::string name, std::vector<std::int64_t> dims,
                   std::vector<float> data) {
  std::int64_t expect = 1;
  for (auto d : dims) expect *= d;
  if (expect != static_cast<std::int64_t>(data.size())) {
    throw IoError("Snapshot::add: dims of '" + name +
                  "' disagree with data size");
  }
  for (auto& v : vars_) {
    if (v.name == name) {
      v.dims = std::move(dims);
      v.data = std::move(data);
      return;
    }
  }
  vars_.push_back(Variable{std::move(name), std::move(dims), std::move(data)});
}

const Variable* Snapshot::find(const std::string& name) const {
  for (const auto& v : vars_) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

void Snapshot::write(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw IoError("snapshot: cannot open '" + path + "' for write");
  os.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(os, static_cast<std::uint32_t>(vars_.size()));
  for (const auto& v : vars_) {
    put<std::uint32_t>(os, static_cast<std::uint32_t>(v.name.size()));
    os.write(v.name.data(), static_cast<std::streamsize>(v.name.size()));
    put<std::uint32_t>(os, static_cast<std::uint32_t>(v.dims.size()));
    for (auto d : v.dims) put<std::int64_t>(os, d);
    put<std::uint64_t>(os, v.data.size());
    os.write(reinterpret_cast<const char*>(v.data.data()),
             static_cast<std::streamsize>(v.data.size() * sizeof(float)));
  }
  if (!os) throw IoError("snapshot: write to '" + path + "' failed");
}

Snapshot Snapshot::read(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("snapshot: cannot open '" + path + "'");
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw IoError("snapshot: '" + path + "' is not a miniWRF snapshot");
  }
  Snapshot snap;
  const auto nvars = get<std::uint32_t>(is);
  for (std::uint32_t n = 0; n < nvars; ++n) {
    const auto name_len = get<std::uint32_t>(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    const auto ndims = get<std::uint32_t>(is);
    std::vector<std::int64_t> dims;
    dims.reserve(ndims);
    for (std::uint32_t d = 0; d < ndims; ++d) {
      dims.push_back(get<std::int64_t>(is));
    }
    const auto count = get<std::uint64_t>(is);
    std::vector<float> data(count);
    is.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
    if (!is) throw IoError("snapshot: truncated variable '" + name + "'");
    snap.add(std::move(name), std::move(dims), std::move(data));
  }
  return snap;
}

DiffReport diffstate(const Snapshot& a, const Snapshot& b,
                     double ignore_below) {
  DiffReport rep;
  if (a.variables().size() != b.variables().size()) {
    throw IoError("diffstate: snapshots have different variable counts");
  }
  for (const auto& va : a.variables()) {
    const Variable* vb = b.find(va.name);
    if (vb == nullptr || vb->dims != va.dims) {
      throw IoError("diffstate: variable '" + va.name +
                    "' missing or reshaped in second snapshot");
    }
    VarDiff d;
    d.name = va.name;
    d.count = va.data.size();
    double digit_sum = 0.0;
    std::uint64_t digit_n = 0;
    for (std::size_t e = 0; e < va.data.size(); ++e) {
      const double x = va.data[e];
      const double y = vb->data[e];
      if (va.data[e] == vb->data[e]) {
        ++d.bitwise_equal;
        continue;
      }
      const double mag = std::max(std::abs(x), std::abs(y));
      if (mag < ignore_below) {
        ++d.bitwise_equal;  // counted as agreeing at the noise floor
        continue;
      }
      const double ad = std::abs(x - y);
      const double rd = ad / mag;
      d.max_abs_diff = std::max(d.max_abs_diff, ad);
      d.max_rel_diff = std::max(d.max_rel_diff, rd);
      const double digits = std::min(16.0, -std::log10(rd));
      d.digits_min = std::min(d.digits_min, digits);
      digit_sum += digits;
      ++digit_n;
    }
    d.digits_mean = digit_n > 0 ? digit_sum / static_cast<double>(digit_n)
                                : 16.0;
    if (d.bitwise_equal != d.count) rep.identical = false;
    rep.worst_digits = std::min(rep.worst_digits, d.digits_min);
    rep.vars.push_back(std::move(d));
  }
  return rep;
}

std::string DiffReport::format() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-24s %12s %12s %10s %10s\n", "variable",
                "elements", "bit-equal", "min-digits", "mean-digits");
  out += buf;
  for (const auto& v : vars) {
    std::snprintf(buf, sizeof(buf), "%-24s %12llu %12llu %10.2f %10.2f\n",
                  v.name.c_str(), static_cast<unsigned long long>(v.count),
                  static_cast<unsigned long long>(v.bitwise_equal),
                  v.digits_min, v.digits_mean);
    out += buf;
  }
  return out;
}

}  // namespace wrf::io
