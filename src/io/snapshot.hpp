#pragma once
// Binary state snapshots and the diffwrf-style comparator.
//
// WRF writes netCDF history files and ships `diffwrf`, which reports
// bitwise differences between state variables of two files; the paper
// uses it to verify the GPU port retains 3-6 digits of agreement
// (Section VII-B).  This module provides the same workflow: a simple
// self-describing binary snapshot (named float arrays + metadata) and
// `diffstate`, which reports per-variable digits of agreement.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace wrf::io {

/// One named array in a snapshot.
struct Variable {
  std::string name;
  std::vector<std::int64_t> dims;  ///< logical extent, outermost first
  std::vector<float> data;
};

/// An in-memory snapshot: ordered set of named variables.
class Snapshot {
 public:
  /// Add (or replace) a variable.
  void add(std::string name, std::vector<std::int64_t> dims,
           std::vector<float> data);

  const Variable* find(const std::string& name) const;
  const std::vector<Variable>& variables() const noexcept { return vars_; }

  /// Serialize to `path`; throws IoError on failure.
  void write(const std::string& path) const;

  /// Load a snapshot written by `write`.
  static Snapshot read(const std::string& path);

 private:
  std::vector<Variable> vars_;
};

/// Agreement report for one variable.
struct VarDiff {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t bitwise_equal = 0;
  double max_rel_diff = 0.0;
  double max_abs_diff = 0.0;
  /// min over elements of matching significant digits,
  /// -log10(|a-b| / max(|a|,|b|)); 16 when everything is bitwise equal.
  double digits_min = 16.0;
  /// mean matching digits over non-identical elements.
  double digits_mean = 16.0;
};

struct DiffReport {
  std::vector<VarDiff> vars;
  bool identical = true;
  /// Smallest digits_min over all compared variables.
  double worst_digits = 16.0;
  std::string format() const;
};

/// Compare two snapshots variable-by-variable (they must have the same
/// variable sets and shapes; throws IoError otherwise).  `ignore_below`
/// skips elements whose magnitudes are both below the threshold —
/// trace condensate noise, as diffwrf's tolerance knob does.
DiffReport diffstate(const Snapshot& a, const Snapshot& b,
                     double ignore_below = 0.0);

}  // namespace wrf::io
