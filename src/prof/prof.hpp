#pragma once
// Instrumenting profiler: NVTX-like named ranges, gprof-like flat reports.
//
// The paper locates its optimization targets with two tools: GNU gprof
// (aggregate flat profile over all MPI ranks) and NVIDIA Nsight Systems
// (per-rank NVTX ranges).  This module provides both reporting paths over
// a single instrumentation mechanism:
//
//   * `ScopedRange r(prof, "fast_sbm");` opens an NVTX-style range; ranges
//     nest, and exclusive time is attributed correctly to the innermost
//     open range on each thread.
//   * `Profiler::flat_report()` returns gprof-style rows (name, calls,
//     inclusive seconds, exclusive seconds, percent of wall).
//
// The profiler also hosts a registry of monotonically increasing work
// counters (bin operations, bytes moved, cells processed) used by
// src/perfmodel to convert counted work into modeled hardware time.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace wrf::prof {

/// One row of a flat profile report.
struct FlatRow {
  std::string name;
  std::uint64_t calls = 0;
  double inclusive_sec = 0.0;
  double exclusive_sec = 0.0;
  double percent_exclusive = 0.0;  ///< of total exclusive time
};

/// Thread-safe profiler with nested named ranges and work counters.
///
/// Cheap enough to leave enabled: a range open/close is two clock reads
/// plus thread-local bookkeeping; data is merged into the shared table
/// only when a thread's nesting depth returns to zero or on `flush()`.
class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Open a named range on the calling thread. Must be paired with
  /// `pop_range()` in LIFO order (use ScopedRange).
  void push_range(const std::string& name);

  /// Close the innermost open range on the calling thread.
  void pop_range();

  /// Attribute externally measured time as a completed child range of
  /// the innermost open range on the calling thread (or as a top-level
  /// range when none is open).  Used by parallelized loop nests that
  /// accumulate sub-range wall time into per-tile partials and report it
  /// once per dispatch — per-iteration ScopedRanges on worker threads
  /// would serialize on the profiler mutex.
  void add_range_time(const std::string& name, std::uint64_t calls,
                      double seconds);

  /// Add `v` to the named counter (creates it on first use).
  void add_counter(const std::string& name, std::uint64_t v);

  /// Current value of a counter (0 if never written).
  std::uint64_t counter(const std::string& name) const;

  /// Flat profile over everything recorded so far, sorted by exclusive
  /// time descending.  Percentages are of the summed exclusive time, which
  /// is how gprof normalizes its "% time" column.
  std::vector<FlatRow> flat_report() const;

  /// Total inclusive seconds recorded for one range name (0 if absent).
  double inclusive_sec(const std::string& name) const;
  /// Total exclusive seconds recorded for one range name (0 if absent).
  double exclusive_sec(const std::string& name) const;
  /// Number of times the named range was entered.
  std::uint64_t calls(const std::string& name) const;

  /// Merge the calling thread's completed ranges into the shared table.
  /// Merging also happens automatically whenever a thread's nesting depth
  /// returns to zero, so worker threads need no explicit flush as long as
  /// their outermost range closes.
  void flush() const;

  /// Drop all recorded ranges and counters.
  void reset();

  /// Render a gprof-like text table.
  std::string format_flat_report() const;

 private:
  struct Agg {
    std::uint64_t calls = 0;
    double inclusive = 0.0;
    double exclusive = 0.0;
  };
  struct OpenRange {
    std::string name;
    std::chrono::steady_clock::time_point start;
    double child_time = 0.0;  // inclusive time of completed children
  };
  struct ThreadData {
    std::vector<OpenRange> stack;
    std::map<std::string, Agg> pending;
  };

  ThreadData& tls() const;
  void merge(ThreadData& td) const;

  mutable std::mutex mu_;
  mutable std::map<std::string, Agg> table_;
  mutable std::map<std::string, std::uint64_t> counters_;
};

/// RAII wrapper for a profiler range (the NVTX idiom).
class ScopedRange {
 public:
  ScopedRange(Profiler& p, const std::string& name) : p_(p) {
    p_.push_range(name);
  }
  ~ScopedRange() { p_.pop_range(); }
  ScopedRange(const ScopedRange&) = delete;
  ScopedRange& operator=(const ScopedRange&) = delete;

 private:
  Profiler& p_;
};

/// Process-wide default profiler used by the model driver and benches.
Profiler& global();

}  // namespace wrf::prof
