#include "prof/prof.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "util/error.hpp"

namespace wrf::prof {

namespace {
// Per-thread, per-profiler-instance scratch.  Keyed by instance so tests
// can use private Profiler objects alongside the global one.  Values are
// type-erased because ThreadData is a private member type.
thread_local std::unordered_map<const void*, void*>* t_tls = nullptr;
}  // namespace

Profiler::ThreadData& Profiler::tls() const {
  if (t_tls == nullptr) {
    // Leaked intentionally: thread_local maps of pointers avoid
    // destructor-order issues between dying threads and live profilers.
    t_tls = new std::unordered_map<const void*, void*>();
  }
  auto it = t_tls->find(this);
  if (it == t_tls->end()) {
    it = t_tls->emplace(this, new ThreadData()).first;
  }
  return *static_cast<ThreadData*>(it->second);
}

void Profiler::push_range(const std::string& name) {
  ThreadData& td = tls();
  td.stack.push_back(OpenRange{name, std::chrono::steady_clock::now(), 0.0});
}

void Profiler::pop_range() {
  ThreadData& td = tls();
  if (td.stack.empty()) {
    throw Error("Profiler::pop_range with no open range on this thread");
  }
  const auto now = std::chrono::steady_clock::now();
  OpenRange r = td.stack.back();
  td.stack.pop_back();
  const double incl =
      std::chrono::duration<double>(now - r.start).count();
  Agg& a = td.pending[r.name];
  a.calls += 1;
  a.inclusive += incl;
  a.exclusive += incl - r.child_time;
  if (!td.stack.empty()) {
    td.stack.back().child_time += incl;
  } else {
    merge(td);
  }
}

void Profiler::add_range_time(const std::string& name, std::uint64_t calls,
                              double seconds) {
  ThreadData& td = tls();
  Agg& a = td.pending[name];
  a.calls += calls;
  a.inclusive += seconds;
  a.exclusive += seconds;
  if (!td.stack.empty()) {
    // Credit the open parent, clamped to its elapsed wall so far: a
    // parallel dispatch can accumulate more summed worker seconds than
    // the parent's wall time, and crediting past that would drive the
    // parent's exclusive time negative.  (gprof-style thread-summed CPU
    // time for `name`, wall-bounded child attribution for the parent.)
    OpenRange& parent = td.stack.back();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      parent.start)
            .count();
    const double headroom = elapsed - parent.child_time;
    parent.child_time +=
        seconds < headroom ? seconds : (headroom > 0.0 ? headroom : 0.0);
  } else {
    merge(td);
  }
}

void Profiler::merge(ThreadData& td) const {
  if (td.pending.empty()) return;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, agg] : td.pending) {
    Agg& dst = table_[name];
    dst.calls += agg.calls;
    dst.inclusive += agg.inclusive;
    dst.exclusive += agg.exclusive;
  }
  td.pending.clear();
}

void Profiler::flush() const { merge(tls()); }

void Profiler::add_counter(const std::string& name, std::uint64_t v) {
  std::lock_guard<std::mutex> lk(mu_);
  counters_[name] += v;
}

std::uint64_t Profiler::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<FlatRow> Profiler::flat_report() const {
  flush();
  std::lock_guard<std::mutex> lk(mu_);
  double total_excl = 0.0;
  for (const auto& [name, agg] : table_) total_excl += agg.exclusive;
  std::vector<FlatRow> rows;
  rows.reserve(table_.size());
  for (const auto& [name, agg] : table_) {
    FlatRow r;
    r.name = name;
    r.calls = agg.calls;
    r.inclusive_sec = agg.inclusive;
    r.exclusive_sec = agg.exclusive;
    r.percent_exclusive =
        total_excl > 0.0 ? 100.0 * agg.exclusive / total_excl : 0.0;
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end(), [](const FlatRow& a, const FlatRow& b) {
    return a.exclusive_sec > b.exclusive_sec;
  });
  return rows;
}

double Profiler::inclusive_sec(const std::string& name) const {
  flush();
  std::lock_guard<std::mutex> lk(mu_);
  auto it = table_.find(name);
  return it == table_.end() ? 0.0 : it->second.inclusive;
}

double Profiler::exclusive_sec(const std::string& name) const {
  flush();
  std::lock_guard<std::mutex> lk(mu_);
  auto it = table_.find(name);
  return it == table_.end() ? 0.0 : it->second.exclusive;
}

std::uint64_t Profiler::calls(const std::string& name) const {
  flush();
  std::lock_guard<std::mutex> lk(mu_);
  auto it = table_.find(name);
  return it == table_.end() ? 0 : it->second.calls;
}

void Profiler::reset() {
  tls();  // ensure TLS exists so stale pending data is dropped coherently
  std::lock_guard<std::mutex> lk(mu_);
  table_.clear();
  counters_.clear();
}

std::string Profiler::format_flat_report() const {
  auto rows = flat_report();
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%8s %12s %12s %10s  ", "%time",
                "excl(s)", "incl(s)", "calls");
  out += buf;
  out += "name\n";
  for (const auto& r : rows) {
    // Numeric columns through snprintf (fixed width keeps them aligned);
    // the name appended unformatted, so a range name of any length —
    // nested pass labels, per-job ranges — never truncates the row.
    std::snprintf(buf, sizeof(buf), "%8.2f %12.4f %12.4f %10llu  ",
                  r.percent_exclusive, r.exclusive_sec, r.inclusive_sec,
                  static_cast<unsigned long long>(r.calls));
    out += buf;
    out += r.name;
    out += '\n';
  }
  return out;
}

Profiler& global() {
  static Profiler p;
  return p;
}

}  // namespace wrf::prof
