#include "model/case_conus.hpp"

#include <cmath>

#include "util/constants.hpp"

namespace wrf::model {

namespace c = wrf::constants;
using fsbm::Species;

namespace {

/// Standard-atmosphere-like sounding.
struct Sounding {
  double temp;  ///< K
  double pres;  ///< Pa
  double rho;
};

Sounding sounding_at(double z_m) {
  const double t_sfc = 302.0;
  const double lapse = 6.5e-3;
  const double t_trop = 212.0;
  Sounding s;
  s.temp = std::max(t_sfc - lapse * z_m, t_trop);
  // Hydrostatic pressure with a mean scale height.
  const double h_scale = c::kRd * 255.0 / c::kGravity;
  s.pres = 101325.0 * std::exp(-z_m / h_scale);
  s.rho = s.pres / (c::kRd * s.temp);
  return s;
}

}  // namespace

void init_case_conus(const RunConfig& config, fsbm::MicroState& state) {
  const grid::Patch& p = state.patch;
  const grid::Domain dom = config.domain();
  const int nkr = state.bins.nkr();
  Rng master(config.seed);

  // Squall line: a band along i at 40% of the domain's j extent, tilted
  // slightly, with several embedded convective cores.
  const double band_j = 0.40;
  const double band_width = 0.08;

  for (int j = p.jm.lo; j <= p.jm.hi; ++j) {
    for (int k = p.k.lo; k <= p.k.hi; ++k) {
      for (int i = p.im.lo; i <= p.im.hi; ++i) {
        // Clamp halo cells outside the domain onto the boundary so that
        // initialization is defined everywhere in memory.
        const int gi = std::min(std::max(i, dom.i.lo), dom.i.hi);
        const int gj = std::min(std::max(j, dom.j.lo), dom.j.hi);
        const int gk = std::min(std::max(k, dom.k.lo), dom.k.hi);
        const double z = (gk - dom.k.lo + 0.5) * config.dz;
        Sounding snd = sounding_at(z);

        const double xf = static_cast<double>(gi - dom.i.lo) /
                          std::max(1, dom.i.size() - 1);
        const double yf = static_cast<double>(gj - dom.j.lo) /
                          std::max(1, dom.j.size() - 1);
        // Deterministic per-global-cell stream: decomposition-invariant.
        const std::uint64_t cell_id =
            (static_cast<std::uint64_t>(gj) * 100003ull +
             static_cast<std::uint64_t>(gk)) *
                100003ull +
            static_cast<std::uint64_t>(gi);
        Rng rng = master.fork(cell_id);

        // Moist band with embedded cores (cores modulate along i).
        const double line_center = band_j + 0.06 * std::sin(6.28 * xf);
        const double dist = std::abs(yf - line_center) / band_width;
        const double core =
            0.5 + 0.5 * std::sin(12.56 * xf + 1.7);  // cores along the line
        const bool in_band = dist < 2.5;
        const double band_w = in_band ? std::exp(-dist * dist) * core : 0.0;

        double rh = 0.45 + 0.25 * std::exp(-z / 4000.0);
        rh += 0.55 * band_w * std::exp(-z / 9000.0);
        rh += 0.02 * (rng.uniform() - 0.5);  // mesoscale noise
        if (rh > 1.08) rh = 1.08;

        // Warm anomaly in the band's low levels (CAPE source).
        snd.temp += 2.0 * band_w * std::exp(-z / 3000.0);

        state.temp(i, k, j) = static_cast<float>(snd.temp);
        state.pres(i, k, j) = static_cast<float>(snd.pres);
        state.rho(i, k, j) = static_cast<float>(snd.rho);
        state.qv(i, k, j) = static_cast<float>(
            rh * c::qsat_liquid(snd.temp, snd.pres));

        for (auto& f : state.ff) {
          for (int n = 0; n < nkr; ++n) f(n, i, k, j) = 0.0f;
        }
        // Seed condensate in band cores so collisions are active from
        // step 1: droplet spectrum in warm layers, ice/snow aloft.
        if (band_w > 0.35) {
          const double qc = 1.2e-3 * band_w * (0.7 + 0.6 * rng.uniform());
          if (snd.temp > 248.0) {
            // Lognormal-ish droplet spectrum over the first ~12 bins,
            // plus a drizzle tail that gives the collection kernel
            // large collectors to work with.
            auto& liq = state.ff[static_cast<int>(Species::kLiquid)];
            double norm = 0.0;
            for (int n = 0; n < nkr; ++n) {
              const double x = (n - 6.0) / 2.5;
              const double tail = n > 12 && n < 22 ? 0.02 : 0.0;
              norm += std::exp(-x * x) + tail;
            }
            for (int n = 0; n < nkr; ++n) {
              const double x = (n - 6.0) / 2.5;
              const double tail = n > 12 && n < 22 ? 0.02 : 0.0;
              liq(n, i, k, j) = static_cast<float>(
                  qc * (std::exp(-x * x) + tail) / norm);
            }
          }
          if (snd.temp < 268.0) {
            const double qi = 0.4e-3 * band_w;
            auto& sn = state.ff[static_cast<int>(Species::kSnow)];
            auto& ic = state.ff[static_cast<int>(Species::kIcePlate)];
            auto& gr = state.ff[static_cast<int>(Species::kGraupel)];
            for (int n = 4; n < 16 && n < nkr; ++n) {
              sn(n, i, k, j) = static_cast<float>(qi * 0.05);
              ic(n, i, k, j) = static_cast<float>(qi * 0.03);
            }
            for (int n = 10; n < 20 && n < nkr; ++n) {
              gr(n, i, k, j) = static_cast<float>(qi * 0.02);
            }
          }
        }
        state.precip(i, 0, j) = 0.0f;
      }
    }
  }
}

double cloudy_fraction(const fsbm::MicroState& state, double threshold) {
  const grid::Patch& p = state.patch;
  std::uint64_t cloudy = 0, total = 0;
  for (int j = p.jp.lo; j <= p.jp.hi; ++j) {
    for (int k = p.k.lo; k <= p.k.hi; ++k) {
      for (int i = p.ip.lo; i <= p.ip.hi; ++i) {
        ++total;
        if (state.total_condensate(i, k, j) > threshold) ++cloudy;
      }
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(cloudy) / total;
}

}  // namespace wrf::model
