#pragma once
// Synthetic CONUS-12km-like thunderstorm initial conditions.
//
// The real case is a WPS-preprocessed continental United States analysis;
// we synthesize the features the microphysics cost structure depends on:
// a conditionally unstable sounding, a moist squall-line band with
// embedded supersaturated cores (where FSBM works hard), dry air
// elsewhere (where it idles — the load imbalance of Section VIII), and
// sub-freezing upper levels so all 20 collision pair classes activate.

#include "fsbm/state.hpp"
#include "model/config.hpp"
#include "util/rng.hpp"

namespace wrf::model {

/// Fill `state` (one rank's patch, halos included) with the synthetic
/// case.  Deterministic in (config.seed, global cell index): a
/// decomposed run initializes bitwise identically to a single-patch run.
void init_case_conus(const RunConfig& config, fsbm::MicroState& state);

/// Cloud fraction diagnostic used by tests and the perf model: fraction
/// of computational cells with condensate above `threshold`.
double cloudy_fraction(const fsbm::MicroState& state,
                       double threshold = 1.0e-6);

}  // namespace wrf::model
