#pragma once
// The model driver: a mini-WRF time loop per rank, and run helpers that
// tie decomposition, dynamics, microphysics, devices, and profiling
// together the way the paper's experiments are structured.

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "dyn/rk3.hpp"
#include "fsbm/fast_sbm.hpp"
#include "io/snapshot.hpp"
#include "model/case_conus.hpp"
#include "model/config.hpp"
#include "model/halo.hpp"
#include "obs/registry.hpp"
#include "par/simpi.hpp"
#include "prof/prof.hpp"

namespace wrf::model {

/// Aggregated result of one rank's (or one run's) stepping.
struct StepStats {
  fsbm::FsbmStats fsbm;
  dyn::Rk3Stats dyn;
  double wall_sec = 0.0;
  double halo_wall_sec = 0.0;
  std::uint64_t halo_bytes = 0;

  void merge(const StepStats& o) {
    fsbm.merge(o.fsbm);
    dyn.tend.cells += o.dyn.tend.cells;
    dyn.tend.flops += o.dyn.tend.flops;
    dyn.update.cells += o.dyn.update.cells;
    dyn.update.flops += o.dyn.update.flops;
    wall_sec += o.wall_sec;
    halo_wall_sec += o.halo_wall_sec;
    halo_bytes += o.halo_bytes;
  }
};

/// One rank's model instance: owns the patch state, RK3 transport, FSBM
/// scheme, and (for offloaded versions) the simulated device.
class RankModel {
 public:
  /// `ctx` may be null for single-rank runs (halo exchange becomes a
  /// pure boundary fill).
  RankModel(const RunConfig& config, const grid::Patch& patch,
            par::RankCtx* ctx);

  /// Initialize the synthetic CONUS case.
  void init();

  /// One model step: halo-exchanged RK3 advection, then fast_sbm.
  StepStats step(prof::Profiler& prof);

  fsbm::MicroState& state() noexcept { return state_; }
  const fsbm::MicroState& state() const noexcept { return state_; }
  gpu::Device* device() noexcept { return device_.get(); }
  const fsbm::FastSbm& scheme() const noexcept { return *fsbm_; }
  const grid::Patch& patch() const noexcept { return patch_; }

  /// Snapshot of this rank's computational region (qv, temp, per-species
  /// condensate, precip) for diffstate verification.
  io::Snapshot snapshot() const;

 private:
  friend struct RankHaloPhases;  // the dyn::HaloPhases adapter (driver.cpp)

  /// Phase 1 of the per-stage halo refresh: pack + post the whole field
  /// set through the HaloExchange plan (nothing waited on).
  void halo_begin(fsbm::MicroState& s, StepStats* st);
  /// Phase 2: wait + unpack, then domain-edge boundary fill.
  void halo_finish(fsbm::MicroState& s, StepStats* st);

  /// res=persist: delegate to FastSbm::mark_transport_writes (an RK3
  /// stage update rewrote qv and every bin field; any read-coherence
  /// h2d flush is charged into `st->fsbm`).  Called before each halo
  /// round after the first (so begin() flushes the strips the previous
  /// stage wrote) and once after the final stage.
  void mark_advection_writes(StepStats* st);

  RunConfig config_;
  grid::Patch patch_;
  par::RankCtx* ctx_;
  fsbm::MicroState state_;
  std::unique_ptr<gpu::Device> device_;
  /// The rank's execution space (the `exec=` knob): dispatches every
  /// host loop nest — physics, sedimentation, advection, halo pack.
  std::unique_ptr<exec::ExecSpace> exec_space_;
  std::unique_ptr<fsbm::FastSbm> fsbm_;
  std::unique_ptr<dyn::Rk3> rk3_;
  /// The rank's halo plan: qv + every bin field, one round per RK3
  /// stage, tags a pure function of (round, field, side).
  std::unique_ptr<HaloExchange> halo_;
  dyn::AnalyticWinds winds_;
};

/// Result of a complete multi-rank run.
struct RunResult {
  StepStats totals;                  ///< summed over ranks and steps
  par::RunStats comm;                ///< simpi counters
  double wall_sec = 0.0;             ///< wall time of the whole run
  std::vector<io::Snapshot> snapshots;  ///< per-rank final snapshots
  std::optional<gpu::KernelStats> last_coal_kernel;
  std::uint64_t pool_bytes_per_rank = 0;
  /// Device bytes pinned by res=persist field residency (0 under
  /// res=step); reported next to pool_bytes_per_rank by the benches.
  std::uint64_t resident_bytes_per_rank = 0;

  /// Kernel launches issued across all ranks and steps, and the modeled
  /// fixed launch latency they paid — what cross-pass fusion (`fuse=`)
  /// reduces with the physics bitwise unchanged.  Convenience views of
  /// totals.fsbm so benches need no device introspection.
  std::uint64_t kernel_launches() const noexcept {
    return totals.fsbm.kernel_launches;
  }
  double launch_latency_ms() const noexcept {
    return totals.fsbm.launch_latency_ms;
  }

  /// exec=hetero: fraction of coal-pass cells routed to the device shard
  /// (0 when the run never split — any other exec, or host-only
  /// versions).  Per-shard cell counts and wall seconds live in
  /// totals.fsbm.shard_*; this is the ratio the hetero bench tracks.
  double device_shard_fraction() const noexcept {
    const std::uint64_t total =
        totals.fsbm.shard_cells_device + totals.fsbm.shard_cells_host;
    return total > 0
               ? static_cast<double>(totals.fsbm.shard_cells_device) / total
               : 0.0;
  }

  /// publish() contract (obs/registry.hpp): fold the whole run into
  /// `reg` — totals.fsbm and comm via their own publish() verbs, the
  /// dynamics/halo counters, and run-level gauges (wall seconds, pool
  /// and resident bytes).  Counters accumulate, so metric totals equal
  /// the struct fields exactly (gated in tests/test_obs.cpp).
  void publish(obs::Registry& reg) const;
};

/// Run `config.nsteps` steps on `config.nranks()` simpi ranks and return
/// aggregated statistics plus per-rank final snapshots.
RunResult run_simulation(const RunConfig& config, prof::Profiler& prof);

/// Single-rank convenience (patch = whole domain, no messaging).
RunResult run_single(const RunConfig& config, prof::Profiler& prof);

/// FNV-1a fingerprint over every snapshot variable (names + float
/// payload bits) of a run.  Two runs of the same RunConfig hash equal
/// iff their final states are bitwise identical — the determinism gate
/// the forecast service (src/svc) holds every scheduled job to against
/// a standalone run of the same config.
std::uint64_t state_hash(const RunResult& result);

}  // namespace wrf::model
