#include "model/driver.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <optional>

#include "model/halo.hpp"
#include "obs/export.hpp"
#include "tune/artifact.hpp"

namespace wrf::model {

namespace {
using Clock = std::chrono::steady_clock;
double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Per-run observability session: owns the TraceSink, installs it as
/// the active sink for the stepping window (trace mode only), records
/// the per-step time series, and writes the export selected by the
/// knob.  Constructed after model init so the trace covers exactly the
/// transfers FsbmStats charges — what makes event-sum reconciliation
/// exact.  A mode=off session is inert.
class ObsRun {
 public:
  explicit ObsRun(const obs::ObsConfig& cfg) : cfg_(cfg) {
    if (cfg_.off()) return;
    sink_ = std::make_unique<obs::TraceSink>();
    if (cfg_.trace()) active_.emplace(sink_.get());
  }

  void record(int step, int rank, const StepStats& st) {
    if (!sink_) return;
    obs::StepRecord r;
    r.step = step;
    r.rank = rank;
    r.wall_sec = st.wall_sec;
    r.fsbm_wall_sec = st.fsbm.wall_total_sec;
    r.coal_wall_sec = st.fsbm.wall_coal_sec;
    r.halo_wall_sec = st.halo_wall_sec;
    r.halo_bytes = st.halo_bytes;
    r.h2d_bytes = st.fsbm.h2d_bytes;
    r.d2h_bytes = st.fsbm.d2h_bytes;
    r.kernel_launches = st.fsbm.kernel_launches;
    r.shard_cells_device = st.fsbm.shard_cells_device;
    r.shard_cells_host = st.fsbm.shard_cells_host;
    r.cells_bin = st.fsbm.cells_bin;
    r.cells_bulk = st.fsbm.cells_bulk;
    sink_->record_step(r);
  }

  /// Uninstall the sink and write the export.  Call after every rank
  /// thread has been joined (drain must not race live emitters).
  void finish(const RunResult& result) {
    if (!sink_) return;
    active_.reset();
    if (cfg_.trace()) {
      obs::write_chrome_trace(*sink_, cfg_.export_path());
    } else {
      obs::Registry reg;
      result.publish(reg);
      obs::write_metrics_jsonl(*sink_, reg, cfg_.export_path());
    }
  }

 private:
  obs::ObsConfig cfg_;
  std::unique_ptr<obs::TraceSink> sink_;
  std::optional<obs::ScopedActive> active_;
};

}  // namespace

void RunConfig::validate() const {
  if (nx < 8 || ny < 8 || nz < 6) {
    throw ConfigError("RunConfig: grid too small (need nx,ny>=8, nz>=6)");
  }
  if (nkr < 4 || nkr > fsbm::kMaxNkr) {
    throw ConfigError("RunConfig: nkr outside [4, kMaxNkr]");
  }
  if (npx < 1 || npy < 1) throw ConfigError("RunConfig: bad process grid");
  if (nx / npx < halo || ny / npy < halo) {
    throw ConfigError("RunConfig: patches narrower than the halo");
  }
  if (dt <= 0.0 || nsteps < 0) throw ConfigError("RunConfig: bad time axis");
  if (ngpus < 1) throw ConfigError("RunConfig: ngpus must be >= 1");
  if ((exec.kind == exec::ExecKind::kThreads ||
       exec.kind == exec::ExecKind::kHetero) &&
      exec.nthreads < 0) {
    throw ConfigError("RunConfig: exec thread count must be >= 0");
  }
  if (halo < dyn::kStencilWidth) {
    throw ConfigError("RunConfig: halo narrower than the advection stencil");
  }
  if (sed.kind == fsbm::SedDispatch::Kind::kBlock &&
      (sed.block < 1 || sed.block > 4096)) {
    throw ConfigError("RunConfig: sed block width outside [1, 4096]");
  }
  // The hybrid knob's own tunables are validated against nkr by the
  // scheme ctor (FastSbm), which knows the bin grid.
}

std::string RunConfig::describe() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "grid %dx%dx%d dx=%.0fm dt=%.1fs nkr=%d ranks=%dx%d "
                "version=%s exec=%s halo=%s phys=%s sed=%s res=%s fuse=%s "
                "ngpus=%d",
                nx, ny, nz, dx, dt, nkr, npx, npy,
                fsbm::version_name(version), exec.describe().c_str(),
                dyn::halo_mode_name(halo_mode), fsbm::phys_name(phys),
                sed.describe().c_str(), mem::residency_name(res),
                exec::fuse_name(fuse), ngpus);
  std::string out = buf;
  // Appended only when enabled: obs is pure observation (no physics
  // effect), so default describe() strings — and the svc shape keys
  // derived from them — stay exactly as before the knob existed.
  if (!obs.off()) out += " obs=" + obs.describe();
  // Same contract for tune=: the spec never changes physics, and the
  // run entry points resolve it to explicit knobs (tune forced off)
  // before any work, so a resolved config describes like a hand-set one.
  if (!tune.off()) out += " tune=" + tune.describe();
  return out;
}

RankModel::RankModel(const RunConfig& config, const grid::Patch& patch,
                     par::RankCtx* ctx)
    : config_(config), patch_(patch), ctx_(ctx),
      state_(patch, config.nkr) {
  // exec=device / exec=hetero need a simulated device even for
  // host-only versions (the hetero device shard exists either way; for
  // v0/v1 the split never fires and everything runs on the host shard).
  if (config_.offloaded() || config_.exec.kind == exec::ExecKind::kDevice ||
      config_.exec.kind == exec::ExecKind::kHetero) {
    device_ = std::make_unique<gpu::Device>(config_.device_spec);
    device_->set_stack_limit(config_.stack_bytes);
    device_->set_heap_limit(config_.heap_bytes);
  }
  exec_space_ = exec::make_space(config_.exec, device_.get());
  fsbm::FsbmParams params = config_.fsbm_params;
  params.dt = config_.dt;
  params.sed.dz = config_.dz;
  params.sed_dispatch = config_.sed;
  params.residency = config_.res;
  params.fuse = config_.fuse;
  params.phys = config_.phys;
  fsbm_ = std::make_unique<fsbm::FastSbm>(patch_, config_.nkr,
                                          config_.version, params,
                                          device_.get(), exec_space_.get());
  dyn::AdvConfig adv;
  adv.dx = config_.dx;
  adv.dy = config_.dx;
  adv.dz = config_.dz;
  rk3_ = std::make_unique<dyn::Rk3>(patch_, config_.nkr, adv, config_.dt,
                                    exec_space_.get(), config_.halo_mode);
  // The rank's halo plan: registration order defines the tag schedule,
  // so every rank registers qv then the bin fields, identically.  Under
  // res=persist the scheme's data region is bound in, so unpacked shell
  // strips mark sub-field dirty ranges instead of staling whole fields.
  halo_ = std::make_unique<HaloExchange>(patch_, exec_space_.get());
  const fsbm::FastSbm::ResidencyFields& rf = fsbm_->residency_fields();
  const bool persist = config_.res == mem::ResidencyMode::kPersist &&
                       fsbm_->region() != nullptr;
  if (persist) halo_->set_region(fsbm_->region());
  // Register the region field ids only under persist: they are what
  // makes the plan precompute and drive the dirty-strip updates.
  halo_->add(&state_.qv, persist ? rf.qv : mem::kInvalidField);
  for (int s = 0; s < fsbm::kNumSpecies; ++s) {
    halo_->add_bins(&state_.ff[static_cast<std::size_t>(s)],
                    persist ? rf.ff[static_cast<std::size_t>(s)]
                            : mem::kInvalidField);
  }
  winds_.domain = config_.domain();
  winds_.dx = config_.dx;
  winds_.dz = config_.dz;
  // Park the updraft on the squall line of the synthetic case.
  winds_.yc = 0.42;
  winds_.xc = 0.5;
}

void RankModel::init() { init_case_conus(config_, state_); }

void RankModel::halo_begin(fsbm::MicroState& s, StepStats* st) {
  const auto t0 = Clock::now();
  if (ctx_ != nullptr && ctx_->size() > 1) {
    if (&s != &state_) {
      throw Error("RankModel: halo plan is bound to this rank's state");
    }
    const std::uint64_t bytes_before = ctx_->stats().bytes_sent;
    // res=persist: begin() may flush device-dirty send strips d2h
    // before packing — charge that residency traffic into the step's
    // transfer counters like every other modeled transfer.
    const gpu::TransferStats xfer_before =
        device_ != nullptr ? device_->transfers() : gpu::TransferStats{};
    halo_->begin(*ctx_);  // whole field set posted; sends happen here
    if (device_ != nullptr) {
      st->fsbm.charge_transfer_delta(xfer_before, device_->transfers());
    }
    st->halo_bytes += ctx_->stats().bytes_sent - bytes_before;
  }
  st->halo_wall_sec += seconds_since(t0);
}

void RankModel::halo_finish(fsbm::MicroState& s, StepStats* st) {
  const auto t0 = Clock::now();
  if (ctx_ != nullptr && ctx_->size() > 1) {
    // res=persist: finish() only marks the unpacked shell strips
    // host-dirty — the consuming pass's charged update_to pulls them.
    halo_->finish(*ctx_);
  }
  // Domain-edge boundary conditions (zero-gradient).  After the unpack:
  // the west/east fills read corner rows delivered by the exchange.
  // Residency: these writes need no separate dirty marks — they are
  // covered by the full-field advection marks of the same step
  // (mark_advection_writes), on whichever side of the link the exec
  // space puts them.
  dyn::fill_domain_boundaries(patch_, s.qv);
  for (auto& f : s.ff) dyn::fill_domain_boundaries_bins(patch_, f);
  st->halo_wall_sec += seconds_since(t0);
}

void RankModel::mark_advection_writes(StepStats* st) {
  fsbm_->mark_transport_writes(&st->fsbm);
}

/// Adapter handing RankModel's phased halo refresh to dyn::Rk3, with the
/// per-step stats threaded through.  Each round's begin() first marks
/// the *previous* stage's advection writes (rk3 exchanges halos at the
/// top of every stage, so the round ships what the last update wrote);
/// round 0 skips the mark — its halo carries the previous step's state,
/// whose writers (fsbm passes, the final stage update) already marked.
struct RankHaloPhases final : dyn::HaloPhases {
  RankModel* model;
  StepStats* st;
  int round = 0;
  RankHaloPhases(RankModel* m, StepStats* s) : model(m), st(s) {}
  void begin(fsbm::MicroState& s) override {
    if (round++ > 0) model->mark_advection_writes(st);
    model->halo_begin(s, st);
  }
  void finish(fsbm::MicroState& s) override { model->halo_finish(s, st); }
};

StepStats RankModel::step(prof::Profiler& prof) {
  StepStats st;
  const auto t0 = Clock::now();
  {
    prof::ScopedRange r(prof, "solve_interval");
    RankHaloPhases phases(this, &st);
    st.dyn = rk3_->step(state_, winds_, phases, prof);
    mark_advection_writes(&st);  // the final stage's update (no round follows)
    // merge, not assign: st.fsbm already carries the transport-flush
    // charges the halo rounds and the mark above deposited.
    st.fsbm.merge(fsbm_->step(state_, prof));
  }
  st.wall_sec = seconds_since(t0);
  return st;
}

io::Snapshot RankModel::snapshot() const {
  // res=persist leaves the last device-side writes resident; a real port
  // flushes them before host-side output, so issue that final d2h here
  // (one flush, amortized over the run — steady-state per-step traffic
  // is unaffected).  The run helpers bracket this call and charge the
  // delta into the run totals.
  if (config_.res == mem::ResidencyMode::kPersist &&
      fsbm_->region() != nullptr) {
    fsbm_->region()->update_from_all();
  }
  io::Snapshot snap;
  const grid::Patch& p = patch_;
  const std::int64_t ni = p.ip.size(), nk = p.k.size(), nj = p.jp.size();
  auto dump3 = [&](const Field3D<float>& f, const char* name) {
    std::vector<float> data;
    data.reserve(static_cast<std::size_t>(ni * nk * nj));
    for (int j = p.jp.lo; j <= p.jp.hi; ++j)
      for (int k = p.k.lo; k <= p.k.hi; ++k)
        for (int i = p.ip.lo; i <= p.ip.hi; ++i) data.push_back(f(i, k, j));
    snap.add(name, {nj, nk, ni}, std::move(data));
  };
  dump3(state_.qv, "QVAPOR");
  dump3(state_.temp, "T");
  // Per-species condensate totals (fixed bin-order summation keeps the
  // result decomposition-invariant for bitwise tests).
  for (int s = 0; s < fsbm::kNumSpecies; ++s) {
    std::vector<float> data;
    data.reserve(static_cast<std::size_t>(ni * nk * nj));
    const auto& f = state_.ff[static_cast<std::size_t>(s)];
    for (int j = p.jp.lo; j <= p.jp.hi; ++j) {
      for (int k = p.k.lo; k <= p.k.hi; ++k) {
        for (int i = p.ip.lo; i <= p.ip.hi; ++i) {
          float q = 0.0f;
          const float* sl = f.slice(i, k, j);
          for (int n = 0; n < state_.bins.nkr(); ++n) q += sl[n];
          data.push_back(q);
        }
      }
    }
    snap.add(std::string("Q_") +
                 fsbm::species_name(static_cast<fsbm::Species>(s)),
             {nj, nk, ni}, std::move(data));
  }
  {
    std::vector<float> data;
    data.reserve(static_cast<std::size_t>(ni * nj));
    for (int j = p.jp.lo; j <= p.jp.hi; ++j)
      for (int i = p.ip.lo; i <= p.ip.hi; ++i)
        data.push_back(state_.precip(i, 0, j));
    snap.add("RAINNC", {nj, ni}, std::move(data));
  }
  return snap;
}

RunResult run_simulation(const RunConfig& config, prof::Profiler& prof) {
  if (!config.tune.off()) {
    // Resolve tune= here, at the outermost entry, so every caller
    // (examples, benches, service lanes) gets tuned knobs; the spec is
    // cleared so the resolved config is indistinguishable from one with
    // the knobs set explicitly (the bitwise gate in tests/test_tune.cpp).
    RunConfig c = config;
    tune::apply(c);
    c.tune = tune::TuneSpec{};
    return run_simulation(c, prof);
  }
  config.validate();
  const auto patches =
      grid::decompose(config.domain(), config.npx, config.npy, config.halo);

  RunResult result;
  result.snapshots.resize(static_cast<std::size_t>(config.nranks()));
  std::mutex mu;
  ObsRun obsrun(config.obs);
  const auto t0 = Clock::now();

  result.comm = par::run(config.nranks(), [&](par::RankCtx& ctx) {
    RankModel rank_model(config, patches[static_cast<std::size_t>(ctx.rank())],
                         &ctx);
    rank_model.init();
    StepStats local;
    for (int s = 0; s < config.nsteps; ++s) {
      StepStats st = rank_model.step(prof);
      obsrun.record(s, ctx.rank(), st);
      local.merge(st);
      ctx.barrier();  // WRF's implicit per-step synchronization
    }
    // snapshot()'s res=persist pre-output flush is a modeled transfer
    // like any other: charge it so run totals reconcile with the
    // device-level TransferStats.
    const gpu::TransferStats snap_t0 = rank_model.device() != nullptr
                                           ? rank_model.device()->transfers()
                                           : gpu::TransferStats{};
    io::Snapshot snap = rank_model.snapshot();
    if (rank_model.device() != nullptr) {
      local.fsbm.charge_transfer_delta(snap_t0,
                                       rank_model.device()->transfers());
    }
    std::lock_guard<std::mutex> lk(mu);
    result.totals.merge(local);
    result.snapshots[static_cast<std::size_t>(ctx.rank())] = std::move(snap);
    if (local.fsbm.coal_kernel) {
      result.last_coal_kernel = local.fsbm.coal_kernel;
    }
    result.pool_bytes_per_rank = rank_model.scheme().pool_bytes();
    result.resident_bytes_per_rank = rank_model.scheme().resident_bytes();
  });
  result.wall_sec = seconds_since(t0);
  obsrun.finish(result);  // rank threads joined by par::run — safe to drain
  return result;
}

std::uint64_t state_hash(const RunResult& result) {
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h = kOffset;
  auto mix = [&h](const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t n = 0; n < bytes; ++n) {
      h ^= p[n];
      h *= kPrime;
    }
  };
  for (const io::Snapshot& snap : result.snapshots) {
    for (const io::Variable& v : snap.variables()) {
      mix(v.name.data(), v.name.size());
      mix(v.data.data(), v.data.size() * sizeof(float));
    }
  }
  return h;
}

RunResult run_single(const RunConfig& config, prof::Profiler& prof) {
  RunConfig c = config;
  c.npx = 1;
  c.npy = 1;
  if (!c.tune.off()) {
    // After the single-rank normalization (the artifact shape key
    // includes the rank grid), same resolution as run_simulation.
    tune::apply(c);
    c.tune = tune::TuneSpec{};
  }
  c.validate();
  const auto patches = grid::decompose(c.domain(), 1, 1, c.halo);
  RunResult result;
  const auto t0 = Clock::now();
  RankModel rank_model(c, patches[0], nullptr);
  rank_model.init();
  ObsRun obsrun(c.obs);
  for (int s = 0; s < c.nsteps; ++s) {
    StepStats st = rank_model.step(prof);
    obsrun.record(s, 0, st);
    result.totals.merge(st);
  }
  // Charge snapshot()'s res=persist pre-output flush (see run_simulation).
  const gpu::TransferStats snap_t0 = rank_model.device() != nullptr
                                         ? rank_model.device()->transfers()
                                         : gpu::TransferStats{};
  result.snapshots.push_back(rank_model.snapshot());
  if (rank_model.device() != nullptr) {
    result.totals.fsbm.charge_transfer_delta(snap_t0,
                                             rank_model.device()->transfers());
  }
  if (result.totals.fsbm.coal_kernel) {
    result.last_coal_kernel = result.totals.fsbm.coal_kernel;
  }
  result.pool_bytes_per_rank = rank_model.scheme().pool_bytes();
  result.resident_bytes_per_rank = rank_model.scheme().resident_bytes();
  result.wall_sec = seconds_since(t0);
  obsrun.finish(result);
  return result;
}

void RunResult::publish(obs::Registry& reg) const {
  totals.fsbm.publish(reg);
  comm.publish(reg);
  reg.counter("wrf_dyn_cells_total",
              static_cast<double>(totals.dyn.tend.cells),
              {{"phase", "tend"}});
  reg.counter("wrf_dyn_cells_total",
              static_cast<double>(totals.dyn.update.cells),
              {{"phase", "update"}});
  reg.counter("wrf_dyn_flops_total", totals.dyn.tend.flops,
              {{"phase", "tend"}});
  reg.counter("wrf_dyn_flops_total", totals.dyn.update.flops,
              {{"phase", "update"}});
  reg.counter("wrf_halo_bytes_total",
              static_cast<double>(totals.halo_bytes));
  reg.counter("wrf_halo_wall_seconds_total", totals.halo_wall_sec);
  reg.counter("wrf_step_wall_seconds_total", totals.wall_sec);
  reg.gauge("wrf_run_wall_seconds", wall_sec);
  reg.gauge("wrf_run_pool_bytes_per_rank",
            static_cast<double>(pool_bytes_per_rank));
  reg.gauge("wrf_run_resident_bytes_per_rank",
            static_cast<double>(resident_bytes_per_rank));
  reg.gauge("wrf_run_device_shard_fraction", device_shard_fraction());
}

}  // namespace wrf::model
