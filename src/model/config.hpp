#pragma once
// Run configuration: the namelist of the mini model.

#include <cstdint>
#include <string>

#include "dyn/rk3.hpp"
#include "exec/exec.hpp"
#include "exec/passgraph.hpp"
#include "fsbm/fast_sbm.hpp"
#include "gpu/device.hpp"
#include "grid/decomp.hpp"
#include "mem/residency.hpp"
#include "obs/trace.hpp"
#include "tune/tune.hpp"

namespace wrf::model {

/// Everything needed to reproduce one run.  Defaults describe a
/// scaled-down CONUS-12km thunderstorm case; `conus12km_full()` gives
/// the paper's 425 x 300 x 50 grid (for the performance model — running
/// it functionally is possible but slow).
struct RunConfig {
  // Grid.
  int nx = 64;
  int ny = 48;
  int nz = 24;
  double dx = 12000.0;  ///< 12 km horizontal spacing
  double dz = 400.0;

  // Time.
  double dt = 5.0;     ///< seconds, the paper's CONUS-12km step
  int nsteps = 6;

  // Microphysics.
  int nkr = 33;
  fsbm::Version version = fsbm::Version::kV1LookupOnDemand;
  fsbm::FsbmParams fsbm_params;

  /// How host loop nests are dispatched within a rank (WRF's OpenMP
  /// layer): serial | threads[:N] | device | hetero[:N].  Independent of
  /// `version`, which picks which FSBM passes are *offloaded*; `exec`
  /// parallelizes whatever stays on the host (physics for v0/v1,
  /// sedimentation, advection, halo pack/unpack).  hetero[:N] adds a
  /// predicate split of the offloaded collision pass: coal-active row
  /// tiles go to the device shard, the cheap remainder runs on an
  /// N-thread host shard concurrently, with shard-granular transfers
  /// (bitwise identical to device and threads:N — tests/test_exec.cpp).
  /// Parse with exec::ExecConfig::parse.
  exec::ExecConfig exec;

  /// The `halo=` knob: sync posts and completes each stage's exchange
  /// before any tendency; overlap computes interior tiles between the
  /// HaloExchange begin/finish phases (bitwise-identical results —
  /// asserted in tests/test_halo_overlap.cpp).  Parse with
  /// dyn::parse_halo_mode / dyn::halo_mode_from_args.
  dyn::HaloMode halo_mode = dyn::HaloMode::kSync;

  /// The `phys=` knob: bin runs the full FSBM chain in every cell (the
  /// default); bulk runs the corrected Kessler scheme everywhere;
  /// hybrid adapts per cell — active/precipitating cells run the bin
  /// chain, the calm remainder runs Kessler, with hysteresis so cells
  /// don't flap (fsbm/hybrid.hpp).  phys=hybrid with an all-bin
  /// fidelity override is bitwise identical to phys=bin — asserted in
  /// tests/test_hybrid.cpp.  Parse with fsbm::parse_phys /
  /// fsbm::phys_from_args.  Tunables live in fsbm_params.hybrid.
  fsbm::PhysScheme phys = fsbm::PhysScheme::kBin;

  /// The `sed=` knob: column dispatches sedimentation one column at a
  /// time (the unamortized oracle); block:N gathers N columns per tile
  /// into a per-thread SoA block and runs the blocked solver with
  /// lockstep CFL sub-stepping (bitwise-identical state and stats —
  /// asserted in tests/test_fsbm_properties.cpp and tests/test_exec.cpp).
  /// Parse with fsbm::SedDispatch::parse / fsbm::sed_from_args.
  fsbm::SedDispatch sed;

  /// The `res=` knob: step re-maps every offloaded field h2d/d2h around
  /// each collision launch (the paper's as-ported behavior); persist
  /// keeps the fields resident on the device across steps with per-field
  /// dirty tracking, so steady-state traffic shrinks to dirty strips
  /// (bitwise-identical state and physics stats either way — asserted in
  /// tests/test_exec.cpp).  A no-op for the host-only versions.  Parse
  /// with mem::parse_residency / mem::residency_from_args.
  mem::ResidencyMode res = mem::ResidencyMode::kStep;

  /// The `fuse=` knob: cross-pass kernel fusion (exec/passgraph.hpp).
  /// auto fuses adjacent device passes whose legality the analyzer
  /// proves over their embedded kernel sources (cond+coal when
  /// offload_condensation is on); off keeps one launch per pass.
  /// Bitwise-identical state and physics stats either way — asserted in
  /// tests/test_fusion.cpp.  Parse with exec::parse_fuse /
  /// exec::fuse_from_args.
  exec::FuseMode fuse = exec::FuseMode::kOff;

  /// The `obs=` knob: off records nothing (bitwise identical to a build
  /// without the hooks — asserted in tests/test_obs.cpp); metrics
  /// collects the per-step time series + metric registry and writes
  /// metrics JSONL; trace additionally records spans for every pass
  /// dispatch, halo round, transfer, kernel launch, and fidelity flip,
  /// and writes Chrome trace-event JSON (Perfetto-loadable).  Neither
  /// mode changes physics.  Parse with obs::ObsConfig::parse /
  /// obs::obs_from_args.
  obs::ObsConfig obs;

  /// The `tune=` knob: off runs the knobs exactly as set (the default);
  /// file:<path> loads a tuned.json artifact (src/tune) and overwrites
  /// the performance-neutral knobs (exec/halo/sed/res/fuse) with the
  /// entry matching this config's tune::shape_key, erroring if the file
  /// is missing or malformed; auto does the same from ./tuned.json but
  /// treats a missing file as "not tuned yet" (no-op).  Applying a
  /// tuned entry is bitwise identical to setting the same knobs
  /// explicitly — asserted in tests/test_tune.cpp.  Parse with
  /// tune::TuneSpec::parse / tune::tune_from_args.
  tune::TuneSpec tune;

  // Decomposition.
  int npx = 2;
  int npy = 2;
  int halo = 3;

  // Device environment (Table II): the paper raises both limits.
  gpu::DeviceSpec device_spec = gpu::DeviceSpec::a100_40gb();
  std::uint64_t stack_bytes = 65536;        ///< NV_ACC_CUDA_STACKSIZE
  std::uint64_t heap_bytes = 64ull << 20;   ///< NV_ACC_CUDA_HEAPSIZE
  int ngpus = 4;                            ///< physical GPUs available

  std::uint64_t seed = 20240911;  ///< case-generator seed (arXiv date)

  int nranks() const noexcept { return npx * npy; }
  grid::Domain domain() const {
    return grid::Domain{Range{1, nx}, Range{1, nz}, Range{1, ny}};
  }
  bool offloaded() const noexcept {
    return version == fsbm::Version::kV2Offload2 ||
           version == fsbm::Version::kV3Offload3 ||
           version == fsbm::Version::kV3NaiveCollapse3;
  }

  /// The paper's full-size test case (Section IV).
  static RunConfig conus12km_full() {
    RunConfig c;
    c.nx = 425;
    c.ny = 300;
    c.nz = 50;
    c.npx = 4;
    c.npy = 4;
    return c;
  }

  /// Validate and throw ConfigError with a precise message on problems.
  void validate() const;

  std::string describe() const;
};

}  // namespace wrf::model
