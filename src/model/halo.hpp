#pragma once
// Halo exchange between neighboring patches over simpi.
//
// WRF's HALO_* registry generates pack/exchange/unpack code per field
// set; here the same job is done generically for Field3D/Field4D.  The
// protocol is deadlock-free with simpi's buffered sends: every rank
// first posts all its sends, then receives from each interior neighbor.
// Message tags encode (sequence, side) so multiple fields can be
// exchanged back-to-back.

#include <vector>

#include "exec/exec.hpp"
#include "grid/decomp.hpp"
#include "par/simpi.hpp"
#include "util/field.hpp"

namespace wrf::model {

/// Exchange one 3-D field's halos with all interior neighbors.
/// `seq` must be unique per field within one exchange round.  Pack and
/// unpack loops dispatch through `ex` (nullptr = serial); every buffer
/// slot is written by exactly one cell, so any execution space is safe.
void exchange_halo(par::RankCtx& ctx, const grid::Patch& patch,
                   Field3D<float>& q, int seq,
                   exec::ExecSpace* ex = nullptr);

/// Exchange one 4-D (bin) field's halos.
void exchange_halo_bins(par::RankCtx& ctx, const grid::Patch& patch,
                        Field4D<float>& q, int seq,
                        exec::ExecSpace* ex = nullptr);

/// Bytes one rank sends per full exchange of the given field shapes —
/// used by the communication model without running the exchange.
std::uint64_t halo_bytes_per_exchange(const grid::Patch& patch, int nk,
                                      int nfields3d, int nfields4d, int nkr);

}  // namespace wrf::model
