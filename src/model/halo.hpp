#pragma once
// Halo exchange between neighboring patches over simpi.
//
// WRF's HALO_* registry generates pack/exchange/unpack code per field
// set; here the same job is done generically for Field3D/Field4D by a
// `HaloExchange` plan object built once per rank from the patch and the
// registered field set.  One exchange round is two phases:
//
//   begin()  — pack every field's send strips (via ExecSpace) and post
//              all isends and irecvs for the round: qv and every bin
//              field in one round, nothing waited on;
//   finish() — wait_all on the receives and unpack.
//
// Device residency (res=persist): when a mem::DataRegion is bound, the
// exchange is where host and device copies genuinely trade bytes in a
// device-resident port — `begin` flushes the device-dirty send strips
// d2h before packing them, and `finish` marks exactly the unpacked
// shell-strip rows host-dirty at strip-row granularity, so the next
// device-consuming pass pulls only those rows h2d and interior cells
// never re-transfer.
//
// Between the two phases the caller may compute on interior cells (the
// comms/compute overlap of dyn::Rk3 under halo=overlap); calling them
// back to back is the classic blocking exchange.  The protocol is
// deadlock-free with simpi's buffered sends, and message tags are a
// pure function of (round, field, side) — bounded, with no per-step
// "sequence counter" growth — so rounds may proceed without a barrier:
// simpi's non-overtaking rule keeps same-tag messages from consecutive
// rounds ordered, and the round parity in the tag keeps the tag space
// finite.

#include <array>
#include <cstdint>
#include <vector>

#include "exec/exec.hpp"
#include "grid/decomp.hpp"
#include "mem/residency.hpp"
#include "par/simpi.hpp"
#include "util/field.hpp"

namespace wrf::model {

/// Per-rank halo-exchange plan for a fixed field set.
class HaloExchange {
 public:
  /// Pack/unpack loops dispatch through `ex` (nullptr = serial); every
  /// buffer slot is written by exactly one cell, so any execution space
  /// is safe.
  explicit HaloExchange(const grid::Patch& patch,
                        exec::ExecSpace* ex = nullptr);

  /// Register fields.  Registration order defines the field index used
  /// in tags, so every rank must register the same set in the same
  /// order.  Pointers must stay valid for the plan's lifetime.
  /// `rf` is the field's registration in a bound device data region
  /// (kInvalidField when the field is not device-resident).
  void add(Field3D<float>* q, mem::FieldId rf = mem::kInvalidField);
  void add_bins(Field4D<float>* q, mem::FieldId rf = mem::kInvalidField);

  /// Bind the device data region dirty marks flow through (res=persist).
  /// nullptr (the default) disables residency accounting entirely.
  void set_region(mem::DataRegion* region) noexcept { region_ = region; }

  int fields() const noexcept { return static_cast<int>(entries_.size()); }

  /// Phase 1: pack and post all isends, then post all irecvs, for every
  /// registered field — one round, nothing blocking.
  void begin(par::RankCtx& ctx);

  /// Phase 2: wait for all receives of the round and unpack them.
  void finish(par::RankCtx& ctx);

  bool in_flight() const noexcept { return in_flight_; }
  int rounds() const noexcept { return round_; }

  /// Bytes this rank sends in one begin() (interior sides only).
  std::uint64_t bytes_per_round() const noexcept { return bytes_per_round_; }

  /// Message tag for (round, field, side): bounded and bijective over
  /// the in-flight window (at most two rounds can coexist, so round
  /// parity suffices to keep consecutive rounds' tags distinct).
  static int tag(int round, int field, grid::Side side) noexcept {
    return ((round & 1) * kMaxFields + field) * 4 + static_cast<int>(side);
  }
  static constexpr int kMaxFields = 64;

 private:
  struct Entry {
    Field3D<float>* f3 = nullptr;
    Field4D<float>* f4 = nullptr;
    mem::FieldId rf = mem::kInvalidField;  ///< data-region registration
    /// Residency strip rows per side, precomputed at registration (the
    /// rects and field geometry are fixed for the plan's lifetime):
    /// send-rect rows flushed d2h in begin(), recv-rect rows marked
    /// host-dirty in finish() (pull-based — the next consuming pass's
    /// update_to ships them).  Empty unless rf is valid and the side
    /// has a neighbor.
    std::array<std::vector<mem::ByteRange>, 4> send_rows;
    std::array<std::vector<mem::ByteRange>, 4> recv_rows;
  };
  struct PostedRecv {
    par::Request req;
    int field = 0;
    grid::Side side = grid::Side::kWest;  ///< side we receive on
  };

  grid::Patch patch_;
  exec::ExecSpace* ex_;
  mem::DataRegion* region_ = nullptr;
  std::vector<Entry> entries_;
  std::vector<PostedRecv> recvs_;  ///< the round's receives, posting order
  std::uint64_t bytes_per_round_ = 0;
  int round_ = 0;
  bool in_flight_ = false;
};

/// Exchange one 3-D field's halos with all interior neighbors,
/// blocking.  `seq` must be unique per field within one exchange round.
/// Single-field convenience kept for tests; the model driver exchanges
/// its whole field set through a HaloExchange plan.
void exchange_halo(par::RankCtx& ctx, const grid::Patch& patch,
                   Field3D<float>& q, int seq,
                   exec::ExecSpace* ex = nullptr);

/// Exchange one 4-D (bin) field's halos, blocking.
void exchange_halo_bins(par::RankCtx& ctx, const grid::Patch& patch,
                        Field4D<float>& q, int seq,
                        exec::ExecSpace* ex = nullptr);

/// Bytes one rank sends per full exchange of the given field shapes —
/// used by the communication model without running the exchange.
std::uint64_t halo_bytes_per_exchange(const grid::Patch& patch, int nk,
                                      int nfields3d, int nfields4d, int nkr);

/// Byte ranges — one per (k, j) row — of a halo rectangle within a
/// field's storage: the strip granularity of residency dirty marking.
/// Rows ascend in memory order, so DirtySpans inserts stay O(1) and
/// adjacent rows of j-contiguous strips coalesce.
std::vector<mem::ByteRange> rect_rows(const Field3D<float>& q,
                                      const grid::Patch& patch,
                                      const grid::HaloRect& r);
std::vector<mem::ByteRange> rect_rows_bins(const Field4D<float>& q,
                                           const grid::Patch& patch,
                                           const grid::HaloRect& r);

}  // namespace wrf::model
