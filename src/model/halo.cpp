#include "model/halo.hpp"

#include "obs/trace.hpp"

namespace wrf::model {

using grid::Side;

namespace {

constexpr int kSides = 4;

/// Legacy single-field tag: (sequence, side), used only by the blocking
/// convenience functions below (disjoint from HaloExchange tags only
/// within one test's traffic — don't mix the two on one RankCtx).
int tag_for(int seq, Side s) { return seq * kSides + static_cast<int>(s); }

/// The (i, k, j) iteration space of one halo strip, in buffer order.
exec::Range3 rect_range(const grid::Patch& patch, const grid::HaloRect& r) {
  return exec::Range3{r.i, patch.k, r.j};
}

/// Flat buffer slot of a cell within the strip (i fastest, then k, then
/// j — the legacy pack order, kept so message layout is unchanged).
std::size_t rect_slot(const grid::Patch& patch, const grid::HaloRect& r,
                      int i, int k, int j) {
  return (static_cast<std::size_t>(j - r.j.lo) * patch.k.size() +
          static_cast<std::size_t>(k - patch.k.lo)) *
             r.i.size() +
         static_cast<std::size_t>(i - r.i.lo);
}

exec::LaunchParams pack_params(const char* name) {
  exec::LaunchParams lp;
  lp.name = name;
  lp.collapse = 3;
  return lp;
}

std::vector<float> pack(exec::ExecSpace& ex, const Field3D<float>& q,
                        const grid::Patch& patch, const grid::HaloRect& r) {
  std::vector<float> buf(static_cast<std::size_t>(r.cells(patch.k.size())));
  ex.parallel_for(rect_range(patch, r), pack_params("halo_pack"),
                  [&](int i, int k, int j) {
                    buf[rect_slot(patch, r, i, k, j)] = q(i, k, j);
                  });
  return buf;
}

void unpack(exec::ExecSpace& ex, Field3D<float>& q, const grid::Patch& patch,
            const grid::HaloRect& r, const std::vector<float>& buf) {
  ex.parallel_for(rect_range(patch, r), pack_params("halo_unpack"),
                  [&](int i, int k, int j) {
                    q(i, k, j) = buf[rect_slot(patch, r, i, k, j)];
                  });
}

std::vector<float> pack_bins(exec::ExecSpace& ex, const Field4D<float>& q,
                             const grid::Patch& patch,
                             const grid::HaloRect& r) {
  const int nb = q.n();
  std::vector<float> buf(static_cast<std::size_t>(r.cells(patch.k.size())) *
                         nb);
  ex.parallel_for(rect_range(patch, r), pack_params("halo_pack_bins"),
                  [&](int i, int k, int j) {
                    const float* s = q.slice(i, k, j);
                    float* d = &buf[rect_slot(patch, r, i, k, j) * nb];
                    for (int b = 0; b < nb; ++b) d[b] = s[b];
                  });
  return buf;
}

void unpack_bins(exec::ExecSpace& ex, Field4D<float>& q,
                 const grid::Patch& patch, const grid::HaloRect& r,
                 const std::vector<float>& buf) {
  const int nb = q.n();
  ex.parallel_for(rect_range(patch, r), pack_params("halo_unpack_bins"),
                  [&](int i, int k, int j) {
                    const float* s = &buf[rect_slot(patch, r, i, k, j) * nb];
                    float* d = q.slice(i, k, j);
                    for (int b = 0; b < nb; ++b) d[b] = s[b];
                  });
}

}  // namespace

namespace {
/// Shared row walk of rect_rows/rect_rows_bins: one ByteRange of `len`
/// bytes per (k, j) row, offsets from `row_off(k, j)`, ascending in
/// memory order (the sorted-disjoint precondition of
/// DirtySpans::take_ranges).
template <typename RowOff>
std::vector<mem::ByteRange> strip_rows(const grid::Patch& patch,
                                       const grid::HaloRect& r,
                                       std::uint64_t len, RowOff row_off) {
  std::vector<mem::ByteRange> rows;
  if (len == 0) return rows;
  rows.reserve(static_cast<std::size_t>(r.j.size()) * patch.k.size());
  for (int j = r.j.lo; j <= r.j.hi; ++j) {
    for (int k = patch.k.lo; k <= patch.k.hi; ++k) {
      rows.push_back({row_off(k, j), len});
    }
  }
  return rows;
}
}  // namespace

std::vector<mem::ByteRange> rect_rows(const Field3D<float>& q,
                                      const grid::Patch& patch,
                                      const grid::HaloRect& r) {
  return strip_rows(
      patch, r, static_cast<std::uint64_t>(r.i.size()) * sizeof(float),
      [&](int k, int j) { return q.index(r.i.lo, k, j) * sizeof(float); });
}

std::vector<mem::ByteRange> rect_rows_bins(const Field4D<float>& q,
                                           const grid::Patch& patch,
                                           const grid::HaloRect& r) {
  return strip_rows(
      patch, r,
      static_cast<std::uint64_t>(r.i.size()) *
          static_cast<std::uint64_t>(q.n()) * sizeof(float),
      [&](int k, int j) { return q.index(0, r.i.lo, k, j) * sizeof(float); });
}

// ------------------------------------------------------------ HaloExchange

HaloExchange::HaloExchange(const grid::Patch& patch, exec::ExecSpace* ex)
    : patch_(patch), ex_(ex) {}

void HaloExchange::add(Field3D<float>* q, mem::FieldId rf) {
  if (q == nullptr) throw Error("HaloExchange::add: null field");
  if (fields() >= kMaxFields) throw Error("HaloExchange: too many fields");
  Entry e;
  e.f3 = q;
  e.rf = rf;
  if (rf != mem::kInvalidField) {
    for (int s = 0; s < kSides; ++s) {
      if (patch_.neighbor[s] < 0) continue;
      const auto side = static_cast<Side>(s);
      e.send_rows[static_cast<std::size_t>(s)] =
          rect_rows(*q, patch_, patch_.send_rect(side));
      e.recv_rows[static_cast<std::size_t>(s)] =
          rect_rows(*q, patch_, patch_.recv_rect(side));
    }
  }
  entries_.push_back(std::move(e));
  for (int s = 0; s < kSides; ++s) {
    if (patch_.neighbor[s] < 0) continue;
    bytes_per_round_ +=
        static_cast<std::uint64_t>(
            patch_.send_rect(static_cast<Side>(s)).cells(patch_.k.size())) *
        sizeof(float);
  }
}

void HaloExchange::add_bins(Field4D<float>* q, mem::FieldId rf) {
  if (q == nullptr) throw Error("HaloExchange::add_bins: null field");
  if (fields() >= kMaxFields) throw Error("HaloExchange: too many fields");
  Entry e;
  e.f4 = q;
  e.rf = rf;
  if (rf != mem::kInvalidField) {
    for (int s = 0; s < kSides; ++s) {
      if (patch_.neighbor[s] < 0) continue;
      const auto side = static_cast<Side>(s);
      e.send_rows[static_cast<std::size_t>(s)] =
          rect_rows_bins(*q, patch_, patch_.send_rect(side));
      e.recv_rows[static_cast<std::size_t>(s)] =
          rect_rows_bins(*q, patch_, patch_.recv_rect(side));
    }
  }
  entries_.push_back(std::move(e));
  for (int s = 0; s < kSides; ++s) {
    if (patch_.neighbor[s] < 0) continue;
    bytes_per_round_ +=
        static_cast<std::uint64_t>(
            patch_.send_rect(static_cast<Side>(s)).cells(patch_.k.size())) *
        q->n() * sizeof(float);
  }
}

void HaloExchange::begin(par::RankCtx& ctx) {
  if (in_flight_) {
    throw Error("HaloExchange::begin: previous round not finished");
  }
  OBS_SPAN("halo", "begin",
           {{"round", round_},
            {"bytes", bytes_per_round_},
            {"fields", fields()}});
  in_flight_ = true;
  exec::ExecSpace& space = ex_ != nullptr ? *ex_ : exec::serial();
  // All sends first (eager-buffered: posting order is deadlock-free),
  // field-major so every rank walks the same (field, side) schedule.
  for (int f = 0; f < fields(); ++f) {
    const Entry& e = entries_[static_cast<std::size_t>(f)];
    for (int s = 0; s < kSides; ++s) {
      const auto side = static_cast<Side>(s);
      const int nbr = patch_.neighbor[s];
      if (nbr < 0) continue;
      const grid::HaloRect rect = patch_.send_rect(side);
      if (region_ != nullptr && e.rf != mem::kInvalidField &&
          region_->device_dirty_bytes(e.rf) > 0) {
        // The pack reads host memory: flush the send strip's device-
        // computed bytes d2h first (only the device-dirty ones).  A
        // clean field skips entirely — the common case under host exec
        // spaces, where the coal pass already flushed.
        region_->update_from_ranges(e.rf,
                                    e.send_rows[static_cast<std::size_t>(s)]);
      }
      ctx.isend(nbr, tag(round_, f, side),
                e.f3 != nullptr ? pack(space, *e.f3, patch_, rect)
                                : pack_bins(space, *e.f4, patch_, rect));
    }
  }
  // Then every receive of the round, none waited on: the whole round is
  // in flight before any unpack.
  for (int f = 0; f < fields(); ++f) {
    for (int s = 0; s < kSides; ++s) {
      const auto side = static_cast<Side>(s);
      const int nbr = patch_.neighbor[s];
      if (nbr < 0) continue;
      // The neighbor tagged its message with the side *it* sent on.
      PostedRecv pr;
      pr.req = ctx.irecv(nbr, tag(round_, f, grid::opposite(side)));
      pr.field = f;
      pr.side = side;
      recvs_.push_back(pr);
    }
  }
}

void HaloExchange::finish(par::RankCtx& ctx) {
  if (!in_flight_) {
    throw Error("HaloExchange::finish: no round in flight");
  }
  obs::Span span(obs::active(), "halo", "finish",
                 {{"round", round_}, {"bytes", bytes_per_round_}});
  const double wait0 = obs::active() ? ctx.stats().wait_sec : 0.0;
  exec::ExecSpace& space = ex_ != nullptr ? *ex_ : exec::serial();
  // Drain in posting order (this is where overlap shows up as reduced
  // wait_sec); unpack rectangles are disjoint, order deterministic.
  for (auto& pr : recvs_) {
    const std::vector<float> buf = pr.req.wait();
    const Entry& e = entries_[static_cast<std::size_t>(pr.field)];
    const grid::HaloRect rect = patch_.recv_rect(pr.side);
    if (e.f3 != nullptr) {
      unpack(space, *e.f3, patch_, rect, buf);
    } else {
      unpack_bins(space, *e.f4, patch_, rect, buf);
    }
    if (region_ != nullptr && e.rf != mem::kInvalidField) {
      // The unpack wrote host memory: mark exactly the shell-strip rows
      // host-dirty — interior cells never re-transfer.  No eager h2d
      // push: coherence is pull-based, so the next device-consuming
      // pass's update_to ships the strips (once, batched per field)
      // exactly when a kernel actually reads them.
      region_->mark_host_dirty_ranges(
          e.rf, e.recv_rows[static_cast<std::size_t>(pr.side)]);
    }
  }
  recvs_.clear();
  ++round_;
  in_flight_ = false;
  if (obs::active() != nullptr) {
    span.arg("wait_us", static_cast<std::int64_t>(
                            (ctx.stats().wait_sec - wait0) * 1e6));
  }
}

// ------------------------------------------- single-field conveniences

void exchange_halo(par::RankCtx& ctx, const grid::Patch& patch,
                   Field3D<float>& q, int seq, exec::ExecSpace* ex) {
  exec::ExecSpace& space = ex != nullptr ? *ex : exec::serial();
  // Post all sends and receives first (nonblocking), then drain: the
  // one-field version of the HaloExchange round.
  std::vector<par::Request> reqs;
  for (int s = 0; s < kSides; ++s) {
    const auto side = static_cast<Side>(s);
    const int nbr = patch.neighbor[s];
    if (nbr < 0) continue;
    ctx.isend(nbr, tag_for(seq, side),
              pack(space, q, patch, patch.send_rect(side)));
  }
  for (int s = 0; s < kSides; ++s) {
    const auto side = static_cast<Side>(s);
    const int nbr = patch.neighbor[s];
    if (nbr < 0) continue;
    reqs.push_back(ctx.irecv(nbr, tag_for(seq, grid::opposite(side))));
  }
  std::size_t r = 0;
  for (int s = 0; s < kSides; ++s) {
    const auto side = static_cast<Side>(s);
    if (patch.neighbor[s] < 0) continue;
    unpack(space, q, patch, patch.recv_rect(side), reqs[r++].wait());
  }
}

void exchange_halo_bins(par::RankCtx& ctx, const grid::Patch& patch,
                        Field4D<float>& q, int seq, exec::ExecSpace* ex) {
  exec::ExecSpace& space = ex != nullptr ? *ex : exec::serial();
  std::vector<par::Request> reqs;
  for (int s = 0; s < kSides; ++s) {
    const auto side = static_cast<Side>(s);
    const int nbr = patch.neighbor[s];
    if (nbr < 0) continue;
    ctx.isend(nbr, tag_for(seq, side),
              pack_bins(space, q, patch, patch.send_rect(side)));
  }
  for (int s = 0; s < kSides; ++s) {
    const auto side = static_cast<Side>(s);
    const int nbr = patch.neighbor[s];
    if (nbr < 0) continue;
    reqs.push_back(ctx.irecv(nbr, tag_for(seq, grid::opposite(side))));
  }
  std::size_t r = 0;
  for (int s = 0; s < kSides; ++s) {
    const auto side = static_cast<Side>(s);
    if (patch.neighbor[s] < 0) continue;
    unpack_bins(space, q, patch, patch.recv_rect(side), reqs[r++].wait());
  }
}

std::uint64_t halo_bytes_per_exchange(const grid::Patch& patch, int nk,
                                      int nfields3d, int nfields4d,
                                      int nkr) {
  std::uint64_t cells = 0;
  for (int s = 0; s < kSides; ++s) {
    if (patch.neighbor[s] < 0) continue;
    cells += static_cast<std::uint64_t>(
        patch.send_rect(static_cast<Side>(s)).cells(nk));
  }
  return cells * sizeof(float) *
         (static_cast<std::uint64_t>(nfields3d) +
          static_cast<std::uint64_t>(nfields4d) * nkr);
}

}  // namespace wrf::model
