#include "model/halo.hpp"

namespace wrf::model {

using grid::Side;

namespace {

constexpr int kSides = 4;

int tag_for(int seq, Side s) { return seq * kSides + static_cast<int>(s); }

/// The (i, k, j) iteration space of one halo strip, in buffer order.
exec::Range3 rect_range(const grid::Patch& patch, const grid::HaloRect& r) {
  return exec::Range3{r.i, patch.k, r.j};
}

/// Flat buffer slot of a cell within the strip (i fastest, then k, then
/// j — the legacy pack order, kept so message layout is unchanged).
std::size_t rect_slot(const grid::Patch& patch, const grid::HaloRect& r,
                      int i, int k, int j) {
  return (static_cast<std::size_t>(j - r.j.lo) * patch.k.size() +
          static_cast<std::size_t>(k - patch.k.lo)) *
             r.i.size() +
         static_cast<std::size_t>(i - r.i.lo);
}

exec::LaunchParams pack_params(const char* name) {
  exec::LaunchParams lp;
  lp.name = name;
  lp.collapse = 3;
  return lp;
}

std::vector<float> pack(exec::ExecSpace& ex, const Field3D<float>& q,
                        const grid::Patch& patch, const grid::HaloRect& r) {
  std::vector<float> buf(static_cast<std::size_t>(r.cells(patch.k.size())));
  ex.parallel_for(rect_range(patch, r), pack_params("halo_pack"),
                  [&](int i, int k, int j) {
                    buf[rect_slot(patch, r, i, k, j)] = q(i, k, j);
                  });
  return buf;
}

void unpack(exec::ExecSpace& ex, Field3D<float>& q, const grid::Patch& patch,
            const grid::HaloRect& r, const std::vector<float>& buf) {
  ex.parallel_for(rect_range(patch, r), pack_params("halo_unpack"),
                  [&](int i, int k, int j) {
                    q(i, k, j) = buf[rect_slot(patch, r, i, k, j)];
                  });
}

std::vector<float> pack_bins(exec::ExecSpace& ex, const Field4D<float>& q,
                             const grid::Patch& patch,
                             const grid::HaloRect& r) {
  const int nb = q.n();
  std::vector<float> buf(static_cast<std::size_t>(r.cells(patch.k.size())) *
                         nb);
  ex.parallel_for(rect_range(patch, r), pack_params("halo_pack_bins"),
                  [&](int i, int k, int j) {
                    const float* s = q.slice(i, k, j);
                    float* d = &buf[rect_slot(patch, r, i, k, j) * nb];
                    for (int b = 0; b < nb; ++b) d[b] = s[b];
                  });
  return buf;
}

void unpack_bins(exec::ExecSpace& ex, Field4D<float>& q,
                 const grid::Patch& patch, const grid::HaloRect& r,
                 const std::vector<float>& buf) {
  const int nb = q.n();
  ex.parallel_for(rect_range(patch, r), pack_params("halo_unpack_bins"),
                  [&](int i, int k, int j) {
                    const float* s = &buf[rect_slot(patch, r, i, k, j) * nb];
                    float* d = q.slice(i, k, j);
                    for (int b = 0; b < nb; ++b) d[b] = s[b];
                  });
}

}  // namespace

void exchange_halo(par::RankCtx& ctx, const grid::Patch& patch,
                   Field3D<float>& q, int seq, exec::ExecSpace* ex) {
  exec::ExecSpace& space = ex != nullptr ? *ex : exec::serial();
  // Post all sends first (buffered), then receive: no ordering deadlock.
  for (int s = 0; s < kSides; ++s) {
    const auto side = static_cast<Side>(s);
    const int nbr = patch.neighbor[s];
    if (nbr < 0) continue;
    ctx.send(nbr, tag_for(seq, side),
             pack(space, q, patch, patch.send_rect(side)));
  }
  for (int s = 0; s < kSides; ++s) {
    const auto side = static_cast<Side>(s);
    const int nbr = patch.neighbor[s];
    if (nbr < 0) continue;
    // The neighbor tagged its message with the side *it* sent on.
    const auto buf = ctx.recv(nbr, tag_for(seq, grid::opposite(side)));
    unpack(space, q, patch, patch.recv_rect(side), buf);
  }
}

void exchange_halo_bins(par::RankCtx& ctx, const grid::Patch& patch,
                        Field4D<float>& q, int seq, exec::ExecSpace* ex) {
  exec::ExecSpace& space = ex != nullptr ? *ex : exec::serial();
  for (int s = 0; s < kSides; ++s) {
    const auto side = static_cast<Side>(s);
    const int nbr = patch.neighbor[s];
    if (nbr < 0) continue;
    ctx.send(nbr, tag_for(seq, side),
             pack_bins(space, q, patch, patch.send_rect(side)));
  }
  for (int s = 0; s < kSides; ++s) {
    const auto side = static_cast<Side>(s);
    const int nbr = patch.neighbor[s];
    if (nbr < 0) continue;
    const auto buf = ctx.recv(nbr, tag_for(seq, grid::opposite(side)));
    unpack_bins(space, q, patch, patch.recv_rect(side), buf);
  }
}

std::uint64_t halo_bytes_per_exchange(const grid::Patch& patch, int nk,
                                      int nfields3d, int nfields4d,
                                      int nkr) {
  std::uint64_t cells = 0;
  for (int s = 0; s < kSides; ++s) {
    if (patch.neighbor[s] < 0) continue;
    cells += static_cast<std::uint64_t>(
        patch.send_rect(static_cast<Side>(s)).cells(nk));
  }
  return cells * sizeof(float) *
         (static_cast<std::uint64_t>(nfields3d) +
          static_cast<std::uint64_t>(nfields4d) * nkr);
}

}  // namespace wrf::model
