#include "model/halo.hpp"

namespace wrf::model {

using grid::Side;

namespace {

constexpr int kSides = 4;

int tag_for(int seq, Side s) { return seq * kSides + static_cast<int>(s); }

std::vector<float> pack(const Field3D<float>& q, const grid::Patch& patch,
                        const grid::HaloRect& r) {
  std::vector<float> buf;
  buf.reserve(static_cast<std::size_t>(r.cells(patch.k.size())));
  for (int j = r.j.lo; j <= r.j.hi; ++j) {
    for (int k = patch.k.lo; k <= patch.k.hi; ++k) {
      for (int i = r.i.lo; i <= r.i.hi; ++i) buf.push_back(q(i, k, j));
    }
  }
  return buf;
}

void unpack(Field3D<float>& q, const grid::Patch& patch,
            const grid::HaloRect& r, const std::vector<float>& buf) {
  std::size_t n = 0;
  for (int j = r.j.lo; j <= r.j.hi; ++j) {
    for (int k = patch.k.lo; k <= patch.k.hi; ++k) {
      for (int i = r.i.lo; i <= r.i.hi; ++i) q(i, k, j) = buf[n++];
    }
  }
}

std::vector<float> pack_bins(const Field4D<float>& q,
                             const grid::Patch& patch,
                             const grid::HaloRect& r) {
  const int nb = q.n();
  std::vector<float> buf;
  buf.reserve(static_cast<std::size_t>(r.cells(patch.k.size())) * nb);
  for (int j = r.j.lo; j <= r.j.hi; ++j) {
    for (int k = patch.k.lo; k <= patch.k.hi; ++k) {
      for (int i = r.i.lo; i <= r.i.hi; ++i) {
        const float* s = q.slice(i, k, j);
        buf.insert(buf.end(), s, s + nb);
      }
    }
  }
  return buf;
}

void unpack_bins(Field4D<float>& q, const grid::Patch& patch,
                 const grid::HaloRect& r, const std::vector<float>& buf) {
  const int nb = q.n();
  std::size_t n = 0;
  for (int j = r.j.lo; j <= r.j.hi; ++j) {
    for (int k = patch.k.lo; k <= patch.k.hi; ++k) {
      for (int i = r.i.lo; i <= r.i.hi; ++i) {
        float* d = q.slice(i, k, j);
        for (int b = 0; b < nb; ++b) d[b] = buf[n++];
      }
    }
  }
}

}  // namespace

void exchange_halo(par::RankCtx& ctx, const grid::Patch& patch,
                   Field3D<float>& q, int seq) {
  // Post all sends first (buffered), then receive: no ordering deadlock.
  for (int s = 0; s < kSides; ++s) {
    const auto side = static_cast<Side>(s);
    const int nbr = patch.neighbor[s];
    if (nbr < 0) continue;
    ctx.send(nbr, tag_for(seq, side), pack(q, patch, patch.send_rect(side)));
  }
  for (int s = 0; s < kSides; ++s) {
    const auto side = static_cast<Side>(s);
    const int nbr = patch.neighbor[s];
    if (nbr < 0) continue;
    // The neighbor tagged its message with the side *it* sent on.
    const auto buf = ctx.recv(nbr, tag_for(seq, grid::opposite(side)));
    unpack(q, patch, patch.recv_rect(side), buf);
  }
}

void exchange_halo_bins(par::RankCtx& ctx, const grid::Patch& patch,
                        Field4D<float>& q, int seq) {
  for (int s = 0; s < kSides; ++s) {
    const auto side = static_cast<Side>(s);
    const int nbr = patch.neighbor[s];
    if (nbr < 0) continue;
    ctx.send(nbr, tag_for(seq, side),
             pack_bins(q, patch, patch.send_rect(side)));
  }
  for (int s = 0; s < kSides; ++s) {
    const auto side = static_cast<Side>(s);
    const int nbr = patch.neighbor[s];
    if (nbr < 0) continue;
    const auto buf = ctx.recv(nbr, tag_for(seq, grid::opposite(side)));
    unpack_bins(q, patch, patch.recv_rect(side), buf);
  }
}

std::uint64_t halo_bytes_per_exchange(const grid::Patch& patch, int nk,
                                      int nfields3d, int nfields4d,
                                      int nkr) {
  std::uint64_t cells = 0;
  for (int s = 0; s < kSides; ++s) {
    if (patch.neighbor[s] < 0) continue;
    cells += static_cast<std::uint64_t>(
        patch.send_rect(static_cast<Side>(s)).cells(nk));
  }
  return cells * sizeof(float) *
         (static_cast<std::uint64_t>(nfields3d) +
          static_cast<std::uint64_t>(nfields4d) * nkr);
}

}  // namespace wrf::model
