// Forecast service demo: many scenario jobs, one shared pool.
//
// An operational center does not run one forecast at a time.  It runs a
// mixed stream — an on-demand nowcast with a deadline, a perturbed
// ensemble, low-priority reanalysis — over one fixed allocation of
// ranks and GPUs.  This example drives svc::Scheduler through exactly
// that stream and then *audits* the service guarantees:
//
//   * the over-DRAM scenario is rejected at admission with a typed
//     reason (never killed mid-run by the residency OOM check);
//   * same-shape ensemble members ride shared lane dispatches;
//   * every completed job's state hash is bitwise identical to a
//     standalone model::run_single of the recorded config.
//
// Exits non-zero if any guarantee fails, so CI can run it as a check.
//
// Build & run:
//   cmake --build build && ./build/forecast_service [lanes=N]
//                                                   [obs=metrics|trace[:path]]
//                                                   [tune=auto|file:tuned.json]
//
// With obs on, the scheduler writes obs_service.prom (Prometheus text) at
// shutdown; obs=trace additionally writes a Chrome/Perfetto trace with one
// track per lane.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "svc/scheduler.hpp"

using namespace wrf;

namespace {

model::RunConfig scenario(int nx, int ny, int nz, int nsteps,
                          fsbm::Version v, mem::ResidencyMode res,
                          std::uint64_t seed) {
  model::RunConfig cfg;
  cfg.nx = nx;
  cfg.ny = ny;
  cfg.nz = nz;
  cfg.nsteps = nsteps;
  cfg.npx = cfg.npy = 1;
  cfg.version = v;
  cfg.res = res;
  cfg.seed = seed;
  return cfg;
}

int lanes_from_args(int argc, char** argv) {
  for (int n = 1; n < argc; ++n) {
    if (std::strncmp(argv[n], "lanes=", 6) == 0) {
      return std::atoi(argv[n] + 6);
    }
  }
  return 2;
}

const char* outcome_name(svc::JobOutcome o) {
  switch (o) {
    case svc::JobOutcome::kCompleted: return "completed";
    case svc::JobOutcome::kRejected: return "REJECTED";
    case svc::JobOutcome::kFailed: return "FAILED";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  svc::SchedulerConfig sc;
  sc.lanes = lanes_from_args(argc, argv);
  sc.batch_max = 4;
  sc.start_paused = true;  // submit the whole stream, then release it
  sc.obs = obs::obs_from_args(argc, argv);  // off | metrics | trace[:path]
  sc.tune = tune::tune_from_args(argc, argv);  // off | auto | file:<path>

  std::printf("miniWRF-SBM forecast service\n============================\n");
  std::printf("pool: %d lanes of %s (%.1f GB DRAM each)\n",
              sc.lanes, sc.lane_spec.name.c_str(),
              static_cast<double>(sc.lane_spec.dram_bytes) / (1u << 30));
  std::printf("fair-share weights: interactive %.0f / ensemble %.0f / "
              "batch %.0f, batch_max %d\n\n",
              sc.class_weights[0], sc.class_weights[1], sc.class_weights[2],
              sc.batch_max);

  svc::Scheduler sched(sc);
  std::vector<svc::Ticket> tickets;

  // --- the stream -------------------------------------------------------
  // Two on-demand nowcasts with deadlines.
  for (int n = 0; n < 2; ++n) {
    svc::Job job;
    job.name = "nowcast-" + std::to_string(n);
    job.cls = svc::JobClass::kInteractive;
    job.deadline_sec = 120.0;
    job.config = scenario(24, 16, 10, 2, fsbm::Version::kV3Offload3,
                          mem::ResidencyMode::kPersist, 100 + n);
    tickets.push_back(sched.submit(job));
  }
  // A four-member perturbed ensemble: same shape, different seeds —
  // candidates for batched lane dispatches.
  for (int n = 0; n < 4; ++n) {
    svc::Job job;
    job.name = "member-" + std::to_string(n);
    job.cls = svc::JobClass::kEnsemble;
    job.config = scenario(20, 14, 8, 2, fsbm::Version::kV2Offload2,
                          mem::ResidencyMode::kStep, 200 + n);
    tickets.push_back(sched.submit(job));
  }
  // Background reanalysis, host-only, no deadline.
  for (int n = 0; n < 2; ++n) {
    svc::Job job;
    job.name = "reanalysis-" + std::to_string(n);
    job.cls = svc::JobClass::kBatch;
    job.config = scenario(16, 12, 8, 3, fsbm::Version::kV1LookupOnDemand,
                          mem::ResidencyMode::kStep, 300 + n);
    tickets.push_back(sched.submit(job));
  }
  // A continental-scale v3 scenario that cannot fit one lane's device:
  // admission must bounce it with a typed reason before any allocation.
  {
    svc::Job job;
    job.name = "continental-oversize";
    job.cls = svc::JobClass::kBatch;
    job.config = scenario(4000, 3000, 50, 1, fsbm::Version::kV3Offload3,
                          mem::ResidencyMode::kPersist, 400);
    tickets.push_back(sched.submit(job));
  }

  std::printf("submitted %zu jobs", tickets.size());
  int rejected_at_admission = 0;
  for (const svc::Ticket& t : tickets) {
    if (!t.admitted) {
      ++rejected_at_admission;
      std::printf("\n  admission rejected job %llu (%s):\n    %s",
                  static_cast<unsigned long long>(t.id),
                  svc::reject_reason_name(t.reason), t.message.c_str());
    }
  }
  std::printf("\n\n");

  sched.drain();
  const svc::ServiceStats stats = sched.stats();
  sched.shutdown();
  std::vector<svc::JobResult> results = sched.take_results();

  // --- per-job table ----------------------------------------------------
  std::printf("%-22s %-12s %-10s %5s %5s %6s %9s %9s  %s\n",
              "job", "class", "outcome", "lane", "batch", "size",
              "wait_s", "run_s", "deadline");
  for (const svc::JobResult& r : results) {
    if (r.outcome == svc::JobOutcome::kRejected) {
      std::printf("%-22s %-12s %-10s %5s %5s %6s %9s %9s  -\n",
                  r.name.c_str(), svc::job_class_name(r.cls),
                  outcome_name(r.outcome), "-", "-", "-", "-", "-");
      continue;
    }
    std::printf("%-22s %-12s %-10s %5d %5llu %6d %9.3f %9.3f  %s\n",
                r.name.c_str(), svc::job_class_name(r.cls),
                outcome_name(r.outcome), r.lane,
                static_cast<unsigned long long>(r.batch_seq), r.batch_size,
                r.wait_sec(), r.service_sec(),
                !r.has_deadline() ? "-" : r.deadline_met() ? "met" : "MISSED");
  }

  // --- service view -----------------------------------------------------
  std::printf("\nservice stats: %llu submitted, %llu completed, "
              "%llu rejected, %llu failed\n",
              static_cast<unsigned long long>(stats.submitted()),
              static_cast<unsigned long long>(stats.completed()),
              static_cast<unsigned long long>(stats.rejected()),
              static_cast<unsigned long long>(stats.failed()));
  std::printf("dispatches: %llu (%llu batched jobs in %llu batches)\n",
              static_cast<unsigned long long>(stats.dispatches),
              static_cast<unsigned long long>(stats.batched_jobs),
              static_cast<unsigned long long>(stats.batches));
  std::printf("makespan %.3f s, pool parallelism %.2f of %d lanes "
              "(occupancy %.0f%%)\n",
              stats.makespan_sec(), stats.pool_parallelism(), stats.lanes,
              100.0 * stats.occupancy());
  for (int c = 0; c < svc::kNumClasses; ++c) {
    const svc::ClassStats& cs = stats.cls[static_cast<std::size_t>(c)];
    if (cs.submitted == 0) continue;
    const std::uint64_t done = cs.completed + cs.failed;
    std::printf("  %-12s %llu done, mean wait %.3f s (max %.3f), "
                "deadlines met %llu/%llu\n",
                svc::job_class_name(static_cast<svc::JobClass>(c)),
                static_cast<unsigned long long>(done),
                done > 0 ? cs.wait_total_sec / static_cast<double>(done) : 0.0,
                cs.wait_max_sec,
                static_cast<unsigned long long>(cs.deadline_met),
                static_cast<unsigned long long>(cs.deadline_jobs));
  }

  // --- audit the guarantees --------------------------------------------
  int failures = 0;
  if (rejected_at_admission != 1) {
    std::printf("\nFAIL: expected exactly 1 admission rejection, saw %d\n",
                rejected_at_admission);
    ++failures;
  }
  if (stats.batches == 0) {
    std::printf("\nFAIL: no ensemble members were batched\n");
    ++failures;
  }
  std::printf("\nre-running every completed job standalone "
              "(bitwise determinism gate)...\n");
  for (const svc::JobResult& r : results) {
    if (r.outcome != svc::JobOutcome::kCompleted) continue;
    prof::Profiler prof;
    const model::RunResult solo = model::run_single(r.config, prof);
    const std::uint64_t solo_hash = model::state_hash(solo);
    const bool ok = solo_hash == r.state_hash &&
                    solo.totals.fsbm.surface_precip ==
                        r.run.totals.fsbm.surface_precip &&
                    solo.totals.fsbm.cells_active == r.run.totals.fsbm.cells_active;
    std::printf("  %-22s hash %016llx  %s\n", r.name.c_str(),
                static_cast<unsigned long long>(r.state_hash),
                ok ? "== standalone" : "MISMATCH vs standalone");
    if (!ok) ++failures;
  }
  if (stats.failed() != 0) {
    std::printf("FAIL: %llu jobs failed mid-run\n",
                static_cast<unsigned long long>(stats.failed()));
    ++failures;
  }

  std::printf("\n%s\n", failures == 0 ? "all service guarantees hold"
                                      : "SERVICE GUARANTEES VIOLATED");
  return failures == 0 ? 0 : 1;
}
