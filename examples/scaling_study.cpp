// Scenario example: the Section VII-A scaling study for an arbitrary
// machine shape — how many ranks per GPU still pay off, and where the
// equal-resource crossover falls.  This drives the same perfmodel the
// Table VII bench uses, but lets you vary GPUs and rank counts.
//
// Run: ./build/scaling_study [ngpus] [exec=threads:N|hetero:N]
//      [halo=sync|overlap] [obs=trace[:path]]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "model/driver.hpp"
#include "perfmodel/scaling.hpp"

using namespace wrf;

int main(int argc, char** argv) {
  int ngpus = 16;
  for (int a = 1; a < argc; ++a) {
    if (std::string(argv[a]).find('=') != std::string::npos) continue;
    ngpus = std::atoi(argv[a]);
    break;
  }

  // Measure a work profile from a real scaled-down run.
  model::RunConfig cfg;
  cfg.nx = 64;
  cfg.ny = 48;
  cfg.nz = 24;
  cfg.npx = cfg.npy = 2;
  cfg.nsteps = 2;
  cfg.version = fsbm::Version::kV1LookupOnDemand;
  cfg.exec = exec::exec_from_args(argc, argv);
  cfg.halo_mode = dyn::halo_mode_from_args(argc, argv);
  cfg.sed = fsbm::sed_from_args(argc, argv);
  cfg.res = mem::residency_from_args(argc, argv);
  cfg.fuse = exec::fuse_from_args(argc, argv);
  cfg.obs = obs::obs_from_args(argc, argv);  // traces the calibration run
  cfg.tune = tune::tune_from_args(argc, argv);  // off | auto | file:<path>
  prof::Profiler prof;
  const model::RunResult res = model::run_simulation(cfg, prof);

  perfmodel::WorkProfile w;
  const double rank_steps = cfg.nranks() * cfg.nsteps;
  w.cells = 425.0 * 300.0 * 50.0 / 16.0;
  const double scale =
      w.cells / (static_cast<double>(cfg.domain().cells()) / cfg.nranks());
  w.coal_flops = res.totals.fsbm.coal_flops / rank_steps * scale;
  w.coal_flops_v0 = w.coal_flops * 6.0;
  w.cond_nucl_flops =
      (res.totals.fsbm.cond_flops + res.totals.fsbm.nucl_flops) /
      rank_steps * scale;
  w.sed_flops = res.totals.fsbm.sed_flops / rank_steps * scale;
  w.adv_flops = (res.totals.dyn.tend.flops + res.totals.dyn.update.flops) /
                rank_steps * scale;
  w.halo_bytes = res.comm.total_bytes() / rank_steps * std::sqrt(scale);
  w.halo_messages = 8;

  const perfmodel::CpuSpec cpu = perfmodel::CpuSpec::milan();
  const perfmodel::NetworkSpec net = perfmodel::NetworkSpec::slingshot();
  const perfmodel::DeviceFootprint fp;
  const gpu::DeviceSpec dev = gpu::DeviceSpec::a100_40gb();

  gpu::Device device(dev);
  device.set_stack_limit(65536);
  device.set_heap_limit(64ull << 20);

  std::printf("scaling study: CONUS-12km, %d GPUs fixed, 120 steps\n", ngpus);
  std::printf("%8s %8s | %12s %12s | %9s | %s\n", "ranks", "rk/GPU",
              "CPU v1 (s)", "GPU v3 (s)", "speedup", "note");
  for (int ranks : {ngpus, 2 * ngpus, 4 * ngpus, 8 * ngpus}) {
    const perfmodel::WorkProfile wr =
        w.scaled_to(16.0 / ranks);
    const int max_rpg = fp.max_ranks_per_gpu(
        dev, static_cast<std::int64_t>(wr.cells), 33);
    int use_ranks = ranks;
    int rpg = (use_ranks + ngpus - 1) / ngpus;
    const bool capped = rpg > max_rpg;
    while (rpg > max_rpg && use_ranks > ngpus) {
      use_ranks -= ngpus;
      rpg = (use_ranks + ngpus - 1) / ngpus;
    }
    gpu::KernelDesc k;
    k.name = "coal_scaled";
    k.iterations = static_cast<std::int64_t>(wr.cells * 16.0 / use_ranks *
                                             (use_ranks / 16.0 > 0 ? 1 : 1));
    k.iterations = static_cast<std::int64_t>(w.cells * 16.0 / use_ranks);
    k.regs_per_thread = 90;
    k.flops_per_iter = w.coal_flops / w.cells;
    k.bytes_per_iter = 1800.0;
    const double kms = device.launch(k).modeled_time_ms;
    const double tms = k.iterations * (7.0 * 33 * 4 * 2) /
                       (dev.host_link_gbs * 1e6);

    const double cpu_s =
        perfmodel::cpu_step_time(w.scaled_to(16.0 / ranks), cpu, net, ranks,
                                 false)
            .total() *
        120;
    const double gpu_s =
        perfmodel::gpu_step_time(w.scaled_to(16.0 / use_ranks), cpu, net,
                                 use_ranks, rpg, kms, tms)
            .total() *
        120;
    std::printf("%8d %8d | %12.1f %12.1f | %8.2fx | %s\n", ranks, rpg, cpu_s,
                gpu_s, cpu_s / gpu_s,
                capped ? "rank count capped by GPU memory" : "");
  }
  std::printf("\n(paper Table VII with 16 GPUs: 2.08x @16, 1.82x @32, "
              "1.56x @64 ranks)\n");
  return 0;
}
