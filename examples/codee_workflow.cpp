// The paper's Section V/VI workflow, end to end, on the embedded
// mini-Fortran renditions of the WRF listings:
//
//   1. `screening`: find loops and their parallelizability,
//   2. `checks`: Open-Catalog findings (global state, map(from:),
//      automatic arrays on the device, modernization),
//   3. dependency-analysis insight: the cw** arrays are write-first
//      => delete them and compute entries on demand (the v1 refactor),
//   4. `rewrite --offload omp`: insert the Listing-4 directives.
//
// Run: ./build/examples/codee_workflow

#include <cstdio>

#include "analyzer/checks.hpp"
#include "analyzer/embedded_sources.hpp"
#include "analyzer/parser.hpp"
#include "analyzer/rewrite.hpp"

using namespace wrf::analyzer;

namespace {

void banner(const char* s) {
  std::printf("\n=== %s "
              "=========================================================\n",
              s);
}

int line_of(const std::string& src, const char* needle) {
  int line = 1;
  std::size_t pos = 0;
  while (pos < src.size()) {
    std::size_t eol = src.find('\n', pos);
    if (eol == std::string::npos) eol = src.size();
    if (src.substr(pos, eol - pos).find(needle) != std::string::npos) {
      return line;
    }
    pos = eol + 1;
    ++line;
  }
  return -1;
}

}  // namespace

int main() {
  const std::string& src = sources::kernals_ks();

  banner("1. screening: loop nests in module_mp_fast_sbm");
  const ProgramUnit unit = parse(src);
  const SemanticModel model(unit);
  for (const auto& mod : unit.modules) {
    for (const auto& proc : mod.procs) {
      for (const Stmt* loop : outer_loops(proc)) {
        const LoopAnalysis la = analyze_loop(model, proc, *loop);
        std::printf("%s:%d  do-nest depth %d over (", proc.name.c_str(),
                    loop->line, la.nest_depth);
        for (std::size_t i = 0; i < la.loop_vars.size(); ++i) {
          std::printf("%s%s", i ? "," : "", la.loop_vars[i].c_str());
        }
        std::printf(")  => %s\n",
                    la.parallelizable ? "PARALLELIZABLE" : "blocked");
        for (const auto& b : la.blockers) std::printf("    blocker: %s\n",
                                                      b.c_str());
      }
    }
  }

  banner("2. checks: Open-Catalog findings");
  std::printf("%s", run_checks(unit).format().c_str());
  std::printf("\n-- and on coal_bott_new's declaration (Listing 7):\n%s",
              run_checks(parse(sources::coal_bott_decl())).format().c_str());
  std::printf("\n-- and on legacy onecond (modernization checks):\n%s",
              run_checks(parse(sources::legacy_onecond())).format().c_str());

  banner("3. dependency insight behind the v1 refactor");
  const Procedure* kk = model.find_procedure("kernals_ks");
  const LoopAnalysis la = analyze_loop(model, *kk, *outer_loops(*kk)[0]);
  for (const auto& v : la.vars) {
    const char* role = "";
    switch (v.role) {
      case VarClass::kReadOnly: role = "read-only"; break;
      case VarClass::kPrivate: role = "private"; break;
      case VarClass::kWriteFirst: role = "write-first (map(from:))"; break;
      case VarClass::kReduction: role = "reduction"; break;
      default: role = "other"; break;
    }
    std::printf("  %-12s %-26s %s\n", v.name.c_str(), role,
                v.reason.c_str());
  }
  std::printf("\n=> every cw** array is overwritten and never read: prior\n"
              "   values are dead, so the arrays can be deleted and their\n"
              "   entries computed on demand (pure get_cw** functions) —\n"
              "   removing the shared state that blocked parallelizing the\n"
              "   grid loops (Section VI-A).\n");

  banner("4. rewrite --offload omp (Listing 4)");
  const int line = line_of(src, "do j = 1, nkr");
  const RewriteResult res = rewrite_offload(src, line, /*collapse_limit=*/1);
  for (const auto& n : res.notes) std::printf("note: %s\n", n.c_str());
  std::printf("\n%s\n", res.source.c_str());

  banner("5. negative control: genuinely sequential loop is refused");
  const std::string& bad = sources::carried_dep_loop();
  const RewriteResult refused =
      rewrite_offload(bad, line_of(bad, "do i = 2, n"));
  for (const auto& n : refused.notes) std::printf("note: %s\n", n.c_str());
  return 0;
}
