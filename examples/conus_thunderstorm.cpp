// Scenario example: the CONUS-12km-style thunderstorm case, integrated
// for a stretch of simulated time with the optimized (v3) scheme, with
// storm diagnostics and a diffwrf-style verification against the CPU
// build — the Section IV / VII-B workflow as a user would run it.
//
// Run: ./build/conus_thunderstorm [nx ny nz nsteps] [exec=threads:N|hetero:N]
//      [halo=sync|overlap] [phys=bin|bulk|hybrid] [obs=trace[:path]]
//      [out=path]   (history file; default build/conus_thunderstorm_out.bin)

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "model/driver.hpp"
#include "obs/export.hpp"

using namespace wrf;

int main(int argc, char** argv) {
  // Positional [nx ny nz nsteps]; any key=value knob may sit anywhere.
  int pos[4] = {72, 54, 30, 12};  // nsteps default: one simulated minute
  int npos = 0;
  std::string out_path = "build/conus_thunderstorm_out.bin";
  for (int a = 1; a < argc; ++a) {
    const std::string s(argv[a]);
    if (s.rfind("out=", 0) == 0) {
      out_path = s.substr(4);
      continue;
    }
    if (s.find('=') != std::string::npos) continue;
    if (npos < 4) pos[npos++] = std::atoi(argv[a]);
  }
  model::RunConfig cfg;
  cfg.nx = pos[0];
  cfg.ny = pos[1];
  cfg.nz = pos[2];
  cfg.nsteps = pos[3];
  cfg.npx = 2;
  cfg.npy = 2;
  cfg.version = fsbm::Version::kV3Offload3;
  cfg.exec = exec::exec_from_args(argc, argv);
  cfg.halo_mode = dyn::halo_mode_from_args(argc, argv);
  cfg.sed = fsbm::sed_from_args(argc, argv);
  cfg.phys = fsbm::phys_from_args(argc, argv);  // bin | bulk | hybrid
  cfg.res = mem::residency_from_args(argc, argv);
  cfg.fuse = exec::fuse_from_args(argc, argv);  // off | auto
  cfg.obs = obs::obs_from_args(argc, argv);     // off | metrics | trace
  cfg.tune = tune::tune_from_args(argc, argv);  // off | auto | file:<path>
  cfg.validate();

  std::printf("CONUS-like thunderstorm\n=======================\n%s\n\n",
              cfg.describe().c_str());

  // Per-step storm diagnostics on a single-patch twin so we can reach
  // into the state conveniently.
  model::RunConfig solo = cfg;
  solo.npx = solo.npy = 1;
  const grid::Patch patch =
      grid::decompose(solo.domain(), 1, 1, solo.halo)[0];
  model::RankModel storm(solo, patch, nullptr);
  storm.init();
  prof::Profiler prof;

  // The storm loop drives RankModel directly (not run_single), so the
  // example owns its trace sink: installed after init() so the recorded
  // window matches what FsbmStats charges, exported after the loop.
  std::unique_ptr<obs::TraceSink> sink;
  std::unique_ptr<obs::ScopedActive> active;
  if (!solo.obs.off()) {
    sink = std::make_unique<obs::TraceSink>();
    if (solo.obs.trace()) {
      active = std::make_unique<obs::ScopedActive>(sink.get());
    }
  }
  model::StepStats totals;

  std::printf("%6s %14s %14s %14s %12s\n", "step", "cloud frac",
              "max liquid", "total precip", "wall (s)");
  for (int s = 0; s < solo.nsteps; ++s) {
    const model::StepStats st = storm.step(prof);
    if (sink) {
      obs::StepRecord rec;
      rec.step = s;
      rec.rank = 0;
      rec.wall_sec = st.wall_sec;
      rec.fsbm_wall_sec = st.fsbm.wall_total_sec;
      rec.coal_wall_sec = st.fsbm.wall_coal_sec;
      rec.halo_wall_sec = st.halo_wall_sec;
      rec.halo_bytes = st.halo_bytes;
      rec.h2d_bytes = st.fsbm.h2d_bytes;
      rec.d2h_bytes = st.fsbm.d2h_bytes;
      rec.kernel_launches = st.fsbm.kernel_launches;
      rec.shard_cells_device = st.fsbm.shard_cells_device;
      rec.shard_cells_host = st.fsbm.shard_cells_host;
      rec.cells_bin = st.fsbm.cells_bin;
      rec.cells_bulk = st.fsbm.cells_bulk;
      sink->record_step(rec);
    }
    totals.merge(st);
    const auto& state = storm.state();
    float max_liq = 0.0f;
    double precip = 0.0;
    for (int j = patch.jp.lo; j <= patch.jp.hi; ++j) {
      for (int i = patch.ip.lo; i <= patch.ip.hi; ++i) {
        precip += state.precip(i, 0, j);
        for (int k = patch.k.lo; k <= patch.k.hi; ++k) {
          const float* sl = state.ff[0].slice(i, k, j);
          float q = 0.0f;
          for (int n = 0; n < solo.nkr; ++n) q += sl[n];
          max_liq = std::max(max_liq, q);
        }
      }
    }
    std::printf("%6d %14.4f %14.3e %14.3e %12.3f\n", s + 1,
                model::cloudy_fraction(state), max_liq, precip, st.wall_sec);
  }

  // Export before anything else runs: the verification twin below would
  // otherwise emit into (or, with its own obs knob, overwrite) the
  // storm's trace.
  active.reset();
  if (sink) {
    const std::string obs_path = solo.obs.export_path();
    if (solo.obs.trace()) {
      obs::write_chrome_trace(*sink, obs_path);
    } else {
      obs::Registry reg;
      totals.fsbm.publish(reg);
      obs::write_metrics_jsonl(*sink, reg, obs_path);
    }
    std::printf("\nobs %s written to %s (%llu events)\n",
                solo.obs.trace() ? "trace" : "metrics", obs_path.c_str(),
                static_cast<unsigned long long>(sink->event_count()));
  }

  if (storm.device() != nullptr) {
    const auto& launches = storm.device()->launches();
    if (!launches.empty()) {
      const auto& k = launches.back();
      std::printf("\nlast collision kernel: %lld lanes, modeled %.2f ms, "
                  "occupancy %.1f%% (%s-limited)\n",
                  static_cast<long long>(k.iterations), k.modeled_time_ms,
                  100.0 * k.occupancy.achieved, k.occupancy.limiter);
    }
  }

  // Verification against the CPU build (diffwrf workflow).  The twin
  // runs with obs off — its run must not disturb the storm's exports.
  std::printf("\nverification vs CPU build (diffstate):\n");
  model::RunConfig cpu_cfg = solo;
  cpu_cfg.version = fsbm::Version::kV1LookupOnDemand;
  cpu_cfg.obs = obs::ObsConfig{};
  prof::Profiler p2;
  const model::RunResult cpu = model::run_single(cpu_cfg, p2);
  const io::DiffReport rep =
      io::diffstate(cpu.snapshots[0], storm.snapshot(), 1e-12);
  std::printf("%s", rep.format().c_str());
  std::printf("worst agreement: %.2f digits (paper §VII-B: 3-6 digits)\n",
              rep.worst_digits);

  // Write the history file like a real run would (out= overrides; the
  // default keeps run artifacts out of the source tree, under build/).
  const std::filesystem::path op(out_path);
  if (op.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(op.parent_path(), ec);
  }
  storm.snapshot().write(out_path);
  std::printf("\nhistory written to %s\n", out_path.c_str());
  return 0;
}
