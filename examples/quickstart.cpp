// Quickstart: run the scaled-down CONUS-like thunderstorm case through
// the baseline and optimized FSBM versions and print what the paper's
// workflow would show you: the decomposition, the hotspot profile, and
// the per-version timings.
//
// Build & run:
//   cmake --build build && ./build/quickstart [exec=threads:N] [halo=overlap]
//                                             [sed=block:8] [exec=hetero:N]
//                                             [phys=hybrid] [obs=trace[:path]]
//                                             [tune=auto|file:tuned.json]

#include <cstdio>

#include "model/driver.hpp"

using namespace wrf;

int main(int argc, char** argv) {
  model::RunConfig cfg;
  cfg.nx = 48;
  cfg.ny = 36;
  cfg.nz = 20;
  cfg.nkr = 33;
  cfg.nsteps = 3;
  cfg.npx = 2;
  cfg.npy = 2;
  cfg.exec = exec::exec_from_args(argc, argv);  // serial | threads:N |
                                                // device | hetero:N
  cfg.halo_mode = dyn::halo_mode_from_args(argc, argv);  // sync | overlap
  cfg.sed = fsbm::sed_from_args(argc, argv);    // column | block:N
  cfg.res = mem::residency_from_args(argc, argv);  // step | persist
  cfg.fuse = exec::fuse_from_args(argc, argv);     // off | auto
  cfg.phys = fsbm::phys_from_args(argc, argv);     // bin | bulk | hybrid
  cfg.obs = obs::obs_from_args(argc, argv);        // off | metrics | trace
  cfg.tune = tune::tune_from_args(argc, argv);     // off | auto | file:<path>

  std::printf("miniWRF-SBM quickstart\n======================\n");
  std::printf("case: %s\n\n", cfg.describe().c_str());

  // Figure-1-style decomposition summary.
  const auto patches =
      grid::decompose(cfg.domain(), cfg.npx, cfg.npy, cfg.halo);
  std::printf("domain decomposition (WRF Fig. 1):\n");
  for (const auto& p : patches) {
    std::printf("  %s\n", grid::describe(p).c_str());
  }

  // Run the two CPU versions and one offloaded version.
  const fsbm::Version versions[] = {fsbm::Version::kV0Baseline,
                                    fsbm::Version::kV1LookupOnDemand,
                                    fsbm::Version::kV3Offload3};
  double base_wall = 0.0;
  for (const auto v : versions) {
    model::RunConfig c = cfg;
    c.version = v;
    prof::Profiler prof;
    const auto result = model::run_simulation(c, prof);
    if (v == fsbm::Version::kV0Baseline) base_wall = result.wall_sec;
    std::printf("\n=== %s ===\n", fsbm::version_name(v));
    std::printf("wall: %.3f s (%.2fx vs baseline)\n", result.wall_sec,
                base_wall / result.wall_sec);
    std::printf("active cells: %llu   coal cells: %llu   precip: %.3e\n",
                static_cast<unsigned long long>(result.totals.fsbm.cells_active),
                static_cast<unsigned long long>(result.totals.fsbm.cells_coal),
                result.totals.fsbm.surface_precip);
    if (result.last_coal_kernel) {
      const auto& k = *result.last_coal_kernel;
      std::printf("device kernel '%s': modeled %.2f ms, occupancy %.2f%%, "
                  "L1 %.1f%%, L2 %.1f%%\n",
                  k.name.c_str(), k.modeled_time_ms,
                  100.0 * k.occupancy.achieved, 100.0 * k.l1_hit_rate,
                  100.0 * k.l2_hit_rate);
    }
    std::printf("flat profile (gprof-style):\n%s",
                prof.format_flat_report().c_str());
  }
  return 0;
}
