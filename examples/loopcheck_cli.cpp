// loopcheck command-line tool: the `codee` CLI of Listing 2, for the
// mini-Fortran subset.
//
//   loopcheck_cli screening <file.f90>
//   loopcheck_cli checks    <file.f90>
//   loopcheck_cli rewrite   <file.f90> <line> [collapse_limit]
//
// `rewrite` prints the annotated source to stdout (use shell redirection
// for in-place-style workflows).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analyzer/checks.hpp"
#include "analyzer/parser.hpp"
#include "analyzer/rewrite.hpp"

using namespace wrf::analyzer;

namespace {

std::string slurp(const char* path) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "loopcheck: cannot open '%s'\n", path);
    std::exit(2);
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: loopcheck_cli screening <file.f90>\n"
               "       loopcheck_cli checks    <file.f90>\n"
               "       loopcheck_cli rewrite   <file.f90> <line> "
               "[collapse_limit]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string src = slurp(argv[2]);

  try {
    if (cmd == "screening") {
      const ProgramUnit unit = parse(src);
      const SemanticModel model(unit);
      auto screen = [&](const Procedure& p) {
        for (const Stmt* loop : outer_loops(p)) {
          const LoopAnalysis la = analyze_loop(model, p, *loop);
          std::printf("%s:%d depth-%d nest: %s\n", p.name.c_str(),
                      loop->line, la.nest_depth,
                      la.parallelizable ? "parallelizable"
                                        : "NOT parallelizable");
          for (const auto& b : la.blockers) {
            std::printf("  blocker: %s\n", b.c_str());
          }
        }
      };
      for (const auto& m : unit.modules) {
        for (const auto& p : m.procs) screen(p);
      }
      for (const auto& p : unit.procs) screen(p);
      return 0;
    }
    if (cmd == "checks") {
      std::printf("%s", run_checks(parse(src)).format().c_str());
      return 0;
    }
    if (cmd == "rewrite") {
      if (argc < 4) return usage();
      const int line = std::atoi(argv[3]);
      const int collapse = argc > 4 ? std::atoi(argv[4]) : 0;
      const RewriteResult res = rewrite_offload(src, line, collapse);
      for (const auto& n : res.notes) {
        std::fprintf(stderr, "note: %s\n", n.c_str());
      }
      std::fputs(res.source.c_str(), stdout);
      return res.applied ? 0 : 1;
    }
  } catch (const ParseError& e) {
    std::fprintf(stderr, "loopcheck: %s\n", e.what());
    return 3;
  }
  return usage();
}
