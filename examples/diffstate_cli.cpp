// diffstate command-line tool: the diffwrf analogue used in §VII-B.
//
//   diffstate_cli <a.bin> <b.bin> [noise_floor]
//
// Prints per-variable digits of agreement between two miniWRF snapshots
// and exits 0 when bitwise identical, 1 otherwise.

#include <cstdio>
#include <cstdlib>

#include "io/snapshot.hpp"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: diffstate_cli <a.bin> <b.bin> [noise_floor]\n");
    return 2;
  }
  try {
    const wrf::io::Snapshot a = wrf::io::Snapshot::read(argv[1]);
    const wrf::io::Snapshot b = wrf::io::Snapshot::read(argv[2]);
    const double floor = argc > 3 ? std::atof(argv[3]) : 0.0;
    const wrf::io::DiffReport rep = wrf::io::diffstate(a, b, floor);
    std::printf("%s", rep.format().c_str());
    std::printf("%s (worst agreement: %.2f digits)\n",
                rep.identical ? "IDENTICAL" : "DIFFER", rep.worst_digits);
    return rep.identical ? 0 : 1;
  } catch (const wrf::Error& e) {
    std::fprintf(stderr, "diffstate: %s\n", e.what());
    return 3;
  }
}
