#!/usr/bin/env bash
# Tier-1 verify as CI runs it: configure + build + ctest in a
# Debug/Release matrix with -Wall -Wextra -Werror.
#
# Usage: scripts/ci.sh [Debug|Release]     (no argument = both)

set -euo pipefail
cd "$(dirname "$0")/.."

configs=("${1:-Debug}" )
if [ $# -eq 0 ]; then
  configs=(Debug Release)
fi

for cfg in "${configs[@]}"; do
  build_dir="build-ci-${cfg,,}"
  echo "=== ${cfg} ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE="${cfg}" \
    -DWRF_WERROR=ON
  cmake --build "${build_dir}" -j "$(nproc)"
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
done
