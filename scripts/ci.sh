#!/usr/bin/env bash
# Tier-1 verify as CI runs it: configure + build + ctest in a
# Debug/Release matrix with -Wall -Wextra -Werror, plus a
# ThreadSanitizer configuration covering the concurrency layers
# (simpi requests, exec spaces, halo overlap, blocked sedimentation).
#
# The Debug+Release matrix deliberately runs the FSBM property suite
# (test_fsbm_properties) at both optimization levels so FP-contract
# differences between the column and blocked sedimentation solvers
# would surface as bitwise-equivalence failures.
#
# Usage: scripts/ci.sh [Debug|Release|tsan]     (no argument = Debug+Release)

set -euo pipefail
cd "$(dirname "$0")/.."

run_matrix_config() {
  local cfg="$1"
  local build_dir="build-ci-${cfg,,}"
  echo "=== ${cfg} ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE="${cfg}" \
    -DWRF_WERROR=ON
  cmake --build "${build_dir}" -j "$(nproc)"
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

run_tsan() {
  # TSan build of the thread-heavy suites: the simpi request layer
  # (test_par), the execution spaces + blocked sedimentation dispatch +
  # heterogeneous split passes (test_exec — exec=hetero runs the device
  # shard's kernel and the host shard's remainder CONCURRENTLY, so the
  # data-race coverage here is load-bearing), the phased halo exchange
  # with comms/compute overlap (test_halo_overlap), the FSBM property
  # suite (per-thread block-buffer reuse plus the hetero
  # partition-completeness and seed-determinism laws), and the forecast
  # service (test_svc — scheduler lanes run model::run_single
  # CONCURRENTLY against the shared queue/stats state, so this is where
  # a racy Scheduler or a non-thread-safe model path would surface), and
  # the hybrid microphysics (test_hybrid — the two fidelity populations
  # run on concurrent shards under exec=hetero, and the fidelity sweep
  # plus split physics pass dispatch through the threaded spaces), and
  # the observability layer (test_obs — concurrent shard threads and
  # threaded-space workers emit into one TraceSink's per-thread buffers,
  # and test_svc's trace mode has scheduler lanes emitting while the
  # dispatcher records lifecycle instants), and the autotuner (test_tune
  # — the tuner's measured rungs and the tuned-scheduler test run
  # threaded configs and scheduler lanes under tuned knob application).
  local build_dir="build-ci-tsan"
  echo "=== ThreadSanitizer ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DWRF_TSAN=ON
  cmake --build "${build_dir}" -j "$(nproc)" \
    --target test_par test_exec test_halo_overlap test_fsbm_properties \
    test_svc test_hybrid test_obs test_tune
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "${build_dir}" --output-on-failure \
      -R '^(test_par|test_exec|test_halo_overlap|test_fsbm_properties|test_svc|test_hybrid|test_obs|test_tune)$'
}

run_obs_smoke() {
  # Smoke the observability exporters end to end: quickstart with
  # obs=trace must write a trace that (a) parses as JSON — the real
  # parser, not the unit tests' structural scan — and (b) has balanced
  # B/E span pairs with monotone timestamps on every track.
  echo "=== obs trace smoke ==="
  local build_dir="build-ci-release"
  local trace="${build_dir}/obs_ci_trace.json"
  (cd "${build_dir}" && ./quickstart exec=threads:2 \
    obs="trace:$(basename "${trace}")" > /dev/null)
  python3 -m json.tool "${trace}" > /dev/null
  python3 - "${trace}" <<'EOF'
import collections, json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
assert events, "empty trace"
open_spans = collections.Counter()
last_ts = {}
for e in events:
    tid = e["tid"]
    assert e["ts"] >= last_ts.get(tid, 0), f"ts regression on track {tid}"
    last_ts[tid] = e["ts"]
    if e["ph"] == "B":
        open_spans[tid] += 1
    elif e["ph"] == "E":
        open_spans[tid] -= 1
        assert open_spans[tid] >= 0, f"E without B on track {tid}"
assert not +open_spans, f"unbalanced spans: {dict(open_spans)}"
print(f"obs smoke: {len(events)} events on {len(last_ts)} tracks, "
      "balanced and monotone")
EOF
}

run_bench_smoke() {
  # Smoke the bench harness on tiny grids: asserts the res=persist >=5x
  # steady-state traffic reduction, the exec=hetero exact shard-scaling
  # gate (device-shard h2d == per-cell footprint x predicate-true shard
  # cells on a column tall enough that the split is two-sided), the
  # fuse=auto gates (strictly fewer kernel launches under both res
  # modes, less res=step inter-pass traffic), the forecast-service
  # gates (pool multiplexing, shrinking waits, fair-share wait
  # ordering, ensemble batching, clean completions), the phys=hybrid
  # gates (strict bulk > hybrid > bin throughput ordering with a
  # two-sided fidelity census), and that the JSON distillation pipeline
  # stays runnable.
  echo "=== bench_json smoke ==="
  BENCH_SMOKE=1 BUILD=build-ci-release \
    OUT=build-ci-release/BENCH_residency_smoke.json \
    OUT_HETERO=build-ci-release/BENCH_hetero_smoke.json \
    OUT_FUSION=build-ci-release/BENCH_fusion_smoke.json \
    OUT_SERVICE=build-ci-release/BENCH_service_smoke.json \
    OUT_HYBRID=build-ci-release/BENCH_hybrid_smoke.json \
    OUT_TUNER=build-ci-release/BENCH_tuner_smoke.json \
    scripts/bench_json.sh
}

run_tune_smoke() {
  # Smoke the autotuner end to end on a tiny grid with a pruned space
  # and a loose CV target: the successive-halving ladder must converge,
  # the tuned.json artifact must parse as JSON (the real parser, not
  # the tuner's own writer/reader pair), the winner knob string must be
  # a valid knob set (asserted by bench_tuner's own bitwise gate), and
  # tune=file: must load the artifact into a real run (quickstart).
  echo "=== tune smoke ==="
  local build_dir="build-ci-release"
  local artifact="${build_dir}/tune_ci_smoke.json"
  "${build_dir}/bench_tuner" 24 16 10 2 version=v1 keep=4 target_cv=0.5 \
    "artifact=${artifact}" > /dev/null \
    || { echo "tune smoke: bench_tuner gates failed"; return 1; }
  python3 -m json.tool "${artifact}" > /dev/null
  (cd "${build_dir}" && ./quickstart \
    tune="file:$(basename "${artifact}")" > /dev/null)
  echo "tune smoke: artifact parses, gates pass, tune=file: loads"
}

if [ $# -eq 0 ]; then
  run_matrix_config Debug
  run_matrix_config Release
  run_bench_smoke
  run_obs_smoke
  run_tune_smoke
elif [ "${1}" = "tsan" ]; then
  run_tsan
elif [ "${1}" = "bench" ]; then
  run_matrix_config Release
  run_bench_smoke
  run_obs_smoke
  run_tune_smoke
else
  run_matrix_config "${1}"
fi
