#!/usr/bin/env bash
# Run the key residency bench with --benchmark_format=json and distill a
# BENCH_residency.json trajectory point: steady-state per-step h2d/d2h
# bytes and modeled transfer milliseconds for res=step vs res=persist on
# the CONUS rank patch (exec=device, the device-resident stepping
# configuration), plus the reduction factor the acceptance bar tracks.
#
# Usage:
#   scripts/bench_json.sh                 # full rank patch (107 75 50 3)
#   scripts/bench_json.sh 48 32 20 3      # custom grid
#   BENCH_SMOKE=1 scripts/bench_json.sh   # tiny grid, seconds (CI smoke)
#
# Env: BUILD (build dir, default "build"), OUT (output path, default
# "BENCH_residency.json").

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
OUT=${OUT:-BENCH_residency.json}

# Always (re)build — incremental, so this is a no-op when current, and
# it guarantees the trajectory point never comes from a stale binary.
if [ ! -d "${BUILD}" ]; then
  cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "${BUILD}" -j "$(nproc)" --target bench_residency

ARGS=("$@")
if [ "${BENCH_SMOKE:-0}" = "1" ] && [ ${#ARGS[@]} -eq 0 ]; then
  ARGS=(24 16 10 3)
fi

RAW=$(mktemp)
trap 'rm -f "${RAW}"' EXIT
# The bench's exit code carries the >=5x acceptance gate; capture it so
# a failed gate still distills its diagnostics before we propagate it.
rc=0
"${BUILD}/bench_residency" ${ARGS[@]+"${ARGS[@]}"} --benchmark_format=json \
  > "${RAW}" || rc=$?

python3 - "${RAW}" "${OUT}" <<'PY'
import json
import sys

raw = json.load(open(sys.argv[1]))
cells = {b["name"]: b for b in raw["benchmarks"]}


def pick(version, res):
    return cells["residency/%s/res=%s" % (version, res)]


def traffic(cell):
    return {
        "h2d_bytes_per_step": cell["h2d_bytes_per_step"],
        "d2h_bytes_per_step": cell["d2h_bytes_per_step"],
        "h2d_bytes_first_step": cell["h2d_bytes_first_step"],
        "d2h_bytes_first_step": cell["d2h_bytes_first_step"],
        "transfer_ms_per_step": cell["transfer_ms_per_step"],
        "kernel_ms_per_step": cell["kernel_ms_per_step"],
        "resident_mb": cell["resident_mb"],
    }


step = pick("v3-offload-collapse3", "step")
persist = pick("v3-offload-collapse3", "persist")
step_bytes = step["h2d_bytes_per_step"] + step["d2h_bytes_per_step"]
persist_bytes = persist["h2d_bytes_per_step"] + persist["d2h_bytes_per_step"]
reduction = step_bytes / max(persist_bytes, 1.0)

point = {
    "bench": "residency",
    "context": raw["context"],
    "v3_step": traffic(step),
    "v3_persist": traffic(persist),
    "v2_step": traffic(pick("v2-offload-collapse2", "step")),
    "v2_persist": traffic(pick("v2-offload-collapse2", "persist")),
    "steady_state_reduction_x": round(reduction, 1),
    "meets_5x_bar": reduction >= 5.0,
}
json.dump(point, open(sys.argv[2], "w"), indent=2)
print("wrote %s: steady-state step %.1f MB/step vs persist %.3f MB/step "
      "(%.0fx, 5x bar %s)" % (
          sys.argv[2], step_bytes / 1e6, persist_bytes / 1e6, reduction,
          "met" if reduction >= 5.0 else "NOT met"))
PY
exit "${rc}"
