#!/usr/bin/env bash
# Distill committed benchmark trajectory points from the key sweeps:
#
#   BENCH_residency.json — steady-state per-step h2d/d2h bytes and
#     modeled transfer milliseconds for res=step vs res=persist on the
#     CONUS rank patch (exec=device, the device-resident stepping
#     configuration), plus the >=5x reduction factor the acceptance bar
#     tracks.
#
#   BENCH_hetero.json — the heterogeneous-dispatch point from
#     bench_table4_offload2: split fraction (device-shard cells /
#     total), per-shard wall time, and shard-granular vs full-field
#     transfer traffic per offloaded version, plus the exact-scaling
#     gate (device-shard h2d == per-cell footprint x predicate-true
#     shard cells; interior predicate-false cells never transfer).
#
#   BENCH_fusion.json — the pass-fusion point from bench_fusion:
#     kernel launches and inter-pass h2d/d2h bytes per step for
#     fuse=off vs fuse=auto (v3 + offloaded condensation, exec=device),
#     plus the two acceptance gates (fewer launches under both res
#     modes; less res=step traffic).
#
#   BENCH_service.json — the forecast-service point from bench_service:
#     makespan, throughput, p50/p95 queue wait, per-class mean wait,
#     pool parallelism/occupancy and batching for one mixed-class job
#     stream over 1/2/4-lane pools, plus the scheduler gates (pool
#     multiplexing, shrinking waits, fair-share wait ordering,
#     ensemble batching, clean completions).
#
#   BENCH_hybrid.json — the phys= knob point from bench_hybrid:
#     cell-step throughput for phys=bulk / hybrid / bin on the scaled
#     CONUS storm patch, the hybrid's bin-fidelity fraction, and the
#     acceptance gates (strict bulk > hybrid > bin throughput ordering;
#     a genuinely two-sided fidelity census).
#
#   BENCH_tuner.json — the autotuner point from bench_tuner: tuned vs
#     untuned throughput on the CONUS rank patch (the tuned side loaded
#     back through tune=file:, i.e. the artifact round trip), the
#     winning knob string, the deciding rung's CV, and the gates
#     (tuned >= untuned; deciding CV under target; tune=file: bitwise
#     identical to the same knobs set explicitly).
#
# Every distilled point is stamped with the bench schema version and
# the machine fingerprint (hardware threads + modeled DeviceSpec) so
# committed trajectory points are comparable across hosts.
#
# Usage:
#   scripts/bench_json.sh                 # full rank patch (107 75 50 3)
#   scripts/bench_json.sh 48 32 20 3      # custom grid
#   BENCH_SMOKE=1 scripts/bench_json.sh   # tiny grid, seconds (CI smoke)
#
# Env: BUILD (build dir, default "build"), OUT (residency output path,
# default "BENCH_residency.json"), OUT_HETERO (hetero output path,
# default "BENCH_hetero.json"), OUT_FUSION (fusion output path, default
# "BENCH_fusion.json"), OUT_SERVICE (service output path, default
# "BENCH_service.json"), OUT_HYBRID (hybrid output path, default
# "BENCH_hybrid.json"), OUT_TUNER (tuner output path, default
# "BENCH_tuner.json").

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
OUT=${OUT:-BENCH_residency.json}
OUT_HETERO=${OUT_HETERO:-BENCH_hetero.json}
OUT_FUSION=${OUT_FUSION:-BENCH_fusion.json}
OUT_SERVICE=${OUT_SERVICE:-BENCH_service.json}
OUT_HYBRID=${OUT_HYBRID:-BENCH_hybrid.json}
OUT_TUNER=${OUT_TUNER:-BENCH_tuner.json}

# Stamp applied to every distilled point: schema version for the
# trajectory-point format itself, plus the machine fingerprint (the
# same fields tune::local_fingerprint records in tuned.json).
export BENCH_SCHEMA_VERSION=1
export BENCH_HW_THREADS="$(nproc)"
export BENCH_DEVICE_NAME="NVIDIA A100-SXM4-40GB (simulated)"

# Always (re)build — incremental, so this is a no-op when current, and
# it guarantees the trajectory point never comes from a stale binary.
if [ ! -d "${BUILD}" ]; then
  cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "${BUILD}" -j "$(nproc)" \
  --target bench_residency bench_table4_offload2 bench_fusion bench_service \
  bench_hybrid bench_tuner

ARGS=("$@")
HETERO_ARGS=("$@")
# The service bench takes a stream size, not a grid: jobs per class.
SERVICE_ARGS=(8)
# The tuner takes the CONUS rank patch by default; the artifact lands
# in the build dir so repo root stays clean.
TUNER_ARGS=("artifact=${BUILD}/tuned.json")
if [ "${BENCH_SMOKE:-0}" = "1" ] && [ ${#ARGS[@]} -eq 0 ]; then
  ARGS=(24 16 10 3)
  # The hetero smoke needs a tall column (40 x 400 m reaches above the
  # 223.15 K coal gate) so the predicate split is genuinely two-sided.
  HETERO_ARGS=(16 12 40 1)
  SERVICE_ARGS=(3)
  # Tiny grid, pruned space, loose CV target: seconds, not minutes.
  TUNER_ARGS=(24 16 10 2 version=v1 keep=4 target_cv=0.5
              "artifact=${BUILD}/tuned.json")
fi

RAW=$(mktemp)
trap 'rm -f "${RAW}"' EXIT
# The bench's exit code carries the >=5x acceptance gate; capture it so
# a failed gate still distills its diagnostics before we propagate it.
rc=0
"${BUILD}/bench_residency" ${ARGS[@]+"${ARGS[@]}"} --benchmark_format=json \
  > "${RAW}" || rc=$?

python3 - "${RAW}" "${OUT}" <<'PY'
import json
import sys

raw = json.load(open(sys.argv[1]))
cells = {b["name"]: b for b in raw["benchmarks"]}


def pick(version, res):
    return cells["residency/%s/res=%s" % (version, res)]


def traffic(cell):
    return {
        "h2d_bytes_per_step": cell["h2d_bytes_per_step"],
        "d2h_bytes_per_step": cell["d2h_bytes_per_step"],
        "h2d_bytes_first_step": cell["h2d_bytes_first_step"],
        "d2h_bytes_first_step": cell["d2h_bytes_first_step"],
        "transfer_ms_per_step": cell["transfer_ms_per_step"],
        "kernel_ms_per_step": cell["kernel_ms_per_step"],
        "resident_mb": cell["resident_mb"],
    }


step = pick("v3-offload-collapse3", "step")
persist = pick("v3-offload-collapse3", "persist")
step_bytes = step["h2d_bytes_per_step"] + step["d2h_bytes_per_step"]
persist_bytes = persist["h2d_bytes_per_step"] + persist["d2h_bytes_per_step"]
reduction = step_bytes / max(persist_bytes, 1.0)

point = {
    "bench": "residency",
    "context": raw["context"],
    "v3_step": traffic(step),
    "v3_persist": traffic(persist),
    "v2_step": traffic(pick("v2-offload-collapse2", "step")),
    "v2_persist": traffic(pick("v2-offload-collapse2", "persist")),
    "steady_state_reduction_x": round(reduction, 1),
    "meets_5x_bar": reduction >= 5.0,
}
json.dump(point, open(sys.argv[2], "w"), indent=2)
print("wrote %s: steady-state step %.1f MB/step vs persist %.3f MB/step "
      "(%.0fx, 5x bar %s)" % (
          sys.argv[2], step_bytes / 1e6, persist_bytes / 1e6, reduction,
          "met" if reduction >= 5.0 else "NOT met"))
PY

# ---- heterogeneous dispatch point (exec=hetero) ----------------------
RAW_H=$(mktemp)
trap 'rm -f "${RAW}" "${RAW_H}"' EXIT
rc_h=0
"${BUILD}/bench_table4_offload2" ${HETERO_ARGS[@]+"${HETERO_ARGS[@]}"} \
  --benchmark_format=json > "${RAW_H}" || rc_h=$?

python3 - "${RAW_H}" "${OUT_HETERO}" <<'PY'
import json
import sys

raw = json.load(open(sys.argv[1]))
cells = {b["name"]: b for b in raw["benchmarks"]}


def pick(version):
    return cells["hetero/%s" % version]


point = {
    "bench": "hetero",
    "context": raw["context"],
    "v2": pick("v2-offload-collapse2"),
    "v3": pick("v3-offload-collapse3"),
}
v3 = point["v3"]
point["split_fraction"] = v3["split_fraction"]
point["h2d_reduction_x"] = round(
    v3["full_h2d_bytes"] / max(v3["hetero_h2d_bytes"], 1.0), 2)
point["exact_shard_scaling"] = (
    point["v2"]["exact_shard_scaling"] and v3["exact_shard_scaling"])
json.dump(point, open(sys.argv[2], "w"), indent=2)
print("wrote %s: split %.0f%% of cells to the device shard, h2d %.1f MB "
      "vs full %.1f MB (%.2fx), exact shard scaling %s" % (
          sys.argv[2], 100.0 * v3["split_fraction"],
          v3["hetero_h2d_bytes"] / 1e6, v3["full_h2d_bytes"] / 1e6,
          point["h2d_reduction_x"],
          "yes" if point["exact_shard_scaling"] else "NO"))
PY

# ---- pass-fusion point (fuse=off vs fuse=auto) -----------------------
RAW_F=$(mktemp)
trap 'rm -f "${RAW}" "${RAW_H}" "${RAW_F}"' EXIT
rc_f=0
"${BUILD}/bench_fusion" ${ARGS[@]+"${ARGS[@]}"} --benchmark_format=json \
  > "${RAW_F}" || rc_f=$?

python3 - "${RAW_F}" "${OUT_FUSION}" <<'PY'
import json
import sys

raw = json.load(open(sys.argv[1]))
cells = {b["name"]: b for b in raw["benchmarks"]}


def pick(fuse, res):
    return cells["fusion/fuse=%s/res=%s" % (fuse, res)]


off_step = pick("off", "step")
auto_step = pick("auto", "step")
off_pers = pick("off", "persist")
auto_pers = pick("auto", "persist")
off_bytes = off_step["h2d_bytes_per_step"] + off_step["d2h_bytes_per_step"]
auto_bytes = auto_step["h2d_bytes_per_step"] + auto_step["d2h_bytes_per_step"]

point = {
    "bench": "fusion",
    "context": raw["context"],
    "off_step": off_step,
    "auto_step": auto_step,
    "off_persist": off_pers,
    "auto_persist": auto_pers,
    "fused_pair": auto_step["fused_pair"],
    "launches_saved_per_step": round(
        off_step["launches_per_step"] - auto_step["launches_per_step"], 1),
    "step_traffic_reduction_x": round(off_bytes / max(auto_bytes, 1.0), 2),
    "fewer_launches": (
        auto_step["launches_per_step"] < off_step["launches_per_step"]
        and auto_pers["launches_per_step"] < off_pers["launches_per_step"]),
    "less_step_traffic": auto_bytes < off_bytes,
}
json.dump(point, open(sys.argv[2], "w"), indent=2)
print("wrote %s: fused %s, launches %.1f -> %.1f per step, res=step "
      "traffic %.1f -> %.1f MB/step (%.2fx); gates %s" % (
          sys.argv[2], point["fused_pair"] or "(nothing!)",
          off_step["launches_per_step"], auto_step["launches_per_step"],
          off_bytes / 1e6, auto_bytes / 1e6,
          point["step_traffic_reduction_x"],
          "met" if point["fewer_launches"] and point["less_step_traffic"]
          else "NOT met"))
PY

# ---- forecast-service point (svc::Scheduler pool sweep) --------------
RAW_S=$(mktemp)
trap 'rm -f "${RAW}" "${RAW_H}" "${RAW_F}" "${RAW_S}"' EXIT
rc_s=0
"${BUILD}/bench_service" "${SERVICE_ARGS[@]}" --benchmark_format=json \
  > "${RAW_S}" || rc_s=$?

python3 - "${RAW_S}" "${OUT_SERVICE}" <<'PY'
import json
import sys

raw = json.load(open(sys.argv[1]))
pools = {b["name"]: b for b in raw["benchmarks"]}
one = pools["service/lanes=1"]
max_lanes = max(int(k.split("=")[1]) for k in pools)
widest = pools["service/lanes=%d" % max_lanes]

point = {
    "bench": "service",
    "context": raw["context"],
    "pools": [pools[k] for k in sorted(pools, key=lambda k:
                                       int(k.split("=")[1]))],
    "pool_parallelism_ok": all(
        p["pool_parallelism"] >= 0.5 * int(k.split("=")[1])
        for k, p in pools.items()),
    "wait_p50_shrinks": widest["wait_p50_s"] < one["wait_p50_s"],
    "fair_share_wait_ordered": (
        one["wait_mean_interactive_s"] <= one["wait_mean_ensemble_s"]
        <= one["wait_mean_batch_s"]),
    "batching_every_width": all(p["batches"] > 0 for p in pools.values()),
    "clean": all(p["failed"] == 0 and p["rejected"] == 0
                 and p["completed"] == p["jobs"] for p in pools.values()),
}
json.dump(point, open(sys.argv[2], "w"), indent=2)
gates = [point[g] for g in ("pool_parallelism_ok", "wait_p50_shrinks",
                            "fair_share_wait_ordered",
                            "batching_every_width", "clean")]
print("wrote %s: %d-lane pool parallelism %.2f, p50 wait %.3fs -> %.3fs, "
      "1-lane mean waits I/E/B %.3f/%.3f/%.3f s; gates %s" % (
          sys.argv[2], max_lanes, widest["pool_parallelism"],
          one["wait_p50_s"], widest["wait_p50_s"],
          one["wait_mean_interactive_s"], one["wait_mean_ensemble_s"],
          one["wait_mean_batch_s"],
          "met" if all(gates) else "NOT met"))
PY

# ---- hybrid microphysics point (phys=bulk/hybrid/bin) ----------------
RAW_Y=$(mktemp)
trap 'rm -f "${RAW}" "${RAW_H}" "${RAW_F}" "${RAW_S}" "${RAW_Y}"' EXIT
rc_y=0
"${BUILD}/bench_hybrid" ${ARGS[@]+"${ARGS[@]}"} --benchmark_format=json \
  > "${RAW_Y}" || rc_y=$?

python3 - "${RAW_Y}" "${OUT_HYBRID}" <<'PY'
import json
import sys

raw = json.load(open(sys.argv[1]))
cells = {b["name"]: b for b in raw["benchmarks"]}


def pick(phys):
    return cells["hybrid/phys=%s" % phys]


bulk = pick("bulk")
hyb = pick("hybrid")
bin_ = pick("bin")

point = {
    "bench": "hybrid",
    "context": raw["context"],
    "bulk": bulk,
    "hybrid": hyb,
    "bin": bin_,
    "bin_fraction": hyb["bin_fraction"],
    "hybrid_speedup_over_bin_x": round(
        hyb["cellsteps_per_s"] / max(bin_["cellsteps_per_s"], 1.0), 2),
    "bulk_bound_speedup_x": round(
        bulk["cellsteps_per_s"] / max(bin_["cellsteps_per_s"], 1.0), 2),
    "throughput_strictly_ordered": (
        bulk["cellsteps_per_s"] > hyb["cellsteps_per_s"]
        > bin_["cellsteps_per_s"]),
    "census_two_sided": 0.0 < hyb["bin_fraction"] < 1.0,
}
json.dump(point, open(sys.argv[2], "w"), indent=2)
print("wrote %s: throughput bulk %.0f / hybrid %.0f / bin %.0f "
      "cellsteps/s (hybrid %.2fx over bin at %.0f%% bin fidelity); "
      "gates %s" % (
          sys.argv[2], bulk["cellsteps_per_s"], hyb["cellsteps_per_s"],
          bin_["cellsteps_per_s"], point["hybrid_speedup_over_bin_x"],
          100.0 * hyb["bin_fraction"],
          "met" if point["throughput_strictly_ordered"]
          and point["census_two_sided"] else "NOT met"))
PY

# ---- autotuner point (tune= knob, tuned vs untuned) ------------------
RAW_T=$(mktemp)
trap 'rm -f "${RAW}" "${RAW_H}" "${RAW_F}" "${RAW_S}" "${RAW_T}"' EXIT
rc_t=0
"${BUILD}/bench_tuner" "${TUNER_ARGS[@]}" --benchmark_format=json \
  > "${RAW_T}" || rc_t=$?

python3 - "${RAW_T}" "${OUT_TUNER}" <<'PY'
import json
import sys

raw = json.load(open(sys.argv[1]))
cells = {b["name"]: b for b in raw["benchmarks"]}
untuned = cells["tuner/untuned"]
tuned = cells["tuner/tuned"]
winner = cells["tuner/winner"]

point = {
    "bench": "tuner",
    "context": raw["context"],
    "untuned": untuned,
    "tuned": tuned,
    "winner": winner,
    "speedup_x": winner["speedup"],
    "tuned_not_slower": (
        tuned["cellsteps_per_s"] * 1.02 >= untuned["cellsteps_per_s"]),
    "deciding_cv_ok": winner["deciding_cv"] <= 0.5,
    "bitwise_identical": winner["bitwise_identical"],
}
json.dump(point, open(sys.argv[2], "w"), indent=2)
print("wrote %s: winner '%s', tuned %.0f vs untuned %.0f cellsteps/s "
      "(%.2fx), deciding CV %.3f over %d measured runs; gates %s" % (
          sys.argv[2], winner["knobs"], tuned["cellsteps_per_s"],
          untuned["cellsteps_per_s"], winner["speedup"],
          winner["deciding_cv"], winner["measured_runs"],
          "met" if point["tuned_not_slower"] and point["deciding_cv_ok"]
          and point["bitwise_identical"] else "NOT met"))
PY

# ---- stamp every point with schema version + machine fingerprint -----
python3 - "${OUT}" "${OUT_HETERO}" "${OUT_FUSION}" "${OUT_SERVICE}" \
  "${OUT_HYBRID}" "${OUT_TUNER}" <<'PY'
import json
import os
import sys

stamp = {
    "schema_version": int(os.environ["BENCH_SCHEMA_VERSION"]),
    "machine": {
        "hw_threads": int(os.environ["BENCH_HW_THREADS"]),
        "device": os.environ["BENCH_DEVICE_NAME"],
    },
}
for path in sys.argv[1:]:
    point = json.load(open(path))
    point.update(stamp)
    json.dump(point, open(path, "w"), indent=2)
print("stamped %d points: schema v%d, %d hw threads, %s" % (
    len(sys.argv) - 1, stamp["schema_version"],
    stamp["machine"]["hw_threads"], stamp["machine"]["device"]))
PY

[ "${rc}" -ne 0 ] && exit "${rc}"
[ "${rc_h}" -ne 0 ] && exit "${rc_h}"
[ "${rc_f}" -ne 0 ] && exit "${rc_f}"
[ "${rc_s}" -ne 0 ] && exit "${rc_s}"
[ "${rc_y}" -ne 0 ] && exit "${rc_y}"
exit "${rc_t}"
