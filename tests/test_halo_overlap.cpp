// The phased halo-exchange API and RK3 comms/compute overlap:
// HaloExchange posts one round (every field, every side) in begin() and
// drains it in finish(); tags are bounded functions of (round, field,
// side); and halo=overlap multi-rank runs are bitwise identical to
// halo=sync across all five FSBM versions.

#include <gtest/gtest.h>

#include <cstring>

#include "model/driver.hpp"
#include "model/halo.hpp"

namespace wrf::model {
namespace {

RunConfig tiny_config() {
  RunConfig cfg;
  cfg.nx = 24;
  cfg.ny = 18;
  cfg.nz = 12;
  cfg.nsteps = 2;
  cfg.npx = 2;
  cfg.npy = 2;
  return cfg;
}

float ident(int i, int k, int j) {
  return static_cast<float>(1000 * j + 10 * k + i);
}

TEST(HaloExchange, TagsAreBoundedAndRoundPure) {
  // Pure function of (round, field, side) — same round, same tag — and
  // bounded: consecutive rounds alternate between two disjoint tag sets
  // instead of growing a per-step sequence counter forever.
  using grid::Side;
  EXPECT_EQ(HaloExchange::tag(0, 2, Side::kNorth),
            HaloExchange::tag(0, 2, Side::kNorth));
  EXPECT_EQ(HaloExchange::tag(0, 2, Side::kNorth),
            HaloExchange::tag(2, 2, Side::kNorth));
  EXPECT_EQ(HaloExchange::tag(1, 2, Side::kNorth),
            HaloExchange::tag(4001, 2, Side::kNorth));
  EXPECT_NE(HaloExchange::tag(0, 2, Side::kNorth),
            HaloExchange::tag(1, 2, Side::kNorth));
  EXPECT_NE(HaloExchange::tag(0, 0, Side::kWest),
            HaloExchange::tag(0, 1, Side::kWest));
  EXPECT_LT(HaloExchange::tag(7, HaloExchange::kMaxFields - 1,
                              Side::kNorth),
            8 * HaloExchange::kMaxFields);
}

TEST(HaloExchange, WholeRoundPostedBeforeAnyUnpack) {
  // The acceptance criterion of the overlap design: after begin(), every
  // send of the round (each registered field, each interior side) has
  // been posted and *no* receive consumed; finish() then drains them.
  const RunConfig cfg = tiny_config();
  const auto patches =
      grid::decompose(cfg.domain(), cfg.npx, cfg.npy, cfg.halo);
  par::run(cfg.nranks(), [&](par::RankCtx& ctx) {
    const grid::Patch& p = patches[static_cast<std::size_t>(ctx.rank())];
    Field3D<float> a(p.im, p.k, p.jm, -1.0f);
    Field4D<float> b(4, p.im, p.k, p.jm);
    for (int j = p.jp.lo; j <= p.jp.hi; ++j)
      for (int k = p.k.lo; k <= p.k.hi; ++k)
        for (int i = p.ip.lo; i <= p.ip.hi; ++i) {
          a(i, k, j) = ident(i, k, j);
          for (int n = 0; n < 4; ++n) b(n, i, k, j) = ident(i, k, j) + n;
        }
    int sides = 0;
    for (int s = 0; s < 4; ++s) sides += p.neighbor[s] >= 0 ? 1 : 0;

    HaloExchange hx(p);
    hx.add(&a);
    hx.add_bins(&b);
    EXPECT_EQ(hx.fields(), 2);

    hx.begin(ctx);
    EXPECT_TRUE(hx.in_flight());
    EXPECT_EQ(ctx.stats().messages_sent, static_cast<std::uint64_t>(2 * sides));
    EXPECT_EQ(ctx.stats().messages_recvd, 0u);  // nothing consumed yet
    hx.finish(ctx);
    EXPECT_FALSE(hx.in_flight());
    EXPECT_EQ(ctx.stats().messages_recvd,
              static_cast<std::uint64_t>(2 * sides));
    EXPECT_EQ(ctx.stats().bytes_sent, hx.bytes_per_round());

    // Ghost cells now hold the neighbor's identity values for both
    // field shapes.
    for (int s = 0; s < 4; ++s) {
      if (p.neighbor[s] < 0) continue;
      const auto rect = p.recv_rect(static_cast<grid::Side>(s));
      for (int j = rect.j.lo; j <= rect.j.hi; ++j)
        for (int k = p.k.lo; k <= p.k.hi; ++k)
          for (int i = rect.i.lo; i <= rect.i.hi; ++i) {
            ASSERT_FLOAT_EQ(a(i, k, j), ident(i, k, j));
            ASSERT_FLOAT_EQ(b(2, i, k, j), ident(i, k, j) + 2.0f);
          }
    }
  });
}

TEST(HaloExchange, RepeatedRoundsWithoutBarrier) {
  // Rounds proceed back to back with no inter-round barrier: bounded
  // tags plus FIFO matching must keep them from mixing, across enough
  // rounds to wrap the tag parity many times.
  const RunConfig cfg = tiny_config();
  const auto patches =
      grid::decompose(cfg.domain(), cfg.npx, cfg.npy, cfg.halo);
  par::run(cfg.nranks(), [&](par::RankCtx& ctx) {
    const grid::Patch& p = patches[static_cast<std::size_t>(ctx.rank())];
    Field3D<float> q(p.im, p.k, p.jm, 0.0f);
    HaloExchange hx(p);
    hx.add(&q);
    for (int round = 0; round < 6; ++round) {
      for (int j = p.jp.lo; j <= p.jp.hi; ++j)
        for (int k = p.k.lo; k <= p.k.hi; ++k)
          for (int i = p.ip.lo; i <= p.ip.hi; ++i)
            q(i, k, j) = ident(i, k, j) + 10000.0f * round;
      hx.begin(ctx);
      hx.finish(ctx);
      for (int s = 0; s < 4; ++s) {
        if (p.neighbor[s] < 0) continue;
        const auto rect = p.recv_rect(static_cast<grid::Side>(s));
        for (int j = rect.j.lo; j <= rect.j.hi; ++j)
          for (int k = p.k.lo; k <= p.k.hi; ++k)
            for (int i = rect.i.lo; i <= rect.i.hi; ++i)
              ASSERT_FLOAT_EQ(q(i, k, j), ident(i, k, j) + 10000.0f * round)
                  << "round " << round;
      }
    }
    EXPECT_EQ(hx.rounds(), 6);
  });
}

TEST(HaloExchange, PhaseMisuseThrows) {
  const RunConfig cfg = tiny_config();
  const auto patches =
      grid::decompose(cfg.domain(), cfg.npx, cfg.npy, cfg.halo);
  EXPECT_THROW(
      par::run(cfg.nranks(),
               [&](par::RankCtx& ctx) {
                 const grid::Patch& p =
                     patches[static_cast<std::size_t>(ctx.rank())];
                 Field3D<float> q(p.im, p.k, p.jm, 0.0f);
                 HaloExchange hx(p);
                 hx.add(&q);
                 hx.finish(ctx);  // no round in flight
               }),
      Error);
}

TEST(HaloOverlap, BitwiseIdenticalToSyncAcrossVersions) {
  // The headline determinism contract of the phased API: with
  // halo=overlap, interior tendencies run on stale halos between
  // begin/finish, yet every snapshot variable of every rank is bitwise
  // identical to the halo=sync run — for all five FSBM versions.
  for (const auto v :
       {fsbm::Version::kV0Baseline, fsbm::Version::kV1LookupOnDemand,
        fsbm::Version::kV2Offload2, fsbm::Version::kV3Offload3,
        fsbm::Version::kV3NaiveCollapse3}) {
    RunConfig cfg = tiny_config();
    cfg.version = v;
    cfg.halo_mode = dyn::HaloMode::kSync;
    prof::Profiler prof;
    const RunResult sync = run_simulation(cfg, prof);
    cfg.halo_mode = dyn::HaloMode::kOverlap;
    const RunResult overlap = run_simulation(cfg, prof);

    ASSERT_EQ(sync.snapshots.size(), overlap.snapshots.size());
    for (std::size_t r = 0; r < sync.snapshots.size(); ++r) {
      for (const auto& var : sync.snapshots[r].variables()) {
        const io::Variable* other = overlap.snapshots[r].find(var.name);
        ASSERT_NE(other, nullptr) << var.name;
        ASSERT_EQ(var.data.size(), other->data.size()) << var.name;
        EXPECT_EQ(std::memcmp(var.data.data(), other->data.data(),
                              var.data.size() * sizeof(float)),
                  0)
            << fsbm::version_name(v) << " rank " << r << " variable "
            << var.name << " differs between halo=sync and halo=overlap";
      }
    }
    // Same traffic either way; overlap changes when, not what.
    EXPECT_EQ(sync.comm.total_bytes(), overlap.comm.total_bytes());
    EXPECT_EQ(sync.comm.total_messages(), overlap.comm.total_messages());
  }
}

TEST(HaloOverlap, SingleRankRunsWorkInBothModes) {
  // No neighbors: begin posts nothing, finish is just the boundary
  // fill.  Overlap must degrade gracefully to that.
  RunConfig cfg = tiny_config();
  cfg.npx = cfg.npy = 1;
  cfg.halo_mode = dyn::HaloMode::kOverlap;
  prof::Profiler prof;
  const RunResult res = run_simulation(cfg, prof);
  EXPECT_GT(res.totals.dyn.tend.cells, 0u);
  EXPECT_EQ(res.comm.total_messages(), 0u);
}

}  // namespace
}  // namespace wrf::model
