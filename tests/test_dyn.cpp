// Unit + property tests: rk_scalar_tend / rk_update_scalar / RK3.

#include <gtest/gtest.h>

#include <cmath>

#include "dyn/advection.hpp"
#include "dyn/rk3.hpp"
#include "model/case_conus.hpp"

namespace wrf::dyn {
namespace {

grid::Patch make_patch(int nx, int nz, int ny) {
  grid::Domain d{Range{1, nx}, Range{1, nz}, Range{1, ny}};
  return grid::decompose(d, 1, 1, 3)[0];
}

AnalyticWinds uniform_winds(const grid::Patch& p, double u, double v,
                            double wmax) {
  AnalyticWinds w;
  w.u0 = u;
  w.v0 = v;
  w.w_max = wmax;
  w.domain = p.domain;
  return w;
}

TEST(Advection, ConstantFieldHasZeroTendency) {
  const grid::Patch p = make_patch(20, 10, 16);
  Field3D<float> q(p.im, p.k, p.jm, 3.0f);
  Field3D<float> tend(p.im, p.k, p.jm);
  const AnalyticWinds winds = uniform_winds(p, 10.0, -5.0, 0.0);
  AdvConfig cfg;
  rk_scalar_tend(p, q, winds, cfg, tend);
  for (int j = p.jp.lo; j <= p.jp.hi; ++j) {
    for (int k = p.k.lo; k <= p.k.hi; ++k) {
      for (int i = p.ip.lo; i <= p.ip.hi; ++i) {
        EXPECT_NEAR(tend(i, k, j), 0.0f, 1e-9f);
      }
    }
  }
}

TEST(Advection, GaussianMovesDownwind) {
  const grid::Patch p = make_patch(40, 6, 12);
  Field3D<float> q(p.im, p.k, p.jm, 0.0f);
  Field3D<float> q0(p.im, p.k, p.jm, 0.0f);
  Field3D<float> tend(p.im, p.k, p.jm);
  // Blob centered at i=15.
  for (int j = p.jm.lo; j <= p.jm.hi; ++j) {
    for (int k = p.k.lo; k <= p.k.hi; ++k) {
      for (int i = p.im.lo; i <= p.im.hi; ++i) {
        const double x = (i - 15.0) / 4.0;
        q(i, k, j) = static_cast<float>(std::exp(-x * x));
      }
    }
  }
  q0 = q;
  const AnalyticWinds winds = uniform_winds(p, 24.0, 0.0, 0.0);  // +x
  AdvConfig cfg;
  cfg.dx = 1000.0;
  auto center = [&](const Field3D<float>& f) {
    double num = 0.0, den = 0.0;
    for (int i = p.ip.lo; i <= p.ip.hi; ++i) {
      num += i * f(i, 3, 6);
      den += f(i, 3, 6);
    }
    return num / den;
  };
  const double c_before = center(q);
  // A few forward-Euler steps with halo refresh.
  for (int step = 0; step < 10; ++step) {
    fill_domain_boundaries(p, q);
    rk_scalar_tend(p, q, winds, cfg, tend);
    rk_update_scalar(p, q, tend, 5.0, q);
  }
  const double c_after = center(q);
  // Expected displacement: u*t/dx = 24*50/1000 = 1.2 cells.
  EXPECT_NEAR(c_after - c_before, 1.2, 0.25);
  (void)q0;
}

TEST(Advection, UpdateIsPositiveDefinite) {
  const grid::Patch p = make_patch(12, 6, 10);
  Field3D<float> q0(p.im, p.k, p.jm, 1.0e-6f);
  Field3D<float> tend(p.im, p.k, p.jm, -1.0f);  // strong sink
  Field3D<float> q(p.im, p.k, p.jm);
  rk_update_scalar(p, q0, tend, 5.0, q);
  for (int j = p.jp.lo; j <= p.jp.hi; ++j) {
    for (int k = p.k.lo; k <= p.k.hi; ++k) {
      for (int i = p.ip.lo; i <= p.ip.hi; ++i) {
        EXPECT_GE(q(i, k, j), 0.0f);
      }
    }
  }
}

TEST(Advection, UpdateArithmetic) {
  const grid::Patch p = make_patch(10, 5, 8);
  Field3D<float> q0(p.im, p.k, p.jm, 2.0f);
  Field3D<float> tend(p.im, p.k, p.jm, 0.5f);
  Field3D<float> q(p.im, p.k, p.jm);
  const AdvStats st = rk_update_scalar(p, q0, tend, 4.0, q);
  EXPECT_FLOAT_EQ(q(p.ip.lo, p.k.lo, p.jp.lo), 4.0f);
  EXPECT_EQ(st.cells, static_cast<std::uint64_t>(10) * 5 * 8);
}

TEST(Advection, BinsVariantMatchesScalarPerBin) {
  const grid::Patch p = make_patch(16, 6, 12);
  const int nb = 5;
  Field4D<float> q4(nb, p.im, p.k, p.jm);
  Field4D<float> tend4(nb, p.im, p.k, p.jm);
  Field3D<float> q3(p.im, p.k, p.jm);
  Field3D<float> tend3(p.im, p.k, p.jm);
  // Bin b carries a shifted pattern.
  for (int j = p.jm.lo; j <= p.jm.hi; ++j) {
    for (int k = p.k.lo; k <= p.k.hi; ++k) {
      for (int i = p.im.lo; i <= p.im.hi; ++i) {
        for (int b = 0; b < nb; ++b) {
          q4(b, i, k, j) =
              static_cast<float>(std::sin(0.3 * i + 0.2 * j + b) + 2.0);
        }
      }
    }
  }
  const AnalyticWinds winds = uniform_winds(p, 7.0, 3.0, 2.0);
  AdvConfig cfg;
  rk_scalar_tend_bins(p, q4, winds, cfg, tend4);
  for (int b = 0; b < nb; ++b) {
    for (int j = p.jm.lo; j <= p.jm.hi; ++j) {
      for (int k = p.k.lo; k <= p.k.hi; ++k) {
        for (int i = p.im.lo; i <= p.im.hi; ++i) {
          q3(i, k, j) = q4(b, i, k, j);
        }
      }
    }
    rk_scalar_tend(p, q3, winds, cfg, tend3);
    for (int j = p.jp.lo; j <= p.jp.hi; ++j) {
      for (int k = p.k.lo; k <= p.k.hi; ++k) {
        for (int i = p.ip.lo; i <= p.ip.hi; ++i) {
          EXPECT_FLOAT_EQ(tend4(b, i, k, j), tend3(i, k, j))
              << b << " " << i << " " << k << " " << j;
        }
      }
    }
  }
}

TEST(Advection, BoundaryFillZeroGradient) {
  const grid::Patch p = make_patch(10, 5, 8);
  Field3D<float> q(p.im, p.k, p.jm, 0.0f);
  for (int j = p.jp.lo; j <= p.jp.hi; ++j) {
    for (int k = p.k.lo; k <= p.k.hi; ++k) {
      for (int i = p.ip.lo; i <= p.ip.hi; ++i) {
        q(i, k, j) = static_cast<float>(i + 10 * j);
      }
    }
  }
  fill_domain_boundaries(p, q);
  for (int k = p.k.lo; k <= p.k.hi; ++k) {
    for (int j = p.jp.lo; j <= p.jp.hi; ++j) {
      for (int g = 1; g <= p.halo; ++g) {
        EXPECT_FLOAT_EQ(q(p.ip.lo - g, k, j), q(p.ip.lo, k, j));
        EXPECT_FLOAT_EQ(q(p.ip.hi + g, k, j), q(p.ip.hi, k, j));
      }
    }
  }
}

TEST(Winds, UpdraftShapedLikeAStorm) {
  const grid::Patch p = make_patch(40, 20, 40);
  AnalyticWinds w;
  w.domain = p.domain;
  // Max near the core center mid-level; ~0 far away and at the surface.
  const int ic = 20, jc = 20;
  EXPECT_GT(w.w(ic, 10, jc), 0.5 * w.w_max);
  EXPECT_NEAR(w.w(2, 10, 2), 0.0, 1e-6);
  EXPECT_LT(w.w(ic, 1, jc), w.w(ic, 10, jc));
}

TEST(Rk3, ConservesTracerWithPeriodicLikeInterior) {
  // RK3 over a case state: total qv changes only through boundaries;
  // with zero winds it must be exactly conserved.
  model::RunConfig cfg;
  cfg.nx = 16;
  cfg.ny = 12;
  cfg.nz = 10;
  cfg.npx = cfg.npy = 1;
  const grid::Patch p = grid::decompose(cfg.domain(), 1, 1, cfg.halo)[0];
  fsbm::MicroState state(p, cfg.nkr);
  model::init_case_conus(cfg, state);
  AnalyticWinds winds = uniform_winds(p, 0.0, 0.0, 0.0);
  Rk3 rk3(p, cfg.nkr, AdvConfig{}, cfg.dt);
  prof::Profiler prof;
  double qv0 = 0.0;
  for (int j = p.jp.lo; j <= p.jp.hi; ++j)
    for (int k = p.k.lo; k <= p.k.hi; ++k)
      for (int i = p.ip.lo; i <= p.ip.hi; ++i) qv0 += state.qv(i, k, j);
  HaloFillFn halo([&](fsbm::MicroState& s) {
    fill_domain_boundaries(p, s.qv);
    for (auto& f : s.ff) fill_domain_boundaries_bins(p, f);
  });
  rk3.step(state, winds, halo, prof);
  double qv1 = 0.0;
  for (int j = p.jp.lo; j <= p.jp.hi; ++j)
    for (int k = p.k.lo; k <= p.k.hi; ++k)
      for (int i = p.ip.lo; i <= p.ip.hi; ++i) qv1 += state.qv(i, k, j);
  EXPECT_NEAR(qv1, qv0, qv0 * 1e-6);
  EXPECT_EQ(prof.calls("rk_scalar_tend"), 3u);
  EXPECT_EQ(prof.calls("rk_update_scalar"), 3u);
}

}  // namespace
}  // namespace wrf::dyn
