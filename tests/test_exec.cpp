// Unit tests for the execution-space layer (src/exec): Range3 tiling
// edge cases, exception propagation out of ThreadedSpace, the
// determinism contract (bitwise-identical reductions across executors),
// DeviceSpace dispatch accounting, the exec= knob parser, and
// serial-vs-threaded FSBM step() equivalence across all five
// fsbm::Version modes.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/exec.hpp"
#include "gpu/device.hpp"
#include "mem/residency.hpp"
#include "model/driver.hpp"

namespace wrf {
namespace {

using exec::ExecConfig;
using exec::ExecKind;
using exec::LaunchParams;
using exec::Range3;
using exec::TilePlan;

// ----------------------------------------------------------- Range3

TEST(Range3, SizeAndDecodeOrder) {
  Range3 r{Range{1, 3}, Range{10, 11}, Range{5, 6}};
  EXPECT_EQ(r.size(), 3 * 2 * 2);
  // i fastest, then k, then j (the paper's collapse order).
  EXPECT_EQ(r.cell(0).i, 1);
  EXPECT_EQ(r.cell(1).i, 2);
  EXPECT_EQ(r.cell(3).i, 1);
  EXPECT_EQ(r.cell(3).k, 11);
  EXPECT_EQ(r.cell(3).j, 5);
  EXPECT_EQ(r.cell(6).j, 6);
  const auto last = r.cell(r.size() - 1);
  EXPECT_EQ(last.i, 3);
  EXPECT_EQ(last.k, 11);
  EXPECT_EQ(last.j, 6);
}

TEST(Range3, EmptyRangesAreEmpty) {
  EXPECT_TRUE((Range3{Range{}, Range{1, 5}, Range{1, 5}}).empty());
  EXPECT_TRUE((Range3{Range{1, 5}, Range{3, 2}, Range{1, 5}}).empty());
  EXPECT_EQ((Range3{Range{}, Range{}, Range{}}).size(), 0);

  // No body invocations for an empty range, on any space.
  exec::SerialSpace ser;
  exec::ThreadedSpace thr(2);
  int calls = 0;
  LaunchParams lp;
  ser.parallel_for(Range3{Range{}, Range{1, 4}, Range{1, 4}}, lp,
                   [&](int, int, int) { ++calls; });
  thr.parallel_for(Range3{Range{1, 4}, Range{}, Range{1, 4}}, lp,
                   [&](int, int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(Range3, HaloInclusiveNegativeBounds) {
  // Memory ranges include halos and may start below zero (ims:ime).
  Range3 r{Range{-2, 2}, Range{0, 1}, Range{-1, 1}};
  EXPECT_EQ(r.size(), 5 * 2 * 3);
  std::vector<int> seen(static_cast<std::size_t>(r.size()), 0);
  exec::SerialSpace ser;
  LaunchParams lp;
  lp.grain = 4;  // force tiles that straddle row boundaries
  ser.parallel_for(r, lp, [&](int i, int k, int j) {
    EXPECT_GE(i, -2);
    EXPECT_LE(i, 2);
    const std::int64_t flat =
        (static_cast<std::int64_t>(j + 1) * 2 + k) * 5 + (i + 2);
    ++seen[static_cast<std::size_t>(flat)];
  });
  for (const int v : seen) EXPECT_EQ(v, 1);
}

TEST(Range3, InteriorShrinksIAndJOnly) {
  Range3 r{Range{1, 10}, Range{1, 4}, Range{1, 8}};
  const Range3 in = r.interior(3);
  EXPECT_EQ(in.i.lo, 4);
  EXPECT_EQ(in.i.hi, 7);
  EXPECT_EQ(in.j.lo, 4);
  EXPECT_EQ(in.j.hi, 5);
  EXPECT_EQ(in.k.lo, 1);  // k never decomposed
  EXPECT_EQ(in.k.hi, 4);
  // Too thin: interior empty.
  EXPECT_TRUE((Range3{Range{1, 6}, Range{1, 4}, Range{1, 8}})
                  .interior(3)
                  .empty());
}

TEST(Range3, ShellPlusInteriorPartitionsTheRange) {
  // Every cell lands in exactly one of {interior, 4 shell pieces}, for
  // comfortable, thin, and empty shapes.
  const Range3 shapes[] = {
      Range3{Range{1, 12}, Range{1, 3}, Range{1, 9}},
      Range3{Range{1, 6}, Range{1, 2}, Range{1, 9}},   // thin in i
      Range3{Range{1, 12}, Range{1, 2}, Range{1, 5}},  // thin in j
      Range3{Range{1, 4}, Range{1, 2}, Range{1, 4}},   // thin in both
      Range3{Range{1, 12}, Range{1, 2}, Range{}},      // empty
  };
  for (const auto& r : shapes) {
    std::vector<int> hits(static_cast<std::size_t>(r.size()), 0);
    auto mark = [&](const exec::Range3& piece) {
      for (int j = piece.j.lo; j <= piece.j.hi; ++j)
        for (int k = piece.k.lo; k <= piece.k.hi; ++k)
          for (int i = piece.i.lo; i <= piece.i.hi; ++i) {
            const std::int64_t flat =
                (static_cast<std::int64_t>(j - r.j.lo) * r.k.size() +
                 (k - r.k.lo)) *
                    r.i.size() +
                (i - r.i.lo);
            ++hits[static_cast<std::size_t>(flat)];
          }
    };
    mark(r.interior(3));
    std::int64_t shell_cells = 0;
    for (const auto& piece : r.shell(3)) {
      mark(piece);
      shell_cells += piece.size();
    }
    for (const int h : hits) EXPECT_EQ(h, 1);
    EXPECT_EQ(r.interior(3).size() + shell_cells, r.size());
  }
}

// ---------------------------------------------------------- TilePlan

TEST(TilePlan, EdgeCases) {
  // Empty plan.
  EXPECT_EQ(TilePlan(0, 8).tiles(), 0);
  // Grain larger than total: one tile covering everything.
  TilePlan big(5, 100);
  EXPECT_EQ(big.tiles(), 1);
  EXPECT_EQ(big.tile_begin(0), 0);
  EXPECT_EQ(big.tile_end(0), 5);
  // Remainder tile is short.
  TilePlan rem(10, 4);
  EXPECT_EQ(rem.tiles(), 3);
  EXPECT_EQ(rem.tile_end(2), 10);
  EXPECT_EQ(rem.tile_end(2) - rem.tile_begin(2), 2);
  // Degenerate grain is clamped to 1.
  EXPECT_EQ(TilePlan(3, 0).tiles(), 3);
}

TEST(TilePlan, LayoutIndependentOfConcurrency) {
  // The cut depends only on (total, grain) — this is the determinism
  // contract's foundation, so pin it.
  const Range3 r{Range{1, 7}, Range{1, 5}, Range{1, 3}};
  LaunchParams lp;
  const TilePlan a = exec::ExecSpace::plan_for(r, lp);
  EXPECT_EQ(a.grain(), 7 * 5);  // one (i,k) plane per tile by default
  EXPECT_EQ(a.tiles(), 3);
}

// --------------------------------------------------- parallel_for/reduce

TEST(ExecSpace, ThreadedVisitsEveryCellOnce) {
  Range3 r{Range{1, 17}, Range{1, 6}, Range{1, 5}};
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(r.size()));
  exec::ThreadedSpace thr(4);
  LaunchParams lp;
  lp.grain = 7;  // ragged tiles
  thr.parallel_for(r, lp, [&](int i, int k, int j) {
    const std::int64_t flat =
        (static_cast<std::int64_t>(j - 1) * 6 + (k - 1)) * 17 + (i - 1);
    seen[static_cast<std::size_t>(flat)].fetch_add(1);
  });
  for (const auto& v : seen) EXPECT_EQ(v.load(), 1);
}

TEST(ExecSpace, ThreadedExceptionPropagatesOutOfParallelFor) {
  exec::ThreadedSpace thr(4);
  Range3 r{Range{1, 32}, Range{1, 8}, Range{1, 8}};
  LaunchParams lp;
  lp.grain = 8;
  EXPECT_THROW(
      thr.parallel_for(r, lp,
                       [&](int i, int, int) {
                         if (i == 13) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The space stays usable after a failed dispatch.
  std::atomic<int> n{0};
  thr.parallel_for(r, lp, [&](int, int, int) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), r.size());
}

struct DoubleSum {
  double v = 0.0;
  std::uint64_t n = 0;
  void merge(const DoubleSum& o) {
    v += o.v;
    n += o.n;
  }
};

TEST(ExecSpace, ReductionBitwiseIdenticalAcrossExecutors) {
  // Floating-point sums are association-sensitive; the exec layer pins
  // the association (per-tile, merged in tile order), so every executor
  // must produce bitwise-identical doubles.
  Range3 r{Range{1, 40}, Range{1, 12}, Range{1, 9}};
  LaunchParams lp;
  auto body = [](DoubleSum& s, int i, int k, int j) {
    s.v += std::sin(0.1 * i) * std::cos(0.2 * k) + 1e-7 * j;
    ++s.n;
  };
  exec::SerialSpace ser;
  exec::ThreadedSpace t2(2), t5(5);
  const DoubleSum a = ser.parallel_reduce<DoubleSum>(r, lp, body);
  const DoubleSum b = t2.parallel_reduce<DoubleSum>(r, lp, body);
  const DoubleSum c = t5.parallel_reduce<DoubleSum>(r, lp, body);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.n, c.n);
  // Bitwise, not approximate.
  EXPECT_EQ(std::memcmp(&a.v, &b.v, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.v, &c.v, sizeof(double)), 0);
}

TEST(ExecSpace, FlatDispatchCoversRange) {
  exec::ThreadedSpace thr(3);
  LaunchParams lp;
  std::vector<std::atomic<int>> seen(1000);
  thr.parallel_for_flat(1000, lp,
                        [&](std::int64_t f) { seen[static_cast<std::size_t>(f)].fetch_add(1); });
  for (const auto& v : seen) EXPECT_EQ(v.load(), 1);
  int calls = 0;
  thr.parallel_for_flat(0, lp, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

// --------------------------------------------------------- DeviceSpace

TEST(DeviceSpace, FunctionalExecutionPlusModeledLaunch) {
  gpu::Device dev(gpu::DeviceSpec::test_device());
  exec::DeviceSpace space(dev);
  Range3 r{Range{1, 16}, Range{1, 4}, Range{1, 4}};
  LaunchParams lp;
  lp.name = "exec_test_kernel";
  lp.flops_per_iter = 10.0;
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(r.size()));
  space.parallel_for(r, lp, [&](int i, int k, int j) {
    const std::int64_t flat =
        (static_cast<std::int64_t>(j - 1) * 4 + (k - 1)) * 16 + (i - 1);
    seen[static_cast<std::size_t>(flat)].fetch_add(1);
  });
  for (const auto& v : seen) EXPECT_EQ(v.load(), 1);
  // The dispatch was recorded as a kernel launch with the right geometry.
  ASSERT_EQ(dev.launches().size(), 1u);
  EXPECT_EQ(dev.launches()[0].name, "exec_test_kernel");
  EXPECT_EQ(dev.launches()[0].iterations, r.size());
  EXPECT_GT(space.kernel_ms(), 0.0);
  EXPECT_EQ(space.dispatches(), 1u);
  // The space exposes a device data environment; a named map(to:)
  // charges capacity and prices the transfer.
  mem::DataRegion& region = space.region();
  const mem::FieldId f = region.add_field("exec_test_field", 1 << 20);
  region.map_to(f);
  EXPECT_EQ(dev.transfers().h2d_bytes, 1u << 20);
  EXPECT_EQ(dev.allocated_bytes(), 1u << 20);
  EXPECT_GT(dev.transfers().modeled_time_ms, 0.0);
}

// ------------------------------------------------------- split planner

TEST(SplitPlan, EveryTileLandsInExactlyOneShard) {
  const Range3 r{Range{1, 10}, Range{1, 6}, Range{1, 4}};
  const TilePlan plan(r.size(), r.i.size());  // one i-row per tile
  // Rows with k <= 3 are "active" — the altitude-shaped coal gate.
  const auto sp = exec::split_plan(
      r, plan, [](int, int k, int) { return k <= 3; });
  EXPECT_EQ(sp.device_cells + sp.host_cells, r.size());
  EXPECT_EQ(static_cast<std::int64_t>(sp.device_tiles.size() +
                                      sp.host_tiles.size()),
            plan.tiles());
  EXPECT_EQ(sp.device_cells, 10 * 3 * 4);
  // Lists are ascending and disjoint.
  std::vector<int> seen(static_cast<std::size_t>(plan.tiles()), 0);
  for (const auto* list : {&sp.device_tiles, &sp.host_tiles}) {
    for (std::size_t n = 0; n < list->size(); ++n) {
      if (n > 0) {
        EXPECT_LT((*list)[n - 1], (*list)[n]);
      }
      ++seen[static_cast<std::size_t>((*list)[n])];
    }
  }
  for (const int s : seen) EXPECT_EQ(s, 1);
  // device_flat enumerates exactly the device tiles' cells, ascending.
  for (std::int64_t lane = 0; lane < sp.device_cells; ++lane) {
    const Range3::Cell c = r.cell(sp.device_flat(lane));
    EXPECT_LE(c.k, 3);
    if (lane > 0) {
      EXPECT_LT(sp.device_flat(lane - 1), sp.device_flat(lane));
    }
  }
}

TEST(SplitPlan, AllTrueAndAllFalseEdges) {
  const Range3 r{Range{1, 7}, Range{1, 3}, Range{1, 5}};
  const TilePlan plan(r.size(), 10);  // ragged last tile
  const auto all = exec::split_plan(
      r, plan, [](int, int, int) { return true; });
  EXPECT_TRUE(all.host_tiles.empty());
  EXPECT_EQ(all.device_cells, r.size());
  // Ragged tail: the last lane decodes to the range's last cell.
  const Range3::Cell last = r.cell(all.device_flat(all.device_cells - 1));
  EXPECT_EQ(last.i, 7);
  EXPECT_EQ(last.k, 3);
  EXPECT_EQ(last.j, 5);
  const auto none = exec::split_plan(
      r, plan, [](int, int, int) { return false; });
  EXPECT_TRUE(none.device_tiles.empty());
  EXPECT_EQ(none.host_cells, r.size());
}

TEST(HeteroSpace, GenericDispatchMatchesThreadsAndSplitRunsBothShards) {
  gpu::Device dev(gpu::DeviceSpec::test_device());
  exec::HeteroSpace het(dev, 3);
  EXPECT_STREQ(het.name(), "hetero");
  EXPECT_EQ(het.concurrency(), 3);

  // Generic reduction: bitwise identical to serial/threads (host shard).
  Range3 r{Range{1, 24}, Range{1, 8}, Range{1, 6}};
  LaunchParams lp;
  auto body = [](DoubleSum& s, int i, int k, int j) {
    s.v += std::sin(0.3 * i) + 1e-6 * k * j;
    ++s.n;
  };
  exec::SerialSpace ser;
  const DoubleSum a = ser.parallel_reduce<DoubleSum>(r, lp, body);
  const DoubleSum b = het.parallel_reduce<DoubleSum>(r, lp, body);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(std::memcmp(&a.v, &b.v, sizeof(double)), 0);
  // Generic dispatches never touch the device shard.
  EXPECT_EQ(het.device_shard().dispatches(), 0u);

  // A split run executes every cell exactly once, device tiles through
  // the device shard (one modeled launch of exactly the shard's lanes).
  lp.grain = r.i.size();
  const TilePlan plan = exec::ExecSpace::plan_for(r, lp);
  const auto sp = exec::split_plan(
      r, plan, [](int, int k, int) { return k >= 7; });
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(r.size()));
  auto count = [&](std::int64_t, std::int64_t b0, std::int64_t e0) {
    for (std::int64_t f = b0; f < e0; ++f) {
      hits[static_cast<std::size_t>(f)].fetch_add(1);
    }
  };
  het.run_split(sp, lp, count, count);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(het.device_shard().dispatches(), 1u);
  ASSERT_EQ(dev.launches().size(), 1u);
  EXPECT_EQ(dev.launches()[0].iterations, sp.device_cells);
}

// ------------------------------------------------------------- knob

TEST(ExecConfig, ParseAndDescribe) {
  EXPECT_EQ(ExecConfig::parse("serial").kind, ExecKind::kSerial);
  EXPECT_EQ(ExecConfig::parse("device").kind, ExecKind::kDevice);
  const ExecConfig t = ExecConfig::parse("threads");
  EXPECT_EQ(t.kind, ExecKind::kThreads);
  EXPECT_EQ(t.nthreads, 0);
  const ExecConfig t8 = ExecConfig::parse("threads:8");
  EXPECT_EQ(t8.kind, ExecKind::kThreads);
  EXPECT_EQ(t8.nthreads, 8);
  EXPECT_EQ(t8.describe(), "threads:8");
  EXPECT_THROW(ExecConfig::parse("threads:0"), ConfigError);
  EXPECT_THROW(ExecConfig::parse("threads:abc"), ConfigError);
  EXPECT_THROW(ExecConfig::parse("threads:8x"), ConfigError);
  EXPECT_THROW(ExecConfig::parse("gpu"), ConfigError);
  EXPECT_THROW(ExecConfig::parse(""), ConfigError);
}

TEST(ExecConfig, HeteroParseAndDescribe) {
  // The hetero:<threads> form, mirroring the SedDispatch parser tests:
  // bare mode, explicit host-shard width, and the negative inputs (bad
  // N, missing colon, trailing junk).
  const ExecConfig bare = ExecConfig::parse("hetero");
  EXPECT_EQ(bare.kind, ExecKind::kHetero);
  EXPECT_EQ(bare.nthreads, 0);
  EXPECT_EQ(bare.describe(), "hetero");
  const ExecConfig h4 = ExecConfig::parse("hetero:4");
  EXPECT_EQ(h4.kind, ExecKind::kHetero);
  EXPECT_EQ(h4.nthreads, 4);
  EXPECT_EQ(h4.describe(), "hetero:4");
  // Round trip through the argv scanner like every other knob.
  const char* argv[] = {"prog", "res=step", "exec=hetero:2"};
  const ExecConfig scanned = exec::exec_from_args(3, const_cast<char**>(argv));
  EXPECT_EQ(scanned.kind, ExecKind::kHetero);
  EXPECT_EQ(scanned.nthreads, 2);
  // Bad N.
  EXPECT_THROW(ExecConfig::parse("hetero:0"), ConfigError);
  EXPECT_THROW(ExecConfig::parse("hetero:-2"), ConfigError);
  EXPECT_THROW(ExecConfig::parse("hetero:abc"), ConfigError);
  EXPECT_THROW(ExecConfig::parse("hetero:"), ConfigError);
  // Missing colon.
  EXPECT_THROW(ExecConfig::parse("hetero8"), ConfigError);
  // Trailing junk.
  EXPECT_THROW(ExecConfig::parse("hetero:8x"), ConfigError);
  EXPECT_THROW(ExecConfig::parse("hetero:4:2"), ConfigError);
  EXPECT_THROW(ExecConfig::parse("heterogeneous"), ConfigError);
}

TEST(FuseConfig, ParseAndDescribe) {
  // The fuse= knob, mirroring the hetero:<N> parser tests above: the
  // two valid modes, the argv scanner, and the negative inputs.
  EXPECT_EQ(exec::parse_fuse("off"), exec::FuseMode::kOff);
  EXPECT_EQ(exec::parse_fuse("auto"), exec::FuseMode::kAuto);
  EXPECT_STREQ(exec::fuse_name(exec::FuseMode::kOff), "off");
  EXPECT_STREQ(exec::fuse_name(exec::FuseMode::kAuto), "auto");
  // Round trip through the argv scanner like every other knob.
  const char* argv[] = {"prog", "res=persist", "fuse=auto"};
  EXPECT_EQ(exec::fuse_from_args(3, const_cast<char**>(argv)),
            exec::FuseMode::kAuto);
  const char* argv_def[] = {"prog", "res=persist"};
  EXPECT_EQ(exec::fuse_from_args(2, const_cast<char**>(argv_def)),
            exec::FuseMode::kOff);
  // Negatives: no on/off synonyms, no parameters, case-sensitive.
  EXPECT_THROW(exec::parse_fuse("on"), ConfigError);
  EXPECT_THROW(exec::parse_fuse(""), ConfigError);
  EXPECT_THROW(exec::parse_fuse("auto:2"), ConfigError);
  EXPECT_THROW(exec::parse_fuse("Off"), ConfigError);
  EXPECT_THROW(exec::parse_fuse("fused"), ConfigError);
  EXPECT_THROW(exec::parse_fuse("of"), ConfigError);
  // The knob shows up in RunConfig::describe() either way.
  model::RunConfig cfg;
  EXPECT_NE(cfg.describe().find("fuse=off"), std::string::npos);
  cfg.fuse = exec::FuseMode::kAuto;
  EXPECT_NE(cfg.describe().find("fuse=auto"), std::string::npos);
}

TEST(ExecConfig, MakeSpace) {
  EXPECT_STREQ(exec::make_space(ExecConfig{})->name(), "serial");
  ExecConfig t;
  t.kind = ExecKind::kThreads;
  t.nthreads = 3;
  auto thr = exec::make_space(t);
  EXPECT_STREQ(thr->name(), "threads");
  EXPECT_EQ(thr->concurrency(), 3);
  ExecConfig d;
  d.kind = ExecKind::kDevice;
  EXPECT_THROW(exec::make_space(d), ConfigError);
  gpu::Device dev(gpu::DeviceSpec::test_device());
  EXPECT_STREQ(exec::make_space(d, &dev)->name(), "device");
  // hetero needs a device too (its device shard wraps it).
  ExecConfig h;
  h.kind = ExecKind::kHetero;
  h.nthreads = 2;
  EXPECT_THROW(exec::make_space(h), ConfigError);
  auto het = exec::make_space(h, &dev);
  EXPECT_STREQ(het->name(), "hetero");
  EXPECT_EQ(het->concurrency(), 2);
}

// ------------------------------------- FSBM serial vs threaded step()

model::RunConfig exec_case(fsbm::Version v, const ExecConfig& e) {
  model::RunConfig cfg;
  cfg.nx = 16;
  cfg.ny = 12;
  cfg.nz = 8;
  cfg.nkr = 33;
  cfg.nsteps = 2;
  cfg.version = v;
  cfg.exec = e;
  return cfg;
}

void expect_same_physics(const model::RunResult& a, const model::RunResult& b,
                         const char* label) {
  SCOPED_TRACE(label);
  const fsbm::FsbmStats& fa = a.totals.fsbm;
  const fsbm::FsbmStats& fb = b.totals.fsbm;
  // Integer physics counters: identical.
  EXPECT_EQ(fa.cells_active, fb.cells_active);
  EXPECT_EQ(fa.cells_coal, fb.cells_coal);
  EXPECT_EQ(fa.kernel_table_fills, fb.kernel_table_fills);
  EXPECT_EQ(fa.kernel_entries, fb.kernel_entries);
  EXPECT_EQ(fa.coal_interactions, fb.coal_interactions);
  // Floating-point work counters and precip: bitwise (the exec layer
  // pins the reduction association).
  EXPECT_EQ(fa.coal_flops, fb.coal_flops);
  EXPECT_EQ(fa.cond_flops, fb.cond_flops);
  EXPECT_EQ(fa.nucl_flops, fb.nucl_flops);
  EXPECT_EQ(fa.sed_flops, fb.sed_flops);
  // Per-column CFL substeps are sedimentation-dispatch-invariant (the
  // blocked solver masks columns instead of changing their substep
  // counts), so they must match even across sed=column vs sed=block.
  EXPECT_EQ(fa.sed_substeps, fb.sed_substeps);
  EXPECT_EQ(fa.surface_precip, fb.surface_precip);
  // Full state snapshots: bitwise identical.
  ASSERT_EQ(a.snapshots.size(), b.snapshots.size());
  for (std::size_t s = 0; s < a.snapshots.size(); ++s) {
    const auto& va = a.snapshots[s].variables();
    const auto& vb = b.snapshots[s].variables();
    ASSERT_EQ(va.size(), vb.size());
    for (std::size_t v = 0; v < va.size(); ++v) {
      EXPECT_EQ(va[v].name, vb[v].name);
      ASSERT_EQ(va[v].data.size(), vb[v].data.size());
      EXPECT_EQ(std::memcmp(va[v].data.data(), vb[v].data.data(),
                            va[v].data.size() * sizeof(float)),
                0)
          << va[v].name << " differs";
    }
  }
}

TEST(ExecFsbm, SerialVsThreadedBitwiseAcrossAllVersions) {
  ExecConfig threads;
  threads.kind = ExecKind::kThreads;
  threads.nthreads = 3;
  for (const fsbm::Version v :
       {fsbm::Version::kV0Baseline, fsbm::Version::kV1LookupOnDemand,
        fsbm::Version::kV2Offload2, fsbm::Version::kV3Offload3,
        fsbm::Version::kV3NaiveCollapse3}) {
    prof::Profiler p1, p2;
    const model::RunResult serial =
        model::run_single(exec_case(v, ExecConfig{}), p1);
    const model::RunResult threaded =
        model::run_single(exec_case(v, threads), p2);
    expect_same_physics(serial, threaded, fsbm::version_name(v));
  }
}

TEST(ExecFsbm, ThreadCountDoesNotChangeResults) {
  // Determinism across thread counts, not just vs. serial: the tile cut
  // never depends on concurrency.
  ExecConfig t2, t7;
  t2.kind = t7.kind = ExecKind::kThreads;
  t2.nthreads = 2;
  t7.nthreads = 7;
  prof::Profiler p1, p2;
  const auto a =
      model::run_single(exec_case(fsbm::Version::kV1LookupOnDemand, t2), p1);
  const auto b =
      model::run_single(exec_case(fsbm::Version::kV1LookupOnDemand, t7), p2);
  expect_same_physics(a, b, "threads:2 vs threads:7");
}

// ------------------------------- blocked sedimentation dispatch (sed=)

TEST(ExecFsbm, SedBlockMatchesColumnBitwiseAcrossAllVersions) {
  // nx = 18 with one j-row of columns per tile makes block:8 cut tiles
  // into 8 + 8 + 2 — the ragged-tail case — and block:1 exercises the
  // degenerate width.  Both must be bitwise identical to the per-column
  // oracle in state AND in stats (precip association is pinned).
  for (const fsbm::Version v :
       {fsbm::Version::kV0Baseline, fsbm::Version::kV1LookupOnDemand,
        fsbm::Version::kV2Offload2, fsbm::Version::kV3Offload3,
        fsbm::Version::kV3NaiveCollapse3}) {
    model::RunConfig column = exec_case(v, ExecConfig{});
    column.nx = 18;
    for (const char* mode : {"block:1", "block:8"}) {
      model::RunConfig block = column;
      block.sed = fsbm::SedDispatch::parse(mode);
      prof::Profiler p1, p2;
      const model::RunResult a = model::run_single(column, p1);
      const model::RunResult b = model::run_single(block, p2);
      expect_same_physics(
          a, b,
          (std::string(fsbm::version_name(v)) + " column vs " + mode)
              .c_str());
      // The blocked path must actually amortize: fewer terminal-velocity
      // power-law evaluations and fewer lockstep marches than columns.
      EXPECT_LT(b.totals.fsbm.sed_tv_lookups, a.totals.fsbm.sed_tv_lookups);
      EXPECT_LE(b.totals.fsbm.sed_lockstep_substeps,
                a.totals.fsbm.sed_lockstep_substeps);
    }
  }
}

TEST(ExecFsbm, SedBlockSerialVsThreadedBitwise) {
  // The blocked path's per-thread gather/scatter buffers must not leak
  // state between tiles or threads: serial and threaded dispatch of
  // sed=block:8 are bitwise identical.
  ExecConfig threads;
  threads.kind = ExecKind::kThreads;
  threads.nthreads = 3;
  model::RunConfig cs = exec_case(fsbm::Version::kV1LookupOnDemand, {});
  cs.nx = 18;  // ragged tail blocks in every tile
  cs.sed = fsbm::SedDispatch::parse("block:8");
  model::RunConfig ct = cs;
  ct.exec = threads;
  prof::Profiler p1, p2;
  const model::RunResult a = model::run_single(cs, p1);
  const model::RunResult b = model::run_single(ct, p2);
  expect_same_physics(a, b, "sed=block:8 serial vs threads:3");
  EXPECT_EQ(a.totals.fsbm.sed_tv_lookups, b.totals.fsbm.sed_tv_lookups);
  EXPECT_EQ(a.totals.fsbm.sed_lockstep_substeps,
            b.totals.fsbm.sed_lockstep_substeps);
}

TEST(SedDispatch, ParseAndDescribe) {
  using fsbm::SedDispatch;
  EXPECT_EQ(SedDispatch::parse("column").kind, SedDispatch::Kind::kColumn);
  const SedDispatch bare = SedDispatch::parse("block");
  EXPECT_EQ(bare.kind, SedDispatch::Kind::kBlock);
  EXPECT_EQ(bare.block, 8);
  const SedDispatch b4 = SedDispatch::parse("block:4");
  EXPECT_EQ(b4.kind, SedDispatch::Kind::kBlock);
  EXPECT_EQ(b4.block, 4);
  EXPECT_EQ(b4.describe(), "block:4");
  EXPECT_EQ(SedDispatch{}.describe(), "column");
  EXPECT_THROW(SedDispatch::parse("block:0"), ConfigError);
  EXPECT_THROW(SedDispatch::parse("block:abc"), ConfigError);
  EXPECT_THROW(SedDispatch::parse("rows"), ConfigError);
  EXPECT_THROW(SedDispatch::parse(""), ConfigError);
}

// ------------------------------- device residency dispatch (res=)

TEST(ExecFsbm, ResPersistMatchesStepBitwiseAcrossAllVersions) {
  // res= only changes *when* bytes cross the modeled link, never the
  // physics: persist must be bitwise identical to step in state and
  // physics stats for every version, serial and threaded.
  ExecConfig threads;
  threads.kind = ExecKind::kThreads;
  threads.nthreads = 3;
  for (const fsbm::Version v :
       {fsbm::Version::kV0Baseline, fsbm::Version::kV1LookupOnDemand,
        fsbm::Version::kV2Offload2, fsbm::Version::kV3Offload3,
        fsbm::Version::kV3NaiveCollapse3}) {
    for (const ExecConfig& e : {ExecConfig{}, threads}) {
      model::RunConfig step_cfg = exec_case(v, e);
      model::RunConfig persist_cfg = step_cfg;
      persist_cfg.res = mem::ResidencyMode::kPersist;
      prof::Profiler p1, p2;
      const model::RunResult a = model::run_single(step_cfg, p1);
      const model::RunResult b = model::run_single(persist_cfg, p2);
      expect_same_physics(a, b,
                          (std::string(fsbm::version_name(v)) + " res " +
                           e.describe())
                              .c_str());
    }
  }
}

TEST(ExecFsbm, ResPersistMatchesStepUnderDeviceExec) {
  // exec=device models every host nest as a device kernel; persist then
  // keeps the fields resident between them.  Physics must not move, and
  // the steady-state traffic reduction must be visible in the stats.
  model::RunConfig step_cfg = exec_case(fsbm::Version::kV3Offload3, {});
  step_cfg.exec.kind = ExecKind::kDevice;
  model::RunConfig persist_cfg = step_cfg;
  persist_cfg.res = mem::ResidencyMode::kPersist;
  prof::Profiler p1, p2;
  const model::RunResult a = model::run_single(step_cfg, p1);
  const model::RunResult b = model::run_single(persist_cfg, p2);
  expect_same_physics(a, b, "v3 exec=device res step vs persist");
  EXPECT_LT(b.totals.fsbm.h2d_bytes, a.totals.fsbm.h2d_bytes);
  EXPECT_LT(b.totals.fsbm.d2h_bytes, a.totals.fsbm.d2h_bytes);
  EXPECT_GT(b.resident_bytes_per_rank, 0u);
  EXPECT_EQ(a.resident_bytes_per_rank, 0u);
}

TEST(ExecFsbm, ResPersistMultiRankBitwiseUnderBothHaloModes) {
  // Decomposed runs exercise the dirty-strip path: halo unpack marks
  // only shell strips, under both the blocking and overlapped exchange.
  // exec=device additionally drives begin()'s send-strip d2h flush (the
  // per-round advection marks make every round's strips device-dirty).
  ExecConfig threads, device;
  threads.kind = ExecKind::kThreads;
  threads.nthreads = 2;
  device.kind = ExecKind::kDevice;
  for (const fsbm::Version v :
       {fsbm::Version::kV2Offload2, fsbm::Version::kV3Offload3}) {
    for (const dyn::HaloMode h : {dyn::HaloMode::kSync, dyn::HaloMode::kOverlap}) {
      for (const ExecConfig& e : {threads, device}) {
        model::RunConfig step_cfg = exec_case(v, e);
        step_cfg.npx = step_cfg.npy = 2;
        step_cfg.nx = 24;
        step_cfg.ny = 16;
        step_cfg.halo_mode = h;
        model::RunConfig persist_cfg = step_cfg;
        persist_cfg.res = mem::ResidencyMode::kPersist;
        prof::Profiler p1, p2;
        const model::RunResult a = model::run_simulation(step_cfg, p1);
        const model::RunResult b = model::run_simulation(persist_cfg, p2);
        expect_same_physics(a, b,
                            (std::string(fsbm::version_name(v)) + " halo=" +
                             dyn::halo_mode_name(h) + " exec=" + e.describe() +
                             " res step vs persist")
                                .c_str());
      }
    }
  }
}

TEST(ExecFsbm, ResPersistTrafficDeterministicAcrossThreadCounts) {
  // Dirty marking happens in pass epilogues from deterministic state, so
  // the modeled byte counts — not just the physics — must be identical
  // across executors and thread counts.
  ExecConfig t2, t5;
  t2.kind = t5.kind = ExecKind::kThreads;
  t2.nthreads = 2;
  t5.nthreads = 5;
  model::RunConfig base = exec_case(fsbm::Version::kV3Offload3, t2);
  base.res = mem::ResidencyMode::kPersist;
  model::RunConfig alt = base;
  alt.exec = t5;
  prof::Profiler p1, p2;
  const model::RunResult a = model::run_single(base, p1);
  const model::RunResult b = model::run_single(alt, p2);
  expect_same_physics(a, b, "persist threads:2 vs threads:5");
  EXPECT_EQ(a.totals.fsbm.h2d_bytes, b.totals.fsbm.h2d_bytes);
  EXPECT_EQ(a.totals.fsbm.d2h_bytes, b.totals.fsbm.d2h_bytes);
  EXPECT_EQ(a.totals.fsbm.h2d_transfers, b.totals.fsbm.h2d_transfers);
  EXPECT_EQ(a.totals.fsbm.d2h_transfers, b.totals.fsbm.d2h_transfers);
}

// ------------------------------- heterogeneous dispatch (exec=hetero)

TEST(ExecFsbm, HeteroMatchesDeviceAndThreadsBitwiseAcrossAllVersions) {
  // The acceptance bar: exec=hetero:N must be bitwise identical in state
  // AND physics stats to both exec=device and exec=threads:N, for every
  // version and residency mode.  The split only fires for the offloaded
  // versions; for v0/v1 hetero degenerates to its host shard.
  ExecConfig threads, device, hetero;
  threads.kind = ExecKind::kThreads;
  threads.nthreads = 3;
  device.kind = ExecKind::kDevice;
  hetero.kind = ExecKind::kHetero;
  hetero.nthreads = 3;
  for (const fsbm::Version v :
       {fsbm::Version::kV0Baseline, fsbm::Version::kV1LookupOnDemand,
        fsbm::Version::kV2Offload2, fsbm::Version::kV3Offload3,
        fsbm::Version::kV3NaiveCollapse3}) {
    for (const mem::ResidencyMode res :
         {mem::ResidencyMode::kStep, mem::ResidencyMode::kPersist}) {
      model::RunConfig het_cfg = exec_case(v, hetero);
      het_cfg.res = res;
      model::RunConfig dev_cfg = het_cfg;
      dev_cfg.exec = device;
      model::RunConfig thr_cfg = het_cfg;
      thr_cfg.exec = threads;
      prof::Profiler p1, p2, p3;
      const model::RunResult h = model::run_single(het_cfg, p1);
      const model::RunResult d = model::run_single(dev_cfg, p2);
      const model::RunResult t = model::run_single(thr_cfg, p3);
      const std::string label = std::string(fsbm::version_name(v)) +
                                " res=" + mem::residency_name(res);
      expect_same_physics(h, d, (label + " hetero vs device").c_str());
      expect_same_physics(h, t, (label + " hetero vs threads").c_str());
      if (het_cfg.offloaded()) {
        // The split fired and covered every cell.  (At this shallow
        // grid the whole sounding is warmer than the coal gate, so all
        // rows land in the device shard; HeteroSplitsNontriviallyOn-
        // TallDomains exercises the two-sided cut.)
        EXPECT_GT(h.totals.fsbm.shard_cells_device, 0u);
        EXPECT_EQ(h.totals.fsbm.shard_cells_device +
                      h.totals.fsbm.shard_cells_host,
                  static_cast<std::uint64_t>(het_cfg.nx) * het_cfg.ny *
                      het_cfg.nz * het_cfg.nsteps);
        // Non-hetero runs never populate the shard counters.
        EXPECT_EQ(d.totals.fsbm.shard_cells_device, 0u);
        EXPECT_EQ(t.totals.fsbm.shard_cells_device, 0u);
      }
    }
  }
}

model::RunConfig hetero_tall_case(fsbm::Version v) {
  // 40 levels x 400 m reaches ~16 km: rows above the 223.15 K coal gate
  // (~12.1 km) are predicate-false, so the split is nontrivial — both
  // shards get real work.
  model::RunConfig cfg;
  cfg.nx = 12;
  cfg.ny = 10;
  cfg.nz = 40;
  cfg.nkr = 33;
  cfg.nsteps = 2;
  cfg.version = v;
  cfg.exec.kind = ExecKind::kHetero;
  cfg.exec.nthreads = 2;
  return cfg;
}

TEST(ExecFsbm, HeteroSplitsNontriviallyOnTallDomains) {
  model::RunConfig cfg = hetero_tall_case(fsbm::Version::kV3Offload3);
  model::RunConfig dev_cfg = cfg;
  dev_cfg.exec = ExecConfig{};
  dev_cfg.exec.kind = ExecKind::kDevice;
  prof::Profiler p1, p2;
  const model::RunResult h = model::run_single(cfg, p1);
  const model::RunResult d = model::run_single(dev_cfg, p2);
  expect_same_physics(h, d, "tall-domain hetero vs device");
  // Both shards carried cells.
  EXPECT_GT(h.totals.fsbm.shard_cells_device, 0u);
  EXPECT_GT(h.totals.fsbm.shard_cells_host, 0u);
  EXPECT_GT(h.device_shard_fraction(), 0.0);
  EXPECT_LT(h.device_shard_fraction(), 1.0);
  // Shard-granular coherence: the hetero coal pass ships only the
  // device shard's rows, so its h2d traffic is strictly below the
  // full-field re-maps exec=device pays under res=step.
  EXPECT_LT(h.totals.fsbm.h2d_bytes, d.totals.fsbm.h2d_bytes);
}

TEST(ExecFsbm, HeteroAllColdPredicateSkipsTheDeviceEntirely) {
  // Raise the coal gate above every temperature in the sounding: the
  // predicate is all-false, the device shard gets zero tiles, and the
  // hetero run still matches exec=device bitwise.
  model::RunConfig cfg = exec_case(fsbm::Version::kV2Offload2, ExecConfig{});
  cfg.exec.kind = ExecKind::kHetero;
  cfg.exec.nthreads = 2;
  cfg.fsbm_params.t_coal = 1000.0;
  model::RunConfig dev_cfg = cfg;
  dev_cfg.exec = ExecConfig{};
  dev_cfg.exec.kind = ExecKind::kDevice;
  prof::Profiler p1, p2;
  const model::RunResult h = model::run_single(cfg, p1);
  const model::RunResult d = model::run_single(dev_cfg, p2);
  expect_same_physics(h, d, "all-cold hetero vs device");
  EXPECT_EQ(h.totals.fsbm.shard_cells_device, 0u);
  EXPECT_GT(h.totals.fsbm.shard_cells_host, 0u);
  // No device tiles -> no coal-pass transfers at all under hetero.
  EXPECT_EQ(h.totals.fsbm.h2d_bytes, 0u);
  EXPECT_EQ(h.totals.fsbm.d2h_bytes, 0u);
}

TEST(ExecFsbm, HeteroMultiRankBitwiseUnderBothHaloAndResModes) {
  // Decomposed runs: the split interacts with the phased halo exchange
  // (persist's dirty-strip updates flow through the same data region the
  // shard-granular coal transfers use).  hetero must stay bitwise equal
  // to device and threads under halo=sync|overlap x res=step|persist,
  // for every version; v0/v1 have no residency surface, so only
  // res=step is meaningful there.
  ExecConfig threads, device, hetero;
  threads.kind = ExecKind::kThreads;
  threads.nthreads = 2;
  device.kind = ExecKind::kDevice;
  hetero.kind = ExecKind::kHetero;
  hetero.nthreads = 2;
  for (const fsbm::Version v :
       {fsbm::Version::kV0Baseline, fsbm::Version::kV1LookupOnDemand,
        fsbm::Version::kV2Offload2, fsbm::Version::kV3Offload3,
        fsbm::Version::kV3NaiveCollapse3}) {
    const bool offloaded = v != fsbm::Version::kV0Baseline &&
                           v != fsbm::Version::kV1LookupOnDemand;
    for (const dyn::HaloMode hm :
         {dyn::HaloMode::kSync, dyn::HaloMode::kOverlap}) {
      for (const mem::ResidencyMode res :
           {mem::ResidencyMode::kStep, mem::ResidencyMode::kPersist}) {
        if (!offloaded && res == mem::ResidencyMode::kPersist) continue;
        model::RunConfig het_cfg = exec_case(v, hetero);
        het_cfg.npx = het_cfg.npy = 2;
        het_cfg.nx = 24;
        het_cfg.ny = 16;
        het_cfg.halo_mode = hm;
        het_cfg.res = res;
        model::RunConfig dev_cfg = het_cfg;
        dev_cfg.exec = device;
        model::RunConfig thr_cfg = het_cfg;
        thr_cfg.exec = threads;
        prof::Profiler p1, p2, p3;
        const model::RunResult h = model::run_simulation(het_cfg, p1);
        const model::RunResult d = model::run_simulation(dev_cfg, p2);
        const model::RunResult t = model::run_simulation(thr_cfg, p3);
        const std::string label = std::string(fsbm::version_name(v)) +
                                  " halo=" + dyn::halo_mode_name(hm) +
                                  " res=" + mem::residency_name(res);
        expect_same_physics(h, d, (label + " hetero vs device").c_str());
        expect_same_physics(h, t, (label + " hetero vs threads").c_str());
      }
    }
  }
}

TEST(ExecFsbm, HeteroTransfersReconcileWithDeviceTransferStats) {
  // Every byte the device records under the split must be charged into
  // FsbmStats by exactly one pass bracket — shard-granular uploads,
  // kernel-write flushes, transport marks, and the pre-snapshot flush
  // included — so the run totals reconcile with gpu::TransferStats
  // exactly, under both residency modes.
  for (const mem::ResidencyMode res :
       {mem::ResidencyMode::kStep, mem::ResidencyMode::kPersist}) {
    SCOPED_TRACE(mem::residency_name(res));
    model::RunConfig cfg = hetero_tall_case(fsbm::Version::kV3Offload3);
    cfg.res = res;
    cfg.validate();
    const auto patches = grid::decompose(cfg.domain(), 1, 1, cfg.halo);
    model::RankModel rank(cfg, patches[0], nullptr);
    rank.init();
    prof::Profiler prof;
    model::StepStats total;
    for (int s = 0; s < 3; ++s) total.merge(rank.step(prof));
    const gpu::TransferStats& tr = rank.device()->transfers();
    EXPECT_EQ(total.fsbm.h2d_bytes, tr.h2d_bytes);
    EXPECT_EQ(total.fsbm.d2h_bytes, tr.d2h_bytes);
    EXPECT_EQ(total.fsbm.h2d_transfers, tr.h2d_count);
    EXPECT_EQ(total.fsbm.d2h_transfers, tr.d2h_count);
  }
}

TEST(ExecFsbm, HeteroTrafficDeterministicAcrossHostShardWidths) {
  // The split and its transfers are pure functions of the predicate, so
  // hetero traffic — not just physics — is identical across host-shard
  // thread counts.
  model::RunConfig a_cfg = hetero_tall_case(fsbm::Version::kV3Offload3);
  a_cfg.res = mem::ResidencyMode::kPersist;
  model::RunConfig b_cfg = a_cfg;
  b_cfg.exec.nthreads = 5;
  prof::Profiler p1, p2;
  const model::RunResult a = model::run_single(a_cfg, p1);
  const model::RunResult b = model::run_single(b_cfg, p2);
  expect_same_physics(a, b, "hetero:2 vs hetero:5");
  EXPECT_EQ(a.totals.fsbm.h2d_bytes, b.totals.fsbm.h2d_bytes);
  EXPECT_EQ(a.totals.fsbm.d2h_bytes, b.totals.fsbm.d2h_bytes);
  EXPECT_EQ(a.totals.fsbm.h2d_transfers, b.totals.fsbm.h2d_transfers);
  EXPECT_EQ(a.totals.fsbm.d2h_transfers, b.totals.fsbm.d2h_transfers);
  EXPECT_EQ(a.totals.fsbm.shard_cells_device, b.totals.fsbm.shard_cells_device);
  EXPECT_EQ(a.totals.fsbm.shard_cells_host, b.totals.fsbm.shard_cells_host);
}

TEST(ExecFsbm, MultiRankThreadedMatchesSerial) {
  // Decomposed run: per-rank exec spaces + threaded halo pack/unpack
  // must not perturb the solution either.
  ExecConfig threads;
  threads.kind = ExecKind::kThreads;
  threads.nthreads = 2;
  model::RunConfig cs = exec_case(fsbm::Version::kV1LookupOnDemand, {});
  cs.npx = cs.npy = 2;
  cs.nx = 24;
  cs.ny = 16;
  model::RunConfig ct = cs;
  ct.exec = threads;
  prof::Profiler p1, p2;
  const auto a = model::run_simulation(cs, p1);
  const auto b = model::run_simulation(ct, p2);
  expect_same_physics(a, b, "4 ranks serial vs threads:2");
}

}  // namespace
}  // namespace wrf
