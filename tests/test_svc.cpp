// Scheduler laws of the forecast service (src/svc): FIFO within a
// class, hierarchical fair-share across classes under saturation,
// typed admission rejection of an over-DRAM job, deadline ordering,
// same-shape batching, and the determinism gate — every scheduled
// job's state hash and physics stats are bitwise identical to a
// standalone model::run_single of the same RunConfig, across serial
// and threaded host dispatch, both residency modes, and a concurrent
// multi-lane pool.  Plus the admission footprint's one-source-of-truth
// law: svc::job_footprint_bytes, the perfmodel ranks-per-GPU formula,
// and the residency subsystem's actually-allocated bytes all agree.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "perfmodel/machine.hpp"
#include "svc/scheduler.hpp"

namespace wrf {
namespace {

/// A cheap host-only scenario for pure scheduling-law tests.
model::RunConfig tiny_case(std::uint64_t seed = 1) {
  model::RunConfig cfg;
  cfg.nx = 12;
  cfg.ny = 8;
  cfg.nz = 6;
  cfg.npx = cfg.npy = 1;
  cfg.nsteps = 1;
  cfg.version = fsbm::Version::kV1LookupOnDemand;
  cfg.seed = seed;
  return cfg;
}

/// An offloaded scenario (device footprint > 0) for admission tests.
model::RunConfig offload_case(fsbm::Version v, mem::ResidencyMode res,
                              std::uint64_t seed = 1) {
  model::RunConfig cfg;
  cfg.nx = 16;
  cfg.ny = 12;
  cfg.nz = 8;
  cfg.npx = cfg.npy = 1;
  cfg.nsteps = 2;
  cfg.version = v;
  cfg.res = res;
  cfg.seed = seed;
  return cfg;
}

svc::SchedulerConfig one_lane_no_batch() {
  svc::SchedulerConfig sc;
  sc.lanes = 1;
  sc.batch_max = 1;
  sc.start_paused = true;
  return sc;
}

/// Results sorted by the order jobs left the queue.
std::vector<svc::JobResult> by_dispatch(std::vector<svc::JobResult> rs) {
  std::sort(rs.begin(), rs.end(),
            [](const svc::JobResult& a, const svc::JobResult& b) {
              return a.dispatch_seq < b.dispatch_seq;
            });
  return rs;
}

// ------------------------------------------------------------- job model

TEST(SvcJob, ClassNamesRoundTrip) {
  EXPECT_EQ(svc::parse_job_class("interactive"), svc::JobClass::kInteractive);
  EXPECT_EQ(svc::parse_job_class("ensemble"), svc::JobClass::kEnsemble);
  EXPECT_EQ(svc::parse_job_class("batch"), svc::JobClass::kBatch);
  for (int c = 0; c < svc::kNumClasses; ++c) {
    const auto cls = static_cast<svc::JobClass>(c);
    EXPECT_EQ(svc::parse_job_class(svc::job_class_name(cls)), cls);
  }
  EXPECT_THROW(svc::parse_job_class("premium"), ConfigError);
  EXPECT_THROW(svc::parse_job_class(""), ConfigError);
}

TEST(SvcJob, ShapeKeyIgnoresSeedButNotShape) {
  const model::RunConfig a = offload_case(fsbm::Version::kV2Offload2,
                                          mem::ResidencyMode::kStep, 1);
  model::RunConfig b = a;
  b.seed = 999;  // a perturbed ensemble member
  EXPECT_EQ(svc::job_shape_key(a), svc::job_shape_key(b));

  model::RunConfig c = a;
  c.nx = 24;
  EXPECT_NE(svc::job_shape_key(a), svc::job_shape_key(c));
  model::RunConfig d = a;
  d.nsteps = 3;
  EXPECT_NE(svc::job_shape_key(a), svc::job_shape_key(d));
  model::RunConfig e = a;
  e.res = mem::ResidencyMode::kPersist;
  EXPECT_NE(svc::job_shape_key(a), svc::job_shape_key(e));
}

// ------------------------------------------- footprint: one source of truth

TEST(SvcFootprint, SharedFormulaArithmetic) {
  perfmodel::ResidentInventory inv;
  inv.bin_arrays = 2;
  inv.arrays_3d = 3;
  inv.byte_arrays_3d = 1;
  inv.elem_bytes = 4;
  inv.fixed_bytes = 100;
  // per cell: 2 bin arrays x nkr=5 x 4B + 3 arrays x 4B + 1 byte = 53.
  EXPECT_EQ(perfmodel::resident_footprint_bytes(inv, 10, 5), 10u * 53u + 100u);
  inv.fixed_bytes = 0;
  EXPECT_EQ(perfmodel::resident_footprint_bytes(inv, 0, 5), 0u);
}

TEST(SvcFootprint, PerfmodelRanksPerDeviceUsesTheSharedFormula) {
  // The paper-scale DeviceFootprint must price per-rank bytes exactly as
  // the pre-refactor inline formula did — the refactor onto
  // resident_footprint_bytes changes the source of truth, not the number.
  const perfmodel::DeviceFootprint df;
  const std::int64_t cells = 107LL * 75 * 50;
  const int nkr = 33;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(cells) *
          (static_cast<std::uint64_t>(df.bin_arrays) * nkr + df.arrays_3d) *
          df.elem_bytes +
      df.stack_reservation_bytes + df.context_bytes + df.heap_bytes;
  EXPECT_EQ(df.per_rank_bytes(cells, nkr), expected);
  EXPECT_GT(df.max_ranks_per_gpu(gpu::DeviceSpec::a100_40gb(), cells, nkr), 0);
}

TEST(SvcFootprint, AdmissionEstimateMatchesResidencyAllocationExactly) {
  // The admission number is not a heuristic: it equals the bytes the
  // residency subsystem actually pins for a res=persist run (field table
  // + v3 temp_arrays pools), straight from RunResult.
  for (const fsbm::Version v :
       {fsbm::Version::kV2Offload2, fsbm::Version::kV3Offload3}) {
    const model::RunConfig cfg =
        offload_case(v, mem::ResidencyMode::kPersist);
    prof::Profiler prof;
    const model::RunResult run = model::run_single(cfg, prof);
    EXPECT_EQ(svc::job_footprint_bytes(cfg),
              run.resident_bytes_per_rank + run.pool_bytes_per_rank)
        << fsbm::version_name(v);
    EXPECT_GT(svc::job_footprint_bytes(cfg), 0u);
  }
  // Host-only versions demand no device bytes.
  EXPECT_EQ(svc::job_footprint_bytes(tiny_case()), 0u);
}

// ---------------------------------------------------------- fair-share tree

TEST(FairShareTree, RejectsBadWeightAndEmptyPop) {
  svc::FairShareTree tree;
  EXPECT_THROW(tree.add_leaf("zero", 0.0), ConfigError);
  EXPECT_THROW(tree.add_leaf("negative", -1.0), ConfigError);
  tree.add_leaf("ok", 1.0);
  EXPECT_TRUE(tree.empty());
  EXPECT_THROW(tree.pop_next(), Error);
}

TEST(FairShareTree, FifoWithinLeafWithoutDeadlines) {
  svc::FairShareTree tree;
  const int leaf = tree.add_leaf("batch", 1.0);
  for (std::uint64_t n = 1; n <= 4; ++n) {
    svc::QueueEntry e;
    e.id = n;
    e.seq = n;
    e.cost = 1.0;
    tree.push(leaf, e);
  }
  for (std::uint64_t n = 1; n <= 4; ++n) {
    EXPECT_EQ(tree.pop_next().id, n);
  }
}

TEST(FairShareTree, DeadlineOrdersWithinLeaf) {
  svc::FairShareTree tree;
  const int leaf = tree.add_leaf("interactive", 1.0);
  const double deadlines[] = {0.0, 500.0, 100.0, 0.0};  // 0 = none
  for (std::uint64_t n = 0; n < 4; ++n) {
    svc::QueueEntry e;
    e.id = n + 1;
    e.seq = n + 1;
    e.deadline = deadlines[n];
    e.cost = 1.0;
    tree.push(leaf, e);
  }
  // Earliest deadline first; deadline-free entries last, FIFO among them.
  EXPECT_EQ(tree.pop_next().id, 3u);
  EXPECT_EQ(tree.pop_next().id, 2u);
  EXPECT_EQ(tree.pop_next().id, 1u);
  EXPECT_EQ(tree.pop_next().id, 4u);
}

TEST(FairShareTree, WeightedInterleaveIsThePinnedSequence) {
  // Weights 8/3/1, five equal-cost entries per leaf.  The usage/weight
  // rule (ties: most urgent deadline, then lowest leaf) produces exactly
  // this sequence — a pure function of the queue, pinned here so any
  // change to the rule is a visible diff.
  svc::FairShareTree tree;
  tree.add_leaf("interactive", 8.0);
  tree.add_leaf("ensemble", 3.0);
  tree.add_leaf("batch", 1.0);
  std::uint64_t seq = 1;
  for (int l = 0; l < 3; ++l) {
    for (int n = 0; n < 5; ++n) {
      svc::QueueEntry e;
      e.id = seq;
      e.seq = seq;
      e.cost = 1.0;
      tree.push(l, e);
      ++seq;
    }
  }
  const int expected[] = {0, 1, 2, 0, 0, 1, 0, 0, 1, 1, 2, 1, 2, 2, 2};
  for (int n = 0; n < 15; ++n) {
    int leaf = -1;
    tree.pop_next(&leaf);
    EXPECT_EQ(leaf, expected[n]) << "dispatch " << n;
  }
  EXPECT_TRUE(tree.empty());
}

TEST(FairShareTree, DeadlineBreaksRootTies) {
  // Both leaves idle (equal shares): the one holding the most urgent
  // deadline wins even though it has the higher index.
  svc::FairShareTree tree;
  tree.add_leaf("a", 1.0);
  tree.add_leaf("b", 1.0);
  svc::QueueEntry ea;
  ea.id = 1;
  ea.seq = 1;
  ea.cost = 1.0;
  tree.push(0, ea);
  svc::QueueEntry eb;
  eb.id = 2;
  eb.seq = 2;
  eb.deadline = 5.0;
  eb.cost = 1.0;
  tree.push(1, eb);
  int leaf = -1;
  EXPECT_EQ(tree.pop_next(&leaf).id, 2u);
  EXPECT_EQ(leaf, 1);
}

TEST(FairShareTree, PopMatchingFiltersShapeAndBudget) {
  svc::FairShareTree tree;
  const int leaf = tree.add_leaf("ensemble", 3.0);
  struct Row {
    std::uint64_t id;
    const char* shape;
    std::uint64_t bytes;
    double deadline;
  };
  const Row rows[] = {{1, "A", 100, 0.0},
                      {2, "B", 100, 0.0},
                      {3, "A", 100, 7.0},
                      {4, "A", 500, 0.0}};
  std::uint64_t seq = 1;
  for (const Row& r : rows) {
    svc::QueueEntry e;
    e.id = r.id;
    e.seq = seq++;
    e.shape_key = r.shape;
    e.footprint_bytes = r.bytes;
    e.deadline = r.deadline;
    e.cost = 1.0;
    tree.push(leaf, e);
  }
  svc::QueueEntry out;
  // Shape A within a 200-byte budget: deadline winner first (id 3), then
  // FIFO (id 1); id 4 matches the shape but busts the budget.
  ASSERT_TRUE(tree.pop_matching(leaf, "A", 200, &out));
  EXPECT_EQ(out.id, 3u);
  ASSERT_TRUE(tree.pop_matching(leaf, "A", 200, &out));
  EXPECT_EQ(out.id, 1u);
  EXPECT_FALSE(tree.pop_matching(leaf, "A", 200, &out));
  ASSERT_TRUE(tree.pop_matching(leaf, "A", 500, &out));
  EXPECT_EQ(out.id, 4u);
  EXPECT_FALSE(tree.pop_matching(leaf, "C", 1u << 30, &out));
  EXPECT_EQ(tree.pending(), 1u);  // shape B untouched
}

// ------------------------------------------------------------ scheduler laws

TEST(SvcScheduler, FifoWithinOneClass) {
  svc::Scheduler sched(one_lane_no_batch());
  std::vector<std::uint64_t> ids;
  for (std::uint64_t n = 0; n < 4; ++n) {
    svc::Job job;
    job.config = tiny_case(/*seed=*/n + 1);
    job.cls = svc::JobClass::kBatch;
    job.name = "fifo-" + std::to_string(n);
    const svc::Ticket t = sched.submit(job);
    ASSERT_TRUE(t.admitted);
    ids.push_back(t.id);
  }
  sched.drain();
  sched.shutdown();
  const auto results = by_dispatch(sched.take_results());
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t n = 0; n < results.size(); ++n) {
    EXPECT_EQ(results[n].id, ids[n]) << "dispatch " << n;
    EXPECT_EQ(results[n].outcome, svc::JobOutcome::kCompleted);
    EXPECT_LE(results[n].submit_sec, results[n].start_sec);
    EXPECT_LE(results[n].start_sec, results[n].finish_sec);
  }
}

TEST(SvcScheduler, DeadlineOrdersWithinAClass) {
  svc::Scheduler sched(one_lane_no_batch());
  const double deadlines[] = {0.0, 500.0, 100.0};
  std::vector<std::uint64_t> ids;
  for (int n = 0; n < 3; ++n) {
    svc::Job job;
    job.config = tiny_case(static_cast<std::uint64_t>(n) + 1);
    job.cls = svc::JobClass::kInteractive;
    job.deadline_sec = deadlines[n];
    const svc::Ticket t = sched.submit(job);
    ASSERT_TRUE(t.admitted);
    ids.push_back(t.id);
  }
  sched.drain();
  sched.shutdown();
  const auto results = by_dispatch(sched.take_results());
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].id, ids[2]);  // deadline 100s
  EXPECT_EQ(results[1].id, ids[1]);  // deadline 500s
  EXPECT_EQ(results[2].id, ids[0]);  // none
  EXPECT_TRUE(results[0].has_deadline());
  EXPECT_FALSE(results[2].has_deadline());
}

TEST(SvcScheduler, FairShareHoldsUnderSaturation) {
  // A paused-submit stream of 5 equal-cost jobs per class dispatches in
  // the pinned weighted-interleave sequence: cost units are
  // deterministic, so the order is a pure function of the queue.
  svc::Scheduler sched(one_lane_no_batch());
  std::map<std::uint64_t, svc::JobClass> cls_of;
  for (int c = 0; c < svc::kNumClasses; ++c) {
    for (int n = 0; n < 5; ++n) {
      svc::Job job;
      job.config = tiny_case(static_cast<std::uint64_t>(c * 8 + n) + 1);
      job.cls = static_cast<svc::JobClass>(c);
      const svc::Ticket t = sched.submit(job);
      ASSERT_TRUE(t.admitted);
      cls_of[t.id] = job.cls;
    }
  }
  sched.drain();
  sched.shutdown();
  const auto results = by_dispatch(sched.take_results());
  ASSERT_EQ(results.size(), 15u);
  const int expected[] = {0, 1, 2, 0, 0, 1, 0, 0, 1, 1, 2, 1, 2, 2, 2};
  double pos_sum[svc::kNumClasses] = {0, 0, 0};
  for (std::size_t n = 0; n < results.size(); ++n) {
    EXPECT_EQ(static_cast<int>(results[n].cls), expected[n])
        << "dispatch " << n;
    EXPECT_EQ(cls_of[results[n].id], results[n].cls);
    pos_sum[static_cast<int>(results[n].cls)] += static_cast<double>(n);
  }
  // Heavier classes finish earlier on average — per-class wait ordered
  // by weight (measured in dispatch positions, immune to wall jitter).
  EXPECT_LT(pos_sum[0], pos_sum[1]);
  EXPECT_LT(pos_sum[1], pos_sum[2]);
}

TEST(SvcScheduler, RejectsOverDeviceMemoryAtAdmission) {
  svc::SchedulerConfig sc = one_lane_no_batch();
  sc.lane_spec = gpu::DeviceSpec::a100_40gb();
  sc.lane_spec.dram_bytes = 1ull << 20;  // a 1 MB "device"
  svc::Scheduler sched(sc);

  svc::Job big;
  big.config =
      offload_case(fsbm::Version::kV3Offload3, mem::ResidencyMode::kPersist);
  big.cls = svc::JobClass::kEnsemble;
  big.name = "oversized";
  const svc::Ticket t = sched.submit(big);
  EXPECT_FALSE(t.admitted);
  EXPECT_EQ(t.reason, svc::RejectReason::kOverDeviceMemory);
  EXPECT_NE(t.message.find("device bytes"), std::string::npos);

  // A host-only job on the same pool is fine: footprint 0.
  svc::Job ok;
  ok.config = tiny_case();
  EXPECT_TRUE(sched.submit(ok).admitted);

  sched.drain();
  sched.shutdown();
  const auto results = sched.take_results();
  ASSERT_EQ(results.size(), 2u);
  const svc::ServiceStats stats = sched.stats();
  EXPECT_EQ(stats.rejected(), 1u);
  EXPECT_EQ(stats.completed(), 1u);
  for (const svc::JobResult& r : results) {
    if (r.outcome == svc::JobOutcome::kRejected) {
      // Rejected up front: never dispatched, never touched a lane.
      EXPECT_EQ(r.reject, svc::RejectReason::kOverDeviceMemory);
      EXPECT_EQ(r.lane, -1);
      EXPECT_EQ(r.dispatch_seq, 0u);
      EXPECT_GT(r.footprint_bytes, sc.lane_spec.dram_bytes);
    } else {
      EXPECT_EQ(r.outcome, svc::JobOutcome::kCompleted);
    }
  }
  // The determinism cross-check: nothing failed mid-run.
  EXPECT_EQ(stats.failed(), 0u);
}

TEST(SvcScheduler, RejectsBadConfigWithTypedReason) {
  svc::Scheduler sched(one_lane_no_batch());
  svc::Job bad;
  bad.config = tiny_case();
  bad.config.nx = 4;  // below the validate() minimum
  const svc::Ticket t = sched.submit(bad);
  EXPECT_FALSE(t.admitted);
  EXPECT_EQ(t.reason, svc::RejectReason::kBadConfig);
  sched.shutdown();
  const auto results = sched.take_results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].outcome, svc::JobOutcome::kRejected);
  EXPECT_EQ(results[0].reject, svc::RejectReason::kBadConfig);
}

TEST(SvcScheduler, RejectsAfterShutdown) {
  svc::Scheduler sched(one_lane_no_batch());
  sched.shutdown();
  svc::Job job;
  job.config = tiny_case();
  const svc::Ticket t = sched.submit(job);
  EXPECT_FALSE(t.admitted);
  EXPECT_EQ(t.reason, svc::RejectReason::kShuttingDown);
}

TEST(SvcScheduler, BatchesSameShapeEnsembleMembers) {
  svc::SchedulerConfig sc;
  sc.lanes = 1;
  sc.batch_max = 3;
  sc.start_paused = true;
  svc::Scheduler sched(sc);

  // Three members differing only by seed, plus one different shape.
  std::vector<std::uint64_t> member_ids;
  for (int n = 0; n < 3; ++n) {
    svc::Job job;
    job.config = tiny_case(static_cast<std::uint64_t>(n) + 100);
    job.cls = svc::JobClass::kEnsemble;
    job.name = "member-" + std::to_string(n);
    member_ids.push_back(sched.submit(job).id);
  }
  svc::Job other;
  other.config = tiny_case(7);
  other.config.nsteps = 2;  // different shape key
  other.cls = svc::JobClass::kEnsemble;
  const std::uint64_t other_id = sched.submit(other).id;

  sched.drain();
  sched.shutdown();
  const auto results = sched.take_results();
  ASSERT_EQ(results.size(), 4u);
  std::uint64_t member_batch = 0;
  for (const svc::JobResult& r : results) {
    EXPECT_EQ(r.outcome, svc::JobOutcome::kCompleted);
    if (r.id == other_id) {
      EXPECT_EQ(r.batch_size, 1);
    } else {
      EXPECT_EQ(r.batch_size, 3);
      if (member_batch == 0) member_batch = r.batch_seq;
      EXPECT_EQ(r.batch_seq, member_batch);  // one lane dispatch
    }
  }
  const svc::ServiceStats stats = sched.stats();
  EXPECT_EQ(stats.dispatches, 2u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_jobs, 3u);
  (void)member_ids;
}

TEST(SvcScheduler, BatchRespectsFootprintCofitBudget) {
  // Three identical offloaded members whose footprints co-fit only two
  // at a time: the dispatch batches two, the third rides alone.
  const model::RunConfig member =
      offload_case(fsbm::Version::kV2Offload2, mem::ResidencyMode::kStep);
  svc::SchedulerConfig sc;
  sc.lanes = 1;
  sc.batch_max = 3;
  sc.start_paused = true;
  sc.lane_spec = gpu::DeviceSpec::a100_40gb();
  {
    model::RunConfig probe = member;
    probe.device_spec = sc.lane_spec;
    const std::uint64_t fp = svc::job_footprint_bytes(probe);
    ASSERT_GT(fp, 0u);
    sc.lane_spec.dram_bytes = 2 * fp + fp / 2;  // fits 2, not 3
  }
  svc::Scheduler sched(sc);
  for (int n = 0; n < 3; ++n) {
    svc::Job job;
    job.config = member;
    job.config.seed = static_cast<std::uint64_t>(n) + 1;
    job.cls = svc::JobClass::kEnsemble;
    ASSERT_TRUE(sched.submit(job).admitted);
  }
  sched.drain();
  sched.shutdown();
  const auto results = by_dispatch(sched.take_results());
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].batch_size, 2);
  EXPECT_EQ(results[1].batch_size, 2);
  EXPECT_EQ(results[2].batch_size, 1);
}

// ------------------------------------------------------- determinism gate

TEST(SvcScheduler, JobsAreBitwiseIdenticalToStandaloneRuns) {
  // A concurrent 2-lane pool, jobs across serial/threaded host dispatch
  // and both residency modes: every completed job's state hash and
  // physics stats must match a standalone run of its recorded config.
  svc::SchedulerConfig sc;
  sc.lanes = 2;
  sc.batch_max = 2;
  sc.start_paused = true;
  svc::Scheduler sched(sc);

  std::vector<svc::Job> jobs;
  for (const mem::ResidencyMode res :
       {mem::ResidencyMode::kStep, mem::ResidencyMode::kPersist}) {
    for (const char* e : {"serial", "threads:2"}) {
      svc::Job job;
      job.config = offload_case(fsbm::Version::kV3Offload3, res,
                                /*seed=*/jobs.size() + 1);
      job.config.exec = exec::ExecConfig::parse(e);
      job.cls = svc::JobClass::kEnsemble;
      job.name = std::string(e) + "/" + mem::residency_name(res);
      jobs.push_back(job);
    }
  }
  for (const svc::Job& job : jobs) {
    ASSERT_TRUE(sched.submit(job).admitted) << job.name;
  }
  sched.drain();
  sched.shutdown();
  const auto results = sched.take_results();
  ASSERT_EQ(results.size(), jobs.size());
  for (const svc::JobResult& r : results) {
    SCOPED_TRACE(r.name);
    ASSERT_EQ(r.outcome, svc::JobOutcome::kCompleted) << r.error;
    EXPECT_EQ(r.state_hash, model::state_hash(r.run));

    prof::Profiler prof;
    const model::RunResult solo = model::run_single(r.config, prof);
    EXPECT_EQ(model::state_hash(solo), r.state_hash);
    const fsbm::FsbmStats& fa = solo.totals.fsbm;
    const fsbm::FsbmStats& fb = r.run.totals.fsbm;
    EXPECT_EQ(fa.cells_active, fb.cells_active);
    EXPECT_EQ(fa.cells_coal, fb.cells_coal);
    EXPECT_EQ(fa.coal_flops, fb.coal_flops);
    EXPECT_EQ(fa.cond_flops, fb.cond_flops);
    EXPECT_EQ(fa.nucl_flops, fb.nucl_flops);
    EXPECT_EQ(fa.sed_flops, fb.sed_flops);
    EXPECT_EQ(fa.surface_precip, fb.surface_precip);
  }
}

// ------------------------------------------------------------- service view

TEST(SvcScheduler, ServiceStatsAddUp) {
  svc::SchedulerConfig sc;
  sc.lanes = 2;
  sc.batch_max = 1;
  sc.start_paused = true;
  svc::Scheduler sched(sc);
  for (int n = 0; n < 5; ++n) {
    svc::Job job;
    job.config = tiny_case(static_cast<std::uint64_t>(n) + 1);
    job.cls = n % 2 == 0 ? svc::JobClass::kInteractive
                         : svc::JobClass::kBatch;
    job.deadline_sec = 3600.0;  // generous: all met
    ASSERT_TRUE(sched.submit(job).admitted);
  }
  sched.drain();
  const svc::ServiceStats stats = sched.stats();
  sched.shutdown();
  EXPECT_EQ(stats.lanes, 2);
  EXPECT_EQ(stats.submitted(), 5u);
  EXPECT_EQ(stats.admitted(), 5u);
  EXPECT_EQ(stats.completed(), 5u);
  EXPECT_EQ(stats.dispatches, 5u);
  EXPECT_EQ(stats.batches, 0u);
  const svc::ClassStats& inter =
      stats.cls[static_cast<int>(svc::JobClass::kInteractive)];
  EXPECT_EQ(inter.completed, 3u);
  EXPECT_EQ(inter.deadline_jobs, 3u);
  EXPECT_EQ(inter.deadline_met, 3u);
  EXPECT_GE(inter.wait_max_sec, 0.0);
  EXPECT_TRUE(stats.any_dispatched);
  EXPECT_GT(stats.makespan_sec(), 0.0);
  EXPECT_GT(stats.pool_parallelism(), 0.0);
  EXPECT_LE(stats.occupancy(), 1.0 + 1e-9);
  // take_results moves: the second call is empty.
  EXPECT_EQ(sched.take_results().size(), 5u);
  EXPECT_TRUE(sched.take_results().empty());
}

TEST(SvcStats, WaitQuantilesInterpolate) {
  svc::ClassStats cs;
  // No finished jobs: quantiles are 0, not NaN.
  EXPECT_DOUBLE_EQ(cs.wait_p50_sec(), 0.0);
  EXPECT_DOUBLE_EQ(cs.wait_p95_sec(), 0.0);

  cs.wait_samples_sec = {4.0};
  EXPECT_DOUBLE_EQ(cs.wait_p50_sec(), 4.0);
  EXPECT_DOUBLE_EQ(cs.wait_p95_sec(), 4.0);

  // Linear interpolation over the sorted samples, insertion order
  // irrelevant: {1,2,3,4} -> p50 = 2.5, p95 = 1 + 0.95*3 = 3.85.
  cs.wait_samples_sec = {3.0, 1.0, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(cs.wait_p50_sec(), 2.5);
  EXPECT_DOUBLE_EQ(cs.wait_p95_sec(), 3.85);
  // q clamps to [0, 1].
  EXPECT_DOUBLE_EQ(cs.wait_quantile_sec(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(cs.wait_quantile_sec(2.0), 4.0);
}

TEST(SvcStats, WaitSamplesFeedQuantilesAndPublish) {
  svc::SchedulerConfig sc = one_lane_no_batch();
  svc::Scheduler sched(sc);
  for (int n = 0; n < 4; ++n) {
    svc::Job job;
    job.config = tiny_case(static_cast<std::uint64_t>(n) + 1);
    job.cls = svc::JobClass::kBatch;
    ASSERT_TRUE(sched.submit(job).admitted);
  }
  sched.drain();
  const svc::ServiceStats stats = sched.stats();
  sched.shutdown();

  const svc::ClassStats& cs =
      stats.cls[static_cast<int>(svc::JobClass::kBatch)];
  ASSERT_EQ(cs.wait_samples_sec.size(), 4u);  // one per finished job
  double sum = 0.0;
  for (const double w : cs.wait_samples_sec) {
    EXPECT_GE(w, 0.0);
    sum += w;
  }
  EXPECT_DOUBLE_EQ(sum, cs.wait_total_sec);  // same recordings
  EXPECT_LE(cs.wait_p50_sec(), cs.wait_p95_sec());
  EXPECT_LE(cs.wait_p95_sec(), cs.wait_max_sec + 1e-12);

  // publish() reconciles: counters equal the fields exactly.
  obs::Registry reg;
  stats.publish(reg);
  EXPECT_DOUBLE_EQ(
      reg.value("wrf_svc_jobs_total",
                {{"class", "batch"}, {"state", "completed"}}),
      static_cast<double>(cs.completed));
  EXPECT_DOUBLE_EQ(
      reg.value("wrf_svc_jobs_total",
                {{"class", "batch"}, {"state", "submitted"}}),
      4.0);
  EXPECT_DOUBLE_EQ(reg.value("wrf_svc_wait_seconds_total", {{"class", "batch"}}),
                   cs.wait_total_sec);
  EXPECT_DOUBLE_EQ(
      reg.value("wrf_svc_wait_seconds",
                {{"class", "batch"}, {"quantile", "0.5"}}),
      cs.wait_p50_sec());
  EXPECT_DOUBLE_EQ(
      reg.value("wrf_svc_wait_seconds",
                {{"class", "batch"}, {"quantile", "0.95"}}),
      cs.wait_p95_sec());
  EXPECT_DOUBLE_EQ(reg.value("wrf_svc_dispatches_total"),
                   static_cast<double>(stats.dispatches));
  EXPECT_DOUBLE_EQ(reg.value("wrf_svc_lanes"), 1.0);
}

// ----------------------------------------------------- scheduler tracing

TEST(SvcScheduler, TraceModeRecordsLifecycleAndKeepsResultsIdentical) {
  // Same stream twice — obs off, then obs=trace — with fixed seeds: the
  // trace run must record the full lifecycle yet leave every result
  // bitwise identical (jobs are normalized to obs=off internally).
  auto run_stream = [](const obs::ObsConfig& obs) {
    svc::SchedulerConfig sc;
    sc.lanes = 2;
    sc.batch_max = 2;
    sc.start_paused = true;
    sc.obs = obs;
    svc::Scheduler sched(sc);
    for (int n = 0; n < 4; ++n) {
      svc::Job job;
      job.config = tiny_case(static_cast<std::uint64_t>(n) + 1);
      job.cls = n < 2 ? svc::JobClass::kInteractive : svc::JobClass::kEnsemble;
      job.name = "job-" + std::to_string(n);
      EXPECT_TRUE(sched.submit(job).admitted);
    }
    sched.drain();
    sched.shutdown();

    std::map<std::uint64_t, std::uint64_t> hash_by_seed;
    for (const svc::JobResult& r : sched.take_results()) {
      EXPECT_EQ(r.outcome, svc::JobOutcome::kCompleted);
      hash_by_seed[r.config.seed] = r.state_hash;
    }

    std::uint64_t events = 0;
    std::uint64_t svc_instants = 0;
    if (const obs::TraceSink* sink = sched.trace_sink()) {
      for (const obs::TrackEvents& track : sink->drain()) {
        std::uint64_t prev_ts = 0;
        std::int64_t open = 0;
        for (const obs::TraceEvent& e : track.events) {
          ++events;
          EXPECT_GE(e.ts_us, prev_ts);  // monotone per track
          prev_ts = e.ts_us;
          if (e.phase == 'B') ++open;
          if (e.phase == 'E') --open;
          EXPECT_GE(open, 0);
          if (e.phase == 'i' && std::string(e.cat) == "svc") ++svc_instants;
        }
        EXPECT_EQ(open, 0);  // balanced spans on every track
      }
    }
    return std::make_tuple(hash_by_seed, events, svc_instants);
  };

  obs::ObsConfig trace_cfg;
  trace_cfg.mode = obs::ObsMode::kTrace;
  trace_cfg.path = "obs_test_svc_trace.json";
  const auto [hashes_off, ev_off, si_off] = run_stream(obs::ObsConfig{});
  const auto [hashes_on, ev_on, si_on] = run_stream(trace_cfg);

  EXPECT_EQ(hashes_off, hashes_on);  // tracing never changes results
  EXPECT_EQ(ev_off, 0u);
  EXPECT_GT(ev_on, 0u);
  // Lifecycle instants: submit + admit + dispatch + complete per job at
  // minimum (4 jobs), plus any batch markers.
  EXPECT_GE(si_on, 16u);
  EXPECT_EQ(si_off, 0u);
}

}  // namespace
}  // namespace wrf
