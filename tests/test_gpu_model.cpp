// Property sweeps over the gpusim performance model: monotonicity and
// consistency requirements any credible device model must satisfy.

#include <gtest/gtest.h>

#include <tuple>

#include "gpu/device.hpp"

namespace wrf::gpu {
namespace {

/// Launch a synthetic traced kernel with controllable locality: each
/// iteration reads `footprint_lines` distinct cache lines starting at a
/// per-iteration offset, so larger `spread` = worse locality.
KernelStats traced_launch(Device& dev, std::int64_t iters, int regs,
                          std::uint64_t spread, int footprint_lines) {
  KernelDesc k;
  k.name = "sweep_" + std::to_string(iters) + "_" + std::to_string(regs) +
           "_" + std::to_string(spread) + "_" +
           std::to_string(footprint_lines);
  k.iterations = iters;
  k.regs_per_thread = regs;
  k.flops_per_iter = 200.0;
  k.bytes_per_iter = footprint_lines * 64.0;
  k.trace = [spread, footprint_lines](std::int64_t it,
                                      std::vector<AccessEvent>& out) {
    const std::uint64_t base = 0x100000 + static_cast<std::uint64_t>(it) *
                                              spread * 64;
    for (int l = 0; l < footprint_lines; ++l) {
      out.push_back({base + static_cast<std::uint64_t>(l) * 64, 4, false});
      out.push_back({base + static_cast<std::uint64_t>(l) * 64, 4, true});
    }
  };
  return dev.launch(k);
}

class OccupancySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OccupancySweep, TheoreticalAtLeastAchieved) {
  const auto [tpb, regs] = GetParam();
  const DeviceSpec dev = DeviceSpec::a100_40gb();
  for (std::int64_t blocks : {1, 27, 108, 1080, 100000}) {
    const Occupancy occ = compute_occupancy(dev, blocks, tpb, regs);
    EXPECT_LE(occ.achieved, occ.theoretical + 1e-12);
    EXPECT_GE(occ.achieved, 0.0);
    EXPECT_LE(occ.theoretical, 1.0 + 1e-12);
  }
}

TEST_P(OccupancySweep, ResourceLimitConsistent) {
  const auto [tpb, regs] = GetParam();
  const DeviceSpec dev = DeviceSpec::a100_40gb();
  const Occupancy occ = compute_occupancy(dev, 1 << 20, tpb, regs);
  const int warps_per_block = tpb / dev.warp_size;
  // The block count must respect every hardware limit.
  EXPECT_LE(occ.blocks_per_sm_resource * warps_per_block,
            dev.max_warps_per_sm);
  EXPECT_LE(occ.blocks_per_sm_resource, dev.max_blocks_per_sm);
  EXPECT_LE(static_cast<std::uint64_t>(occ.blocks_per_sm_resource) *
                static_cast<std::uint64_t>(tpb) *
                static_cast<std::uint64_t>(regs),
            static_cast<std::uint64_t>(dev.regs_per_sm));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, OccupancySweep,
    ::testing::Combine(::testing::Values(32, 64, 128, 256, 1024),
                       ::testing::Values(16, 32, 64, 90, 128, 255)));

TEST(PerfModel, WorseLocalityNeverFaster) {
  Device dev(DeviceSpec::a100_40gb());
  dev.set_trace_sample_budget(256);
  // spread 0: every iteration hits the same lines (perfect reuse);
  // spread 64: disjoint working sets.
  const KernelStats hot = traced_launch(dev, 20000, 64, 0, 8);
  const KernelStats cold = traced_launch(dev, 20000, 64, 64, 8);
  EXPECT_GE(hot.l1_hit_rate, cold.l1_hit_rate);
  EXPECT_LE(hot.dram_read_gb, cold.dram_read_gb + 1e-12);
  EXPECT_LE(hot.modeled_time_ms, cold.modeled_time_ms * 1.001);
}

TEST(PerfModel, BiggerGridMoreTotalTimeSameRate) {
  Device dev(DeviceSpec::a100_40gb());
  dev.set_trace_sample_budget(128);
  const KernelStats small = traced_launch(dev, 100000, 90, 4, 8);
  Device dev2(DeviceSpec::a100_40gb());
  dev2.set_trace_sample_budget(128);
  const KernelStats big = traced_launch(dev2, 400000, 90, 4, 8);
  EXPECT_GT(big.modeled_time_ms, small.modeled_time_ms);
  // At saturated occupancy the per-iteration rate is comparable
  // (within the launch-overhead difference).
  const double r_small = small.modeled_time_ms / 100000.0;
  const double r_big = big.modeled_time_ms / 400000.0;
  EXPECT_LT(r_big, r_small * 1.5);
}

TEST(PerfModel, DoublePrecisionNeverFasterThanSingle) {
  for (const bool dp : {false, true}) {
    (void)dp;
  }
  Device dev(DeviceSpec::a100_40gb());
  KernelDesc k;
  k.name = "dp_check";
  k.iterations = 1 << 20;
  k.flops_per_iter = 5000.0;  // compute-heavy
  k.bytes_per_iter = 8.0;
  k.regs_per_thread = 32;
  k.double_precision = false;
  const double sp = dev.launch(k).modeled_time_ms;
  k.name = "dp_check2";
  k.double_precision = true;
  const double dp_t = dev.launch(k).modeled_time_ms;
  EXPECT_GE(dp_t, sp);
}

TEST(PerfModel, KernelStatsInternallyConsistent) {
  Device dev(DeviceSpec::a100_40gb());
  dev.set_trace_sample_budget(128);
  const KernelStats ks = traced_launch(dev, 50000, 90, 8, 16);
  // AI = flops / dram bytes; achieved GFLOP/s = flops / time.
  const double dram = (ks.dram_read_gb + ks.dram_write_gb) * 1e9;
  if (dram > 0) {
    EXPECT_NEAR(ks.arithmetic_intensity, ks.flops / dram,
                ks.arithmetic_intensity * 1e-6);
  }
  EXPECT_NEAR(ks.gflops_achieved, ks.flops / (ks.modeled_time_ms * 1e6),
              ks.gflops_achieved * 1e-6);
  // Achieved throughput cannot exceed the roofline at its AI by much
  // (the chain model can only slow things down).
  EXPECT_LE(ks.gflops_achieved,
            roofline_gflops(dev.spec(), ks.arithmetic_intensity, false) *
                1.01);
}

TEST(PerfModel, TransfersAccumulateAcrossLaunches) {
  Device dev(DeviceSpec::a100_40gb());
  dev.map_to(1000);
  dev.map_to(2000);
  dev.map_from(500);
  EXPECT_EQ(dev.transfers().h2d_bytes, 3000u);
  EXPECT_EQ(dev.transfers().d2h_bytes, 500u);
  dev.reset_stats();
  EXPECT_EQ(dev.transfers().h2d_bytes, 0u);
  EXPECT_EQ(dev.total_kernel_ms(), 0.0);
}

TEST(PerfModel, LaunchHistoryRecorded) {
  Device dev(DeviceSpec::test_device());
  KernelDesc k;
  k.name = "first";
  k.iterations = 10;
  k.flops_per_iter = 1;
  dev.launch(k);
  k.name = "second";
  dev.launch(k);
  ASSERT_EQ(dev.launches().size(), 2u);
  EXPECT_EQ(dev.launches()[0].name, "first");
  EXPECT_EQ(dev.launches()[1].name, "second");
  EXPECT_GT(dev.total_kernel_ms(), 0.0);
}

}  // namespace
}  // namespace wrf::gpu
