// Additional analyzer edge cases: imperfect nests, use-association,
// pointer workflows, parser corner cases, and rewriter robustness.

#include <gtest/gtest.h>

#include "analyzer/checks.hpp"
#include "analyzer/parser.hpp"
#include "analyzer/rewrite.hpp"

namespace wrf::analyzer {
namespace {

TEST(EdgeParser, ImperfectNestStopsChainAtFirstRealStatement) {
  const ProgramUnit u = parse(
      "subroutine imperfect(a, b, n)\n"
      "  integer, intent(in) :: n\n"
      "  real, intent(inout) :: a(n, n)\n"
      "  real, intent(out) :: b(n)\n"
      "  integer :: i, j\n"
      "  do j = 1, n\n"
      "    b(j) = 0.0\n"
      "    do i = 1, n\n"
      "      a(i, j) = a(i, j) + 1.0\n"
      "    enddo\n"
      "  enddo\n"
      "end subroutine imperfect\n");
  const SemanticModel m(u);
  const Procedure* p = m.find_procedure("imperfect");
  const LoopAnalysis la = analyze_loop(m, *p, *outer_loops(*p)[0]);
  // Only the outer loop belongs to the "perfect nest"; the body contains
  // two statements.  The inner loop's variable indexes a's first dim, so
  // the analysis must treat it conservatively for the outer var only.
  EXPECT_EQ(la.nest_depth, 1);
  EXPECT_EQ(la.loop_vars, (std::vector<std::string>{"j"}));
}

TEST(EdgeParser, UseAssociationBringsModuleGlobals) {
  const ProgramUnit u = parse(
      "module tables\n"
      "  implicit none\n"
      "  real :: lut(33)\n"
      "end module tables\n"
      "subroutine consumer(x)\n"
      "  use tables\n"
      "  real, intent(out) :: x\n"
      "  x = lut(1)\n"
      "end subroutine consumer\n");
  const SemanticModel m(u);
  const Procedure* p = m.find_procedure("consumer");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(m.resolve(*p, "lut"), SymbolScope::kGlobal);
  ASSERT_EQ(m.visible_globals(*p).size(), 1u);
  EXPECT_EQ(m.visible_globals(*p)[0]->name, "lut");
}

TEST(EdgeParser, MultiEntityDeclWithMixedDims) {
  const ProgramUnit u = parse(
      "subroutine decls()\n"
      "  real :: a(33), b, c(33, 3)\n"
      "  a(1) = 0.0\n"
      "  b = 0.0\n"
      "  c(1, 1) = 0.0\n"
      "end subroutine decls\n");
  const Procedure& p = u.procs[0];
  ASSERT_EQ(p.decls.size(), 3u);
  EXPECT_EQ(p.decls[0].dims.size(), 1u);
  EXPECT_TRUE(p.decls[1].dims.empty());
  EXPECT_EQ(p.decls[2].dims.size(), 2u);
}

TEST(EdgeParser, DimensionAttributeShared) {
  const ProgramUnit u = parse(
      "subroutine shared_dims()\n"
      "  real, dimension(33) :: a, b\n"
      "  a(1) = 0.0\n"
      "  b(2) = 0.0\n"
      "end subroutine shared_dims\n");
  const Procedure& p = u.procs[0];
  ASSERT_EQ(p.decls.size(), 2u);
  EXPECT_EQ(p.decls[0].dims, (std::vector<std::string>{"33"}));
  EXPECT_EQ(p.decls[1].dims, (std::vector<std::string>{"33"}));
}

TEST(EdgeParser, ParameterInitializerAndNegativeStep) {
  const ProgramUnit u = parse(
      "subroutine steps(a)\n"
      "  integer, parameter :: n = 33\n"
      "  real, intent(inout) :: a(n)\n"
      "  integer :: i\n"
      "  do i = n, 1, -1\n"
      "    a(i) = 0.0\n"
      "  enddo\n"
      "end subroutine steps\n");
  const Procedure& p = u.procs[0];
  const Stmt* loop = outer_loops(p)[0];
  ASSERT_EQ(loop->exprs.size(), 3u);  // lo, hi, step
  EXPECT_EQ(expr_text(loop->exprs[2]), "-1");
  EXPECT_TRUE(p.decls[0].parameter);
}

TEST(EdgeDeps, WriteThenReadScalarIsPrivateAcrossBranches) {
  const ProgramUnit u = parse(
      "subroutine branches(a, n)\n"
      "  integer, intent(in) :: n\n"
      "  real, intent(inout) :: a(n)\n"
      "  integer :: i\n"
      "  real :: t\n"
      "  do i = 1, n\n"
      "    if (a(i) > 0.0) then\n"
      "      t = a(i) * 2.0\n"
      "    else\n"
      "      t = 0.0\n"
      "    endif\n"
      "    a(i) = t\n"
      "  enddo\n"
      "end subroutine branches\n");
  const SemanticModel m(u);
  const Procedure* p = m.find_procedure("branches");
  const LoopAnalysis la = analyze_loop(m, *p, *outer_loops(*p)[0]);
  EXPECT_TRUE(la.parallelizable);
  const VarClass* t = la.find("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->role, VarClass::kPrivate);
}

TEST(EdgeDeps, CallWithArrayElementArgumentIsConservative) {
  const ProgramUnit u = parse(
      "subroutine caller(a, n)\n"
      "  integer, intent(in) :: n\n"
      "  real, intent(inout) :: a(n)\n"
      "  integer :: i\n"
      "  do i = 1, n\n"
      "    call mystery(a(i))\n"
      "  enddo\n"
      "end subroutine caller\n");
  const SemanticModel m(u);
  const Procedure* p = m.find_procedure("caller");
  const LoopAnalysis la = analyze_loop(m, *p, *outer_loops(*p)[0]);
  // mystery is unknown: must block parallelization.
  EXPECT_FALSE(la.parallelizable);
}

TEST(EdgeDeps, PureFunctionCallInExpressionIsHarmless) {
  const ProgramUnit u = parse(
      "pure real function gain(x)\n"
      "  real, intent(in) :: x\n"
      "  gain = 2.0 * x\n"
      "end function gain\n"
      "subroutine apply(a, n)\n"
      "  integer, intent(in) :: n\n"
      "  real, intent(inout) :: a(n)\n"
      "  integer :: i\n"
      "  do i = 1, n\n"
      "    a(i) = gain(a(i))\n"
      "  enddo\n"
      "end subroutine apply\n");
  const SemanticModel m(u);
  const Procedure* p = m.find_procedure("apply");
  const LoopAnalysis la = analyze_loop(m, *p, *outer_loops(*p)[0]);
  EXPECT_TRUE(la.parallelizable);
}

TEST(EdgeChecks, IntentOnEverythingIsClean) {
  const Report r = run_checks(parse(
      "subroutine tidy(a, b)\n"
      "  real, intent(in) :: a\n"
      "  real, intent(out) :: b\n"
      "  b = a\n"
      "end subroutine tidy\n"));
  EXPECT_EQ(r.count("MOD001"), 0);
  EXPECT_EQ(r.count("MOD002"), 0);
}

TEST(EdgeRewrite, AnnotatedSourceCanBeReanalyzed) {
  // Rewriting, then re-running checks over the annotated output, must
  // not crash and must still find the loop parallelizable.
  const std::string src =
      "subroutine twice(a, n)\n"
      "  integer, intent(in) :: n\n"
      "  real, intent(inout) :: a(n)\n"
      "  integer :: i\n"
      "  do i = 1, n\n"
      "    a(i) = a(i) * 2.0\n"
      "  enddo\n"
      "end subroutine twice\n";
  const RewriteResult first = rewrite_offload(src, 5);
  ASSERT_TRUE(first.applied);
  const Report r = run_checks(parse(first.source));
  EXPECT_GE(r.count("PWR015"), 1);
}

TEST(EdgeRewrite, LineNumbersShiftCorrectlyForSecondLoop) {
  const std::string src =
      "subroutine two_loops(a, b, n)\n"
      "  integer, intent(in) :: n\n"
      "  real, intent(out) :: a(n), b(n)\n"
      "  integer :: i\n"
      "  do i = 1, n\n"
      "    a(i) = 0.0\n"
      "  enddo\n"
      "  do i = 1, n\n"
      "    b(i) = 1.0\n"
      "  enddo\n"
      "end subroutine two_loops\n";
  const RewriteResult res = rewrite_all_offloadable(src);
  ASSERT_TRUE(res.applied);
  // Both loops annotated: two target directives.
  std::size_t count = 0, pos = 0;
  while ((pos = res.source.find("!$omp target teams", pos)) !=
         std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_NO_THROW(parse(res.source));
}

}  // namespace
}  // namespace wrf::analyzer
