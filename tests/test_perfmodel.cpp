// Unit tests: machine models and the Table VII scaling composer.

#include <gtest/gtest.h>

#include "perfmodel/scaling.hpp"

namespace wrf::perfmodel {
namespace {

WorkProfile sample_profile() {
  // A plausible per-rank-step profile at 16 ranks on the CONUS grid.
  WorkProfile w;
  w.cells = 425.0 * 300.0 * 50.0 / 16.0;
  w.coal_flops = 2.0e9;
  w.coal_flops_v0 = 6.0e9;   // kernals_ks fills dominate the baseline
  w.cond_nucl_flops = 1.5e9;
  w.sed_flops = 0.4e9;
  w.adv_flops = 2.5e9;
  w.halo_bytes = 3.0e7;
  w.halo_messages = 8;
  w.coal_fraction_cloudy = 0.15;
  return w;
}

TEST(CpuSpec, SecondsForFlopsLinear) {
  const CpuSpec cpu = CpuSpec::milan();
  EXPECT_DOUBLE_EQ(cpu.seconds_for_flops(2.0e9),
                   2.0 * cpu.seconds_for_flops(1.0e9));
  EXPECT_GT(cpu.seconds_for_flops(1.0e9), 0.0);
}

TEST(Network, CostGrowsWithRanksAndBytes) {
  const NetworkSpec net = NetworkSpec::slingshot();
  const double t16 = net.seconds_for(8, 1 << 20, 16);
  const double t256 = net.seconds_for(8, 1 << 20, 256);
  EXPECT_GT(t256, t16);
  EXPECT_GT(net.seconds_for(8, 10 << 20, 16), t16);
}

TEST(Footprint, FiveRanksPerGpuAtTwoNodeScale) {
  // The paper: "the current version of the code is limited to 5 MPI
  // tasks per GPU" in the 2-node experiment (40 ranks over 8 GPUs).
  const DeviceFootprint fp;
  const gpu::DeviceSpec dev = gpu::DeviceSpec::a100_40gb();
  const std::int64_t cells_per_rank = 425LL * 300 * 50 / 40;
  const int max_rpg = fp.max_ranks_per_gpu(dev, cells_per_rank, 33);
  EXPECT_GE(max_rpg, 4);
  EXPECT_LE(max_rpg, 6);
}

TEST(Footprint, ScalesInverselyWithPatchSize) {
  const DeviceFootprint fp;
  const gpu::DeviceSpec dev = gpu::DeviceSpec::a100_40gb();
  const int big = fp.max_ranks_per_gpu(dev, 100000, 33);
  const int small = fp.max_ranks_per_gpu(dev, 400000, 33);
  EXPECT_GT(big, small);
}

TEST(WorkProfile, ScalingByCellRatio) {
  const WorkProfile w = sample_profile();
  const WorkProfile half = w.scaled_to(0.5);
  EXPECT_DOUBLE_EQ(half.coal_flops, 0.5 * w.coal_flops);
  EXPECT_DOUBLE_EQ(half.adv_flops, 0.5 * w.adv_flops);
  // Halo scales with the perimeter, not the area.
  EXPECT_NEAR(half.halo_bytes, w.halo_bytes / std::sqrt(2.0),
              w.halo_bytes * 1e-9);
}

TEST(CpuStep, BaselineSlowerThanLookup) {
  const WorkProfile w = sample_profile();
  const CpuSpec cpu = CpuSpec::milan();
  const NetworkSpec net = NetworkSpec::slingshot();
  const double v0 = cpu_step_time(w, cpu, net, 16, true).total();
  const double v1 = cpu_step_time(w, cpu, net, 16, false).total();
  EXPECT_GT(v0, v1);
}

TEST(GpuStep, SharingSerializesKernels) {
  const WorkProfile w = sample_profile();
  const CpuSpec cpu = CpuSpec::milan();
  const NetworkSpec net = NetworkSpec::slingshot();
  const double t1 = gpu_step_time(w, cpu, net, 16, 1, 30.0, 5.0).total();
  const double t4 = gpu_step_time(w, cpu, net, 16, 4, 30.0, 5.0).total();
  EXPECT_GT(t4, t1);
  EXPECT_THROW(gpu_step_time(w, cpu, net, 16, 0, 30.0, 5.0), ConfigError);
}

TEST(Table7, ShapeMatchesPaper) {
  // The reproduction target: speedup decreasing with rank count
  // (2.08x -> 1.82x -> 1.56x in the paper) and the equal-resource
  // 2-node configuration dropping below 1.0x (0.956x).
  const WorkProfile w16 = sample_profile();
  const CpuSpec cpu = CpuSpec::milan();
  const NetworkSpec net = NetworkSpec::slingshot();
  const gpu::DeviceSpec dev = gpu::DeviceSpec::a100_40gb();
  const DeviceFootprint fp;

  auto kernel_ms = [&](double cells) {
    // Memory-bound kernel time shrinks sublinearly at small patches
    // (occupancy loss); a simple representative curve for the test.
    return 40.0 * cells / (425.0 * 300.0 * 50.0 / 16.0);
  };
  auto transfer_ms = [&](double cells) {
    return 8.0 * cells / (425.0 * 300.0 * 50.0 / 16.0);
  };
  const auto rows = table7_rows(w16, 120, cpu, net, dev, fp, 33, kernel_ms,
                                transfer_ms);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].ranks, 16);
  EXPECT_EQ(rows[3].label, "2 nodes");

  // Shape assertions.
  EXPECT_GT(rows[0].speedup, 1.3);             // 16 ranks: clear win
  EXPECT_GT(rows[0].speedup, rows[1].speedup); // decreasing...
  EXPECT_GT(rows[1].speedup, rows[2].speedup);
  EXPECT_LT(rows[3].speedup, 1.1);             // 2-node: no win
  // Memory cap engaged in the 2-node row (<= 5-6 ranks/GPU).
  EXPECT_LE(rows[3].ranks_per_gpu, 6);
  // Baseline CPU time decreases with more ranks.
  EXPECT_GT(rows[0].baseline_sec, rows[1].baseline_sec);
  EXPECT_GT(rows[1].baseline_sec, rows[2].baseline_sec);
  // Lookup version always beats baseline on CPU.
  for (const auto& r : rows) EXPECT_LT(r.lookup_sec, r.baseline_sec);
}

}  // namespace
}  // namespace wrf::perfmodel
