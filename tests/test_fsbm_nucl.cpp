// Unit tests: nucleation (jernucl01_ks).

#include <gtest/gtest.h>

#include "fsbm/nucleation.hpp"
#include "util/constants.hpp"

namespace wrf::fsbm {
namespace {

namespace c = wrf::constants;

class NuclTest : public ::testing::Test {
 protected:
  BinGrid bins_{33};
  NuclConfig cfg_{};

  struct Cell {
    float buf[(4 + kIceMax) * kMaxNkr] = {};
    CoalWorkspace w;
    Cell() {
      w.fl1 = buf;
      w.g2 = buf + 33;
      w.g3 = buf + 33 * (1 + kIceMax);
      w.g4 = buf + 33 * (2 + kIceMax);
      w.g5 = buf + 33 * (3 + kIceMax);
    }
  };
};

TEST_F(NuclTest, SupersaturatedWarmCellActivatesDroplets) {
  Cell cell;
  double temp = 288.0;
  const double pres = 95000.0;
  double qv = 1.02 * c::qsat_liquid(temp, pres);
  const double qv0 = qv;
  const NuclStats st = jernucl01_ks(bins_, temp, qv, pres, cell.w, cfg_);
  EXPECT_GT(st.dq_activated, 0.0);
  EXPECT_GT(cell.w.fl1[0], 0.0f);  // smallest bin
  EXPECT_LT(qv, qv0);
  // Only the smallest bin receives new drops.
  for (int k = 1; k < 33; ++k) EXPECT_FLOAT_EQ(cell.w.fl1[k], 0.0f);
}

TEST_F(NuclTest, SubsaturatedCellDoesNothing) {
  Cell cell;
  double temp = 288.0;
  const double pres = 95000.0;
  double qv = 0.9 * c::qsat_liquid(temp, pres);
  const NuclStats st = jernucl01_ks(bins_, temp, qv, pres, cell.w, cfg_);
  EXPECT_EQ(st.events, 0u);
  EXPECT_DOUBLE_EQ(st.dq_activated, 0.0);
}

TEST_F(NuclTest, ActivationCappedByCcnCount) {
  Cell cell;
  double temp = 288.0;
  const double pres = 95000.0;
  double qv = 1.5 * c::qsat_liquid(temp, pres);  // extreme supersaturation
  jernucl01_ks(bins_, temp, qv, pres, cell.w, cfg_);
  const double n_act = cell.w.fl1[0] / bins_.mass(0);
  EXPECT_LE(n_act, cfg_.n_ccn * 1.0001);
}

TEST_F(NuclTest, ExistingDropletsSuppressNewActivation) {
  Cell cell;
  double temp = 288.0;
  const double pres = 95000.0;
  // Preload the spectrum with as many droplets as CCN allow.
  cell.w.fl1[0] = static_cast<float>(cfg_.n_ccn * bins_.mass(0));
  double qv = 1.02 * c::qsat_liquid(temp, pres);
  const NuclStats st = jernucl01_ks(bins_, temp, qv, pres, cell.w, cfg_);
  EXPECT_DOUBLE_EQ(st.dq_activated, 0.0);
}

TEST_F(NuclTest, IceNucleationByHabitTemperature) {
  const double pres = 60000.0;
  struct Case {
    double temp;
    int habit;  // 0 columns, 1 plates, 2 dendrites
  };
  for (const Case tc : {Case{266.0, 0}, Case{258.0, 1}, Case{248.0, 2}}) {
    Cell cell;
    double temp = tc.temp;
    double qv = 1.10 * c::qsat_ice(temp, pres);
    // Keep below water saturation so only ice nucleates.
    if (qv > 0.99 * c::qsat_liquid(temp, pres)) {
      qv = 0.99 * c::qsat_liquid(temp, pres);
    }
    const NuclStats st = jernucl01_ks(bins_, temp, qv, pres, cell.w, cfg_);
    EXPECT_GT(st.dq_ice_nucl, 0.0) << "T=" << tc.temp;
    for (int h = 0; h < kIceMax; ++h) {
      if (h == tc.habit) {
        EXPECT_GT(cell.w.g2[h * 33 + 0], 0.0f) << "T=" << tc.temp;
      } else {
        EXPECT_FLOAT_EQ(cell.w.g2[h * 33 + 0], 0.0f) << "T=" << tc.temp;
      }
    }
  }
}

TEST_F(NuclTest, NoIceNucleationAboveMinusFive) {
  Cell cell;
  double temp = 271.0;  // warmer than the -5 C onset
  const double pres = 80000.0;
  double qv = 1.05 * c::qsat_ice(temp, pres);
  if (qv > 0.99 * c::qsat_liquid(temp, pres)) {
    qv = 0.99 * c::qsat_liquid(temp, pres);
  }
  const NuclStats st = jernucl01_ks(bins_, temp, qv, pres, cell.w, cfg_);
  EXPECT_DOUBLE_EQ(st.dq_ice_nucl, 0.0);
}

TEST_F(NuclTest, IceNucleiCapRespected) {
  Cell cell;
  NuclConfig cfg = cfg_;
  cfg.n_in_max = 100.0;
  double temp = 250.0;
  const double pres = 50000.0;
  double qv = 0.99 * c::qsat_liquid(temp, pres);
  jernucl01_ks(bins_, temp, qv, pres, cell.w, cfg);
  double n_ice = 0.0;
  for (int h = 0; h < kIceMax; ++h) {
    n_ice += cell.w.g2[h * 33 + 0] / bins_.mass(0);
  }
  EXPECT_LE(n_ice, 100.0 * 1.0001);
}

TEST_F(NuclTest, LatentHeatingWarmsCell) {
  Cell cell;
  double temp = 288.0;
  const double t0 = temp;
  const double pres = 95000.0;
  double qv = 1.05 * c::qsat_liquid(temp, pres);
  jernucl01_ks(bins_, temp, qv, pres, cell.w, cfg_);
  EXPECT_GT(temp, t0);
}

TEST_F(NuclTest, WaterConserved) {
  Cell cell;
  double temp = 288.0;
  const double pres = 95000.0;
  double qv = 1.04 * c::qsat_liquid(temp, pres);
  const double qv0 = qv;
  const NuclStats st = jernucl01_ks(bins_, temp, qv, pres, cell.w, cfg_);
  double cond = 0.0;
  for (int n = 0; n < (4 + kIceMax) * 33; ++n) cond += cell.buf[n];
  EXPECT_NEAR(qv0 - qv, cond, cond * 1e-6 + 1e-15);
  EXPECT_NEAR(cond, st.dq_activated + st.dq_ice_nucl, cond * 1e-6 + 1e-15);
}

}  // namespace
}  // namespace wrf::fsbm
