// Unit tests: the dependency analysis that justifies the paper's v1
// refactoring (and correctly rejects genuinely sequential loops).

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "analyzer/analysis.hpp"
#include "analyzer/embedded_sources.hpp"
#include "analyzer/fusion.hpp"
#include "analyzer/parser.hpp"

namespace wrf::analyzer {
namespace {

LoopAnalysis analyze_first_loop(const std::string& src,
                                const char* proc_name) {
  static std::vector<std::unique_ptr<ProgramUnit>> keep_alive;
  keep_alive.push_back(std::make_unique<ProgramUnit>(parse(src)));
  const ProgramUnit& unit = *keep_alive.back();
  static std::vector<std::unique_ptr<SemanticModel>> models;
  models.push_back(std::make_unique<SemanticModel>(unit));
  const SemanticModel& model = *models.back();
  const Procedure* p = model.find_procedure(proc_name);
  EXPECT_NE(p, nullptr);
  const auto loops = outer_loops(*p);
  EXPECT_FALSE(loops.empty());
  return analyze_loop(model, *p, *loops[0]);
}

TEST(Deps, KernalsKsNestIsParallelizable) {
  // The paper's key analysis result: no loop-carried dependencies in
  // kernals_ks despite the global arrays.
  const LoopAnalysis la =
      analyze_first_loop(sources::kernals_ks(), "kernals_ks");
  EXPECT_TRUE(la.parallelizable) << [&] {
    std::string s;
    for (const auto& b : la.blockers) s += b + "; ";
    return s;
  }();
  EXPECT_EQ(la.nest_depth, 2);
  EXPECT_EQ(la.loop_vars, (std::vector<std::string>{"j", "i"}));
}

TEST(Deps, KernalsKsCwArraysAreWriteFirstGlobals) {
  // The map(from:) inference of Listing 4: the cw** arrays are fully
  // overwritten and never read -> prior values are dead -> they can be
  // deleted and computed on demand (the v1 optimization).
  const LoopAnalysis la =
      analyze_first_loop(sources::kernals_ks(), "kernals_ks");
  for (const char* arr : {"cwls", "cwlg", "cwlh", "cwll"}) {
    const VarClass* vc = la.find(arr);
    ASSERT_NE(vc, nullptr) << arr;
    EXPECT_EQ(vc->role, VarClass::kWriteFirst) << arr;
    EXPECT_EQ(vc->scope, SymbolScope::kGlobal) << arr;
    EXPECT_TRUE(vc->is_array);
  }
}

TEST(Deps, KernalsKsScalarsArePrivate) {
  // ckern_1/ckern_2/scale are written before read every iteration:
  // the private(...) clause of Listing 4.
  const LoopAnalysis la =
      analyze_first_loop(sources::kernals_ks(), "kernals_ks");
  for (const char* v : {"ckern_1", "ckern_2", "scale"}) {
    const VarClass* vc = la.find(v);
    ASSERT_NE(vc, nullptr) << v;
    EXPECT_EQ(vc->role, VarClass::kPrivate) << v;
  }
}

TEST(Deps, KernalsKsTablesAreReadOnly) {
  const LoopAnalysis la =
      analyze_first_loop(sources::kernals_ks(), "kernals_ks");
  const VarClass* vc = la.find("ywls_750mb");
  ASSERT_NE(vc, nullptr);
  EXPECT_EQ(vc->role, VarClass::kReadOnly);
}

TEST(Deps, PrefixSumIsLoopCarried) {
  const LoopAnalysis la =
      analyze_first_loop(sources::carried_dep_loop(), "prefix_sum");
  EXPECT_FALSE(la.parallelizable);
  const VarClass* vc = la.find("a");
  ASSERT_NE(vc, nullptr);
  EXPECT_EQ(vc->role, VarClass::kLoopCarried);
  EXPECT_FALSE(la.blockers.empty());
}

TEST(Deps, AccumulationRecognizedAsReduction) {
  const LoopAnalysis la =
      analyze_first_loop(sources::reduction_loop(), "total_mass");
  const VarClass* vc = la.find("s");
  ASSERT_NE(vc, nullptr);
  EXPECT_EQ(vc->role, VarClass::kReduction);
  EXPECT_EQ(vc->reduction_op, "+");
}

TEST(Deps, IsolatedCoalLoopParallelizableThanksToPureCallee) {
  // Listing 6's shape: the predicate-guarded call to a pure
  // coal_bott_new has no cross-iteration effects.
  const LoopAnalysis la =
      analyze_first_loop(sources::coal_isolated_loop(), "coal_pass");
  EXPECT_TRUE(la.parallelizable);
  EXPECT_EQ(la.nest_depth, 3);
}

TEST(Deps, GridLoopBlockedByImpureCalls) {
  // Listing 1 as found: calls to opaque physics subroutines prevent the
  // analysis from proving independence — which is why the paper isolates
  // the collision call first (loop fission).
  const LoopAnalysis la =
      analyze_first_loop(sources::grid_loop(), "fast_sbm_driver");
  EXPECT_FALSE(la.parallelizable);
  bool mentions_call = false;
  for (const auto& b : la.blockers) {
    if (b.find("procedure") != std::string::npos) mentions_call = true;
  }
  EXPECT_TRUE(mentions_call);
}

TEST(Deps, StencilReadIsLoopCarried) {
  const LoopAnalysis la = analyze_first_loop(
      "subroutine smooth(a, b, n)\n"
      "  integer, intent(in) :: n\n"
      "  real, intent(in) :: a(n)\n"
      "  real, intent(out) :: b(n)\n"
      "  integer :: i\n"
      "  do i = 2, n - 1\n"
      "    b(i) = a(i-1) + a(i) + a(i+1)\n"
      "  enddo\n"
      "end subroutine smooth\n",
      "smooth");
  // b is disjointly written, a only read: actually parallelizable.
  EXPECT_TRUE(la.parallelizable);
  EXPECT_EQ(la.find("b")->role, VarClass::kWriteFirst);
  EXPECT_EQ(la.find("a")->role, VarClass::kReadOnly);
}

TEST(Deps, InPlaceStencilIsNotParallelizable) {
  const LoopAnalysis la = analyze_first_loop(
      "subroutine smooth(a, n)\n"
      "  integer, intent(in) :: n\n"
      "  real, intent(inout) :: a(n)\n"
      "  integer :: i\n"
      "  do i = 2, n - 1\n"
      "    a(i) = a(i-1) + a(i) + a(i+1)\n"
      "  enddo\n"
      "end subroutine smooth\n",
      "smooth");
  EXPECT_FALSE(la.parallelizable);
}

TEST(Deps, MissingLoopVarInWriteIsSharedConflict) {
  // s(k) accumulated over i: two loop variables but writes only index k.
  const LoopAnalysis la = analyze_first_loop(
      "subroutine colsum(a, s, n, m)\n"
      "  integer, intent(in) :: n, m\n"
      "  real, intent(in) :: a(n, m)\n"
      "  real, intent(inout) :: s(m)\n"
      "  integer :: i, k\n"
      "  do k = 1, m\n"
      "    do i = 1, n\n"
      "      s(k) = s(k) + a(i, k)\n"
      "    enddo\n"
      "  enddo\n"
      "end subroutine colsum\n",
      "colsum");
  EXPECT_FALSE(la.parallelizable);
  const VarClass* vc = la.find("s");
  ASSERT_NE(vc, nullptr);
  EXPECT_EQ(vc->role, VarClass::kReduction);
}

TEST(Deps, CondAndCoalKernelsArePointwiseOverTheGridVars) {
  // The fused cond+coal launch is justified by this: both passes touch
  // the grid pointwise, so a lane running them back to back for its own
  // cell matches two sequential full passes bit for bit.
  for (const auto& [src, proc] :
       {std::pair{&sources::cond_kernel(), "cond_kernel"},
        std::pair{&sources::coal_kernel(), "coal_kernel"}}) {
    const LoopAnalysis la = analyze_first_loop(*src, proc);
    EXPECT_TRUE(la.parallelizable) << proc;
    const VarClass* ff = la.find("ff");
    ASSERT_NE(ff, nullptr) << proc;
    for (const char* lv : {"i", "k", "j"}) {
      EXPECT_NE(std::find(ff->pointwise_vars.begin(),
                          ff->pointwise_vars.end(), lv),
                ff->pointwise_vars.end())
          << proc << ": ff not pointwise over " << lv;
    }
  }
}

TEST(Deps, SedKernelVerticalDependenceIsLoopCarried) {
  // Sedimentation reads ff(n,i,k+1,j) while writing ff(n,i,k,j): mass
  // falls through the column, so iteration k sees iteration k+1's
  // element.  The analyzer must diagnose this as fusion-blocking — no
  // hand-coded blocklist involved.
  const LoopAnalysis la =
      analyze_first_loop(sources::sed_kernel(), "sed_kernel");
  EXPECT_FALSE(la.parallelizable);
  const VarClass* ff = la.find("ff");
  ASSERT_NE(ff, nullptr);
  EXPECT_EQ(ff->role, VarClass::kLoopCarried);
  bool mentions_neighbor = false;
  for (const auto& b : la.blockers) {
    if (b.find("neighboring") != std::string::npos) mentions_neighbor = true;
  }
  EXPECT_TRUE(mentions_neighbor);
}

TEST(Fusion, CondIntoCoalIsLegal) {
  const FusionVerdict v = check_fusion(
      {"onecond_loop", &sources::cond_kernel(), "cond_kernel"},
      {"coal_bott_new_loop", &sources::coal_kernel(), "coal_kernel"}, 3);
  EXPECT_TRUE(v.fusible) << [&] {
    std::string s;
    for (const auto& b : v.blockers) s += b + "; ";
    return s;
  }();
}

TEST(Fusion, CoalIntoSedimentationBlockedByVerticalDependence) {
  // The negative legality case of the issue: sedimentation's
  // loop-carried vertical dependence must make the *analyzer* refuse
  // the pair.
  const FusionVerdict v = check_fusion(
      {"coal_bott_new_loop", &sources::coal_kernel(), "coal_kernel"},
      {"sedimentation", &sources::sed_kernel(), "sed_kernel"}, 2);
  EXPECT_FALSE(v.fusible);
  ASSERT_FALSE(v.blockers.empty());
  bool mentions_neighbor = false;
  for (const auto& b : v.blockers) {
    if (b.find("neighboring") != std::string::npos) mentions_neighbor = true;
  }
  EXPECT_TRUE(mentions_neighbor);
}

TEST(Fusion, WriteAfterReadPairRefusesToFuse) {
  // Each proc is parallelizable alone; fused they race: the reader's
  // a(i+1,...) lane would see the writer's in-place update of a.  The
  // refusal must come from the pointwise analysis, not the individual
  // verdicts.
  const LoopAnalysis reader =
      analyze_first_loop(sources::war_pair(), "war_reader");
  const LoopAnalysis writer =
      analyze_first_loop(sources::war_pair(), "war_writer");
  EXPECT_TRUE(reader.parallelizable);
  EXPECT_TRUE(writer.parallelizable);

  const FusionVerdict v = check_fusion(
      {"war_reader", &sources::war_pair(), "war_reader"},
      {"war_writer", &sources::war_pair(), "war_writer"}, 3);
  EXPECT_FALSE(v.fusible);
  ASSERT_FALSE(v.blockers.empty());
  bool names_a = false;
  for (const auto& b : v.blockers) {
    if (b.find("'a'") != std::string::npos) names_a = true;
  }
  EXPECT_TRUE(names_a);
}

TEST(Fusion, OracleCachesPerPairAndCollapseDepth) {
  FusionOracle oracle;
  const KernelRef cond{"onecond_loop", &sources::cond_kernel(),
                       "cond_kernel"};
  const KernelRef coal{"coal_bott_new_loop", &sources::coal_kernel(),
                       "coal_kernel"};
  EXPECT_TRUE(oracle.check(cond, coal, 3).fusible);
  EXPECT_TRUE(oracle.check(cond, coal, 3).fusible);  // cache hit
  EXPECT_EQ(oracle.analyses_run(), 1u);
  oracle.check(cond, coal, 2);  // different depth -> new analysis
  EXPECT_EQ(oracle.analyses_run(), 2u);
}

TEST(Deps, ScopeResolution) {
  const ProgramUnit unit = parse(sources::kernals_ks());
  const SemanticModel model(unit);
  const Procedure* p = model.find_procedure("kernals_ks");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(model.resolve(*p, "cwls"), SymbolScope::kGlobal);
  EXPECT_EQ(model.resolve(*p, "ckern_1"), SymbolScope::kLocal);
  EXPECT_EQ(model.resolve(*p, "p_z"), SymbolScope::kArgument);
  EXPECT_EQ(model.resolve(*p, "nothere"), SymbolScope::kUnknown);
  EXPECT_EQ(model.visible_globals(*p).size(), 13u);
}

}  // namespace
}  // namespace wrf::analyzer
